"""SecureContext wiring: config presets, phase marks, triplet caching."""

import numpy as np
import pytest

from conftest import make_ctx
from repro.core.config import FrameworkConfig
from repro.core.context import SecureContext
from repro.util.errors import ConfigError


class TestConfig:
    def test_parsecureml_preset(self):
        cfg = FrameworkConfig.parsecureml()
        assert cfg.use_gpu and cfg.pipeline1 and cfg.double_pipeline
        assert cfg.compression and cfg.tensor_core and cfg.cpu_parallel

    def test_secureml_preset(self):
        cfg = FrameworkConfig.secureml()
        assert not cfg.use_gpu
        assert not cfg.pipeline1 and not cfg.double_pipeline
        assert not cfg.compression and not cfg.cpu_parallel
        assert cfg.client_parallel  # shared client infrastructure stays on

    def test_but_override(self):
        cfg = FrameworkConfig.parsecureml().but(compression=False)
        assert not cfg.compression
        assert cfg.use_gpu

    @pytest.mark.parametrize(
        "field,value",
        [("frac_bits", 0), ("frac_bits", 40), ("compression_threshold", 1.5), ("n_streams", 0)],
    )
    def test_validation(self, field, value):
        with pytest.raises(ConfigError):
            FrameworkConfig(**{field: value})


class TestContextWiring:
    def test_secureml_mode_has_no_gpus(self):
        ctx = SecureContext(FrameworkConfig.secureml())
        assert ctx.client_gpu is None
        assert ctx.server_gpu == [None, None]
        assert ctx.profiler.mode == "cpu_always"

    def test_parsecureml_has_gpus(self, ctx):
        assert ctx.client_gpu is not None
        assert all(g is not None for g in ctx.server_gpu)

    def test_deterministic_given_seed(self, rng):
        x = rng.normal(size=(8, 8))
        pairs = []
        for _ in range(2):
            ctx = make_ctx(seed=42)
            pairs.append(ctx.share_plain(x, label="t"))
        assert np.array_equal(pairs[0].share0, pairs[1].share0)

    def test_different_seeds_differ(self, rng):
        x = rng.normal(size=(8, 8))
        a = make_ctx(seed=1).share_plain(x, label="t")
        b = make_ctx(seed=2).share_plain(x, label="t")
        assert not np.array_equal(a.share0, b.share0)


class TestPhaseAccounting:
    def test_marks_are_monotone(self, ctx, rng):
        m0 = ctx.mark()
        ctx.share_plain(rng.normal(size=(64, 64)), label="a")
        d = ctx.since(m0)
        assert d.offline_s > 0
        assert d.online_s == 0
        assert d.uplink_bytes == 2 * 64 * 64 * 8

    def test_phase_delta_occupancy(self, ctx, rng):
        from repro.core.context import PhaseDelta

        d = PhaseDelta(offline_s=1.0, online_s=4.0, server_bytes=0, uplink_bytes=0)
        assert d.occupancy == 0.8
        assert d.total_s == 5.0


class TestTripletCache:
    def test_same_label_same_triplet(self, ctx):
        t1 = ctx.get_matrix_triplet("layer0", (4, 4), (4, 4))
        t2 = ctx.get_matrix_triplet("layer0", (4, 4), (4, 4))
        assert t1 is t2

    def test_shape_change_regenerates(self, ctx):
        t1 = ctx.get_matrix_triplet("layer0", (4, 4), (4, 4))
        t2 = ctx.get_matrix_triplet("layer0", (4, 4), (4, 2))
        assert t1 is not t2

    def test_different_labels_independent(self, ctx):
        t1 = ctx.get_matrix_triplet("a", (4, 4), (4, 4))
        t2 = ctx.get_matrix_triplet("b", (4, 4), (4, 4))
        assert t1 is not t2
        assert not np.array_equal(t1.u.share0, t2.u.share0)

    def test_fresh_triplets_mode_never_caches(self):
        ctx = make_ctx(fresh_triplets=True)
        t1 = ctx.get_matrix_triplet("layer0", (4, 4), (4, 4))
        t2 = ctx.get_matrix_triplet("layer0", (4, 4), (4, 4))
        assert t1 is not t2

    def test_elementwise_cache(self, ctx):
        t1 = ctx.get_elementwise_triplet("h", (3, 3))
        assert ctx.get_elementwise_triplet("h", (3, 3)) is t1

    def test_generation_charges_offline(self, ctx):
        before = ctx.offline_clock.now()
        ctx.gen_matrix_triplet((64, 64), (64, 64))
        assert ctx.offline_clock.now() > before

    def test_comparison_bundle_modes(self):
        dealer_ctx = make_ctx(activation_protocol="dealer")
        assert dealer_ctx.gen_comparison_bundle((2, 2)) is not None
        emu_ctx = make_ctx(activation_protocol="emulated")
        assert emu_ctx.gen_comparison_bundle((2, 2)) is None
        # both charge offline time
        assert emu_ctx.offline_clock.now() > 0
