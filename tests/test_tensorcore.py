"""Tensor-Core numeric emulation (paper Section 5.2, Fig. 9)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.simgpu.tensorcore import accuracy_report, quantize_fp16, tensor_core_gemm


class TestQuantize:
    def test_fp16_representable_values_unchanged(self):
        x = np.array([1.0, -0.5, 2.0, 1024.0], dtype=np.float32)
        assert np.array_equal(quantize_fp16(x), x)

    def test_precision_loss_is_real(self):
        x = np.array([1.0 + 2**-13], dtype=np.float32)  # below fp16 resolution at 1.0
        assert quantize_fp16(x)[0] == 1.0

    def test_large_values_saturate(self):
        x = np.array([1e6], dtype=np.float32)
        assert np.isinf(quantize_fp16(x)[0])  # fp16 max is 65504


class TestGemm:
    @settings(max_examples=20, deadline=None)
    @given(st.integers(2, 16), st.integers(2, 16), st.integers(0, 1000))
    def test_absolute_error_small_for_unit_scale_data(self, m, k, seed):
        """FP16 inlet rounding keeps the absolute error at the rounding
        scale (per-entry relative error can blow up at cancellation
        points, so the robust claim is about absolute error)."""
        rng = np.random.default_rng(seed)
        a = rng.normal(size=(m, k)).astype(np.float32)
        b = rng.normal(size=(k, m)).astype(np.float32)
        rep = accuracy_report(a, b)
        assert rep.max_abs_error < 3e-3 * k  # ~2 ulps of fp16 per product term

    def test_mean_relative_error_small_on_typical_gemm(self, rng):
        a = rng.normal(size=(64, 64)).astype(np.float32)
        b = rng.normal(size=(64, 64)).astype(np.float32)
        # at k=64, outputs are O(sqrt(k)): cancellation is rare and the
        # paper's "accuracy is not sacrificed" claim holds on average
        assert accuracy_report(a, b).mean_rel_error < 5e-3

    def test_acceptable_for_training_flag(self, rng):
        a = rng.normal(size=(32, 32)).astype(np.float32)
        rep = accuracy_report(a, a)
        assert rep.acceptable_for_training

    def test_error_grows_with_dynamic_range(self, rng):
        a = rng.normal(size=(32, 32)).astype(np.float32)
        mixed = a * np.logspace(-3, 3, 32, dtype=np.float32)
        assert accuracy_report(mixed, a).max_rel_error >= accuracy_report(a, a).max_rel_error

    def test_gemm_values_match_manual_emulation(self, rng):
        a = rng.normal(size=(8, 8)).astype(np.float32)
        b = rng.normal(size=(8, 8)).astype(np.float32)
        manual = a.astype(np.float16).astype(np.float32) @ b.astype(np.float16).astype(np.float32)
        assert np.array_equal(tensor_core_gemm(a, b), manual)
