"""The six secure models: learning behaviour and structural checks."""

import numpy as np
import pytest

from repro.core.models import (
    SecureCNN,
    SecureLinearRegression,
    SecureLogisticRegression,
    SecureMLP,
    SecureRNN,
    SecureSVM,
)
from repro.core.tensor import SharedTensor
from repro.core.training import SecureTrainer
from repro.core.inference import secure_predict
from repro.datasets import separable_classification, sequence_dataset
from repro.util.errors import ShapeError


def shared(ctx, arr, **kw):
    return SharedTensor.from_plain(ctx, np.asarray(arr, dtype=np.float64), **kw)


class TestLinearRegression:
    def test_learns_exact_linear_map(self, ctx, rng):
        x = rng.normal(size=(256, 8)) * 0.5
        w = rng.normal(size=(8, 2)) * 0.4
        y = x @ w
        model = SecureLinearRegression(ctx, 8, n_out=2)
        report = SecureTrainer(ctx, model, lr=0.25).train(x, y, epochs=12, batch_size=64)
        assert report.losses[-1] < 0.05 * report.losses[0]

    def test_structure(self, ctx):
        model = SecureLinearRegression(ctx, 5, n_out=3)
        assert len(model.parameters()) == 2  # W and b


class TestLogisticRegression:
    def test_learns_separable_labels(self, ctx, rng):
        x = rng.normal(size=(256, 6))
        w = rng.normal(size=(6, 1))
        y = (x @ w > 0).astype(float)
        model = SecureLogisticRegression(ctx, 6, n_out=1)
        report = SecureTrainer(ctx, model, lr=0.5).train(x, y, epochs=10, batch_size=64)
        assert report.losses[-1] < 0.6 * report.losses[0]

    def test_output_bounded(self, ctx, rng):
        """Eq. 9's whole point: the activation has an upper limit."""
        model = SecureLogisticRegression(ctx, 4, n_out=1)
        x = rng.normal(size=(64, 4)) * 10
        rep = secure_predict(ctx, model, x, batch_size=64)
        assert rep.predictions.min() >= -0.01
        assert rep.predictions.max() <= 1.01


class TestMLP:
    def test_architecture_from_paper(self, ctx):
        model = SecureMLP(ctx, input_dim=20)  # defaults: 128, 64, 10
        dense = [l for l in model.layers if hasattr(l, "weight")]
        assert [d.weight.shape for d in dense] == [(20, 128), (128, 64), (64, 10)]

    def test_learns(self, ctx, rng):
        x = rng.normal(size=(128, 10)) * 0.5
        y = np.tanh(x @ (rng.normal(size=(10, 3)) * 0.5))
        model = SecureMLP(ctx, 10, hidden=(16,), n_out=3)
        report = SecureTrainer(ctx, model, lr=0.125).train(x, y, epochs=15, batch_size=64)
        assert report.losses[-1] < 0.7 * report.losses[0]


class TestCNN:
    def test_forward_shape(self, ctx, rng):
        model = SecureCNN(ctx, (8, 8, 1), conv_channels=2, hidden=8, n_out=4, kernel=3)
        x = rng.normal(size=(16, 64))
        rep = secure_predict(ctx, model, x, batch_size=16)
        assert rep.predictions.shape == (16, 4)

    def test_trains_one_step(self, ctx, rng):
        model = SecureCNN(ctx, (8, 8, 1), conv_channels=2, hidden=8, n_out=3, kernel=3)
        x = rng.normal(size=(16, 64))
        y = rng.normal(size=(16, 3))
        w_before = model.layers[0].weight.decode().copy()
        SecureTrainer(ctx, model, lr=0.1).train(x, y, epochs=1, batch_size=16)
        assert not np.allclose(model.layers[0].weight.decode(), w_before)


class TestSVM:
    def test_separates_data(self, ctx):
        x, y = separable_classification(256, 8, margin=2.0, seed=7)
        model = SecureSVM(ctx, 8)
        SecureTrainer(ctx, model, lr=0.25, monitor_loss=False).train(
            x, y, epochs=8, batch_size=64
        )
        rep = secure_predict(ctx, model, x, batch_size=64)
        acc = np.mean(np.sign(rep.predictions) == y[: rep.predictions.shape[0]])
        assert acc > 0.95

    def test_agrees_with_smo_reference(self, ctx):
        """Both optimise the hinge objective; on well-separated data the
        sign predictions must coincide."""
        from repro.baselines.smo import SMOSVM

        x, y = separable_classification(192, 6, margin=2.5, seed=11)
        secure = SecureSVM(ctx, 6)
        SecureTrainer(ctx, secure, lr=0.25, monitor_loss=False).train(
            x, y, epochs=10, batch_size=64
        )
        smo = SMOSVM(C=1.0).fit(x, y.ravel())
        sp = np.sign(secure_predict(ctx, secure, x, batch_size=64).predictions.ravel())
        assert np.mean(sp == smo.predict(x)[: sp.size]) > 0.95


class TestRNN:
    def test_forward_shape(self, ctx):
        model = SecureRNN(ctx, n_steps=3, step_features=4, hidden=6, n_out=5)
        x = np.random.default_rng(0).normal(size=(8, 12))
        rep = secure_predict(ctx, model, x, batch_size=8)
        assert rep.predictions.shape == (8, 5)

    def test_wrong_feature_count(self, ctx, rng):
        model = SecureRNN(ctx, n_steps=3, step_features=4, hidden=6, n_out=5)
        with pytest.raises(ShapeError):
            model.forward(shared(ctx, rng.normal(size=(8, 10))))

    def test_learns_sequence_task(self, ctx):
        x, y = sequence_dataset(128, 3, 6, seed=2)
        model = SecureRNN(ctx, 3, 6, hidden=8, n_out=10)
        report = SecureTrainer(ctx, model, lr=0.125).train(x, y, epochs=6, batch_size=64)
        assert report.losses[-1] < report.losses[0]
