"""Tail-batch correctness for the secure inference driver.

Regression suite for the silent tail-drop bug: the old batch loop
(``range(0, n - batch_size + 1, batch_size)``) skipped any ragged tail,
so ``n % batch_size`` rows simply vanished from ``predictions`` (and an
``n < batch_size`` input produced an empty 1-D array).  The fixed driver
pads ragged tails to the full batch shape, trims after decoding, and
must return exactly ``x.shape[0]`` predictions for any ``n >= 0``.
"""

import numpy as np
import pytest

from repro.core.config import FrameworkConfig
from repro.core.context import SecureContext
from repro.core.inference import model_output_width, secure_predict
from repro.core.models import SecureLinearRegression, SecureMLP
from repro.core.tensor import SharedTensor
from repro.faults import FaultPlan, PartyCrash
from repro.util.errors import ConfigError


def _mlp_ctx(**overrides):
    ctx = SecureContext(FrameworkConfig.parsecureml(**overrides))
    model = SecureMLP(ctx, 12, hidden=(6,), n_out=3)
    return ctx, model


class TestTailBatches:
    def test_ragged_tail_is_served(self, rng):
        """n % batch_size != 0: every row comes back, tail included."""
        ctx, model = _mlp_ctx()
        x = rng.normal(size=(50, 12)) * 0.25
        rep = secure_predict(ctx, model, x, batch_size=16)
        assert rep.predictions.shape == (50, 3)
        assert rep.samples == 50
        assert rep.dataset_samples == 50
        assert rep.batches == 4  # 16+16+16+2
        assert rep.padded_rows == 14
        assert ctx.telemetry.snapshot().counter("infer.padded_rows") == 14

    def test_input_smaller_than_batch(self, rng):
        """n < batch_size used to return zero predictions; now n rows."""
        ctx, model = _mlp_ctx()
        x = rng.normal(size=(5, 12)) * 0.25
        rep = secure_predict(ctx, model, x, batch_size=64)
        assert rep.predictions.shape == (5, 3)
        assert rep.samples == 5
        assert rep.batches == 1
        assert rep.padded_rows == 59

    def test_single_row(self, rng):
        ctx, model = _mlp_ctx()
        rep = secure_predict(ctx, model, rng.normal(size=(1, 12)), batch_size=32)
        assert rep.predictions.shape == (1, 3)
        assert rep.samples == 1

    def test_empty_input_keeps_output_width(self):
        """n == 0 yields (0, n_out), so argmax/downstream shapes still work."""
        ctx, model = _mlp_ctx()
        rep = secure_predict(ctx, model, np.zeros((0, 12)), batch_size=16)
        assert rep.predictions.shape == (0, 3)
        assert rep.batches == 0 and rep.samples == 0 and rep.padded_rows == 0
        assert rep.predictions.argmax(axis=1).shape == (0,)

    def test_exact_multiple_has_no_padding(self, rng):
        ctx, model = _mlp_ctx()
        rep = secure_predict(ctx, model, rng.normal(size=(32, 12)), batch_size=16)
        assert rep.predictions.shape == (32, 3)
        assert rep.padded_rows == 0

    def test_tail_rows_are_accurate(self, rng):
        """The padded tail decodes to the same values as plaintext."""
        ctx, model = _mlp_ctx()
        x = rng.normal(size=(37, 12)) * 0.25
        rep = secure_predict(ctx, model, x, batch_size=16)
        w = [la.weight.decode() for la in model.layers if hasattr(la, "weight")]
        b = [la.bias.decode() for la in model.layers if hasattr(la, "bias")]
        ref = np.maximum(x @ w[0] + b[0], 0.0) @ w[1] + b[1]
        # the tail batch (rows 32..37) must be as accurate as the full ones
        assert np.allclose(rep.predictions[32:], ref[32:], atol=2e-2)
        assert np.allclose(rep.predictions, ref, atol=2e-2)

    def test_full_batches_bit_identical_to_truncated_run(self, rng):
        """Padding the tail must not perturb the full batches before it.

        Two identically-seeded deployments over the same input: the run
        that stops after batch 0 (``max_batches=1``, pre-tail) and the
        full run must agree bit-for-bit on batch 0's rows.
        """
        x = np.random.default_rng(77).normal(size=(50, 12)) * 0.25
        ctx_a, model_a = _mlp_ctx()
        full = secure_predict(ctx_a, model_a, x, batch_size=32)
        ctx_b, model_b = _mlp_ctx()
        head = secure_predict(ctx_b, model_b, x, batch_size=32, max_batches=1)
        assert head.samples == 32 and head.batches == 1
        np.testing.assert_array_equal(full.predictions[:32], head.predictions)

    def test_rejects_non_2d_input(self):
        ctx, model = _mlp_ctx()
        with pytest.raises(ConfigError):
            secure_predict(ctx, model, np.zeros((4, 3, 2)))


class TestRowSlicePadding:
    def test_pad_rows_decode_to_zero(self, ctx, rng):
        x = rng.normal(size=(5, 4))
        xs = SharedTensor.from_plain(ctx, x)
        padded = xs.row_slice(2, 5, pad_to=8)
        assert padded.shape == (8, 4)
        dec = padded.decode()
        assert np.allclose(dec[:3], x[2:5], atol=1e-3)
        np.testing.assert_array_equal(dec[3:], np.zeros((5, 4)))

    def test_no_padding_when_full(self, ctx, rng):
        xs = SharedTensor.from_plain(ctx, rng.normal(size=(6, 3)))
        sliced = xs.row_slice(0, 6, pad_to=6)
        assert sliced.shape == (6, 3)


class TestModelOutputWidth:
    def test_mlp_width(self):
        ctx, model = _mlp_ctx()
        assert model_output_width(model) == 3

    def test_regression_width(self, ctx):
        model = SecureLinearRegression(ctx, 4, n_out=1)
        assert model_output_width(model) == 1

    def test_layerless_object_is_zero(self):
        assert model_output_width(object()) == 0


class TestRetryAccounting:
    def _predict(self, plan, n=20):
        ctx = SecureContext(
            FrameworkConfig.parsecureml(activation_protocol="emulated", fault_plan=plan)
        )
        model = SecureMLP(ctx, 10, hidden=(5,), n_out=2)
        x = np.random.default_rng(3).normal(size=(n, 10)) * 0.25
        return secure_predict(ctx, model, x, batch_size=8)

    def test_retry_time_reported_separately(self):
        """Failed attempts must not inflate batch_online_s / marginal cost."""
        clean = self._predict(None)
        plan = FaultPlan(crashes=(PartyCrash("server1", at_step=2),))
        faulty = self._predict(plan)
        assert faulty.retried_batches >= 1
        assert faulty.retry_online_s > 0.0
        assert clean.retry_online_s == 0.0
        # per-batch timings cover successful attempts only, so the
        # marginal estimate matches the clean run's
        assert faulty.marginal_online_s == pytest.approx(clean.marginal_online_s, rel=0.05)
        # the wasted time is real, though: it shows in the makespan
        assert faulty.online_s > clean.online_s
        assert faulty.online_s == pytest.approx(
            sum(faulty.batch_online_s) + faulty.retry_online_s, rel=1e-6
        )

    def test_retried_tail_batch_is_bit_identical(self):
        """A crash during the padded tail batch still recovers exactly."""
        clean = self._predict(None, n=19)  # tail batch of 3 rows
        plan = FaultPlan(crashes=(PartyCrash("server0", at_step=3),))
        faulty = self._predict(plan, n=19)
        assert faulty.retried_batches >= 1
        assert faulty.predictions.shape == (19, 2)
        np.testing.assert_array_equal(clean.predictions, faulty.predictions)
