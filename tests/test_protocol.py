"""The online masked-multiplication protocol (Eqs. 4-8)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.fixedpoint.encoding import FixedPointEncoder
from repro.fixedpoint.ring import ring_mul
from repro.fixedpoint.truncation import truncate_share
from repro.mpc.protocol import (
    beaver_elementwise_share,
    combine_masked,
    masked_difference,
    secure_matmul_plain,
)
from repro.mpc.shares import reconstruct, share_secret
from repro.mpc.triplets import TripletDealer
from repro.util.errors import ProtocolError, ShapeError


def run_matmul(a, b, seed=0, **kw):
    """Full protocol run on float inputs; returns decoded result."""
    rng = np.random.default_rng(seed)
    enc = FixedPointEncoder(13)
    ap = share_secret(enc.encode(a), rng)
    bp = share_secret(enc.encode(b), rng)
    dealer = TripletDealer(np.random.default_rng(seed + 1))
    trip = dealer.matrix_triplet(a.shape, b.shape)
    c0, c1 = secure_matmul_plain(ap, bp, trip, **kw)
    return enc.decode(
        reconstruct(truncate_share(c0, 13, 0), truncate_share(c1, 13, 1))
    )


class TestSecureMatmul:
    @settings(max_examples=20, deadline=None)
    @given(st.integers(1, 6), st.integers(1, 6), st.integers(1, 6), st.integers(0, 1000))
    def test_matches_plain_matmul(self, m, k, n, seed):
        rng = np.random.default_rng(seed)
        a = rng.normal(size=(m, k))
        b = rng.normal(size=(k, n))
        out = run_matmul(a, b, seed=seed)
        np.testing.assert_allclose(out, a @ b, atol=k * 2**-12 + 2**-11)

    def test_eq6_and_eq8_agree_exactly(self, rng):
        """The paper's fused form (Eq. 8) must be bit-identical to Eq. 6."""
        enc = FixedPointEncoder(13)
        a, b = rng.normal(size=(5, 4)), rng.normal(size=(4, 3))
        ap = share_secret(enc.encode(a), rng)
        bp = share_secret(enc.encode(b), rng)
        dealer = TripletDealer(np.random.default_rng(9))
        t1 = dealer.matrix_triplet(a.shape, b.shape)
        # reuse identical triplet material for both forms
        t2 = dealer.matrix_triplet(a.shape, b.shape)
        for pair_attr in ("u", "v", "z"):
            setattr(t2, pair_attr, getattr(t1, pair_attr))
        c_fused = secure_matmul_plain(ap, bp, t1, use_fused_form=True)
        c_plain = secure_matmul_plain(ap, bp, t2, use_fused_form=False)
        assert np.array_equal(c_fused[0], c_plain[0])
        assert np.array_equal(c_fused[1], c_plain[1])

    def test_masked_values_leak_nothing_obvious(self, rng):
        """E = A - U is a one-time-pad: uniform regardless of A."""
        enc = FixedPointEncoder(13)
        a = np.zeros((64, 64))
        ap = share_secret(enc.encode(a), rng)
        dealer = TripletDealer(np.random.default_rng(3))
        trip = dealer.matrix_triplet((64, 64), (64, 64))
        e = combine_masked(
            masked_difference(ap[0], trip.u[0]), masked_difference(ap[1], trip.u[1])
        )
        as_bytes = e.reshape(-1).view(np.uint8)
        counts = np.bincount(as_bytes, minlength=256)
        expected = as_bytes.size / 256
        chi2 = float(((counts - expected) ** 2 / expected).sum())
        assert chi2 < 400

    def test_shape_mismatch_in_masked_difference(self, rng):
        with pytest.raises(ShapeError):
            masked_difference(
                np.zeros((2, 2), dtype=np.uint64), np.zeros((3, 2), dtype=np.uint64)
            )

    def test_combine_shape_mismatch(self):
        with pytest.raises(ShapeError):
            combine_masked(np.zeros(3, dtype=np.uint64), np.zeros(4, dtype=np.uint64))


class TestTripletDiscipline:
    def test_triplet_share_is_single_use(self, rng):
        """A TripletShare (one execution's material) is single-use; the
        MatrixTriplet *stream* may be reused across iterations, which is
        the paper's mask-stability requirement (Eqs. 10-12)."""
        dealer = TripletDealer(np.random.default_rng(1))
        trip = dealer.matrix_triplet((3, 3), (3, 3))
        share = trip.share_for(0)
        share.mark_consumed()
        with pytest.raises(ProtocolError):
            share.mark_consumed()
        # a fresh share object for the next iteration is fine
        trip.share_for(0).mark_consumed()

    def test_wrong_party_triplet_rejected(self, rng):
        from repro.mpc.protocol import beaver_matmul_share

        dealer = TripletDealer(np.random.default_rng(1))
        trip = dealer.matrix_triplet((2, 2), (2, 2))
        e = np.zeros((2, 2), dtype=np.uint64)
        with pytest.raises(ProtocolError):
            beaver_matmul_share(0, e, e, e, e, trip.share_for(1))


class TestElementwise:
    @settings(max_examples=20, deadline=None)
    @given(st.integers(1, 8), st.integers(1, 8), st.integers(0, 1000))
    def test_hadamard_matches_plain(self, m, n, seed):
        rng = np.random.default_rng(seed)
        enc = FixedPointEncoder(13)
        a = rng.normal(size=(m, n))
        b = rng.normal(size=(m, n))
        ap = share_secret(enc.encode(a), rng)
        bp = share_secret(enc.encode(b), rng)
        dealer = TripletDealer(np.random.default_rng(seed + 5))
        trip = dealer.elementwise_triplet((m, n))
        e = combine_masked(
            masked_difference(ap[0], trip.u[0]), masked_difference(ap[1], trip.u[1])
        )
        f = combine_masked(
            masked_difference(bp[0], trip.v[0]), masked_difference(bp[1], trip.v[1])
        )
        c0 = beaver_elementwise_share(0, e, f, ap[0], bp[0], trip.share_for(0))
        c1 = beaver_elementwise_share(1, e, f, ap[1], bp[1], trip.share_for(1))
        out = enc.decode(
            reconstruct(truncate_share(c0, 13, 0), truncate_share(c1, 13, 1))
        )
        np.testing.assert_allclose(out, a * b, atol=2**-10)
