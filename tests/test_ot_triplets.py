"""OT-based dealer-free triplet generation (the SecureML offline)."""

import numpy as np
import pytest

from repro.fixedpoint.ring import ring_mul
from repro.mpc.ot_triplets import (
    OTTripletGenerator,
    _ot_multiply,
    ot_triplet_offline_cost,
)
from repro.mpc.shares import reconstruct


class TestOTMultiply:
    @pytest.mark.parametrize(
        "a,b",
        [(0, 0), (1, 1), (3, 5), (2**63, 2), (2**64 - 1, 2**64 - 1), (12345, 987654321)],
    )
    def test_shares_sum_to_product(self, a, b):
        rng = np.random.default_rng(0)
        s0, s1 = _ot_multiply(a, b, rng)
        assert (s0 + s1) % 2**64 == (a * b) % 2**64

    def test_randomised_inputs(self, rng):
        for _ in range(3):
            a = int(rng.integers(0, 2**64, dtype=np.uint64))
            b = int(rng.integers(0, 2**64, dtype=np.uint64))
            s0, s1 = _ot_multiply(a, b, np.random.default_rng(1))
            assert (s0 + s1) % 2**64 == (a * b) % 2**64

    def test_share_alone_is_masked(self):
        """Server 0's share of a*b must not depend on b in the clear."""
        s0_a, _ = _ot_multiply(7, 1, np.random.default_rng(5))
        s0_b, _ = _ot_multiply(7, 2**40, np.random.default_rng(5))
        # with identical sender randomness, server 0's share is the same
        # regardless of the receiver's input: the sender learns nothing
        assert s0_a == s0_b


class TestOTTripletGenerator:
    def test_triplet_identity(self):
        gen = OTTripletGenerator(seed=3)
        t = gen.elementwise_triplet((2, 2))
        u = reconstruct(t.u.share0, t.u.share1)
        v = reconstruct(t.v.share0, t.v.share1)
        w = reconstruct(t.z.share0, t.z.share1)
        assert np.array_equal(w, ring_mul(u, v))

    def test_stats_accounting(self):
        gen = OTTripletGenerator(seed=1)
        gen.elementwise_triplet((2, 1))
        assert gen.stats.elements == 2
        assert gen.stats.ot_instances == 2 * 64 * 2
        assert gen.stats.bytes_exchanged > 0

    def test_usable_in_the_online_protocol(self, rng, encoder):
        """A dealer-free triplet must drop into the standard Beaver flow."""
        from repro.mpc.protocol import (
            beaver_elementwise_share,
            combine_masked,
            masked_difference,
        )
        from repro.mpc.shares import share_secret
        from repro.fixedpoint.truncation import truncate_share

        gen = OTTripletGenerator(seed=9)
        a = rng.normal(size=(2, 2))
        b = rng.normal(size=(2, 2))
        ap = share_secret(encoder.encode(a), rng)
        bp = share_secret(encoder.encode(b), rng)
        trip = gen.elementwise_triplet((2, 2))
        e = combine_masked(
            masked_difference(ap[0], trip.u[0]), masked_difference(ap[1], trip.u[1])
        )
        f = combine_masked(
            masked_difference(bp[0], trip.v[0]), masked_difference(bp[1], trip.v[1])
        )
        c0 = beaver_elementwise_share(0, e, f, ap[0], bp[0], trip.share_for(0))
        c1 = beaver_elementwise_share(1, e, f, ap[1], bp[1], trip.share_for(1))
        out = encoder.decode(
            reconstruct(truncate_share(c0, 13, 0), truncate_share(c1, 13, 1))
        )
        np.testing.assert_allclose(out, a * b, atol=2**-10)


class TestCostModel:
    def test_cost_scales_linearly(self):
        s1, b1 = ot_triplet_offline_cost(100)
        s2, b2 = ot_triplet_offline_cost(200)
        assert s2 == pytest.approx(2 * s1)
        assert b2 == 2 * b1

    def test_ot_offline_dwarfs_dealer_offline(self):
        """SecureML's practical pain point: OT offline is orders of
        magnitude above the client-aided dealer's cost for the same
        number of triplets."""
        from repro.simgpu.cost import XEON_E5_2670V3_SPEC as cpu

        n = 128 * 128
        ot_seconds, _ = ot_triplet_offline_cost(n)
        dealer_seconds = cpu.rng_seconds(2 * n * 8, parallel=True) + cpu.elementwise_seconds(
            3 * n * 8, parallel=True
        )
        assert ot_seconds > 100 * dealer_seconds
