"""Hypothesis property tests for the serving layer's queue and batcher.

The invariants the serving design doc promises, held under arbitrary
interleavings instead of the example-based paths in test_serve.py:

* an admitted request is never dropped and never duplicated, whatever
  mix of admissions, batch pops, and failure requeues happens;
* every batch plan fits the fixed batch shape and preserves FIFO
  request order.

The queue and batcher only read ``x.shape[0]`` off a request, so a stub
stands in for the secret-shared tensor — these properties are about
bookkeeping, not MPC.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.serve.batcher import AdaptiveBatcher
from repro.serve.queue import InferenceRequest, RequestQueue
from repro.util.errors import QueueFullError

pytestmark = pytest.mark.property

MAX_BATCH = 8


class _Rows:
    """Stands in for a SharedTensor: the queue reads only shape[0]."""

    def __init__(self, rows: int):
        self.shape = (rows, 4)


def _request(rid: int, rows: int, t: float = 0.0) -> InferenceRequest:
    return InferenceRequest(
        client_id=f"c{rid % 3}", request_id=rid, x=_Rows(rows), enqueue_t=t
    )


# One queue operation: admit a request of `rows`, pop up to `take` rows,
# or requeue the most recently popped, not-yet-acked request.
_ops = st.lists(
    st.one_of(
        st.tuples(st.just("admit"), st.integers(min_value=1, max_value=MAX_BATCH)),
        st.tuples(st.just("pop"), st.integers(min_value=1, max_value=2 * MAX_BATCH)),
        st.tuples(st.just("requeue"), st.just(0)),
    ),
    min_size=1,
    max_size=60,
)


class TestRequestQueueProperties:
    @given(ops=_ops)
    @settings(max_examples=200, deadline=None)
    def test_no_admitted_request_dropped_or_duplicated(self, ops):
        queue = RequestQueue(max_rows=3 * MAX_BATCH)
        admitted: list[int] = []
        served: list[int] = []
        in_flight: list[InferenceRequest] = []
        rid = 0
        for op, arg in ops:
            if op == "admit":
                req = _request(rid, arg)
                rid += 1
                try:
                    queue.admit(req)
                    admitted.append(req.request_id)
                except QueueFullError:
                    # rejected atomically: must not occupy queue state
                    continue
            elif op == "pop":
                # ack whatever was in flight (the server served it)
                served.extend(r.request_id for r in in_flight)
                in_flight = queue.pop_upto(arg)
            else:  # requeue: the in-flight batch failed, put it back
                for r in reversed(in_flight):
                    queue.requeue_front(r)
                in_flight = []
        served.extend(r.request_id for r in in_flight)
        remaining = [r.request_id for r in queue.pop_upto(10**9)]
        # conservation: every admitted request is served or queued,
        # exactly once, and nothing was invented
        assert sorted(served + remaining) == sorted(admitted)
        assert len(set(served + remaining)) == len(admitted)
        # row accounting drained to zero with the queue
        assert queue.depth_rows == 0 and len(queue) == 0

    @given(ops=_ops)
    @settings(max_examples=100, deadline=None)
    def test_depth_rows_tracks_queued_requests_exactly(self, ops):
        # a reference model of the queue contents; depth_rows and len
        # must agree with it after every operation (note requeue_front
        # may legitimately push depth above max_rows — it bypasses
        # admission so an aborted batch is never dropped)
        queue = RequestQueue(max_rows=3 * MAX_BATCH)
        model: list[InferenceRequest] = []
        popped: list[InferenceRequest] = []
        rid = 0
        for op, arg in ops:
            if op == "admit":
                req = _request(rid, arg)
                rid += 1
                try:
                    queue.admit(req)
                    model.append(req)
                except QueueFullError:
                    pass
            elif op == "pop":
                popped = queue.pop_upto(arg)
                # pops are always a prefix of the FIFO order
                assert popped == model[: len(popped)]
                model = model[len(popped):]
            else:
                for r in reversed(popped):
                    queue.requeue_front(r)
                model = popped + model
                popped = []
            assert queue.depth_rows == sum(r.rows for r in model)
            assert len(queue) == len(model)


class TestBatcherProperties:
    @given(
        sizes=st.lists(
            st.integers(min_value=1, max_value=MAX_BATCH), min_size=1, max_size=40
        )
    )
    @settings(max_examples=200, deadline=None)
    def test_plans_fit_shape_and_preserve_order(self, sizes):
        queue = RequestQueue(max_rows=10**6)
        for rid, rows in enumerate(sizes):
            queue.admit(_request(rid, rows, t=float(rid)))
        batcher = AdaptiveBatcher(max_batch=MAX_BATCH, max_wait_s=0.0)
        order: list[int] = []
        while True:
            plan = batcher.next_plan(queue)
            if plan is None:
                break
            # the fixed batch shape is never exceeded, padding never negative
            assert 0 < plan.rows <= plan.max_batch == MAX_BATCH
            assert plan.pad_rows == MAX_BATCH - plan.rows >= 0
            # requests inside a plan are consecutive FIFO
            order.extend(r.request_id for r in plan.requests)
        # across plans, global admission order is preserved, nothing lost
        assert order == list(range(len(sizes)))

    @given(
        sizes=st.lists(
            st.integers(min_value=1, max_value=MAX_BATCH), min_size=1, max_size=20
        ),
        now=st.floats(min_value=0.0, max_value=10.0),
    )
    @settings(max_examples=100, deadline=None)
    def test_ready_iff_full_batch_or_timer(self, sizes, now):
        queue = RequestQueue(max_rows=10**6)
        for rid, rows in enumerate(sizes):
            queue.admit(_request(rid, rows, t=1.0))
        batcher = AdaptiveBatcher(max_batch=MAX_BATCH, max_wait_s=2.0)
        expected = queue.depth_rows >= MAX_BATCH or now - 1.0 >= 2.0
        assert batcher.ready(queue, now) == expected
        # demand covers exactly a full drain
        plans = 0
        while batcher.next_plan(queue) is not None:
            plans += 1
        assert plans >= 1
