"""The resource-timeline simulated clock."""

import pytest

from repro.simgpu.clock import SimClock
from repro.util.errors import ConfigError


@pytest.fixture
def clock():
    c = SimClock()
    c.add_resource("a")
    c.add_resource("b")
    return c


class TestScheduling:
    def test_serial_on_one_resource(self, clock):
        t1 = clock.run("a", 1.0)
        t2 = clock.run("a", 2.0)
        assert (t1.start, t1.finish) == (0.0, 1.0)
        assert (t2.start, t2.finish) == (1.0, 3.0)

    def test_parallel_across_resources(self, clock):
        clock.run("a", 5.0)
        t = clock.run("b", 1.0)
        assert t.start == 0.0  # b is independent of a

    def test_dependency_delays_start(self, clock):
        ta = clock.run("a", 3.0)
        tb = clock.run("b", 1.0, deps=(ta,))
        assert tb.start == 3.0
        assert tb.finish == 4.0

    def test_dependency_and_resource_both_bind(self, clock):
        ta = clock.run("a", 2.0)
        clock.run("b", 5.0)
        tb = clock.run("b", 1.0, deps=(ta,))
        assert tb.start == 5.0  # resource busier than the dependency

    def test_none_deps_ignored(self, clock):
        t = clock.run("a", 1.0, deps=(None,))
        assert t.start == 0.0

    def test_zero_duration_join_point(self, clock):
        ta = clock.run("a", 2.0)
        tb = clock.run("b", 3.0)
        j = clock.join([ta, tb])
        assert j.finish == 3.0

    def test_join_on_resource_occupies_it(self, clock):
        ta = clock.run("a", 2.0)
        j = clock.join([ta], resource="b")
        assert j.resource == "b"
        assert clock.free_at("b") == 2.0

    def test_negative_duration_rejected(self, clock):
        with pytest.raises(ConfigError):
            clock.run("a", -1.0)

    def test_unknown_resource_rejected(self, clock):
        with pytest.raises(ConfigError):
            clock.run("nope", 1.0)
        with pytest.raises(ConfigError):
            clock.free_at("nope")


class TestTimeQueries:
    def test_now_is_makespan(self, clock):
        clock.run("a", 1.0)
        clock.run("b", 7.0)
        assert clock.now() == 7.0

    def test_advance_all_synchronises(self, clock):
        clock.run("a", 1.0)
        clock.run("b", 7.0)
        clock.advance_all()
        assert clock.free_at("a") == 7.0

    def test_advance_all_explicit_time(self, clock):
        clock.advance_all(10.0)
        assert clock.now() == 10.0

    def test_empty_clock(self):
        assert SimClock().now() == 0.0


class TestTrace:
    def test_trace_records_tasks(self, clock):
        clock.run("a", 1.0, label="x")
        clock.run("b", 2.0, label="y")
        assert [t.label for t in clock.trace] == ["x", "y"]

    def test_trace_for_filters(self, clock):
        clock.run("a", 1.0)
        clock.run("b", 2.0)
        assert len(clock.trace_for("a")) == 1

    def test_tracing_can_be_disabled(self, clock):
        clock.set_tracing(False)
        clock.run("a", 1.0)
        assert clock.trace == []
        # timing still accumulates
        assert clock.now() == 1.0

    def test_task_duration(self, clock):
        t = clock.run("a", 2.5)
        assert t.duration == 2.5


class TestJoinDefaults:
    """Regression: ``join([])`` (or all-``None`` deps) produced
    ``finish=0.0`` even while scheduled work was still running — the
    join point must default to ``now()``, the max free time of every
    resource involved, never a point in the past."""

    def test_empty_deps_join_anchors_at_now(self, clock):
        clock.run("a", 3.0)
        j = clock.join([])
        assert j.finish == 3.0  # pre-fix: 0.0

    def test_all_none_deps_join_anchors_at_now(self, clock):
        clock.run("b", 2.0)
        j = clock.join([None, None])
        assert j.finish == 2.0

    def test_fresh_clock_empty_join_is_zero(self, clock):
        assert clock.join([]).finish == 0.0

    def test_empty_join_with_tracing_disabled(self, clock):
        clock.set_tracing(False)
        clock.run("a", 1.5)
        assert clock.join([]).finish == 1.5
        assert clock.trace == []
