"""Utility layer: seeding, validation, errors."""

import numpy as np
import pytest

from repro.util.errors import (
    ConfigError,
    DeviceError,
    ProtocolError,
    ReproError,
    ShapeError,
    TransportError,
)
from repro.util.seeding import SeedSequenceFactory, derive_seed
from repro.util.validation import (
    check_matmul_compatible,
    check_matrix,
    check_positive,
    check_probability,
    check_same_shape,
)


class TestErrors:
    @pytest.mark.parametrize(
        "exc", [ShapeError, ProtocolError, DeviceError, TransportError, ConfigError]
    )
    def test_hierarchy(self, exc):
        assert issubclass(exc, ReproError)

    def test_shape_error_is_value_error(self):
        assert issubclass(ShapeError, ValueError)  # numpy-style catchability


class TestSeeding:
    def test_derive_is_deterministic(self):
        assert derive_seed(42, "x") == derive_seed(42, "x")

    def test_labels_do_not_collide(self):
        seeds = {derive_seed(0, f"label-{i}") for i in range(1000)}
        assert len(seeds) == 1000

    def test_roots_independent(self):
        assert derive_seed(1, "x") != derive_seed(2, "x")

    def test_factory_generator_streams(self):
        f = SeedSequenceFactory(7)
        a = f.generator("stream").integers(0, 100, 10)
        b = f.generator("stream").integers(0, 100, 10)
        c = f.generator("other").integers(0, 100, 10)
        assert np.array_equal(a, b)
        assert not np.array_equal(a, c)

    def test_spawn_namespacing(self):
        f = SeedSequenceFactory(7)
        child = f.spawn("server0")
        assert child.seed_for("x") != f.seed_for("x")
        assert child.seed_for("x") == f.spawn("server0").seed_for("x")


class TestValidation:
    def test_check_matrix_accepts_2d(self, rng):
        arr = rng.normal(size=(3, 4))
        assert check_matrix(arr) is arr

    @pytest.mark.parametrize("bad", [np.zeros(3), np.zeros((2, 2, 2)), [[1, 2]]])
    def test_check_matrix_rejects(self, bad):
        with pytest.raises(ShapeError):
            check_matrix(bad)

    def test_check_same_shape(self, rng):
        a = rng.normal(size=(2, 3))
        check_same_shape(a, a)
        with pytest.raises(ShapeError):
            check_same_shape(a, rng.normal(size=(3, 2)))

    def test_check_matmul_compatible(self, rng):
        check_matmul_compatible(rng.normal(size=(2, 3)), rng.normal(size=(3, 4)))
        with pytest.raises(ShapeError):
            check_matmul_compatible(rng.normal(size=(2, 3)), rng.normal(size=(4, 4)))

    def test_check_positive(self):
        assert check_positive(1.5, "x") == 1.5
        assert check_positive(0.0, "x", strict=False) == 0.0
        with pytest.raises(ConfigError):
            check_positive(0.0, "x")
        with pytest.raises(ConfigError):
            check_positive(-1.0, "x", strict=False)
        with pytest.raises(ConfigError):
            check_positive("nope", "x")

    def test_check_probability(self):
        assert check_probability(0.5, "p") == 0.5
        for bad in (-0.1, 1.1, "x"):
            with pytest.raises(ConfigError):
                check_probability(bad, "p")
