"""repro.faults: deterministic injection, resilient delivery, recovery."""

import numpy as np
import pytest

from repro.comm.mpi_backend import LoopbackTransport
from repro.comm.transport import TransportHub
from repro.faults import (
    FaultInjector,
    FaultPlan,
    LinkPartition,
    PartyCrash,
    PartyFailure,
    ReliableTransport,
    RetryPolicy,
)
from repro.faults.blame import BlameRecord
from repro.faults.injector import DELIVER
from repro.faults.reliable import corrupt_payload, payload_checksum
from repro.runtime import ClientActor, ServerActor, run_matmul
from repro.util.errors import ConfigError, TransportError


class TestFaultPlan:
    def test_rates_must_sum_to_at_most_one(self):
        with pytest.raises(ConfigError):
            FaultPlan(drop=0.6, duplicate=0.6)
        with pytest.raises(ConfigError):
            FaultPlan(corrupt=1.5)
        with pytest.raises(ConfigError):
            FaultPlan(delay=-0.1)

    def test_scripted_event_validation(self):
        with pytest.raises(ConfigError):
            PartyCrash("server9", at_step=1)
        with pytest.raises(ConfigError):
            PartyCrash("server0", at_step=-1)
        with pytest.raises(ConfigError):
            LinkPartition("server0", "server1", start=5, stop=5)

    def test_describe_mentions_every_active_fault(self):
        plan = FaultPlan(
            seed=9,
            drop=0.25,
            crashes=(PartyCrash("server1", at_step=3),),
            partitions=(LinkPartition("server0", "server1", 0, 4),),
        )
        text = plan.describe()
        assert "drop=0.25" in text
        assert "crash(server1@3)" in text
        assert "partition(server0->server1[0:4])" in text
        assert plan.fault_rate == 0.25

    def test_plan_is_hashable_for_frozen_config(self):
        plan = FaultPlan(drop=0.1, crashes=(PartyCrash("client", at_step=1),))
        assert hash(plan) == hash(FaultPlan(drop=0.1, crashes=(PartyCrash("client", at_step=1),)))


class TestRetryPolicy:
    def test_backoff_grows_then_caps(self):
        policy = RetryPolicy(base_timeout_s=1e-4, backoff=2.0, max_backoff_s=3e-4)
        waits = [policy.timeout_s(k) for k in (1, 2, 3, 4)]
        assert waits == [1e-4, 2e-4, 3e-4, 3e-4]

    def test_validation(self):
        with pytest.raises(ConfigError):
            RetryPolicy(max_retries=0)
        with pytest.raises(ConfigError):
            RetryPolicy(backoff=0.5)
        with pytest.raises(ConfigError):
            RetryPolicy(base_timeout_s=-1.0)


class TestFaultInjector:
    def test_decision_stream_is_a_pure_function_of_seed_link_index(self):
        plan = FaultPlan(seed=5, drop=0.3, duplicate=0.2, corrupt=0.2, delay=0.2)
        a = FaultInjector(plan)
        b = FaultInjector(plan)
        stream_a = [a.decide("server0", "server1").kind for _ in range(40)]
        stream_b = [b.decide("server0", "server1").kind for _ in range(40)]
        assert stream_a == stream_b
        assert set(stream_a) != {DELIVER}  # rates high enough to fire

    def test_links_do_not_perturb_each_other(self):
        plan = FaultPlan(seed=5, drop=0.5)
        solo = FaultInjector(plan)
        expected = [solo.decide("server0", "server1").kind for _ in range(20)]
        interleaved = FaultInjector(plan)
        got = []
        for _ in range(20):
            interleaved.decide("client", "server0")  # traffic on another link
            got.append(interleaved.decide("server0", "server1").kind)
            interleaved.decide("server1", "server0")
        assert got == expected

    def test_partition_window_black_holes_exactly_its_indices(self):
        plan = FaultPlan(partitions=(LinkPartition("server0", "server1", 2, 4),))
        inj = FaultInjector(plan)
        delivered = [inj.decide("server0", "server1").delivered for _ in range(6)]
        assert delivered == [True, True, False, False, True, True]
        # the reverse direction is untouched
        assert all(FaultInjector(plan).decide("server1", "server0").delivered for _ in range(6))

    def test_crash_fires_at_step_and_restart_heals(self):
        plan = FaultPlan(crashes=(PartyCrash("server1", at_step=3),))
        inj = FaultInjector(plan)
        inj.advance_step(2)
        assert not inj.crashed("server1")
        inj.advance_step(1)
        assert inj.crashed("server1")
        assert inj.crashed_among("server0", "server1") == "server1"
        inj.restart("server1")
        assert not inj.crashed("server1")
        inj.restart("server1")  # idempotent
        # a fired crash spec does not re-fire after restart
        inj.advance_step(5)
        assert not inj.crashed("server1")


class TestCorruption:
    def test_corrupt_payload_flips_one_bit_in_a_copy(self):
        original = np.arange(16, dtype=np.uint64)
        mangled = corrupt_payload(original, draw=12345)
        assert mangled is not original
        assert np.count_nonzero(mangled != original) == 1
        assert np.array_equal(original, np.arange(16, dtype=np.uint64))

    def test_checksum_catches_the_flip(self):
        payload = {"x": np.ones(8), "note": "hello"}
        before = payload_checksum(payload)
        assert payload_checksum(corrupt_payload(payload, draw=7)) != before

    def test_array_free_payload_is_wrapped_not_crashed(self):
        mangled = corrupt_payload({"note": "no arrays here"}, draw=3)
        assert payload_checksum(mangled) != payload_checksum({"note": "no arrays here"})


class TestReliableTransport:
    def test_lossy_link_still_delivers_in_order(self):
        plan = FaultPlan(seed=1, drop=0.3, duplicate=0.2, corrupt=0.1, delay=0.1)
        transport = ReliableTransport(plan=plan, policy=RetryPolicy(max_retries=16))
        sent = [np.full((3,), fill_value=float(i)) for i in range(12)]
        for msg in sent:
            transport.send("server0", "server1", "data", msg)
        got = [transport.recv("server1", "server0", "data") for _ in range(12)]
        for a, b in zip(sent, got):
            np.testing.assert_array_equal(a, b)
        c = transport.counters
        assert c.retransmits.value() > 0 or c.duplicates_suppressed.value() > 0

    def test_corruption_is_detected_and_healed(self):
        plan = FaultPlan(seed=2, corrupt=0.5)
        transport = ReliableTransport(plan=plan, policy=RetryPolicy(max_retries=32))
        for i in range(8):
            transport.send("server0", "server1", "t", np.full((4,), float(i)))
        for i in range(8):
            np.testing.assert_array_equal(
                transport.recv("server1", "server0", "t"), np.full((4,), float(i))
            )
        assert transport.counters.corrupt_detected.value() > 0

    def test_total_loss_blames_the_sender(self):
        transport = ReliableTransport(
            plan=FaultPlan(drop=1.0), policy=RetryPolicy(max_retries=3)
        )
        transport.send("server0", "server1", "t", "payload")
        with pytest.raises(PartyFailure) as exc:
            transport.recv("server1", "server0", "t")
        assert exc.value.party == "server0"
        assert exc.value.blame.reason == "retry-exhausted"
        assert "server0->server1" in exc.value.blame.render()

    def test_crashed_sender_is_convicted_as_crash(self):
        plan = FaultPlan(crashes=(PartyCrash("server0", at_step=1),))
        transport = ReliableTransport(plan=plan, policy=RetryPolicy(max_retries=2))
        transport.send("server0", "server1", "t", "dead letter")  # fires the crash
        with pytest.raises(PartyFailure) as exc:
            transport.recv("server1", "server0", "t")
        assert exc.value.blame.reason == "crash"
        assert exc.value.party == "server0"

    def test_restart_plus_journal_replay_recovers_delivery(self):
        plan = FaultPlan(crashes=(PartyCrash("server0", at_step=1),))
        transport = ReliableTransport(plan=plan, policy=RetryPolicy(max_retries=4))
        transport.send("server0", "server1", "t", "first")  # black-holed: sender dead
        with pytest.raises(PartyFailure):
            transport.recv("server1", "server0", "t")
        transport.restart("server0")
        # after restart, the journalled frame is retransmitted on demand
        assert transport.recv("server1", "server0", "t") == "first"

    def test_actor_matmul_under_faults_is_bit_identical(self, rng):
        a = rng.normal(size=(5, 7))
        b = rng.normal(size=(7, 3))

        def run(plan):
            if plan is None:
                hub = LoopbackTransport()
                views = {r: hub.as_role(r) for r in ("client", "server0", "server1")}
            else:
                transport = ReliableTransport(
                    plan=plan, policy=RetryPolicy(max_retries=24)
                )
                views = {r: transport.as_role(r) for r in ("client", "server0", "server1")}
            client = ClientActor(views["client"], seed=13)
            servers = (ServerActor(0, views["server0"]), ServerActor(1, views["server1"]))
            return run_matmul(client, servers, a, b)

        baseline = run(None)
        faulty = run(FaultPlan(seed=4, drop=0.15, duplicate=0.1, corrupt=0.1))
        np.testing.assert_array_equal(baseline, faulty)


class TestMailboxIntrospection:
    def test_pending_and_peek(self):
        hub = TransportHub(["a", "b"])
        hub.send("a", "b", "t1", "one")
        hub.send("a", "b", "t1", "two")
        hub.send("a", "b", "t2", "three")
        box = hub.mailboxes["b"]
        assert box.pending("a", "t1") == 2
        assert box.pending("a") == 3
        assert box.pending(tag="t2") == 1
        assert box.peek("a", "t1") == "one"
        assert box.pending("a", "t1") == 2  # peek does not pop
        assert box.pending_summary() == {("a", "t1"): 2, ("a", "t2"): 1}

    def test_peek_empty_raises(self):
        hub = TransportHub(["a", "b"])
        with pytest.raises(TransportError):
            hub.mailboxes["b"].peek("a", "t")

    def test_recv_error_lists_pending_queues(self):
        hub = TransportHub(["a", "b"])
        hub.send("a", "b", "other", "x")
        with pytest.raises(TransportError, match=r"\('a', 'other'\)x1"):
            hub.recv("b", "a", "missing")

    def test_recv_error_on_empty_mailbox(self):
        hub = TransportHub(["a", "b"])
        with pytest.raises(TransportError, match="mailbox is empty"):
            hub.recv("b", "a", "missing")

    def test_actor_idle_assertion_flags_undrained_mailbox(self):
        hub = LoopbackTransport()
        client = ClientActor(hub.as_role("client"), seed=7)
        client.assert_idle()  # clean mailbox passes
        hub._hub.send("server0", "client", "stray", "oops")
        from repro.util.errors import ProtocolError

        with pytest.raises(ProtocolError, match="stray"):
            client.assert_idle()


class TestBlame:
    def test_render_names_party_link_and_reason(self):
        record = BlameRecord(
            party="server1",
            reason="retry-exhausted",
            link="server0->server1",
            step=7,
            attempts=9,
            evidence=("no ack",),
        )
        text = record.render()
        assert "server1" in text and "retry-exhausted" in text and "no ack" in text
        failure = PartyFailure(record)
        assert failure.party == "server1"
        assert failure.blame is record
