"""Average pooling on shares (linear, non-interactive)."""

import numpy as np
import pytest

from repro.core.layers import SecureAvgPool2D
from repro.core.tensor import SharedTensor
from repro.util.errors import ShapeError


def shared(ctx, arr):
    return SharedTensor.from_plain(ctx, np.asarray(arr, dtype=np.float64))


def plain_avgpool(x, shape, k):
    n = x.shape[0]
    h, w, c = shape
    return x.reshape(n, h // k, k, w // k, k, c).mean(axis=(2, 4)).reshape(n, -1)


class TestForward:
    def test_matches_plain_average(self, ctx, rng):
        pool = SecureAvgPool2D(ctx, (8, 8, 2), window=2)
        x = rng.normal(size=(3, 128))
        out = pool.forward(shared(ctx, x))
        np.testing.assert_allclose(out.decode(), plain_avgpool(x, (8, 8, 2), 2), atol=1e-3)

    def test_window_4(self, ctx, rng):
        pool = SecureAvgPool2D(ctx, (8, 8, 1), window=4)
        x = rng.normal(size=(2, 64))
        out = pool.forward(shared(ctx, x))
        np.testing.assert_allclose(out.decode(), plain_avgpool(x, (8, 8, 1), 4), atol=1e-3)
        assert pool.out_shape == (2, 2, 1)

    def test_consumes_no_triplets(self, ctx, rng):
        pool = SecureAvgPool2D(ctx, (4, 4, 1), window=2)
        before = ctx.triplets_issued
        pool.forward(shared(ctx, rng.normal(size=(2, 16))))
        assert ctx.triplets_issued == before  # fully local

    def test_indivisible_window_rejected(self, ctx):
        with pytest.raises(ShapeError):
            SecureAvgPool2D(ctx, (7, 8, 1), window=2)

    def test_wrong_input_size(self, ctx, rng):
        pool = SecureAvgPool2D(ctx, (4, 4, 1), window=2)
        with pytest.raises(ShapeError):
            pool.forward(shared(ctx, rng.normal(size=(2, 20))))


class TestBackward:
    def test_gradient_spreads_uniformly(self, ctx, rng):
        pool = SecureAvgPool2D(ctx, (4, 4, 1), window=2)
        x = rng.normal(size=(2, 16))
        pool.forward(shared(ctx, x))
        delta = rng.normal(size=(2, 4))
        dx = pool.backward(shared(ctx, delta)).decode()
        # each input position receives delta / k^2 of its window
        expected = np.repeat(np.repeat(delta.reshape(2, 2, 2, 1), 2, axis=1), 2, axis=2)
        expected = (expected / 4.0).reshape(2, -1)
        # account for the layout: build via broadcast like the layer does
        d = (delta / 4.0).reshape(2, 2, 1, 2, 1, 1)
        expected = np.broadcast_to(d, (2, 2, 2, 2, 2, 1)).reshape(2, -1)
        np.testing.assert_allclose(dx, expected, atol=2e-3)

    def test_adjoint_property(self, ctx, rng):
        """<pool(x), y> == <x, pool_backward(y)> up to the 1/k^2 scaling."""
        pool = SecureAvgPool2D(ctx, (4, 4, 1), window=2)
        x = rng.normal(size=(1, 16))
        y = rng.normal(size=(1, 4))
        fwd = pool.forward(shared(ctx, x)).decode()
        bwd = pool.backward(shared(ctx, y)).decode()
        assert float((fwd * y).sum()) == pytest.approx(float((x * bwd).sum()), abs=1e-2)
