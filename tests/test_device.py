"""Simulated devices: memory discipline, kernels, timing integration."""

import numpy as np
import pytest

from repro.fixedpoint.ring import ring_matmul
from repro.simgpu.clock import SimClock
from repro.simgpu.cost import V100_SPEC, XEON_E5_2670V3_SPEC
from repro.simgpu.device import SimCPU, SimGPU
from repro.simgpu.cost import DeviceSpec
from dataclasses import replace
from repro.util.errors import DeviceError


@pytest.fixture
def gpu():
    clock = SimClock()
    return SimGPU(clock, V100_SPEC, "g")


@pytest.fixture
def cpu():
    clock = SimClock()
    return SimCPU(clock, XEON_E5_2670V3_SPEC, "c")


class TestMemory:
    def test_h2d_d2h_roundtrip(self, gpu, rng):
        data = rng.integers(0, 2**64, size=(8, 8), dtype=np.uint64)
        buf, _ = gpu.h2d(data)
        back, _ = gpu.d2h(buf)
        assert np.array_equal(back, data)

    def test_use_after_free(self, gpu, rng):
        buf, _ = gpu.h2d(rng.integers(0, 10, size=(4, 4), dtype=np.uint64))
        gpu.free(buf)
        with pytest.raises(DeviceError):
            gpu.d2h(buf)

    def test_double_free(self, gpu, rng):
        buf, _ = gpu.h2d(rng.integers(0, 10, size=(4, 4), dtype=np.uint64))
        gpu.free(buf)
        with pytest.raises(DeviceError):
            gpu.free(buf)

    def test_out_of_memory(self):
        clock = SimClock()
        tiny = replace(V100_SPEC, memory_bytes=1024)
        gpu = SimGPU(clock, tiny, "tiny")
        with pytest.raises(DeviceError):
            gpu.h2d(np.zeros((64, 64), dtype=np.uint64))

    def test_peak_accounting(self, gpu, rng):
        a, _ = gpu.h2d(np.zeros((16, 16), dtype=np.uint64))
        b, _ = gpu.h2d(np.zeros((16, 16), dtype=np.uint64))
        gpu.free(a)
        assert gpu.pool.peak_bytes == 2 * 16 * 16 * 8
        assert gpu.pool.allocated_bytes == 16 * 16 * 8
        gpu.free(b)


class TestKernels:
    def test_gemm_ring_exact(self, gpu, rng):
        a = rng.integers(0, 2**64, size=(5, 7), dtype=np.uint64)
        b = rng.integers(0, 2**64, size=(7, 3), dtype=np.uint64)
        a_buf, _ = gpu.h2d(a)
        b_buf, _ = gpu.h2d(b)
        out, _ = gpu.gemm_ring(a_buf, b_buf)
        assert np.array_equal(out.require_live(), ring_matmul(a, b))

    def test_gemm_float_fp16_really_rounds(self, rng):
        clock = SimClock()
        gpu = SimGPU(clock, V100_SPEC, "tc", tensor_core=True)
        a = rng.normal(size=(8, 8)).astype(np.float32) * 1e-4
        b = rng.normal(size=(8, 8)).astype(np.float32)
        a_buf, _ = gpu.h2d(a)
        b_buf, _ = gpu.h2d(b)
        out, _ = gpu.gemm_float(a_buf, b_buf)
        fp16_ref = a.astype(np.float16).astype(np.float32) @ b.astype(np.float16).astype(
            np.float32
        )
        assert np.array_equal(out.require_live(), fp16_ref)

    def test_elementwise_charges_time(self, gpu, rng):
        data = rng.integers(0, 10, size=(64, 64), dtype=np.uint64)
        buf, _ = gpu.h2d(data)
        _, task = gpu.ring_add(buf, buf)
        assert task.duration > 0

    def test_stream_serialisation(self, gpu, rng):
        buf, _ = gpu.h2d(rng.integers(0, 10, size=(32, 32), dtype=np.uint64))
        _, t1 = gpu.ring_add(buf, buf)
        _, t2 = gpu.ring_add(buf, buf)
        assert t2.start >= t1.finish  # same stream

    def test_streams_are_independent(self, rng):
        clock = SimClock()
        gpu = SimGPU(clock, V100_SPEC, "g2", n_streams=2)
        a, _ = gpu.h2d(rng.integers(0, 2**32, size=(64, 64), dtype=np.uint64))
        _, t1 = gpu.gemm_ring(a, a, stream=0)
        _, t2 = gpu.gemm_ring(a, a, stream=1)
        assert t2.start < t1.finish  # overlapping

    def test_invalid_stream(self, gpu):
        with pytest.raises(DeviceError):
            gpu.stream(5)

    def test_curand_first_call_pays_setup(self, gpu, rng):
        _, t1 = gpu.curand_uniform_ring((16, 16), rng)
        _, t2 = gpu.curand_uniform_ring((16, 16), rng)
        assert t1.duration > t2.duration

    def test_counters(self, gpu, rng):
        a = rng.integers(0, 2**32, size=(4, 4), dtype=np.uint64)
        a_buf, _ = gpu.h2d(a)
        gpu.gemm_ring(a_buf, a_buf)
        assert gpu.gemm_count == 1
        assert gpu.gemm_flops == 2 * 4 * 4 * 4
        assert gpu.h2d_bytes == a.nbytes


class TestSimCPU:
    def test_gemm_ring_exact(self, cpu, rng):
        a = rng.integers(0, 2**64, size=(4, 6), dtype=np.uint64)
        b = rng.integers(0, 2**64, size=(6, 2), dtype=np.uint64)
        out, task = cpu.gemm_ring(a, b)
        assert np.array_equal(out, ring_matmul(a, b))
        assert task.duration > 0

    def test_parallel_flag_speeds_elementwise(self):
        clock = SimClock()
        fast = SimCPU(clock, XEON_E5_2670V3_SPEC, "f", parallel_enabled=True)
        slow = SimCPU(clock, XEON_E5_2670V3_SPEC, "s", parallel_enabled=False)
        arr = np.zeros(1_000_000, dtype=np.uint64)
        _, tf = fast.elementwise(lambda x: x, [arr])
        _, ts = slow.elementwise(lambda x: x, [arr])
        assert tf.duration < ts.duration

    def test_rng_fills_and_charges(self, cpu, rng):
        data, task = cpu.rng_uniform_ring((16, 16), rng)
        assert data.shape == (16, 16)
        assert cpu.rng_bytes == 16 * 16 * 8
        assert task.duration > 0
