"""Interactive secure ops: correctness across all configurations."""

import numpy as np
import pytest

from repro.core import ops
from repro.core.tensor import SharedTensor
from conftest import make_ctx
from repro.util.errors import ProtocolError, ShapeError


def shared(ctx, arr, **kw):
    return SharedTensor.from_plain(ctx, np.asarray(arr, dtype=np.float64), **kw)


class TestSecureMatmul:
    def test_matches_numpy(self, ctx, rng):
        a, b = rng.normal(size=(12, 9)), rng.normal(size=(9, 5))
        out = ops.secure_matmul(shared(ctx, a), shared(ctx, b), label="t")
        np.testing.assert_allclose(out.decode(), a @ b, atol=9 * 2**-12 + 2**-10)

    def test_cpu_and_gpu_paths_numerically_identical(self, rng):
        """Placement must never change results — only timing."""
        a, b = rng.normal(size=(8, 8)), rng.normal(size=(8, 8))
        outs = []
        for mode in ("cpu_always", "gpu_always"):
            ctx = make_ctx(placement_mode=mode, seed=99)
            out = ops.secure_matmul(shared(ctx, a), shared(ctx, b), label="t")
            outs.append(out.decode())
        np.testing.assert_array_equal(outs[0], outs[1])

    def test_pipeline_flag_does_not_change_numerics(self, rng):
        a, b = rng.normal(size=(8, 8)), rng.normal(size=(8, 8))
        outs = []
        for p1 in (False, True):
            ctx = make_ctx(pipeline1=p1, seed=5)
            outs.append(ops.secure_matmul(shared(ctx, a), shared(ctx, b), label="t").decode())
        np.testing.assert_array_equal(outs[0], outs[1])

    def test_compression_flag_does_not_change_numerics(self, rng):
        a, b = rng.normal(size=(8, 8)), rng.normal(size=(8, 8))
        outs = []
        for comp in (False, True):
            ctx = make_ctx(compression=comp, seed=5)
            ta, tb = shared(ctx, a), shared(ctx, b)
            for rep in range(3):  # repeats let the delta path engage
                out = ops.secure_matmul(ta, tb, label="t")
            outs.append(out.decode())
        np.testing.assert_array_equal(outs[0], outs[1])

    def test_shape_mismatch(self, ctx, rng):
        with pytest.raises(ShapeError):
            ops.secure_matmul(shared(ctx, rng.normal(size=(3, 4))), shared(ctx, rng.normal(size=(5, 2))))

    def test_charges_online_time_and_bytes(self, ctx, rng):
        a, b = rng.normal(size=(16, 16)), rng.normal(size=(16, 16))
        mark = ctx.mark()
        ops.secure_matmul(shared(ctx, a), shared(ctx, b), label="t")
        delta = ctx.since(mark)
        assert delta.online_s > 0
        assert delta.server_bytes > 0

    def test_triplet_stream_reused_across_calls(self, ctx, rng):
        a, b = rng.normal(size=(4, 4)), rng.normal(size=(4, 4))
        ta, tb = shared(ctx, a), shared(ctx, b)
        ops.secure_matmul(ta, tb, label="stream")
        issued = ctx.triplets_issued
        ops.secure_matmul(ta, tb, label="stream")
        assert ctx.triplets_issued == issued  # cached stream

    def test_fresh_triplets_config(self, rng):
        ctx = make_ctx(fresh_triplets=True)
        a, b = rng.normal(size=(4, 4)), rng.normal(size=(4, 4))
        ta, tb = shared(ctx, a), shared(ctx, b)
        ops.secure_matmul(ta, tb, label="stream")
        issued = ctx.triplets_issued
        ops.secure_matmul(ta, tb, label="stream")
        assert ctx.triplets_issued == issued + 1


class TestElementwiseMul:
    def test_matches_numpy(self, ctx, rng):
        a, b = rng.normal(size=(6, 7)), rng.normal(size=(6, 7))
        out = ops.secure_elementwise_mul(shared(ctx, a), shared(ctx, b), label="h")
        np.testing.assert_allclose(out.decode(), a * b, atol=2**-10)

    def test_fixed_times_indicator_keeps_scale(self, ctx, rng):
        a = rng.normal(size=(5, 5))
        mask = (rng.random((5, 5)) > 0.5).astype(np.int64)
        ta = shared(ctx, a)
        tm = SharedTensor.from_plain(ctx, mask, kind="indicator")
        out = ops.secure_elementwise_mul(ta, tm, label="mask")
        assert out.kind == "fixed"
        np.testing.assert_allclose(out.decode(), a * mask, atol=2e-4)

    def test_shape_mismatch(self, ctx, rng):
        with pytest.raises(ShapeError):
            ops.secure_elementwise_mul(
                shared(ctx, rng.normal(size=(2, 2))), shared(ctx, rng.normal(size=(3, 3)))
            )


class TestCompare:
    def test_indicator_correct(self, ctx, rng):
        x = rng.normal(size=(6, 6)) * 2
        out = ops.secure_compare_const(shared(ctx, x), 0.5, label="c")
        assert out.kind == "indicator"
        np.testing.assert_array_equal(out.decode(), (x >= 0.5).astype(float))

    def test_rejects_indicator_input(self, ctx):
        ind = SharedTensor.from_plain(ctx, np.eye(3), kind="indicator")
        with pytest.raises(ProtocolError):
            ops.secure_compare_const(ind, 0.0)

    def test_dealer_and_emulated_agree(self, rng):
        x = rng.normal(size=(5, 4))
        vals = []
        for proto in ("dealer", "emulated"):
            ctx = make_ctx(activation_protocol=proto, seed=3)
            vals.append(ops.secure_compare_const(shared(ctx, x), 0.0, label="c").decode())
        np.testing.assert_array_equal(vals[0], vals[1])

    def test_charges_comm(self, ctx, rng):
        x = rng.normal(size=(16, 16))
        mark = ctx.mark()
        ops.secure_compare_const(shared(ctx, x), 0.0, label="c")
        assert ctx.since(mark).server_bytes > 0


class TestActivation:
    def test_relu(self, ctx, rng):
        x = rng.normal(size=(8, 8)) * 2
        out, mask = ops.activation(shared(ctx, x), "relu", label="a")
        np.testing.assert_allclose(out.decode(), np.maximum(x, 0), atol=3e-4)
        np.testing.assert_array_equal(mask.decode(), (x >= 0).astype(float))

    def test_piecewise_matches_eq9(self, ctx, rng):
        x = rng.normal(size=(10, 4)) * 1.5
        out, mask = ops.activation(shared(ctx, x), "piecewise", label="a")
        expected = np.clip(x + 0.5, 0.0, 1.0)
        np.testing.assert_allclose(out.decode(), expected, atol=1e-3)
        inside = ((x >= -0.5) & (x < 0.5)).astype(float)
        np.testing.assert_array_equal(mask.decode(), inside)

    def test_piecewise_exact_breakpoints(self, ctx):
        x = np.array([[-1.0, -0.5, 0.0, 0.5, 1.0]])
        out, _ = ops.activation(shared(ctx, x), "piecewise", label="a")
        np.testing.assert_allclose(out.decode(), [[0.0, 0.0, 0.5, 1.0, 1.0]], atol=1e-3)

    def test_unknown_kind(self, ctx, rng):
        with pytest.raises(ProtocolError):
            ops.activation(shared(ctx, rng.normal(size=(2, 2))), "softplus")


class TestDoublePipelineEquivalence:
    def test_numerics_invariant_to_pipeline2(self, rng):
        """Pipeline 2 only reorders the schedule; results are identical."""
        a, b, c = (rng.normal(size=(6, 6)) for _ in range(3))
        outs = []
        for dp in (False, True):
            ctx = make_ctx(double_pipeline=dp, seed=8)
            t = ops.secure_matmul(shared(ctx, a), shared(ctx, b), label="l1")
            t = ops.secure_matmul(t, shared(ctx, c), label="l2")
            outs.append(t.decode())
        np.testing.assert_array_equal(outs[0], outs[1])
