"""Protocol backend layer: registry, threading, rep3, replay pinning.

The acceptance contract for the pluggable-substrate refactor:

* the registry resolves both shipped backends and rejects unknown names;
* ``backend=`` threads from the api facade through config into the
  context (party count, dealer wiring, serving);
* the default path is *unchanged*: a beaver2pc run replays
  bit-identically against the pre-refactor reference transcript;
* rep3 computes correct products/comparisons, passes the wire auditor,
  and raises backend-named errors when dealer material is requested.
"""

from __future__ import annotations

import numpy as np
import pytest

import repro
from repro.audit.conformance import ConformanceCase, run_conformance_case
from repro.audit.transcript import Transcript
from repro.audit.wire import audit_transcript
from repro.protocols import (
    Beaver2PCBackend,
    Rep3Backend,
    available_backends,
    get_backend,
)
from repro.protocols.rep3 import rep3_reconstruct, rep3_share
from repro.util.errors import ConfigError, ProtocolError

REFERENCE_TRANSCRIPT = "tests/data/beaver2pc_mlp_train_transcript.json"


class TestRegistry:
    def test_shipped_backends_registered(self):
        assert available_backends() == ("beaver2pc", "rep3")
        assert isinstance(get_backend("beaver2pc"), Beaver2PCBackend)
        assert isinstance(get_backend("rep3"), Rep3Backend)

    def test_unknown_backend_rejected(self):
        with pytest.raises(ConfigError, match="unknown protocol backend"):
            get_backend("rep5")

    def test_backend_attributes(self):
        beaver = get_backend("beaver2pc")
        rep3 = get_backend("rep3")
        assert (beaver.n_parties, beaver.needs_dealer) == (2, True)
        assert (rep3.n_parties, rep3.needs_dealer) == (3, False)

    def test_top_level_exports(self):
        assert repro.available_backends is available_backends
        assert repro.get_backend is get_backend


class TestThreading:
    def test_session_default_is_beaver2pc(self):
        ctx = repro.api.session(seed=0)
        assert ctx.backend.name == "beaver2pc"
        assert ctx.n_parties == 2
        assert len(ctx.uplinks) == 2

    def test_session_backend_kwarg(self):
        ctx = repro.api.session(backend="rep3", seed=0)
        assert ctx.backend.name == "rep3"
        assert ctx.n_parties == 3
        assert len(ctx.uplinks) == 3
        assert set(ctx.server_links) == {(0, 1), (0, 2), (1, 2)}

    def test_rep3_never_provisions_a_pool(self):
        ctx = repro.api.session(backend="rep3", pool_size=8, seed=0)
        assert ctx.triplet_pool is None

    def test_unknown_backend_fails_at_session(self):
        with pytest.raises(ConfigError, match="unknown protocol backend"):
            repro.api.session(backend="rep5")

    def test_serve_backend_kwarg(self):
        fleet = repro.api.serve(
            lambda ctx: repro.SecureMLP(ctx, 8, hidden=(6,), n_out=2),
            replicas=2, backend="rep3", max_batch=4, seed=0,
        )
        x = np.random.default_rng(0).normal(size=(4, 8))
        fleet.submit("client-a", x)
        fleet.drain()
        report = fleet.report()
        assert set(report.backends.values()) == {"rep3"}
        assert report.served_requests == 1
        assert report.dropped_requests == 0
        for stats in (r.stats() for r in fleet.router.replicas()):
            assert stats.backend == "rep3"


class TestBeaverReplayPinning:
    """The default backend must not have moved a single wire byte."""

    def test_replays_bit_identically_against_reference(self):
        ref = Transcript.load(REFERENCE_TRANSCRIPT)
        result = run_conformance_case(
            ConformanceCase(model="MLP", axis="baseline", train=True),
            audit=True, capture_payloads=True,
        )
        assert result.agreed
        assert ref.diff(result.transcript) is None


class TestRep3Ops:
    @pytest.fixture(scope="class")
    def ctx(self):
        return repro.api.session(backend="rep3", seed=11)

    def test_matmul(self, ctx):
        rng = np.random.default_rng(2)
        a, b = rng.normal(size=(6, 5)), rng.normal(size=(5, 4))
        x = repro.SharedTensor.from_plain(ctx, a)
        y = repro.SharedTensor.from_plain(ctx, b)
        out = repro.secure_matmul(x, y, label="t_mm")
        assert np.max(np.abs(out.decode() - a @ b)) < 5e-3

    def test_elementwise(self, ctx):
        rng = np.random.default_rng(3)
        a, b = rng.normal(size=(4, 7)), rng.normal(size=(4, 7))
        out = repro.secure_elementwise_mul(
            repro.SharedTensor.from_plain(ctx, a),
            repro.SharedTensor.from_plain(ctx, b),
            label="t_ew",
        )
        assert np.max(np.abs(out.decode() - a * b)) < 5e-3

    def test_compare_and_activation(self, ctx):
        rng = np.random.default_rng(4)
        a = rng.normal(size=(5, 5))
        x = repro.SharedTensor.from_plain(ctx, a)
        ind = repro.secure_compare_const(x, 0.0, label="t_cmp")
        np.testing.assert_array_equal(ind.decode(), (a >= 0).astype(float))
        out, mask = repro.activation(x, kind="relu", label="t_act")
        assert np.max(np.abs(out.decode() - np.maximum(a, 0))) < 5e-3

    def test_mul_public_and_checkpoint(self, ctx, tmp_path):
        rng = np.random.default_rng(5)
        a = rng.normal(size=(4, 4))
        x = repro.SharedTensor.from_plain(ctx, a)
        assert np.max(np.abs(x.mul_public(0.5).decode() - 0.5 * a)) < 5e-3

        from repro.core.checkpoint import load_model, save_model

        model = repro.SecureMLP(ctx, 6, hidden=(4,), n_out=2)
        save_model(model, tmp_path)
        other = repro.SecureMLP(
            repro.api.session(backend="rep3", seed=99), 6, hidden=(4,), n_out=2
        )
        load_model(other, tmp_path)
        np.testing.assert_array_equal(
            model.layers[0].weight.decode(), other.layers[0].weight.decode()
        )

    def test_checkpoint_party_count_mismatch(self, ctx, tmp_path):
        from repro.core.checkpoint import load_model, save_model

        model = repro.SecureMLP(ctx, 6, hidden=(4,), n_out=2)
        save_model(model, tmp_path)
        two_party = repro.SecureMLP(repro.api.session(seed=1), 6, hidden=(4,), n_out=2)
        with pytest.raises(ProtocolError, match="share archives"):
            load_model(two_party, tmp_path)

    def test_wire_view_uniform(self):
        ctx = repro.api.session(backend="rep3", seed=21)
        recorder = ctx.attach_recorder(capture_payloads=True)
        rng = np.random.default_rng(6)
        a = rng.normal(size=(24, 16))
        b = rng.normal(size=(16, 12))
        x = repro.SharedTensor.from_plain(ctx, a)
        y = repro.SharedTensor.from_plain(ctx, b)
        repro.secure_matmul(x, y, label="t_wire")
        repro.activation(x, kind="relu", label="t_wire_act")
        report = audit_transcript(recorder.transcript())
        assert report.passed, report.summary()

    def test_share_reconstruct_roundtrip(self):
        rng = np.random.default_rng(7)
        secret = rng.integers(0, 2**64, size=(3, 9), dtype=np.uint64)
        shares = rep3_share(secret, rng)
        assert len(shares) == 3
        np.testing.assert_array_equal(rep3_reconstruct(shares), secret)


class TestBackendNamedErrors:
    def test_dealer_free_backend_refuses_triplets(self):
        ctx = repro.api.session(backend="rep3", seed=0)
        with pytest.raises(ProtocolError, match=r"\[rep3\].*'mm'.*dealer-free"):
            ctx.get_matrix_triplet("mm", (4, 4), (4, 4))
        with pytest.raises(ProtocolError, match=r"\[rep3\]"):
            ctx.get_elementwise_triplet("ew", (4, 4))

    def test_double_consume_names_backend_and_stream(self):
        ctx = repro.api.session(seed=0)
        triplet = ctx.get_matrix_triplet("dbl", (2, 2), (2, 2))
        share = triplet.share_for(0)
        share.mark_consumed()
        with pytest.raises(ProtocolError, match=r"\[beaver2pc\].*'dbl'"):
            share.mark_consumed()

    def test_shape_mismatch_names_backend_and_stream(self):
        ctx = repro.api.session(seed=0)
        rng = np.random.default_rng(8)
        x = repro.SharedTensor.from_plain(ctx, rng.normal(size=(4, 3)))
        y = repro.SharedTensor.from_plain(ctx, rng.normal(size=(5, 2)))
        with pytest.raises(Exception, match=r"\[beaver2pc:bad\]"):
            repro.secure_matmul(x, y, label="bad")


class TestRep3EndToEnd:
    def test_training_matches_plain_within_tolerance(self):
        result = run_conformance_case(
            ConformanceCase(model="logistic", axis="baseline", train=True,
                            backend="rep3")
        )
        assert result.agreed, result.describe()
        assert result.wire is not None and result.wire.passed

    def test_rep3_replay_is_deterministic(self):
        runs = [
            run_conformance_case(
                ConformanceCase(model="MLP", axis="baseline", backend="rep3")
            )
            for _ in range(2)
        ]
        runs[0].transcript.assert_identical(runs[1].transcript)
        np.testing.assert_array_equal(runs[0].predictions, runs[1].predictions)
