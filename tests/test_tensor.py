"""SharedTensor: local linear algebra and scale discipline."""

import numpy as np
import pytest

from repro.core.tensor import SharedTensor
from repro.util.errors import ProtocolError, ShapeError


def shared(ctx, arr, **kw):
    return SharedTensor.from_plain(ctx, np.asarray(arr, dtype=np.float64), **kw)


class TestConstruction:
    def test_from_plain_decodes_back(self, ctx, rng):
        x = rng.normal(size=(6, 4))
        t = shared(ctx, x)
        np.testing.assert_allclose(t.decode(), x, atol=ctx.encoder.resolution)

    def test_sharing_charges_offline_time(self, ctx, rng):
        before = ctx.offline_clock.now()
        shared(ctx, rng.normal(size=(64, 64)))
        assert ctx.offline_clock.now() > before

    def test_indicator_kind(self, ctx):
        t = SharedTensor.from_plain(ctx, np.array([[0, 1], [1, 0]]), kind="indicator")
        assert t.kind == "indicator"
        np.testing.assert_array_equal(t.decode(), [[0, 1], [1, 0]])

    def test_share_shape_mismatch_rejected(self, ctx):
        with pytest.raises(ShapeError):
            SharedTensor(
                ctx=ctx,
                shares=(np.zeros((2, 2), dtype=np.uint64), np.zeros((3, 2), dtype=np.uint64)),
            )

    def test_wrong_dtype_rejected(self, ctx):
        with pytest.raises(ProtocolError):
            SharedTensor(ctx=ctx, shares=(np.zeros((2, 2)), np.zeros((2, 2))))


class TestLocalOps:
    def test_add_sub_neg(self, ctx, rng):
        a, b = rng.normal(size=(5, 3)), rng.normal(size=(5, 3))
        ta, tb = shared(ctx, a), shared(ctx, b)
        np.testing.assert_allclose((ta + tb).decode(), a + b, atol=2e-4)
        np.testing.assert_allclose((ta - tb).decode(), a - b, atol=2e-4)
        np.testing.assert_allclose((-ta).decode(), -a, atol=2e-4)

    def test_add_public(self, ctx, rng):
        a = rng.normal(size=(4, 4))
        np.testing.assert_allclose(
            shared(ctx, a).add_public(0.5).decode(), a + 0.5, atol=2e-4
        )

    def test_mul_public_int(self, ctx, rng):
        a = rng.normal(size=(4, 4))
        np.testing.assert_allclose(
            shared(ctx, a).mul_public_int(3).decode(), 3 * a, atol=5e-4
        )

    def test_mul_public_real(self, ctx, rng):
        a = rng.normal(size=(4, 4))
        np.testing.assert_allclose(
            shared(ctx, a).mul_public(0.37).decode(), 0.37 * a, atol=1e-3
        )

    def test_mul_public_on_indicator_rejected(self, ctx):
        t = SharedTensor.from_plain(ctx, np.eye(2), kind="indicator")
        with pytest.raises(ProtocolError):
            t.mul_public(0.5)

    def test_kind_mismatch_in_add(self, ctx):
        fixed = shared(ctx, np.eye(2))
        ind = SharedTensor.from_plain(ctx, np.eye(2), kind="indicator")
        with pytest.raises(ProtocolError):
            fixed + ind

    def test_to_fixed_lifts_indicator(self, ctx):
        ind = SharedTensor.from_plain(ctx, np.array([[0, 1]]), kind="indicator")
        lifted = ind.to_fixed()
        assert lifted.kind == "fixed"
        np.testing.assert_allclose(lifted.decode(), [[0.0, 1.0]])

    def test_add_charges_online_time(self, ctx, rng):
        a = shared(ctx, rng.normal(size=(32, 32)))
        before = ctx.online_clock.now()
        _ = a + a
        assert ctx.online_clock.now() > before


class TestShapeOps:
    def test_transpose(self, ctx, rng):
        a = rng.normal(size=(3, 5))
        np.testing.assert_allclose(shared(ctx, a).T.decode(), a.T, atol=2e-4)

    def test_reshape(self, ctx, rng):
        a = rng.normal(size=(4, 6))
        np.testing.assert_allclose(
            shared(ctx, a).reshape(2, 12).decode(), a.reshape(2, 12), atol=2e-4
        )

    def test_row_slice(self, ctx, rng):
        a = rng.normal(size=(10, 3))
        np.testing.assert_allclose(
            shared(ctx, a).row_slice(2, 6).decode(), a[2:6], atol=2e-4
        )

    def test_sum_rows(self, ctx, rng):
        a = rng.normal(size=(7, 4))
        np.testing.assert_allclose(
            shared(ctx, a).sum_rows().decode(), a.sum(axis=0, keepdims=True), atol=2e-3
        )

    def test_broadcast_rows(self, ctx, rng):
        b = rng.normal(size=(1, 5))
        out = shared(ctx, b).broadcast_rows(4)
        np.testing.assert_allclose(out.decode(), np.tile(b, (4, 1)), atol=2e-4)

    def test_broadcast_requires_single_row(self, ctx, rng):
        with pytest.raises(ShapeError):
            shared(ctx, rng.normal(size=(2, 5))).broadcast_rows(4)
