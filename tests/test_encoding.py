"""Fixed-point encoding: roundtrips, scales, bounds."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.fixedpoint.encoding import FixedPointEncoder
from repro.util.errors import ConfigError

reals = st.floats(min_value=-1e6, max_value=1e6, allow_nan=False, allow_infinity=False)


class TestRoundtrip:
    @given(reals)
    def test_roundtrip_within_resolution(self, x):
        enc = FixedPointEncoder(13)
        decoded = float(enc.decode(enc.encode(np.float64(x))))
        assert abs(decoded - x) <= enc.resolution / 2 + 1e-12

    @given(st.integers(1, 20))
    def test_resolution_matches_frac_bits(self, frac_bits):
        enc = FixedPointEncoder(frac_bits)
        assert enc.resolution == 2.0**-frac_bits
        assert enc.scale == 2**frac_bits

    def test_negative_values_use_upper_half_ring(self):
        enc = FixedPointEncoder(13)
        encoded = enc.encode(np.float64(-1.0))
        assert int(encoded) > 2**63  # two's complement embedding
        assert float(enc.decode(encoded)) == -1.0

    def test_array_roundtrip(self, rng, encoder):
        x = rng.normal(size=(50, 7))
        decoded = encoder.decode(encoder.encode(x))
        np.testing.assert_allclose(decoded, x, atol=encoder.resolution)

    def test_rounds_to_nearest(self, encoder):
        # 0.6 * 2^13 = 4915.2 -> rounds to 4915
        assert int(encoder.encode(np.float64(0.6))) == 4915


class TestDoubleScale:
    def test_product_decodes_at_double_scale(self, rng, encoder):
        a, b = rng.normal(), rng.normal()
        ea = int(encoder.encode(np.float64(a)))
        eb = int(encoder.encode(np.float64(b)))
        prod = np.uint64((ea * eb) % 2**64)
        decoded = float(encoder.decode(prod, double_scale=True))
        assert abs(decoded - a * b) < 1e-3


class TestIntegerEmbedding:
    def test_encode_int_no_scaling(self, encoder):
        vals = np.array([-3, 0, 7])
        encoded = encoder.encode_int(vals)
        assert int(encoded[1]) == 0
        assert int(encoded[2]) == 7
        assert int(encoded[0]) == 2**64 - 3


class TestValidation:
    @pytest.mark.parametrize("bad", [0, -1, 31, 64])
    def test_frac_bits_bounds(self, bad):
        with pytest.raises(ConfigError):
            FixedPointEncoder(bad)

    def test_max_magnitude_is_safe(self, encoder):
        m = encoder.max_magnitude()
        # squaring the bound at double scale must stay below 2^62
        assert (m * encoder.scale) ** 2 < 2**62
