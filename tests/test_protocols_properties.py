"""Property-based tests for the protocol backends (hypothesis).

Algebraic invariants that must hold for *any* ring tensor, not just the
fixtures the example suites use:

* share -> reconstruct is the identity, for both backends;
* additive sharing is homomorphic under ring addition;
* rep3 cross-terms cover the full 3x3 product exactly once, so the sum
  of the three locally computed z_i equals the plain ring product;
* resharing with PRG zero-shares is sum-preserving (the defining
  property of the rep3 communication round).
"""

from __future__ import annotations

import numpy as np
import pytest

hypothesis = pytest.importorskip("hypothesis")
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra.numpy import arrays

from repro.fixedpoint.ring import ring_add, ring_mul
from repro.protocols import get_backend
from repro.protocols.rep3 import (
    rep3_cross_term,
    rep3_reconstruct,
    rep3_share,
    rep3_zero_shares,
)

RING_TENSORS = arrays(
    dtype=np.uint64,
    shape=st.tuples(st.integers(1, 4), st.integers(1, 4)),
    elements=st.integers(0, 2**64 - 1),
)

SEEDS = st.integers(0, 2**31 - 1)


@settings(max_examples=50, deadline=None)
@given(secret=RING_TENSORS, seed=SEEDS, backend=st.sampled_from(["beaver2pc", "rep3"]))
def test_share_reconstruct_roundtrip(secret, seed, backend):
    b = get_backend(backend)
    shares = b.share_secret(secret, np.random.default_rng(seed))
    assert len(tuple(shares[i] for i in range(b.n_parties))) == b.n_parties
    np.testing.assert_array_equal(
        b.reconstruct(tuple(shares[i] for i in range(b.n_parties))), secret
    )


@settings(max_examples=50, deadline=None)
@given(a=RING_TENSORS, seed=SEEDS, backend=st.sampled_from(["beaver2pc", "rep3"]))
def test_sharing_is_additively_homomorphic(a, seed, backend):
    b = get_backend(backend)
    rng = np.random.default_rng(seed)
    x = b.share_secret(a, rng)
    y = b.share_secret(ring_mul(a, np.uint64(3)), rng)
    summed = tuple(ring_add(x[i], y[i]) for i in range(b.n_parties))
    np.testing.assert_array_equal(
        b.reconstruct(summed), ring_add(a, ring_mul(a, np.uint64(3)))
    )


@settings(max_examples=50, deadline=None)
@given(a=RING_TENSORS, seed=SEEDS)
def test_rep3_cross_terms_sum_to_product(a, seed):
    rng = np.random.default_rng(seed)
    b = ring_add(a, np.uint64(1))
    xs, ys = rep3_share(a, rng), rep3_share(b, rng)
    total = None
    for i in range(3):
        z = rep3_cross_term(i, xs, ys)
        total = z if total is None else ring_add(total, z)
    np.testing.assert_array_equal(total, ring_mul(a, b))


@settings(max_examples=50, deadline=None)
@given(a=RING_TENSORS, seed=SEEDS)
def test_rep3_resharing_is_sum_preserving(a, seed):
    rng = np.random.default_rng(seed)
    parts = rep3_share(a, rng)
    alphas = rep3_zero_shares(a.shape, rng)
    # the PRG shares must themselves sum to zero ...
    np.testing.assert_array_equal(
        ring_add(ring_add(alphas[0], alphas[1]), alphas[2]),
        np.zeros(a.shape, dtype=np.uint64),
    )
    # ... so masking every party's value preserves the reconstruction
    masked = tuple(ring_add(parts[i], alphas[i]) for i in range(3))
    np.testing.assert_array_equal(rep3_reconstruct(masked), a)


@settings(max_examples=25, deadline=None)
@given(a=RING_TENSORS, bits=st.integers(1, 20), backend=st.sampled_from(["beaver2pc", "rep3"]))
def test_truncation_error_is_bounded(a, bits, backend):
    # share-local truncation is correct up to +-1 ulp at the truncated
    # scale w.h.p.; with small inputs (top bits clear) it is within 1.
    b = get_backend(backend)
    small = ring_mul(a, np.uint64(0))  # zero tensor: exact case
    shares = b.share_secret(small, np.random.default_rng(0))
    out = b.truncate_values(tuple(shares[i] for i in range(b.n_parties)), bits)
    recon = b.reconstruct(tuple(out)).view(np.int64)
    assert np.all(np.abs(recon) <= 1)
