"""Beaver triplet generation (offline phase)."""

import numpy as np
import pytest

from repro.fixedpoint.ring import ring_matmul, ring_mul
from repro.mpc.shares import reconstruct
from repro.mpc.triplets import TripletDealer
from repro.util.errors import ProtocolError, ShapeError


@pytest.fixture
def dealer(rng):
    return TripletDealer(rng)


class TestMatrixTriplet:
    def test_z_equals_u_matmul_v(self, dealer):
        t = dealer.matrix_triplet((4, 6), (6, 3))
        u = reconstruct(t.u.share0, t.u.share1)
        v = reconstruct(t.v.share0, t.v.share1)
        z = reconstruct(t.z.share0, t.z.share1)
        assert np.array_equal(z, ring_matmul(u, v))

    def test_shapes(self, dealer):
        t = dealer.matrix_triplet((4, 6), (6, 3))
        assert t.u.shape == (4, 6)
        assert t.v.shape == (6, 3)
        assert t.z.shape == (4, 3)

    def test_incompatible_shapes_raise(self, dealer):
        with pytest.raises(ShapeError):
            dealer.matrix_triplet((4, 6), (5, 3))

    def test_non_2d_raises(self, dealer):
        with pytest.raises(ShapeError):
            dealer.matrix_triplet((4,), (4, 3))

    def test_fresh_randomness_per_triplet(self, dealer):
        t1 = dealer.matrix_triplet((3, 3), (3, 3))
        t2 = dealer.matrix_triplet((3, 3), (3, 3))
        assert not np.array_equal(
            reconstruct(t1.u.share0, t1.u.share1), reconstruct(t2.u.share0, t2.u.share1)
        )

    def test_counter_increments(self, dealer):
        dealer.matrix_triplet((2, 2), (2, 2))
        dealer.elementwise_triplet((4, 4))
        assert dealer.triplets_issued == 2


class TestElementwiseTriplet:
    def test_z_equals_u_hadamard_v(self, dealer):
        t = dealer.elementwise_triplet((5, 7))
        u = reconstruct(t.u.share0, t.u.share1)
        v = reconstruct(t.v.share0, t.v.share1)
        z = reconstruct(t.z.share0, t.z.share1)
        assert np.array_equal(z, ring_mul(u, v))

    def test_nd_shapes_supported(self, dealer):
        t = dealer.elementwise_triplet((2, 3, 4))
        assert t.u.shape == (2, 3, 4)


class TestSingleUse:
    def test_share_consumption_enforced(self, dealer):
        t = dealer.matrix_triplet((2, 2), (2, 2))
        share = t.share_for(0)
        share.mark_consumed()
        with pytest.raises(ProtocolError):
            share.mark_consumed()

    def test_each_party_gets_own_share_object(self, dealer):
        t = dealer.matrix_triplet((2, 2), (2, 2))
        s0, s1 = t.share_for(0), t.share_for(1)
        assert s0.party_id == 0
        assert s1.party_id == 1
        s0.mark_consumed()  # does not affect s1
        s1.mark_consumed()


class TestDealerWithCustomMatmul:
    def test_injected_matmul_used(self, rng):
        calls = []

        def spy_matmul(u, v):
            calls.append((u.shape, v.shape))
            return ring_matmul(u, v)

        dealer = TripletDealer(rng, matmul=spy_matmul)
        dealer.matrix_triplet((3, 4), (4, 2))
        assert calls == [((3, 4), (4, 2))]
