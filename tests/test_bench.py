"""Benchmark harness: grid, workload loading, runs, reporting."""

import numpy as np
import pytest

from repro.bench.harness import run_plain, run_secure, run_secure_inference, run_plain_inference
from repro.bench.reporting import format_speedup_series, format_table, geomean
from repro.bench.workloads import (
    BENCH_DATASETS,
    BENCH_MODELS,
    benchmark_grid,
    build_plain_model,
    build_secure_model,
    load_workload,
)
from repro.core.config import FrameworkConfig
from conftest import make_ctx
from repro.util.errors import ConfigError


class TestGrid:
    def test_grid_matches_paper_table2(self):
        """Table 2/3 enumerate 26 rows: 5 models x 5 datasets + RNN on
        SYNTHETIC only."""
        cells = benchmark_grid()
        assert len(cells) == 26
        assert ("RNN", "SYNTHETIC") in cells
        assert ("RNN", "MNIST") not in cells

    def test_models_and_datasets(self):
        assert set(BENCH_MODELS) == {"CNN", "MLP", "linear", "logistic", "SVM", "RNN"}
        assert set(BENCH_DATASETS) == {"VGGFace2", "NIST", "SYNTHETIC", "MNIST", "CIFAR-10"}


class TestLoadWorkload:
    def test_mnist_mlp(self):
        x, y, spec = load_workload("MLP", "MNIST", n_batches=1, batch_size=32)
        assert x.shape == (32, 784)
        assert spec.paper_batches == 60_000 // 32

    def test_nist_reduced_by_default(self):
        _, _, spec = load_workload("MLP", "NIST", n_batches=1, batch_size=8)
        assert spec.image_shape == (128, 128, 1)
        assert spec.geometry_reduced

    def test_nist_full_scale_flag(self):
        _, _, spec = load_workload("linear", "NIST", n_batches=1, batch_size=2, full_scale=True)
        assert spec.image_shape == (512, 512, 1)
        assert not spec.geometry_reduced

    def test_svm_gets_binary_labels(self):
        _, y, _ = load_workload("SVM", "MNIST", n_batches=1, batch_size=16)
        assert set(np.unique(y)) <= {-1.0, 1.0}

    def test_rnn_only_on_synthetic(self):
        with pytest.raises(ConfigError):
            load_workload("RNN", "MNIST")

    def test_conv_stride_scales_with_image(self):
        _, _, small = load_workload("CNN", "MNIST", n_batches=1, batch_size=4)
        _, _, big = load_workload("CNN", "VGGFace2", n_batches=1, batch_size=4)
        assert small.conv_stride == 1
        assert big.conv_stride > 1

    def test_unknown_model(self):
        with pytest.raises(ConfigError):
            load_workload("transformer", "MNIST")


class TestModelBuilders:
    @pytest.mark.parametrize("model", BENCH_MODELS)
    def test_secure_and_plain_builders(self, model):
        ds = "SYNTHETIC" if model == "RNN" else "MNIST"
        _, _, spec = load_workload(model, ds, n_batches=1, batch_size=8)
        ctx = make_ctx(activation_protocol="emulated")
        assert build_secure_model(ctx, spec) is not None
        assert build_plain_model(spec) is not None


class TestHarnessRuns:
    def test_secure_run_result_fields(self):
        res = run_secure(
            "linear",
            "MNIST",
            FrameworkConfig.parsecureml(activation_protocol="emulated"),
            n_batches=2,
            batch_size=32,
        )
        assert res.measured_batches == 2
        assert res.per_batch_online_s > 0
        assert res.sharing_offline_s > 0
        assert res.total_s(10) == pytest.approx(res.offline_s(10) + res.online_s(10))

    def test_plain_run(self):
        res = run_plain("linear", "MNIST", "cpu", n_batches=2, batch_size=32)
        assert res.per_batch_s > 0
        assert res.total_s(10) == pytest.approx(10 * res.per_batch_s)

    def test_inference_runs(self):
        cfg = FrameworkConfig.parsecureml(activation_protocol="emulated")
        sec = run_secure_inference("linear", "MNIST", cfg, n_batches=2, batch_size=32)
        pla = run_plain_inference("linear", "MNIST", "gpu", n_batches=2, batch_size=32)
        assert sec.per_batch_online_s > 0
        assert pla.per_batch_s > 0

    def test_speedup_direction(self):
        """The headline claim at small scale: ParSecureML beats SecureML."""
        kw = dict(n_batches=2, batch_size=32)
        par = run_secure("MLP", "MNIST", FrameworkConfig.parsecureml(activation_protocol="emulated"), **kw)
        sml = run_secure("MLP", "MNIST", FrameworkConfig.secureml(activation_protocol="emulated"), **kw)
        assert sml.total_s() > par.total_s()
        assert sml.online_s() > par.online_s()


class TestReporting:
    def test_geomean(self):
        assert geomean([1.0, 4.0]) == pytest.approx(2.0)
        assert geomean([]) == 0.0
        assert geomean([0.0, 2.0]) == 2.0  # zeros skipped

    def test_format_table(self):
        rows = [{"model": "MLP", "speedup": 12.5}, {"model": "CNN", "speedup": 3.25}]
        text = format_table(rows, ["model", "speedup"], title="T")
        assert "MLP" in text and "12.50" in text and "T" in text

    def test_format_speedup_series(self):
        text = format_speedup_series(["a", "b"], [2.0, 4.0], title="S")
        assert "geomean" in text
        assert "#" in text
