"""Secure layers against plain-float references."""

import numpy as np
import pytest

from repro.core.layers import SecureActivation, SecureConv2D, SecureDense, SecureRNNCell
from repro.core.tensor import SharedTensor
from repro.simgpu.kernels import conv_output_size, im2col
from repro.util.errors import ProtocolError, ShapeError


def shared(ctx, arr, **kw):
    return SharedTensor.from_plain(ctx, np.asarray(arr, dtype=np.float64), **kw)


def set_weights(layer_tensor, ctx, values):
    """Overwrite a layer's shared parameter with known values."""
    pair = ctx.share_plain(np.asarray(values, dtype=np.float64), label="test/W")
    layer_tensor.shares = (pair.share0, pair.share1)
    return layer_tensor


class TestSecureDense:
    def test_forward_matches_reference(self, ctx, rng):
        layer = SecureDense(ctx, 6, 4, name="d")
        w = rng.normal(size=(6, 4)) * 0.3
        b = rng.normal(size=(1, 4)) * 0.1
        set_weights(layer.weight, ctx, w)
        set_weights(layer.bias, ctx, b)
        x = rng.normal(size=(5, 6))
        out = layer.forward(shared(ctx, x))
        np.testing.assert_allclose(out.decode(), x @ w + b, atol=5e-3)

    def test_backward_gradients_match_reference(self, ctx, rng):
        layer = SecureDense(ctx, 4, 3, name="d")
        w = rng.normal(size=(4, 3)) * 0.3
        set_weights(layer.weight, ctx, w)
        set_weights(layer.bias, ctx, np.zeros((1, 3)))
        x = rng.normal(size=(8, 4))
        delta = rng.normal(size=(8, 3))
        layer.forward(shared(ctx, x))
        dx = layer.backward(shared(ctx, delta))
        np.testing.assert_allclose(dx.decode(), delta @ w.T, atol=5e-3)
        np.testing.assert_allclose(layer._grad_w.decode(), x.T @ delta / 8, atol=5e-3)
        np.testing.assert_allclose(
            layer._grad_b.decode(), delta.mean(axis=0, keepdims=True), atol=5e-3
        )

    def test_sgd_update(self, ctx, rng):
        layer = SecureDense(ctx, 3, 2, name="d")
        w0 = layer.weight.decode().copy()
        x = rng.normal(size=(4, 3))
        y = rng.normal(size=(4, 2))
        pred = layer.forward(shared(ctx, x))
        layer.backward(pred - shared(ctx, y))
        layer.apply_gradients(0.5)
        assert not np.allclose(layer.weight.decode(), w0)

    def test_wrong_input_width(self, ctx, rng):
        layer = SecureDense(ctx, 3, 2, name="d")
        with pytest.raises(ShapeError):
            layer.forward(shared(ctx, rng.normal(size=(4, 5))))

    def test_backward_before_forward(self, ctx, rng):
        layer = SecureDense(ctx, 3, 2, name="d")
        with pytest.raises(ProtocolError):
            layer.backward(shared(ctx, rng.normal(size=(4, 2))))


class TestSecureActivation:
    def test_relu_forward_backward(self, ctx, rng):
        layer = SecureActivation(ctx, "relu", name="a")
        x = rng.normal(size=(6, 5))
        out = layer.forward(shared(ctx, x))
        np.testing.assert_allclose(out.decode(), np.maximum(x, 0), atol=3e-4)
        delta = rng.normal(size=(6, 5))
        dx = layer.backward(shared(ctx, delta))
        np.testing.assert_allclose(dx.decode(), delta * (x >= 0), atol=3e-4)

    def test_unknown_kind(self, ctx):
        with pytest.raises(ProtocolError):
            SecureActivation(ctx, "gelu")


class TestSecureConv2D:
    def test_forward_matches_gemm_reference(self, ctx, rng):
        layer = SecureConv2D(ctx, (6, 6, 1), out_channels=3, kernel=3, name="c")
        w = rng.normal(size=(9, 3)) * 0.3
        set_weights(layer.weight, ctx, w)
        x = rng.normal(size=(2, 36))
        out = layer.forward(shared(ctx, x))
        cols = im2col(x.reshape(2, 6, 6, 1), 3, 3)
        expected = (cols @ w).reshape(2, -1)
        np.testing.assert_allclose(out.decode(), expected, atol=1e-2)

    def test_backward_weight_gradient(self, ctx, rng):
        layer = SecureConv2D(ctx, (5, 5, 1), out_channels=2, kernel=3, name="c")
        w = rng.normal(size=(9, 2)) * 0.3
        set_weights(layer.weight, ctx, w)
        x = rng.normal(size=(2, 25))
        layer.forward(shared(ctx, x))
        oh = ow = 3
        delta = rng.normal(size=(2, oh * ow * 2))
        layer.backward(shared(ctx, delta))
        cols = im2col(x.reshape(2, 5, 5, 1), 3, 3)
        expected_gw = cols.T @ delta.reshape(2 * oh * ow, 2) / 2
        np.testing.assert_allclose(layer._grad_w.decode(), expected_gw, atol=1e-2)

    def test_stride(self, ctx):
        layer = SecureConv2D(ctx, (9, 9, 1), out_channels=1, kernel=3, stride=2, name="c")
        assert (layer.out_h, layer.out_w) == conv_output_size(9, 9, 3, 3, 2)

    def test_wrong_input_size(self, ctx, rng):
        layer = SecureConv2D(ctx, (5, 5, 1), out_channels=2, kernel=3, name="c")
        with pytest.raises(ShapeError):
            layer.forward(shared(ctx, rng.normal(size=(2, 16))))


class TestSecureRNNCell:
    def test_step_matches_reference(self, ctx, rng):
        cell = SecureRNNCell(ctx, 4, 3, name="r")
        wx = rng.normal(size=(4, 3)) * 0.3
        wh = rng.normal(size=(3, 3)) * 0.3
        set_weights(cell.w_x, ctx, wx)
        set_weights(cell.w_h, ctx, wh)
        set_weights(cell.bias, ctx, np.zeros((1, 3)))
        x = rng.normal(size=(5, 4))
        h = cell.zero_state(5)
        out = cell.step(shared(ctx, x), h, 0)
        expected = np.maximum(x @ wx, 0)
        np.testing.assert_allclose(out.decode(), expected, atol=1e-2)

    def test_bptt_produces_gradients(self, ctx, rng):
        cell = SecureRNNCell(ctx, 3, 2, name="r")
        h = cell.zero_state(4)
        for t in range(3):
            h = cell.step(shared(ctx, rng.normal(size=(4, 3))), h, t)
        cell.backward_through_time(shared(ctx, rng.normal(size=(4, 2))))
        assert cell._grad_wx.shape == (3, 2)
        assert cell._grad_wh.shape == (2, 2)
        cell.apply_gradients(0.1)  # must not raise
