"""Optimizers on shares and shared-model checkpointing."""

import numpy as np
import pytest

from repro.core.checkpoint import load_model, save_model
from repro.core.models import SecureLinearRegression, SecureMLP
from repro.core.optim import SGD, AveragedSGD, MomentumSGD
from repro.core.tensor import SharedTensor
from repro.util.errors import ConfigError, ProtocolError


def make_problem(rng, n=192, d=8, out=2):
    x = rng.normal(size=(n, d)) * 0.5
    y = x @ (rng.normal(size=(d, out)) * 0.4)
    return x, y


def run_epochs(ctx, model, opt, x, y, epochs=8, batch=64):
    losses = []
    for _ in range(epochs):
        for lo in range(0, x.shape[0] - batch + 1, batch):
            xb = SharedTensor.from_plain(ctx, x[lo : lo + batch], label="x")
            yb = SharedTensor.from_plain(ctx, y[lo : lo + batch], label="y")
            pred = model.forward(xb, training=True)
            delta = pred - yb
            model.backward(delta)
            opt.step(model)
            losses.append(float(np.mean((pred.decode() - y[lo : lo + batch]) ** 2)))
    return losses


class TestOptimizers:
    def test_sgd_matches_builtin_apply(self, rng):
        from conftest import make_ctx

        x, y = make_problem(rng)
        # model A: built-in apply_gradients; model B: optim.SGD
        results = []
        for use_opt in (False, True):
            ctx = make_ctx(seed=11, activation_protocol="dealer")
            model = SecureLinearRegression(ctx, 8, n_out=2)
            opt = SGD(lr=0.25)
            for lo in range(0, 128, 64):
                xb = SharedTensor.from_plain(ctx, x[lo : lo + 64], label="x")
                yb = SharedTensor.from_plain(ctx, y[lo : lo + 64], label="y")
                pred = model.forward(xb, training=True)
                model.backward(pred - yb)
                if use_opt:
                    opt.step(model)
                else:
                    model.apply_gradients(0.25)
            results.append([p.decode() for p in model.parameters()])
        for a, b in zip(results[0], results[1]):
            np.testing.assert_array_equal(a, b)

    def test_momentum_accelerates_convergence(self, ctx, rng):
        x, y = make_problem(rng)
        model = SecureLinearRegression(ctx, 8, n_out=2)
        losses = run_epochs(ctx, model, MomentumSGD(lr=0.1, momentum=0.875), x, y)
        assert losses[-1] < 0.1 * losses[0]

    def test_momentum_state_is_shared(self, ctx, rng):
        x, y = make_problem(rng)
        model = SecureLinearRegression(ctx, 8, n_out=2)
        opt = MomentumSGD(lr=0.1)
        run_epochs(ctx, model, opt, x, y, epochs=1)
        assert all(isinstance(v, SharedTensor) for v in opt._velocity.values())

    def test_averaged_sgd_average(self, ctx, rng):
        x, y = make_problem(rng)
        model = SecureLinearRegression(ctx, 8, n_out=2)
        opt = AveragedSGD(lr=0.25)
        run_epochs(ctx, model, opt, x, y, epochs=2)
        avg = opt.average("0/weight")
        assert avg.shape == (8, 2)
        # the average is a genuine shared tensor near the final iterate
        assert np.abs(avg.decode() - model.layers[0].weight.decode()).max() < 1.0

    def test_validation(self):
        with pytest.raises(ConfigError):
            SGD(lr=0)
        with pytest.raises(ConfigError):
            MomentumSGD(momentum=1.0)
        with pytest.raises(ConfigError):
            AveragedSGD().average("nope")


class TestCheckpoint:
    def test_roundtrip(self, ctx, rng, tmp_path):
        from conftest import make_ctx

        model = SecureMLP(ctx, 6, hidden=(5,), n_out=2)
        save_model(model, tmp_path / "ckpt")

        ctx2 = make_ctx(seed=999, activation_protocol="dealer")
        model2 = SecureMLP(ctx2, 6, hidden=(5,), n_out=2)
        load_model(model2, tmp_path / "ckpt")
        for a, b in zip(model.parameters(), model2.parameters()):
            np.testing.assert_array_equal(a.decode(), b.decode())

    def test_each_server_file_reveals_nothing(self, ctx, tmp_path):
        model = SecureLinearRegression(ctx, 4, n_out=1)
        save_model(model, tmp_path / "ckpt")
        share0 = np.load(tmp_path / "ckpt" / "server0.npz")["linreg/weight"]
        # a single archive holds one additive share: uniform-looking
        data = share0.reshape(-1).view(np.uint8)
        counts = np.bincount(data, minlength=256)
        assert counts.max() < 4 * max(1, data.size // 256) + 8

    def test_frac_bits_mismatch_rejected(self, ctx, tmp_path):
        from conftest import make_ctx

        model = SecureLinearRegression(ctx, 4, n_out=1)
        save_model(model, tmp_path / "ckpt")
        ctx2 = make_ctx(frac_bits=10)
        model2 = SecureLinearRegression(ctx2, 4, n_out=1)
        with pytest.raises(ProtocolError):
            load_model(model2, tmp_path / "ckpt")

    def test_inventory_mismatch_rejected(self, ctx, tmp_path):
        from conftest import make_ctx

        model = SecureLinearRegression(ctx, 4, n_out=1)
        save_model(model, tmp_path / "ckpt")
        ctx2 = make_ctx(seed=1)
        other = SecureMLP(ctx2, 4, hidden=(3,), n_out=1)
        with pytest.raises(ProtocolError):
            load_model(other, tmp_path / "ckpt")

    def test_missing_manifest(self, ctx, tmp_path):
        model = SecureLinearRegression(ctx, 4, n_out=1)
        with pytest.raises(ConfigError):
            load_model(model, tmp_path / "nowhere")

    def test_shape_mismatch_rejected(self, ctx, tmp_path):
        from conftest import make_ctx

        model = SecureLinearRegression(ctx, 4, n_out=1)
        save_model(model, tmp_path / "ckpt")
        ctx2 = make_ctx(seed=2)
        wrong = SecureLinearRegression(ctx2, 5, n_out=1)
        with pytest.raises(ProtocolError):
            load_model(wrong, tmp_path / "ckpt")


class TestMidTrainingCheckpoint:
    """Save/load round-trips taken in the middle of a training run."""

    def _train_batches(self, ctx, model, x, y, offsets, lr=0.0625):
        for lo in offsets:
            xb = SharedTensor.from_plain(ctx, x[lo : lo + 8], label=f"x{lo}")
            yb = SharedTensor.from_plain(ctx, y[lo : lo + 8], label=f"y{lo}")
            model.train_batch(xb, yb, lr)

    def test_extra_metadata_roundtrip(self, ctx, tmp_path):
        model = SecureMLP(ctx, 6, hidden=(4,), n_out=2)
        save_model(
            model, tmp_path / "ckpt", extra={"batch": 3, "losses": [0.5, 0.25, 0.125]}
        )
        extra = load_model(model, tmp_path / "ckpt")
        assert extra == {"batch": 3, "losses": [0.5, 0.25, 0.125]}
        # no extra saved -> empty dict back, never None
        save_model(model, tmp_path / "plain")
        assert load_model(model, tmp_path / "plain") == {}

    def test_midrun_save_restores_bit_exact_shares(self, ctx, rng, tmp_path):
        x = rng.normal(size=(16, 6)) * 0.5
        y = rng.normal(size=(16, 2)) * 0.5
        model = SecureMLP(ctx, 6, hidden=(4,), n_out=2)
        self._train_batches(ctx, model, x, y, offsets=[0])  # batch 0 done
        saved = [(p.shares[0].copy(), p.shares[1].copy()) for p in model.parameters()]
        save_model(model, tmp_path / "ckpt", extra={"batch": 1})

        self._train_batches(ctx, model, x, y, offsets=[8])  # keep training past it
        extra = load_model(model, tmp_path / "ckpt")
        assert extra["batch"] == 1
        for (s0, s1), p in zip(saved, model.parameters()):
            np.testing.assert_array_equal(s0, p.shares[0])
            np.testing.assert_array_equal(s1, p.shares[1])

    def test_resume_from_batch_k_is_bit_equal_to_uninterrupted(self):
        """Restoring the batch-k checkpoint and replaying the tail of the
        run lands on exactly the weights of the uninterrupted run — the
        guarantee the fault-recovery path (repro.faults) is built on."""
        from repro.faults import FaultPlan, PartyCrash
        from repro.faults.chaos import train_mlp_under_plan

        uninterrupted = train_mlp_under_plan(None, batches=4)
        # crash at batch 2: recovery restores the batch-2 checkpoint
        # (checkpoint_every=2) and replays batches 2-3
        plan = FaultPlan(crashes=(PartyCrash("server1", at_step=3),))
        resumed = train_mlp_under_plan(plan, batches=4)
        assert resumed.report.party_restarts == 1
        assert resumed.weights_equal(uninterrupted)
        assert resumed.losses == uninterrupted.losses
