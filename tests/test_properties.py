"""Cross-cutting property-based tests (hypothesis) on core invariants.

These complement the per-module tests with randomized end-to-end
algebraic properties: homomorphism of sharing, linearity of the tensor
ops, protocol-vs-plain agreement under random shapes and values, and
codec roundtrips under adversarial sparsity patterns.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from conftest import make_ctx
from repro.comm.compression import DeltaCompressor
from repro.core import ops
from repro.core.tensor import SharedTensor
from repro.fixedpoint.ring import ring_add
from repro.mpc.shares import reconstruct, share_secret

small_floats = st.floats(-8.0, 8.0, allow_nan=False, allow_infinity=False)


def matrices(max_dim=5):
    return st.tuples(
        st.integers(1, max_dim), st.integers(1, max_dim), st.integers(0, 10_000)
    )


class TestSharingHomomorphism:
    @settings(max_examples=30, deadline=None)
    @given(matrices())
    def test_share_of_sum_equals_sum_of_shares(self, dims):
        m, n, seed = dims
        rng = np.random.default_rng(seed)
        a = rng.integers(0, 2**64, size=(m, n), dtype=np.uint64)
        b = rng.integers(0, 2**64, size=(m, n), dtype=np.uint64)
        pa = share_secret(a, rng)
        pb = share_secret(b, rng)
        summed = reconstruct(ring_add(pa.share0, pb.share0), ring_add(pa.share1, pb.share1))
        assert np.array_equal(summed, ring_add(a, b))


class TestTensorAlgebra:
    @settings(max_examples=10, deadline=None)
    @given(matrices(4), st.lists(small_floats, min_size=1, max_size=3))
    def test_matmul_distributes_over_add(self, dims, scalars):
        m, n, seed = dims
        rng = np.random.default_rng(seed)
        ctx = make_ctx(seed=seed, activation_protocol="dealer")
        a = rng.normal(size=(m, n))
        b = rng.normal(size=(m, n))
        c = rng.normal(size=(n, 2))
        ta = SharedTensor.from_plain(ctx, a)
        tb = SharedTensor.from_plain(ctx, b)
        tc = SharedTensor.from_plain(ctx, c)
        left = ops.secure_matmul(ta + tb, tc, label="l")
        right = ops.secure_matmul(ta, tc, label="r1") + ops.secure_matmul(tb, tc, label="r2")
        np.testing.assert_allclose(
            left.decode(), right.decode(), atol=2 * n * 2**-12 + 2**-9
        )

    @settings(max_examples=10, deadline=None)
    @given(matrices(4), small_floats)
    def test_public_scaling_commutes_with_decode(self, dims, scalar):
        m, n, seed = dims
        rng = np.random.default_rng(seed)
        ctx = make_ctx(seed=seed)
        a = rng.normal(size=(m, n))
        t = SharedTensor.from_plain(ctx, a)
        np.testing.assert_allclose(
            t.mul_public(scalar).decode(), scalar * a, atol=16 * 2**-13 + abs(scalar) * 2**-12
        )

    @settings(max_examples=10, deadline=None)
    @given(matrices(4))
    def test_double_negation_identity(self, dims):
        m, n, seed = dims
        rng = np.random.default_rng(seed)
        ctx = make_ctx(seed=seed)
        a = rng.normal(size=(m, n))
        t = SharedTensor.from_plain(ctx, a)
        np.testing.assert_array_equal((-(-t)).decode(), t.decode())


class TestActivationProperties:
    @settings(max_examples=8, deadline=None)
    @given(st.integers(1, 4), st.integers(1, 4), st.integers(0, 5000))
    def test_relu_idempotent(self, m, n, seed):
        rng = np.random.default_rng(seed)
        ctx = make_ctx(seed=seed, activation_protocol="dealer")
        x = rng.normal(size=(m, n)) * 3
        t = SharedTensor.from_plain(ctx, x)
        once, _ = ops.activation(t, "relu", label="a1")
        twice, _ = ops.activation(once, "relu", label="a2")
        # relu(relu(x)) == relu(x) exactly on the decoded values
        np.testing.assert_array_equal(once.decode(), twice.decode())

    @settings(max_examples=8, deadline=None)
    @given(st.integers(1, 4), st.integers(0, 5000))
    def test_piecewise_monotone(self, n, seed):
        rng = np.random.default_rng(seed)
        ctx = make_ctx(seed=seed, activation_protocol="dealer")
        x = np.sort(rng.normal(size=(1, n + 1)) * 2, axis=1)
        out, _ = ops.activation(SharedTensor.from_plain(ctx, x), "piecewise", label="p")
        vals = out.decode().ravel()
        assert all(b >= a - 2e-3 for a, b in zip(vals, vals[1:]))


class TestCompressionProperties:
    @settings(max_examples=25, deadline=None)
    @given(
        st.integers(1, 10),
        st.integers(1, 10),
        st.integers(1, 5),
        st.floats(0.0, 1.0),
        st.integers(0, 10_000),
    )
    def test_any_stream_roundtrips_exactly(self, m, n, steps, sparsity, seed):
        rng = np.random.default_rng(seed)
        sender = DeltaCompressor(0.75)
        receiver = DeltaCompressor(0.75)
        current = rng.integers(0, 2**64, size=(m, n), dtype=np.uint64)
        for _ in range(steps):
            payload = sender.encode("k", current)
            assert np.array_equal(receiver.decode(payload), current)
            delta = rng.integers(0, 2**64, size=(m, n), dtype=np.uint64)
            delta[rng.random((m, n)) < sparsity] = np.uint64(0)
            with np.errstate(over="ignore"):
                current = current + delta

    @settings(max_examples=25, deadline=None)
    @given(st.integers(1, 10), st.integers(1, 10), st.integers(0, 10_000))
    def test_wire_bytes_never_exceed_raw(self, m, n, seed):
        rng = np.random.default_rng(seed)
        comp = DeltaCompressor(0.0)  # most aggressive setting
        for _ in range(3):
            mat = rng.integers(0, 2**64, size=(m, n), dtype=np.uint64)
            payload = comp.encode("k", mat)
            assert payload.wire_bytes <= payload.raw_bytes
