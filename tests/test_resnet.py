"""Residual networks (the paper's Section 7.7 extension claim)."""

import numpy as np
import pytest

from repro.core.resnet import SecureResidualBlock, SecureResNet
from repro.core.tensor import SharedTensor
from repro.core.training import SecureTrainer
from repro.core.inference import secure_predict
from repro.util.errors import ShapeError


def shared(ctx, arr):
    return SharedTensor.from_plain(ctx, np.asarray(arr, dtype=np.float64))


class TestResidualBlock:
    def test_forward_geometry(self, ctx):
        block = SecureResidualBlock(ctx, (12, 12, 2))
        assert block.out_shape == (8, 8, 2)  # two VALID 3x3 convs

    def test_skip_path_is_share_local(self, ctx, rng):
        """The residual add consumes no Beaver triplets beyond the two
        convolutions and two activations — the Section 7.7 point."""
        block = SecureResidualBlock(ctx, (10, 10, 1))
        x = shared(ctx, rng.normal(size=(2, 100)) * 0.3)
        before = ctx.triplets_issued
        block.forward(x)
        # 2 conv matmul triplets + 2 relu elementwise triplets, nothing
        # for the skip connection
        assert ctx.triplets_issued - before == 4

    def test_forward_matches_plain_reference(self, ctx, rng):
        block = SecureResidualBlock(ctx, (8, 8, 1))
        x = rng.normal(size=(2, 64)) * 0.3
        out = block.forward(shared(ctx, x)).decode()

        # plain recomputation with the block's decoded weights
        from repro.simgpu.kernels import im2col

        w1 = block.conv1.weight.decode()
        w2 = block.conv2.weight.decode()
        imgs = x.reshape(2, 8, 8, 1)
        h1 = (im2col(imgs, 3, 3) @ w1).reshape(2, 6, 6, 1)
        a1 = np.maximum(h1, 0)
        h2 = (im2col(a1, 3, 3) @ w2).reshape(2, 4, 4, 1)
        skip = imgs[:, 2:6, 2:6, :]
        expected = np.maximum(h2 + skip, 0).reshape(2, -1)
        np.testing.assert_allclose(out, expected, atol=0.02)

    def test_wrong_input_shape(self, ctx, rng):
        block = SecureResidualBlock(ctx, (8, 8, 1))
        with pytest.raises(ShapeError):
            block.forward(shared(ctx, rng.normal(size=(2, 60))))


class TestSecureResNet:
    def test_forward_shape(self, ctx, rng):
        model = SecureResNet(ctx, (12, 12, 1), channels=2, n_blocks=1, n_out=5)
        rep = secure_predict(ctx, model, rng.normal(size=(8, 144)), batch_size=8)
        assert rep.predictions.shape == (8, 5)

    def test_trains(self, ctx, rng):
        model = SecureResNet(ctx, (10, 10, 1), channels=2, n_blocks=1, n_out=3)
        x = rng.normal(size=(16, 100)) * 0.3
        y = rng.normal(size=(16, 3)) * 0.1
        params_before = [p.decode().copy() for p in model.parameters()]
        SecureTrainer(ctx, model, lr=0.1, monitor_loss=False).train(
            x, y, epochs=1, batch_size=16
        )
        changed = [
            not np.allclose(p.decode(), before)
            for p, before in zip(model.parameters(), params_before)
        ]
        assert all(changed), "every parameter (stem, blocks, head) must update"
