"""Differential conformance sweep: 8 models x config axes vs plain.

Every cell must agree with the plain baseline within fixed-point
tolerance; cost-only axes must additionally be bit-identical to the
baseline axis.  The sweep runs per protocol backend (set
``REPRO_CONFORMANCE_BACKENDS`` to restrict — CI shards the matrix this
way).  On a disagreement the failing run's transcript is dumped as JSON
to ``REPRO_CONFORMANCE_ARTIFACTS`` (default ``conformance-artifacts/``)
so CI can upload it for offline replay.
"""

from __future__ import annotations

import os
from pathlib import Path

import numpy as np
import pytest

from repro.audit import (
    BIT_IDENTICAL_AXES,
    CONFORMANCE_AXES,
    CONFORMANCE_MODELS,
    ConformanceCase,
    run_conformance_case,
)
from repro.util.errors import ConfigError

pytestmark = pytest.mark.conformance

#: Backends the sweep covers; CI shards via the environment variable.
BACKENDS = tuple(
    os.environ.get("REPRO_CONFORMANCE_BACKENDS", "beaver2pc rep3").split()
)


def _dump_artifact(result) -> str:
    out_dir = Path(os.environ.get("REPRO_CONFORMANCE_ARTIFACTS", "conformance-artifacts"))
    out_dir.mkdir(parents=True, exist_ok=True)
    path = out_dir / f"{result.case.name.replace('/', '-')}.json"
    result.transcript.dump(path)
    return str(path)


def _check(result):
    """Assert agreement; on failure leave the transcript for CI."""
    if not result.agreed or (result.wire is not None and not result.wire.passed):
        artifact = _dump_artifact(result)
        detail = result.describe()
        if result.wire is not None and not result.wire.passed:
            detail += "\n" + result.wire.summary()
        pytest.fail(f"{detail}\ntranscript dumped to {artifact}")


class TestForwardSweep:
    """All 8 models x all config axes x backends, forward, wire-audited."""

    @pytest.mark.parametrize("backend", BACKENDS)
    @pytest.mark.parametrize("model", CONFORMANCE_MODELS)
    @pytest.mark.parametrize("axis", sorted(CONFORMANCE_AXES))
    def test_secure_matches_plain(self, model, axis, backend):
        result = run_conformance_case(
            ConformanceCase(model=model, axis=axis, backend=backend)
        )
        _check(result)


class TestTrainingSweep:
    """Training conformance: the backward pass agrees too."""

    @pytest.mark.parametrize("backend", BACKENDS)
    @pytest.mark.parametrize("model", CONFORMANCE_MODELS)
    def test_trained_predictions_match_plain(self, model, backend):
        result = run_conformance_case(
            ConformanceCase(model=model, axis="baseline", train=True, backend=backend)
        )
        _check(result)

    @pytest.mark.parametrize("backend", BACKENDS)
    @pytest.mark.parametrize("axis", ["pool", "mask_reuse"])
    def test_training_under_offline_axes(self, axis, backend):
        result = run_conformance_case(
            ConformanceCase(model="MLP", axis=axis, train=True, backend=backend)
        )
        _check(result)


class TestBitIdentity:
    """Cost-only knobs must not move a single prediction bit."""

    @pytest.mark.parametrize("backend", BACKENDS)
    @pytest.mark.parametrize("model", CONFORMANCE_MODELS)
    @pytest.mark.parametrize("axis", sorted(BIT_IDENTICAL_AXES))
    def test_cost_only_axis_is_bit_identical(self, model, axis, backend):
        base = run_conformance_case(
            ConformanceCase(model=model, axis="baseline", backend=backend), audit=False
        )
        variant = run_conformance_case(
            ConformanceCase(model=model, axis=axis, backend=backend), audit=False
        )
        np.testing.assert_array_equal(base.predictions, variant.predictions)

    def test_pool_axis_is_tolerance_only(self):
        # documents why pool is excluded from BIT_IDENTICAL_AXES:
        # pooled provisioning draws triplets from a different RNG
        # stream, and truncation rounding is share-dependent.  Dealer
        # material only exists under beaver2pc — rep3 has no pool, so
        # there the axis is trivially a no-op and is not asserted here.
        base = run_conformance_case(ConformanceCase("MLP", "baseline"), audit=False)
        pooled = run_conformance_case(ConformanceCase("MLP", "pool"), audit=False)
        assert not np.array_equal(base.predictions, pooled.predictions)
        assert np.max(np.abs(base.predictions - pooled.predictions)) < 1e-3

    @pytest.mark.parametrize("backend", BACKENDS)
    def test_replay_same_cell_is_bit_identical(self, backend):
        first = run_conformance_case(
            ConformanceCase("logistic", "baseline", backend=backend)
        )
        second = run_conformance_case(
            ConformanceCase("logistic", "baseline", backend=backend)
        )
        first.transcript.assert_identical(second.transcript)
        np.testing.assert_array_equal(first.predictions, second.predictions)


class TestCaseValidation:
    def test_unknown_model_rejected(self):
        with pytest.raises(ConfigError, match="model"):
            ConformanceCase(model="transformer", axis="baseline")

    def test_unknown_axis_rejected(self):
        with pytest.raises(ConfigError, match="axis"):
            ConformanceCase(model="MLP", axis="turbo")

    def test_unknown_backend_rejected(self):
        with pytest.raises(ConfigError, match="backend"):
            ConformanceCase(model="MLP", axis="baseline", backend="rep5")

    def test_sweep_matrix_is_complete(self):
        # acceptance criterion: 6 paper models + attention/recsys, x >= 4 axes
        assert len(CONFORMANCE_MODELS) == 8
        assert "attention" in CONFORMANCE_MODELS
        assert "recsys" in CONFORMANCE_MODELS
        assert len(CONFORMANCE_AXES) >= 5  # baseline + 4 optimization axes
        assert set(BIT_IDENTICAL_AXES) < set(CONFORMANCE_AXES)


class TestWireAxes:
    """The framed-codec and coalescing axes: cost-only, byte-accounted."""

    @pytest.mark.parametrize("backend", BACKENDS)
    def test_coalesced_content_streams_match_baseline(self, backend):
        from repro.audit.conformance import assert_content_equivalent

        base = run_conformance_case(
            ConformanceCase("MLP", "baseline", train=True, backend=backend)
        )
        packed = run_conformance_case(
            ConformanceCase("MLP", "coalesced", train=True, backend=backend)
        )
        assert_content_equivalent(base, packed)
        assert_content_equivalent(
            base,
            run_conformance_case(
                ConformanceCase("MLP", "wire", train=True, backend=backend)
            ),
        )

    def test_coalescing_reduces_messages(self):
        base = run_conformance_case(ConformanceCase("MLP", "baseline"))
        packed = run_conformance_case(ConformanceCase("MLP", "coalesced"))
        def server_msgs(t):
            return sum(
                1 for r in t if r.src.startswith("server") and r.dst.startswith("server")
            )
        assert server_msgs(packed.transcript) < server_msgs(base.transcript)

    @pytest.mark.parametrize("axis", ["baseline", "wire", "coalesced"])
    @pytest.mark.parametrize("backend", BACKENDS)
    def test_byte_accounting_reconciles(self, axis, backend):
        from repro.audit.wire import assert_byte_accounting
        from repro.core.context import SecureContext
        from repro.core.inference import secure_predict
        from repro.core.models import SecureMLP

        case = ConformanceCase("MLP", axis, backend=backend)
        ctx = SecureContext.create(case.config())
        recorder = ctx.attach_recorder()
        model = SecureMLP(ctx, 12, hidden=(8,), n_out=3)
        x = 0.5 * np.random.default_rng(2).standard_normal((32, 12))
        secure_predict(ctx, model, x, batch_size=16)
        assert_byte_accounting(recorder.transcript(), ctx.telemetry)

    def test_byte_accounting_rejects_faulty_runs(self):
        from repro.audit.wire import assert_byte_accounting
        from repro.audit.transcript import Transcript
        from repro.telemetry import Telemetry
        from repro.util.errors import AuditError

        telemetry = Telemetry()
        telemetry.registry.counter("faults.retransmits", "").inc(3)
        with pytest.raises(AuditError, match="fault-free"):
            assert_byte_accounting(Transcript(()), telemetry)

    def test_frame_overhead_and_coalesced_counters(self):
        from repro.core.context import SecureContext
        from repro.core.inference import secure_predict
        from repro.core.models import SecureMLP

        counters = {}
        for axis in ("baseline", "wire", "coalesced"):
            case = ConformanceCase("MLP", axis)
            ctx = SecureContext.create(case.config())
            model = SecureMLP(ctx, 12, hidden=(8,), n_out=3)
            x = 0.5 * np.random.default_rng(2).standard_normal((32, 12))
            secure_predict(ctx, model, x, batch_size=16)
            reg = ctx.telemetry.registry
            counters[axis] = {
                "messages": reg.counter("comm.messages").value(),
                "overhead": reg.counter("comm.frame_overhead_bytes").value(),
                "coalesced": reg.counter("comm.coalesced_messages").value(),
            }
        assert counters["baseline"]["overhead"] == 0
        assert counters["baseline"]["coalesced"] == 0
        assert counters["wire"]["overhead"] > 0
        assert counters["wire"]["coalesced"] == 0
        assert counters["wire"]["messages"] == counters["baseline"]["messages"]
        assert counters["coalesced"]["coalesced"] > 0
        assert (
            counters["coalesced"]["messages"]
            == counters["baseline"]["messages"] - counters["coalesced"]["coalesced"]
        )
