"""The public API facade: ``repro``/``repro.api`` exports, session
wiring, and the deprecation shims (each warns exactly once)."""

from __future__ import annotations

import warnings

import numpy as np
import pytest

import repro
from repro.core.config import FrameworkConfig
from repro.core.context import SecureContext
from repro.util.deprecation import reset_deprecation_warnings


@pytest.fixture(autouse=True)
def _fresh_deprecation_state():
    reset_deprecation_warnings()
    yield
    reset_deprecation_warnings()


class TestFacade:
    def test_all_names_resolve(self):
        for name in repro.__all__:
            assert getattr(repro, name) is not None, name

    def test_core_surface(self):
        assert repro.api.session is not None
        assert repro.SecureContext is SecureContext
        assert repro.FrameworkConfig is FrameworkConfig
        assert callable(repro.secure_matmul)
        assert callable(repro.secure_predict)
        assert repro.Telemetry is not None

    def test_deep_imports_keep_working(self):
        from repro.core.context import SecureContext as deep  # noqa: F401
        from repro.pipeline import trace_export  # noqa: F401
        from repro.telemetry import export_chrome_trace  # noqa: F401


class TestSession:
    def test_default_session_is_parsecureml(self):
        ctx = repro.api.session()
        assert isinstance(ctx, SecureContext)
        assert ctx.config.use_gpu and ctx.config.compression
        assert ctx.telemetry is not None

    def test_explicit_config_is_used(self):
        cfg = FrameworkConfig.secureml()
        ctx = repro.api.session(config=cfg)
        assert ctx.config is cfg
        assert not ctx.config.use_gpu

    def test_keyword_overrides(self):
        ctx = repro.api.session(compression=False, seed=7)
        assert not ctx.config.compression
        assert ctx.config.seed == 7
        assert ctx.config.use_gpu  # untouched fields keep their defaults

    def test_overrides_compose_with_config(self):
        ctx = repro.api.session(FrameworkConfig.secureml(), trace=True)
        assert not ctx.config.use_gpu
        assert ctx.config.trace

    def test_create_classmethod(self):
        ctx = SecureContext.create()
        assert isinstance(ctx, SecureContext)
        assert SecureContext.create(FrameworkConfig.secureml()).config.use_gpu is False

    def test_session_round_trip(self):
        """A session computes correctly and its telemetry saw the work."""
        ctx = repro.api.session()
        rng = np.random.default_rng(0)
        a, b = rng.normal(size=(8, 6)), rng.normal(size=(6, 4))
        x = repro.SharedTensor.from_plain(ctx, a)
        y = repro.SharedTensor.from_plain(ctx, b)
        out = repro.secure_matmul(x, y, label="rt")
        np.testing.assert_allclose(out.decode(), a @ b, atol=1e-2)
        snap = ctx.telemetry.snapshot()
        assert snap.counter("ops.invocations", op="matmul") == 1
        spans = snap.spans("op.rt")
        assert "op.rt" in [s.name for s in spans]
        trunc = next(s for s in spans if s.name == "op.rt:trunc")
        assert trunc.depth == 1  # the truncation nests inside the matmul span


class TestDeprecations:
    def _count(self, fn) -> int:
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            fn()
        return sum(1 for w in caught if issubclass(w.category, DeprecationWarning))

    def test_trace_export_shims_warn_exactly_once(self, tmp_path):
        from repro.pipeline import trace_export

        clock = repro.api.session().online_clock
        assert self._count(lambda: trace_export.chrome_trace_events(clock)) == 1
        assert self._count(lambda: trace_export.chrome_trace_events(clock)) == 0
        assert (
            self._count(
                lambda: trace_export.export_chrome_trace(clock, tmp_path / "t.json")
            )
            == 1
        )
        assert (
            self._count(
                lambda: trace_export.export_chrome_trace(clock, tmp_path / "t2.json")
            )
            == 0
        )

    def test_positional_activation_kind_warns_exactly_once(self):
        ctx = repro.api.session()
        rng = np.random.default_rng(0)
        x = repro.SharedTensor.from_plain(ctx, rng.normal(size=(4, 4)))
        assert self._count(lambda: repro.activation(x, "relu")) == 1
        assert self._count(lambda: repro.activation(x, "relu")) == 0
        # keyword form never warns
        assert self._count(lambda: repro.activation(x, kind="relu")) == 0

    def test_activation_rejects_ambiguous_calls(self):
        ctx = repro.api.session()
        x = repro.SharedTensor.from_plain(ctx, np.zeros((2, 2)))
        with pytest.raises(TypeError):
            repro.activation(x, "relu", kind="relu")
        with pytest.raises(TypeError):
            repro.activation(x, "relu", "sigmoid")

    def test_shim_output_matches_new_exporter(self):
        from repro.pipeline import trace_export
        from repro.telemetry import chrome_trace_events

        ctx = repro.api.session(trace=True)
        rng = np.random.default_rng(0)
        a = repro.SharedTensor.from_plain(ctx, rng.normal(size=(8, 6)))
        b = repro.SharedTensor.from_plain(ctx, rng.normal(size=(6, 4)))
        repro.secure_matmul(a, b)
        with warnings.catch_warnings():
            warnings.simplefilter("ignore", DeprecationWarning)
            old = trace_export.chrome_trace_events(ctx.online_clock)
        new = chrome_trace_events(ctx.online_clock)
        assert old == new
