"""MPI-style transport backend (loopback in-process; real MPI guarded)."""

import numpy as np
import pytest

from repro.comm.mpi_backend import (
    HAVE_MPI,
    LoopbackTransport,
    MPITransport,
    ROLE_BY_RANK,
    _mpi_tag,
)
from repro.util.errors import TransportError


class TestLoopback:
    def test_roles(self):
        hub = LoopbackTransport()
        for role in ROLE_BY_RANK.values():
            assert hub.as_role(role).role == role
        with pytest.raises(TransportError):
            hub.as_role("server9")

    def test_array_roundtrip(self, rng):
        hub = LoopbackTransport()
        client = hub.as_role("client")
        s0 = hub.as_role("server0")
        payload = rng.integers(0, 2**64, size=(8, 8), dtype=np.uint64)
        client.send("server0", "shares", payload)
        got = s0.recv("client", "shares")
        assert np.array_equal(got, payload)

    def test_exchange_between_servers(self):
        hub = LoopbackTransport()
        s0, s1 = hub.as_role("server0"), hub.as_role("server1")
        s0.send("server1", "E", "e0")
        s1.send("server0", "E", "e1")
        assert s0.recv("server1", "E") == "e1"
        assert s1.recv("server0", "E") == "e0"

    def test_tag_isolation(self):
        hub = LoopbackTransport()
        c, s0 = hub.as_role("client"), hub.as_role("server0")
        c.send("server0", "a", 1)
        c.send("server0", "b", 2)
        assert s0.recv("client", "b") == 2
        assert s0.recv("client", "a") == 1

    def test_barrier_is_noop(self):
        assert LoopbackTransport().as_role("client").barrier() is None

    def test_secure_matmul_over_loopback(self, rng, encoder):
        """Full Eq. 4-8 protocol driven through the transport interface,
        as a 3-rank deployment would run it."""
        from repro.fixedpoint.truncation import truncate_share
        from repro.mpc.protocol import beaver_matmul_share, combine_masked, masked_difference
        from repro.mpc.shares import reconstruct, share_secret
        from repro.mpc.triplets import TripletDealer

        hub = LoopbackTransport()
        client = hub.as_role("client")
        servers = [hub.as_role("server0"), hub.as_role("server1")]

        a = rng.normal(size=(4, 5))
        b = rng.normal(size=(5, 3))
        ap = share_secret(encoder.encode(a), rng)
        bp = share_secret(encoder.encode(b), rng)
        trip = TripletDealer(np.random.default_rng(1)).matrix_triplet((4, 5), (5, 3))
        # client distributes shares and triplet material
        for i in (0, 1):
            client.send(f"server{i}", "material", (ap[i], bp[i], trip.u[i], trip.v[i], trip.z[i]))

        # each server: local E_i/F_i, exchange, compute C_i, return to client
        c_shares = []
        e_f = []
        for i in (0, 1):
            a_i, b_i, u_i, v_i, z_i = servers[i].recv("client", "material")
            e_f.append((masked_difference(a_i, u_i), masked_difference(b_i, v_i), a_i, b_i, z_i))
        for i in (0, 1):
            servers[i].send(f"server{1 - i}", "EF", (e_f[i][0], e_f[i][1]))
        for i in (0, 1):
            e_r, f_r = servers[i].recv(f"server{1 - i}", "EF")
            e = combine_masked(e_f[i][0], e_r)
            f = combine_masked(e_f[i][1], f_r)
            c_i = beaver_matmul_share(i, e, f, e_f[i][2], e_f[i][3], trip.share_for(i))
            servers[i].send("client", "result", truncate_share(c_i, 13, i))
        for i in (0, 1):
            c_shares.append(client.recv(f"server{i}", "result"))
        out = encoder.decode(reconstruct(*c_shares))
        np.testing.assert_allclose(out, a @ b, atol=5 * 2**-12 + 2**-10)


class TestMPIGuards:
    def test_tag_hash_in_range(self):
        for tag in ("E", "F", "layer3/dW", "x" * 100):
            assert 1 <= _mpi_tag(tag) <= 0x7FFF

    @pytest.mark.skipif(HAVE_MPI, reason="mpi4py installed; guard not applicable")
    def test_clear_error_without_mpi4py(self):
        with pytest.raises(TransportError, match="mpi4py"):
            MPITransport()
