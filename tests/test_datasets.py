"""Synthetic dataset generators."""

import numpy as np
import pytest

from repro.datasets import (
    PAPER_DATASETS,
    cifar10_like,
    make_dataset,
    mnist_like,
    nist_like,
    separable_classification,
    sequence_dataset,
    synthetic_matrix_dataset,
    vggface2_like,
)
from repro.util.errors import ConfigError


class TestPresets:
    def test_all_five_paper_datasets_present(self):
        assert set(PAPER_DATASETS) == {"MNIST", "CIFAR-10", "NIST", "VGGFace2", "SYNTHETIC"}

    def test_paper_geometries(self):
        assert PAPER_DATASETS["MNIST"].image_shape == (28, 28, 1)
        assert PAPER_DATASETS["CIFAR-10"].image_shape == (32, 32, 3)
        assert PAPER_DATASETS["NIST"].image_shape == (512, 512, 1)
        assert PAPER_DATASETS["VGGFace2"].image_shape == (200, 200, 1)
        assert PAPER_DATASETS["SYNTHETIC"].image_shape == (32, 64, 1)

    def test_paper_sample_counts(self):
        assert PAPER_DATASETS["MNIST"].paper_samples == 60_000
        assert PAPER_DATASETS["VGGFace2"].paper_samples == 40_000
        assert PAPER_DATASETS["SYNTHETIC"].paper_samples == 640_000

    def test_features_property(self):
        assert PAPER_DATASETS["MNIST"].features == 784
        assert PAPER_DATASETS["CIFAR-10"].features == 3072


class TestGenerators:
    @pytest.mark.parametrize(
        "gen,shape",
        [
            (mnist_like, (28, 28, 1)),
            (cifar10_like, (32, 32, 3)),
            (synthetic_matrix_dataset, (32, 64, 1)),
        ],
    )
    def test_shapes_and_labels(self, gen, shape):
        x, y = gen(16, seed=0, image_shape=shape)
        assert x.shape == (16, int(np.prod(shape)))
        assert y.shape == (16, 10)
        assert np.array_equal(y.sum(axis=1), np.ones(16))  # one-hot

    def test_nist_like_reduced_geometry(self):
        x, _ = nist_like(4, seed=0, image_shape=(64, 64, 1))
        assert x.shape == (4, 4096)
        assert 0.0 <= x.min() and x.max() <= 1.0

    def test_vggface2_like_range(self):
        x, _ = vggface2_like(2, seed=0, image_shape=(50, 50, 1))
        assert 0.0 <= x.min() and x.max() <= 1.0

    def test_mnist_like_is_sparse(self):
        """Stroke images: mostly zero background (drives ReLU sparsity)."""
        x, _ = mnist_like(8, seed=1)
        assert np.mean(x == 0.0) > 0.5

    def test_cifar_like_is_dense(self):
        x, _ = cifar10_like(4, seed=1)
        assert np.mean(x == 0.0) < 0.05

    def test_determinism(self):
        a, _ = mnist_like(4, seed=9)
        b, _ = mnist_like(4, seed=9)
        assert np.array_equal(a, b)

    def test_seeds_differ(self):
        a, _ = mnist_like(4, seed=1)
        b, _ = mnist_like(4, seed=2)
        assert not np.array_equal(a, b)


class TestSequenceDataset:
    def test_shape(self):
        x, y = sequence_dataset(10, n_steps=4, step_features=8, seed=0)
        assert x.shape == (10, 32)
        assert y.shape == (10, 10)

    def test_classes_distinguishable(self):
        x, y = sequence_dataset(200, seed=0)
        labels = np.argmax(y, axis=1)
        # class-conditional means differ (the signal exists)
        m0 = x[labels == labels[0]].mean(axis=0)
        other = labels[labels != labels[0]][0]
        m1 = x[labels == other].mean(axis=0)
        assert np.abs(m0 - m1).max() > 0.1


class TestSeparable:
    def test_labels_pm_one(self):
        x, y = separable_classification(50, 5, seed=0)
        assert set(np.unique(y)) <= {-1.0, 1.0}

    def test_actually_separable(self):
        x, y = separable_classification(100, 5, margin=2.0, seed=0)
        # a least-squares hyperplane should classify perfectly
        w, *_ = np.linalg.lstsq(x, y.ravel(), rcond=None)
        assert np.mean(np.sign(x @ w) == y.ravel()) == 1.0


class TestMakeDataset:
    def test_preset_lookup(self):
        x, y, spec = make_dataset("MNIST", 8, seed=0)
        assert spec.name == "MNIST"
        assert x.shape == (8, 784)

    def test_geometry_override_recorded(self):
        x, y, spec = make_dataset("NIST", 2, seed=0, image_shape=(32, 32, 1))
        assert x.shape == (2, 1024)
        assert "override" in spec.notes

    def test_unknown_dataset(self):
        with pytest.raises(ConfigError):
            make_dataset("IMAGENET", 4)
