"""The framed wire codec: round-trips, exact sizing, coalescing, checksums.

Property-based coverage (hypothesis) of the encode/decode pair over
arbitrary dtypes, shapes (including empty and 0-d) and nested payloads;
exactness of :func:`frame_sizes` against the materialized frame; the
coalescer's order-preservation contract; and the frame-CRC checksum
that replaced the per-message pickle in the reliable transport.
"""

from __future__ import annotations

import pickle
from dataclasses import dataclass

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.comm.wire import (
    MAGIC,
    RoundCoalescer,
    blob_frame_sizes,
    content_bytes,
    decode_frame,
    encode_frame,
    frame_sizes,
    payload_checksum,
    unpack_frame,
)
from repro.util.errors import TransportError

DTYPES = (
    np.uint8, np.uint16, np.uint32, np.uint64,
    np.int8, np.int32, np.int64,
    np.float32, np.float64, np.bool_,
)


@dataclass
class Blob:
    """A non-array leaf for the pickle escape hatch (module-level: picklable)."""

    label: str
    data: np.ndarray


@dataclass
class Wrapped:
    """Marker wrapper, as the fault injector's tamper marker uses."""

    inner: object


@st.composite
def _array(draw):
    """Arbitrary-dtype arrays: 0-d, empty and up-to-3-d shapes."""
    dtype = np.dtype(draw(st.sampled_from(DTYPES)))
    shape = tuple(draw(st.lists(st.integers(0, 4), min_size=0, max_size=3)))
    rng = np.random.default_rng(draw(st.integers(0, 2**32 - 1)))
    if dtype == np.bool_:
        return rng.integers(0, 2, size=shape).astype(np.bool_)
    n = int(np.prod(shape, dtype=np.int64))
    raw = rng.integers(0, 256, size=(n * dtype.itemsize,), dtype=np.uint8)
    return raw.view(dtype)[:n].reshape(shape).copy()


def payloads():
    """Nested payloads: arrays, bytes, strings, None, scalars, containers."""
    leaves = st.one_of(
        _array(),
        st.binary(max_size=64),
        st.text(max_size=16),
        st.none(),
        st.integers(-(2**40), 2**40),
        st.floats(allow_nan=False, allow_infinity=False, width=64),
    )
    return st.recursive(
        leaves,
        lambda inner: st.one_of(
            st.lists(inner, max_size=3),
            st.lists(inner, max_size=3).map(tuple),
        ),
        max_leaves=8,
    )


def assert_payload_equal(a, b):
    assert type(a) is type(b) or (
        isinstance(a, np.ndarray) and isinstance(b, np.ndarray)
    ), f"{type(a)} != {type(b)}"
    if isinstance(a, np.ndarray):
        assert a.dtype == b.dtype
        assert a.shape == b.shape
        assert np.array_equal(a, b)
    elif isinstance(a, (list, tuple)):
        assert len(a) == len(b)
        for x, y in zip(a, b):
            assert_payload_equal(x, y)
    else:
        assert a == b


class TestCodecRoundTrip:
    @settings(max_examples=100, deadline=None)
    @given(payloads())
    def test_roundtrip_bit_identical(self, payload):
        tag, decoded = decode_frame(encode_frame("t", payload))
        assert tag == "t"
        assert_payload_equal(payload, decoded)

    @settings(max_examples=100, deadline=None)
    @given(payloads(), st.text(max_size=32))
    def test_sizes_match_materialized_frame(self, payload, tag):
        frame = encode_frame(tag, payload)
        sizes = frame_sizes(tag, payload)
        assert sizes.nbytes == len(frame)
        assert 0 <= sizes.body_nbytes <= sizes.nbytes
        assert sizes.overhead_nbytes == sizes.nbytes - sizes.body_nbytes

    @settings(max_examples=50, deadline=None)
    @given(_array())
    def test_array_body_travels_raw(self, arr):
        # the frame must contain the array's exact buffer bytes — the
        # zero-copy claim is only meaningful if nothing re-encodes them
        frame = encode_frame("t", arr)
        assert np.ascontiguousarray(arr).tobytes() in frame

    def test_decode_default_is_zero_copy_view(self):
        arr = np.arange(12, dtype=np.uint64).reshape(3, 4)
        frame = encode_frame("t", arr)
        _, decoded = decode_frame(frame)
        assert not decoded.flags.owndata  # view into the frame buffer
        _, copied = decode_frame(frame, copy=True)
        assert copied.flags.owndata

    def test_arrays_never_pass_through_pickle(self, monkeypatch):
        def boom(*a, **k):  # pragma: no cover - should never run
            raise AssertionError("array payload reached pickle")

        monkeypatch.setattr(pickle, "dumps", boom)
        payload = [np.arange(6, dtype=np.uint64), (np.zeros(3), b"x"), "tag", None]
        tag, decoded = decode_frame(encode_frame("t", payload))
        assert_payload_equal(payload, decoded)

    def test_pickle_escape_hatch_keeps_buffers_out_of_band(self):
        big = np.arange(4096, dtype=np.uint64)
        sizes = frame_sizes("t", Blob("x", big))
        # body (out-of-band buffer) carries the array; the pickle
        # skeleton in the overhead must stay tiny
        assert sizes.body_nbytes >= big.nbytes
        assert sizes.overhead_nbytes < 512
        _, decoded = decode_frame(encode_frame("t", Blob("x", big)))
        assert decoded.label == "x"
        assert np.array_equal(decoded.data, big)

    def test_bad_magic_rejected(self):
        with pytest.raises(TransportError, match="magic"):
            decode_frame(b"XXXX" + b"\x00" * 16)

    def test_truncated_frame_rejected(self):
        frame = encode_frame("t", np.arange(8, dtype=np.uint64))
        with pytest.raises(TransportError, match="truncated"):
            decode_frame(frame[:-3])

    def test_trailing_bytes_rejected(self):
        frame = encode_frame("t", None)
        with pytest.raises(TransportError, match="trailing"):
            decode_frame(frame + b"\x00")

    def test_blob_sizes_match_equivalent_bytes_frame(self):
        blob = blob_frame_sizes("cmp:rounds", 1000)
        real = frame_sizes("cmp:rounds", b"\x00" * 1000)
        assert blob.nbytes == real.nbytes
        assert blob.body_nbytes == real.body_nbytes


class TestCoalescer:
    @settings(max_examples=40, deadline=None)
    @given(st.lists(
        st.tuples(st.sampled_from(["a->b", "b->a", "a->c"]), _array()),
        min_size=1, max_size=8,
    ))
    def test_pack_unpack_preserves_per_link_order(self, sends):
        coalescer = RoundCoalescer("round0")
        expected: dict[tuple[str, str], list] = {}
        for i, (link, arr) in enumerate(sends):
            src, dst = link.split("->")
            coalescer.add(src, dst, f"msg{i}", arr)
            expected.setdefault((src, dst), []).append((f"msg{i}", arr))
        assert len(coalescer) == len(sends)
        frames = coalescer.flush()
        assert len(coalescer) == 0
        # one frame per link, links in first-send order
        assert [(fr.src, fr.dst) for fr in frames] == list(expected)
        for fr in frames:
            round_id, parts = unpack_frame(fr.encode())
            assert round_id == "round0"
            assert [t for t, _ in parts] == [t for t, _ in expected[(fr.src, fr.dst)]]
            for (_, got), (_, want) in zip(parts, expected[(fr.src, fr.dst)]):
                assert_payload_equal(want, got)

    def test_packed_body_is_concatenation_of_part_bodies(self):
        # the digest-equality oracle: a packed frame's observable content
        # equals the parts' contents back to back
        e = np.arange(16, dtype=np.uint64)
        f = np.arange(16, 32, dtype=np.uint64)
        assert content_bytes((e, f)) == content_bytes(e) + content_bytes(f)
        coalescer = RoundCoalescer("r")
        coalescer.add("a", "b", "E", e)
        coalescer.add("a", "b", "F", f)
        (frame,) = coalescer.flush()
        assert frame.sizes.body_nbytes == e.nbytes + f.nbytes
        assert frame.sizes.nbytes == len(frame.encode())
        assert frame.n_parts == 2

    def test_loopback_send_rejected(self):
        with pytest.raises(TransportError, match="src == dst"):
            RoundCoalescer("r").add("a", "a", "t", None)


class TestChecksum:
    def test_detects_single_bit_flip(self):
        arr = np.arange(64, dtype=np.uint64)
        before = payload_checksum(arr)
        arr[17] ^= np.uint64(1 << 40)
        assert payload_checksum(arr) != before

    def test_detects_wrapped_payload(self):
        # the fault injector wraps payloads in a marker object; the
        # checksum must change even though the array bytes do not
        arr = np.arange(8, dtype=np.uint64)
        assert payload_checksum(arr) != payload_checksum(Wrapped(arr))

    @settings(max_examples=40, deadline=None)
    @given(payloads())
    def test_deterministic_within_process(self, payload):
        assert payload_checksum(payload) == payload_checksum(payload)

    def test_array_checksum_avoids_pickle(self, monkeypatch):
        def boom(*a, **k):  # pragma: no cover - should never run
            raise AssertionError("array checksum reached pickle")

        monkeypatch.setattr(pickle, "dumps", boom)
        payload_checksum([np.arange(100, dtype=np.uint64)])


class TestFrameLayout:
    def test_magic_leads_every_frame(self):
        assert encode_frame("t", None).startswith(MAGIC)

    def test_oversized_tag_rejected(self):
        with pytest.raises(TransportError, match="tag too long"):
            frame_sizes("x" * 70_000, None)
