"""im2col/col2im lowering kernels."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.simgpu.kernels import col2im, conv_output_size, im2col, im2col_bytes
from repro.util.errors import ShapeError


def naive_conv(images, filters, kh, kw, stride):
    """Direct convolution reference (channels-last, VALID)."""
    n, h, w, c = images.shape
    oh, ow = conv_output_size(h, w, kh, kw, stride)
    out_c = filters.shape[1]
    out = np.zeros((n, oh, ow, out_c))
    for b in range(n):
        for i in range(oh):
            for j in range(ow):
                patch = images[b, i * stride : i * stride + kh, j * stride : j * stride + kw, :]
                out[b, i, j] = patch.reshape(-1) @ filters
    return out


class TestIm2col:
    @settings(max_examples=15, deadline=None)
    @given(
        st.integers(1, 3),  # batch
        st.integers(4, 9),  # h
        st.integers(4, 9),  # w
        st.integers(1, 3),  # channels
        st.integers(1, 3),  # kernel
        st.integers(1, 2),  # stride
        st.integers(0, 1000),
    )
    def test_gemm_conv_equals_naive(self, n, h, w, c, k, stride, seed):
        rng = np.random.default_rng(seed)
        images = rng.normal(size=(n, h, w, c))
        out_c = 2
        filters = rng.normal(size=(k * k * c, out_c))
        cols = im2col(images, k, k, stride)
        oh, ow = conv_output_size(h, w, k, k, stride)
        via_gemm = (cols @ filters).reshape(n, oh, ow, out_c)
        np.testing.assert_allclose(via_gemm, naive_conv(images, filters, k, k, stride))

    def test_uint64_dtype_preserved(self, rng):
        images = rng.integers(0, 2**64, size=(2, 5, 5, 1), dtype=np.uint64)
        cols = im2col(images, 3, 3)
        assert cols.dtype == np.uint64

    def test_im2col_is_linear_over_shares(self, rng):
        """The property the secure conv relies on: lowering commutes with
        additive sharing."""
        a = rng.integers(0, 2**64, size=(1, 6, 6, 1), dtype=np.uint64)
        b = rng.integers(0, 2**64, size=(1, 6, 6, 1), dtype=np.uint64)
        with np.errstate(over="ignore"):
            combined = im2col(a + b, 3, 3)
            summed = im2col(a, 3, 3) + im2col(b, 3, 3)
        assert np.array_equal(combined, summed)

    def test_bad_input_dims(self, rng):
        with pytest.raises(ShapeError):
            im2col(rng.normal(size=(5, 5)), 3, 3)

    def test_kernel_too_big(self, rng):
        with pytest.raises(ShapeError):
            im2col(rng.normal(size=(1, 4, 4, 1)), 5, 5)


class TestCol2im:
    @settings(max_examples=10, deadline=None)
    @given(st.integers(4, 8), st.integers(1, 3), st.integers(1, 2), st.integers(0, 500))
    def test_adjoint_property(self, h, k, stride, seed):
        """<im2col(x), y> == <x, col2im(y)> — the defining property of the
        conv backward pass."""
        if (h - k) % stride != 0 and (h - k) // stride < 1:
            return
        rng = np.random.default_rng(seed)
        x = rng.normal(size=(2, h, h, 1))
        cols_shape = im2col(x, k, k, stride).shape
        y = rng.normal(size=cols_shape)
        lhs = float((im2col(x, k, k, stride) * y).sum())
        rhs = float((x * col2im(y, x.shape, k, k, stride)).sum())
        assert lhs == pytest.approx(rhs, rel=1e-9)

    def test_uint64_scatter_wraps(self, rng):
        cols = np.full((4, 4), 2**63, dtype=np.uint64)
        out = col2im(cols, (1, 3, 3, 1), 2, 2, 1)
        assert out.dtype == np.uint64  # no overflow error raised


class TestCostHelper:
    def test_bytes_accounting(self):
        nbytes = im2col_bytes((2, 8, 8, 1), 3, 3, 1, 8)
        read = 2 * 8 * 8 * 1 * 8
        written = 2 * 6 * 6 * 9 * 8
        assert nbytes == read + written
