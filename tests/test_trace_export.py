"""Chrome-tracing export of simulated timelines."""

import json

import numpy as np
import pytest

from repro.pipeline.trace_export import chrome_trace_events, export_chrome_trace
from repro.simgpu.clock import SimClock


@pytest.fixture
def traced_clock():
    clock = SimClock()
    clock.add_resource("gpu")
    clock.add_resource("cpu")
    t = clock.run("cpu", 1.0, label="prep")
    clock.run("gpu", 2.0, deps=(t,), label="gemm")
    return clock


class TestEvents:
    def test_complete_events_present(self, traced_clock):
        events = chrome_trace_events(traced_clock)
        complete = [e for e in events if e["ph"] == "X"]
        assert {e["name"] for e in complete} == {"prep", "gemm"}

    def test_timestamps_in_microseconds(self, traced_clock):
        events = chrome_trace_events(traced_clock)
        gemm = next(e for e in events if e["name"] == "gemm")
        assert gemm["ts"] == pytest.approx(1.0e6)
        assert gemm["dur"] == pytest.approx(2.0e6)

    def test_thread_metadata_per_resource(self, traced_clock):
        events = chrome_trace_events(traced_clock)
        names = {e["args"]["name"] for e in events if e["name"] == "thread_name"}
        assert names == {"gpu", "cpu"}

    def test_min_duration_filter(self, traced_clock):
        traced_clock.run("cpu", 1e-9, label="blip")
        events = chrome_trace_events(traced_clock, min_duration_s=1e-6)
        assert all(e["name"] != "blip" for e in events if e["ph"] == "X")


class TestExport:
    def test_file_is_valid_json(self, traced_clock, tmp_path):
        out = export_chrome_trace(traced_clock, tmp_path / "t.json", process_name="demo")
        payload = json.loads(out.read_text())
        assert "traceEvents" in payload
        assert any(e.get("args", {}).get("name") == "demo" for e in payload["traceEvents"])

    def test_from_real_training_run(self, tmp_path, rng):
        from conftest import make_ctx
        from repro.core.models import SecureLinearRegression
        from repro.core.training import SecureTrainer

        ctx = make_ctx(trace=True, activation_protocol="emulated")
        model = SecureLinearRegression(ctx, 6, n_out=2)
        x = rng.normal(size=(64, 6))
        y = rng.normal(size=(64, 2))
        SecureTrainer(ctx, model, monitor_loss=False).train(x, y, epochs=1, batch_size=32)
        out = export_chrome_trace(ctx.online_clock, tmp_path / "online.json")
        payload = json.loads(out.read_text())
        complete = [e for e in payload["traceEvents"] if e["ph"] == "X"]
        assert len(complete) > 10  # the protocol leaves a real footprint
