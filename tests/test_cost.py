"""The analytical cost model."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.simgpu.cost import (
    CPUSpec,
    V100_SPEC,
    P100_SPEC,
    XEON_E5_2670V3_SPEC,
    scaled_spec,
)
from repro.util.errors import ConfigError

dims = st.integers(1, 4096)


class TestGPUModel:
    @given(dims, dims, dims)
    def test_gemm_time_positive(self, m, k, n):
        assert V100_SPEC.gemm_seconds(m, k, n) > 0

    def test_gemm_monotone_in_size(self):
        t1 = V100_SPEC.gemm_seconds(128, 128, 128)
        t2 = V100_SPEC.gemm_seconds(1024, 1024, 1024)
        t3 = V100_SPEC.gemm_seconds(8192, 8192, 8192)
        assert t1 < t2 < t3

    def test_tensor_core_faster_on_large_gemm(self):
        plain = V100_SPEC.gemm_seconds(4096, 4096, 4096, tensor_core=False)
        tc = V100_SPEC.gemm_seconds(4096, 4096, 4096, tensor_core=True)
        assert tc < plain

    def test_tensor_core_saving_negligible_when_small(self):
        """Absolute Tensor-Core saving on a tiny GEMM is microseconds;
        on a large GEMM it is orders of magnitude more (Fig. 15's
        'large GEMMs benefit most')."""
        small_saving = V100_SPEC.gemm_seconds(8, 8, 8) - V100_SPEC.gemm_seconds(
            8, 8, 8, tensor_core=True
        )
        big_saving = V100_SPEC.gemm_seconds(4096, 4096, 4096) - V100_SPEC.gemm_seconds(
            4096, 4096, 4096, tensor_core=True
        )
        assert small_saving < 2e-5
        assert big_saving > 100 * small_saving

    def test_utilization_bounds(self):
        assert 0 < V100_SPEC.utilization(1e3) < 0.01
        assert V100_SPEC.utilization(1e13) > 0.98
        assert V100_SPEC.utilization(0) == 1.0

    def test_small_gemm_underutilises(self):
        """The Fig. 17 / Table 2 effect: small workloads waste the GPU."""
        small_eff = (2 * 64**3) / V100_SPEC.gemm_seconds(64, 64, 64)
        big_eff = (2 * 4096**3) / V100_SPEC.gemm_seconds(4096, 4096, 4096)
        assert big_eff > 20 * small_eff

    def test_transfer_includes_latency(self):
        assert V100_SPEC.transfer_seconds(0) == V100_SPEC.pcie_latency_s

    def test_curand_setup_once_semantics(self):
        with_setup = V100_SPEC.curand_seconds(1024, include_setup=True)
        without = V100_SPEC.curand_seconds(1024)
        assert with_setup - without == pytest.approx(V100_SPEC.curand_setup_s)

    def test_p100_has_no_tensor_advantage(self):
        plain = P100_SPEC.gemm_seconds(4096, 4096, 4096, tensor_core=False)
        tc = P100_SPEC.gemm_seconds(4096, 4096, 4096, tensor_core=True)
        assert tc == plain


class TestCPUModel:
    def test_parallel_factor(self):
        spec = XEON_E5_2670V3_SPEC
        assert spec.parallel_factor(False) == 1.0
        assert spec.parallel_factor(True) == pytest.approx(24 * 0.45)

    def test_cache_degradation_kicks_in_past_l3(self):
        spec = XEON_E5_2670V3_SPEC
        assert spec.gemm_efficiency(128, 128, 128) == 1.0
        assert spec.gemm_efficiency(128, 80_000, 128) < 0.5

    def test_gemm_seconds_superlinear_past_cache(self):
        spec = XEON_E5_2670V3_SPEC
        base = spec.gemm_seconds(128, 1000, 128)
        big = spec.gemm_seconds(128, 100_000, 128)
        assert big > 100 * base  # x100 flops, plus degradation

    def test_rng_parallel_speedup(self):
        spec = XEON_E5_2670V3_SPEC
        assert spec.rng_seconds(1e9, parallel=True) < spec.rng_seconds(1e9, parallel=False)

    def test_cpu_beats_gpu_on_tiny_elementwise(self):
        """The adaptive-placement premise: no PCIe on the CPU side."""
        cpu = XEON_E5_2670V3_SPEC.elementwise_seconds(1024, parallel=True)
        gpu = V100_SPEC.elementwise_seconds(1024) + 2 * V100_SPEC.transfer_seconds(1024)
        assert cpu < gpu


class TestScaledSpec:
    def test_uniform_scaling(self):
        fast = scaled_spec(V100_SPEC, 2.0)
        assert fast.fp32_tflops == 2 * V100_SPEC.fp32_tflops
        assert fast.gemm_seconds(1024, 1024, 1024) < V100_SPEC.gemm_seconds(1024, 1024, 1024)

    def test_invalid_factor(self):
        with pytest.raises(ConfigError):
            scaled_spec(V100_SPEC, 0.0)
