"""Thread-safe parallel RNG (paper Section 5.1)."""

from concurrent.futures import ThreadPoolExecutor

import numpy as np
import pytest

from repro.mpc.prandom import ThreadSafeGeneratorPool, _row_blocks, parallel_uniform_ring
from repro.util.errors import ConfigError


class TestPool:
    def test_per_worker_streams_independent(self):
        pool = ThreadSafeGeneratorPool(4, seed=7)
        draws = [pool.generator(i).integers(0, 2**64, 16, dtype=np.uint64) for i in range(4)]
        for i in range(4):
            for j in range(i + 1, 4):
                assert not np.array_equal(draws[i], draws[j])

    def test_same_seed_reproduces(self):
        a = ThreadSafeGeneratorPool(3, seed=1).generator(0).integers(0, 100, 10)
        b = ThreadSafeGeneratorPool(3, seed=1).generator(0).integers(0, 100, 10)
        assert np.array_equal(a, b)

    def test_zero_workers_rejected(self):
        with pytest.raises(ConfigError):
            ThreadSafeGeneratorPool(0)

    def test_thread_generator_is_stable_per_thread(self):
        pool = ThreadSafeGeneratorPool(2, seed=3)
        g1 = pool.thread_generator()
        g2 = pool.thread_generator()
        assert g1 is g2


class TestRowBlocks:
    def test_partition_covers_all_rows(self):
        blocks = _row_blocks(100, 7)
        assert blocks[0][0] == 0
        assert blocks[-1][1] == 100
        for (a, b), (c, d) in zip(blocks, blocks[1:]):
            assert b == c  # contiguous

    def test_no_empty_blocks(self):
        for rows in (1, 3, 8, 100):
            for workers in (1, 2, 8, 32):
                for start, stop in _row_blocks(rows, workers):
                    assert stop > start

    def test_empty_matrix(self):
        assert _row_blocks(0, 4) == []


class TestParallelFill:
    def test_sequential_equals_threaded(self):
        """The paper's design goal: determinism independent of scheduling."""
        pool_a = ThreadSafeGeneratorPool(4, seed=11)
        pool_b = ThreadSafeGeneratorPool(4, seed=11)
        seq = parallel_uniform_ring((64, 16), pool_a)
        with ThreadPoolExecutor(max_workers=4) as ex:
            par = parallel_uniform_ring((64, 16), pool_b, executor=ex)
        assert np.array_equal(seq, par)

    def test_output_shape_and_dtype(self):
        pool = ThreadSafeGeneratorPool(2, seed=0)
        out = parallel_uniform_ring((10, 3), pool)
        assert out.shape == (10, 3)
        assert out.dtype == np.uint64

    def test_coarse_uniformity(self):
        pool = ThreadSafeGeneratorPool(4, seed=5)
        out = parallel_uniform_ring((256, 256), pool)
        mean = float(out.mean())
        expected = (2**64 - 1) / 2
        sd = 2**64 / np.sqrt(12 * out.size)
        assert abs(mean - expected) < 6 * sd
