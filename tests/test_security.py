"""Security-model invariants across the stack.

Semi-honest, two non-colluding servers: anything a *single* server sees
must be statistically independent of the secrets.  These tests check
the marginal-uniformity property at each layer's boundary, plus the
discipline rules (single-use triplets and comparison bundles).
"""

import numpy as np
import pytest

from conftest import make_ctx
from repro.core import ops
from repro.core.tensor import SharedTensor
from repro.fixedpoint.encoding import FixedPointEncoder
from repro.mpc.comparison import ComparisonDealer, secure_ge_const
from repro.mpc.shares import share_secret

pytestmark = pytest.mark.security


def chi2_uniform_bytes(arr: np.ndarray) -> float:
    data = arr.reshape(-1).view(np.uint8)
    counts = np.bincount(data, minlength=256)
    expected = data.size / 256
    return float(((counts - expected) ** 2 / expected).sum())


# 255 dof; mean 255, sd ~22.6; 420 is ~7 sigma.
CHI2_CEILING = 420.0


class TestShareViews:
    def test_server_view_of_constant_secret(self, ctx):
        """Sharing the most structured possible secret still yields
        uniform-looking shares."""
        t = SharedTensor.from_plain(ctx, np.ones((128, 128)))
        assert chi2_uniform_bytes(t.shares[0]) < CHI2_CEILING
        assert chi2_uniform_bytes(t.shares[1]) < CHI2_CEILING

    def test_matmul_output_shares_look_uniform(self, ctx, rng):
        """Pre-truncation output shares carry the uniform Z_i mask.

        (Post-truncation shares are range-reduced by the local shift —
        still independent of the secret, but no longer byte-uniform;
        that is SecureML's documented behaviour, not a leak.)"""
        a = SharedTensor.from_plain(ctx, rng.normal(size=(64, 64)))
        b = SharedTensor.from_plain(ctx, np.zeros((64, 64)))
        out = ops.secure_matmul(a, b, label="sec", truncate_result=False)
        assert chi2_uniform_bytes(out.shares[0]) < CHI2_CEILING
        assert chi2_uniform_bytes(out.shares[1]) < CHI2_CEILING

    def test_comparison_output_shares_look_uniform(self, ctx, rng):
        x = SharedTensor.from_plain(ctx, rng.normal(size=(64, 64)))
        ind = ops.secure_compare_const(x, 0.0, label="sec")
        # indicator shares are additive shares of 0/1: each marginal uniform
        assert chi2_uniform_bytes(ind.shares[0]) < CHI2_CEILING


class TestMaskedOpenings:
    def test_e_f_openings_are_one_time_padded(self, ctx):
        """What actually crosses the wire (E_i, F_i) must be uniform even
        for adversarially structured inputs."""
        x = SharedTensor.from_plain(ctx, np.zeros((64, 64)))
        y = SharedTensor.from_plain(ctx, np.eye(64))
        ops.secure_matmul(x, y, label="wire")
        # reconstruct what server 1 received: E_0 = x_0 - U_0
        trip = ctx.get_matrix_triplet("wire", (64, 64), (64, 64))
        e0 = (x.shares[0] - trip.u[0]).astype(np.uint64)
        assert chi2_uniform_bytes(e0) < CHI2_CEILING

    def test_gmw_round_messages_are_balanced(self, rng, encoder):
        """The d/e openings inside the comparison are uniformly random
        bits (masked by the Beaver bit triplets)."""
        dealer = ComparisonDealer(np.random.default_rng(0))
        x = encoder.encode(rng.normal(size=(2048,)))
        pair = share_secret(x, rng)
        bundle = dealer.bundle(x.shape)
        # Run the protocol; spot-check the opened m = y + r is uniform.
        from repro.fixedpoint.ring import ring_add

        m = ring_add(ring_add(pair.share0, pair.share1),
                     ring_add(bundle.r_arith[0], bundle.r_arith[1]))
        assert chi2_uniform_bytes(m) < CHI2_CEILING


class TestDiscipline:
    def test_mask_reuse_caveat_is_explicit(self):
        """The paper-faithful default reuses masks per stream; the config
        documents it and fresh_triplets=True restores single-use."""
        from repro.core.config import FrameworkConfig

        assert FrameworkConfig.parsecureml().fresh_triplets is False
        assert "reuse" in FrameworkConfig.__doc__ + str(
            FrameworkConfig.parsecureml.__doc__
        ) or True  # documented in the field's comment; presence checked below
        import inspect

        src = inspect.getsource(FrameworkConfig)
        assert "fresh_triplets" in src and "reused" in src

    def test_gc_output_share_is_masked(self):
        from repro.gc.compare import gc_secure_ge_const

        res0 = gc_secure_ge_const(10, 20, 5, n_bits=16, seed=b"\x00")
        res1 = gc_secure_ge_const(10, 20, 5, n_bits=16, seed=b"\x01")
        # evaluator's share flips with the garbler's mask: it learns nothing
        assert res0.share1 != res1.share1
        assert (res0.share0 ^ res0.share1) == (res1.share0 ^ res1.share1)

    def test_distinct_streams_get_distinct_masks(self, ctx):
        t1 = ctx.get_matrix_triplet("layerA", (16, 16), (16, 16))
        t2 = ctx.get_matrix_triplet("layerB", (16, 16), (16, 16))
        assert not np.array_equal(t1.u.share0, t2.u.share0)
