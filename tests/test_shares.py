"""Additive secret sharing: correctness and the security invariant."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.mpc.shares import SharePair, reconstruct, share_secret
from repro.util.errors import ProtocolError, ShapeError

MOD = 2**64


class TestRoundtrip:
    @settings(max_examples=50, deadline=None)
    @given(st.integers(0, 2**32), st.integers(1, 8), st.integers(1, 8))
    def test_share_reconstruct_identity(self, seed, m, n):
        rng = np.random.default_rng(seed)
        secret = rng.integers(0, MOD, size=(m, n), dtype=np.uint64)
        pair = share_secret(secret, rng)
        assert np.array_equal(reconstruct(pair.share0, pair.share1), secret)

    def test_shares_differ_from_secret(self, rng):
        secret = rng.integers(0, MOD, size=(32, 32), dtype=np.uint64)
        pair = share_secret(secret, rng)
        assert not np.array_equal(pair.share0, secret)
        assert not np.array_equal(pair.share1, secret)


class TestSecurityInvariant:
    def test_single_share_is_marginally_uniform(self, rng):
        """Each share alone must look uniform regardless of the secret —
        the 2PC security property.  We share a *constant* matrix and
        check the share's bytes pass a coarse uniformity test."""
        secret = np.zeros((200, 200), dtype=np.uint64)  # worst case: all equal
        pair = share_secret(secret, rng)
        for share in (pair.share0, pair.share1):
            as_bytes = share.reshape(-1).view(np.uint8)
            counts = np.bincount(as_bytes, minlength=256)
            expected = as_bytes.size / 256
            chi2 = float(((counts - expected) ** 2 / expected).sum())
            # 255 dof; mean 255, sd ~22.6 — 400 is a > 6-sigma ceiling
            assert chi2 < 400, f"share bytes not uniform (chi2={chi2:.1f})"

    def test_shares_of_different_secrets_indistinguishable_in_mean(self, rng):
        a = share_secret(np.zeros((64, 64), dtype=np.uint64), rng).share0
        b = share_secret(np.full((64, 64), 2**63, dtype=np.uint64), rng).share0
        # means of uniform u64 samples: both near 2^63 within a few sd
        sd = MOD / np.sqrt(12 * a.size)
        assert abs(float(a.mean()) - float(b.mean())) < 8 * sd


class TestValidation:
    def test_share_pair_shape_mismatch(self):
        with pytest.raises(ShapeError):
            SharePair(np.zeros((2, 2), dtype=np.uint64), np.zeros((3, 2), dtype=np.uint64))

    def test_share_pair_dtype_check(self):
        with pytest.raises(ProtocolError):
            SharePair(np.zeros((2, 2)), np.zeros((2, 2)))

    def test_indexing(self, rng):
        secret = rng.integers(0, MOD, size=(3, 3), dtype=np.uint64)
        pair = share_secret(secret, rng)
        assert pair[0] is pair.share0
        assert pair[1] is pair.share1
        with pytest.raises(ProtocolError):
            pair[2]

    def test_reconstruct_shape_mismatch(self):
        with pytest.raises(ShapeError):
            reconstruct(np.zeros(3, dtype=np.uint64), np.zeros(4, dtype=np.uint64))
