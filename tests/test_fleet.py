"""The sharded serving fleet: replica protocol, router, dealer, recovery.

Covers the serving redesign end to end:

* the :class:`Replica` protocol surface (exactly-once ``poll``, stats,
  the router's ``take_pending`` / ``force_admit`` recovery hooks);
* the :class:`SecureInferenceServer` deprecation shim (old constructor
  and keyword spellings keep working, with warnings);
* fleet routing: exactly-once delivery, hash affinity, 1-replica fleet
  equivalence with a standalone replica;
* the shared dealer's pool provisioning and telemetry;
* crash recovery: a replica failure re-routes admitted requests onto
  healthy replicas with zero drops, and the per-replica journals still
  replay bit-identically (:meth:`verify_conformance`);
* the p95-watermark autoscaler and the ``repro.api.serve`` entry point.
"""

from __future__ import annotations

import warnings

import numpy as np
import pytest

import repro
from repro.core.config import FrameworkConfig
from repro.core.context import SecureContext
from repro.core.models import SecureMLP
from repro.faults import FaultPlan, PartyCrash
from repro.serve import (
    AutoscalePolicy,
    ConsistentHashPlacement,
    LeastDepthPlacement,
    Replica,
    SecureInferenceServer,
    SecureServingFleet,
    make_placement,
)
from repro.serve.fleet import FleetRouter
from repro.util.errors import ConfigError, QueueFullError, ServeError

N_FEATURES = 12
N_OUT = 3


def _factory(ctx):
    return SecureMLP(ctx, N_FEATURES, hidden=(6,), n_out=N_OUT)


def _replica(name="replica0", **kw):
    ctx = SecureContext(FrameworkConfig.parsecureml(activation_protocol="emulated"))
    kw.setdefault("max_batch", 8)
    return ctx, Replica(ctx, _factory(ctx), name=name, **kw)


def _fleet(replicas=2, **kw):
    kw.setdefault("config", FrameworkConfig.parsecureml(activation_protocol="emulated"))
    kw.setdefault("max_batch", 8)
    return SecureServingFleet(_factory, replicas=replicas, **kw)


def _crashy_replica0(seed=7, at_step=2):
    plan = FaultPlan(seed=seed, crashes=(PartyCrash("server1", at_step=at_step),))

    def replica_config(index, cfg):
        return cfg.but(fault_plan=plan) if index == 0 else cfg

    return replica_config


class TestReplicaProtocol:
    def test_poll_returns_each_response_exactly_once(self, rng):
        _ctx, rep = _replica()
        rep.submit("a", rng.normal(size=(8, N_FEATURES)))
        rep.drain()
        first = rep.poll()
        assert [r.client_id for r in first] == ["a"]
        assert rep.poll() == []
        rep.submit("b", rng.normal(size=(8, N_FEATURES)))
        rep.drain()
        assert [r.client_id for r in rep.poll()] == ["b"]

    def test_stats_reflect_queue_and_service(self, rng):
        _ctx, rep = _replica(name="r9")
        rep.submit("a", rng.normal(size=(3, N_FEATURES)))
        s = rep.stats()
        assert s.name == "r9"
        assert (s.queued_requests, s.queued_rows) == (1, 3)
        assert not s.crashed
        rep.drain()
        s = rep.stats()
        assert (s.queued_rows, s.served_requests, s.served_rows) == (0, 1, 3)
        assert s.batches == 1 and s.online_s > 0.0

    def test_take_pending_empties_the_queue(self, rng):
        _ctx, rep = _replica()
        rep.submit("a", rng.normal(size=(2, N_FEATURES)))
        rep.submit("b", rng.normal(size=(3, N_FEATURES)))
        taken = rep.take_pending()
        assert [t.client_id for t in taken] == ["a", "b"]
        assert len(rep.queue) == 0 and rep.queued_rows == 0

    def test_force_admit_bypasses_the_row_bound(self, rng):
        _ctx, rep = _replica(queue_rows=4)
        rep.submit("a", rng.normal(size=(4, N_FEATURES)))
        with pytest.raises(QueueFullError):
            rep.submit("b", rng.normal(size=(2, N_FEATURES)))
        rep.force_admit("b", rng.normal(size=(2, N_FEATURES)))
        rep.drain()
        assert {r.client_id for r in rep.poll()} == {"a", "b"}


class TestDeprecationShim:
    def test_old_constructor_still_serves(self, rng):
        ctx = SecureContext(FrameworkConfig.parsecureml(activation_protocol="emulated"))
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            from repro.util.deprecation import reset_deprecation_warnings

            reset_deprecation_warnings()
            server = SecureInferenceServer(
                ctx, _factory(ctx), max_batch=8,
                max_queue_rows=24, max_request_retries=1,
            )
        messages = [str(w.message) for w in caught
                    if issubclass(w.category, DeprecationWarning)]
        assert any("SecureInferenceServer is deprecated" in m for m in messages)
        assert any("max_queue_rows" in m for m in messages)
        assert any("max_request_retries" in m for m in messages)
        # the old spellings map onto the new knobs
        assert server.queue.max_rows == 24
        assert server.request_retries == 1
        assert server.max_request_retries == 1  # legacy read-alias
        server.submit("a", rng.normal(size=(3, N_FEATURES)))
        server.drain()
        assert server.report().served_requests == 1

    def test_shim_is_a_replica(self):
        assert issubclass(SecureInferenceServer, Replica)


class TestFleetRouting:
    def test_exactly_once_over_many_clients(self, rng):
        fleet = _fleet(replicas=3)
        rids = [
            fleet.submit(f"c{i % 7}", rng.normal(size=(1 + i % 3, N_FEATURES)))
            for i in range(25)
        ]
        fleet.drain()
        rep = fleet.report()
        assert len(rids) == len(set(rids)) == 25
        assert rep.served_requests == 25
        assert rep.dropped_requests == 0 and rep.pending_requests == 0
        assert sorted(r.fleet_rid for r in rep.responses) == sorted(rids)

    def test_hash_placement_gives_session_affinity(self, rng):
        fleet = _fleet(replicas=3, placement="hash")
        for _ in range(4):
            fleet.submit("sticky", rng.normal(size=(2, N_FEATURES)))
            fleet.drain()
        homes = {r.replica for r in fleet.report().responses}
        assert len(homes) == 1

    def test_one_replica_fleet_matches_standalone(self, rng):
        queries = [
            (f"c{i}", rng.normal(size=(1 + i % 4, N_FEATURES))) for i in range(6)
        ]
        fleet = _fleet(replicas=1)
        for client, x in queries:
            fleet.submit(client, x)
        fleet.drain()
        _ctx, rep = _replica(managed_provisioning=True)
        for client, x in queries:
            rep.submit(client, x)
        rep.drain()
        fleet_resp = fleet.report().responses
        solo_resp = rep.report().responses
        assert len(fleet_resp) == len(solo_resp) == 6
        for a, b in zip(fleet_resp, solo_resp):
            assert a.client_id == b.client_id
            np.testing.assert_array_equal(a.predictions, b.predictions)

    def test_full_fleet_backpressure_is_retryable(self, rng):
        fleet = _fleet(replicas=2, queue_rows=4)
        fleet.submit("a", rng.normal(size=(4, N_FEATURES)))
        fleet.submit("b", rng.normal(size=(4, N_FEATURES)))
        with pytest.raises(QueueFullError):
            fleet.submit("c", rng.normal(size=(1, N_FEATURES)))
        fleet.drain()
        fleet.submit("c", rng.normal(size=(1, N_FEATURES)))
        fleet.drain()
        assert fleet.report().served_requests == 3

    def test_no_replicas_rejected(self):
        with pytest.raises(ServeError):
            _fleet(replicas=0)


class TestPlacementFactory:
    def test_resolves_names_and_instances(self):
        assert isinstance(make_placement("hash"), ConsistentHashPlacement)
        assert isinstance(make_placement("least-depth"), LeastDepthPlacement)
        custom = ConsistentHashPlacement(vnodes=8)
        assert make_placement(custom) is custom

    def test_unknown_name_is_a_config_error(self):
        with pytest.raises(ConfigError):
            make_placement("round-robin")

    def test_router_never_offers_a_crashed_replica(self, rng):
        fleet = _fleet(replicas=2)
        fleet.replicas()[0].crashed_party = "server1"
        order = fleet.router.route("anyone")
        assert [r.name for r in order] == ["replica1"]


class TestDealerService:
    def test_dealer_provisions_each_working_replica_once(self, rng):
        fleet = _fleet(replicas=2, config=FrameworkConfig.parsecureml(
            activation_protocol="emulated", pool_size=8,
        ), placement="least-depth")
        for i in range(8):
            fleet.submit(f"c{i}", rng.normal(size=(4, N_FEATURES)))
        fleet.drain()
        passes = fleet.telemetry.counter("fleet.dealer.provisions")
        triplets = fleet.telemetry.counter("fleet.dealer.triplets")
        for r in fleet.replicas():
            assert passes.value(replica=r.name) == 1
            assert triplets.value(replica=r.name) > 0
        # every batch after provisioning hits the pool, never the
        # synchronous fallback path
        for r in fleet.replicas():
            assert r.ctx.telemetry.counter("mpc.pool.hits").value() > 0

    def test_replica_self_provisioning_is_disabled_under_fleet(self, rng):
        fleet = _fleet(replicas=1)
        assert fleet.replicas()[0].managed_provisioning


class TestCrashRecovery:
    def test_crash_reroutes_with_zero_drops(self, rng):
        fleet = _fleet(
            replicas=2,
            placement="least-depth",
            replica_config=_crashy_replica0(),
            request_retries=0,
            audit=True,
        )
        for i in range(10):
            fleet.submit(f"c{i}", rng.normal(size=(2, N_FEATURES)))
        fleet.drain()
        rep = fleet.report()
        assert rep.replica_crashes >= 1
        assert rep.rerouted_requests >= 1
        assert rep.served_requests == 10
        assert rep.dropped_requests == 0 and rep.pending_requests == 0
        # the crashed replica respawned and is healthy again
        assert all(r.crashed_party is None for r in fleet.replicas())

    def test_forced_reroute_targets_the_replica_with_most_headroom(self, rng):
        # regression: when every healthy replica is too full to admit a
        # re-shared ticket, the forced fallback used to dump it on the
        # router's first affinity choice without consulting queue
        # bounds — oversubscribing a nearly-full queue while another
        # healthy replica had several times the headroom.
        from repro.serve.fleet import FleetTicket

        fleet = _fleet(replicas=3, placement="hash", queue_rows=8)
        order = fleet.router.route("victim")
        first, rest = order[0], order[1:]
        # first affinity choice: headroom 1; the others: headroom 6
        first.submit("filler", rng.normal(size=(7, N_FEATURES)))
        for r in rest:
            r.submit("filler", rng.normal(size=(2, N_FEATURES)))
        headroom = {
            r.name: r.queue.max_rows - r.queue.depth_rows for r in order
        }
        ticket = FleetTicket(
            fleet_rid=99,
            client_id="victim",
            x=rng.normal(size=(7, N_FEATURES)),
            replica="crashed",
            replica_rid=0,
        )
        fleet._resubmit(ticket, exclude="crashed")
        # never dropped...
        assert ticket.resubmits == 1
        assert (ticket.replica, ticket.replica_rid) in fleet._inflight
        # ...but admission control must steer the overload to the
        # roomiest queue, not the depth-blind affinity pick
        assert headroom[ticket.replica] == max(headroom.values()), (
            f"forced re-route chose {ticket.replica} with headroom "
            f"{headroom[ticket.replica]}, but {headroom} were available"
        )

    def test_conformance_replay_is_bit_identical(self, rng):
        fleet = _fleet(replicas=2, audit=True, placement="least-depth")
        for i in range(8):
            fleet.submit(f"c{i}", rng.normal(size=(3, N_FEATURES)))
        fleet.drain()
        assert fleet.verify_conformance() == {"replica0": None, "replica1": None}

    def test_conformance_replay_survives_chaos(self, rng):
        fleet = _fleet(
            replicas=2,
            placement="least-depth",
            replica_config=_crashy_replica0(),
            request_retries=0,
            audit=True,
        )
        for i in range(10):
            fleet.submit(f"c{i}", rng.normal(size=(2, N_FEATURES)))
        fleet.drain()
        assert fleet.report().replica_crashes >= 1
        assert fleet.verify_conformance() == {"replica0": None, "replica1": None}

    def test_conformance_requires_audit(self, rng):
        fleet = _fleet(replicas=1)
        fleet.submit("a", rng.normal(size=(2, N_FEATURES)))
        fleet.drain()
        with pytest.raises(ServeError):
            fleet.verify_conformance()


class TestFleetLifecycle:
    def test_retire_drains_before_removal(self, rng):
        fleet = _fleet(replicas=2, placement="least-depth")
        for i in range(6):
            fleet.submit(f"c{i}", rng.normal(size=(2, N_FEATURES)))
        retired = fleet.retire_replica()
        assert len(fleet.replicas()) == 1
        fleet.drain()
        rep = fleet.report()
        assert rep.served_requests == 6 and rep.dropped_requests == 0
        assert rep.replicas_retired == 1
        assert retired in rep.replicas  # retired replica still reported

    def test_cannot_retire_the_last_replica(self):
        fleet = _fleet(replicas=1)
        with pytest.raises(ServeError):
            fleet.retire_replica()

    def test_autoscaler_scales_up_past_the_high_watermark(self, rng):
        policy = AutoscalePolicy(
            high_p95_s=1e-9, low_p95_s=0.0, max_replicas=3, window=8,
            cooldown_ticks=1,
        )
        fleet = _fleet(replicas=1, autoscale=policy)
        for i in range(8):
            fleet.submit(f"c{i}", rng.normal(size=(4, N_FEATURES)))
            fleet.drain()
        assert len(fleet.replicas()) > 1
        assert fleet.telemetry.counter(
            "fleet.autoscale.actions").value(direction="up") >= 1

    def test_autoscaler_scales_down_below_the_low_watermark(self, rng):
        policy = AutoscalePolicy(
            high_p95_s=1e9, low_p95_s=1e8, min_replicas=1, window=8,
            cooldown_ticks=1,
        )
        fleet = _fleet(replicas=2, autoscale=policy)
        for i in range(6):
            fleet.submit(f"c{i}", rng.normal(size=(2, N_FEATURES)))
            fleet.drain()
        assert len(fleet.replicas()) == 1
        assert fleet.report().replicas_retired == 1

    def test_autoscale_policy_validates(self):
        with pytest.raises(ConfigError):
            AutoscalePolicy(high_p95_s=0.1, low_p95_s=0.2)
        with pytest.raises(ConfigError):
            AutoscalePolicy(high_p95_s=0.2, low_p95_s=0.1, min_replicas=3,
                            max_replicas=2)


class TestApiSurface:
    def test_api_serve_builds_a_fleet(self, rng):
        fleet = repro.api.serve(
            _factory, replicas=2, max_batch=8,
            activation_protocol="emulated",
        )
        assert isinstance(fleet, SecureServingFleet)
        fleet.submit("a", rng.normal(size=(2, N_FEATURES)))
        fleet.drain()
        assert fleet.report().served_requests == 1

    def test_replica_seeds_are_distinct(self):
        fleet = _fleet(replicas=3)
        seeds = [r.ctx.config.seed for r in fleet.replicas()]
        assert len(set(seeds)) == 3

    def test_serve_all_exports_importable(self):
        import repro.serve as serve_pkg

        for name in serve_pkg.__all__:
            assert getattr(serve_pkg, name) is not None

    def test_fleet_types_on_facade(self):
        for name in ("Replica", "SecureServingFleet", "FleetRouter",
                     "DealerService"):
            assert name in repro.__all__ and getattr(repro, name) is not None
        assert repro.__version__ == "1.8.0"

    def test_router_rejects_duplicate_names(self):
        router = FleetRouter("hash")

        class _Stub:
            name = "replica0"
            crashed_party = None
            queued_rows = 0

        router.add(_Stub())
        with pytest.raises(ServeError):
            router.add(_Stub())
