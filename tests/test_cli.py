"""The python -m repro.bench command-line interface."""

import pytest

from repro.bench.__main__ import main


class TestCLI:
    def test_single_cell_both_systems(self, capsys):
        rc = main(["linear", "MNIST", "--batches", "1", "--batch-size", "16",
                   "--no-extrapolate"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "SecureML" in out and "ParSecureML" in out
        assert "SecureML / ParSecureML" in out

    def test_single_system(self, capsys):
        rc = main(["linear", "MNIST", "--system", "par", "--batches", "1",
                   "--batch-size", "16", "--no-extrapolate"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "ParSecureML" in out
        assert "SecureML /" not in out

    def test_inference_mode(self, capsys):
        rc = main(["linear", "MNIST", "--inference", "--batches", "1",
                   "--batch-size", "16", "--no-extrapolate", "--system", "par"])
        assert rc == 0

    def test_plain_baselines(self, capsys):
        rc = main(["linear", "MNIST", "--system", "par", "--plain", "--batches", "1",
                   "--batch-size", "16", "--no-extrapolate"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "plain-cpu" in out and "plain-gpu" in out

    def test_rejects_unknown_model(self):
        with pytest.raises(SystemExit):
            main(["transformer", "MNIST"])
