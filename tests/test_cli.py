"""The python -m repro.bench command-line interface."""

import pytest

from repro.bench.__main__ import main


class TestCLI:
    def test_single_cell_both_systems(self, capsys):
        rc = main(["linear", "MNIST", "--batches", "1", "--batch-size", "16",
                   "--no-extrapolate"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "SecureML" in out and "ParSecureML" in out
        assert "SecureML / ParSecureML" in out

    def test_single_system(self, capsys):
        rc = main(["linear", "MNIST", "--system", "par", "--batches", "1",
                   "--batch-size", "16", "--no-extrapolate"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "ParSecureML" in out
        assert "SecureML /" not in out

    def test_inference_mode(self, capsys):
        rc = main(["linear", "MNIST", "--inference", "--batches", "1",
                   "--batch-size", "16", "--no-extrapolate", "--system", "par"])
        assert rc == 0

    def test_plain_baselines(self, capsys):
        rc = main(["linear", "MNIST", "--system", "par", "--plain", "--batches", "1",
                   "--batch-size", "16", "--no-extrapolate"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "plain-cpu" in out and "plain-gpu" in out

    def test_rejects_unknown_model(self):
        with pytest.raises(SystemExit):
            main(["transformer", "MNIST"])

    def test_seed_flag_reproduces_and_varies_the_workload(self, capsys):
        args = ["linear", "MNIST", "--system", "par", "--batches", "1",
                "--batch-size", "16", "--no-extrapolate"]
        assert main(args + ["--seed", "5"]) == 0
        first = capsys.readouterr().out
        assert main(args + ["--seed", "5"]) == 0
        second = capsys.readouterr().out
        assert first == second  # same seed, same simulated run

    def test_seed_reaches_workload_generation(self):
        import numpy as np

        from repro.bench.workloads import load_workload

        kw = dict(n_batches=1, batch_size=16)
        x1, y1, _ = load_workload("linear", "MNIST", seed=1, **kw)
        x1b, _, _ = load_workload("linear", "MNIST", seed=1, **kw)
        x2, _, _ = load_workload("linear", "MNIST", seed=2, **kw)
        np.testing.assert_array_equal(x1, x1b)  # same seed, same samples
        assert not np.array_equal(x1, x2)  # different seed, different draw
