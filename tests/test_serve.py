"""The serving layer: queue, batcher, and the multiplexing server.

Acceptance focus: many logical clients over ONE SecureContext, bounded
admission (retryable rejects, nothing shared before admission), adaptive
coalescing with pad-and-trim (no request dropped, ever — including under
party crashes), and per-request latency quantiles in telemetry.
"""

import numpy as np
import pytest

from repro.core.config import FrameworkConfig
from repro.core.context import SecureContext
from repro.core.inference import secure_predict
from repro.core.models import SecureMLP
from repro.core.tensor import SharedTensor
from repro.faults import FaultPlan, PartyCrash
from repro.faults.blame import PartyFailure
from repro.faults.chaos import unrecoverable_plan
from repro.serve import (
    AdaptiveBatcher,
    InferenceRequest,
    QueueFullError,
    RequestQueue,
    SecureInferenceServer,
)
from repro.util.errors import ConfigError, ServeError

N_FEATURES = 12
N_OUT = 3


def _server(*, fault_plan=None, activation="dealer", pool_size=None, **kw):
    overrides = {"activation_protocol": activation}
    if fault_plan is not None:
        overrides["fault_plan"] = fault_plan
    if pool_size is not None:
        overrides["pool_size"] = pool_size
    ctx = SecureContext(FrameworkConfig.parsecureml(**overrides))
    model = SecureMLP(ctx, N_FEATURES, hidden=(6,), n_out=N_OUT)
    kw.setdefault("max_batch", 16)
    kw.setdefault("max_wait_s", 1e-3)
    return ctx, model, SecureInferenceServer(ctx, model, **kw)


def _shared_rows(ctx, rng, rows):
    return SharedTensor.from_plain(ctx, rng.normal(size=(rows, 4)))


class TestRequestQueue:
    def test_admission_bounds_rows(self, ctx, rng):
        q = RequestQueue(max_rows=10, telemetry=ctx.telemetry)
        q.admit(InferenceRequest("a", 1, _shared_rows(ctx, rng, 6), 0.0))
        with pytest.raises(QueueFullError) as exc:
            q.admit(InferenceRequest("b", 2, _shared_rows(ctx, rng, 5), 0.0))
        assert exc.value.retryable
        assert q.depth_rows == 6 and len(q) == 1
        snap = ctx.telemetry.snapshot()
        assert snap.counter("serve.requests_rejected", client="b") == 1
        assert snap.counter("serve.requests_admitted") == 1

    def test_pop_upto_is_fifo_and_never_splits(self, ctx, rng):
        q = RequestQueue(max_rows=100, telemetry=ctx.telemetry)
        for rid, rows in enumerate([4, 5, 8, 2]):
            q.admit(InferenceRequest("c", rid, _shared_rows(ctx, rng, rows), 0.0))
        taken = q.pop_upto(10)  # 4+5 fit; 8 would overflow and must wait
        assert [r.request_id for r in taken] == [0, 1]
        assert q.depth_rows == 10
        assert q.oldest_enqueue_t() == 0.0

    def test_requeue_front_bypasses_admission(self, ctx, rng):
        q = RequestQueue(max_rows=4, telemetry=ctx.telemetry)
        req = InferenceRequest("a", 1, _shared_rows(ctx, rng, 4), 0.0)
        q.admit(req)
        (popped,) = q.pop_upto(4)
        q.admit(InferenceRequest("b", 2, _shared_rows(ctx, rng, 4), 1.0))
        q.requeue_front(popped)  # over max_rows, but recovery must not drop it
        assert q.depth_rows == 8
        assert q.pop_upto(4)[0].request_id == 1

    def test_rejects_bad_bound(self, ctx):
        with pytest.raises(ConfigError):
            RequestQueue(max_rows=0, telemetry=ctx.telemetry)


class TestAdaptiveBatcher:
    def _queue(self, ctx, rng, rows_list, t=0.0):
        q = RequestQueue(max_rows=1000, telemetry=ctx.telemetry)
        for rid, rows in enumerate(rows_list):
            q.admit(InferenceRequest("x", rid, _shared_rows(ctx, rng, rows), t))
        return q

    def test_ready_on_full_batch(self, ctx, rng):
        b = AdaptiveBatcher(max_batch=8, max_wait_s=1.0)
        q = self._queue(ctx, rng, [5])
        assert not b.ready(q, now=0.0)
        q.admit(InferenceRequest("x", 9, _shared_rows(ctx, rng, 3), 0.0))
        assert b.ready(q, now=0.0)

    def test_ready_on_timer(self, ctx, rng):
        b = AdaptiveBatcher(max_batch=8, max_wait_s=0.5)
        q = self._queue(ctx, rng, [2])
        assert not b.ready(q, now=0.4)
        assert b.ready(q, now=0.5)
        assert b.timer_deadline(q) == 0.5

    def test_plan_pads_partial_batch(self, ctx, rng):
        b = AdaptiveBatcher(max_batch=8, max_wait_s=0.0)
        plan = b.next_plan(self._queue(ctx, rng, [3, 2]))
        assert plan.rows == 5 and plan.pad_rows == 3

    def test_demand_counts_batches(self, ctx, rng):
        b = AdaptiveBatcher(max_batch=8, max_wait_s=0.0)
        assert b.demand(self._queue(ctx, rng, [8, 8, 1])) == 3
        assert b.demand(self._queue(ctx, rng, [])) == 0


class TestSubmitValidation:
    def test_rejects_non_2d(self, rng):
        _, _, server = _server()
        with pytest.raises(ConfigError):
            server.submit("a", rng.normal(size=(3,)))

    def test_rejects_empty_request(self):
        _, _, server = _server()
        with pytest.raises(ServeError):
            server.submit("a", np.zeros((0, N_FEATURES)))

    def test_rejects_oversized_request(self, rng):
        _, _, server = _server(max_batch=8)
        with pytest.raises(ServeError) as exc:
            server.submit("a", rng.normal(size=(9, N_FEATURES)))
        assert not exc.value.retryable

    def test_rejects_wrong_width(self, rng):
        _, _, server = _server()
        with pytest.raises(ConfigError):
            server.submit("a", rng.normal(size=(2, N_FEATURES + 1)))

    def test_queue_full_rejects_before_sharing(self, rng):
        ctx, _, server = _server(max_batch=4, max_queue_rows=4)
        server.submit("a", rng.normal(size=(4, N_FEATURES)))
        mark = ctx.mark()
        with pytest.raises(QueueFullError):
            server.submit("b", rng.normal(size=(1, N_FEATURES)))
        # the rejected request paid no sharing cost at all
        assert ctx.since(mark).offline_s == 0.0
        assert server.report().rejected_requests == 1


class TestServing:
    def test_four_clients_one_context(self, rng):
        """The acceptance scenario: >=4 concurrent clients, one context."""
        ctx, model, server = _server(max_batch=16)
        x_by_rid = {}
        for client, rows in [("a", 5), ("b", 7), ("c", 3), ("d", 11), ("a", 2)]:
            x = rng.normal(size=(rows, N_FEATURES)) * 0.25
            x_by_rid[server.submit(client, x)] = (client, x)
        server.drain()
        rep = server.report()
        assert rep.served_requests == 5
        assert rep.served_rows == 28
        assert len({r.client_id for r in rep.responses}) == 4
        assert len(server.queue) == 0
        w = [la.weight.decode() for la in model.layers if hasattr(la, "weight")]
        b = [la.bias.decode() for la in model.layers if hasattr(la, "bias")]
        for resp in rep.responses:
            client, x = x_by_rid[resp.request_id]
            assert resp.client_id == client
            assert resp.predictions.shape == (x.shape[0], N_OUT)
            ref = np.maximum(x @ w[0] + b[0], 0.0) @ w[1] + b[1]
            assert np.allclose(resp.predictions, ref, atol=2e-2)
        # latency spans are coherent and quantiles populated
        for resp in rep.responses:
            assert resp.latency_s == pytest.approx(resp.queue_wait_s + resp.service_s)
            assert resp.latency_s > 0.0
        assert 0.0 < rep.latency["p50"] <= rep.latency["p95"] <= rep.latency["p99"]

    def test_coalescing_fills_batches(self, rng):
        """Small requests ride together; padding only on the last batch."""
        ctx, _, server = _server(max_batch=16)
        for i in range(6):  # 6 x 4 rows = 24 -> one full batch + one of 8
            server.submit(f"c{i % 3}", rng.normal(size=(4, N_FEATURES)))
        server.drain()
        rep = server.report()
        assert rep.batches == 2
        assert rep.served_rows == 24 and rep.padded_rows == 8
        assert rep.mean_batch_fill == pytest.approx(24 / 32)
        first = [r for r in rep.responses if r.batch_index == 0]
        assert sum(r.rows for r in first) == 16

    def test_pump_leaves_unripe_partial_queued(self, rng):
        ctx, _, server = _server(max_batch=16, max_wait_s=5e-3)
        server.submit("a", rng.normal(size=(3, N_FEATURES)))
        assert server.pump() == 0  # neither full nor timed out
        assert len(server.queue) == 1
        assert server.drain() == 1  # drain idles the clock through the timer
        rep = server.report()
        assert rep.timer_waits >= 1
        assert rep.served_requests == 1 and rep.padded_rows == 13
        # the timer wait shows up as queue latency on the online clock
        assert rep.responses[0].queue_wait_s >= 5e-3

    def test_provisioning_is_pool_backed(self, rng):
        ctx, _, server = _server(max_batch=8, pool_size=64)
        server.submit("a", rng.normal(size=(8, N_FEATURES)))
        server.drain()
        rep = server.report()
        assert rep.provisioned_triplets > 0
        snap = ctx.telemetry.snapshot()
        assert snap.counter("mpc.pool.hits") > 0

    def test_empty_server_report(self):
        _, _, server = _server()
        rep = server.report()
        assert rep.served_requests == 0 and rep.batches == 0
        assert rep.latency == {"p50": 0.0, "p95": 0.0, "p99": 0.0}
        assert rep.mean_batch_fill == 0.0
        assert rep.response_for("nobody", 1) is None

    def test_matches_secure_predict(self, rng):
        """One big client request == the plain driver, bit for bit.

        Identically-seeded deployments, identical sharing order: the
        served path and ``secure_predict`` run the same ops in the same
        order, so their predictions must agree exactly.
        """
        x = np.random.default_rng(5).normal(size=(16, N_FEATURES)) * 0.25
        ctx_a, model_a, server = _server(max_batch=16)
        server.submit("solo", x)
        server.drain()
        served = server.report().responses[0].predictions
        ctx_b = SecureContext(FrameworkConfig.parsecureml())
        model_b = SecureMLP(ctx_b, N_FEATURES, hidden=(6,), n_out=N_OUT)
        direct = secure_predict(ctx_b, model_b, x, batch_size=16).predictions
        np.testing.assert_array_equal(served, direct)


class TestServingUnderFaults:
    def _run(self, fault_plan, retries=2):
        ctx, model, server = _server(
            fault_plan=fault_plan, activation="emulated", max_batch=8,
            max_request_retries=retries,
        )
        rng = np.random.default_rng(9)
        for client, rows in [("a", 5), ("b", 3), ("c", 8), ("d", 2), ("a", 6)]:
            server.submit(client, rng.normal(size=(rows, N_FEATURES)) * 0.25)
        server.drain()
        return server.report()

    def test_party_crash_loses_nothing(self):
        """A server crash mid-serve degrades p99, never drops a request."""
        clean = self._run(None)
        plan = FaultPlan(seed=7, crashes=(PartyCrash("server1", at_step=2),))
        chaos = self._run(plan)
        assert chaos.served_requests == clean.served_requests == 5
        assert chaos.retried_batches >= 1
        assert chaos.retry_online_s > 0.0
        # recovery is exact: same submissions, bit-identical predictions
        for rc, rx in zip(clean.responses, chaos.responses):
            assert (rc.client_id, rc.request_id) == (rx.client_id, rx.request_id)
            np.testing.assert_array_equal(rc.predictions, rx.predictions)
        # the crash is visible where it should be: the tail latency
        assert chaos.latency["p99"] > clean.latency["p99"]
        assert clean.latency["p99"] > 0.0

    def test_exhausted_retries_requeue_not_drop(self, rng):
        """Identifiable abort surfaces, but admitted requests survive."""
        ctx, model, server = _server(
            fault_plan=unrecoverable_plan(), activation="emulated",
            max_batch=8, max_request_retries=1,
        )
        server.submit("a", rng.normal(size=(5, N_FEATURES)))
        server.submit("b", rng.normal(size=(3, N_FEATURES)))
        with pytest.raises(PartyFailure):
            server.drain()
        assert len(server.queue) == 2  # requeued at the head, FIFO preserved
        assert server.queue.depth_rows == 8
        assert server.report().served_requests == 0


class TestTelemetrySurface:
    def test_snapshot_has_serving_metrics(self, rng):
        ctx, _, server = _server(max_batch=8)
        for client in ("a", "b"):
            server.submit(client, rng.normal(size=(4, N_FEATURES)))
        server.drain()
        server.report()  # pins the quantile gauges
        snap = ctx.telemetry.snapshot()
        assert snap.counter("serve.requests_admitted") == 2
        assert snap.counter("serve.requests_served") == 2
        assert snap.counter("serve.rows_served") == 8
        assert snap.counter("serve.batches") == 1
        assert snap.gauge("serve.queue_depth_rows") == 0
        assert snap.histogram("serve.request_latency_seconds", stage="total").count == 2
        assert snap.gauge("serve.latency_quantile_seconds", q="p99") > 0.0
        assert snap.histogram("serve.batch_fill").count == 1

    def test_facade_exports(self):
        import repro

        assert repro.SecureInferenceServer is SecureInferenceServer
        assert repro.QueueFullError is QueueFullError
        assert repro.serve.AdaptiveBatcher is AdaptiveBatcher
