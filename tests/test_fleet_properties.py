"""Hypothesis property tests for fleet routing and recovery.

The router-level invariants the fleet design doc promises, held under
arbitrary inputs rather than the example paths in test_fleet.py:

* consistent-hash stability — adding or removing a replica only moves
  the clients whose ring owner changed, everyone else stays put;
* least-depth never ranks a deeper queue first and the router never
  offers a crashed replica, whatever the health mix;
* exactly-once delivery holds under arbitrary chaos seeds and request
  interleavings — every admitted request is answered exactly once.

Placement policies are duck-typed on ``name`` / ``queued_rows`` /
``crashed_party``, so lightweight stand-ins rank without a live secure
deployment; only the end-to-end chaos property spins real fleets.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.config import FrameworkConfig
from repro.core.models import SecureMLP
from repro.faults import FaultPlan, PartyCrash
from repro.serve import SecureServingFleet
from repro.serve.fleet import FleetRouter
from repro.serve.placement import ConsistentHashPlacement, LeastDepthPlacement

pytestmark = pytest.mark.property

N_FEATURES = 12


class _Stub:
    """Duck-typed replica: placement reads name/depth/health only."""

    def __init__(self, name, depth=0, crashed=False):
        self.name = name
        self.queued_rows = depth
        self.crashed_party = "server1" if crashed else None

    def __repr__(self):
        return f"_Stub({self.name!r})"


_names = st.lists(
    st.integers(min_value=0, max_value=9).map(lambda i: f"replica{i}"),
    min_size=2, max_size=6, unique=True,
)
_clients = st.lists(
    st.integers(min_value=0, max_value=10_000).map(lambda i: f"client{i}"),
    min_size=1, max_size=40, unique=True,
)


class TestConsistentHashStability:
    @given(names=_names, clients=_clients, extra=st.integers(10, 19))
    @settings(max_examples=100, deadline=None)
    def test_add_moves_only_clients_owned_by_the_newcomer(self, names, clients, extra):
        ring = ConsistentHashPlacement()
        for n in names:
            ring.add_replica(n)
        before = {c: ring.owner(c, names) for c in clients}
        newcomer = f"replica{extra}"
        ring.add_replica(newcomer)
        after = {c: ring.owner(c, names + [newcomer]) for c in clients}
        for c in clients:
            if after[c] != before[c]:
                assert after[c] == newcomer  # moved clients moved TO the newcomer

    @given(names=_names, clients=_clients, victim=st.integers(0, 5))
    @settings(max_examples=100, deadline=None)
    def test_remove_moves_only_the_victims_clients(self, names, clients, victim):
        ring = ConsistentHashPlacement()
        for n in names:
            ring.add_replica(n)
        removed = names[victim % len(names)]
        survivors = [n for n in names if n != removed]
        before = {c: ring.owner(c, names) for c in clients}
        ring.remove_replica(removed)
        after = {c: ring.owner(c, survivors) for c in clients}
        for c in clients:
            if before[c] != removed:
                assert after[c] == before[c]  # unaffected clients stay put

    @given(names=_names, client=st.integers(0, 10_000).map(lambda i: f"c{i}"))
    @settings(max_examples=100, deadline=None)
    def test_rank_is_a_permutation_of_the_candidates(self, names, client):
        ring = ConsistentHashPlacement()
        for n in names:
            ring.add_replica(n)
        replicas = [_Stub(n) for n in names]
        order = ring.rank(client, replicas)
        assert sorted(r.name for r in order) == sorted(names)


class TestLeastDepthAndHealth:
    @given(
        depths=st.lists(st.integers(0, 500), min_size=1, max_size=8),
        client=st.text(max_size=8),
    )
    @settings(max_examples=100, deadline=None)
    def test_least_depth_ranks_shallowest_first(self, depths, client):
        replicas = [_Stub(f"replica{i}", depth=d) for i, d in enumerate(depths)]
        order = LeastDepthPlacement().rank(client, replicas)
        ranked = [r.queued_rows for r in order]
        assert ranked == sorted(ranked)
        assert sorted(r.name for r in order) == sorted(r.name for r in replicas)

    @given(
        health=st.lists(st.booleans(), min_size=1, max_size=6),
        policy=st.sampled_from(["hash", "least-depth"]),
        client=st.integers(0, 1000).map(lambda i: f"c{i}"),
    )
    @settings(max_examples=100, deadline=None)
    def test_router_never_routes_to_a_crashed_replica(self, health, policy, client):
        router = FleetRouter(policy)
        for i, crashed in enumerate(health):
            router.add(_Stub(f"replica{i}", depth=i, crashed=crashed))
        order = router.route(client)
        assert all(r.crashed_party is None for r in order)
        alive = sum(not c for c in health)
        assert len(order) == alive


class TestExactlyOnceUnderChaos:
    @given(
        chaos_seed=st.integers(0, 50),
        sizes=st.lists(st.integers(1, 4), min_size=4, max_size=10),
    )
    @settings(max_examples=8, deadline=None)
    def test_every_admitted_request_answered_exactly_once(self, chaos_seed, sizes):
        plan = FaultPlan(
            seed=chaos_seed, crashes=(PartyCrash("server1", at_step=2),)
        )
        fleet = SecureServingFleet(
            lambda ctx: SecureMLP(ctx, N_FEATURES, hidden=(6,), n_out=3),
            replicas=2,
            config=FrameworkConfig.parsecureml(activation_protocol="emulated"),
            replica_config=lambda i, cfg: cfg.but(fault_plan=plan) if i == 0 else cfg,
            placement="least-depth",
            max_batch=8,
            request_retries=0,
        )
        rng = np.random.default_rng(chaos_seed)
        rids = [
            fleet.submit(f"c{i}", rng.normal(size=(rows, N_FEATURES)))
            for i, rows in enumerate(sizes)
        ]
        fleet.drain()
        rep = fleet.report()
        assert rep.served_requests == len(sizes)
        assert rep.dropped_requests == 0 and rep.pending_requests == 0
        assert sorted(r.fleet_rid for r in rep.responses) == sorted(rids)
