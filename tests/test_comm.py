"""Channels, CSR codec, compressed transmission, transport."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.comm.channel import Channel, ETHERNET_10G, INFINIBAND_100G, LinkSpec
from repro.comm.compression import CompressedPayload, DeltaCompressor
from repro.comm.csr import csr_decode, csr_encode, csr_nbytes, dense_nbytes, density
from repro.comm.transport import TransportHub
from repro.simgpu.clock import SimClock
from repro.telemetry import Telemetry
from repro.util.errors import ProtocolError, TransportError


class TestChannel:
    def make(self, spec=INFINIBAND_100G):
        clock = SimClock()
        return clock, Channel(clock, spec, "s0", "s1")

    def test_transfer_time(self):
        clock, ch = self.make()
        t = ch.send("s0", "s1", 12_000_000_000)  # 12 GB at 12 GB/s
        assert t.duration == pytest.approx(1.0 + INFINIBAND_100G.latency_s)

    def test_byte_and_message_counters(self):
        _, ch = self.make()
        ch.send("s0", "s1", 100)
        ch.send("s1", "s0", 50)
        assert ch.bytes_sent[("s0", "s1")] == 100
        assert ch.total_bytes == 150
        assert ch.total_messages == 2
        ch.reset_counters()
        assert ch.total_bytes == 0

    def test_full_duplex(self):
        _, ch = self.make()
        t1 = ch.send("s0", "s1", 10**9)
        t2 = ch.send("s1", "s0", 10**9)
        assert t2.start == 0.0  # opposite directions do not serialise

    def test_same_direction_serialises(self):
        _, ch = self.make()
        t1 = ch.send("s0", "s1", 10**9)
        t2 = ch.send("s0", "s1", 10**9)
        assert t2.start == t1.finish

    def test_unknown_endpoints(self):
        _, ch = self.make()
        with pytest.raises(TransportError):
            ch.send("s0", "elsewhere", 10)

    def test_negative_size(self):
        _, ch = self.make()
        with pytest.raises(TransportError):
            ch.send("s0", "s1", -1)

    def test_ethernet_slower_than_ib(self):
        assert ETHERNET_10G.transfer_seconds(10**9) > INFINIBAND_100G.transfer_seconds(10**9)


class TestCSR:
    @settings(max_examples=40, deadline=None)
    @given(st.integers(1, 12), st.integers(1, 12), st.floats(0, 1), st.integers(0, 999))
    def test_roundtrip(self, m, n, sparsity, seed):
        rng = np.random.default_rng(seed)
        dense = rng.normal(size=(m, n))
        dense[rng.random((m, n)) < sparsity] = 0.0
        assert np.array_equal(csr_decode(csr_encode(dense)), dense)

    def test_uint64_roundtrip(self, rng):
        dense = rng.integers(0, 2**64, size=(6, 6), dtype=np.uint64)
        dense[dense % np.uint64(3) == 0] = np.uint64(0)
        assert np.array_equal(csr_decode(csr_encode(dense)), dense)

    def test_all_zero(self):
        dense = np.zeros((4, 5))
        csr = csr_encode(dense)
        assert csr.nnz == 0
        assert np.array_equal(csr_decode(csr), dense)

    def test_nbytes_prediction_matches_encoding(self, rng):
        dense = rng.normal(size=(20, 20))
        dense[rng.random((20, 20)) < 0.8] = 0.0
        assert csr_nbytes(dense) == csr_encode(dense).nbytes

    def test_sparse_smaller_than_dense(self, rng):
        dense = np.zeros((100, 100))
        dense[0, :10] = 1.0
        assert csr_nbytes(dense) < dense_nbytes(dense)

    def test_density(self):
        d = np.array([[1.0, 0.0], [0.0, 0.0]])
        assert density(d) == 0.25


class TestDeltaCompressor:
    def test_first_send_is_dense(self, rng):
        comp = DeltaCompressor()
        m = rng.normal(size=(8, 8))
        payload = comp.encode("k", m)
        assert payload.kind == "dense"

    def test_sparse_delta_compresses(self, rng):
        comp = DeltaCompressor(0.75)
        base = rng.normal(size=(32, 32))
        comp.encode("k", base)
        nxt = base.copy()
        nxt[0, 0] += 1.0  # 1/1024 changed
        payload = comp.encode("k", nxt)
        assert payload.kind == "csr_delta"
        assert payload.wire_bytes < dense_nbytes(nxt)

    def test_dense_delta_stays_dense(self, rng):
        comp = DeltaCompressor(0.75)
        comp.encode("k", rng.normal(size=(16, 16)))
        payload = comp.encode("k", rng.normal(size=(16, 16)))
        assert payload.kind == "dense"

    def test_receiver_reconstructs_exactly(self, rng):
        sender = DeltaCompressor(0.5)
        receiver = DeltaCompressor(0.5)
        base = rng.integers(0, 2**64, size=(16, 16), dtype=np.uint64)
        stream = [base]
        for _ in range(5):
            nxt = stream[-1].copy()
            nxt[0, 0] += np.uint64(1)
            stream.append(nxt)
        for m in stream:
            payload = sender.encode("w", m)
            got = receiver.decode(payload)
            assert np.array_equal(got, m)

    def test_threshold_respected(self, rng):
        comp = DeltaCompressor(0.99)  # requires 99% zeros
        base = rng.normal(size=(10, 10))
        comp.encode("k", base)
        nxt = base.copy()
        nxt[0, :5] += 1.0  # only 95% zeros in delta
        assert comp.encode("k", nxt).kind == "dense"

    def test_disabled_never_compresses(self, rng):
        comp = DeltaCompressor(enabled=False)
        base = rng.normal(size=(8, 8))
        comp.encode("k", base)
        assert comp.encode("k", base).kind == "dense"

    def test_delta_without_state_rejected(self):
        comp = DeltaCompressor()
        other = DeltaCompressor()
        base = np.ones((4, 4))
        other.encode("k", base)
        payload = other.encode("k", base)  # csr delta (all-zero diff)
        assert payload.kind == "csr_delta"
        with pytest.raises(ProtocolError):
            comp.decode(payload)

    def test_stats_track_savings(self, rng):
        comp = DeltaCompressor(0.5)
        base = rng.normal(size=(64, 64))
        comp.encode("k", base)
        comp.encode("k", base)  # zero delta -> tiny wire size
        assert comp.stats.raw_bytes == 2 * base.nbytes
        assert comp.stats.wire_bytes < comp.stats.raw_bytes
        assert 0 < comp.stats.savings_fraction < 1
        assert comp.stats.dense_messages == 1
        assert comp.stats.compressed_messages == 1

    def test_shape_change_resets_stream(self, rng):
        comp = DeltaCompressor()
        comp.encode("k", rng.normal(size=(4, 4)))
        payload = comp.encode("k", rng.normal(size=(8, 8)))
        assert payload.kind == "dense"

    def test_exactly_at_threshold_compresses(self, rng):
        # the threshold is inclusive: zero_fraction == 0.75 compresses
        comp = DeltaCompressor(0.75)
        base = rng.normal(size=(16, 16))
        comp.encode("k", base)
        nxt = base.copy()
        nxt.reshape(-1)[:64] += 1.0  # 192/256 zeros in the delta, exactly 0.75
        assert comp.encode("k", nxt).kind == "csr_delta"

    def test_just_below_threshold_stays_dense(self, rng):
        comp = DeltaCompressor(0.75)
        base = rng.normal(size=(16, 16))
        comp.encode("k", base)
        nxt = base.copy()
        nxt.reshape(-1)[:65] += 1.0  # 191/256 zeros, one short of the threshold
        assert comp.encode("k", nxt).kind == "dense"

    def test_sparse_enough_but_csr_larger_stays_dense(self, rng):
        # a 2x2 matrix with one changed cell clears the zero-fraction
        # bar (0.75) but CSR overhead exceeds the 32-byte dense size,
        # so the size comparison vetoes compression
        comp = DeltaCompressor(0.75)
        base = rng.normal(size=(2, 2))
        comp.encode("k", base)
        nxt = base.copy()
        nxt[0, 0] += 1.0
        assert comp.encode("k", nxt).kind == "dense"

    def test_all_zero_delta_is_near_free(self, rng):
        comp = DeltaCompressor(0.75)
        base = rng.normal(size=(16, 16))
        comp.encode("k", base)
        payload = comp.encode("k", base)  # identical resend: delta == 0
        assert payload.kind == "csr_delta"
        assert payload.wire_bytes < dense_nbytes(base) // 4
        assert payload.raw_bytes == dense_nbytes(base)

    def test_telemetry_accounting_matches_payloads(self, rng):
        # the telemetry counters must agree byte-for-byte with what the
        # payloads themselves report having cost
        tel = Telemetry()
        comp = DeltaCompressor(0.75, telemetry=tel, direction="s0->s1")
        base = rng.normal(size=(32, 32))
        stream = [base, base.copy(), rng.normal(size=(32, 32))]
        stream[1][0, 0] += 1.0
        payloads = [comp.encode("k", m) for m in stream]
        kinds = [p.kind for p in payloads]
        assert kinds == ["dense", "csr_delta", "dense"]
        snap = tel.snapshot()
        assert snap.counter("comm.compression.raw_bytes") == sum(p.raw_bytes for p in payloads)
        assert snap.counter("comm.compression.wire_bytes") == sum(p.wire_bytes for p in payloads)
        assert comp.stats.raw_bytes == sum(p.raw_bytes for p in payloads)
        assert comp.stats.wire_bytes == sum(p.wire_bytes for p in payloads)
        assert comp.stats.dense_messages == 2
        assert comp.stats.compressed_messages == 1


class TestTransport:
    def test_fifo_per_tag(self):
        hub = TransportHub(["a", "b"])
        hub.send("a", "b", "t", 1)
        hub.send("a", "b", "t", 2)
        assert hub.recv("b", "a", "t") == 1
        assert hub.recv("b", "a", "t") == 2

    def test_tags_are_independent(self):
        hub = TransportHub(["a", "b"])
        hub.send("a", "b", "x", "first-x")
        hub.send("a", "b", "y", "first-y")
        assert hub.recv("b", "a", "y") == "first-y"
        assert hub.recv("b", "a", "x") == "first-x"

    def test_exchange(self):
        hub = TransportHub(["a", "b"])
        got_a, got_b = hub.exchange("a", "b", "e", "from-a", "from-b")
        assert got_a == "from-b"
        assert got_b == "from-a"

    def test_missing_message_raises(self):
        hub = TransportHub(["a", "b"])
        with pytest.raises(TransportError):
            hub.recv("b", "a", "t")

    def test_self_send_rejected(self):
        hub = TransportHub(["a", "b"])
        with pytest.raises(TransportError):
            hub.send("a", "a", "t", 1)

    def test_unknown_endpoint(self):
        hub = TransportHub(["a", "b"])
        with pytest.raises(TransportError):
            hub.send("a", "c", "t", 1)

    def test_duplicate_names_rejected(self):
        with pytest.raises(TransportError):
            TransportHub(["a", "a"])

    def test_pending_count(self):
        hub = TransportHub(["a", "b"])
        hub.send("a", "b", "t", 1)
        assert hub.mailboxes["b"].pending("a", "t") == 1

    def test_pending_summary_tracks_partial_drains(self):
        hub = TransportHub(["a", "b", "c"])
        hub.send("a", "b", "t", 1)
        hub.send("a", "b", "t", 2)
        hub.send("c", "b", "u", 3)
        box = hub.mailboxes["b"]
        assert box.pending_summary() == {("a", "t"): 2, ("c", "u"): 1}
        hub.recv("b", "a", "t")
        assert box.pending_summary() == {("a", "t"): 1, ("c", "u"): 1}
        hub.recv("b", "c", "u")
        # fully drained streams drop out instead of lingering at zero
        assert box.pending_summary() == {("a", "t"): 1}
        hub.recv("b", "a", "t")
        assert box.pending_summary() == {}
