"""Dealer-assisted secure comparison and its cost-identical emulation."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.fixedpoint.encoding import FixedPointEncoder
from repro.mpc.comparison import (
    ComparisonDealer,
    comparison_online_bytes,
    emulated_ge_const,
    secure_ge_const,
)
from repro.mpc.shares import reconstruct, share_secret
from repro.util.errors import ProtocolError, ShapeError


def compare_via_protocol(values, threshold, seed=0):
    enc = FixedPointEncoder(13)
    rng = np.random.default_rng(seed)
    encoded = enc.encode(np.asarray(values, dtype=np.float64))
    pair = share_secret(encoded, rng)
    dealer = ComparisonDealer(np.random.default_rng(seed + 1))
    bundle = dealer.bundle(encoded.shape)
    res = secure_ge_const(pair.share0, pair.share1, int(enc.encode(np.float64(threshold))), bundle)
    return reconstruct(res.share0, res.share1).view(np.int64), res


class TestDealerComparison:
    @settings(max_examples=30, deadline=None)
    @given(
        st.lists(st.floats(-50, 50, allow_nan=False), min_size=1, max_size=12),
        st.floats(-10, 10, allow_nan=False),
        st.integers(0, 10_000),
    )
    def test_matches_numpy(self, values, threshold, seed):
        values = np.array(values)
        # rule out encoding-boundary ties where float and fixed-point
        # comparisons legitimately differ by one ulp
        enc = FixedPointEncoder(13)
        ok = np.abs(enc.decode(enc.encode(values)) - threshold) > 2 * enc.resolution
        got, _ = compare_via_protocol(values, threshold, seed)
        expected = (values >= threshold).astype(np.int64)
        assert np.array_equal(got[ok], expected[ok])

    def test_exact_on_grid_values(self):
        # values exactly representable: comparison must be exact incl. ties
        values = np.array([-1.0, -0.5, -0.25, 0.0, 0.25, 0.5, 1.0])
        got, _ = compare_via_protocol(values, 0.5)
        assert np.array_equal(got, (values >= 0.5).astype(np.int64))

    def test_2d_shapes(self):
        values = np.linspace(-2, 2, 24).reshape(4, 6)
        got, _ = compare_via_protocol(values, 0.0)
        assert got.shape == (4, 6)
        assert np.array_equal(got, (values >= 0).astype(np.int64))

    def test_bundle_single_use(self, rng):
        dealer = ComparisonDealer(rng)
        bundle = dealer.bundle((2, 2))
        x = np.zeros((2, 2), dtype=np.uint64)
        secure_ge_const(x, x, 0, bundle)
        with pytest.raises(ProtocolError):
            secure_ge_const(x, x, 0, bundle)

    def test_shape_mismatch(self, rng):
        dealer = ComparisonDealer(rng)
        bundle = dealer.bundle((2, 2))
        x = np.zeros((3, 2), dtype=np.uint64)
        with pytest.raises(ShapeError):
            secure_ge_const(x, x, 0, bundle)

    def test_accounting_matches_formula(self):
        values = np.linspace(-1, 1, 10)
        _, res = compare_via_protocol(values, 0.0)
        assert res.online_bytes == comparison_online_bytes(10)
        assert res.rounds == 64


class TestEmulatedParity:
    """The emulation must match the real protocol in value and accounting."""

    @settings(max_examples=15, deadline=None)
    @given(st.integers(0, 5000))
    def test_values_identical(self, seed):
        enc = FixedPointEncoder(13)
        rng = np.random.default_rng(seed)
        values = rng.normal(size=(5, 4)) * 3
        encoded = enc.encode(values)
        pair = share_secret(encoded, rng)
        c = int(enc.encode(np.float64(0.25)))
        dealer = ComparisonDealer(np.random.default_rng(seed + 2))
        real = secure_ge_const(pair.share0, pair.share1, c, dealer.bundle(encoded.shape))
        emu = emulated_ge_const(pair.share0, pair.share1, c, np.random.default_rng(seed + 3))
        real_val = reconstruct(real.share0, real.share1)
        emu_val = reconstruct(emu.share0, emu.share1)
        assert np.array_equal(real_val, emu_val)

    def test_accounting_identical(self, rng):
        enc = FixedPointEncoder(13)
        encoded = enc.encode(rng.normal(size=(7, 3)))
        pair = share_secret(encoded, rng)
        dealer = ComparisonDealer(np.random.default_rng(0))
        real = secure_ge_const(pair.share0, pair.share1, 0, dealer.bundle(encoded.shape))
        emu = emulated_ge_const(pair.share0, pair.share1, 0, rng)
        assert emu.online_bytes == real.online_bytes
        assert emu.rounds == real.rounds

    def test_emulated_output_is_freshly_shared(self, rng):
        x = np.zeros((4, 4), dtype=np.uint64)
        a = emulated_ge_const(x, x, 0, np.random.default_rng(1))
        b = emulated_ge_const(x, x, 0, np.random.default_rng(2))
        assert not np.array_equal(a.share0, b.share0)  # different masks
        assert np.array_equal(
            reconstruct(a.share0, a.share1), reconstruct(b.share0, b.share1)
        )


class TestOfflineMaterial:
    def test_offline_bytes_positive_and_scales(self, rng):
        dealer = ComparisonDealer(rng)
        small = dealer.bundle((4, 4)).offline_bytes
        large = dealer.bundle((8, 8)).offline_bytes
        assert 0 < small < large

    def test_issuance_counter(self, rng):
        dealer = ComparisonDealer(rng)
        dealer.bundle((2,))
        dealer.bundle((3,))
        assert dealer.bundles_issued == 2


class TestInPlaceRippleLoop:
    """The scratch-buffer GMW ripple must not touch its inputs."""

    def test_inputs_unmodified(self, rng=None):
        rng = np.random.default_rng(11)
        enc = FixedPointEncoder(13)
        encoded = enc.encode(rng.normal(size=(5, 3)))
        pair = share_secret(encoded, rng)
        dealer = ComparisonDealer(np.random.default_rng(12))
        s0, s1 = pair.share0.copy(), pair.share1.copy()
        secure_ge_const(pair.share0, pair.share1, 0, dealer.bundle(encoded.shape))
        assert np.array_equal(pair.share0, s0)
        assert np.array_equal(pair.share1, s1)

    def test_repeat_run_identical(self):
        # would diverge if the in-place loop corrupted the bundle's
        # triple planes through a view instead of private scratch
        a, _ = compare_via_protocol([-1.5, 0.0, 2.25], 0.5, seed=3)
        b, _ = compare_via_protocol([-1.5, 0.0, 2.25], 0.5, seed=3)
        assert np.array_equal(a, b)
