"""Secure statistics vs NumPy references."""

import numpy as np
import pytest

from repro.core.stats import (
    secure_covariance,
    secure_mean,
    secure_standardize,
    secure_variance,
)
from repro.core.tensor import SharedTensor
from repro.util.errors import ProtocolError, ShapeError


def shared(ctx, arr):
    return SharedTensor.from_plain(ctx, np.asarray(arr, dtype=np.float64))


class TestMean:
    def test_matches_numpy(self, ctx, rng):
        x = rng.normal(size=(40, 6))
        out = secure_mean(shared(ctx, x)).decode()
        np.testing.assert_allclose(out, x.mean(axis=0, keepdims=True), atol=1e-3)

    def test_rejects_non_2d(self, ctx, rng):
        t = shared(ctx, rng.normal(size=(2, 3, 4)))
        with pytest.raises(ShapeError):
            secure_mean(t)


class TestVariance:
    def test_matches_numpy(self, ctx, rng):
        x = rng.normal(size=(60, 5)) * 2 + 1
        out = secure_variance(shared(ctx, x)).decode().ravel()
        np.testing.assert_allclose(out, x.var(axis=0, ddof=1), rtol=0.05, atol=0.02)

    def test_needs_two_samples(self, ctx, rng):
        with pytest.raises(ProtocolError):
            secure_variance(shared(ctx, rng.normal(size=(1, 4))))


class TestCovariance:
    def test_matches_numpy(self, ctx, rng):
        x = rng.normal(size=(80, 4))
        x[:, 1] += 0.8 * x[:, 0]  # plant correlation
        out = secure_covariance(shared(ctx, x)).decode()
        np.testing.assert_allclose(out, np.cov(x.T, ddof=1), atol=0.05)

    def test_symmetric(self, ctx, rng):
        x = rng.normal(size=(50, 3))
        out = secure_covariance(shared(ctx, x)).decode()
        np.testing.assert_allclose(out, out.T, atol=2e-3)

    def test_diagonal_agrees_with_variance(self, ctx, rng):
        x = rng.normal(size=(60, 4))
        cov = secure_covariance(shared(ctx, x), label="c").decode()
        var = secure_variance(shared(ctx, x), label="v").decode().ravel()
        np.testing.assert_allclose(np.diag(cov), var, atol=0.02)


class TestStandardize:
    def test_output_standardised(self, ctx, rng):
        x = rng.normal(size=(100, 5)) * np.array([1, 2, 4, 0.5, 3]) + 7
        std_t, stds = secure_standardize(shared(ctx, x))
        out = std_t.decode()
        np.testing.assert_allclose(out.mean(axis=0), 0.0, atol=0.02)
        np.testing.assert_allclose(out.std(axis=0, ddof=1), 1.0, rtol=0.08)

    def test_public_stds_returned(self, ctx, rng):
        x = rng.normal(size=(100, 3)) * 2
        _, stds = secure_standardize(shared(ctx, x))
        np.testing.assert_allclose(stds, x.std(axis=0, ddof=1), rtol=0.1)

    def test_eps_floors_constant_columns(self, ctx):
        x = np.ones((30, 2))
        std_t, stds = secure_standardize(shared(ctx, x), eps=1e-2)
        assert (stds >= 1e-2).all()
        assert np.isfinite(std_t.decode()).all()
