"""CSR delta-compression path under one-hot / sparse operands.

The recsys workload leans on exactly this machinery (static
embedding-table streams collapsing to all-zero CSR deltas), so the
decision procedure's edges get dedicated coverage here:

* one-hot matrices round-trip through the codec and their wire size
  follows the documented ``(rows+1)*8 + nnz*4 + nnz*itemsize`` formula;
* the sparsity threshold is inclusive: a delta at *exactly* 75 % zeros
  compresses, one nonzero more falls back to dense;
* an all-zero delta (a repeated static stream) ships as an empty CSR
  frame of ``(rows+1)*8`` bytes and decodes back exactly;
* raw-vs-wire accounting reconciles against the dense cost on both
  branches of the decision.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.comm.compression import DeltaCompressor
from repro.comm.csr import csr_decode, csr_encode, csr_nbytes, dense_nbytes

RING = np.uint64


def _one_hot(rows: int, cols: int, *, seed: int = 0) -> np.ndarray:
    rng = np.random.default_rng(seed)
    m = np.zeros((rows, cols), dtype=RING)
    m[np.arange(rows), rng.integers(0, cols, size=rows)] = RING(1)
    return m


class TestCSRCodec:
    def test_one_hot_roundtrip(self):
        m = _one_hot(16, 64, seed=3)
        csr = csr_encode(m)
        assert csr.nnz == 16
        np.testing.assert_array_equal(csr_decode(csr), m)

    def test_one_hot_byte_formula(self):
        m = _one_hot(16, 64, seed=4)
        csr = csr_encode(m)
        expected = (16 + 1) * 8 + 16 * 4 + 16 * m.dtype.itemsize
        assert csr.nbytes == expected
        assert csr_nbytes(m) == expected
        assert csr.nbytes < dense_nbytes(m)

    def test_all_zero_matrix_encodes_to_indptr_only(self):
        m = np.zeros((8, 32), dtype=RING)
        csr = csr_encode(m)
        assert csr.nnz == 0
        assert csr.nbytes == (8 + 1) * 8
        np.testing.assert_array_equal(csr_decode(csr), m)


class TestThresholdBoundary:
    ROWS, COLS = 8, 64  # 512 elements; 25% nonzero = 128

    def _send_pair(self, nnz_delta: int):
        """First a dense baseline, then a delta with ``nnz_delta`` nonzeros."""
        comp = DeltaCompressor(0.75)
        base = _one_hot(self.ROWS, self.COLS, seed=1)
        first = comp.encode("s", base)
        assert first.kind == "dense"  # no history yet
        nxt = base.copy()
        flat = nxt.reshape(-1)
        flat[:nnz_delta] += RING(1)
        return comp, comp.encode("s", nxt), nxt

    def test_exactly_at_threshold_compresses(self):
        _, payload, _ = self._send_pair(nnz_delta=128)  # zero fraction == 0.75
        assert payload.kind == "csr_delta"
        assert payload.delta.nnz == 128

    def test_one_past_threshold_goes_dense(self):
        _, payload, _ = self._send_pair(nnz_delta=129)  # zero fraction < 0.75
        assert payload.kind == "dense"

    def test_receiver_reconstructs_across_the_boundary(self):
        from repro.comm.compression import CompressedPayload

        _, payload, expected = self._send_pair(nnz_delta=128)
        recv = DeltaCompressor(0.75)
        base = _one_hot(self.ROWS, self.COLS, seed=1)
        recv.decode(CompressedPayload(kind="dense", key="s", dense=base))
        np.testing.assert_array_equal(recv.decode(payload), expected)


class TestAccounting:
    def test_zero_delta_stream_is_charged_indptr_only(self):
        comp = DeltaCompressor(0.75)
        m = _one_hot(8, 64, seed=2)
        comp.encode("table/F", m)
        repeat = comp.encode("table/F", m.copy())
        assert repeat.kind == "csr_delta"
        assert repeat.delta.nnz == 0
        assert repeat.wire_bytes == (8 + 1) * 8
        assert repeat.raw_bytes == dense_nbytes(m)

    def test_stats_reconcile_raw_vs_wire(self):
        comp = DeltaCompressor(0.75)
        m = _one_hot(8, 64, seed=5)
        comp.encode("k", m)  # dense
        comp.encode("k", m.copy())  # all-zero delta
        stats = comp.stats
        assert stats.dense_messages == 1
        assert stats.compressed_messages == 1
        assert stats.raw_bytes == 2 * dense_nbytes(m)
        assert stats.wire_bytes == dense_nbytes(m) + (8 + 1) * 8
        assert 0.0 < stats.savings_fraction < 1.0

    def test_disabled_compressor_never_compresses(self):
        comp = DeltaCompressor(0.75, enabled=False)
        m = _one_hot(8, 64, seed=6)
        comp.encode("k", m)
        repeat = comp.encode("k", m.copy())
        assert repeat.kind == "dense"
        assert comp.stats.wire_bytes == comp.stats.raw_bytes
