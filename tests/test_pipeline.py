"""Profiler placement, pipeline-1 scheduling, timeline analysis."""

import numpy as np
import pytest

from repro.fixedpoint.encoding import FixedPointEncoder
from repro.fixedpoint.truncation import truncate_share
from repro.mpc.protocol import (
    beaver_matmul_share,
    combine_masked,
    masked_difference,
)
from repro.mpc.shares import reconstruct, share_secret
from repro.mpc.triplets import TripletDealer
from repro.pipeline.profiler import StepProfiler
from repro.pipeline.scheduler import schedule_secure_gemm
from repro.pipeline.timeline import render_gantt, summarize
from repro.simgpu.clock import SimClock
from repro.simgpu.cost import V100_SPEC, XEON_E5_2670V3_SPEC
from repro.simgpu.device import SimGPU


@pytest.fixture
def profiler():
    return StepProfiler(XEON_E5_2670V3_SPEC, V100_SPEC)


class TestProfiler:
    def test_small_gemm_goes_to_cpu(self, profiler):
        assert profiler.place_gemm(8, 8, 8).placement == "cpu"

    def test_large_gemm_goes_to_gpu(self, profiler):
        assert profiler.place_gemm(2048, 2048, 2048).placement == "gpu"

    def test_decisions_memoised(self, profiler):
        d1 = profiler.place_gemm(64, 64, 64)
        d2 = profiler.place_gemm(64, 64, 64)
        assert d1 is d2

    def test_forced_modes(self):
        cpu_always = StepProfiler(XEON_E5_2670V3_SPEC, V100_SPEC, mode="cpu_always")
        gpu_always = StepProfiler(XEON_E5_2670V3_SPEC, V100_SPEC, mode="gpu_always")
        assert cpu_always.place_gemm(4096, 4096, 4096).placement == "cpu"
        assert gpu_always.place_gemm(2, 2, 2).placement == "gpu"

    def test_rng_placement_crossover(self, profiler):
        """Fig. 7: CPU MT19937 wins small, cuRAND wins large."""
        small = profiler.place_rng(1024 * 8)
        large = profiler.place_rng(512 * 1024 * 1024)
        assert small.placement == "cpu"
        assert large.placement == "gpu"

    def test_advantage_at_least_one(self, profiler):
        assert profiler.place_gemm(128, 128, 128).advantage >= 1.0

    def test_profile_records(self, profiler):
        profiler.record("gemm", 1.0)
        profiler.record("gemm", 1.0)
        profiler.record("comm", 2.0)
        assert profiler.profile.seconds["gemm"] == 2.0
        assert profiler.profile.fraction("gemm") == pytest.approx(0.5)

    def test_elementwise_small_on_cpu(self, profiler):
        assert profiler.place_elementwise(4096).placement == "cpu"


class TestScheduledGemm:
    def _setup(self, m=32, k=48, n=24, seed=0):
        rng = np.random.default_rng(seed)
        enc = FixedPointEncoder(13)
        a = rng.normal(size=(m, k))
        b = rng.normal(size=(k, n))
        ap = share_secret(enc.encode(a), rng)
        bp = share_secret(enc.encode(b), rng)
        dealer = TripletDealer(np.random.default_rng(seed + 1))
        trip = dealer.matrix_triplet((m, k), (k, n))
        e = combine_masked(
            masked_difference(ap[0], trip.u[0]), masked_difference(ap[1], trip.u[1])
        )
        f = combine_masked(
            masked_difference(bp[0], trip.v[0]), masked_difference(bp[1], trip.v[1])
        )
        return enc, a, b, ap, bp, trip, e, f

    def test_matches_reference_protocol_bitwise(self):
        """The pipelined device schedule must produce exactly the shares
        the transport-less reference produces."""
        enc, a, b, ap, bp, trip, e, f = self._setup()
        for i in (0, 1):
            clock = SimClock()
            gpu = SimGPU(clock, V100_SPEC, f"g{i}")
            res = schedule_secure_gemm(
                gpu, i, e, f, ap[i], bp[i], trip.share_for(i), pipeline=True
            )
            ref = beaver_matmul_share(i, e, f, ap[i], bp[i], trip.share_for(i))
            assert np.array_equal(res.c_share, ref)

    def test_pipeline_reduces_makespan(self):
        enc, a, b, ap, bp, trip, e, f = self._setup(m=256, k=512, n=256)
        makespans = {}
        for pipelined in (False, True):
            clock = SimClock()
            gpu = SimGPU(clock, V100_SPEC, "g")
            schedule_secure_gemm(
                gpu, 0, e, f, ap[0], bp[0], trip.share_for(0), pipeline=pipelined
            )
            makespans[pipelined] = clock.now()
        assert makespans[True] < makespans[False]

    def test_accounting_fields(self):
        enc, a, b, ap, bp, trip, e, f = self._setup()
        clock = SimClock()
        gpu = SimGPU(clock, V100_SPEC, "g")
        res = schedule_secure_gemm(gpu, 0, e, f, ap[0], bp[0], trip.share_for(0))
        assert res.transfer_seconds > 0
        assert res.kernel_seconds > 0
        assert res.done.finish >= res.gpu_done.finish

    def test_end_to_end_decode(self):
        enc, a, b, ap, bp, trip, e, f = self._setup()
        shares = []
        for i in (0, 1):
            clock = SimClock()
            gpu = SimGPU(clock, V100_SPEC, f"g{i}")
            res = schedule_secure_gemm(gpu, i, e, f, ap[i], bp[i], trip.share_for(i))
            shares.append(truncate_share(res.c_share, 13, i))
        out = enc.decode(reconstruct(*shares))
        np.testing.assert_allclose(out, a @ b, atol=48 * 2**-12 + 2**-10)


class TestTimeline:
    def test_summarize_busy_and_overlap(self):
        clock = SimClock()
        clock.add_resource("x")
        clock.add_resource("y")
        clock.run("x", 2.0)
        clock.run("y", 2.0)
        s = summarize(clock)
        assert s.makespan == 2.0
        assert s.busy_seconds == {"x": 2.0, "y": 2.0}
        assert s.overlap_seconds() == 2.0
        assert s.utilization("x") == 1.0

    def test_summarize_window(self):
        clock = SimClock()
        clock.add_resource("x")
        clock.run("x", 4.0)
        s = summarize(clock, since=1.0, until=3.0)
        assert s.busy_seconds["x"] == 2.0

    def test_gantt_renders(self):
        clock = SimClock()
        clock.add_resource("gpu")
        clock.run("gpu", 1.0, label="k")
        text = render_gantt(clock)
        assert "gpu" in text
        assert "#" in text

    def test_gantt_empty(self):
        assert "empty" in render_gantt(SimClock())
