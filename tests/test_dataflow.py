"""The event-driven dataflow scheduler (repro.runtime.dataflow).

Three layers of guarantees:

* **unit** — the DataflowClock mirrors the lockstep placement while a
  window is open (provisional times, ``now()``, ``free_at``) and
  commits a valid schedule at finalize;
* **property (hypothesis)** — for arbitrary task DAGs the finalized
  schedule respects every dependency and resource serialisation, never
  worsens the lockstep makespan, and is monotone non-increasing vs the
  no-overlap (fully chained) ablation; for arbitrary actor firing
  orders the protocol transcript stays bit-identical;
* **integration** — a dataflow-mode context trains to bit-identical
  predictions with a no-worse makespan (the conformance sweep covers
  all six models; see also benchmarks/test_runtime_regression.py).
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.runtime.dataflow import DataflowClock, PendingTask
from repro.simgpu.clock import SimClock, Task
from repro.util.errors import ConfigError

RESOURCES = ("cpu", "gpu", "net")


def _twin_clocks():
    lock, flow = SimClock(), DataflowClock()
    for clock in (lock, flow):
        for r in RESOURCES:
            clock.add_resource(r)
    return lock, flow


def _replay(clock, plan):
    """Submit ``plan`` = [(resource, duration, dep_indices)] onto a clock."""
    tasks = []
    for resource, duration, dep_idx in plan:
        deps = tuple(tasks[i] for i in dep_idx)
        tasks.append(clock.run(resource, duration, deps=deps, label=f"t{len(tasks)}"))
    return tasks


def _assert_valid_schedule(tasks):
    """Every dep honoured; every resource strictly serial."""
    per_resource = {}
    for t in tasks:
        real = t.real if isinstance(t, PendingTask) else t
        per_resource.setdefault(real.resource, []).append(real)
        for dep in t.deps if isinstance(t, PendingTask) else ():
            assert real.start >= dep.finish - 1e-12, (
                f"{real.label} starts at {real.start} before dep "
                f"{dep.label if hasattr(dep, 'label') else dep} finishes at {dep.finish}"
            )
    for resource, scheduled in per_resource.items():
        scheduled = sorted(scheduled, key=lambda t: (t.start, t.finish))
        for a, b in zip(scheduled, scheduled[1:]):
            assert b.start >= a.finish - 1e-12, (
                f"overlap on {resource}: {a} then {b}"
            )


class TestProvisionalMirrorsLockstep:
    def test_pending_times_equal_lockstep(self):
        plan = [
            ("cpu", 2.0, ()),
            ("net", 1.0, (0,)),
            ("gpu", 3.0, (1,)),
            ("cpu", 0.5, ()),
            ("gpu", 1.0, (0, 3)),
        ]
        lock, flow = _twin_clocks()
        ref = _replay(lock, plan)
        pend = _replay(flow, plan)
        for r, p in zip(ref, pend):
            assert p.real is None
            assert p.start == r.start
            assert p.finish == r.finish
        assert flow.now() == lock.now()
        for r in RESOURCES:
            assert flow.free_at(r) == lock.free_at(r)

    def test_unknown_resource_and_negative_duration_rejected(self):
        flow = DataflowClock()
        flow.add_resource("cpu")
        with pytest.raises(ConfigError):
            flow.run("nope", 1.0)
        with pytest.raises(ConfigError):
            flow.run("cpu", -1.0)
        with pytest.raises(ConfigError):
            flow.free_at("nope")


class TestFinalize:
    def test_ready_task_overtakes_blocked_program_order(self):
        """B has no deps but was submitted after blocked A: EST fires it first."""
        _, flow = _twin_clocks()
        x = flow.run("gpu", 10.0, label="x")
        a = flow.run("cpu", 1.0, deps=(x,), label="a")
        b = flow.run("cpu", 2.0, label="b")
        assert (a.start, b.start) == (10.0, 11.0)  # provisional = lockstep
        flow.finalize()
        assert b.real.start == 0.0  # fired as soon as its operands resolved
        assert a.real.start == 10.0
        assert flow.now() == 11.0  # lockstep would have ended at 13.0
        _assert_valid_schedule([x, a, b])

    def test_finalize_never_worse_than_lockstep(self):
        plan = [
            ("gpu", 4.0, ()),
            ("cpu", 1.0, (0,)),
            ("cpu", 2.0, ()),
            ("net", 1.0, (1,)),
            ("net", 0.5, (2,)),
        ]
        lock, flow = _twin_clocks()
        _replay(lock, plan)
        tasks = _replay(flow, plan)
        flow.finalize()
        assert flow.now() <= lock.now() + 1e-12
        _assert_valid_schedule(tasks)

    def test_virtual_join_over_pending_deps_is_retimed(self):
        _, flow = _twin_clocks()
        x = flow.run("gpu", 10.0, label="x")
        a = flow.run("cpu", 1.0, deps=(x,), label="a")
        b = flow.run("cpu", 2.0, label="b")
        j = flow.join([a, b])
        assert isinstance(j, PendingTask)
        assert j.finish == 13.0  # provisional: program order
        flow.finalize()
        assert j.finish == 11.0  # re-timed with the committed schedule

    def test_join_over_placed_deps_resolves_immediately(self):
        _, flow = _twin_clocks()
        t = flow.run("cpu", 1.0)
        flow.finalize()
        j = flow.join([t])
        assert isinstance(j, Task)
        assert j.finish == 1.0

    def test_empty_window_and_double_finalize_are_noops(self):
        _, flow = _twin_clocks()
        flow.finalize()
        t = flow.run("cpu", 1.0)
        flow.finalize()
        flow.finalize()
        assert t.real is not None
        assert flow.now() == 1.0

    def test_windows_compose_across_finalize(self):
        _, flow = _twin_clocks()
        t1 = flow.run("cpu", 2.0)
        flow.finalize()
        t2 = flow.run("cpu", 1.0, deps=(t1,))
        assert t2.start == 2.0  # provisional base synced to the real clock
        flow.finalize()
        assert t2.real.start == 2.0

    def test_advance_all_finalizes_and_syncs(self):
        _, flow = _twin_clocks()
        flow.run("cpu", 2.0)
        t = flow.advance_all()
        assert t == 2.0
        for r in RESOURCES:
            assert flow.free_at(r) == 2.0

    def test_trace_holds_committed_times(self):
        _, flow = _twin_clocks()
        flow.run("gpu", 10.0, label="x")
        flow.run("cpu", 2.0, label="b")
        flow.finalize()
        by_label = {t.label: t for t in flow.trace}
        assert by_label["b"].start == 0.0
        assert flow.trace_for("cpu") == [by_label["b"]]
        assert flow.busy_time("cpu") == 2.0


# -- hypothesis: random DAGs --------------------------------------------------

def dag_plans(max_tasks=14):
    """Random [(resource, duration, dep_indices)] task graphs."""

    @st.composite
    def build(draw):
        n = draw(st.integers(1, max_tasks))
        plan = []
        for i in range(n):
            resource = draw(st.sampled_from(RESOURCES))
            duration = draw(st.floats(0.0, 4.0, allow_nan=False, width=32))
            deps = (
                draw(st.sets(st.integers(0, i - 1), max_size=3)) if i else set()
            )
            plan.append((resource, float(duration), tuple(sorted(deps))))
        return plan

    return build()


@pytest.mark.property
class TestSchedulerProperties:
    @settings(max_examples=120, deadline=None)
    @given(dag_plans())
    def test_schedule_valid_and_no_worse_than_lockstep(self, plan):
        lock, flow = _twin_clocks()
        ref = _replay(lock, plan)
        tasks = _replay(flow, plan)
        # provisional placement is exactly the lockstep one
        for r, p in zip(ref, tasks):
            assert p.start == r.start and p.finish == r.finish
        flow.finalize()
        _assert_valid_schedule(tasks)
        assert flow.now() <= lock.now() + 1e-9
        # work is conserved: same busy seconds per resource
        for resource in RESOURCES:
            assert flow.busy_time(resource) == pytest.approx(
                lock.busy_time(resource), abs=1e-9
            )

    @settings(max_examples=60, deadline=None)
    @given(dag_plans())
    def test_makespan_monotone_vs_no_overlap_ablation(self, plan):
        """Chaining every task behind its predecessor (the no-overlap
        ablation) can only lengthen the schedule."""
        chained = [
            (resource, duration, deps + ((i - 1,) if i else ()))
            for i, (resource, duration, deps) in enumerate(plan)
        ]
        _, flow = _twin_clocks()
        _replay(flow, plan)
        flow.finalize()
        _, serial = _twin_clocks()
        _replay(serial, chained)
        serial.finalize()
        assert flow.now() <= serial.now() + 1e-9


# -- hypothesis: actor firing order is value-free ------------------------------

@pytest.mark.property
class TestFiringOrderProperties:
    @settings(max_examples=25, deadline=None)
    @given(st.permutations(list(range(4))), st.integers(0, 2**32 - 1))
    def test_any_topological_firing_order_is_bit_identical(self, order, seed):
        """K in-flight matmuls finished in any order reconstruct the
        exact bytes of the sequential lockstep run."""
        from repro.comm.mpi_backend import LoopbackTransport
        from repro.runtime import ClientActor, ServerActor, run_matmul

        rng = np.random.default_rng(seed)
        ops = [
            (f"op{i}", rng.normal(size=(3, 4)), rng.normal(size=(4, 2)))
            for i in range(4)
        ]

        def actors():
            hub = LoopbackTransport()
            return (
                ClientActor(hub.as_role("client"), seed=9),
                (ServerActor(0, hub.as_role("server0")), ServerActor(1, hub.as_role("server1"))),
            )

        # reference: strictly sequential, program order
        client, servers = actors()
        reference = {
            label: run_matmul(client, servers, a, b, label=label)
            for label, a, b in ops
        }

        # permuted firing: all exchanges staged, finished in `order`
        client, servers = actors()
        for label, a, b in ops:
            client.dispatch_matmul(label, a, b)
        for s in servers:
            for label, _a, _b in ops:
                s.receive_material(label)
        for s in servers:
            for label, _a, _b in ops:
                s.send_masked(label)
        results = {}
        for i in order:
            label = ops[i][0]
            for s in servers:
                s.finish_matmul(label)
            results[label] = client.collect(label)
        for actor in (client, *servers):
            actor.assert_idle()

        for label, _a, _b in ops:
            np.testing.assert_array_equal(results[label], reference[label])


# -- integration: a dataflow context end to end --------------------------------

class TestDataflowContext:
    def test_train_bit_identical_and_no_worse_makespan(self):
        import repro

        def run(runtime):
            ctx = repro.api.session(runtime=runtime)
            rng = np.random.default_rng(3)
            x = rng.normal(size=(64, 12))
            y = rng.normal(size=(64, 3))
            model = repro.SecureMLP(ctx, 12, hidden=(8,), n_out=3)
            report = repro.SecureTrainer(ctx, model).train(x, y, batch_size=32)
            pred = repro.secure_predict(ctx, model, x[:32], batch_size=32).predictions
            return report, pred

        lock_report, lock_pred = run("lockstep")
        flow_report, flow_pred = run("dataflow")
        np.testing.assert_array_equal(lock_pred, flow_pred)
        assert flow_report.online_s <= lock_report.online_s + 1e-12
        assert flow_report.offline_s <= lock_report.offline_s + 1e-12

    def test_runtime_knob_validated(self):
        from repro.core.config import FrameworkConfig

        with pytest.raises(ConfigError):
            FrameworkConfig(runtime="warp")

    def test_snapshot_finalizes_open_window(self):
        import repro

        ctx = repro.api.session(runtime="dataflow")
        rng = np.random.default_rng(5)
        x = rng.normal(size=(32, 12))
        model = repro.SecureMLP(ctx, 12, hidden=(8,), n_out=3)
        model.forward(
            __import__("repro").SharedTensor.from_plain(ctx, x, label="x"),
            training=False,
        )
        assert ctx.online_clock.pending_count > 0
        snap = ctx.telemetry.snapshot()
        assert ctx.online_clock.pending_count == 0
        assert snap.gauge("phase.sim_seconds", clock="online") == ctx.online_clock.now()
