"""Garbled-circuit engine: circuits, OT, garbling, end-to-end comparison."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.gc.circuits import Circuit, build_adder_compare_circuit, evaluate_plain
from repro.gc.compare import gc_secure_ge_const
from repro.gc.garble import Evaluator, Garbler
from repro.gc.ot import ObliviousTransferReceiver, ObliviousTransferSender, run_ot
from repro.util.errors import ConfigError, ProtocolError


class TestCircuitBuilder:
    def test_gate_basis(self):
        c = Circuit(n_garbler_inputs=2, n_evaluator_inputs=0)
        w = c.and_(c.garbler_input(0), c.garbler_input(1))
        c.mark_output(c.not_(w))
        assert evaluate_plain(c, [1, 1], []) == [0]  # NAND
        assert evaluate_plain(c, [1, 0], []) == [1]

    def test_xor_gate(self):
        c = Circuit(n_garbler_inputs=1, n_evaluator_inputs=1)
        c.mark_output(c.xor(c.garbler_input(0), c.evaluator_input(0)))
        for a in (0, 1):
            for b in (0, 1):
                assert evaluate_plain(c, [a], [b]) == [a ^ b]

    def test_input_range_checks(self):
        c = Circuit(n_garbler_inputs=2, n_evaluator_inputs=1)
        with pytest.raises(ConfigError):
            c.garbler_input(2)
        with pytest.raises(ConfigError):
            c.evaluator_input(1)

    def test_wrong_input_count_rejected(self):
        c = Circuit(n_garbler_inputs=1, n_evaluator_inputs=1)
        c.mark_output(c.xor(0, 1))
        with pytest.raises(ConfigError):
            evaluate_plain(c, [1, 0], [0])


class TestCompareCircuit:
    @settings(max_examples=60, deadline=None)
    @given(
        st.integers(-(2**12), 2**12),
        st.integers(-(2**10), 2**10),
        st.integers(0, 2**16 - 1),
    )
    def test_matches_integer_comparison(self, x, c, x0):
        n = 16
        circ = build_adder_compare_circuit(n, constant=c % 2**n)
        x1 = (x - x0) % 2**n
        bits0 = [(x0 >> i) & 1 for i in range(n)]
        bits1 = [(x1 >> i) & 1 for i in range(n)]
        assert evaluate_plain(circ, bits0, bits1) == [1 if x >= c else 0]

    def test_and_count_is_linear(self):
        c16 = build_adder_compare_circuit(16, constant=12345)
        c32 = build_adder_compare_circuit(32, constant=12345)
        assert c16.n_and_gates <= 2 * 16
        assert c32.n_and_gates <= 2 * 32
        assert c32.n_and_gates > c16.n_and_gates

    def test_minimum_width(self):
        with pytest.raises(ConfigError):
            build_adder_compare_circuit(1)


class TestOT:
    def test_both_choices(self):
        m0, m1 = b"0" * 16, b"1" * 16
        assert run_ot(m0, m1, 0) == m0
        assert run_ot(m0, m1, 1) == m1

    def test_receiver_cannot_decrypt_other(self):
        m0, m1 = b"A" * 16, b"B" * 16
        sender = ObliviousTransferSender(m0, m1)
        receiver = ObliviousTransferReceiver(0)
        pk0 = receiver.request(sender.public_c)
        msg = sender.respond(pk0)
        # decrypting the *other* slot with the receiver's key gives junk
        receiver.choice = 1
        other = receiver.receive(msg)
        assert other != m1

    def test_invalid_choice_bit(self):
        with pytest.raises(ProtocolError):
            ObliviousTransferReceiver(2)

    def test_unequal_lengths_rejected(self):
        with pytest.raises(ProtocolError):
            ObliviousTransferSender(b"ab", b"a")

    def test_receive_before_request(self):
        r = ObliviousTransferReceiver(0)
        with pytest.raises(ProtocolError):
            r.receive(None)


class TestGarbling:
    def _random_circuit(self, rng, n_gates=30):
        c = Circuit(n_garbler_inputs=4, n_evaluator_inputs=4)
        wires = list(range(8))
        for _ in range(n_gates):
            op = rng.choice(["XOR", "AND", "NOT"])
            a = int(rng.choice(wires))
            b = int(rng.choice(wires))
            if op == "XOR":
                wires.append(c.xor(a, b))
            elif op == "AND":
                wires.append(c.and_(a, b))
            else:
                wires.append(c.not_(a))
        for w in wires[-3:]:
            c.mark_output(w)
        return c

    def test_garbled_matches_plain_on_random_circuits(self):
        rng = np.random.default_rng(0)
        for trial in range(5):
            circ = self._random_circuit(rng)
            garbler = Garbler(circ, seed=bytes([trial]))
            ev = Evaluator(garbler.garbled)
            for _ in range(8):
                g_bits = [int(b) for b in rng.integers(0, 2, 4)]
                e_bits = [int(b) for b in rng.integers(0, 2, 4)]
                labels_g = garbler.garbler_input_labels(g_bits)
                labels_e = [
                    pair[bit]
                    for pair, bit in zip(garbler.evaluator_input_label_pairs(), e_bits)
                ]
                assert ev.evaluate(labels_g, labels_e) == evaluate_plain(circ, g_bits, e_bits)

    def test_deterministic_with_seed(self):
        circ = build_adder_compare_circuit(8, constant=3)
        g1 = Garbler(circ, seed=b"fixed")
        g2 = Garbler(circ, seed=b"fixed")
        assert g1.garbled.tables == g2.garbled.tables

    def test_wrong_label_count_rejected(self):
        circ = build_adder_compare_circuit(8, constant=0)
        garbler = Garbler(circ, seed=b"x")
        ev = Evaluator(garbler.garbled)
        with pytest.raises(ProtocolError):
            ev.evaluate([], [])


class TestEndToEndComparison:
    @settings(max_examples=10, deadline=None)
    @given(st.integers(-(2**10), 2**10), st.integers(0, 2**16 - 1), st.integers(-100, 100))
    def test_gc_compare_16bit(self, x, x0, c):
        n = 16
        x1 = (x - x0) % 2**n
        res = gc_secure_ge_const(x0, x1, c % 2**n, n_bits=n, seed=b"t")
        assert (res.share0 ^ res.share1) == (1 if x >= c else 0)

    def test_gc_compare_64bit_matches_dealer_protocol(self, rng, encoder):
        """Cross-validate the two comparison back-ends on the same input."""
        from repro.mpc.comparison import ComparisonDealer, secure_ge_const
        from repro.mpc.shares import reconstruct, share_secret

        values = np.array([[-1.5, 0.2], [0.5, 3.0]])
        encoded = encoder.encode(values)
        pair = share_secret(encoded, rng)
        c_enc = int(encoder.encode(np.float64(0.5)))
        dealer = ComparisonDealer(np.random.default_rng(7))
        dealer_res = secure_ge_const(pair.share0, pair.share1, c_enc, dealer.bundle((2, 2)))
        dealer_bits = reconstruct(dealer_res.share0, dealer_res.share1)
        for idx in np.ndindex(2, 2):
            gc_res = gc_secure_ge_const(
                int(pair.share0[idx]), int(pair.share1[idx]), c_enc, seed=b"s"
            )
            assert (gc_res.share0 ^ gc_res.share1) == int(dealer_bits[idx])

    def test_output_is_masked(self):
        """Different mask seeds flip both shares, never the value."""
        r1 = gc_secure_ge_const(5, 0, 3, n_bits=16, seed=b"\x00")
        r2 = gc_secure_ge_const(5, 0, 3, n_bits=16, seed=b"\x01")
        assert r1.share0 != r2.share0  # mask differs
        assert (r1.share0 ^ r1.share1) == (r2.share0 ^ r2.share1) == 1

    def test_cost_accounting_reported(self):
        res = gc_secure_ge_const(1, 2, 0, n_bits=16, seed=b"z")
        assert res.bytes_exchanged > 0
        assert res.n_and_gates > 0
