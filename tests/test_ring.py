"""Ring arithmetic in Z_{2^64}: exactness against Python big integers."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.fixedpoint.ring import (
    ring_add,
    ring_matmul,
    ring_mul,
    ring_neg,
    ring_sub,
    ring_sum,
)
from repro.util.errors import ShapeError

MOD = 2**64

u64 = st.integers(min_value=0, max_value=MOD - 1)


def as_arr(values):
    return np.array(values, dtype=np.uint64)


class TestElementwise:
    @given(u64, u64)
    def test_add_matches_python(self, a, b):
        assert int(ring_add(as_arr([a]), as_arr([b]))[0]) == (a + b) % MOD

    @given(u64, u64)
    def test_sub_matches_python(self, a, b):
        assert int(ring_sub(as_arr([a]), as_arr([b]))[0]) == (a - b) % MOD

    @given(u64, u64)
    def test_mul_matches_python(self, a, b):
        assert int(ring_mul(as_arr([a]), as_arr([b]))[0]) == (a * b) % MOD

    @given(u64)
    def test_neg_is_additive_inverse(self, a):
        arr = as_arr([a])
        assert int(ring_add(arr, ring_neg(arr))[0]) == 0

    @given(st.lists(u64, min_size=1, max_size=20))
    def test_sum_matches_python(self, values):
        assert int(ring_sum(as_arr(values))) == sum(values) % MOD

    def test_add_broadcasts(self):
        a = np.zeros((3, 4), dtype=np.uint64)
        b = np.uint64(7)
        assert (ring_add(a, b) == 7).all()

    def test_rejects_float_input(self):
        with pytest.raises(TypeError):
            ring_add(np.ones(3), as_arr([1, 2, 3]))

    def test_accepts_other_integer_dtypes(self):
        a = np.array([1, 2], dtype=np.int32)
        out = ring_add(a, a)
        assert out.dtype == np.uint64
        assert list(out) == [2, 4]


class TestMatmul:
    def _reference(self, a, b):
        """Python-int matmul mod 2^64 (slow, exact)."""
        m, k = a.shape
        n = b.shape[1]
        out = np.zeros((m, n), dtype=np.uint64)
        for i in range(m):
            for j in range(n):
                acc = 0
                for t in range(k):
                    acc += int(a[i, t]) * int(b[t, j])
                out[i, j] = acc % MOD
        return out

    @settings(max_examples=25, deadline=None)
    @given(
        st.integers(1, 5),
        st.integers(1, 5),
        st.integers(1, 5),
        st.integers(0, 2**32),
    )
    def test_matches_python_reference(self, m, k, n, seed):
        rng = np.random.default_rng(seed)
        a = rng.integers(0, MOD, size=(m, k), dtype=np.uint64)
        b = rng.integers(0, MOD, size=(k, n), dtype=np.uint64)
        assert np.array_equal(ring_matmul(a, b), self._reference(a, b))

    def test_matches_numpy_uint64_matmul(self, rng):
        # NumPy's uint64 matmul wraps mod 2^64 (C unsigned semantics) —
        # slower than our limb path but a valid oracle.
        a = rng.integers(0, MOD, size=(17, 33), dtype=np.uint64)
        b = rng.integers(0, MOD, size=(33, 9), dtype=np.uint64)
        with np.errstate(over="ignore"):
            expected = a @ b
        assert np.array_equal(ring_matmul(a, b), expected)

    def test_extreme_values(self):
        a = np.full((2, 3), MOD - 1, dtype=np.uint64)
        b = np.full((3, 2), MOD - 1, dtype=np.uint64)
        expected = np.full((2, 2), (3 * (MOD - 1) ** 2) % MOD, dtype=np.uint64)
        assert np.array_equal(ring_matmul(a, b), expected)

    def test_identity(self, rng):
        a = rng.integers(0, MOD, size=(6, 6), dtype=np.uint64)
        eye = np.eye(6, dtype=np.uint64)
        assert np.array_equal(ring_matmul(a, eye), a)

    def test_distributes_over_addition(self, rng):
        a = rng.integers(0, MOD, size=(4, 7), dtype=np.uint64)
        b = rng.integers(0, MOD, size=(7, 3), dtype=np.uint64)
        c = rng.integers(0, MOD, size=(7, 3), dtype=np.uint64)
        left = ring_matmul(a, ring_add(b, c))
        right = ring_add(ring_matmul(a, b), ring_matmul(a, c))
        assert np.array_equal(left, right)

    def test_shape_mismatch_raises(self, rng):
        a = rng.integers(0, MOD, size=(4, 7), dtype=np.uint64)
        b = rng.integers(0, MOD, size=(6, 3), dtype=np.uint64)
        with pytest.raises(ShapeError):
            ring_matmul(a, b)

    def test_non_2d_raises(self, rng):
        a = rng.integers(0, MOD, size=(4,), dtype=np.uint64)
        with pytest.raises(ShapeError):
            ring_matmul(a, a)


class TestRingNegOut:
    """In-place negation: ``out=`` parity with the allocating form."""

    @settings(max_examples=50, deadline=None)
    @given(st.lists(u64, min_size=1, max_size=8))
    def test_out_matches_allocating(self, values):
        a = as_arr(values)
        expected = ring_neg(a)
        out = np.empty_like(a)
        result = ring_neg(a, out=out)
        assert result is out
        assert np.array_equal(result, expected)

    @settings(max_examples=50, deadline=None)
    @given(st.lists(u64, min_size=1, max_size=8))
    def test_out_may_alias_input(self, values):
        a = as_arr(values)
        expected = ring_neg(a)
        result = ring_neg(a, out=a)
        assert result is a
        assert np.array_equal(result, expected)
