"""Plain baselines, SecureML mode, and the SMO reference SVM."""

import numpy as np
import pytest

from repro.baselines.plain import (
    PlainCNN,
    PlainLinearRegression,
    PlainLogisticRegression,
    PlainMLP,
    PlainRNN,
    PlainSVM,
    PlainTimer,
    PlainTrainer,
)
from repro.baselines.secureml import make_parsecureml_context, make_secureml_context
from repro.baselines.smo import SMOSVM
from repro.datasets import separable_classification, sequence_dataset
from repro.util.errors import ConfigError


class TestPlainModels:
    def test_linear_regression_learns(self, rng):
        x = rng.normal(size=(256, 8))
        y = x @ rng.normal(size=(8, 2))
        trainer = PlainTrainer(PlainLinearRegression(8, n_out=2), PlainTimer("cpu"), lr=0.1)
        rep = trainer.train(x, y, epochs=10, batch_size=64)
        assert rep.losses[-1] < 0.1 * rep.losses[0]

    def test_mlp_learns(self, rng):
        x = rng.normal(size=(256, 10))
        y = np.tanh(x @ rng.normal(size=(10, 3)) * 0.5)
        trainer = PlainTrainer(PlainMLP(10, hidden=(16,), n_out=3), PlainTimer("cpu"), lr=0.1)
        rep = trainer.train(x, y, epochs=10, batch_size=64)
        assert rep.losses[-1] < 0.8 * rep.losses[0]

    def test_cnn_runs(self, rng):
        x = rng.normal(size=(32, 64))
        y = rng.normal(size=(32, 3))
        model = PlainCNN((8, 8, 1), conv_channels=2, hidden=8, n_out=3, kernel=3)
        rep = PlainTrainer(model, PlainTimer("cpu"), lr=0.05).train(
            x, y, epochs=2, batch_size=32
        )
        assert rep.batches == 2

    def test_svm_separates(self):
        x, y = separable_classification(256, 8, margin=2.0, seed=5)
        model = PlainSVM(8)
        PlainTrainer(model, PlainTimer("cpu"), lr=0.25).train(x, y, epochs=8, batch_size=64)
        scores = x @ model.dense.w + model.dense.b
        assert np.mean(np.sign(scores) == y) > 0.95

    def test_rnn_learns(self):
        x, y = sequence_dataset(128, 3, 6, seed=2)
        model = PlainRNN(3, 6, hidden=8, n_out=10)
        rep = PlainTrainer(model, PlainTimer("cpu"), lr=0.1).train(
            x, y, epochs=6, batch_size=64
        )
        assert rep.losses[-1] < rep.losses[0]

    def test_logistic_bounded(self, rng):
        model = PlainLogisticRegression(4)
        timer = PlainTimer("cpu")
        out = model.forward(rng.normal(size=(16, 4)) * 10, timer, training=False)
        assert out.min() >= 0.0 and out.max() <= 1.0

    def test_unknown_activation(self):
        from repro.baselines.plain import PlainActivation

        with pytest.raises(ConfigError):
            PlainActivation("swish")


class TestPlainTiming:
    def test_gpu_faster_than_cpu_on_large_model(self, rng):
        x = rng.normal(size=(256, 512))
        y = rng.normal(size=(256, 10))
        times = {}
        for device in ("cpu", "gpu"):
            timer = PlainTimer(device)
            PlainTrainer(PlainMLP(512, seed=0), timer, lr=0.1).train(
                x, y, epochs=1, batch_size=128
            )
            times[device] = timer.seconds
        assert times["gpu"] < times["cpu"]

    def test_gpu_charges_pcie(self, rng):
        timer = PlainTimer("gpu")
        PlainTrainer(PlainLinearRegression(64), timer).train(
            rng.normal(size=(128, 64)), rng.normal(size=(128, 1)), batch_size=128
        )
        assert timer.clock.free_at("pcie") > 0

    def test_cpu_no_pcie(self, rng):
        timer = PlainTimer("cpu")
        PlainTrainer(PlainLinearRegression(64), timer).train(
            rng.normal(size=(128, 64)), rng.normal(size=(128, 1)), batch_size=128
        )
        assert timer.clock.free_at("pcie") == 0

    def test_tensor_core_speeds_large_gemm(self, rng):
        x = rng.normal(size=(128, 2048))
        y = rng.normal(size=(128, 10))
        times = {}
        for tc in (False, True):
            timer = PlainTimer("gpu", tensor_core=tc)
            PlainTrainer(PlainMLP(2048, hidden=(1024,), n_out=10, seed=0), timer).train(
                x, y, batch_size=128
            )
            times[tc] = timer.seconds
        assert times[True] < times[False]


class TestSecureMLFactories:
    def test_factories_produce_expected_modes(self):
        sml = make_secureml_context()
        par = make_parsecureml_context()
        assert sml.server_gpu == [None, None]
        assert par.server_gpu[0] is not None

    def test_transcript_equality_across_modes(self, rng):
        """Same seed -> identical trained parameters in both modes: every
        measured difference is systems work, not numerics (the paper's
        implicit claim)."""
        from repro.core.models import SecureMLP
        from repro.core.training import SecureTrainer

        x = rng.normal(size=(128, 8))
        y = rng.normal(size=(128, 2))
        weights = []
        for factory in (make_secureml_context, make_parsecureml_context):
            ctx = factory(seed=77, activation_protocol="dealer")
            model = SecureMLP(ctx, 8, hidden=(6,), n_out=2)
            SecureTrainer(ctx, model, lr=0.125, monitor_loss=False).train(
                x, y, epochs=2, batch_size=64
            )
            weights.append([p.decode() for p in model.parameters()])
        for wa, wb in zip(weights[0], weights[1]):
            np.testing.assert_array_equal(wa, wb)


class TestSMO:
    def test_linear_separable_accuracy(self):
        x, y = separable_classification(200, 10, margin=2.0, seed=1)
        model = SMOSVM(C=1.0).fit(x, y.ravel())
        assert np.mean(model.predict(x) == y.ravel()) == 1.0

    def test_weight_vector_classifies(self):
        x, y = separable_classification(150, 5, margin=2.0, seed=2)
        model = SMOSVM(C=1.0).fit(x, y.ravel())
        w = model.weight_vector
        assert np.mean(np.sign(x @ w + model.b) == y.ravel()) == 1.0

    def test_rbf_solves_nonlinear_problem(self, rng):
        # circle-vs-ring: not linearly separable
        r = np.concatenate([rng.uniform(0, 1, 100), rng.uniform(2, 3, 100)])
        theta = rng.uniform(0, 2 * np.pi, 200)
        x = np.stack([r * np.cos(theta), r * np.sin(theta)], axis=1)
        y = np.where(r < 1.5, 1.0, -1.0)
        model = SMOSVM(C=10.0, kernel="rbf", gamma=1.0, max_passes=3).fit(x, y)
        assert np.mean(model.predict(x) == y) > 0.9

    def test_rbf_has_no_weight_vector(self):
        x, y = separable_classification(50, 3, seed=3)
        model = SMOSVM(kernel="rbf").fit(x, y.ravel())
        with pytest.raises(ConfigError):
            _ = model.weight_vector

    def test_bad_labels_rejected(self, rng):
        model = SMOSVM()
        with pytest.raises(ConfigError):
            model.fit(rng.normal(size=(10, 2)), np.arange(10.0))

    def test_predict_before_fit(self, rng):
        with pytest.raises(ConfigError):
            SMOSVM().decision_function(rng.normal(size=(5, 2)))

    def test_invalid_c(self):
        with pytest.raises(ConfigError):
            SMOSVM(C=0)
