"""Property-based tests for the secure softmax protocol (hypothesis).

Randomised logits across shapes and dynamic ranges, on both protocol
backends, must satisfy the distribution properties the attention
workload relies on:

* every probability lies in [0, 1] up to fixed-point ulp slack;
* every row sums to 1 within the normalisation tolerance (the Newton
  reciprocal converges below one ulp, so the residual is truncation);
* adding a constant to a row's logits does not move the output beyond
  encoding noise (the protocol subtracts the row max exactly, so shift
  invariance is structural, not approximate);
* the max-abs error against the *true* plaintext softmax stays below
  the documented :func:`repro.mpc.softmax.softmax_error_bound` —
  the clamp + Taylor-base squaring + Newton recipe's analytic error
  plus the fixed-point noise budget (DESIGN §7).
"""

from __future__ import annotations

import numpy as np
import pytest

hypothesis = pytest.importorskip("hypothesis")
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra.numpy import arrays

from repro.api import session
from repro.core import ops
from repro.core.tensor import SharedTensor
from repro.mpc.softmax import softmax_error_bound

pytestmark = pytest.mark.property

FRAC_BITS = 13
ULP = 2.0**-FRAC_BITS

BACKENDS = st.sampled_from(["beaver2pc", "rep3"])
SEEDS = st.integers(0, 2**31 - 1)

#: logits across the ranges attention scores actually occupy, plus
#: adversarial spreads far beyond the clamp window
LOGITS = arrays(
    dtype=np.float64,
    shape=st.tuples(st.integers(1, 3), st.integers(1, 6)),
    elements=st.floats(-15.0, 15.0, allow_nan=False, allow_infinity=False),
)


def _true_softmax(x: np.ndarray) -> np.ndarray:
    z = x - x.max(axis=1, keepdims=True)
    e = np.exp(z)
    return e / e.sum(axis=1, keepdims=True)


def _secure_softmax(logits: np.ndarray, *, backend: str, seed: int) -> np.ndarray:
    ctx = session(seed=seed, backend=backend)
    x = SharedTensor.from_plain(ctx, logits)
    return ops.secure_softmax(x, label="prop").decode()


@settings(max_examples=20, deadline=None)
@given(logits=LOGITS, seed=SEEDS, backend=BACKENDS)
def test_outputs_are_probabilities(logits, seed, backend):
    out = _secure_softmax(logits, backend=backend, seed=seed)
    assert np.all(out >= -4 * ULP), f"negative probability: {out.min()}"
    assert np.all(out <= 1.0 + 16 * ULP), f"probability above 1: {out.max()}"


@settings(max_examples=20, deadline=None)
@given(logits=LOGITS, seed=SEEDS, backend=BACKENDS)
def test_rows_sum_to_one(logits, seed, backend):
    out = _secure_softmax(logits, backend=backend, seed=seed)
    d = logits.shape[1]
    tol = (2 * d + 16) * ULP
    np.testing.assert_allclose(out.sum(axis=1), 1.0, atol=tol)


@settings(max_examples=15, deadline=None)
@given(
    logits=LOGITS,
    shift=st.floats(-8.0, 8.0, allow_nan=False, allow_infinity=False),
    seed=SEEDS,
    backend=BACKENDS,
)
def test_invariant_under_constant_shift(logits, shift, seed, backend):
    base = _secure_softmax(logits, backend=backend, seed=seed)
    shifted = _secure_softmax(logits + shift, backend=backend, seed=seed)
    # the row max is subtracted exactly, so only the +shift encoding
    # rounding (<= 1 ulp on z) survives into the clamp/exp pipeline
    np.testing.assert_allclose(shifted, base, atol=64 * ULP)


@settings(max_examples=20, deadline=None)
@given(logits=LOGITS, seed=SEEDS, backend=BACKENDS)
def test_error_within_documented_bound(logits, seed, backend):
    out = _secure_softmax(logits, backend=backend, seed=seed)
    err = np.max(np.abs(out - _true_softmax(logits)))
    bound = softmax_error_bound(logits.shape[1], FRAC_BITS)
    assert err <= bound, f"max-abs error {err:.6f} exceeds bound {bound:.6f}"


def test_bound_is_meaningfully_tight():
    # the documented bound must stay a usable guarantee, not a truism
    for d in (2, 4, 8, 16):
        assert softmax_error_bound(d, FRAC_BITS) < 0.1
