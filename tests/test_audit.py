"""Transcript recorder, replay oracle, and wire-view auditor.

The tentpole correctness claims: (1) a recorded session replays to a
bit-identical transcript; (2) every legitimately recorded link stays
under the chi-square ceiling; (3) a deliberately leaky path — plaintext
serialized onto a link — is flagged by the auditor.
"""

from __future__ import annotations

import numpy as np
import pytest

from conftest import make_ctx
from repro.audit import (
    CHI2_CEILING,
    Transcript,
    TranscriptRecorder,
    audit_transcript,
    canonical_bytes,
    chi2_uniform_bytes,
    payload_digest,
)
from repro.core.inference import secure_predict
from repro.core.models import SecureMLP
from repro.core.training import SecureTrainer
from repro.faults.reliable import ReliableTransport
from repro.util.errors import AuditError, TranscriptMismatch


def _mlp_workload(n=32, d=12, n_out=3, seed=5):
    rng = np.random.default_rng(seed)
    x = 0.5 * rng.standard_normal((n, d))
    y = np.zeros((n, n_out))
    y[np.arange(n), rng.integers(0, n_out, size=n)] = 1.0
    return x, y


def _recorded_training_run(**overrides):
    ctx = make_ctx(activation_protocol="emulated", **overrides)
    recorder = ctx.attach_recorder()
    model = SecureMLP(ctx, 12, hidden=(8,), n_out=3)
    x, y = _mlp_workload()
    SecureTrainer(ctx, model, monitor_loss=False).train(x, y, batch_size=16)
    return ctx, recorder.transcript()


class TestCanonicalBytes:
    def test_array_digest_pins_dtype_and_shape(self, rng):
        a = rng.integers(0, 2**63, size=(4, 4), dtype=np.uint64)
        assert payload_digest(a) == payload_digest(a.copy())
        assert payload_digest(a) != payload_digest(a.reshape(2, 8))
        assert payload_digest(a) != payload_digest(a.astype(np.int64))

    def test_single_bit_flip_changes_digest(self, rng):
        a = rng.integers(0, 2**63, size=16, dtype=np.uint64)
        b = a.copy()
        b[7] ^= np.uint64(1)
        assert payload_digest(a) != payload_digest(b)

    def test_non_array_payloads_hash_deterministically(self):
        assert canonical_bytes({"k": 1}) == canonical_bytes({"k": 1})
        assert canonical_bytes(b"abc").startswith(b"bytes|")


class TestRecorder:
    def test_records_and_counts(self, rng):
        rec = TranscriptRecorder()
        a = rng.integers(0, 2**63, size=64, dtype=np.uint64)
        rec.record("server0", "server1", "E/0", a, nbytes=a.nbytes, clock_s=1.5)
        rec.record("server0", "server1", "ge:rounds", nbytes=100)
        t = rec.transcript()
        assert len(t) == 2
        assert t.records[0].digest and t.records[0].payload is not None
        assert t.records[1].digest == "" and t.records[1].nbytes == 100
        assert t.total_bytes == a.nbytes + 100

    def test_record_needs_payload_or_nbytes(self):
        rec = TranscriptRecorder()
        with pytest.raises(AuditError, match="need payload or nbytes"):
            rec.record("a", "b", "t")

    def test_telemetry_counters(self):
        ctx = make_ctx()
        rec = ctx.attach_recorder()
        rec.record("server0", "server1", "x", np.zeros(4, dtype=np.uint64))
        snap = ctx.telemetry.snapshot()
        assert snap.counter("audit.messages_recorded") == 1
        assert snap.counter("audit.bytes_recorded") == 32

    def test_capture_payloads_off_keeps_digests(self, rng):
        rec = TranscriptRecorder(capture_payloads=False)
        a = rng.integers(0, 2**63, size=64, dtype=np.uint64)
        rec.record("server0", "server1", "E/0", a, nbytes=a.nbytes)
        r = rec.transcript().records[0]
        assert r.payload is None and r.digest


class TestTranscriptJson:
    def test_roundtrip_preserves_identity(self, tmp_path):
        _ctx, t = _recorded_training_run()
        path = tmp_path / "session.json"
        t.dump(path)
        loaded = Transcript.load(path)
        # identity fields survive the JSON roundtrip exactly (clock
        # floats included — json round-trips float64 via repr)
        t.assert_identical(loaded)
        assert loaded.meta == t.meta
        assert loaded.total_bytes == t.total_bytes

    def test_rejects_unknown_version(self):
        with pytest.raises(AuditError, match="version"):
            Transcript.from_json({"version": 99, "records": []})


class TestReplayOracle:
    def test_training_replay_is_bit_identical(self):
        _ctx1, first = _recorded_training_run()
        _ctx2, second = _recorded_training_run()
        first.assert_identical(second)
        assert len(first) > 20  # a real session, not an empty pass

    def test_divergent_config_is_caught(self):
        # frac_bits changes every encoded byte -> first masked exchange
        # (or upload) must diverge
        _c1, first = _recorded_training_run()
        _c2, other = _recorded_training_run(frac_bits=14)
        with pytest.raises(TranscriptMismatch, match="diverge"):
            first.assert_identical(other)

    def test_length_divergence_reported(self):
        _c, t = _recorded_training_run()
        truncated = Transcript(t.records[:-1], meta=t.meta)
        div = t.diff(truncated)
        assert div.field == "length"
        with pytest.raises(TranscriptMismatch):
            t.assert_identical(truncated)

    def test_single_message_divergence_localized(self, rng):
        rec1, rec2 = TranscriptRecorder(), TranscriptRecorder()
        a = rng.integers(0, 2**63, size=8, dtype=np.uint64)
        b = a.copy()
        b[0] ^= np.uint64(1)
        for r in (rec1, rec2):
            r.record("s0", "s1", "same", a, nbytes=64, clock_s=0.0)
        rec1.record("s0", "s1", "x", a, nbytes=64, clock_s=1.0)
        rec2.record("s0", "s1", "x", b, nbytes=64, clock_s=1.0)
        div = rec1.transcript().diff(rec2.transcript())
        assert div.index == 1 and div.field == "digest"


class TestWireAudit:
    def test_training_session_all_links_clean(self):
        ctx, t = _recorded_training_run()
        report = audit_transcript(t, telemetry=ctx.telemetry)
        # every inter-party direction was seen and judged
        assert {(a.src, a.dst) for a in report.audits} >= {
            ("server0", "server1"), ("server1", "server0"),
            ("client", "server0"), ("client", "server1"),
        }
        assert report.passed, report.summary()
        assert report.max_chi2 <= CHI2_CEILING
        snap = ctx.telemetry.snapshot()
        assert snap.counter("audit.links_audited") >= 4
        assert snap.counter("audit.links_failed") == 0

    def test_party_filter_restricts_to_one_view(self):
        _ctx, t = _recorded_training_run()
        report = audit_transcript(t, party="server0")
        assert report.audits and all(a.dst == "server0" for a in report.audits)

    def test_leaky_debug_path_is_caught(self):
        """A test-only debug path that serializes plaintext onto a link
        must trip the auditor on exactly that link."""
        ctx, _t = _recorded_training_run()
        rec = ctx.recorder
        # the "debug path": ship the (structured) plaintext activations
        leak = np.linspace(0.0, 1.0, 1024)  # float64: wildly non-uniform bytes
        rec.record("server1", "server0", "debug/activations", leak,
                   nbytes=leak.nbytes, clock_s=0.0)
        report = audit_transcript(rec.transcript())
        assert not report.passed
        assert [a.link for a in report.failures] == ["server1->server0"]
        with pytest.raises(AuditError, match="wire audit failed"):
            report.assert_clean()

    def test_small_links_skip_not_judged(self, rng):
        rec = TranscriptRecorder()
        rec.record("a", "b", "tiny", rng.integers(0, 2**63, 4, dtype=np.uint64))
        report = audit_transcript(rec.transcript())
        (audit,) = report.audits
        assert audit.skipped and audit.passed and audit.chi2 is None

    def test_duplicate_messages_counted_once(self, rng):
        # a static operand re-sends the same masked bytes every batch;
        # the repeat must not inflate the statistic
        rec = TranscriptRecorder()
        a = rng.integers(0, 2**64, size=512, dtype=np.uint64)
        for _ in range(12):
            rec.record("s0", "s1", "F/0", a, nbytes=a.nbytes)
        report = audit_transcript(rec.transcript())
        (audit,) = report.audits
        assert audit.content_bytes == a.nbytes  # deduped
        assert audit.messages == 12
        assert audit.passed

    def test_chi2_helper_matches_security_suite_semantics(self, rng):
        uniform = rng.integers(0, 2**64, size=4096, dtype=np.uint64)
        assert chi2_uniform_bytes(uniform) < CHI2_CEILING
        assert chi2_uniform_bytes(uniform.tobytes()) == pytest.approx(
            chi2_uniform_bytes(uniform)
        )
        structured = np.zeros(4096, dtype=np.uint64)
        assert chi2_uniform_bytes(structured) > CHI2_CEILING
        with pytest.raises(AuditError):
            chi2_uniform_bytes(b"")


class TestHubTap:
    def test_reliable_transport_frames_recorded(self, rng):
        transport = ReliableTransport(["client", "server0", "server1"])
        rec = TranscriptRecorder()
        transport.attach_recorder(rec)
        v0 = transport.as_role("server0")
        v1 = transport.as_role("server1")
        payload = rng.integers(0, 2**63, size=32, dtype=np.uint64)
        v0.send("server1", "shares", payload)
        got = v1.recv("server0", "shares")
        assert np.array_equal(got, payload)
        t = rec.transcript()
        assert len(t) == 1
        assert t.records[0].src == "server0"
        assert t.records[0].tag.startswith("frame/")

    def test_tap_sees_retransmissions(self, rng):
        from repro.faults.plan import FaultPlan

        transport = ReliableTransport(
            ["client", "server0", "server1"], plan=FaultPlan(seed=3, drop=0.5)
        )
        rec = TranscriptRecorder()
        transport.attach_recorder(rec)
        v0 = transport.as_role("server0")
        v1 = transport.as_role("server1")
        for i in range(8):
            v0.send("server1", "m", rng.integers(0, 2**63, 8, dtype=np.uint64))
        for i in range(8):
            v1.recv("server0", "m")
        # the wire saw more frames than the 8 logical messages
        # (retransmissions and retransmit-requests are frames too)
        assert len(rec.transcript()) > 8

    def test_tap_detach(self):
        from repro.comm.transport import TransportHub

        hub = TransportHub(["a", "b"])
        rec = TranscriptRecorder()
        tap = rec.tap_hub(hub)
        hub.send("a", "b", "t", b"\x00" * 8)
        hub.remove_tap(tap)
        hub.send("a", "b", "t", b"\x00" * 8)
        assert len(rec.transcript()) == 1


class TestContextRecording:
    def test_recorder_off_by_default_and_harmless(self):
        ctx = make_ctx(activation_protocol="emulated")
        assert ctx.recorder is None
        model = SecureMLP(ctx, 12, hidden=(8,), n_out=3)
        x, _y = _mlp_workload()
        report = secure_predict(ctx, model, x, batch_size=16)
        assert report.predictions.shape == (32, 3)

    def test_recording_does_not_change_numerics(self):
        x, _y = _mlp_workload()
        preds = []
        for attach in (False, True):
            ctx = make_ctx(activation_protocol="emulated")
            if attach:
                ctx.attach_recorder()
            model = SecureMLP(ctx, 12, hidden=(8,), n_out=3)
            preds.append(secure_predict(ctx, model, x, batch_size=16).predictions)
        np.testing.assert_array_equal(preds[0], preds[1])

    def test_exchange_records_masked_matrix_not_csr(self):
        # the audited content must be the reconstructed masked matrix:
        # its byte size can exceed the (compressed) wire bytes
        ctx, t = _recorded_training_run()
        exchanges = [
            r for r in t.records_for(src="server0", dst="server1")
            if "/E/" in r.tag or "/F/" in r.tag
        ]
        assert exchanges
        assert any(len(r.payload) > r.nbytes for r in exchanges), (
            "expected at least one delta-compressed exchange "
            "(payload = full matrix, nbytes = wire bytes)"
        )

    def test_comparison_rounds_recorded_size_only(self):
        ctx, t = _recorded_training_run()
        rounds = [r for r in t.records if r.tag.endswith(":rounds")]
        assert rounds
        assert all(r.payload is None and r.nbytes > 0 for r in rounds)
