"""The SecureML local-truncation protocol."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.fixedpoint.encoding import FixedPointEncoder
from repro.fixedpoint.truncation import truncate_public, truncate_share
from repro.mpc.shares import reconstruct, share_secret
from repro.util.errors import ProtocolError

MOD = 2**64


class TestTruncatePublic:
    @given(st.integers(-(2**40), 2**40), st.integers(1, 20))
    def test_matches_arithmetic_shift(self, value, d):
        embedded = np.uint64(value % MOD)
        out = truncate_public(np.array([embedded]), d)
        assert int(out[0].view(np.int64)) == value >> d

    def test_preserves_sign(self):
        neg = np.array([np.uint64(-8192 % MOD)])
        out = truncate_public(neg, 13)
        assert int(out[0].view(np.int64)) == -1


class TestTruncateShare:
    @settings(max_examples=200, deadline=None)
    @given(
        st.floats(min_value=-100.0, max_value=100.0, allow_nan=False),
        st.integers(0, 2**32),
    )
    def test_shared_truncation_within_one_ulp(self, value, seed):
        """Core SecureML claim: local truncation errs by <= 1 ulp w.h.p."""
        enc = FixedPointEncoder(13)
        rng = np.random.default_rng(seed)
        # a double-scale encoding, as produced by a share product
        double = np.uint64((int(enc.encode(np.float64(value))) * enc.scale) % MOD)
        pair = share_secret(np.array([double]), rng)
        t0 = truncate_share(pair.share0, 13, 0)
        t1 = truncate_share(pair.share1, 13, 1)
        decoded = float(enc.decode(reconstruct(t0, t1))[0])
        assert abs(decoded - value) <= 2 * enc.resolution

    def test_matrix_truncation(self, rng, encoder):
        a = rng.normal(size=(20, 20))
        double = (encoder.encode(a).view(np.int64) * encoder.scale).view(np.uint64)
        pair = share_secret(double, rng)
        decoded = encoder.decode(
            reconstruct(
                truncate_share(pair.share0, 13, 0), truncate_share(pair.share1, 13, 1)
            )
        )
        np.testing.assert_allclose(decoded, a, atol=3 * encoder.resolution)

    def test_bad_party_id_raises(self):
        with pytest.raises(ProtocolError):
            truncate_share(np.zeros(3, dtype=np.uint64), 13, 2)

    def test_party_roles_differ(self, rng):
        share = rng.integers(0, MOD, size=(5,), dtype=np.uint64)
        t0 = truncate_share(share, 13, 0)
        t1 = truncate_share(share, 13, 1)
        assert not np.array_equal(t0, t1)


class TestTruncateShareOut:
    """``out=`` parity of the share-local rescale, both party roles."""

    @settings(max_examples=50, deadline=None)
    @given(st.integers(0, 2**32), st.sampled_from([0, 1]))
    def test_out_matches_allocating(self, seed, party):
        rng = np.random.default_rng(seed)
        share = rng.integers(0, MOD, size=(3, 4), dtype=np.uint64)
        expected = truncate_share(share, 13, party)
        out = np.empty_like(share)
        result = truncate_share(share, 13, party, out=out)
        assert result is out
        assert np.array_equal(result, expected)

    @settings(max_examples=50, deadline=None)
    @given(st.integers(0, 2**32), st.sampled_from([0, 1]))
    def test_out_may_alias_input(self, seed, party):
        rng = np.random.default_rng(seed)
        share = rng.integers(0, MOD, size=(3, 4), dtype=np.uint64)
        expected = truncate_share(share, 13, party)
        result = truncate_share(share, 13, party, out=share)
        assert result is share
        assert np.array_equal(result, expected)
