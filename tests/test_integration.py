"""End-to-end integration: cross-config invariants and system behaviour."""

import numpy as np
import pytest

from conftest import make_ctx
from repro.core.models import SecureLogisticRegression, SecureMLP
from repro.core.training import SecureTrainer
from repro.core.inference import secure_predict
from repro.baselines.plain import PlainMLP, PlainTimer, PlainTrainer


class TestNumericInvariance:
    """Every systems optimisation must leave the protocol transcript's
    *values* untouched; only simulated time and traffic may change."""

    @pytest.mark.parametrize(
        "override",
        [
            {"pipeline1": False},
            {"double_pipeline": False},
            {"compression": False},
            {"tensor_core": False},
            {"cpu_parallel": False},
            {"placement_mode": "cpu_always"},
            {"placement_mode": "gpu_always"},
            {"use_gpu": False, "placement_mode": "cpu_always"},
        ],
    )
    def test_trained_weights_invariant(self, rng, override):
        x = rng.normal(size=(96, 6))
        y = rng.normal(size=(96, 2))

        def train(**cfg):
            ctx = make_ctx(seed=31, activation_protocol="dealer", **cfg)
            model = SecureMLP(ctx, 6, hidden=(5,), n_out=2)
            SecureTrainer(ctx, model, lr=0.125, monitor_loss=False).train(
                x, y, epochs=2, batch_size=32
            )
            return [p.decode() for p in model.parameters()]

        base = train()
        variant = train(**override)
        for a, b in zip(base, variant):
            np.testing.assert_array_equal(a, b)


class TestSecureMatchesPlainLearning:
    def test_same_weights_after_training_when_inits_match(self, rng):
        """Secure training follows the plain-float trajectory up to
        fixed-point rounding."""
        x = rng.normal(size=(128, 8)) * 0.5
        y = np.tanh(x @ (rng.normal(size=(8, 2)) * 0.5))

        ctx = make_ctx(seed=7, activation_protocol="dealer")
        secure = SecureMLP(ctx, 8, hidden=(6,), n_out=2)
        plain = PlainMLP(8, hidden=(6,), n_out=2, seed=0)
        # copy the secure model's decoded init into the plain model
        dense_s = [l for l in secure.layers if hasattr(l, "weight")]
        dense_p = [l for l in plain.layers if hasattr(l, "w")]
        for ls, lp in zip(dense_s, dense_p):
            lp.w = ls.weight.decode().copy()
            lp.b = ls.bias.decode().copy()

        SecureTrainer(ctx, secure, lr=0.125, monitor_loss=False).train(
            x, y, epochs=3, batch_size=64
        )
        PlainTrainer(plain, PlainTimer("cpu"), lr=0.125).train(x, y, epochs=3, batch_size=64)

        for ls, lp in zip(dense_s, dense_p):
            np.testing.assert_allclose(ls.weight.decode(), lp.w, atol=0.02)


class TestTimingBehaviour:
    def test_pipeline1_reduces_online_time(self, rng):
        x = rng.normal(size=(128, 256))
        y = rng.normal(size=(128, 10))
        times = {}
        for p1 in (False, True):
            ctx = make_ctx(seed=3, pipeline1=p1, placement_mode="gpu_always",
                           activation_protocol="emulated")
            model = SecureMLP(ctx, 256, hidden=(128,), n_out=10)
            rep = SecureTrainer(ctx, model, monitor_loss=False).train(
                x, y, epochs=1, batch_size=128
            )
            times[p1] = rep.online_s
        assert times[True] < times[False]

    def test_double_pipeline_reduces_online_time(self, rng):
        x = rng.normal(size=(128, 256))
        y = rng.normal(size=(128, 10))
        times = {}
        for dp in (False, True):
            ctx = make_ctx(seed=3, double_pipeline=dp, activation_protocol="emulated")
            model = SecureMLP(ctx, 256, hidden=(128, 64), n_out=10)
            rep = SecureTrainer(ctx, model, monitor_loss=False).train(
                x, y, epochs=1, batch_size=128
            )
            times[dp] = rep.online_s
        assert times[True] <= times[False]

    def test_secureml_slower_than_parsecureml(self, rng):
        x = rng.normal(size=(128, 512))
        y = rng.normal(size=(128, 10))
        times = {}
        for name, factory_kw in (
            ("sml", dict(use_gpu=False, placement_mode="cpu_always", pipeline1=False,
                         double_pipeline=False, compression=False, cpu_parallel=False)),
            ("par", {}),
        ):
            ctx = make_ctx(seed=3, activation_protocol="emulated", **factory_kw)
            model = SecureMLP(ctx, 512, n_out=10)
            rep = SecureTrainer(ctx, model, monitor_loss=False).train(
                x, y, epochs=1, batch_size=128
            )
            times[name] = rep.online_s
        assert times["sml"] > 3 * times["par"]

    def test_compression_reduces_wire_bytes_with_stable_weights(self, rng):
        """With lr=0 the F-stream (weights) never changes, so every
        repeat transmission is a zero delta -> large savings."""
        # weight-heavy shapes (W streams >= activation streams) so the
        # compressible F-deltas dominate the traffic
        x = rng.normal(size=(128, 64))
        y = rng.normal(size=(128, 64))
        ctx = make_ctx(seed=5, activation_protocol="emulated")
        model = SecureMLP(ctx, 64, hidden=(64,), n_out=64)
        rep = SecureTrainer(ctx, model, lr=0.0, monitor_loss=False).train(
            x, y, epochs=3, batch_size=32
        )
        assert rep.compression_savings > 0.2

    def test_inference_report_consistency(self, rng):
        ctx = make_ctx(seed=9, activation_protocol="emulated")
        model = SecureMLP(ctx, 16, hidden=(8,), n_out=2)
        rep = secure_predict(ctx, model, rng.normal(size=(96, 16)), batch_size=32)
        assert rep.batches == 3
        assert rep.total_s == pytest.approx(rep.offline_s + rep.online_s)
