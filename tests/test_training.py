"""SecureTrainer / inference drivers and their reports."""

import numpy as np
import pytest

from conftest import make_ctx
from repro.core.inference import secure_predict
from repro.core.models import SecureLinearRegression, SecureMLP
from repro.core.training import SecureTrainer, TrainReport
from repro.util.errors import ConfigError


def small_problem(rng, n=128, d=6, out=2):
    x = rng.normal(size=(n, d)) * 0.5
    y = x @ (rng.normal(size=(d, out)) * 0.4)
    return x, y


class TestTrainer:
    def test_report_fields_populated(self, ctx, rng):
        x, y = small_problem(rng)
        model = SecureLinearRegression(ctx, 6, n_out=2)
        rep = SecureTrainer(ctx, model, lr=0.1).train(x, y, epochs=2, batch_size=64)
        assert rep.batches == 4
        assert rep.samples == 256
        assert rep.dataset_samples == 128
        assert rep.offline_s > 0
        assert rep.online_s > 0
        assert rep.server_bytes > 0
        assert len(rep.batch_online_s) == 4
        assert len(rep.losses) == 4

    def test_offline_split_into_sharing_and_setup(self, ctx, rng):
        x, y = small_problem(rng)
        model = SecureLinearRegression(ctx, 6, n_out=2)
        rep = SecureTrainer(ctx, model, lr=0.1).train(x, y, epochs=1, batch_size=64)
        assert rep.sharing_offline_s > 0
        assert rep.setup_offline_s > 0  # triplet streams generated lazily
        assert rep.offline_s == pytest.approx(rep.sharing_offline_s + rep.setup_offline_s)

    def test_occupancy_definition(self):
        rep = TrainReport(offline_s=1.0, online_s=3.0)
        assert rep.occupancy == 0.75
        assert rep.total_s == 4.0

    def test_extrapolation_math(self):
        rep = TrainReport(
            dataset_samples=100,
            sharing_offline_s=2.0,
            setup_offline_s=1.0,
            batch_online_s=[0.9, 0.5, 0.5],
        )
        off, on = rep.extrapolate(paper_samples=1000, paper_batches=50)
        assert off == pytest.approx(2.0 * 10 + 1.0)
        assert on == pytest.approx(0.5 * 50)  # first batch excluded

    def test_max_batches_bounds_work(self, ctx, rng):
        x, y = small_problem(rng, n=512)
        model = SecureLinearRegression(ctx, 6, n_out=2)
        rep = SecureTrainer(ctx, model, lr=0.1).train(
            x, y, epochs=10, batch_size=64, max_batches=3
        )
        assert rep.batches == 3

    def test_input_validation(self, ctx, rng):
        model = SecureLinearRegression(ctx, 6, n_out=2)
        trainer = SecureTrainer(ctx, model)
        with pytest.raises(ConfigError):
            trainer.train(rng.normal(size=(10, 6)), rng.normal(size=(12, 2)))
        with pytest.raises(ConfigError):
            trainer.train(rng.normal(size=(10, 6)), rng.normal(size=(10, 2)), batch_size=64)

    def test_monitor_loss_can_be_disabled(self, ctx, rng):
        x, y = small_problem(rng)
        model = SecureLinearRegression(ctx, 6, n_out=2)
        rep = SecureTrainer(ctx, model, monitor_loss=False).train(
            x, y, epochs=1, batch_size=64
        )
        assert rep.losses == []


class TestInference:
    def test_predictions_match_direct_forward(self, ctx, rng):
        x, _ = small_problem(rng)
        model = SecureMLP(ctx, 6, hidden=(8,), n_out=2)
        rep = secure_predict(ctx, model, x, batch_size=64)
        assert rep.predictions.shape == (128, 2)
        assert rep.batches == 2
        # second run gives the same numbers (deterministic protocol given state)
        assert rep.online_s > 0

    def test_extrapolation(self, ctx, rng):
        x, _ = small_problem(rng)
        model = SecureLinearRegression(ctx, 6, n_out=2)
        rep = secure_predict(ctx, model, x, batch_size=64)
        off, on = rep.extrapolate(paper_samples=1280, paper_batches=20)
        assert off >= rep.sharing_offline_s  # scaled up
        assert on == pytest.approx(rep.marginal_online_s * 20)

    def test_rejects_bad_input(self, ctx):
        model = SecureLinearRegression(ctx, 6, n_out=2)
        with pytest.raises(ConfigError):
            secure_predict(ctx, model, np.zeros((4, 3, 2)))

    def test_inference_cheaper_than_training(self, rng):
        """Forward-only must cost less online time than forward+backward."""
        x, y = small_problem(rng, n=128)
        ctx_t = make_ctx(seed=1)
        model_t = SecureLinearRegression(ctx_t, 6, n_out=2)
        train_rep = SecureTrainer(ctx_t, model_t, monitor_loss=False).train(
            x, y, epochs=1, batch_size=64
        )
        ctx_i = make_ctx(seed=1)
        model_i = SecureLinearRegression(ctx_i, 6, n_out=2)
        infer_rep = secure_predict(ctx_i, model_i, x, batch_size=64)
        assert infer_rep.marginal_online_s < train_rep.marginal_online_s
