"""Shared fixtures for the test suite."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.config import FrameworkConfig
from repro.core.context import SecureContext
from repro.fixedpoint.encoding import FixedPointEncoder


@pytest.fixture
def rng():
    return np.random.default_rng(12345)


@pytest.fixture
def encoder():
    return FixedPointEncoder(13)


@pytest.fixture
def ctx():
    """A full ParSecureML context with the exact (dealer) activation path."""
    return SecureContext(FrameworkConfig.parsecureml(activation_protocol="dealer"))


@pytest.fixture
def ctx_secureml():
    """A SecureML-mode (CPU-only baseline) context."""
    return SecureContext(FrameworkConfig.secureml(activation_protocol="dealer"))


def make_ctx(**overrides) -> SecureContext:
    """Helper for tests needing custom configs."""
    return SecureContext(FrameworkConfig.parsecureml(**overrides))
