"""The message-driven actor runtime vs the lockstep reference."""

import numpy as np
import pytest

from repro.comm.mpi_backend import LoopbackTransport
from repro.runtime import (
    ClientActor,
    ServerActor,
    run_dense_forward,
    run_matmul,
    run_matmuls_interleaved,
)
from repro.util.errors import ProtocolError


@pytest.fixture
def trio():
    hub = LoopbackTransport()
    client = ClientActor(hub.as_role("client"), seed=7)
    servers = (
        ServerActor(0, hub.as_role("server0")),
        ServerActor(1, hub.as_role("server1")),
    )
    return client, servers


class TestActorMatmul:
    def test_matches_plain(self, trio, rng):
        client, servers = trio
        a = rng.normal(size=(6, 9))
        b = rng.normal(size=(9, 4))
        out = run_matmul(client, servers, a, b)
        np.testing.assert_allclose(out, a @ b, atol=9 * 2**-12 + 2**-10)

    def test_matches_lockstep_framework_bitwise(self, rng):
        """The actors and the lockstep framework run the same protocol;
        with identical share/triplet randomness the output shares are
        bit-identical — certifying the simulation transcripts."""
        from repro.fixedpoint.encoding import FixedPointEncoder
        from repro.fixedpoint.truncation import truncate_share
        from repro.mpc.protocol import secure_matmul_plain
        from repro.mpc.shares import reconstruct, share_secret
        from repro.mpc.triplets import TripletDealer

        a = rng.normal(size=(4, 5))
        b = rng.normal(size=(5, 3))

        # actor run
        hub = LoopbackTransport()
        client = ClientActor(hub.as_role("client"), seed=21)
        servers = (ServerActor(0, hub.as_role("server0")), ServerActor(1, hub.as_role("server1")))
        actor_out = run_matmul(client, servers, a, b)

        # lockstep run with the same derived randomness
        enc = FixedPointEncoder(13)
        rng2 = np.random.default_rng(21)
        ap = share_secret(enc.encode(a), rng2)
        bp = share_secret(enc.encode(b), rng2)
        trip = TripletDealer(np.random.default_rng(22)).matrix_triplet((4, 5), (5, 3))
        c0, c1 = secure_matmul_plain(ap, bp, trip)
        ref = enc.decode(
            reconstruct(truncate_share(c0, 13, 0), truncate_share(c1, 13, 1))
        )
        np.testing.assert_array_equal(actor_out, ref)

    def test_multiple_concurrent_labels(self, trio, rng):
        client, servers = trio
        a1, b1 = rng.normal(size=(3, 3)), rng.normal(size=(3, 3))
        a2, b2 = rng.normal(size=(2, 4)), rng.normal(size=(4, 2))
        # interleave two operations on distinct labels
        client.dispatch_matmul("op1", a1, b1)
        client.dispatch_matmul("op2", a2, b2)
        for s in servers:
            s.receive_material("op2")
            s.receive_material("op1")
        for s in servers:
            s.send_masked("op1")
        for s in servers:
            s.finish_matmul("op1")
        for s in servers:
            s.send_masked("op2")
        for s in servers:
            s.finish_matmul("op2")
        np.testing.assert_allclose(client.collect("op1"), a1 @ b1, atol=1e-2)
        np.testing.assert_allclose(client.collect("op2"), a2 @ b2, atol=1e-2)


class TestActorDiscipline:
    def test_finish_before_material(self, trio):
        _, servers = trio
        with pytest.raises(ProtocolError):
            servers[0].finish_matmul("nope")

    def test_masked_state_label_check(self, trio, rng):
        client, servers = trio
        client.dispatch_matmul("a", rng.normal(size=(2, 2)), rng.normal(size=(2, 2)))
        client.dispatch_matmul("b", rng.normal(size=(2, 2)), rng.normal(size=(2, 2)))
        for s in servers:
            s.receive_material("a")
            s.receive_material("b")
        servers[0].send_masked("a")
        with pytest.raises(ProtocolError):
            servers[0].finish_matmul("b")

    def test_bad_party_id(self):
        hub = LoopbackTransport()
        with pytest.raises(ProtocolError):
            ServerActor(2, hub.as_role("server0"))


class TestDenseForward:
    def test_two_layer_forward(self, trio, rng):
        client, servers = trio
        x = rng.normal(size=(5, 6)) * 0.5
        w1 = rng.normal(size=(6, 4)) * 0.5
        w2 = rng.normal(size=(4, 2)) * 0.5
        out = run_dense_forward(client, servers, x, [w1, w2])
        np.testing.assert_allclose(out, x @ w1 @ w2, atol=2e-2)

    def test_single_layer(self, trio, rng):
        client, servers = trio
        x = rng.normal(size=(3, 3))
        w = rng.normal(size=(3, 3))
        out = run_dense_forward(client, servers, x, [w])
        np.testing.assert_allclose(out, x @ w, atol=1e-2)


class TestInterleavedMaskedState:
    """Regression: ``ServerActor._pending_masked`` used to be a single
    slot, so staging a second masked exchange before either
    ``finish_matmul`` aborted (or would have clobbered the first
    in-flight pair).  The state is now keyed by label."""

    def test_two_masked_in_flight_before_either_finish(self, trio, rng):
        client, servers = trio
        a1, b1 = rng.normal(size=(2, 3)), rng.normal(size=(3, 2))
        a2, b2 = rng.normal(size=(3, 2)), rng.normal(size=(2, 4))
        client.dispatch_matmul("a", a1, b1)
        client.dispatch_matmul("b", a2, b2)
        for s in servers:
            s.receive_material("a")
            s.receive_material("b")
        for s in servers:
            s.send_masked("a")
            s.send_masked("b")  # pre-fix: blew up on the occupied slot
        for s in servers:
            s.finish_matmul("a")
            s.finish_matmul("b")
        np.testing.assert_allclose(client.collect("a"), a1 @ b1, atol=1e-2)
        np.testing.assert_allclose(client.collect("b"), a2 @ b2, atol=1e-2)
        for actor in (client, *servers):
            actor.assert_idle()

    def test_duplicate_send_masked_rejected(self, trio, rng):
        client, servers = trio
        client.dispatch_matmul("a", rng.normal(size=(2, 2)), rng.normal(size=(2, 2)))
        for s in servers:
            s.receive_material("a")
        servers[0].send_masked("a")
        with pytest.raises(ProtocolError):
            servers[0].send_masked("a")

    def test_label_free_for_reuse_after_finish(self, trio, rng):
        client, servers = trio
        for _round in range(2):
            a, b = rng.normal(size=(2, 2)), rng.normal(size=(2, 2))
            out = run_matmul(client, servers, a, b, label="reused")
            np.testing.assert_allclose(out, a @ b, atol=1e-2)

    def test_interleaved_driver_matches_plain(self, trio, rng):
        client, servers = trio
        ops = [
            (f"op{i}", rng.normal(size=(3, 4)), rng.normal(size=(4, 2)))
            for i in range(3)
        ]
        results = run_matmuls_interleaved(client, servers, ops)
        for label, a, b in ops:
            np.testing.assert_allclose(results[label], a @ b, atol=1e-2)

    def test_interleaved_driver_rejects_duplicate_labels(self, trio, rng):
        client, servers = trio
        a, b = rng.normal(size=(2, 2)), rng.normal(size=(2, 2))
        with pytest.raises(ProtocolError):
            run_matmuls_interleaved(client, servers, [("x", a, b), ("x", a, b)])


class TestRecvAccounting:
    """Regression: ``run_dense_forward`` read intermediate-layer results
    with a raw ``view.recv``, bypassing sender validation and the
    ``runtime.messages{direction=received}`` accounting."""

    def test_dense_forward_counts_every_result_share(self, rng):
        from repro.telemetry import Telemetry

        telemetry = Telemetry()
        hub = LoopbackTransport()
        client = ClientActor(hub.as_role("client"), seed=7, telemetry=telemetry)
        servers = (
            ServerActor(0, hub.as_role("server0"), telemetry=telemetry),
            ServerActor(1, hub.as_role("server1"), telemetry=telemetry),
        )
        w = [rng.normal(size=(4, 4)), rng.normal(size=(4, 3)), rng.normal(size=(3, 2))]
        out = run_dense_forward(client, servers, rng.normal(size=(5, 4)), w)
        assert out.shape == (5, 2)
        received = telemetry.snapshot().counter(
            "runtime.messages", actor="client", direction="received"
        )
        # two ResultShares per layer; pre-fix the intermediate layers
        # bypassed the counter and only the last layer showed up
        assert received == 2 * len(w)
