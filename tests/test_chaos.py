"""Chaos suite: faults move time and counters, never numerics.

Every test here carries the ``chaos`` marker; CI runs the suite under a
set of fixed seeds via ``REPRO_CHAOS_SEEDS`` (comma- or
space-separated), defaulting to seed 0 for a plain local run.
"""

import os

import numpy as np
import pytest

from repro.core.config import FrameworkConfig
from repro.core.context import SecureContext
from repro.core.inference import secure_predict
from repro.core.models import SecureMLP
from repro.faults import FaultPlan, PartyCrash, PartyFailure
from repro.faults.chaos import (
    default_chaos_matrix,
    train_mlp_under_plan,
    unrecoverable_plan,
)

pytestmark = pytest.mark.chaos


def _seeds() -> list[int]:
    raw = os.environ.get("REPRO_CHAOS_SEEDS", "0")
    return [int(tok) for tok in raw.replace(",", " ").split()]


SEEDS = _seeds()
PLAN_NAMES = [name for name, _ in default_chaos_matrix(0)]


@pytest.fixture(scope="module")
def baseline():
    """The fault-free run every chaos run must reproduce bit-for-bit."""
    return train_mlp_under_plan(None)


class TestChaosEquivalence:
    @pytest.mark.parametrize("seed", SEEDS)
    @pytest.mark.parametrize("name", PLAN_NAMES)
    def test_recoverable_plan_is_bit_identical(self, name, seed, baseline):
        plan = dict(default_chaos_matrix(seed))[name]
        result = train_mlp_under_plan(plan)
        assert result.weights_equal(baseline), f"{name}/seed={seed} diverged"
        assert result.losses == baseline.losses
        activity = result.fault_activity()
        assert activity.get("faults.injected", 0) > 0, (
            f"plan {name}/seed={seed} never fired; rates too low for this traffic"
        )

    @pytest.mark.parametrize("seed", SEEDS)
    def test_recovery_shows_up_in_makespan_not_weights(self, seed, baseline):
        plan = dict(default_chaos_matrix(seed))["drop"]
        result = train_mlp_under_plan(plan)
        # retransmissions and backoff waits are charged on the clock
        assert result.report.online_s > baseline.report.online_s
        activity = result.fault_activity()
        assert activity.get("faults.retransmits", 0) > 0
        assert activity.get("faults.retransmit_bytes", 0) > 0

    @pytest.mark.parametrize("seed", SEEDS)
    def test_crash_recovery_replays_from_checkpoint(self, seed, baseline):
        plan = dict(default_chaos_matrix(seed))["crash-restart"]
        result = train_mlp_under_plan(plan)
        assert result.weights_equal(baseline)
        assert result.report.party_restarts == 1
        assert result.report.batches_replayed >= 1
        assert result.report.checkpoints_written >= 1
        activity = result.fault_activity()
        assert activity.get("faults.party_restarts", 0) >= 1
        assert activity.get("faults.batches_replayed", 0) >= 1

    def test_same_plan_reproduces_itself(self):
        plan = dict(default_chaos_matrix(11))["mixed"]
        first = train_mlp_under_plan(plan)
        second = train_mlp_under_plan(plan)
        assert first.weights_equal(second)
        assert first.fault_activity() == second.fault_activity()


class TestUnrecoverable:
    def test_total_loss_names_the_faulty_party(self):
        with pytest.raises(PartyFailure) as exc:
            train_mlp_under_plan(
                unrecoverable_plan(), max_restarts=0, checkpoint_every=None
            )
        assert exc.value.party in ("server0", "server1")
        assert exc.value.blame.reason == "retry-exhausted"
        assert exc.value.party in str(exc.value)

    def test_unrestartable_crash_names_the_crashed_party(self):
        plan = FaultPlan(crashes=(PartyCrash("server1", at_step=1),))
        with pytest.raises(PartyFailure) as exc:
            train_mlp_under_plan(plan, max_restarts=0, checkpoint_every=None)
        assert exc.value.party == "server1"
        assert exc.value.blame.reason == "crash"


class TestInferenceRetry:
    def _predict(self, plan):
        config = FrameworkConfig.parsecureml(
            activation_protocol="emulated", fault_plan=plan
        )
        ctx = SecureContext.create(config)
        model = SecureMLP(ctx, 10, hidden=(5,), n_out=2)
        x = np.random.default_rng(3).normal(size=(16, 10)) * 0.25
        return secure_predict(ctx, model, x, batch_size=8)

    def test_failed_request_is_retried_and_bit_identical(self):
        clean = self._predict(None)
        plan = FaultPlan(crashes=(PartyCrash("server1", at_step=2),))
        faulty = self._predict(plan)
        assert faulty.retried_batches >= 1
        np.testing.assert_array_equal(clean.predictions, faulty.predictions)

    def test_retry_budget_exhaustion_reraises(self):
        config = FrameworkConfig.parsecureml(
            activation_protocol="emulated", fault_plan=unrecoverable_plan()
        )
        ctx = SecureContext.create(config)
        model = SecureMLP(ctx, 10, hidden=(5,), n_out=2)
        x = np.random.default_rng(3).normal(size=(8, 10)) * 0.25
        with pytest.raises(PartyFailure):
            secure_predict(ctx, model, x, batch_size=8, max_request_retries=1)
