"""Batched offline provisioning: triplet pool, fused dealer GEMMs,
static-operand mask reuse, and the ring out= fast paths they build on."""

import numpy as np
import pytest

from repro.core.config import FrameworkConfig
from repro.core.context import SecureContext
from repro.core.inference import secure_predict
from repro.core.models import (
    SecureCNN,
    SecureLogisticRegression,
    SecureMLP,
    SecureRNN,
    SecureSVM,
)
from repro.core.ops import secure_matmul
from repro.core.tensor import SharedTensor
from repro.core.training import SecureTrainer
from repro.fixedpoint.ring import ring_add, ring_matmul, ring_matmul_batched, ring_mul, ring_sub
from repro.mpc.pool import TripletPool, TripletRequest, hadamard_stream, matmul_stream
from repro.mpc.shares import reconstruct
from repro.util.errors import ConfigError, ProtocolError, ShapeError


def _cfg(**kw):
    return FrameworkConfig.parsecureml(activation_protocol="emulated", **kw)


def _train_weights(cfg, *, batches=3, seed=0):
    ctx = SecureContext(cfg)
    model = SecureMLP(ctx, 48, hidden=(24, 12), n_out=4)
    rng = np.random.default_rng(seed)
    x = rng.normal(size=(192, 48))
    y = rng.normal(size=(192, 4))
    report = SecureTrainer(ctx, model, lr=0.03125).train(
        x, y, batch_size=64, max_batches=batches
    )
    flat = np.concatenate([p.decode().ravel() for p in model.parameters()])
    return ctx, report, flat


# ---------------------------------------------------------------- ring fast paths


class TestRingOutParameter:
    @pytest.mark.parametrize("op", [ring_add, ring_sub, ring_mul])
    def test_out_matches_fresh_allocation(self, op):
        rng = np.random.default_rng(3)
        a = rng.integers(0, 2**64, size=(7, 5), dtype=np.uint64)
        b = rng.integers(0, 2**64, size=(7, 5), dtype=np.uint64)
        expected = op(a, b)
        buf = np.empty_like(a)
        got = op(a, b, out=buf)
        assert got is buf
        np.testing.assert_array_equal(got, expected)

    def test_in_place_accumulation(self):
        rng = np.random.default_rng(4)
        a = rng.integers(0, 2**64, size=(4, 4), dtype=np.uint64)
        b = rng.integers(0, 2**64, size=(4, 4), dtype=np.uint64)
        expected = ring_add(a, b)
        got = ring_add(a, b, out=a)
        assert got is a
        np.testing.assert_array_equal(got, expected)


class TestRingMatmulBatched:
    def test_matches_stacked_singles(self):
        rng = np.random.default_rng(5)
        a = rng.integers(0, 2**64, size=(4, 3, 6), dtype=np.uint64)
        b = rng.integers(0, 2**64, size=(4, 6, 2), dtype=np.uint64)
        got = ring_matmul_batched(a, b)
        expected = np.stack([ring_matmul(a[i], b[i]) for i in range(4)])
        np.testing.assert_array_equal(got, expected)

    def test_zero_batch(self):
        a = np.empty((0, 3, 4), dtype=np.uint64)
        b = np.empty((0, 4, 2), dtype=np.uint64)
        assert ring_matmul_batched(a, b).shape == (0, 3, 2)

    def test_rejects_mismatched_stacks(self):
        a = np.zeros((2, 3, 4), dtype=np.uint64)
        with pytest.raises(ValueError):
            ring_matmul_batched(a, np.zeros((3, 4, 2), dtype=np.uint64))
        with pytest.raises(ValueError):
            ring_matmul_batched(a, np.zeros((2, 5, 2), dtype=np.uint64))
        with pytest.raises(ValueError):
            ring_matmul_batched(a[0], np.zeros((2, 4, 2), dtype=np.uint64))


# ------------------------------------------------------------------- request API


class TestTripletRequests:
    def test_matmul_stream_validates_shapes(self):
        req = matmul_stream((3, 4), (4, 2))
        assert req.kind == "matrix" and req.shapes == ((3, 4), (4, 2))
        with pytest.raises(ShapeError):
            matmul_stream((3, 4), (5, 2))

    def test_unknown_kind_rejected(self):
        with pytest.raises(ConfigError):
            TripletRequest(kind="cubic", shapes=((2, 2),))

    def test_pool_rejects_short_generator(self):
        pool = TripletPool(
            lambda sa, sb, n: [], lambda s, n: [], max_batch=4
        )
        with pytest.raises(ConfigError):
            pool.provision([matmul_stream((2, 2), (2, 2))])


# --------------------------------------------------------- fused batch generation


class TestBatchedGeneration:
    def test_pooled_matrix_triplets_are_valid_beaver_triples(self):
        ctx = SecureContext(_cfg(pool_size=4))
        triplets = ctx._gen_matrix_triplet_batch((3, 5), (5, 2), 4)
        assert len(triplets) == 4
        for trip in triplets:
            u = reconstruct(trip.u[0], trip.u[1])
            v = reconstruct(trip.v[0], trip.v[1])
            z = reconstruct(trip.z[0], trip.z[1])
            np.testing.assert_array_equal(z, ring_matmul(u, v))
        # independent draws, not one triplet repeated
        assert not np.array_equal(triplets[0].u[0], triplets[1].u[0])

    def test_pooled_elementwise_triplets_are_valid(self):
        ctx = SecureContext(_cfg(pool_size=4))
        triplets = ctx._gen_elementwise_triplet_batch((6, 3), 3)
        assert len(triplets) == 3
        for trip in triplets:
            u = reconstruct(trip.u[0], trip.u[1])
            v = reconstruct(trip.v[0], trip.v[1])
            z = reconstruct(trip.z[0], trip.z[1])
            np.testing.assert_array_equal(z, ring_mul(u, v))

    def test_refill_chunks_respect_max_batch(self):
        ctx = SecureContext(_cfg(pool_size=2))
        banked = ctx.triplet_pool.provision([matmul_stream((2, 3), (3, 2))] * 5)
        assert banked == 5
        reg = ctx.telemetry.registry
        assert reg.counter("mpc.pool.refills", "").value(kind="matrix") == 3
        assert ctx.triplet_pool.stock() == 5


# ----------------------------------------------------------- pool in the protocol


class TestPoolConsumption:
    def test_training_hits_pool_exactly(self):
        ctx, _, _ = _train_weights(_cfg(pool_size=8))
        reg = ctx.telemetry.registry
        assert reg.counter("mpc.pool.misses", "").value() == 0
        # one hit per op-stream label; the plan leaves nothing stranded
        assert reg.counter("mpc.pool.hits", "").value() > 0
        assert ctx.triplet_pool.stock() == 0

    @pytest.mark.parametrize(
        "build",
        [
            lambda ctx: SecureMLP(ctx, 32, hidden=(16,), n_out=4),
            lambda ctx: SecureCNN(ctx, (8, 8, 1), conv_channels=2, hidden=8, n_out=4),
            lambda ctx: SecureLogisticRegression(ctx, 16),
            lambda ctx: SecureSVM(ctx, 16),
            lambda ctx: SecureRNN(ctx, 3, 8, hidden=8, n_out=4),
        ],
        ids=["mlp", "cnn", "logreg", "svm", "rnn"],
    )
    def test_offline_plan_is_exact_per_model(self, build):
        """provision(offline_plan) covers one step with no miss, no surplus."""
        ctx = SecureContext(_cfg(pool_size=16))
        model = build(ctx)
        rng = np.random.default_rng(0)
        if isinstance(model, SecureCNN):
            in_width, n_out = 8 * 8 * 1, 4
        elif isinstance(model, SecureRNN):
            in_width, n_out = 3 * 8, 4
        elif isinstance(model, SecureMLP):
            in_width, n_out = 32, 4
        else:  # logreg / svm
            in_width, n_out = 16, 1
        x = rng.normal(size=(16, in_width))
        y = rng.normal(size=(16, n_out))
        if isinstance(model, SecureSVM):
            y = np.sign(y) + (y == 0)
        SecureTrainer(ctx, model, lr=0.03125).train(x, y, batch_size=16, max_batches=1)
        reg = ctx.telemetry.registry
        assert reg.counter("mpc.pool.misses", "").value() == 0
        assert ctx.triplet_pool.stock() == 0

    def test_exhausted_pool_falls_back_to_synchronous_generation(self):
        ctx = SecureContext(_cfg(pool_size=4))
        # no provisioning: every stream misses and generates on demand
        a = SharedTensor.from_plain(ctx, np.eye(4), label="a")
        b = SharedTensor.from_plain(ctx, np.eye(4) * 2.0, label="b")
        out = secure_matmul(a, b, label="fallback")
        np.testing.assert_allclose(out.decode(), np.eye(4) * 2.0, atol=1e-3)
        reg = ctx.telemetry.registry
        assert reg.counter("mpc.pool.misses", "").value(kind="matrix") == 1
        assert reg.counter("mpc.pool.hits", "").value() == 0

    def test_fresh_triplets_bypass_pool(self):
        ctx = SecureContext(_cfg(pool_size=4, fresh_triplets=True))
        ctx.triplet_pool.provision([matmul_stream((4, 4), (4, 4))])
        stock_before = ctx.triplet_pool.stock()
        a = SharedTensor.from_plain(ctx, np.eye(4), label="a")
        b = SharedTensor.from_plain(ctx, np.eye(4), label="b")
        secure_matmul(a, b, label="fresh-op")
        secure_matmul(a, b, label="fresh-op")  # same label: regenerated, not pooled
        reg = ctx.telemetry.registry
        assert ctx.triplet_pool.stock() == stock_before
        assert reg.counter("mpc.pool.hits", "").value() == 0
        assert reg.counter("mpc.pool.misses", "").value() == 0

    def test_provision_for_is_a_noop_without_pool_or_plan(self):
        ctx = SecureContext(_cfg())  # pool_size=0
        model = SecureMLP(ctx, 8, hidden=(4,), n_out=2)
        assert ctx.provision_for(model, 4) == 0
        ctx_fresh = SecureContext(_cfg(pool_size=4, fresh_triplets=True))
        model_fresh = SecureMLP(ctx_fresh, 8, hidden=(4,), n_out=2)
        assert ctx_fresh.provision_for(model_fresh, 4) == 0
        ctx_pooled = SecureContext(_cfg(pool_size=4))
        assert ctx_pooled.provision_for(object(), 4) == 0  # no offline_plan


# --------------------------------------------------------- consumption guard


class TestDoubleConsumeGuard:
    def test_second_consume_in_one_batch_names_the_stream(self):
        ctx = SecureContext(_cfg())
        ctx.begin_batch()
        triplet = ctx.get_matrix_triplet("mlp0/fwd", (4, 4), (4, 4))
        share = triplet.share_for(0)
        share.mark_consumed()
        again = ctx.get_matrix_triplet("mlp0/fwd", (4, 4), (4, 4))
        with pytest.raises(ProtocolError, match="mlp0/fwd"):
            again.share_for(0).mark_consumed()

    def test_new_batch_resets_the_guard(self):
        ctx = SecureContext(_cfg())
        ctx.begin_batch()
        ctx.get_matrix_triplet("op", (4, 4), (4, 4)).share_for(0).mark_consumed()
        ctx.begin_batch()
        ctx.get_matrix_triplet("op", (4, 4), (4, 4)).share_for(0).mark_consumed()

    def test_no_epoch_keeps_legacy_fresh_shares(self):
        ctx = SecureContext(_cfg())  # no begin_batch() call
        trip = ctx.get_matrix_triplet("op", (4, 4), (4, 4))
        trip.share_for(0).mark_consumed()
        trip2 = ctx.get_matrix_triplet("op", (4, 4), (4, 4))
        trip2.share_for(0).mark_consumed()  # must not raise


# ------------------------------------------------------------ zero-size GEMMs


class TestZeroSizeGemm:
    def test_zero_dim_placement_does_not_crash(self):
        ctx = SecureContext(_cfg())
        decision = ctx.profiler.place_gemm_batched(0, 4, 4, 4)
        assert decision.placement in ("cpu", "gpu")
        decision = ctx.profiler.place_gemm_batched(2, 0, 4, 4)
        assert decision.placement in ("cpu", "gpu")

    def test_empty_secure_matmul(self):
        ctx = SecureContext(_cfg())
        a = SharedTensor.from_plain(ctx, np.zeros((2, 0)), label="a")
        b = SharedTensor.from_plain(ctx, np.zeros((0, 3)), label="b")
        out = secure_matmul(a, b, label="empty")
        assert out.shape == (2, 3)
        np.testing.assert_allclose(out.decode(), np.zeros((2, 3)), atol=1e-6)


# ------------------------------------------------------------------- mask reuse


class TestStaticMaskReuse:
    def test_reuse_alone_is_bit_identical(self):
        """static_mask_reuse changes cost accounting only, never values."""
        _, _, base = _train_weights(_cfg())
        _, _, reused = _train_weights(_cfg(static_mask_reuse=True))
        np.testing.assert_array_equal(base, reused)

    def test_inference_reuses_static_weight_masks(self):
        cfg = _cfg(static_mask_reuse=True)
        ctx = SecureContext(cfg)
        model = SecureMLP(ctx, 32, hidden=(16,), n_out=4)
        x = np.random.default_rng(0).normal(size=(128, 32))
        secure_predict(ctx, model, x, batch_size=32)
        reg = ctx.telemetry.registry
        # 2 dense layers x 3 batches after the first exchange each
        assert reg.counter("mpc.mask_reuse.hits", "").value() == 6
        assert reg.counter("mpc.mask_reuse.bytes_saved", "").value() > 0

    def test_inference_predictions_unchanged_by_reuse(self):
        def predict(cfg):
            ctx = SecureContext(cfg)
            model = SecureMLP(ctx, 32, hidden=(16,), n_out=4)
            x = np.random.default_rng(1).normal(size=(96, 32))
            return secure_predict(ctx, model, x, batch_size=32)

        base = predict(_cfg())
        reused = predict(_cfg(static_mask_reuse=True))
        np.testing.assert_array_equal(base.predictions, reused.predictions)
        assert reused.online_s <= base.online_s

    def test_fresh_triplets_disable_reuse(self):
        ctx = SecureContext(_cfg(static_mask_reuse=True, fresh_triplets=True))
        assert not ctx.mask_reuse_enabled

    def test_reset_clears_reuse_state(self):
        ctx = SecureContext(_cfg(static_mask_reuse=True))
        model = SecureMLP(ctx, 16, hidden=(8,), n_out=2)
        x = np.random.default_rng(2).normal(size=(32, 16))
        secure_predict(ctx, model, x, batch_size=16)
        assert ctx._masked_cache
        ctx.reset_mask_reuse()
        assert not ctx._masked_cache
        assert not ctx._device_stash


# -------------------------------------------------------------- defaults intact


class TestAblationDefaults:
    def test_defaults_reproduce_legacy_weights(self):
        """pool_size=0 + static_mask_reuse=False is the exact old path."""
        _, _, a = _train_weights(_cfg())
        _, _, b = _train_weights(
            _cfg(pool_size=0, static_mask_reuse=False)
        )
        np.testing.assert_array_equal(a, b)

    def test_pooled_run_converges_like_baseline(self):
        _, base_report, _ = _train_weights(_cfg())
        ctx, pooled_report, _ = _train_weights(
            _cfg(pool_size=8, static_mask_reuse=True)
        )
        assert np.allclose(base_report.losses, pooled_report.losses, atol=1e-2)
        # pooled provisioning must never cost more simulated offline time
        assert pooled_report.offline_s <= base_report.offline_s * (1 + 1e-9)

    def test_negative_pool_size_rejected(self):
        with pytest.raises(ConfigError):
            _cfg(pool_size=-1)
