"""The telemetry subsystem: registry, spans, snapshots, exporters.

Ends with the acceptance scenario: a 2-batch secure MLP training run
whose snapshot must agree with the legacy counters (PhaseMark clocks,
CompressionStats bytes) and carry at least one kernel-time histogram for
every device in the deployment.
"""

from __future__ import annotations

import json
import math

import numpy as np
import pytest

from conftest import make_ctx
from repro.core.models import SecureMLP
from repro.core.training import SecureTrainer
from repro.simgpu.clock import SimClock
from repro.telemetry import (
    DEFAULT_BUCKETS,
    MetricRegistry,
    SpanLog,
    Telemetry,
    chrome_trace_events,
    export_chrome_trace,
    json_summary,
    text_report,
)
from repro.util.errors import ConfigError


class TestCounter:
    def test_inc_and_labelled_series(self):
        reg = MetricRegistry()
        c = reg.counter("comm.bytes")
        c.inc(100, channel="a<->b", src="a", dst="b")
        c.inc(50, channel="a<->b", src="b", dst="a")
        assert c.value(channel="a<->b", src="a", dst="b") == 100
        assert c.value(channel="a<->b") == 150  # partial-label sum
        assert c.value() == 150
        assert c.value(channel="other") == 0

    def test_negative_increment_rejected(self):
        c = MetricRegistry().counter("n")
        with pytest.raises(ConfigError):
            c.inc(-1)

    def test_reset_clears_matching_series_only(self):
        c = MetricRegistry().counter("n")
        c.inc(5, channel="x")
        c.inc(7, channel="y")
        c.reset(channel="x")
        assert c.value(channel="x") == 0
        assert c.value(channel="y") == 7

    def test_get_or_create_returns_same_counter(self):
        reg = MetricRegistry()
        a = reg.counter("same")
        b = reg.counter("same")
        a.inc(3)
        assert b.value() == 3

    def test_kind_conflict_raises(self):
        reg = MetricRegistry()
        reg.counter("metric")
        with pytest.raises(ConfigError):
            reg.gauge("metric")


class TestGauge:
    def test_set_and_read(self):
        g = MetricRegistry().gauge("phase.sim_seconds")
        g.set(1.5, clock="offline")
        g.set(2.5, clock="offline")  # overwrite, not accumulate
        assert g.value(clock="offline") == 2.5


class TestHistogram:
    def test_observe_accumulates_stats(self):
        h = MetricRegistry().histogram("t")
        for v in (1e-6, 2e-6, 3e-6):
            h.observe(v, device="gpu0", kind="gemm")
        data = h.data(device="gpu0", kind="gemm")
        assert data.count == 3
        assert data.total == pytest.approx(6e-6)
        assert data.min == pytest.approx(1e-6)
        assert data.max == pytest.approx(3e-6)
        assert data.mean == pytest.approx(2e-6)

    def test_default_buckets_end_with_inf(self):
        assert DEFAULT_BUCKETS[-1] == math.inf
        h = MetricRegistry().histogram("t")
        h.observe(1e12)  # beyond every finite bound, lands in the inf bucket
        assert h.data().count == 1


class TestHistogramQuantile:
    def test_empty_series_is_zero(self):
        h = MetricRegistry().histogram("t")
        assert h.quantile(0.5) == 0.0
        assert h.quantile(0.99) == 0.0

    def test_single_observation_is_itself(self):
        h = MetricRegistry().histogram("t")
        h.observe(3e-4)
        for q in (0.0, 0.5, 0.99, 1.0):
            assert h.quantile(q) == pytest.approx(3e-4)

    def test_quantiles_are_monotone_and_bounded(self):
        h = MetricRegistry().histogram("t")
        rng = np.random.default_rng(0)
        values = 10.0 ** rng.uniform(-6, -2, size=200)
        for v in values:
            h.observe(v)
        qs = [h.quantile(q) for q in (0.1, 0.5, 0.9, 0.95, 0.99)]
        assert qs == sorted(qs)
        assert values.min() <= qs[0] and qs[-1] <= values.max()

    def test_estimate_lands_in_the_right_decade(self):
        """Bucket interpolation: the estimate stays near the true quantile."""
        h = MetricRegistry().histogram("t")
        for _ in range(90):
            h.observe(5e-6)  # 90% of mass in the (1e-6, 1e-5] bucket
        for _ in range(10):
            h.observe(5e-3)
        assert 1e-6 <= h.quantile(0.5) <= 1e-5
        assert 1e-3 <= h.quantile(0.99) <= 5e-3

    def test_q0_is_min_and_q1_is_max(self):
        h = MetricRegistry().histogram("t")
        for v in (2e-6, 7e-5, 4e-4, 9e-3):
            h.observe(v)
        assert h.quantile(0.0) == pytest.approx(2e-6)
        assert h.quantile(1.0) == pytest.approx(9e-3)

    def test_all_mass_in_one_bucket_clamps_to_observed_range(self):
        # 2e-6..9e-6 all land in the (1e-6, 1e-5] bucket; interpolation
        # alone would smear estimates across the whole decade, the
        # [min, max] clamp keeps them inside what was actually seen
        h = MetricRegistry().histogram("t")
        for v in (2e-6, 3e-6, 9e-6):
            h.observe(v)
        for q in (0.0, 0.25, 0.5, 0.9, 1.0):
            assert 2e-6 <= h.quantile(q) <= 9e-6

    def test_out_of_range_q_rejected(self):
        h = MetricRegistry().histogram("t")
        h.observe(1e-4)
        for q in (-0.1, 1.1):
            with pytest.raises(ConfigError):
                h.quantile(q)

    def test_inf_bucket_returns_observed_max(self):
        h = MetricRegistry().histogram("t", buckets=(1.0, math.inf))
        h.observe(0.5)
        h.observe(42.0)
        assert h.quantile(0.99) == pytest.approx(42.0)

    def test_labelled_series_merge(self):
        """Partial-label queries merge series (servable per-client too)."""
        h = MetricRegistry().histogram("serve.request_latency_seconds")
        h.observe(1e-4, stage="total", client="a")
        h.observe(2e-4, stage="total", client="b")
        h.observe(9.0, stage="queue")
        merged = h.data(stage="total")
        assert merged.count == 2
        assert h.quantile(1.0, stage="total") <= 2e-4 + 1e-12
        assert h.quantile(0.5, stage="total", client="a") == pytest.approx(1e-4)

    def test_rejects_out_of_range_q(self):
        h = MetricRegistry().histogram("t")
        h.observe(1.0)
        with pytest.raises(ConfigError):
            h.quantile(1.5)
        with pytest.raises(ConfigError):
            h.quantile(-0.1)


class TestSpans:
    def test_nesting_tracks_parent_and_depth(self):
        log = SpanLog()
        with log.span("outer") as outer:
            with log.span("inner") as inner:
                pass
        assert outer.depth == 0 and outer.parent is None
        assert inner.depth == 1 and inner.parent == outer.index
        assert [s.name for s in log.finished()] == ["outer", "inner"]
        assert [s.name for s in log.finished(prefix="inn")] == ["inner"]

    def test_sim_time_pinned_to_clock(self):
        clock = SimClock()
        clock.add_resource("r")
        telem = Telemetry(clocks={"online": clock})
        clock.run("r", 1.0)
        with telem.span("work", clock="online"):
            clock.run("r", 2.5)
        (span,) = telem.span_log.finished()
        assert span.sim_start == pytest.approx(1.0)
        assert span.sim_duration == pytest.approx(2.5)
        assert span.wall_duration >= 0.0

    def test_unknown_clock_records_zero_sim_time(self):
        telem = Telemetry()
        with telem.span("work", clock="nope"):
            pass
        (span,) = telem.span_log.finished()
        assert span.sim_duration == 0.0


class TestSnapshotDiff:
    def test_counter_window(self):
        telem = Telemetry()
        c = telem.counter("n")
        c.inc(10, op="a")
        before = telem.snapshot()
        c.inc(5, op="a")
        c.inc(3, op="b")
        window = telem.snapshot().diff(before)
        assert window.counter("n", op="a") == 5
        assert window.counter("n", op="b") == 3
        assert telem.snapshot().counter("n") == 18  # diff leaves totals alone

    def test_histogram_window(self):
        telem = Telemetry()
        h = telem.histogram("t")
        h.observe(1.0)
        before = telem.snapshot()
        h.observe(3.0)
        window = telem.snapshot().diff(before)
        data = window.histogram("t")
        assert data.count == 1
        assert data.total == pytest.approx(3.0)

    def test_span_window_excludes_prior_spans(self):
        telem = Telemetry()
        with telem.span("early"):
            pass
        before = telem.snapshot()
        with telem.span("late"):
            pass
        window = telem.snapshot().diff(before)
        assert [s.name for s in window.spans()] == ["late"]


class TestChromeTrace:
    def _traced_telemetry(self):
        clock = SimClock()
        clock.set_tracing(True)
        clock.add_resource("gpu.s0")
        telem = Telemetry(clocks={"online": clock})
        with telem.span("batch", clock="online"):
            clock.run("gpu.s0", 2e-3, label="gemm")
        return telem

    def test_telemetry_export_schema(self):
        telem = self._traced_telemetry()
        events = chrome_trace_events(telem)
        complete = [e for e in events if e["ph"] == "X"]
        meta = [e for e in events if e["ph"] == "M"]
        names = {e["name"] for e in complete}
        assert {"gemm", "batch"} <= names
        gemm = next(e for e in complete if e["name"] == "gemm")
        assert gemm["dur"] == pytest.approx(2e-3 * 1e6)  # microseconds
        # span lanes live on their own thread ids, named via metadata
        span_event = next(e for e in complete if e["name"] == "batch")
        assert span_event["tid"] >= 10_000
        assert any(e["name"] == "thread_name" for e in meta)

    def test_export_writes_valid_json(self, tmp_path):
        telem = self._traced_telemetry()
        out = export_chrome_trace(telem, tmp_path / "trace.json")
        payload = json.loads(out.read_text())
        assert "traceEvents" in payload and payload["displayTimeUnit"] == "ms"

    def test_clock_source_matches_legacy_surface(self):
        clock = SimClock()
        clock.set_tracing(True)
        clock.add_resource("r")
        clock.run("r", 1e-3, label="task1")
        events = chrome_trace_events(clock, process_name="demo")
        assert events[0]["args"]["name"] == "demo"
        assert any(e["name"] == "task1" for e in events)


class TestReports:
    def test_text_report_covers_sections(self):
        ctx = make_ctx(activation_protocol="emulated")
        rng = np.random.default_rng(0)
        model = SecureMLP(ctx, 16, hidden=(8,), n_out=4)
        SecureTrainer(ctx, model, monitor_loss=False).train(
            rng.normal(size=(128, 16)), rng.normal(size=(128, 4)), batch_size=128
        )
        report = ctx.telemetry.report(title="run")
        for needle in ("phases", "communication", "device kernels", "secure ops", "spans"):
            assert needle in report

    def test_json_summary_round_trips(self):
        telem = Telemetry()
        telem.counter("n").inc(3, op="a")
        payload = json_summary(telem.snapshot())
        assert json.loads(json.dumps(payload))["counters"]["n"]

    def test_empty_report_says_so(self):
        assert "(no activity recorded)" in text_report(Telemetry().snapshot())


class TestTrainingAcceptance:
    """The ISSUE acceptance scenario: 2-batch MLP training snapshot."""

    @pytest.fixture(scope="class")
    def trained(self):
        ctx = make_ctx(activation_protocol="emulated")
        rng = np.random.default_rng(7)
        x = rng.normal(size=(256, 784)) * 0.5
        y = rng.normal(size=(256, 10)) * 0.1
        model = SecureMLP(ctx, 784, hidden=(128,), n_out=10)
        mark = ctx.mark()
        SecureTrainer(ctx, model, monitor_loss=False).train(
            x, y, batch_size=128, max_batches=2
        )
        return ctx, mark, ctx.telemetry.snapshot()

    def test_phase_gauges_match_phasemark(self, trained):
        ctx, mark, snap = trained
        delta = ctx.since(mark)
        assert snap.gauge("phase.sim_seconds", clock="offline") == pytest.approx(
            mark.offline_s + delta.offline_s
        )
        assert snap.gauge("phase.sim_seconds", clock="online") == pytest.approx(
            mark.online_s + delta.online_s
        )

    def test_channel_bytes_match_thin_views(self, trained):
        ctx, _mark, snap = trained
        assert snap.counter(
            "comm.bytes", channel=ctx.server_channel.label
        ) == ctx.server_channel.total_bytes
        assert (
            snap.counter("comm.bytes", channel=ctx.uplink0.label)
            + snap.counter("comm.bytes", channel=ctx.uplink1.label)
        ) == ctx.uplink0.total_bytes + ctx.uplink1.total_bytes

    def test_compression_counters_match_stats(self, trained):
        ctx, _mark, snap = trained
        stats = ctx.compression_stats
        assert int(snap.counter("comm.compression.raw_bytes")) == stats.raw_bytes
        assert int(snap.counter("comm.compression.wire_bytes")) == stats.wire_bytes
        assert (
            int(snap.counter("comm.compression.dense_messages")) == stats.dense_messages
        )

    def test_every_device_has_a_kernel_histogram(self, trained):
        ctx, _mark, snap = trained
        gpu_devices = set(snap.label_values("simgpu.kernel_seconds", "device"))
        assert {"clientgpu", "s0gpu", "s1gpu"} <= gpu_devices
        for device in gpu_devices:
            assert snap.histogram("simgpu.kernel_seconds", device=device).count >= 1
        cpu_devices = set(snap.label_values("simcpu.seconds", "device"))
        assert {"client", "s0", "s1"} <= cpu_devices

    def test_batch_spans_cover_online_phase(self, trained):
        _ctx, _mark, snap = trained
        batches = snap.spans("train.batch")
        assert len(batches) == 2
        assert all(s.sim_duration > 0 for s in batches)
        sharing = snap.spans("train.share_dataset")
        assert len(sharing) == 1 and sharing[0].sim_duration > 0

    def test_triplet_counters_consistent(self, trained):
        ctx, _mark, snap = trained
        assert int(snap.counter("mpc.triplets_generated")) == ctx.triplets_issued
        assert int(snap.counter("mpc.triplets_consumed")) >= ctx.triplets_issued

    def test_op_rollups_present(self, trained):
        _ctx, _mark, snap = trained
        ops_seen = set(snap.label_values("ops.invocations", "op"))
        assert {"matmul", "elementwise_mul", "truncate"} <= ops_seen
        assert snap.counter("ops.online_seconds", op="matmul") > 0
