"""The :class:`Telemetry` facade: one observability surface per context.

Every :class:`~repro.core.context.SecureContext` owns one ``Telemetry``
instance; the channels, devices, compressors and drivers it wires up all
record into the same registry/span log, so ``ctx.telemetry.snapshot()``
is a complete picture of an experiment and
``ctx.telemetry.report()`` prints it.

Metric naming conventions (dots group, labels discriminate):

====================================  ==========================================
``comm.bytes{channel,src,dst}``       wire bytes per link direction
``comm.messages{...}``                message count per link direction
``comm.link_busy_seconds{...}``       per-direction occupancy (busy seconds)
``comm.compression.*{direction}``     raw/wire bytes, dense/csr message counts
``simgpu.kernel_seconds{device,kind}``kernel-time histogram (gemm/elementwise/..)
``simgpu.queue_wait_seconds{device}`` start delay behind busy streams/engines
``simgpu.h2d_bytes / d2h_bytes``      PCIe traffic per device
``simcpu.seconds{device,kind}``       host-side time histogram by kind
``mpc.triplets_generated{kind,shape}``offline Beaver material produced
                                      (``source="pool"`` on fused refills)
``mpc.triplets_consumed{kind,shape}`` op-stream fetches of that material
``mpc.pool.hits{kind}``               triplet requests served from the pool
``mpc.pool.misses{kind}``             pool misses (synchronous fallback)
``mpc.pool.refills{kind}``            fused batch-generation calls
``mpc.pool.stocked``                  gauge: triplets currently banked
``mpc.mask_reuse.hits{side}``         masked exchanges skipped (static reuse)
``mpc.mask_reuse.bytes_saved{side}``  inter-server bytes not sent thanks to it
``ops.invocations{op}``               secure-op call counts
``ops.online_seconds{op}``            online makespan attributed per op
``runtime.messages{actor,direction}`` actor-level message counts
``phase.sim_seconds{clock}``          gauge: each clock's frontier at snapshot
``faults.injected{kind,link}``        fault events injected (repro.faults)
``faults.retransmits{link}``          frames/messages retransmitted
``faults.retransmit_bytes{link}``     wire bytes spent on retransmission
``faults.timeouts{link}``             receive/ack timeouts
``faults.backoff_seconds{link}``      simulated backoff wait charged
``faults.corrupt_detected{link}``     checksum-mismatch discards
``faults.duplicates_suppressed{...}`` already-seen frames discarded
``faults.delays_applied{link}``       injected-delay hits
``faults.party_restarts{party}``      crashed parties brought back
``faults.batches_replayed{party}``    training batches re-run after restore
``faults.requests_retried{party}``    inference batch requests retried
``infer.padded_rows``                 zero rows padded onto ragged tail batches
``serve.requests_admitted{client}``   requests accepted by the serving queue
``serve.requests_rejected{client}``   retryable admission rejections (repro.serve)
``serve.queue_depth_rows``            gauge: rows currently queued
``serve.requests_served{client}``     requests answered
``serve.rows_served``                 input rows answered
``serve.batches``                     coalesced secure batches run
``serve.padded_rows``                 pad rows added to reach the batch shape
``serve.batch_timer_waits``           partial batches cut by the max_wait timer
``serve.batch_fill``                  histogram: served rows per batch slot
``serve.request_latency_seconds{stage}`` histogram: queue/service/total spans
``serve.latency_quantile_seconds{q}`` gauge: p50/p95/p99 at last report()
====================================  ==========================================
"""

from __future__ import annotations

from contextlib import contextmanager, nullcontext
from pathlib import Path

from repro.simgpu.clock import SimClock
from repro.telemetry.registry import Counter, Gauge, Histogram, MetricRegistry
from repro.telemetry.snapshot import TelemetrySnapshot
from repro.telemetry.spans import SpanLog, SpanRecord


class Telemetry:
    """Registry + span log + the clocks that give spans simulated time."""

    def __init__(self, clocks: dict[str, SimClock] | None = None):
        self.registry = MetricRegistry()
        self.span_log = SpanLog()
        self._clocks: dict[str, SimClock] = dict(clocks or {})

    # -- clocks ----------------------------------------------------------------

    def register_clock(self, name: str, clock: SimClock) -> None:
        self._clocks[name] = clock

    def clocks(self) -> dict[str, SimClock]:
        return dict(self._clocks)

    # -- metric accessors (delegation keeps call sites short) ------------------

    def counter(self, name: str, description: str = "") -> Counter:
        return self.registry.counter(name, description)

    def gauge(self, name: str, description: str = "") -> Gauge:
        return self.registry.gauge(name, description)

    def histogram(
        self, name: str, description: str = "", *, buckets: tuple[float, ...] | None = None
    ) -> Histogram:
        return self.registry.histogram(name, description, buckets=buckets)

    # -- spans -----------------------------------------------------------------

    @contextmanager
    def span(self, name: str, *, clock: str | None = None, **labels):
        """Record a span; ``clock`` names a registered SimClock.

        The simulated interval is the named clock's makespan delta across
        the span body (how far the spanned work pushed that phase's
        frontier); wall time is always recorded.
        """
        sim_clock = self._clocks.get(clock) if clock else None
        now = sim_clock.now if sim_clock is not None else None
        with self.span_log.span(name, clock_name=clock or "", now=now, **labels) as record:
            yield record

    # -- snapshot / export -----------------------------------------------------

    def snapshot(self) -> TelemetrySnapshot:
        """Freeze every series (after pinning phase gauges to the clocks).

        A dataflow clock (repro.runtime.dataflow) gets its open window
        committed first, so the phase gauges report scheduled makespans
        rather than provisional program-order frontiers.
        """
        phase = self.gauge("phase.sim_seconds", "simulated frontier per clock")
        for name, clock in self._clocks.items():
            finalize = getattr(clock, "finalize", None)
            if finalize is not None:
                finalize()
            phase.set(clock.now(), clock=name)
        return TelemetrySnapshot.capture(self.registry, self.span_log)

    def report(self, *, title: str = "telemetry report") -> str:
        from repro.telemetry.export import text_report

        return text_report(self.snapshot(), title=title)

    def to_json(self, **dumps_kwargs) -> str:
        return self.snapshot().to_json(**dumps_kwargs)

    def chrome_trace_events(self, *, min_duration_s: float = 0.0) -> list[dict]:
        from repro.telemetry.export import chrome_trace_events

        return chrome_trace_events(self, min_duration_s=min_duration_s)

    def export_chrome_trace(self, path: str | Path, *, min_duration_s: float = 0.0) -> Path:
        from repro.telemetry.export import export_chrome_trace

        return export_chrome_trace(self, path, min_duration_s=min_duration_s)


def maybe_span(telemetry: Telemetry | None, name: str, *, clock: str | None = None, **labels):
    """``telemetry.span(...)`` or a no-op when telemetry is absent."""
    if telemetry is None:
        return nullcontext(SpanRecord(name=name))
    return telemetry.span(name, clock=clock, **labels)
