"""Exporters: Chrome tracing, JSON summary, plaintext report.

This module subsumes :mod:`repro.pipeline.trace_export` (now a
deprecated shim that delegates here).  Three output formats:

* :func:`chrome_trace_events` / :func:`export_chrome_trace` — the
  ``chrome://tracing`` / Perfetto event-list format.  Works on a bare
  :class:`~repro.simgpu.clock.SimClock` (one process, one thread per
  resource — the legacy surface) or on a whole
  :class:`~repro.telemetry.Telemetry` (one process per registered
  clock, plus a span lane per clock showing the nested op/phase spans);
* :func:`json_summary` — the snapshot's full metric/span payload as a
  JSON-ready dict, for machine consumption;
* :func:`text_report` — the aligned plaintext report the bench CLI and
  the examples print.
"""

from __future__ import annotations

import json
from pathlib import Path

from repro.simgpu.clock import SimClock
from repro.telemetry.snapshot import TelemetrySnapshot

__all__ = [
    "chrome_trace_events",
    "export_chrome_trace",
    "json_summary",
    "text_report",
]


def _clock_events(
    clock: SimClock, *, pid: int, process_name: str, min_duration_s: float
) -> list[dict]:
    resources = {name: idx for idx, name in enumerate(clock.resources())}
    events: list[dict] = [
        {"name": "process_name", "ph": "M", "pid": pid, "tid": 0, "args": {"name": process_name}}
    ]
    for name, tid in resources.items():
        events.append(
            {"name": "thread_name", "ph": "M", "pid": pid, "tid": tid, "args": {"name": name}}
        )
    for task in clock.trace:
        if task.duration < min_duration_s:
            continue
        events.append(
            {
                "name": task.label or "task",
                "ph": "X",
                "pid": pid,
                "tid": resources.get(task.resource, len(resources)),
                "ts": task.start * 1e6,
                "dur": task.duration * 1e6,
            }
        )
    return events


def chrome_trace_events(
    source, *, process_name: str = "repro", min_duration_s: float = 0.0
) -> list[dict]:
    """Chrome-tracing events for a ``SimClock`` or a ``Telemetry``.

    For a clock: each resource becomes a thread, each task a complete
    (``ph: "X"``) event — the historical ``trace_export`` behaviour.
    For a telemetry instance: one process per registered clock (named
    ``<process_name>:<clock>``), plus a ``spans`` thread per clock
    carrying the recorded spans at their simulated timestamps.
    """
    if isinstance(source, SimClock):
        return _clock_events(
            source, pid=0, process_name=process_name, min_duration_s=min_duration_s
        )

    events: list[dict] = []
    clock_pids: dict[str, int] = {}
    for pid, (clock_name, clock) in enumerate(sorted(source.clocks().items())):
        clock_pids[clock_name] = pid
        events.extend(
            _clock_events(
                clock,
                pid=pid,
                process_name=f"{process_name}:{clock_name}",
                min_duration_s=min_duration_s,
            )
        )
    span_tid = 10_000  # far above any per-resource thread id
    named_span_lanes = set()
    for span in source.span_log.finished():
        pid = clock_pids.get(span.clock, 0)
        if (pid, span.depth) not in named_span_lanes:
            named_span_lanes.add((pid, span.depth))
            events.append(
                {
                    "name": "thread_name",
                    "ph": "M",
                    "pid": pid,
                    "tid": span_tid + span.depth,
                    "args": {"name": f"spans (depth {span.depth})"},
                }
            )
        if span.sim_duration < min_duration_s:
            continue
        events.append(
            {
                "name": span.name,
                "ph": "X",
                "pid": pid,
                "tid": span_tid + span.depth,
                "ts": span.sim_start * 1e6,
                "dur": span.sim_duration * 1e6,
                "args": dict(span.labels),
            }
        )
    return events


def export_chrome_trace(
    source,
    path: str | Path,
    *,
    process_name: str = "repro",
    min_duration_s: float = 0.0,
) -> Path:
    """Write the Chrome trace JSON for a clock or telemetry; returns the path.

    Remember to construct the context with ``FrameworkConfig(trace=True)``
    — without tracing the clocks record no tasks (spans still export).
    """
    path = Path(path)
    payload = {
        "traceEvents": chrome_trace_events(
            source, process_name=process_name, min_duration_s=min_duration_s
        ),
        "displayTimeUnit": "ms",
    }
    path.write_text(json.dumps(payload))
    return path


def json_summary(snapshot: TelemetrySnapshot) -> dict:
    """The snapshot as a JSON-ready dict (counters/gauges/histograms/spans)."""
    return snapshot.as_dict()


def export_json_summary(snapshot: TelemetrySnapshot, path: str | Path) -> Path:
    path = Path(path)
    path.write_text(snapshot.to_json(indent=2))
    return path


def _fmt_bytes(n: float) -> str:
    for unit, scale in (("GB", 1e9), ("MB", 1e6), ("kB", 1e3)):
        if abs(n) >= scale:
            return f"{n / scale:.2f} {unit}"
    return f"{n:.0f} B"


def _fmt_s(s: float) -> str:
    if abs(s) >= 1.0:
        return f"{s:.3f} s"
    if abs(s) >= 1e-3:
        return f"{s * 1e3:.3f} ms"
    return f"{s * 1e6:.1f} us"


def text_report(snapshot: TelemetrySnapshot, *, title: str = "telemetry report") -> str:
    """Aligned plaintext roll-up of the snapshot's headline figures."""
    lines = [title, "=" * len(title)]

    phases = [
        (dict(key).get("clock", "?"), value)
        for key, value in snapshot.series("phase.sim_seconds").items()
    ]
    if phases:
        lines.append("-- phases (simulated seconds) --")
        total = sum(v for _, v in phases)
        for clock_name, value in sorted(phases):
            lines.append(f"  {clock_name:<10} {_fmt_s(value):>12}")
        lines.append(f"  {'total':<10} {_fmt_s(total):>12}")

    channels = snapshot.label_values("comm.bytes", "channel")
    if channels:
        lines.append("-- communication --")
        for channel in channels:
            sent = snapshot.counter("comm.bytes", channel=channel)
            msgs = snapshot.counter("comm.messages", channel=channel)
            busy = snapshot.counter("comm.link_busy_seconds", channel=channel)
            lines.append(
                f"  {channel:<24} {_fmt_bytes(sent):>12} in {int(msgs):>6} msgs, "
                f"link busy {_fmt_s(busy)}"
            )
        raw = snapshot.counter("comm.compression.raw_bytes")
        wire = snapshot.counter("comm.compression.wire_bytes")
        if raw:
            saved = 1.0 - wire / raw
            lines.append(
                f"  compression: raw {_fmt_bytes(raw)} -> wire {_fmt_bytes(wire)} "
                f"({saved:.1%} saved)"
            )

    devices = sorted(
        set(
            snapshot.label_values("simgpu.kernel_seconds", "device")
            + snapshot.label_values("simcpu.seconds", "device")
        )
    )
    if devices:
        lines.append("-- device kernels --")
        for device in devices:
            for metric in ("simgpu.kernel_seconds", "simcpu.seconds"):
                for kind in snapshot.label_values(metric, "kind"):
                    data = snapshot.histogram(metric, device=device, kind=kind)
                    if data.count:
                        lines.append(
                            f"  {device:<10} {kind:<12} n={data.count:<6} "
                            f"total {_fmt_s(data.total):>12}  mean {_fmt_s(data.mean):>12}"
                        )
            h2d = snapshot.counter("simgpu.h2d_bytes", device=device)
            d2h = snapshot.counter("simgpu.d2h_bytes", device=device)
            if h2d or d2h:
                lines.append(
                    f"  {device:<10} {'pcie':<12} h2d {_fmt_bytes(h2d)}, d2h {_fmt_bytes(d2h)}"
                )

    generated = snapshot.counter("mpc.triplets_generated")
    if generated:
        consumed = snapshot.counter("mpc.triplets_consumed")
        lines.append("-- offline material --")
        lines.append(
            f"  triplets: {int(generated)} generated, {int(consumed)} consumed "
            f"across {len(snapshot.label_values('mpc.triplets_generated', 'shape'))} shapes"
        )
        comparisons = snapshot.counter("mpc.comparisons_issued")
        if comparisons:
            lines.append(f"  comparison bundles: {int(comparisons)}")

    op_names = snapshot.label_values("ops.invocations", "op")
    if op_names:
        lines.append("-- secure ops --")
        for op in op_names:
            calls = snapshot.counter("ops.invocations", op=op)
            online = snapshot.counter("ops.online_seconds", op=op)
            lines.append(f"  {op:<12} x{int(calls):<5} online {_fmt_s(online):>12}")

    fault_rows = []
    for metric in (
        "faults.injected",
        "faults.retransmits",
        "faults.retransmit_bytes",
        "faults.timeouts",
        "faults.backoff_seconds",
        "faults.corrupt_detected",
        "faults.duplicates_suppressed",
        "faults.delays_applied",
        "faults.party_restarts",
        "faults.batches_replayed",
        "faults.requests_retried",
    ):
        value = snapshot.counter(metric)
        if value:
            if metric == "faults.retransmit_bytes":
                rendered = _fmt_bytes(value)
            elif metric == "faults.backoff_seconds":
                rendered = _fmt_s(value)
            else:
                rendered = f"{int(value)}"
            fault_rows.append(f"  {metric.removeprefix('faults.'):<22} {rendered:>12}")
    if fault_rows:
        lines.append("-- fault injection & recovery --")
        lines.extend(fault_rows)

    spans = snapshot.spans()
    if spans:
        lines.append(f"-- spans ({len(spans)} recorded) --")
        for span in spans[:40]:
            indent = "  " * (span.depth + 1)
            lines.append(
                f"{indent}{span.name} [{span.clock}] {_fmt_s(span.sim_duration)}"
            )
        if len(spans) > 40:
            lines.append(f"  ... {len(spans) - 40} more")

    if len(lines) == 2:
        lines.append("(no activity recorded)")
    return "\n".join(lines)
