"""Label-aware metric primitives: counters, gauges, histograms.

The registry is the single source of truth for every quantitative fact
the framework records about itself — bytes on a link, kernel seconds by
kind, triplets issued per shape.  Pre-existing ad-hoc counters
(``Channel.bytes_sent``, ``CompressionStats``, the device counters) are
kept API-compatible as *thin views* over registry series, so the paper's
evaluation machinery and this subsystem can never disagree.

Model (a deliberately small subset of the Prometheus data model):

* a **metric** has a name, a kind and a set of **series**;
* a **series** is one labelled instance of the metric, keyed by its
  sorted ``(label, value)`` pairs;
* :class:`Counter` series only increase (reset is explicit);
* :class:`Gauge` series hold the last value set;
* :class:`Histogram` series accumulate count/sum/min/max plus
  log-spaced bucket counts, sized for simulated seconds (1 ns .. 10 s).

Queries accept *partial* label sets: ``counter.value(channel="a<->b")``
sums every series whose labels include that pair — which is what makes
per-direction accounting roll up into per-channel totals for free.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.util.errors import ConfigError

LabelKey = tuple[tuple[str, str], ...]

#: Default histogram bucket upper bounds: log-spaced for durations that
#: range from nanosecond kernel launches to multi-second phases.
DEFAULT_BUCKETS: tuple[float, ...] = tuple(10.0**e for e in range(-9, 2)) + (math.inf,)


def label_key(labels: dict[str, object]) -> LabelKey:
    """Canonical hashable form of a label set."""
    return tuple(sorted((str(k), str(v)) for k, v in labels.items()))


def _matches(series_key: LabelKey, query: LabelKey) -> bool:
    """True when every (label, value) pair of ``query`` appears in the key."""
    pairs = dict(series_key)
    return all(pairs.get(k) == v for k, v in query)


class _Metric:
    """Shared plumbing: named, labelled series storage."""

    kind = "metric"

    def __init__(self, name: str, description: str = ""):
        self.name = name
        self.description = description

    def _select(self, store: dict, labels: dict) -> list:
        query = label_key(labels)
        return [v for key, v in store.items() if _matches(key, query)]


class Counter(_Metric):
    """Monotonically increasing series; decrements are rejected."""

    kind = "counter"

    def __init__(self, name: str, description: str = ""):
        super().__init__(name, description)
        self._series: dict[LabelKey, float] = {}

    def inc(self, amount: float = 1, **labels) -> None:
        if amount < 0:
            raise ConfigError(f"counter {self.name}: negative increment {amount}")
        key = label_key(labels)
        self._series[key] = self._series.get(key, 0) + amount

    def value(self, **labels) -> float:
        """Sum of every series matching the (possibly partial) labels."""
        return sum(self._select(self._series, labels))

    def series(self) -> dict[LabelKey, float]:
        return dict(self._series)

    def reset(self, **labels) -> None:
        """Drop matching series (used by ``Channel.reset_counters``)."""
        query = label_key(labels)
        for key in [k for k in self._series if _matches(k, query)]:
            del self._series[key]


class Gauge(_Metric):
    """Last-value-wins series (e.g. the current phase clock reading)."""

    kind = "gauge"

    def __init__(self, name: str, description: str = ""):
        super().__init__(name, description)
        self._series: dict[LabelKey, float] = {}

    def set(self, value: float, **labels) -> None:
        self._series[label_key(labels)] = value

    def value(self, default: float = 0.0, **labels) -> float:
        matched = self._select(self._series, labels)
        if not matched:
            return default
        if len(matched) > 1:
            raise ConfigError(
                f"gauge {self.name}: labels {labels} match {len(matched)} series; "
                "narrow the query"
            )
        return matched[0]

    def series(self) -> dict[LabelKey, float]:
        return dict(self._series)


@dataclass
class HistogramData:
    """Accumulated distribution of one histogram series (or a merge)."""

    count: int = 0
    total: float = 0.0
    min: float = math.inf
    max: float = -math.inf
    bounds: tuple[float, ...] = DEFAULT_BUCKETS
    bucket_counts: tuple[int, ...] = ()

    def __post_init__(self):
        if not self.bucket_counts:
            self.bucket_counts = tuple(0 for _ in self.bounds)

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def observe(self, value: float) -> None:
        counts = list(self.bucket_counts)
        for i, bound in enumerate(self.bounds):
            if value <= bound:
                counts[i] += 1
                break
        self.bucket_counts = tuple(counts)
        self.count += 1
        self.total += value
        self.min = min(self.min, value)
        self.max = max(self.max, value)

    def quantile(self, q: float) -> float:
        """Bucket-interpolated quantile estimate (Prometheus-style).

        Linearly interpolates within the bucket containing the q-th
        observation; the estimate is clamped to the observed
        ``[min, max]`` so single-bucket distributions don't smear across
        a whole log-spaced decade.  Returns 0.0 for an empty series.
        """
        if not 0.0 <= q <= 1.0:
            raise ConfigError(f"quantile q must be in [0, 1], got {q}")
        if self.count == 0:
            return 0.0
        target = q * self.count
        cum = 0.0
        prev_bound = 0.0
        for bound, cnt in zip(self.bounds, self.bucket_counts):
            if cnt:
                if cum + cnt >= target:
                    if math.isinf(bound):
                        return self.max
                    frac = (target - cum) / cnt
                    est = prev_bound + frac * (bound - prev_bound)
                    return min(max(est, self.min), self.max)
                cum += cnt
            if not math.isinf(bound):
                prev_bound = bound
        return self.max

    def merge(self, other: "HistogramData") -> "HistogramData":
        if other.bounds != self.bounds:
            raise ConfigError("cannot merge histograms with different bucket bounds")
        return HistogramData(
            count=self.count + other.count,
            total=self.total + other.total,
            min=min(self.min, other.min),
            max=max(self.max, other.max),
            bounds=self.bounds,
            bucket_counts=tuple(a + b for a, b in zip(self.bucket_counts, other.bucket_counts)),
        )


class Histogram(_Metric):
    """Distribution metric: kernel durations, queue waits, latencies."""

    kind = "histogram"

    def __init__(
        self, name: str, description: str = "", *, buckets: tuple[float, ...] | None = None
    ):
        super().__init__(name, description)
        bounds = tuple(buckets) if buckets else DEFAULT_BUCKETS
        if bounds != tuple(sorted(bounds)):
            raise ConfigError(f"histogram {name}: bucket bounds must be sorted")
        if not bounds or bounds[-1] != math.inf:
            bounds = bounds + (math.inf,)
        self.bounds = bounds
        self._series: dict[LabelKey, HistogramData] = {}

    def observe(self, value: float, **labels) -> None:
        key = label_key(labels)
        data = self._series.get(key)
        if data is None:
            data = self._series[key] = HistogramData(bounds=self.bounds)
        data.observe(value)

    def data(self, **labels) -> HistogramData:
        """Merged distribution of every series matching the labels."""
        merged = HistogramData(bounds=self.bounds)
        for d in self._select(self._series, labels):
            merged = merged.merge(d)
        return merged

    def quantile(self, q: float, **labels) -> float:
        """Quantile estimate over the matching (merged) series."""
        return self.data(**labels).quantile(q)

    def series(self) -> dict[LabelKey, HistogramData]:
        return dict(self._series)


class MetricRegistry:
    """Get-or-create store of metrics; kind conflicts are errors."""

    def __init__(self):
        self._metrics: dict[str, _Metric] = {}

    def _get_or_create(self, cls, name: str, description: str, **kwargs):
        existing = self._metrics.get(name)
        if existing is not None:
            if not isinstance(existing, cls):
                raise ConfigError(
                    f"metric {name!r} already registered as {existing.kind}, "
                    f"requested {cls.kind}"
                )
            return existing
        metric = cls(name, description, **kwargs)
        self._metrics[name] = metric
        return metric

    def counter(self, name: str, description: str = "") -> Counter:
        return self._get_or_create(Counter, name, description)

    def gauge(self, name: str, description: str = "") -> Gauge:
        return self._get_or_create(Gauge, name, description)

    def histogram(
        self, name: str, description: str = "", *, buckets: tuple[float, ...] | None = None
    ) -> Histogram:
        return self._get_or_create(Histogram, name, description, buckets=buckets)

    def metrics(self) -> dict[str, _Metric]:
        return dict(self._metrics)

    def __contains__(self, name: str) -> bool:
        return name in self._metrics
