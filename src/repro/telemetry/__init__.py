"""Unified telemetry: metrics registry, SimClock-pinned spans, exporters.

The observability layer behind the paper's whole evaluation — where
time and bytes go, per phase, per device, per link, per op.  One
:class:`Telemetry` instance lives on each
:class:`~repro.core.context.SecureContext` (``ctx.telemetry``); take
:meth:`Telemetry.snapshot` snapshots and diff them to measure a window,
or :meth:`Telemetry.report` for a human-readable roll-up.

See :mod:`repro.telemetry.core` for the metric naming conventions and
:mod:`repro.telemetry.export` for the Chrome-trace / JSON / plaintext
output formats (which subsume the deprecated
:mod:`repro.pipeline.trace_export`).
"""

from repro.telemetry.core import Telemetry, maybe_span
from repro.telemetry.registry import (
    Counter,
    DEFAULT_BUCKETS,
    Gauge,
    Histogram,
    HistogramData,
    MetricRegistry,
)
from repro.telemetry.snapshot import TelemetrySnapshot
from repro.telemetry.spans import SpanLog, SpanRecord
from repro.telemetry.export import (
    chrome_trace_events,
    export_chrome_trace,
    json_summary,
    text_report,
)

__all__ = [
    "Telemetry",
    "maybe_span",
    "Counter",
    "Gauge",
    "Histogram",
    "HistogramData",
    "MetricRegistry",
    "DEFAULT_BUCKETS",
    "TelemetrySnapshot",
    "SpanLog",
    "SpanRecord",
    "chrome_trace_events",
    "export_chrome_trace",
    "json_summary",
    "text_report",
]
