"""Span-based tracing pinned to :class:`~repro.simgpu.clock.SimClock`.

A span is a named, labelled interval — "this training batch", "this
secure matmul" — recorded on **two timebases at once**:

* *simulated* seconds, read from a named ``SimClock`` (offline or
  online), so spans compose with the paper's phase accounting; and
* *wall-clock* seconds (``time.perf_counter``), so the reproduction's
  own Python cost is visible too.

Spans nest: entering a span inside another records parent/depth, which
the Chrome-trace exporter turns into a flame-graph-like lane and the
report renders as an indented tree.  The simulated interval of a span is
the *makespan delta* of its clock — the time the spanned work pushed the
simulated frontier forward.
"""

from __future__ import annotations

import time
from contextlib import contextmanager
from dataclasses import dataclass, field


@dataclass
class SpanRecord:
    """One (possibly still open) span."""

    name: str
    labels: dict[str, str] = field(default_factory=dict)
    clock: str = ""
    index: int = 0
    parent: int | None = None
    depth: int = 0
    sim_start: float = 0.0
    sim_end: float = 0.0
    wall_start: float = 0.0
    wall_end: float = 0.0
    finished: bool = False

    @property
    def sim_duration(self) -> float:
        return self.sim_end - self.sim_start

    @property
    def wall_duration(self) -> float:
        return self.wall_end - self.wall_start

    def as_dict(self) -> dict:
        return {
            "name": self.name,
            "labels": dict(self.labels),
            "clock": self.clock,
            "index": self.index,
            "parent": self.parent,
            "depth": self.depth,
            "sim_start": self.sim_start,
            "sim_end": self.sim_end,
            "wall_start": self.wall_start,
            "wall_end": self.wall_end,
        }


class SpanLog:
    """Ordered log of spans with a nesting stack."""

    def __init__(self):
        self._spans: list[SpanRecord] = []
        self._stack: list[int] = []

    @contextmanager
    def span(self, name: str, *, clock_name: str = "", now=None, **labels):
        """Record one span; ``now`` is a zero-arg callable for sim time."""
        record = SpanRecord(
            name=name,
            labels={str(k): str(v) for k, v in labels.items()},
            clock=clock_name,
            index=len(self._spans),
            parent=self._stack[-1] if self._stack else None,
            depth=len(self._stack),
        )
        self._spans.append(record)
        self._stack.append(record.index)
        record.sim_start = float(now()) if now is not None else 0.0
        record.wall_start = time.perf_counter()
        try:
            yield record
        finally:
            record.wall_end = time.perf_counter()
            record.sim_end = float(now()) if now is not None else record.sim_start
            record.finished = True
            self._stack.pop()

    def finished(self, prefix: str | None = None) -> list[SpanRecord]:
        """Completed spans, optionally filtered by name prefix."""
        return [
            s
            for s in self._spans
            if s.finished and (prefix is None or s.name.startswith(prefix))
        ]

    def __len__(self) -> int:
        return len(self._spans)
