"""Immutable point-in-time view of a :class:`~repro.telemetry.Telemetry`.

A snapshot is what the evaluation reads: benchmarks take one before and
one after an experiment window and *diff* them, exactly the pattern
:meth:`SecureContext.mark` / :meth:`since` established — ``PhaseMark``
is now a thin special case of this.

Diff semantics:

* counters and histogram counts/sums subtract series-wise;
* gauges subtract (they carry clock readings, where the difference is
  the phase delta); histogram min/max keep the newer window's values;
* spans keep only those recorded after the older snapshot.
"""

from __future__ import annotations

import json
from dataclasses import replace

from repro.telemetry.registry import (
    Counter,
    Gauge,
    Histogram,
    HistogramData,
    LabelKey,
    _matches,
    label_key,
)
from repro.telemetry.spans import SpanRecord


class TelemetrySnapshot:
    """Queryable frozen copy of every metric series plus finished spans."""

    def __init__(
        self,
        counters: dict[str, dict[LabelKey, float]],
        gauges: dict[str, dict[LabelKey, float]],
        histograms: dict[str, dict[LabelKey, HistogramData]],
        spans: list[SpanRecord],
    ):
        self._counters = counters
        self._gauges = gauges
        self._histograms = histograms
        self._spans = spans

    @classmethod
    def capture(cls, registry, span_log) -> "TelemetrySnapshot":
        counters: dict[str, dict[LabelKey, float]] = {}
        gauges: dict[str, dict[LabelKey, float]] = {}
        histograms: dict[str, dict[LabelKey, HistogramData]] = {}
        for name, metric in registry.metrics().items():
            if isinstance(metric, Counter):
                counters[name] = metric.series()
            elif isinstance(metric, Gauge):
                gauges[name] = metric.series()
            elif isinstance(metric, Histogram):
                histograms[name] = {k: replace(d) for k, d in metric.series().items()}
        return cls(counters, gauges, histograms, list(span_log.finished()))

    # -- queries ---------------------------------------------------------------

    def counter(self, name: str, **labels) -> float:
        query = label_key(labels)
        return sum(
            v for k, v in self._counters.get(name, {}).items() if _matches(k, query)
        )

    def gauge(self, name: str, default: float = 0.0, **labels) -> float:
        query = label_key(labels)
        matched = [v for k, v in self._gauges.get(name, {}).items() if _matches(k, query)]
        return matched[0] if matched else default

    def histogram(self, name: str, **labels) -> HistogramData:
        query = label_key(labels)
        series = [
            d for k, d in self._histograms.get(name, {}).items() if _matches(k, query)
        ]
        if not series:
            return HistogramData()
        merged = series[0]
        for d in series[1:]:
            merged = merged.merge(d)
        return merged

    def series(self, name: str) -> dict[LabelKey, object]:
        """Every series of one metric, keyed by its canonical label key."""
        for store in (self._counters, self._gauges, self._histograms):
            if name in store:
                return dict(store[name])
        return {}

    def label_values(self, name: str, label: str) -> list[str]:
        """Distinct values one label takes across a metric's series."""
        values = {
            dict(key).get(label)
            for key in self.series(name)
            if dict(key).get(label) is not None
        }
        return sorted(values)

    def metric_names(self) -> list[str]:
        return sorted([*self._counters, *self._gauges, *self._histograms])

    def spans(self, prefix: str | None = None) -> list[SpanRecord]:
        return [s for s in self._spans if prefix is None or s.name.startswith(prefix)]

    # -- diff ------------------------------------------------------------------

    def diff(self, older: "TelemetrySnapshot") -> "TelemetrySnapshot":
        """This snapshot minus an earlier one: one window's activity."""
        counters = {
            name: {
                key: value - older._counters.get(name, {}).get(key, 0)
                for key, value in series.items()
            }
            for name, series in self._counters.items()
        }
        gauges = {
            name: {
                key: value - older._gauges.get(name, {}).get(key, 0.0)
                for key, value in series.items()
            }
            for name, series in self._gauges.items()
        }
        histograms = {}
        for name, series in self._histograms.items():
            out = {}
            for key, data in series.items():
                prev = older._histograms.get(name, {}).get(key)
                if prev is None:
                    out[key] = replace(data)
                else:
                    out[key] = HistogramData(
                        count=data.count - prev.count,
                        total=data.total - prev.total,
                        min=data.min,
                        max=data.max,
                        bounds=data.bounds,
                        bucket_counts=tuple(
                            a - b for a, b in zip(data.bucket_counts, prev.bucket_counts)
                        ),
                    )
            histograms[name] = out
        seen = {s.index for s in older._spans}
        spans = [s for s in self._spans if s.index not in seen]
        return TelemetrySnapshot(counters, gauges, histograms, spans)

    # -- serialisation ---------------------------------------------------------

    def as_dict(self) -> dict:
        """JSON-ready structure (the JSON-summary exporter's payload)."""

        def series_out(store, render):
            return {
                name: [
                    {"labels": dict(key), "value": render(value)}
                    for key, value in sorted(series.items())
                ]
                for name, series in sorted(store.items())
            }

        def render_hist(d: HistogramData) -> dict:
            return {
                "count": d.count,
                "sum": d.total,
                "min": d.min if d.count else None,
                "max": d.max if d.count else None,
                "buckets": [
                    {"le": bound, "count": count}
                    for bound, count in zip(d.bounds, d.bucket_counts)
                ],
            }

        return {
            "counters": series_out(self._counters, lambda v: v),
            "gauges": series_out(self._gauges, lambda v: v),
            "histograms": series_out(self._histograms, render_hist),
            "spans": [s.as_dict() for s in self._spans],
        }

    def to_json(self, **dumps_kwargs) -> str:
        return json.dumps(self.as_dict(), **dumps_kwargs)
