"""Command-line entry point: run one benchmark cell from a shell.

Examples::

    python -m repro.bench MLP MNIST                  # both systems + speedup
    python -m repro.bench CNN VGGFace2 --system par  # ParSecureML only
    python -m repro.bench linear NIST --inference    # forward-only (Fig. 13)
    python -m repro.bench MLP MNIST --serve --clients 8   # serving-layer latency
    python -m repro.bench MLP MNIST --batches 4 --no-extrapolate
    python -m repro.bench MLP MNIST --system par --pool-size 8 \\
        --static-mask-reuse --json BENCH_offline.json  # batched offline phase

Prints the same per-phase numbers the benchmark suite aggregates into
the paper's tables; see ``pytest benchmarks/ --benchmark-only`` for the
full regeneration.
"""

from __future__ import annotations

import argparse
import dataclasses
import json
import sys

from repro.bench.harness import (
    run_fleet,
    run_plain,
    run_secure,
    run_secure_inference,
    run_serving,
    run_wire_comparison,
    run_workload_figures,
)
from repro.bench.workloads import BENCH_DATASETS, BENCH_MODELS, WORKLOAD_MODELS
from repro.core.config import FrameworkConfig


def _configs(
    which: str,
    *,
    pool_size: int = 0,
    static_mask_reuse: bool = False,
    backends: list[str] | None = None,
    runtime: str = "lockstep",
):
    par = FrameworkConfig.parsecureml(activation_protocol="emulated", runtime=runtime)
    sml = FrameworkConfig.secureml(activation_protocol="emulated", runtime=runtime)
    rows = {"par": [("ParSecureML", par)], "sml": [("SecureML", sml)],
            "both": [("SecureML", sml), ("ParSecureML", par)]}[which]
    if (pool_size > 0 or static_mask_reuse) and which in ("par", "both"):
        pooled = dataclasses.replace(
            par, pool_size=pool_size, static_mask_reuse=static_mask_reuse
        )
        rows = [*rows, ("ParSecureML+pool", pooled)]
    if backends:
        rows = [
            (f"{name}[{b}]", dataclasses.replace(cfg, backend=b))
            for name, cfg in rows
            for b in backends
        ]
    return rows


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.bench", description=__doc__,
        formatter_class=argparse.RawDescriptionHelpFormatter,
    )
    parser.add_argument("model", choices=BENCH_MODELS + WORKLOAD_MODELS)
    parser.add_argument("dataset", choices=BENCH_DATASETS)
    parser.add_argument("--system", choices=["par", "sml", "both"], default="both")
    parser.add_argument("--batches", type=int, default=2, help="real batches to measure")
    parser.add_argument("--batch-size", type=int, default=128)
    parser.add_argument(
        "--seed", type=int, default=0,
        help="workload-generation seed; the same seed reproduces the run exactly",
    )
    parser.add_argument("--inference", action="store_true", help="forward pass only")
    parser.add_argument(
        "--serve", action="store_true",
        help="serve the inference rows as ragged multi-client requests "
        "through repro.serve and report p50/p95/p99 request latency",
    )
    parser.add_argument(
        "--clients", type=int, default=4,
        help="logical clients for --serve (default 4)",
    )
    parser.add_argument(
        "--replicas", type=int, default=None,
        help="with --serve: route the clients through a fleet of N "
        "replica deployments instead of one server",
    )
    parser.add_argument(
        "--placement", choices=["hash", "least-depth"], default="least-depth",
        help="fleet placement policy (default least-depth)",
    )
    parser.add_argument(
        "--chaos-seed", type=int, default=None,
        help="with --replicas: add a chaos cell where replica 0's "
        "server1 crashes mid-serve; exits 1 if any request is dropped",
    )
    parser.add_argument(
        "--scale-curve", metavar="N,N,...", default=None,
        help="with --replicas: also run these replica counts clean and "
        "report throughput scaling vs the first (e.g. 1,2,4)",
    )
    parser.add_argument(
        "--conformance", action="store_true",
        help="with --replicas: replay every replica's journal standalone "
        "and require bit-identical transcripts; exits 1 on divergence",
    )
    parser.add_argument("--full-scale", action="store_true", help="NIST at 512x512")
    parser.add_argument(
        "--no-extrapolate", action="store_true",
        help="report measured batches instead of a paper-scale epoch",
    )
    parser.add_argument("--plain", action="store_true",
                        help="also run the non-secure CPU and GPU baselines")
    parser.add_argument(
        "--pool-size", type=int, default=0,
        help="triplet-pool refill batch; adds a ParSecureML+pool row when > 0",
    )
    parser.add_argument(
        "--static-mask-reuse", action="store_true",
        help="cache masked differences of static operands in the pooled row",
    )
    parser.add_argument(
        "--runtime", choices=["lockstep", "dataflow"], default="lockstep",
        help="task scheduling on the simulated clocks: lockstep program-"
        "order placement (default) or the event-driven dataflow scheduler "
        "(repro.runtime.dataflow); values are bit-identical either way",
    )
    parser.add_argument(
        "--backend", action="append", metavar="NAME", default=None,
        help="protocol backend to run (beaver2pc, rep3); repeat the flag "
        "to compare backends side by side in one invocation",
    )
    parser.add_argument(
        "--workloads", action="store_true",
        help="run the attention + recsys workload suite (train and "
        "inference rows per model, plus recsys inference with "
        "compression off) and report makespans, message counts and the "
        "CSR raw-vs-wire byte gap; the committed BENCH_workloads.json "
        "is this suite's output",
    )
    parser.add_argument(
        "--wire", action="store_true",
        help="compare the wire modes (baseline / framed / coalesced) on a "
        "train + serving run: comm bytes, messages, frame overhead, "
        "coalesced messages, makespans and the checksum micro-benchmark",
    )
    parser.add_argument("--json", metavar="PATH",
                        help="also write the result rows as JSON")
    parser.add_argument(
        "--audit", action="store_true",
        help="record a protocol transcript and chi-square each server's "
        "wire view (repro.audit); exits 1 if any link fails the ceiling",
    )
    args = parser.parse_args(argv)
    audit_failed = False

    def _audit_row(res, row):
        nonlocal audit_failed
        if res.wire is None:
            return
        print(f"{'':>16}   {res.wire.summary().replace(chr(10), chr(10) + ' ' * 19)}")
        row["audit_passed"] = res.wire.passed
        row["audit_max_chi2"] = res.wire.max_chi2
        if not res.wire.passed:
            audit_failed = True

    results = []
    rows = []
    if args.workloads:
        for name, cfg in _configs(
            "par", pool_size=args.pool_size,
            static_mask_reuse=args.static_mask_reuse, backends=args.backend,
            runtime=args.runtime,
        ):
            figure_rows = run_workload_figures(
                cfg, n_batches=args.batches, batch_size=args.batch_size,
                seed=args.seed,
            )
            for r in figure_rows:
                tag = r.mode + ("" if r.compression else "/dense")
                print(
                    f"{name + '/' + r.model + '/' + tag:>28}:  "
                    f"online {r.online_s * 1e3:9.3f} ms   "
                    f"offline {r.offline_s * 1e3:9.3f} ms   "
                    f"{r.comm_messages:5d} msgs   {r.comm_bytes:,} B"
                    + (f"   wire {r.wire_comm_bytes:,} / raw {r.raw_comm_bytes:,} B"
                       if r.raw_comm_bytes else "")
                )
                rows.append({
                    "system": name, "backend": cfg.backend, "runtime": cfg.runtime,
                    "model": r.model, "mode": r.mode, "compression": r.compression,
                    "batches": args.batches, "batch_size": args.batch_size,
                    "seed": args.seed,
                    "online_s": r.online_s, "offline_s": r.offline_s,
                    "comm_bytes": r.comm_bytes, "comm_messages": r.comm_messages,
                    "raw_comm_bytes": r.raw_comm_bytes,
                    "wire_comm_bytes": r.wire_comm_bytes,
                })
            csr = [r for r in figure_rows
                   if r.model == "recsys" and r.mode == "infer" and r.compression]
            dense = [r for r in figure_rows
                     if r.model == "recsys" and r.mode == "infer" and not r.compression]
            if csr and dense and dense[0].comm_bytes:
                saved = dense[0].comm_bytes - csr[0].comm_bytes
                print(f"{'':>28}   recsys CSR win: {dense[0].comm_bytes:,} -> "
                      f"{csr[0].comm_bytes:,} B on the wire "
                      f"({saved / dense[0].comm_bytes:.1%} saved)")
        if args.json:
            with open(args.json, "w", encoding="utf-8") as fh:
                json.dump({"argv": argv if argv is not None else sys.argv[1:],
                           "rows": rows}, fh, indent=2)
                fh.write("\n")
            print(f"wrote {args.json}")
        return 0
    if args.wire:
        for name, cfg in _configs(
            "par", pool_size=args.pool_size,
            static_mask_reuse=args.static_mask_reuse, backends=args.backend,
            runtime=args.runtime,
        ):
            res = run_wire_comparison(
                args.model, args.dataset, cfg,
                n_batches=args.batches, batch_size=args.batch_size,
                seed=args.seed, clients=args.clients,
            )
            base = res.cell("baseline")
            for cell in res.cells:
                print(
                    f"{name + '/' + cell.mode:>22}:  "
                    f"train online {cell.train_online_s * 1e3:8.3f} ms   "
                    f"serve online {cell.serve_online_s * 1e3:8.3f} ms   "
                    f"{cell.comm_messages:5d} msgs   "
                    f"{cell.comm_bytes:,} B"
                    + (f"   overhead {cell.frame_overhead_bytes:,} B"
                       if cell.frame_overhead_bytes else "")
                    + (f"   coalesced {cell.coalesced_messages}"
                       if cell.coalesced_messages else "")
                )
                rows.append({
                    "system": name, "model": args.model, "dataset": args.dataset,
                    "backend": cfg.backend, "runtime": cfg.runtime, "wire_mode": cell.mode,
                    "train_online_s": cell.train_online_s,
                    "serve_online_s": cell.serve_online_s,
                    "comm_bytes": cell.comm_bytes,
                    "comm_messages": cell.comm_messages,
                    "frame_overhead_bytes": cell.frame_overhead_bytes,
                    "coalesced_messages": cell.coalesced_messages,
                })
            packed = res.cell("coalesced")
            saved = base.comm_messages - packed.comm_messages
            print(f"{'':>22}   coalescing: {base.comm_messages} -> "
                  f"{packed.comm_messages} msgs ({saved} absorbed)   "
                  f"checksum {res.checksum_frame_us:.0f} us framed vs "
                  f"{res.checksum_pickle_us:.0f} us pickled")
            rows.append({
                "system": name, "model": args.model, "dataset": args.dataset,
                "backend": cfg.backend, "wire_mode": "checksum_microbench",
                "checksum_frame_us": res.checksum_frame_us,
                "checksum_pickle_us": res.checksum_pickle_us,
            })
        if args.json:
            with open(args.json, "w", encoding="utf-8") as fh:
                json.dump({"argv": argv if argv is not None else sys.argv[1:],
                           "rows": rows}, fh, indent=2)
                fh.write("\n")
            print(f"wrote {args.json}")
        return 0
    if args.serve and args.replicas is not None:
        fleet_failed = False
        counts = (
            [int(c) for c in args.scale_curve.split(",")]
            if args.scale_curve else [args.replicas]
        )
        for name, cfg in _configs(
            args.system, pool_size=args.pool_size,
            static_mask_reuse=args.static_mask_reuse, backends=args.backend,
            runtime=args.runtime,
        ):
            base_tput = None
            cells = [(r, None) for r in counts]
            if args.chaos_seed is not None:
                cells.append((args.replicas, args.chaos_seed))
            for n_replicas, chaos_seed in cells:
                res = run_fleet(
                    args.model, args.dataset, cfg,
                    replicas=n_replicas, clients=args.clients,
                    placement=args.placement, batch_size=args.batch_size,
                    seed=args.seed, chaos_seed=chaos_seed,
                    conformance=args.conformance,
                )
                tput = res.rows_per_online_s
                if chaos_seed is None and base_tput is None:
                    base_tput = tput
                scaling = tput / base_tput if base_tput else None
                tag = f"chaos(seed={chaos_seed})" if chaos_seed is not None else "clean"
                print(f"{name:>16}:  {n_replicas} replicas [{tag}]  "
                      f"{res.requests} requests / {res.rows} rows -> "
                      f"{res.batches} batches, {res.crashes} crashes, "
                      f"{res.rerouted} rerouted, {res.dropped} dropped")
                print(f"{'':>16}   p50 {res.p50_s * 1e3:8.3f} ms   "
                      f"p95 {res.p95_s * 1e3:8.3f} ms   "
                      f"{tput:,.0f} rows/s online"
                      + (f"   scaling {scaling:.2f}x" if scaling is not None
                         and chaos_seed is None else ""))
                if res.conformance is not None:
                    verdict = "ok" if res.conformance_ok else "DIVERGED"
                    print(f"{'':>16}   conformance replay: {verdict} "
                          f"({len(res.conformance)} replicas)")
                if res.dropped != 0 or res.conformance_ok is False:
                    fleet_failed = True
                rows.append({
                    "system": name, "model": args.model, "dataset": args.dataset,
                    "backend": cfg.backend,
                    "serve": True, "fleet": True,
                    "replicas": n_replicas, "placement": res.placement,
                    "chaos_seed": chaos_seed,
                    "clients": res.clients, "requests": res.requests,
                    "rows": res.rows, "batches": res.batches,
                    "crashes": res.crashes, "rerouted": res.rerouted,
                    "dropped": res.dropped, "rejected": res.rejected,
                    "offline_s": res.offline_s, "online_s": res.online_s,
                    "p50_s": res.p50_s, "p95_s": res.p95_s, "p99_s": res.p99_s,
                    "rows_per_online_s": tput,
                    "scaling_x": scaling if chaos_seed is None else None,
                    "conformance_ok": res.conformance_ok,
                    "per_replica": res.per_replica,
                })
        if args.json:
            with open(args.json, "w", encoding="utf-8") as fh:
                json.dump({"argv": argv if argv is not None else sys.argv[1:],
                           "rows": rows}, fh, indent=2)
                fh.write("\n")
            print(f"wrote {args.json}")
        return 1 if fleet_failed else 0
    if args.serve:
        for name, cfg in _configs(
            args.system, pool_size=args.pool_size,
            static_mask_reuse=args.static_mask_reuse, backends=args.backend,
            runtime=args.runtime,
        ):
            res = run_serving(
                args.model, args.dataset, cfg,
                clients=args.clients, n_batches=args.batches,
                batch_size=args.batch_size, seed=args.seed, audit=args.audit,
            )
            print(f"{name:>16}:  {res.requests} requests / {res.rows} rows from "
                  f"{res.clients} clients -> {res.batches} batches "
                  f"(fill {res.batch_fill:.0%})")
            print(f"{'':>16}   latency p50 {res.p50_s * 1e3:8.3f} ms   "
                  f"p95 {res.p95_s * 1e3:8.3f} ms   p99 {res.p99_s * 1e3:8.3f} ms   "
                  f"{res.rows_per_online_s:,.0f} rows/s online")
            rows.append({
                "system": name, "model": args.model, "dataset": args.dataset,
                "backend": cfg.backend,
                "serve": True, "clients": res.clients, "requests": res.requests,
                "rows": res.rows, "batches": res.batches,
                "batch_fill": res.batch_fill, "padded_rows": res.padded_rows,
                "retried_batches": res.retried_batches,
                "offline_s": res.offline_s, "online_s": res.online_s,
                "p50_s": res.p50_s, "p95_s": res.p95_s, "p99_s": res.p99_s,
            })
            _audit_row(res, rows[-1])
        if args.json:
            with open(args.json, "w", encoding="utf-8") as fh:
                json.dump({"argv": argv if argv is not None else sys.argv[1:],
                           "rows": rows}, fh, indent=2)
                fh.write("\n")
            print(f"wrote {args.json}")
        return 1 if audit_failed else 0
    for name, cfg in _configs(
        args.system, pool_size=args.pool_size,
        static_mask_reuse=args.static_mask_reuse, backends=args.backend,
        runtime=args.runtime,
    ):
        if args.inference:
            res = run_secure_inference(
                args.model, args.dataset, cfg,
                n_batches=args.batches, batch_size=args.batch_size, seed=args.seed,
                audit=args.audit,
            )
        else:
            res = run_secure(
                args.model, args.dataset, cfg,
                n_batches=args.batches, batch_size=args.batch_size, seed=args.seed,
                full_scale=args.full_scale, audit=args.audit,
            )
        n = args.batches if args.no_extrapolate else None
        scope = f"{args.batches} measured batches" if args.no_extrapolate else (
            f"one paper-scale epoch ({res.spec.paper_batches} batches)"
        )
        label = f"{name:>16}" if args.pool_size or args.static_mask_reuse else f"{name:>12}"
        print(f"{label}:  offline {res.offline_s(n):10.3f}s   "
              f"online {res.online_s(n):10.3f}s   total {res.total_s(n):10.3f}s   [{scope}]")
        results.append((name, res.total_s(n)))
        rows.append({
            "system": name,
            "model": args.model,
            "dataset": args.dataset,
            "backend": cfg.backend,
            "runtime": cfg.runtime,
            "offline_s": res.offline_s(n),
            "online_s": res.online_s(n),
            "total_s": res.total_s(n),
            "scope": scope,
            "server_bytes": res.server_bytes,
            "raw_comm_bytes": res.raw_comm_bytes,
            "wire_comm_bytes": res.wire_comm_bytes,
            "pool_size": cfg.pool_size,
            "static_mask_reuse": cfg.static_mask_reuse,
        })
        _audit_row(res, rows[-1])

    if args.plain and not args.inference:
        for device in ("cpu", "gpu"):
            res = run_plain(
                args.model, args.dataset, device,
                n_batches=args.batches, batch_size=args.batch_size, seed=args.seed,
                tensor_core=(device == "gpu"), full_scale=args.full_scale,
            )
            n = args.batches if args.no_extrapolate else None
            print(f"{'plain-' + device:>12}:  total {res.total_s(n):10.3f}s")
            results.append((f"plain-{device}", res.total_s(n)))

    if len(results) >= 2 and results[0][1] > 0:
        base_name, base = results[0]
        for name, total in results[1:]:
            if total > 0:
                print(f"{base_name} / {name} = {base / total:.1f}x")

    if args.json:
        with open(args.json, "w", encoding="utf-8") as fh:
            json.dump({"argv": argv if argv is not None else sys.argv[1:],
                       "rows": rows}, fh, indent=2)
            fh.write("\n")
        print(f"wrote {args.json}")
    return 1 if audit_failed else 0


if __name__ == "__main__":
    sys.exit(main())
