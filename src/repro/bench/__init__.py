"""Benchmark harness regenerating every table and figure of Section 7.

* :mod:`repro.bench.workloads` — the model x dataset grid of Section
  7.1, with the (documented) geometry reductions that keep a pure-Python
  run tractable;
* :mod:`repro.bench.harness` — runs one (model, dataset, system)
  configuration and extrapolates per-batch costs to paper-scale sample
  counts;
* :mod:`repro.bench.reporting` — plain-text tables matching the paper's
  row/column structure.

The pytest-benchmark files under ``benchmarks/`` are thin wrappers over
this package; each prints its table/figure and asserts the paper's
*shape* claims (who wins, monotonicity, rough factors).
"""

from repro.bench.workloads import (
    WorkloadSpec,
    BENCH_DATASETS,
    BENCH_MODELS,
    benchmark_grid,
    build_secure_model,
    build_plain_model,
    load_workload,
)
from repro.bench.harness import (
    SecureRunResult,
    PlainRunResult,
    run_secure,
    run_plain,
    run_secure_inference,
    run_plain_inference,
)
from repro.bench.reporting import format_table, format_speedup_series, geomean

__all__ = [
    "WorkloadSpec",
    "BENCH_DATASETS",
    "BENCH_MODELS",
    "benchmark_grid",
    "build_secure_model",
    "build_plain_model",
    "load_workload",
    "SecureRunResult",
    "PlainRunResult",
    "run_secure",
    "run_plain",
    "run_secure_inference",
    "run_plain_inference",
    "format_table",
    "format_speedup_series",
    "geomean",
]
