"""Run one benchmark cell and extrapolate to paper scale.

The harness runs a small number of *real* batches (full protocol, full
numerics) and scales the marginal per-batch simulated cost to the
paper's sample counts — legitimate because the per-batch protocol work
is identical across batches (same shapes, same ops) and the simulated
clock is deterministic.  One-time setup (triplet-stream generation) is
kept separate and added once.

Every figure is read out of the context's telemetry snapshot (phase
gauges, channel counters, compression counters, the
``train.share_dataset`` / ``train.batch`` spans) rather than from ad-hoc
driver bookkeeping, so the benchmarks exercise the same observability
surface users see in ``ctx.telemetry.report()``.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.bench.workloads import WorkloadSpec, build_plain_model, build_secure_model, load_workload
from repro.baselines.plain import PlainTimer, PlainTrainer
from repro.core.config import FrameworkConfig
from repro.core.context import SecureContext
from repro.core.inference import secure_predict
from repro.core.tensor import SharedTensor
from repro.core.training import SecureTrainer


@dataclass
class SecureRunResult:
    """Measured + extrapolated costs of one secure run.

    Extrapolation model: offline = one-shot dataset sharing (linear in
    sample count) + one-time triplet setup; online = marginal per-batch
    cost x batch count.
    """

    spec: WorkloadSpec
    measured_batches: int
    measured_samples: int
    sharing_offline_s: float
    setup_offline_s: float
    per_batch_online_s: float
    server_bytes: int
    raw_comm_bytes: int
    wire_comm_bytes: int
    losses: list

    def offline_s(self, n_batches: int | None = None) -> float:
        n = self.spec.paper_batches if n_batches is None else n_batches
        samples = n * self.spec.batch_size
        scale = samples / max(self.measured_samples, 1)
        return self.sharing_offline_s * scale + self.setup_offline_s

    def online_s(self, n_batches: int | None = None) -> float:
        n = self.spec.paper_batches if n_batches is None else n_batches
        return self.per_batch_online_s * n

    def total_s(self, n_batches: int | None = None) -> float:
        return self.offline_s(n_batches) + self.online_s(n_batches)

    @property
    def occupancy(self) -> float:
        total = self.total_s()
        return self.online_s() / total if total else 0.0

    @property
    def compression_savings(self) -> float:
        if self.raw_comm_bytes == 0:
            return 0.0
        return 1.0 - self.wire_comm_bytes / self.raw_comm_bytes


@dataclass
class PlainRunResult:
    """Measured + extrapolated costs of one plain (non-secure) run."""

    spec: WorkloadSpec
    measured_batches: int
    per_batch_s: float
    losses: list

    def total_s(self, n_batches: int | None = None) -> float:
        n = self.spec.paper_batches if n_batches is None else n_batches
        return self.per_batch_s * n


def _secure_result_from_snapshot(
    ctx: SecureContext,
    spec: WorkloadSpec,
    *,
    batches: int,
    samples: int,
    span_prefix: str,
    losses: list,
) -> SecureRunResult:
    """Assemble a :class:`SecureRunResult` from the run's telemetry.

    The context is fresh per run, so the snapshot *is* the run: phase
    gauges give the clock frontiers, ``<prefix>.share_dataset`` the
    one-shot sharing cost, the ``<prefix>.batch`` span tail the marginal
    online cost (first batch excluded — lazy placement decisions make it
    atypical), and the comm counters the traffic.
    """
    snap = ctx.telemetry.snapshot()
    sharing = sum(s.sim_duration for s in snap.spans(f"{span_prefix}.share_dataset"))
    offline_total = snap.gauge("phase.sim_seconds", clock="offline")
    batch_spans = snap.spans(f"{span_prefix}.batch")
    tail = batch_spans[1:] or batch_spans
    per_batch = sum(s.sim_duration for s in tail) / len(tail) if tail else 0.0
    return SecureRunResult(
        spec=spec,
        measured_batches=batches,
        measured_samples=samples,
        sharing_offline_s=sharing,
        setup_offline_s=max(0.0, offline_total - sharing),
        per_batch_online_s=per_batch,
        server_bytes=int(snap.counter("comm.bytes", channel=ctx.server_channel.label)),
        raw_comm_bytes=int(snap.counter("comm.compression.raw_bytes")),
        wire_comm_bytes=int(snap.counter("comm.compression.wire_bytes")),
        losses=losses,
    )


def run_secure(
    model_name: str,
    dataset: str,
    config: FrameworkConfig,
    *,
    n_batches: int = 2,
    batch_size: int = 128,
    seed: int = 0,
    lr: float = 0.03125,
    full_scale: bool = False,
) -> SecureRunResult:
    """Train one secure grid cell for ``n_batches`` real batches."""
    x, y, spec = load_workload(
        model_name, dataset, n_batches=n_batches, batch_size=batch_size, seed=seed,
        full_scale=full_scale,
    )
    ctx = SecureContext.create(config)
    model = build_secure_model(ctx, spec)
    trainer = SecureTrainer(ctx, model, lr=lr, monitor_loss=False)
    report = trainer.train(x, y, epochs=1, batch_size=batch_size)
    return _secure_result_from_snapshot(
        ctx,
        spec,
        batches=report.batches,
        samples=report.dataset_samples,
        span_prefix="train",
        losses=report.losses,
    )


def run_plain(
    model_name: str,
    dataset: str,
    device: str,
    *,
    n_batches: int = 2,
    batch_size: int = 128,
    seed: int = 0,
    lr: float = 0.03125,
    tensor_core: bool = False,
    full_scale: bool = False,
) -> PlainRunResult:
    """Train one plain grid cell on 'cpu' or 'gpu' timing."""
    x, y, spec = load_workload(
        model_name, dataset, n_batches=n_batches, batch_size=batch_size, seed=seed,
        full_scale=full_scale,
    )
    timer = PlainTimer(device, tensor_core=tensor_core)
    model = build_plain_model(spec, seed=seed)
    trainer = PlainTrainer(model, timer, lr=lr)
    report = trainer.train(x, y, epochs=1, batch_size=batch_size)
    return PlainRunResult(
        spec=spec,
        measured_batches=report.batches,
        per_batch_s=report.seconds / max(report.batches, 1),
        losses=report.losses,
    )


def run_secure_inference(
    model_name: str,
    dataset: str,
    config: FrameworkConfig,
    *,
    n_batches: int = 2,
    batch_size: int = 128,
    seed: int = 0,
) -> SecureRunResult:
    """Forward-only secure run (Fig. 13)."""
    x, _y, spec = load_workload(
        model_name, dataset, n_batches=n_batches, batch_size=batch_size, seed=seed
    )
    ctx = SecureContext.create(config)
    model = build_secure_model(ctx, spec)
    rep = secure_predict(ctx, model, x, batch_size=batch_size, max_batches=n_batches)
    return _secure_result_from_snapshot(
        ctx,
        spec,
        batches=rep.batches,
        samples=rep.dataset_samples,
        span_prefix="infer",
        losses=[],
    )


def run_plain_inference(
    model_name: str,
    dataset: str,
    device: str,
    *,
    n_batches: int = 2,
    batch_size: int = 128,
    seed: int = 0,
    tensor_core: bool = False,
) -> PlainRunResult:
    x, _y, spec = load_workload(
        model_name, dataset, n_batches=n_batches, batch_size=batch_size, seed=seed
    )
    timer = PlainTimer(device, tensor_core=tensor_core)
    model = build_plain_model(spec, seed=seed)
    trainer = PlainTrainer(model, timer)
    _, seconds = trainer.predict(x, batch_size=batch_size, max_batches=n_batches)
    return PlainRunResult(
        spec=spec,
        measured_batches=n_batches,
        per_batch_s=seconds / max(n_batches, 1),
        losses=[],
    )
