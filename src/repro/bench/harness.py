"""Run one benchmark cell and extrapolate to paper scale.

The harness runs a small number of *real* batches (full protocol, full
numerics) and scales the marginal per-batch simulated cost to the
paper's sample counts — legitimate because the per-batch protocol work
is identical across batches (same shapes, same ops) and the simulated
clock is deterministic.  One-time setup (triplet-stream generation) is
kept separate and added once.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.bench.workloads import WorkloadSpec, build_plain_model, build_secure_model, load_workload
from repro.baselines.plain import PlainTimer, PlainTrainer
from repro.core.config import FrameworkConfig
from repro.core.context import SecureContext
from repro.core.inference import secure_predict
from repro.core.tensor import SharedTensor
from repro.core.training import SecureTrainer


@dataclass
class SecureRunResult:
    """Measured + extrapolated costs of one secure run.

    Extrapolation model: offline = one-shot dataset sharing (linear in
    sample count) + one-time triplet setup; online = marginal per-batch
    cost x batch count.
    """

    spec: WorkloadSpec
    measured_batches: int
    measured_samples: int
    sharing_offline_s: float
    setup_offline_s: float
    per_batch_online_s: float
    server_bytes: int
    raw_comm_bytes: int
    wire_comm_bytes: int
    losses: list

    def offline_s(self, n_batches: int | None = None) -> float:
        n = self.spec.paper_batches if n_batches is None else n_batches
        samples = n * self.spec.batch_size
        scale = samples / max(self.measured_samples, 1)
        return self.sharing_offline_s * scale + self.setup_offline_s

    def online_s(self, n_batches: int | None = None) -> float:
        n = self.spec.paper_batches if n_batches is None else n_batches
        return self.per_batch_online_s * n

    def total_s(self, n_batches: int | None = None) -> float:
        return self.offline_s(n_batches) + self.online_s(n_batches)

    @property
    def occupancy(self) -> float:
        total = self.total_s()
        return self.online_s() / total if total else 0.0

    @property
    def compression_savings(self) -> float:
        if self.raw_comm_bytes == 0:
            return 0.0
        return 1.0 - self.wire_comm_bytes / self.raw_comm_bytes


@dataclass
class PlainRunResult:
    """Measured + extrapolated costs of one plain (non-secure) run."""

    spec: WorkloadSpec
    measured_batches: int
    per_batch_s: float
    losses: list

    def total_s(self, n_batches: int | None = None) -> float:
        n = self.spec.paper_batches if n_batches is None else n_batches
        return self.per_batch_s * n


def run_secure(
    model_name: str,
    dataset: str,
    config: FrameworkConfig,
    *,
    n_batches: int = 2,
    batch_size: int = 128,
    seed: int = 0,
    lr: float = 0.03125,
    full_scale: bool = False,
) -> SecureRunResult:
    """Train one secure grid cell for ``n_batches`` real batches."""
    x, y, spec = load_workload(
        model_name, dataset, n_batches=n_batches, batch_size=batch_size, seed=seed,
        full_scale=full_scale,
    )
    ctx = SecureContext(config)
    model = build_secure_model(ctx, spec)
    trainer = SecureTrainer(ctx, model, lr=lr, monitor_loss=False)
    report = trainer.train(x, y, epochs=1, batch_size=batch_size)
    return SecureRunResult(
        spec=spec,
        measured_batches=report.batches,
        measured_samples=report.dataset_samples,
        sharing_offline_s=report.sharing_offline_s,
        setup_offline_s=report.setup_offline_s,
        per_batch_online_s=report.marginal_online_s,
        server_bytes=report.server_bytes,
        raw_comm_bytes=report.raw_comm_bytes,
        wire_comm_bytes=report.wire_comm_bytes,
        losses=report.losses,
    )


def run_plain(
    model_name: str,
    dataset: str,
    device: str,
    *,
    n_batches: int = 2,
    batch_size: int = 128,
    seed: int = 0,
    lr: float = 0.03125,
    tensor_core: bool = False,
    full_scale: bool = False,
) -> PlainRunResult:
    """Train one plain grid cell on 'cpu' or 'gpu' timing."""
    x, y, spec = load_workload(
        model_name, dataset, n_batches=n_batches, batch_size=batch_size, seed=seed,
        full_scale=full_scale,
    )
    timer = PlainTimer(device, tensor_core=tensor_core)
    model = build_plain_model(spec, seed=seed)
    trainer = PlainTrainer(model, timer, lr=lr)
    report = trainer.train(x, y, epochs=1, batch_size=batch_size)
    return PlainRunResult(
        spec=spec,
        measured_batches=report.batches,
        per_batch_s=report.seconds / max(report.batches, 1),
        losses=report.losses,
    )


def run_secure_inference(
    model_name: str,
    dataset: str,
    config: FrameworkConfig,
    *,
    n_batches: int = 2,
    batch_size: int = 128,
    seed: int = 0,
) -> SecureRunResult:
    """Forward-only secure run (Fig. 13)."""
    x, _y, spec = load_workload(
        model_name, dataset, n_batches=n_batches, batch_size=batch_size, seed=seed
    )
    ctx = SecureContext(config)
    model = build_secure_model(ctx, spec)
    rep = secure_predict(ctx, model, x, batch_size=batch_size, max_batches=n_batches)
    return SecureRunResult(
        spec=spec,
        measured_batches=rep.batches,
        measured_samples=rep.dataset_samples,
        sharing_offline_s=rep.sharing_offline_s,
        setup_offline_s=rep.setup_offline_s,
        per_batch_online_s=rep.marginal_online_s,
        server_bytes=rep.server_bytes,
        raw_comm_bytes=0,
        wire_comm_bytes=0,
        losses=[],
    )


def run_plain_inference(
    model_name: str,
    dataset: str,
    device: str,
    *,
    n_batches: int = 2,
    batch_size: int = 128,
    seed: int = 0,
    tensor_core: bool = False,
) -> PlainRunResult:
    x, _y, spec = load_workload(
        model_name, dataset, n_batches=n_batches, batch_size=batch_size, seed=seed
    )
    timer = PlainTimer(device, tensor_core=tensor_core)
    model = build_plain_model(spec, seed=seed)
    trainer = PlainTrainer(model, timer)
    _, seconds = trainer.predict(x, batch_size=batch_size, max_batches=n_batches)
    return PlainRunResult(
        spec=spec,
        measured_batches=n_batches,
        per_batch_s=seconds / max(n_batches, 1),
        losses=[],
    )
