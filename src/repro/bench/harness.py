"""Run one benchmark cell and extrapolate to paper scale.

The harness runs a small number of *real* batches (full protocol, full
numerics) and scales the marginal per-batch simulated cost to the
paper's sample counts — legitimate because the per-batch protocol work
is identical across batches (same shapes, same ops) and the simulated
clock is deterministic.  One-time setup (triplet-stream generation) is
kept separate and added once.

Every figure is read out of the context's telemetry snapshot (phase
gauges, channel counters, compression counters, the
``train.share_dataset`` / ``train.batch`` spans) rather than from ad-hoc
driver bookkeeping, so the benchmarks exercise the same observability
surface users see in ``ctx.telemetry.report()``.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.audit.wire import audit_context
from repro.bench.workloads import WorkloadSpec, build_plain_model, build_secure_model, load_workload
from repro.baselines.plain import PlainTimer, PlainTrainer
from repro.core.config import FrameworkConfig
from repro.core.context import SecureContext
from repro.core.inference import secure_predict
from repro.core.tensor import SharedTensor
from repro.core.training import SecureTrainer


@dataclass
class SecureRunResult:
    """Measured + extrapolated costs of one secure run.

    Extrapolation model: offline = one-shot dataset sharing (linear in
    sample count) + one-time triplet setup; online = marginal per-batch
    cost x batch count.
    """

    spec: WorkloadSpec
    measured_batches: int
    measured_samples: int
    sharing_offline_s: float
    setup_offline_s: float
    per_batch_online_s: float
    server_bytes: int
    raw_comm_bytes: int
    wire_comm_bytes: int
    losses: list
    #: Wire-view audit of the run's recorded traffic (``audit=True`` only).
    wire: object | None = None

    def offline_s(self, n_batches: int | None = None) -> float:
        n = self.spec.paper_batches if n_batches is None else n_batches
        samples = n * self.spec.batch_size
        scale = samples / max(self.measured_samples, 1)
        return self.sharing_offline_s * scale + self.setup_offline_s

    def online_s(self, n_batches: int | None = None) -> float:
        n = self.spec.paper_batches if n_batches is None else n_batches
        return self.per_batch_online_s * n

    def total_s(self, n_batches: int | None = None) -> float:
        return self.offline_s(n_batches) + self.online_s(n_batches)

    @property
    def occupancy(self) -> float:
        total = self.total_s()
        return self.online_s() / total if total else 0.0

    @property
    def compression_savings(self) -> float:
        if self.raw_comm_bytes == 0:
            return 0.0
        return 1.0 - self.wire_comm_bytes / self.raw_comm_bytes


@dataclass
class PlainRunResult:
    """Measured + extrapolated costs of one plain (non-secure) run."""

    spec: WorkloadSpec
    measured_batches: int
    per_batch_s: float
    losses: list

    def total_s(self, n_batches: int | None = None) -> float:
        n = self.spec.paper_batches if n_batches is None else n_batches
        return self.per_batch_s * n


def _secure_result_from_snapshot(
    ctx: SecureContext,
    spec: WorkloadSpec,
    *,
    batches: int,
    samples: int,
    span_prefix: str,
    losses: list,
) -> SecureRunResult:
    """Assemble a :class:`SecureRunResult` from the run's telemetry.

    The context is fresh per run, so the snapshot *is* the run: phase
    gauges give the clock frontiers, ``<prefix>.share_dataset`` the
    one-shot sharing cost, the ``<prefix>.batch`` span tail the marginal
    online cost (first batch excluded — lazy placement decisions make it
    atypical), and the comm counters the traffic.
    """
    snap = ctx.telemetry.snapshot()
    sharing = sum(s.sim_duration for s in snap.spans(f"{span_prefix}.share_dataset"))
    offline_total = snap.gauge("phase.sim_seconds", clock="offline")
    batch_spans = snap.spans(f"{span_prefix}.batch")
    tail = batch_spans[1:] or batch_spans
    per_batch = sum(s.sim_duration for s in tail) / len(tail) if tail else 0.0
    return SecureRunResult(
        spec=spec,
        measured_batches=batches,
        measured_samples=samples,
        sharing_offline_s=sharing,
        setup_offline_s=max(0.0, offline_total - sharing),
        per_batch_online_s=per_batch,
        server_bytes=sum(
            int(snap.counter("comm.bytes", channel=link.label))
            for link in ctx.server_links.values()
        ),
        raw_comm_bytes=int(snap.counter("comm.compression.raw_bytes")),
        wire_comm_bytes=int(snap.counter("comm.compression.wire_bytes")),
        losses=losses,
    )


def run_secure(
    model_name: str,
    dataset: str,
    config: FrameworkConfig,
    *,
    n_batches: int = 2,
    batch_size: int = 128,
    seed: int = 0,
    lr: float = 0.03125,
    full_scale: bool = False,
    audit: bool = False,
) -> SecureRunResult:
    """Train one secure grid cell for ``n_batches`` real batches."""
    x, y, spec = load_workload(
        model_name, dataset, n_batches=n_batches, batch_size=batch_size, seed=seed,
        full_scale=full_scale,
    )
    ctx = SecureContext.create(config)
    if audit:
        ctx.attach_recorder()
    model = build_secure_model(ctx, spec)
    trainer = SecureTrainer(ctx, model, lr=lr, monitor_loss=False)
    report = trainer.train(x, y, epochs=1, batch_size=batch_size)
    res = _secure_result_from_snapshot(
        ctx,
        spec,
        batches=report.batches,
        samples=report.dataset_samples,
        span_prefix="train",
        losses=report.losses,
    )
    if audit:
        res.wire = audit_context(ctx)
    return res


def run_plain(
    model_name: str,
    dataset: str,
    device: str,
    *,
    n_batches: int = 2,
    batch_size: int = 128,
    seed: int = 0,
    lr: float = 0.03125,
    tensor_core: bool = False,
    full_scale: bool = False,
) -> PlainRunResult:
    """Train one plain grid cell on 'cpu' or 'gpu' timing."""
    x, y, spec = load_workload(
        model_name, dataset, n_batches=n_batches, batch_size=batch_size, seed=seed,
        full_scale=full_scale,
    )
    timer = PlainTimer(device, tensor_core=tensor_core)
    model = build_plain_model(spec, seed=seed)
    trainer = PlainTrainer(model, timer, lr=lr)
    report = trainer.train(x, y, epochs=1, batch_size=batch_size)
    return PlainRunResult(
        spec=spec,
        measured_batches=report.batches,
        per_batch_s=report.seconds / max(report.batches, 1),
        losses=report.losses,
    )


def run_secure_inference(
    model_name: str,
    dataset: str,
    config: FrameworkConfig,
    *,
    n_batches: int = 2,
    batch_size: int = 128,
    seed: int = 0,
    audit: bool = False,
) -> SecureRunResult:
    """Forward-only secure run (Fig. 13)."""
    x, _y, spec = load_workload(
        model_name, dataset, n_batches=n_batches, batch_size=batch_size, seed=seed
    )
    ctx = SecureContext.create(config)
    if audit:
        ctx.attach_recorder()
    model = build_secure_model(ctx, spec)
    rep = secure_predict(ctx, model, x, batch_size=batch_size, max_batches=n_batches)
    res = _secure_result_from_snapshot(
        ctx,
        spec,
        batches=rep.batches,
        samples=rep.dataset_samples,
        span_prefix="infer",
        losses=[],
    )
    if audit:
        res.wire = audit_context(ctx)
    return res


@dataclass
class ServingRunResult:
    """One serving benchmark: many ragged clients through one context."""

    spec: WorkloadSpec
    clients: int
    requests: int
    rows: int
    batches: int
    padded_rows: int
    retried_batches: int
    offline_s: float
    online_s: float
    p50_s: float
    p95_s: float
    p99_s: float
    wire: object | None = None

    @property
    def rows_per_online_s(self) -> float:
        return self.rows / self.online_s if self.online_s else 0.0

    @property
    def batch_fill(self) -> float:
        total = self.rows + self.padded_rows
        return self.rows / total if total else 0.0


def run_serving(
    model_name: str,
    dataset: str,
    config: FrameworkConfig,
    *,
    clients: int = 4,
    n_batches: int = 2,
    batch_size: int = 128,
    seed: int = 0,
    audit: bool = False,
) -> ServingRunResult:
    """Serve the workload's rows as ragged multi-client requests.

    The same rows :func:`run_secure_inference` measures, but arriving as
    many small requests from ``clients`` logical clients instead of one
    pre-batched array — the serving layer coalesces them back into
    fixed-shape batches, so the delta against the plain inference run is
    the queueing/padding overhead of the service, and the p50/p95/p99
    come straight out of the request-latency histogram.
    """
    from repro.serve import Replica

    x, _y, spec = load_workload(
        model_name, dataset, n_batches=n_batches, batch_size=batch_size, seed=seed
    )
    ctx = SecureContext.create(config)
    model = build_secure_model(ctx, spec)
    server = Replica(
        ctx, model, max_batch=batch_size,
        queue_rows=max(x.shape[0], batch_size), audit=audit,
    )
    rng = np.random.default_rng(seed)
    lo = 0
    requests = 0
    while lo < x.shape[0]:
        rows = min(int(rng.integers(1, batch_size + 1)), x.shape[0] - lo)
        server.submit(f"client{requests % clients}", x[lo : lo + rows])
        lo += rows
        requests += 1
    server.drain()
    rep = server.report()
    return ServingRunResult(
        spec=spec,
        clients=clients,
        requests=requests,
        rows=rep.served_rows,
        batches=rep.batches,
        padded_rows=rep.padded_rows,
        retried_batches=rep.retried_batches,
        offline_s=rep.offline_s,
        online_s=rep.online_s,
        p50_s=rep.latency["p50"],
        p95_s=rep.latency["p95"],
        p99_s=rep.latency["p99"],
        wire=server.wire_audit() if audit else None,
    )


@dataclass
class FleetRunResult:
    """One fleet benchmark: many logical clients over N routed replicas."""

    spec: WorkloadSpec
    replicas: int
    placement: str
    clients: int
    requests: int
    rows: int
    batches: int
    rerouted: int
    crashes: int
    dropped: int
    rejected: int
    offline_s: float
    online_s: float  # fleet makespan: max over replica online clocks
    p50_s: float
    p95_s: float
    p99_s: float
    per_replica: dict
    chaos_seed: int | None = None
    conformance: dict | None = None  # replica -> None (ok) | divergence str

    @property
    def rows_per_online_s(self) -> float:
        return self.rows / self.online_s if self.online_s else 0.0

    @property
    def conformance_ok(self) -> bool | None:
        if self.conformance is None:
            return None
        return all(v is None for v in self.conformance.values())


def run_fleet(
    model_name: str,
    dataset: str,
    config: FrameworkConfig,
    *,
    replicas: int = 4,
    clients: int = 1000,
    placement: str = "least-depth",
    batch_size: int = 128,
    seed: int = 0,
    chaos_seed: int | None = None,
    conformance: bool = False,
) -> FleetRunResult:
    """Serve ``clients`` small requests through a routed replica fleet.

    Each logical client submits one 1–4 row request drawn (cyclically)
    from the workload's rows; the fleet shards them across ``replicas``
    deployments.  ``online_s`` is the fleet *makespan* — the max over
    each replica's own online clock — so throughput scaling across
    replica counts reads straight off ``rows_per_online_s``.

    With ``chaos_seed`` set, replica 0 runs under a
    :class:`~repro.faults.FaultPlan` that crashes ``server1`` mid-serve
    while the fleet retry budget is zero, forcing the crash through the
    router's recovery path (drain back, respawn, re-route) — the cell
    proves the zero-drop contract, not peak throughput.  With
    ``conformance`` on, every replica's journal is replayed standalone
    and diffed bit-for-bit (requires the audit recorder, so it is
    enabled automatically).
    """
    from repro.faults import FaultPlan, PartyCrash
    from repro.serve.fleet import SecureServingFleet
    from repro.util.errors import QueueFullError

    x, _y, spec = load_workload(
        model_name, dataset, n_batches=2, batch_size=batch_size, seed=seed
    )
    replica_config = None
    request_retries = 2
    if chaos_seed is not None:
        plan = FaultPlan(
            seed=chaos_seed, crashes=(PartyCrash("server1", at_step=3),)
        )
        request_retries = 0

        def replica_config(index, cfg):
            return cfg.but(fault_plan=plan) if index == 0 else cfg

    # Pre-generate the request stream so the admission bound can be sized
    # to the offered load: the cell measures sharded serving throughput,
    # not admission control, so backpressure-driven partial batches would
    # only blur the scaling curve.
    rng = np.random.default_rng(seed)
    stream = []
    lo = 0
    for i in range(clients):
        rows = int(rng.integers(1, 5))
        if lo + rows > x.shape[0]:
            lo = 0
        stream.append((f"client{i}", x[lo : lo + rows]))
        lo += rows
    total_rows = sum(chunk.shape[0] for _c, chunk in stream)
    fleet = SecureServingFleet(
        lambda ctx: build_secure_model(ctx, spec),
        replicas=replicas,
        config=config,
        replica_config=replica_config,
        placement=placement,
        max_batch=batch_size,
        queue_rows=max(total_rows, batch_size),
        request_retries=request_retries,
        audit=conformance,
    )
    for client, chunk in stream:
        try:
            fleet.submit(client, chunk)
        except QueueFullError:  # retryable backpressure: serve, then resubmit
            fleet.pump()
            fleet.submit(client, chunk)
    fleet.drain()
    rep = fleet.report()
    per_replica = {
        name: {
            "served_requests": r.served_requests,
            "served_rows": r.served_rows,
            "batches": r.batches,
            "padded_rows": r.padded_rows,
            "retried_batches": r.retried_batches,
            "provisioned_triplets": r.provisioned_triplets,
            "offline_s": r.offline_s,
            "online_s": r.online_s,
            "p95_s": r.latency.get("p95", 0.0),
        }
        for name, r in rep.replicas.items()
    }
    return FleetRunResult(
        spec=spec,
        replicas=replicas,
        placement=placement,
        clients=clients,
        requests=rep.served_requests + rep.pending_requests,
        rows=rep.served_rows,
        batches=rep.batches,
        rerouted=rep.rerouted_requests,
        crashes=rep.replica_crashes,
        dropped=rep.dropped_requests,
        rejected=rep.rejected_requests,
        offline_s=rep.offline_s,
        online_s=rep.online_s,
        p50_s=rep.latency["p50"],
        p95_s=rep.latency["p95"],
        p99_s=rep.latency["p99"],
        per_replica=per_replica,
        chaos_seed=chaos_seed,
        conformance=fleet.verify_conformance() if conformance else None,
    )


def run_plain_inference(
    model_name: str,
    dataset: str,
    device: str,
    *,
    n_batches: int = 2,
    batch_size: int = 128,
    seed: int = 0,
    tensor_core: bool = False,
) -> PlainRunResult:
    x, _y, spec = load_workload(
        model_name, dataset, n_batches=n_batches, batch_size=batch_size, seed=seed
    )
    timer = PlainTimer(device, tensor_core=tensor_core)
    model = build_plain_model(spec, seed=seed)
    trainer = PlainTrainer(model, timer)
    _, seconds = trainer.predict(x, batch_size=batch_size, max_batches=n_batches)
    return PlainRunResult(
        spec=spec,
        measured_batches=n_batches,
        per_batch_s=seconds / max(n_batches, 1),
        losses=[],
    )


# --------------------------------------------------------------------------
# Wire codec comparison (repro.comm.wire): baseline vs framed vs coalesced
# --------------------------------------------------------------------------

#: The three wire modes the comparison sweeps, as config overrides.
WIRE_MODES: tuple[tuple[str, dict], ...] = (
    ("baseline", {}),
    ("framed", {"wire_frames": True}),
    ("coalesced", {"coalesce_rounds": True}),
)


@dataclass
class WireRunCell:
    """Comm accounting of one wire mode over a train + serving run."""

    mode: str
    train_online_s: float
    serve_online_s: float
    comm_bytes: int
    comm_messages: int
    frame_overhead_bytes: int
    coalesced_messages: int


@dataclass
class WireComparisonResult:
    """Fig. 10-style traffic comparison across the wire modes.

    ``cells`` holds one entry per :data:`WIRE_MODES` mode; the checksum
    fields are the per-call microseconds of the frame-CRC payload
    checksum vs the historical pickle-then-CRC on a 512x512 ring matrix
    (the ReliableTransport per-frame hotspot the codec replaced).
    """

    spec: WorkloadSpec
    cells: list[WireRunCell]
    checksum_frame_us: float
    checksum_pickle_us: float

    def cell(self, mode: str) -> WireRunCell:
        for c in self.cells:
            if c.mode == mode:
                return c
        raise KeyError(mode)


def _checksum_microbench(reps: int = 5) -> tuple[float, float]:
    """Per-call microseconds: frame-CRC vs pickle-CRC of a 512x512 matrix."""
    import pickle
    import time
    import zlib

    from repro.comm.wire import payload_checksum

    payload = np.random.default_rng(0).integers(
        0, 2**64, size=(512, 512), dtype=np.uint64
    )
    t0 = time.perf_counter()
    for _ in range(reps):
        payload_checksum(payload)
    frame_us = (time.perf_counter() - t0) / reps * 1e6
    t0 = time.perf_counter()
    for _ in range(reps):
        zlib.crc32(pickle.dumps(payload, protocol=4))
    pickle_us = (time.perf_counter() - t0) / reps * 1e6
    return frame_us, pickle_us


def run_wire_comparison(
    model_name: str,
    dataset: str,
    config: FrameworkConfig,
    *,
    n_batches: int = 2,
    batch_size: int = 128,
    seed: int = 0,
    lr: float = 0.03125,
    clients: int = 4,
) -> WireComparisonResult:
    """Run train + serving under each wire mode and read the comm ledger.

    Same workload, same seeds; only the ``wire_frames`` /
    ``coalesce_rounds`` knobs vary, so any delta in ``comm.*`` is the
    codec's.  The conformance suite separately pins that predictions are
    bit-identical across these modes; this harness measures what they
    cost.
    """
    import dataclasses

    from repro.core.training import SecureTrainer as _Trainer

    x, y, spec = load_workload(
        model_name, dataset, n_batches=n_batches, batch_size=batch_size, seed=seed
    )
    cells = []
    for mode, overrides in WIRE_MODES:
        cfg = dataclasses.replace(config, **overrides)

        ctx = SecureContext.create(cfg)
        model = build_secure_model(ctx, spec)
        _Trainer(ctx, model, lr=lr, monitor_loss=False).train(
            x, y, epochs=1, batch_size=batch_size
        )
        snap = ctx.telemetry.snapshot()
        train_online = snap.gauge("phase.sim_seconds", clock="online")
        comm_bytes = sum(
            int(snap.counter("comm.bytes", channel=link.label))
            for link in ctx.server_links.values()
        )
        comm_messages = sum(
            int(snap.counter("comm.messages", channel=link.label))
            for link in ctx.server_links.values()
        )
        overhead = int(snap.counter("comm.frame_overhead_bytes"))
        coalesced = int(snap.counter("comm.coalesced_messages"))

        serve = run_serving(
            model_name, dataset, cfg,
            clients=clients, n_batches=n_batches, batch_size=batch_size, seed=seed,
        )
        cells.append(WireRunCell(
            mode=mode,
            train_online_s=train_online,
            serve_online_s=serve.online_s,
            comm_bytes=comm_bytes,
            comm_messages=comm_messages,
            frame_overhead_bytes=overhead,
            coalesced_messages=coalesced,
        ))
    frame_us, pickle_us = _checksum_microbench()
    return WireComparisonResult(
        spec=spec, cells=cells,
        checksum_frame_us=frame_us, checksum_pickle_us=pickle_us,
    )


WORKLOAD_FIGURE_MODELS: tuple[str, ...] = ("attention", "recsys")


@dataclass
class WorkloadFigureRow:
    """One (model, mode) cell of the BENCH_workloads.json suite."""

    model: str
    mode: str  # "train" | "infer"
    compression: bool
    online_s: float
    offline_s: float
    comm_bytes: int
    comm_messages: int
    raw_comm_bytes: int
    wire_comm_bytes: int


def run_workload_figures(
    config: FrameworkConfig,
    *,
    n_batches: int = 2,
    batch_size: int = 32,
    seed: int = 0,
    lr: float = 0.03125,
) -> list[WorkloadFigureRow]:
    """The attention/recsys workload suite behind ``--workloads``.

    Each workload model contributes a training row and an inference row;
    recsys additionally runs inference with ``compression=False`` so the
    pair of rows *measures* the CSR delta-compression win on the static
    embedding-table stream (the raw-vs-wire gap only exists because the
    table's masked difference repeats byte-identically across batches —
    see DESIGN §7).  ``benchmarks/test_workload_regression.py`` guards
    the committed reference against message-count and makespan drift.
    """
    import dataclasses

    rows: list[WorkloadFigureRow] = []
    for model_name in WORKLOAD_FIGURE_MODELS:
        x, y, spec = load_workload(
            model_name, "SYNTHETIC", n_batches=n_batches, batch_size=batch_size, seed=seed
        )
        runs: list[tuple[str, bool]] = [("train", config.compression), ("infer", config.compression)]
        if model_name == "recsys":
            runs.append(("infer", not config.compression))
        for mode, compression in runs:
            cfg = dataclasses.replace(config, compression=compression)
            ctx = SecureContext.create(cfg)
            model = build_secure_model(ctx, spec)
            if mode == "train":
                SecureTrainer(ctx, model, lr=lr, monitor_loss=False).train(
                    x, y, epochs=1, batch_size=batch_size
                )
            else:
                secure_predict(ctx, model, x, batch_size=batch_size)
            snap = ctx.telemetry.snapshot()
            rows.append(
                WorkloadFigureRow(
                    model=model_name,
                    mode=mode,
                    compression=compression,
                    online_s=snap.gauge("phase.sim_seconds", clock="online"),
                    offline_s=snap.gauge("phase.sim_seconds", clock="offline"),
                    comm_bytes=sum(
                        int(snap.counter("comm.bytes", channel=link.label))
                        for link in ctx.server_links.values()
                    ),
                    comm_messages=sum(
                        int(snap.counter("comm.messages", channel=link.label))
                        for link in ctx.server_links.values()
                    ),
                    raw_comm_bytes=int(snap.counter("comm.compression.raw_bytes")),
                    wire_comm_bytes=int(snap.counter("comm.compression.wire_bytes")),
                )
            )
    return rows
