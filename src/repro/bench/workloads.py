"""The Section 7.1 benchmark grid: six models x five datasets.

Geometry policy (recorded per run, cited in EXPERIMENTS.md): the harness
runs every dataset at its true geometry except NIST, whose 512x512
images are reduced to 128x128 by default so a pure-Python grid sweep
stays tractable — ``full_scale=True`` restores the paper geometry.
Convolution strides scale with image size so the CNN's activation maps
stay near MNIST's 24x24 (the paper does not fix a stride; a 5x5/stride-1
conv on 200x200 inputs would make the *plain* baseline intractable too).

RNN runs only on SYNTHETIC, exactly as in the paper ("RNN does not
apply to images").

Beyond the paper grid, two *workload* models (``WORKLOAD_MODELS``) ride
the same harness without joining the 26-cell grid pinned by the tests:
the secure attention block and the embedding-lookup recsys model.  Both
are SYNTHETIC-only like the RNN; ``python -m repro.bench attention|recsys``
runs them as ordinary cells, and ``--workloads`` emits the comparison
suite committed as ``BENCH_workloads.json``.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.models import (
    SecureCNN,
    SecureLinearRegression,
    SecureLogisticRegression,
    SecureMLP,
    SecureRNN,
    SecureSVM,
)
from repro.baselines.plain import (
    PlainAttention,
    PlainCNN,
    PlainLinearRegression,
    PlainLogisticRegression,
    PlainMLP,
    PlainRecsys,
    PlainRNN,
    PlainSVM,
)
from repro.core.attention import SecureAttention
from repro.core.recsys import SecureRecsys
from repro.datasets import make_dataset, sequence_dataset
from repro.util.errors import ConfigError

BENCH_MODELS = ["CNN", "MLP", "linear", "logistic", "SVM", "RNN"]
#: extra workloads runnable through the same CLI/harness, kept out of
#: BENCH_MODELS so the paper's 26-cell grid stays pinned.
WORKLOAD_MODELS = ["attention", "recsys"]
BENCH_DATASETS = ["VGGFace2", "NIST", "SYNTHETIC", "MNIST", "CIFAR-10"]

# datasets whose geometry the harness reduces by default (paper geometry
# via full_scale=True); values are (harness_shape, paper_shape)
_REDUCED_GEOMETRY = {
    "NIST": ((128, 128, 1), (512, 512, 1)),
}

_RNN_STEPS = 8

# attention workload geometry: seq_len tokens x d_model features
_ATTN_SEQ = 4
_ATTN_DMODEL = 16

# recsys workload geometry: one-hot vocab -> embedding width
_RECSYS_VOCAB = 64
_RECSYS_EMB = 16


@dataclass(frozen=True)
class WorkloadSpec:
    """One (model, dataset) cell of the grid, ready to instantiate."""

    model: str
    dataset: str
    image_shape: tuple[int, int, int]
    features: int
    n_outputs: int
    conv_stride: int
    batch_size: int
    paper_batches: int  # batches in one paper-scale epoch
    geometry_reduced: bool


def benchmark_grid(*, include_rnn: bool = True) -> list[tuple[str, str]]:
    """(model, dataset) pairs evaluated in the paper (Table 2/3 rows)."""
    cells = []
    for dataset in BENCH_DATASETS:
        for model in BENCH_MODELS:
            if model == "RNN" and dataset != "SYNTHETIC":
                continue  # paper: RNN only on SYNTHETIC
            if model == "RNN" and not include_rnn:
                continue
            cells.append((model, dataset))
    return cells


def _conv_stride(image_shape: tuple[int, int, int]) -> int:
    """Stride keeping the conv output near 24x24 regardless of input."""
    h = image_shape[0]
    return max(1, (h - 5) // 24)


def load_workload(
    model: str,
    dataset: str,
    *,
    n_batches: int = 2,
    batch_size: int = 128,
    seed: int = 0,
    full_scale: bool = False,
) -> tuple[np.ndarray, np.ndarray, WorkloadSpec]:
    """Generate data for one grid cell, sized for ``n_batches`` batches."""
    if model not in BENCH_MODELS and model not in WORKLOAD_MODELS:
        raise ConfigError(f"unknown model {model!r}")
    n_samples = n_batches * batch_size
    if model in WORKLOAD_MODELS and dataset != "SYNTHETIC":
        raise ConfigError(f"{model} is a SYNTHETIC-only workload")
    if model == "attention":
        x, y = sequence_dataset(n_samples, _ATTN_SEQ, _ATTN_DMODEL, seed=seed)
        spec = WorkloadSpec(
            model=model,
            dataset=dataset,
            image_shape=(1, _ATTN_SEQ * _ATTN_DMODEL, 1),
            features=x.shape[1],
            n_outputs=10,
            conv_stride=1,
            batch_size=batch_size,
            paper_batches=640_000 // batch_size,
            geometry_reduced=False,
        )
        return x, y, spec
    if model == "recsys":
        rng = np.random.default_rng(seed)
        ids = rng.integers(0, _RECSYS_VOCAB, size=n_samples)
        x = np.zeros((n_samples, _RECSYS_VOCAB))
        x[np.arange(n_samples), ids] = 1.0
        labels = rng.integers(0, 10, size=n_samples)
        y = np.zeros((n_samples, 10))
        y[np.arange(n_samples), labels] = 1.0
        spec = WorkloadSpec(
            model=model,
            dataset=dataset,
            image_shape=(1, _RECSYS_VOCAB, 1),
            features=_RECSYS_VOCAB,
            n_outputs=10,
            conv_stride=1,
            batch_size=batch_size,
            paper_batches=640_000 // batch_size,
            geometry_reduced=False,
        )
        return x, y, spec
    if model == "RNN":
        if dataset != "SYNTHETIC":
            raise ConfigError("RNN is evaluated on SYNTHETIC only (paper Section 7.1)")
        x, y = sequence_dataset(n_samples, _RNN_STEPS, 256, seed=seed)
        spec = WorkloadSpec(
            model=model,
            dataset=dataset,
            image_shape=(1, _RNN_STEPS * 256, 1),
            features=x.shape[1],
            n_outputs=10,
            conv_stride=1,
            batch_size=batch_size,
            paper_batches=640_000 // batch_size,
            geometry_reduced=False,
        )
        return x, y, spec

    reduced = dataset in _REDUCED_GEOMETRY and not full_scale
    shape_override = _REDUCED_GEOMETRY[dataset][0] if reduced else None
    x, y, dspec = make_dataset(dataset, n_samples, seed=seed, image_shape=shape_override)
    if model == "SVM":
        # binary labels in {-1, +1} from class parity
        labels = np.argmax(y, axis=1)
        y = np.where(labels % 2 == 0, 1.0, -1.0).reshape(-1, 1)
    n_out = 1 if model == "SVM" else 10
    spec = WorkloadSpec(
        model=model,
        dataset=dataset,
        image_shape=dspec.image_shape,
        features=dspec.features,
        n_outputs=n_out,
        conv_stride=_conv_stride(dspec.image_shape),
        batch_size=batch_size,
        paper_batches=max(1, dspec.paper_samples // batch_size),
        geometry_reduced=reduced,
    )
    return x, y, spec


def build_secure_model(ctx, spec: WorkloadSpec):
    """Instantiate the secure model for one grid cell."""
    if spec.model == "CNN":
        return SecureCNN(ctx, spec.image_shape, conv_stride=spec.conv_stride)
    if spec.model == "MLP":
        return SecureMLP(ctx, spec.features)
    if spec.model == "linear":
        return SecureLinearRegression(ctx, spec.features, n_out=spec.n_outputs)
    if spec.model == "logistic":
        return SecureLogisticRegression(ctx, spec.features, n_out=spec.n_outputs)
    if spec.model == "SVM":
        return SecureSVM(ctx, spec.features)
    if spec.model == "RNN":
        return SecureRNN(ctx, _RNN_STEPS, spec.features // _RNN_STEPS)
    if spec.model == "attention":
        return SecureAttention(ctx, _ATTN_SEQ, _ATTN_DMODEL, n_out=spec.n_outputs)
    if spec.model == "recsys":
        return SecureRecsys(ctx, _RECSYS_VOCAB, _RECSYS_EMB, n_out=spec.n_outputs)
    raise ConfigError(f"unknown model {spec.model!r}")


def build_plain_model(spec: WorkloadSpec, *, seed: int = 0):
    """Instantiate the matching non-secure model."""
    if spec.model == "CNN":
        return PlainCNN(spec.image_shape, conv_stride=spec.conv_stride, seed=seed)
    if spec.model == "MLP":
        return PlainMLP(spec.features, seed=seed)
    if spec.model == "linear":
        return PlainLinearRegression(spec.features, n_out=spec.n_outputs, seed=seed)
    if spec.model == "logistic":
        return PlainLogisticRegression(spec.features, n_out=spec.n_outputs, seed=seed)
    if spec.model == "SVM":
        return PlainSVM(spec.features, seed=seed)
    if spec.model == "RNN":
        return PlainRNN(_RNN_STEPS, spec.features // _RNN_STEPS, seed=seed)
    if spec.model == "attention":
        return PlainAttention(_ATTN_SEQ, _ATTN_DMODEL, n_out=spec.n_outputs, seed=seed)
    if spec.model == "recsys":
        return PlainRecsys(_RECSYS_VOCAB, _RECSYS_EMB, n_out=spec.n_outputs, seed=seed)
    raise ConfigError(f"unknown model {spec.model!r}")
