"""Plain-text tables and series matching the paper's presentation."""

from __future__ import annotations

import math
from typing import Iterable


def geomean(values: Iterable[float]) -> float:
    """Geometric mean (the right average for speedup ratios)."""
    vals = [v for v in values if v > 0]
    if not vals:
        return 0.0
    return math.exp(sum(math.log(v) for v in vals) / len(vals))


def _fmt(value, width: int) -> str:
    if isinstance(value, float):
        if value != 0 and (abs(value) >= 1e5 or abs(value) < 1e-3):
            text = f"{value:.3e}"
        else:
            text = f"{value:,.2f}"
    else:
        text = str(value)
    return text.rjust(width)


def format_table(rows: list[dict], columns: list[str], *, title: str = "") -> str:
    """Aligned text table; columns pulled from each row dict by name."""
    widths = {
        col: max(len(col), *(len(_fmt(row.get(col, ""), 0).strip()) for row in rows))
        if rows
        else len(col)
        for col in columns
    }
    lines = []
    if title:
        lines.append(title)
        lines.append("=" * len(title))
    header = " | ".join(col.rjust(widths[col]) for col in columns)
    lines.append(header)
    lines.append("-" * len(header))
    for row in rows:
        lines.append(" | ".join(_fmt(row.get(col, ""), widths[col]) for col in columns))
    return "\n".join(lines)


def format_speedup_series(
    labels: list[str], speedups: list[float], *, title: str = "", bar_width: int = 40
) -> str:
    """Horizontal-bar rendering of a speedup figure (Figs. 10-16 style)."""
    lines = []
    if title:
        lines.append(title)
        lines.append("=" * len(title))
    top = max(speedups) if speedups else 1.0
    name_w = max((len(l) for l in labels), default=4)
    for label, s in zip(labels, speedups):
        bar = "#" * max(1, int(bar_width * s / top)) if top > 0 else ""
        lines.append(f"{label:<{name_w}}  {s:8.2f}x  {bar}")
    if speedups:
        lines.append(f"{'geomean':<{name_w}}  {geomean(speedups):8.2f}x")
    return "\n".join(lines)
