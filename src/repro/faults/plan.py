"""Seeded fault plans: what goes wrong, where, and exactly when.

A :class:`FaultPlan` is declarative and frozen — it carries *rates* for
the memoryless fault kinds (drop / duplicate / corrupt / delay) plus
*scripted* events (party crashes, link partitions) pinned to message or
step indices.  The plan itself never draws randomness; the
:class:`~repro.faults.injector.FaultInjector` derives one RNG per
``(seed, link, message index)`` so the decision stream of one link is
independent of how other links interleave with it.  That per-message
keying is what makes chaos runs bit-reproducible.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.util.errors import ConfigError

_PARTIES = ("client", "server0", "server1")


@dataclass(frozen=True)
class PartyCrash:
    """Party ``party`` crashes when the consumer's step counter reaches
    ``at_step``.

    What a "step" is belongs to the consumer: the
    :class:`~repro.faults.reliable.ReliableTransport` advances one step
    per message the party sends; the training/inference drivers advance
    one step per batch.  A crashed party stays down until
    :meth:`~repro.faults.injector.FaultInjector.restart` is called.
    """

    party: str
    at_step: int

    def __post_init__(self):
        if self.party not in _PARTIES:
            raise ConfigError(f"unknown crash party {self.party!r}; expected one of {_PARTIES}")
        if self.at_step < 0:
            raise ConfigError(f"crash at_step must be >= 0, got {self.at_step}")


@dataclass(frozen=True)
class LinkPartition:
    """The ``src -> dst`` direction black-holes messages with link index
    in ``[start, stop)``.  A bounded window heals on its own, so a
    partition shorter than the retry budget is recoverable."""

    src: str
    dst: str
    start: int
    stop: int

    def __post_init__(self):
        if self.stop <= self.start:
            raise ConfigError(
                f"partition window must be non-empty: [{self.start}, {self.stop})"
            )
        if self.start < 0:
            raise ConfigError(f"partition start must be >= 0, got {self.start}")

    def covers(self, index: int) -> bool:
        return self.start <= index < self.stop


@dataclass(frozen=True)
class RetryPolicy:
    """How hard the resilient layer tries before assigning blame.

    Timeouts back off exponentially (``base_timeout_s * backoff**k``,
    capped at ``max_backoff_s``) and every wait is charged on the
    simulated clock, so fault recovery is visible in makespans.
    ``restart_penalty_s`` is the simulated reboot time a recovering
    driver charges when it brings a crashed party back.
    """

    max_retries: int = 8
    base_timeout_s: float = 100e-6
    backoff: float = 2.0
    max_backoff_s: float = 10e-3
    restart_penalty_s: float = 5e-3

    def __post_init__(self):
        if self.max_retries < 1:
            raise ConfigError(f"max_retries must be >= 1, got {self.max_retries}")
        if self.base_timeout_s < 0 or self.max_backoff_s < 0 or self.restart_penalty_s < 0:
            raise ConfigError("retry policy timings must be >= 0")
        if self.backoff < 1.0:
            raise ConfigError(f"backoff must be >= 1, got {self.backoff}")

    def timeout_s(self, attempt: int) -> float:
        """Backoff wait before retransmission ``attempt`` (1-based)."""
        return min(self.base_timeout_s * self.backoff ** max(attempt - 1, 0), self.max_backoff_s)


@dataclass(frozen=True)
class FaultPlan:
    """A complete, reproducible description of an adversarial network.

    ``drop``/``duplicate``/``corrupt``/``delay`` are per-message
    probabilities (disjoint events; their sum must be <= 1).  ``delay_s``
    is the extra one-way latency a delayed message suffers.  ``crashes``
    and ``partitions`` are scripted events.  ``seed`` keys every random
    decision.
    """

    seed: int = 0
    drop: float = 0.0
    duplicate: float = 0.0
    corrupt: float = 0.0
    delay: float = 0.0
    delay_s: float = 250e-6
    crashes: tuple[PartyCrash, ...] = field(default_factory=tuple)
    partitions: tuple[LinkPartition, ...] = field(default_factory=tuple)

    def __post_init__(self):
        rates = {"drop": self.drop, "duplicate": self.duplicate,
                 "corrupt": self.corrupt, "delay": self.delay}
        for name, rate in rates.items():
            if not 0.0 <= rate <= 1.0:
                raise ConfigError(f"{name} rate out of [0, 1]: {rate}")
        if sum(rates.values()) > 1.0 + 1e-12:
            raise ConfigError(f"fault rates must sum to <= 1, got {sum(rates.values())}")
        if self.delay_s < 0:
            raise ConfigError(f"delay_s must be >= 0, got {self.delay_s}")
        # tuples keep the plan hashable inside the frozen FrameworkConfig
        object.__setattr__(self, "crashes", tuple(self.crashes))
        object.__setattr__(self, "partitions", tuple(self.partitions))

    @property
    def fault_rate(self) -> float:
        return self.drop + self.duplicate + self.corrupt + self.delay

    def describe(self) -> str:
        parts = [f"seed={self.seed}"]
        for name in ("drop", "duplicate", "corrupt", "delay"):
            rate = getattr(self, name)
            if rate:
                parts.append(f"{name}={rate:g}")
        for crash in self.crashes:
            parts.append(f"crash({crash.party}@{crash.at_step})")
        for part in self.partitions:
            parts.append(f"partition({part.src}->{part.dst}[{part.start}:{part.stop}])")
        return "FaultPlan(" + ", ".join(parts) + ")"
