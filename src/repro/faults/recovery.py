"""Party respawn: the one recovery dance every driver shares.

Restarting a crashed party is more than flipping the injector's crash
bit — the restarted process has lost its GPU memory and its per-link
compressor state, so everything negotiated against it must be reset or
the next message desynchronises.  This module is the single owner of
that sequence; :func:`~repro.core.inference.run_secure_batch` (in-budget
batch retries), :meth:`repro.serve.Replica.respawn` (fleet replica
recovery), and any future driver all call :func:`respawn_party` so the
steps can never drift apart:

1. clear the injector's crash state for the party;
2. reset every :class:`~repro.comm.compression.DeltaCompressor` stream
   (delta encoding resumes from scratch on both directions);
3. drop static-mask-reuse caches and staged device buffers — nothing
   previously exchanged or uploaded can be assumed present;
4. charge the restart penalty on the restarted server's CPU, so
   recovery time shows up in the simulated makespan.
"""

from __future__ import annotations


def respawn_party(ctx, party: str, *, charge_restart: bool = True) -> None:
    """Restart ``party`` on ``ctx`` and reset all state it invalidates.

    Safe on contexts without an injector (the restart itself becomes a
    no-op but the state resets still run — callers use this as "assume
    the party rebooted").  With ``charge_restart`` (the default) the
    configured ``retry_policy.restart_penalty_s`` is charged on the
    restarted server's CPU clock.
    """
    injector = getattr(ctx, "fault_injector", None)
    if injector is not None:
        injector.restart(party)
    for compressor in getattr(ctx, "compressors", {}).values():
        compressor.reset_stream_state()
    # the restarted server lost its GPU memory and any previously
    # exchanged masked differences
    reset_reuse = getattr(ctx, "reset_mask_reuse", None)
    if reset_reuse is not None:
        reset_reuse()
    if charge_restart and party.startswith("server"):
        party_id = int(party[-1])
        ctx.server_cpu[party_id].run(
            ctx.config.retry_policy.restart_penalty_s,
            label="recovery:restart",
        )
