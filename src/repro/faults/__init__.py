"""Deterministic fault injection + resilient delivery.

The paper assumes a perfect 100 Gb/s fabric; this package is what makes
the reproduction survive an imperfect one.  Two halves:

* **Injection** — a seeded :class:`FaultPlan` (drop / duplicate /
  corrupt / delay rates, party-crash-at-step specs, link partitions)
  interpreted by a :class:`FaultInjector`.  Every decision is a pure
  function of ``(plan.seed, link, message index)``, so a run under a
  given plan is exactly reproducible regardless of how links interleave.
* **Resilience** — :class:`ReliableTransport` wraps the in-process
  :class:`~repro.comm.transport.TransportHub` with sequence numbers,
  payload checksums, timeout/backoff retransmission and duplicate
  suppression; :class:`ResilientChannel` applies the same discipline to
  the cost-model :class:`~repro.comm.channel.Channel` so retransmitted
  bytes and backoff waits show up in simulated makespans.  When the
  retry budget is exhausted (or a party has crashed and not restarted)
  both raise :class:`PartyFailure` carrying an identifiable-abort-style
  :class:`BlameRecord` naming the faulty party.

Recovery is wired into the drivers: :class:`~repro.core.training.SecureTrainer`
checkpoints shares every K batches and replays from the last checkpoint
after a party restart; :func:`~repro.core.inference.secure_predict`
retries failed batch requests.  :mod:`repro.faults.chaos` is the harness
the chaos tests use to assert bit-identical convergence under any
recoverable plan.
"""

from repro.faults.blame import BlameRecord, PartyFailure
from repro.faults.chaos import (
    ChaosResult,
    default_chaos_matrix,
    snapshot_weights,
    train_mlp_under_plan,
    unrecoverable_plan,
)
from repro.faults.injector import FaultDecision, FaultInjector
from repro.faults.plan import FaultPlan, LinkPartition, PartyCrash, RetryPolicy
from repro.faults.recovery import respawn_party
from repro.faults.reliable import ReliableTransport, ResilientChannel

__all__ = [
    "FaultPlan",
    "PartyCrash",
    "LinkPartition",
    "RetryPolicy",
    "FaultDecision",
    "FaultInjector",
    "BlameRecord",
    "PartyFailure",
    "ReliableTransport",
    "ResilientChannel",
    "respawn_party",
    "ChaosResult",
    "default_chaos_matrix",
    "snapshot_weights",
    "train_mlp_under_plan",
    "unrecoverable_plan",
]
