"""The seeded decision engine behind a :class:`~repro.faults.plan.FaultPlan`.

Determinism contract: the decision for the k-th message on link
``src -> dst`` is a pure function of ``(plan.seed, src, dst, k)`` —
each message gets its own ``SeedSequence``-derived generator, so links
never share an RNG stream and interleaving order cannot perturb
outcomes.  Retransmissions advance the link index, which is what lets a
dropped message eventually get through under any rate < 1.

The injector also tracks the scripted state: a monotonically increasing
*step* counter (consumers decide what a step means — a sent message for
the transport, a batch for the drivers), which crash specs key off, and
the set of currently-crashed parties.  Every injected fault and every
restart is recorded in the telemetry registry under ``faults.*``.
"""

from __future__ import annotations

import zlib
from dataclasses import dataclass

import numpy as np

from repro.faults.plan import FaultPlan
from repro.telemetry.registry import MetricRegistry

DELIVER = "deliver"
DROP = "drop"
DUPLICATE = "duplicate"
CORRUPT = "corrupt"
DELAY = "delay"
PARTITION = "partition"


@dataclass(frozen=True)
class FaultDecision:
    """What happens to one message on one link."""

    kind: str  # deliver | drop | duplicate | corrupt | delay | partition
    link: str  # "src->dst"
    index: int  # per-link message index this decision is for
    delay_s: float = 0.0
    corrupt_draw: int = 0  # seeded draw used to pick the bit to flip

    @property
    def delivered(self) -> bool:
        """Does the payload reach the receiver's queue at all?"""
        return self.kind not in (DROP, PARTITION)


def _h(name: str) -> int:
    """Stable 32-bit hash of an endpoint name (process-independent)."""
    return zlib.crc32(name.encode())


class FaultInjector:
    """Interprets one plan; shared by every hooked link and driver."""

    def __init__(self, plan: FaultPlan, *, telemetry=None):
        self.plan = plan
        registry = telemetry.registry if telemetry is not None else MetricRegistry()
        self._injected = registry.counter(
            "faults.injected", "fault events injected, by kind and link"
        )
        self._restarts = registry.counter(
            "faults.party_restarts", "crashed parties brought back by recovery"
        )
        self._link_index: dict[tuple[str, str], int] = {}
        self._step = 0
        self._crashed: set[str] = set()
        self._fired_crashes: set[int] = set()  # indices into plan.crashes

    # -- scripted state ---------------------------------------------------------

    @property
    def step(self) -> int:
        return self._step

    def advance_step(self, n: int = 1) -> None:
        """Move the step counter forward, firing any due crash specs."""
        self._step += int(n)
        for i, crash in enumerate(self.plan.crashes):
            if i not in self._fired_crashes and crash.at_step <= self._step:
                self._fired_crashes.add(i)
                self._crashed.add(crash.party)
                self._injected.inc(1, kind="crash", link=crash.party)

    def crashed(self, party: str) -> bool:
        return party in self._crashed

    def crashed_among(self, *parties: str) -> str | None:
        """The first crashed party among ``parties``, or None."""
        for party in parties:
            if party in self._crashed:
                return party
        return None

    def restart(self, party: str) -> None:
        """Bring a crashed party back (recovery path); idempotent."""
        if party in self._crashed:
            self._crashed.discard(party)
            self._restarts.inc(1, party=party)

    # -- per-message decisions --------------------------------------------------

    def link_index(self, src: str, dst: str) -> int:
        """Messages decided so far on ``src -> dst``."""
        return self._link_index.get((src, dst), 0)

    def decide(self, src: str, dst: str) -> FaultDecision:
        """Consume one per-link message slot and rule on its fate."""
        index = self._link_index.get((src, dst), 0)
        self._link_index[(src, dst)] = index + 1
        link = f"{src}->{dst}"
        for part in self.plan.partitions:
            if part.src == src and part.dst == dst and part.covers(index):
                self._injected.inc(1, kind=PARTITION, link=link)
                return FaultDecision(kind=PARTITION, link=link, index=index)
        plan = self.plan
        if plan.fault_rate == 0.0:
            return FaultDecision(kind=DELIVER, link=link, index=index)
        rng = np.random.default_rng(
            np.random.SeedSequence([plan.seed & 0xFFFFFFFF, _h(src), _h(dst), index])
        )
        u = rng.random()
        edge = plan.drop
        if u < edge:
            kind = DROP
        elif u < (edge := edge + plan.duplicate):
            kind = DUPLICATE
        elif u < (edge := edge + plan.corrupt):
            kind = CORRUPT
        elif u < edge + plan.delay:
            kind = DELAY
        else:
            return FaultDecision(kind=DELIVER, link=link, index=index)
        self._injected.inc(1, kind=kind, link=link)
        return FaultDecision(
            kind=kind,
            link=link,
            index=index,
            delay_s=plan.delay_s if kind == DELAY else 0.0,
            corrupt_draw=int(rng.integers(0, 2**31)) if kind == CORRUPT else 0,
        )
