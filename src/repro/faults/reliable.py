"""Resilient delivery: reliability on top of an unreliable substrate.

Two integrations, one discipline (sequence numbers, checksums,
timeout/backoff retransmission, duplicate suppression, blame on
exhaustion):

* :class:`ReliableTransport` wraps the payload-carrying
  :class:`~repro.comm.transport.TransportHub` for the actor runtime —
  real frames, real corruption detection, real reorder buffers;
* :class:`ResilientChannel` extends the cost-model
  :class:`~repro.comm.channel.Channel` for the lockstep framework —
  the *numerics* never touch the wire there, so resilience shows up as
  retransmitted bytes and backoff waits charged on the
  :class:`~repro.simgpu.clock.SimClock` (they move makespans), plus the
  same ``faults.*`` telemetry.

Blame convention on retry exhaustion: the party that stopped
*responding* is convicted.  A receiver that never gets a verifiable
frame blames the sender (its frames are missing or fail their
checksums); a sender that never sees an acknowledgement blames the
receiver.  A scripted crash convicts the crashed party directly.
"""

from __future__ import annotations

import copy
from dataclasses import dataclass, is_dataclass, fields as dataclass_fields
from typing import Any

import numpy as np

from repro.comm.channel import Channel
from repro.comm.transport import TransportHub
from repro.comm.wire import payload_checksum
from repro.faults.blame import BlameRecord, PartyFailure
from repro.faults.injector import (
    CORRUPT,
    DELAY,
    DROP,
    DUPLICATE,
    FaultInjector,
    PARTITION,
)
from repro.faults.plan import FaultPlan, RetryPolicy
from repro.simgpu.clock import SimClock
from repro.telemetry.registry import MetricRegistry
from repro.util.errors import TransportError


# payload_checksum now rides the frame codec: CRC-32 accumulated over
# the framed chunks, so array buffers hash raw and pickle fires only
# for irreducible non-array leaves — the per-frame pickle.dumps this
# function used to run on every send *and* every receive drain was the
# ReliableTransport CPU hotspot.  (Imported above from repro.comm.wire;
# kept in this namespace as its historical home.)
__all__ = ["payload_checksum", "ReliableTransport", "ResilientChannel", "corrupt_payload"]


def _arrays_in(obj: Any):
    """Yield the ndarrays reachable inside a message payload."""
    if isinstance(obj, np.ndarray):
        yield obj
    elif is_dataclass(obj) and not isinstance(obj, type):
        for f in dataclass_fields(obj):
            yield from _arrays_in(getattr(obj, f.name))
    elif isinstance(obj, (list, tuple)):
        for item in obj:
            yield from _arrays_in(item)
    elif isinstance(obj, dict):
        for item in obj.values():
            yield from _arrays_in(item)


@dataclass
class _Tampered:
    """Wrapper standing in for a payload mangled beyond parsing."""

    original: Any


def corrupt_payload(payload: Any, draw: int) -> Any:
    """A corrupted deep copy: one bit flipped, position seeded by ``draw``."""
    mangled = copy.deepcopy(payload)
    arrays = list(_arrays_in(mangled))
    if not arrays:
        return _Tampered(mangled)
    arr = arrays[draw % len(arrays)]
    if arr.nbytes == 0:
        return _Tampered(mangled)
    flat = arr.reshape(-1).view(np.uint8)
    bit = draw % (flat.size * 8)
    flat[bit // 8] ^= np.uint8(1 << (bit % 8))
    return mangled


@dataclass
class _Frame:
    """One wire unit: a sequenced, checksummed payload."""

    seq: int
    tag: str
    checksum: int
    payload: Any
    delay_s: float = 0.0
    retransmit: bool = False


class _FaultCounters:
    """The ``faults.*`` counter bundle both resilient layers record into."""

    def __init__(self, telemetry=None):
        registry = telemetry.registry if telemetry is not None else MetricRegistry()
        self.retransmits = registry.counter(
            "faults.retransmits", "frames retransmitted after timeout"
        )
        self.retransmit_bytes = registry.counter(
            "faults.retransmit_bytes", "wire bytes spent on retransmissions"
        )
        self.timeouts = registry.counter(
            "faults.timeouts", "receive/ack timeouts that triggered a retry"
        )
        self.backoff_seconds = registry.counter(
            "faults.backoff_seconds", "simulated seconds spent in backoff waits"
        )
        self.corrupt_detected = registry.counter(
            "faults.corrupt_detected", "frames discarded on checksum mismatch"
        )
        self.duplicates_suppressed = registry.counter(
            "faults.duplicates_suppressed", "frames discarded as already-seen"
        )
        self.delays_applied = registry.counter(
            "faults.delays_applied", "frames that suffered injected delay"
        )


class ReliableTransport:
    """Sequenced, checksummed, retrying delivery over a TransportHub.

    Role views (:meth:`as_role`) expose the same ``send``/``recv``/
    ``exchange``/``barrier`` surface as
    :class:`~repro.comm.mpi_backend.LoopbackTransport` views, so the
    runtime actors run unchanged on top of it.  ``clock`` is optional; if
    given, backoff and injected-delay waits are charged on a per-party
    resource (``party.<name>.net``) so faults move the makespan.

    Every sent frame is journalled per stream; a retransmission request
    replays journalled frames through the injector again (a restarted
    party recovers its journal, which is why crash-and-restart heals).
    """

    def __init__(
        self,
        endpoints: list[str] | None = None,
        *,
        plan: FaultPlan | None = None,
        injector: FaultInjector | None = None,
        policy: RetryPolicy | None = None,
        telemetry=None,
        clock: SimClock | None = None,
    ):
        self.hub = TransportHub(endpoints or ["client", "server0", "server1"])
        if injector is None and plan is not None:
            injector = FaultInjector(plan, telemetry=telemetry)
        self.injector = injector
        self.policy = policy or RetryPolicy()
        self.clock = clock
        self.counters = _FaultCounters(telemetry)
        self._next_seq: dict[tuple[str, str, str], int] = {}
        self._expected: dict[tuple[str, str, str], int] = {}
        self._stash: dict[tuple[str, str, str], dict[int, _Frame]] = {}
        self._journal: dict[tuple[str, str, str], list[_Frame]] = {}

    def as_role(self, role: str) -> "_ReliableView":
        if role not in self.hub.mailboxes:
            raise TransportError(f"unknown role {role!r}")
        return _ReliableView(self, role)

    def attach_recorder(self, recorder):
        """Tap the underlying hub so the recorder sees every frame —
        originals, retransmissions, and injector-made duplicates alike
        (the recorder logs the wire, not the protocol's view of it).
        Returns the tap for later ``hub.remove_tap``."""
        return recorder.tap_hub(self.hub, clock=self.clock)

    def restart(self, party: str) -> None:
        """Recovery hook: bring a crashed party back online."""
        if self.injector is not None:
            self.injector.restart(party)

    # -- sending ----------------------------------------------------------------

    def send(self, src: str, dst: str, tag: str, payload: Any) -> None:
        key = (src, dst, tag)
        seq = self._next_seq.get(key, 0)
        self._next_seq[key] = seq + 1
        frame = _Frame(seq=seq, tag=tag, checksum=payload_checksum(payload), payload=payload)
        self._journal.setdefault(key, []).append(frame)
        if self.injector is not None:
            self.injector.advance_step()
        self._transmit(src, dst, tag, frame)

    def _transmit(self, src: str, dst: str, tag: str, frame: _Frame) -> None:
        link = f"{src}->{dst}"
        if self.injector is not None:
            if self.injector.crashed(src) or self.injector.crashed(dst):
                return  # a dead endpoint neither sends nor receives
            decision = self.injector.decide(src, dst)
            if not decision.delivered:
                return
            if decision.kind == CORRUPT:
                mangled = copy.copy(frame)
                mangled.payload = corrupt_payload(frame.payload, decision.corrupt_draw)
                self.hub.send(src, dst, tag, mangled)
                return
            if decision.kind == DUPLICATE:
                self.hub.send(src, dst, tag, frame)
                self.hub.send(src, dst, tag, copy.copy(frame))
                return
            if decision.kind == DELAY:
                delayed = copy.copy(frame)
                delayed.delay_s = decision.delay_s
                self.hub.send(src, dst, tag, delayed)
                return
        self.hub.send(src, dst, tag, frame)

    def _retransmit(self, src: str, dst: str, tag: str, from_seq: int) -> int:
        """Replay journalled frames >= ``from_seq``; returns frames resent."""
        resent = 0
        for frame in self._journal.get((src, dst, tag), []):
            if frame.seq >= from_seq:
                again = copy.copy(frame)
                again.retransmit = True
                self.counters.retransmits.inc(1, link=f"{src}->{dst}", tag=tag)
                self._transmit(src, dst, tag, again)
                resent += 1
        return resent

    # -- receiving --------------------------------------------------------------

    def _charge_wait(self, party: str, seconds: float, label: str) -> None:
        if self.clock is not None and seconds > 0:
            resource = f"party.{party}.net"
            self.clock.add_resource(resource)
            self.clock.run(resource, seconds, label=label)

    def _drain(self, dst: str, src: str, tag: str) -> None:
        key = (dst, src, tag)
        expected = self._expected.get(key, 0)
        stash = self._stash.setdefault(key, {})
        mailbox = self.hub.mailboxes[dst]
        link = f"{src}->{dst}"
        while mailbox.pending(src, tag):
            frame: _Frame = self.hub.recv(dst, src, tag)
            if payload_checksum(frame.payload) != frame.checksum:
                self.counters.corrupt_detected.inc(1, link=link, tag=tag)
                continue
            if frame.seq < expected or frame.seq in stash:
                self.counters.duplicates_suppressed.inc(1, link=link, tag=tag)
                continue
            stash[frame.seq] = frame

    def recv(self, dst: str, src: str, tag: str) -> Any:
        key = (dst, src, tag)
        link = f"{src}->{dst}"
        attempts = 0
        while True:
            self._drain(dst, src, tag)
            expected = self._expected.get(key, 0)
            stash = self._stash.setdefault(key, {})
            if expected in stash:
                frame = stash.pop(expected)
                self._expected[key] = expected + 1
                if frame.delay_s:
                    self.counters.delays_applied.inc(1, link=link, tag=tag)
                    self._charge_wait(dst, frame.delay_s, f"{tag}:delayed")
                return frame.payload
            attempts += 1
            if attempts > self.policy.max_retries:
                crashed = self.injector is not None and self.injector.crashed(src)
                blame = BlameRecord(
                    party=src,
                    reason="crash" if crashed else "retry-exhausted",
                    link=link,
                    step=self.injector.step if self.injector is not None else 0,
                    attempts=attempts,
                    evidence=(
                        f"{dst} received no verifiable frame seq>={expected} "
                        f"on tag {tag!r} after {attempts - 1} retransmission rounds",
                    ),
                )
                raise PartyFailure(blame)
            timeout = self.policy.timeout_s(attempts)
            self.counters.timeouts.inc(1, link=link, tag=tag)
            self.counters.backoff_seconds.inc(timeout, link=link, tag=tag)
            self._charge_wait(dst, timeout, f"{tag}:timeout{attempts}")
            self._retransmit(src, dst, tag, self._expected.get(key, 0))


class _ReliableView:
    """One endpoint's handle (the LoopbackTransport view surface)."""

    def __init__(self, transport: ReliableTransport, role: str):
        self._transport = transport
        self.role = role

    def send(self, dst: str, tag: str, payload: Any) -> None:
        self._transport.send(self.role, dst, tag, payload)

    def recv(self, src: str, tag: str) -> Any:
        return self._transport.recv(self.role, src, tag)

    def exchange(self, peer: str, tag: str, payload: Any) -> Any:
        self.send(peer, tag, payload)
        return self.recv(peer, tag)

    def barrier(self) -> None:
        return None

    def pending_summary(self) -> dict[tuple[str, str], int]:
        """Undelivered (src, tag) -> count in this role's hub mailbox,
        plus any reorder-stashed frames waiting for a gap to fill."""
        summary = dict(self._transport.hub.mailboxes[self.role].pending_summary())
        for (dst, src, tag), stash in self._transport._stash.items():
            if dst == self.role and stash:
                summary[(src, tag)] = summary.get((src, tag), 0) + len(stash)
        return summary


class ResilientChannel(Channel):
    """A :class:`Channel` whose sends ride an adversarial link.

    The lockstep framework computes numerics locally and uses the
    channel purely for cost accounting, so resilience here means the
    *costs* of recovery are modelled faithfully: every retransmission
    charges its bytes through the normal ``Channel.send`` path (visible
    in ``comm.bytes`` and Fig. 16 readouts) and every timeout charges a
    backoff wait on the link direction's clock resource (visible in
    makespans).  Crashed parties and exhausted retry budgets raise
    :class:`PartyFailure` for the drivers' recovery logic.
    """

    def __init__(
        self,
        clock: SimClock,
        spec,
        a: str,
        b: str,
        *,
        telemetry=None,
        injector: FaultInjector | None = None,
        policy: RetryPolicy | None = None,
    ):
        super().__init__(clock, spec, a, b, telemetry=telemetry)
        self.injector = injector
        self.policy = policy or RetryPolicy()
        self.counters = _FaultCounters(telemetry)

    def send(self, src: str, dst: str, nbytes: int, deps=(), label: str = "msg"):
        if self.injector is None:
            return super().send(src, dst, nbytes, deps=deps, label=label)
        crashed = self.injector.crashed_among(src, dst)
        if crashed is not None:
            raise PartyFailure(
                BlameRecord(
                    party=crashed,
                    reason="crash",
                    link=f"{src}->{dst}",
                    step=self.injector.step,
                    attempts=0,
                    evidence=(f"{crashed} is down; send of {label!r} aborted",),
                )
            )
        link = f"{src}->{dst}"
        task = super().send(src, dst, nbytes, deps=deps, label=label)
        attempt = 0
        while True:
            decision = self.injector.decide(src, dst)
            if decision.kind in (DROP, PARTITION, CORRUPT):
                if decision.kind == CORRUPT:
                    self.counters.corrupt_detected.inc(1, link=link)
                attempt += 1
                if attempt > self.policy.max_retries:
                    raise PartyFailure(
                        BlameRecord(
                            party=dst,
                            reason="retry-exhausted",
                            link=link,
                            step=self.injector.step,
                            attempts=attempt,
                            evidence=(
                                f"no acknowledgement of {label!r} after "
                                f"{attempt - 1} retransmissions",
                            ),
                        )
                    )
                timeout = self.policy.timeout_s(attempt)
                self.counters.timeouts.inc(1, link=link)
                self.counters.backoff_seconds.inc(timeout, link=link)
                wait = self.clock.run(
                    self._dir[(src, dst)], timeout, deps=(task,), label=f"{label}:timeout{attempt}"
                )
                task = super().send(src, dst, nbytes, deps=(wait,), label=f"{label}:retx{attempt}")
                self.counters.retransmits.inc(1, link=link)
                self.counters.retransmit_bytes.inc(int(nbytes), link=link)
                continue
            if decision.kind == DUPLICATE:
                super().send(src, dst, nbytes, deps=(task,), label=f"{label}:dup")
                self.counters.duplicates_suppressed.inc(1, link=link)
            elif decision.kind == DELAY:
                self.counters.delays_applied.inc(1, link=link)
                task = self.clock.run(
                    self._dir[(src, dst)], decision.delay_s, deps=(task,), label=f"{label}:delayed"
                )
            return task
