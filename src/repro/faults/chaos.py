"""Chaos-test harness: prove faults change costs, never results.

The central claim of the subsystem is *chaos equivalence*: under any
recoverable :class:`~repro.faults.plan.FaultPlan`, secure training
converges to **bit-identical** final weight shares vs the fault-free
run — drops, duplicates, corruption, delays and even a crashed server
only move simulated time and telemetry counters, never numerics.
:func:`train_mlp_under_plan` is the canonical probe (a small MLP, two
batches, checkpoint-every-batch recovery) and
:func:`default_chaos_matrix` the plan matrix the chaos suite sweeps.

Core imports are lazy: the drivers import ``repro.faults`` at module
scope, so importing them here at module scope would cycle.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any

import numpy as np

from repro.faults.plan import FaultPlan, PartyCrash

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.core.training import TrainReport
    from repro.telemetry.snapshot import TelemetrySnapshot


@dataclass
class ChaosResult:
    """One chaos run: final weight shares + the run's full accounting."""

    plan: FaultPlan | None
    weights: dict[str, tuple[np.ndarray, np.ndarray]]
    report: "TrainReport"
    snapshot: "TelemetrySnapshot"
    losses: list[float] = field(default_factory=list)

    def weights_equal(self, other: "ChaosResult") -> bool:
        """Bit-exact share equality against another run."""
        if set(self.weights) != set(other.weights):
            return False
        return all(
            len(self.weights[name]) == len(other.weights[name])
            and all(
                np.array_equal(self.weights[name][p], other.weights[name][p])
                for p in range(len(self.weights[name]))
            )
            for name in self.weights
        )

    def fault_activity(self) -> dict[str, float]:
        """Nonzero ``faults.*`` counter totals observed in this run."""
        out: dict[str, float] = {}
        for name in (
            "faults.injected",
            "faults.retransmits",
            "faults.retransmit_bytes",
            "faults.timeouts",
            "faults.corrupt_detected",
            "faults.duplicates_suppressed",
            "faults.delays_applied",
            "faults.party_restarts",
            "faults.batches_replayed",
            "faults.requests_retried",
        ):
            value = self.snapshot.counter(name)
            if value:
                out[name] = value
        return out


def snapshot_weights(model) -> dict[str, tuple[np.ndarray, np.ndarray]]:
    """Copy every parameter's share pair, keyed by checkpoint path."""
    from repro.core.checkpoint import _named_parameters

    return {
        name: tuple(s.copy() for s in tensor.shares)
        for name, tensor in _named_parameters(model)
    }


def train_mlp_under_plan(
    plan: FaultPlan | None,
    *,
    features: int = 12,
    batches: int = 2,
    batch_size: int = 8,
    hidden: tuple[int, ...] = (6,),
    data_seed: int = 7,
    checkpoint_every: int | None = 2,
    checkpoint_dir=None,
    max_restarts: int = 2,
    **config_overrides: Any,
) -> ChaosResult:
    """Train a small MLP for ``batches`` batches under ``plan``.

    ``plan=None`` is the fault-free baseline; everything else (data,
    model init, config) is held fixed so two results differ only by the
    plan.  Recovery is on: the trainer checkpoints every
    ``checkpoint_every`` batches and survives up to ``max_restarts``
    party crashes.
    """
    from repro.core.config import FrameworkConfig
    from repro.core.context import SecureContext
    from repro.core.models import SecureMLP
    from repro.core.training import SecureTrainer

    config = FrameworkConfig.parsecureml(
        activation_protocol="emulated", fault_plan=plan, **config_overrides
    )
    ctx = SecureContext.create(config)
    model = SecureMLP(ctx, features, hidden=hidden, n_out=2)
    data_rng = np.random.default_rng(data_seed)
    x = data_rng.normal(size=(batches * batch_size, features)) * 0.25
    y = data_rng.normal(size=(batches * batch_size, 2)) * 0.25
    trainer = SecureTrainer(
        ctx,
        model,
        lr=0.0625,
        monitor_loss=True,
        checkpoint_every=checkpoint_every,
        checkpoint_dir=checkpoint_dir,
        max_restarts=max_restarts,
    )
    report = trainer.train(x, y, epochs=1, batch_size=batch_size)
    return ChaosResult(
        plan=plan,
        weights=snapshot_weights(model),
        report=report,
        snapshot=ctx.telemetry.snapshot(),
        losses=list(report.losses),
    )


def default_chaos_matrix(seed: int = 0) -> list[tuple[str, FaultPlan]]:
    """The recoverable plans the chaos suite sweeps, one per fault kind.

    Rates are high enough that two batches of MLP traffic reliably hit
    each fault kind several times; the crash plan downs server1 at batch
    1 so recovery replays from the batch-0 checkpoint.
    """
    return [
        ("drop", FaultPlan(seed=seed, drop=0.12)),
        ("duplicate", FaultPlan(seed=seed, duplicate=0.15)),
        ("corrupt", FaultPlan(seed=seed, corrupt=0.10)),
        ("delay", FaultPlan(seed=seed, delay=0.20, delay_s=400e-6)),
        ("mixed", FaultPlan(seed=seed, drop=0.05, duplicate=0.05, corrupt=0.05, delay=0.05)),
        (
            "crash-restart",
            FaultPlan(seed=seed, drop=0.05, crashes=(PartyCrash("server1", at_step=2),)),
        ),
    ]


def unrecoverable_plan(seed: int = 0) -> FaultPlan:
    """A plan no retry budget survives: the server link drops everything."""
    return FaultPlan(seed=seed, drop=1.0)
