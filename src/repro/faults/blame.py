"""Identifiable-abort failure records.

When resilience runs out (retry budget exhausted, unhealed partition,
crashed party never restarted), the failure must *name a party* with the
evidence that convicts it — the publicly-identifiable-abort discipline
of the PIA-MPC line of work, transplanted to the systems layer.  The
:class:`BlameRecord` is that verdict; :class:`PartyFailure` is the
exception that carries it to whoever can act on it (a recovering driver,
or the operator).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.util.errors import ReproError


@dataclass(frozen=True)
class BlameRecord:
    """Who failed, why we believe it, and what we saw.

    ``party`` is the convicted endpoint; ``reason`` a stable machine
    word (``"crash"`` / ``"retry-exhausted"`` / ``"partition"``);
    ``link`` the observing direction (``"src->dst"``); ``step`` the
    injector step / link message index at conviction; ``attempts`` how
    many deliveries were tried; ``evidence`` human-readable lines.
    """

    party: str
    reason: str
    link: str = ""
    step: int = 0
    attempts: int = 0
    evidence: tuple[str, ...] = field(default_factory=tuple)

    def __post_init__(self):
        object.__setattr__(self, "evidence", tuple(self.evidence))

    def render(self) -> str:
        head = f"party {self.party!r} blamed for {self.reason}"
        if self.link:
            head += f" on {self.link}"
        head += f" (step {self.step}, {self.attempts} attempts)"
        return "\n".join([head, *(f"  - {line}" for line in self.evidence)])


class PartyFailure(ReproError, RuntimeError):
    """A party is convicted of failing the protocol.

    Carries the :class:`BlameRecord` as ``.blame``; the message renders
    it so an uncaught failure is still diagnosable from the traceback.
    """

    def __init__(self, blame: BlameRecord):
        super().__init__(blame.render())
        self.blame = blame

    @property
    def party(self) -> str:
        return self.blame.party
