"""SecureML baseline and ParSecureML context factories.

The paper evaluates against its own reimplementation of SecureML
(Mohassel & Zhang, S&P'17): the identical two-party protocol executed
entirely on CPUs, with none of ParSecureML's systems optimisations.
Because our core framework exposes every optimisation as a config
switch, the baseline is simply the same stack under
:meth:`~repro.core.config.FrameworkConfig.secureml`:

* all steps placed on the CPU (no GPU, no Tensor Cores);
* no pipeline 1 (nothing to overlap without a GPU) and no pipeline 2
  (sequential step chaining, Fig. 6a);
* no compressed transmission;
* single-threaded CPU helpers (no Section 5.1 parallelism).

Protocol transcripts are identical between the two configurations —
tests assert that a model trained under either produces the same
decoded parameters given the same seed — so every measured difference
is attributable to the systems work, which is the paper's claim.
"""

from __future__ import annotations

from repro.core.config import FrameworkConfig
from repro.core.context import SecureContext


def make_secureml_context(**overrides) -> SecureContext:
    """A context in SecureML mode (the paper's baseline)."""
    return SecureContext(FrameworkConfig.secureml(**overrides))


def make_parsecureml_context(**overrides) -> SecureContext:
    """A context with the full ParSecureML optimisation set."""
    return SecureContext(FrameworkConfig.parsecureml(**overrides))
