"""Non-secure baseline models in plain floating point, with timing.

These are the "original machine learning tasks" of Tables 1 and 2: the
same six architectures as :mod:`repro.core.models`, trained directly on
NumPy float64 arrays, with every GEMM/elementwise/RNG step charged to a
:class:`~repro.simgpu.clock.SimClock` either at CPU rates (Table 1's
baseline) or at simulated-GPU rates with PCIe transfers (Table 2's "GPU
time" column; weights stay device-resident, inputs stream per batch —
the standard non-secure GPU training pattern).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Literal

import numpy as np

from repro.simgpu.clock import SimClock
from repro.simgpu.cost import CPUSpec, DeviceSpec, V100_SPEC, XEON_E5_2670V3_SPEC
from repro.simgpu.kernels import col2im, conv_output_size, im2col
from repro.util.errors import ConfigError


class PlainTimer:
    """Charges plain-ML work to one device's timeline."""

    def __init__(
        self,
        device: Literal["cpu", "gpu"] = "cpu",
        *,
        cpu_spec: CPUSpec = XEON_E5_2670V3_SPEC,
        gpu_spec: DeviceSpec = V100_SPEC,
        tensor_core: bool = False,
        cpu_parallel: bool = False,
    ):
        self.device = device
        self.cpu_spec = cpu_spec
        self.gpu_spec = gpu_spec
        self.tensor_core = tensor_core
        self.cpu_parallel = cpu_parallel
        # Per-training-step framework overhead (Python dispatch, graph
        # bookkeeping, optimiser step) — the paper's GPU baselines are
        # TensorFlow/PyTorch-era frameworks whose measured MNIST step
        # times (Table 2: ~4 ms/batch) are overhead-, not compute-bound.
        self.step_overhead_s = 1e-3
        self.clock = SimClock()
        self.clock.set_tracing(False)
        self.clock.add_resource("compute")
        self.clock.add_resource("pcie")

    def reset(self) -> None:
        self.clock = SimClock()
        self.clock.set_tracing(False)
        self.clock.add_resource("compute")
        self.clock.add_resource("pcie")

    @property
    def seconds(self) -> float:
        return self.clock.now()

    def gemm(self, m: int, k: int, n: int) -> None:
        if self.device == "gpu":
            dur = self.gpu_spec.gemm_seconds(m, k, n, tensor_core=self.tensor_core)
        else:
            dur = self.cpu_spec.gemm_seconds(m, k, n)
        self.clock.run("compute", dur, label="gemm")

    def elementwise(self, nbytes: int) -> None:
        if self.device == "gpu":
            dur = self.gpu_spec.elementwise_seconds(nbytes)
        else:
            dur = self.cpu_spec.elementwise_seconds(nbytes, parallel=self.cpu_parallel)
        self.clock.run("compute", dur, label="elementwise")

    def transfer(self, nbytes: int) -> None:
        """PCIe streaming (no-op for the CPU device)."""
        if self.device == "gpu":
            self.clock.run("pcie", self.gpu_spec.transfer_seconds(nbytes), label="pcie")


class PlainLayer:
    def forward(self, x: np.ndarray, timer: PlainTimer, *, training: bool = True) -> np.ndarray:
        raise NotImplementedError

    def backward(self, delta: np.ndarray, timer: PlainTimer) -> np.ndarray:
        raise NotImplementedError

    def apply_gradients(self, lr: float) -> None:
        pass


class PlainDense(PlainLayer):
    def __init__(self, in_features: int, out_features: int, rng: np.random.Generator):
        scale = 1.0 / np.sqrt(in_features)
        self.w = rng.uniform(-scale, scale, size=(in_features, out_features))
        self.b = np.zeros((1, out_features))
        self._x = None
        self._gw = None
        self._gb = None

    def forward(self, x, timer, *, training=True):
        if training:
            self._x = x
        timer.gemm(x.shape[0], x.shape[1], self.w.shape[1])
        return x @ self.w + self.b

    def backward(self, delta, timer):
        batch = self._x.shape[0]
        timer.gemm(self.w.shape[0], batch, self.w.shape[1])
        self._gw = self._x.T @ delta / batch
        self._gb = delta.mean(axis=0, keepdims=True)
        timer.gemm(batch, self.w.shape[1], self.w.shape[0])
        return delta @ self.w.T

    def apply_gradients(self, lr):
        self.w -= lr * self._gw
        self.b -= lr * self._gb


class PlainActivation(PlainLayer):
    def __init__(self, kind: str = "relu"):
        if kind not in ("relu", "piecewise"):
            raise ConfigError(f"unknown activation {kind!r}")
        self.kind = kind
        self._mask = None

    def forward(self, x, timer, *, training=True):
        timer.elementwise(2 * x.nbytes)
        if self.kind == "relu":
            mask = (x >= 0.0).astype(x.dtype)
            out = x * mask
        else:
            mask = ((x >= -0.5) & (x < 0.5)).astype(x.dtype)
            out = np.clip(x + 0.5, 0.0, 1.0)
        if training:
            self._mask = mask
        return out

    def backward(self, delta, timer):
        timer.elementwise(2 * delta.nbytes)
        return delta * self._mask


class PlainConv2D(PlainLayer):
    def __init__(
        self,
        in_shape: tuple[int, int, int],
        out_channels: int,
        kernel: int,
        rng: np.random.Generator,
        *,
        stride: int = 1,
    ):
        self.in_shape = tuple(in_shape)
        self.kernel = kernel
        self.stride = stride
        self.out_channels = out_channels
        h, w, c = in_shape
        self.out_h, self.out_w = conv_output_size(h, w, kernel, kernel, stride)
        fan_in = kernel * kernel * c
        self.w = rng.uniform(-1, 1, size=(fan_in, out_channels)) / np.sqrt(fan_in)
        self._cols = None
        self._batch = 0

    def forward(self, x, timer, *, training=True):
        n = x.shape[0]
        h, w, c = self.in_shape
        cols = im2col(x.reshape(n, h, w, c), self.kernel, self.kernel, self.stride)
        timer.elementwise(x.nbytes + cols.nbytes)
        if training:
            self._cols = cols
            self._batch = n
        timer.gemm(cols.shape[0], cols.shape[1], self.out_channels)
        out = cols @ self.w
        return out.reshape(n, self.out_h * self.out_w * self.out_channels)

    def backward(self, delta, timer):
        n = self._batch
        d2 = delta.reshape(n * self.out_h * self.out_w, self.out_channels)
        timer.gemm(self._cols.shape[1], d2.shape[0], self.out_channels)
        self._gw = self._cols.T @ d2 / n
        timer.gemm(d2.shape[0], self.out_channels, self.w.shape[0])
        dcols = d2 @ self.w.T
        h, w, c = self.in_shape
        dx = col2im(dcols, (n, h, w, c), self.kernel, self.kernel, self.stride)
        timer.elementwise(dcols.nbytes + dx.nbytes)
        return dx.reshape(n, -1)

    def apply_gradients(self, lr):
        self.w -= lr * self._gw


@dataclass
class PlainReport:
    """Cost/progress accounting for a plain run."""

    batches: int = 0
    samples: int = 0
    seconds: float = 0.0
    losses: list = field(default_factory=list)


class PlainModel:
    def __init__(self):
        self.layers: list[PlainLayer] = []

    def forward(self, x, timer, *, training=True):
        for layer in self.layers:
            x = layer.forward(x, timer, training=training)
        return x

    def loss_delta(self, pred, y):
        return pred - y

    def train_batch(self, x, y, lr, timer):
        pred = self.forward(x, timer, training=True)
        delta = self.loss_delta(pred, y)
        for layer in reversed(self.layers):
            delta = layer.backward(delta, timer)
        for layer in self.layers:
            layer.apply_gradients(lr)
        return pred


class PlainMLP(PlainModel):
    def __init__(self, input_dim, hidden=(128, 64), n_out=10, *, seed=0):
        super().__init__()
        rng = np.random.default_rng(seed)
        dims = [input_dim, *hidden, n_out]
        for li, (a, b) in enumerate(zip(dims[:-1], dims[1:])):
            self.layers.append(PlainDense(a, b, rng))
            if li < len(dims) - 2:
                self.layers.append(PlainActivation("relu"))


class PlainCNN(PlainModel):
    def __init__(
        self,
        image_shape,
        *,
        conv_channels=8,
        hidden=64,
        n_out=10,
        kernel=5,
        conv_stride=1,
        seed=0,
    ):
        super().__init__()
        rng = np.random.default_rng(seed)
        conv = PlainConv2D(image_shape, conv_channels, kernel, rng, stride=conv_stride)
        flat = conv.out_h * conv.out_w * conv_channels
        self.layers = [
            conv,
            PlainActivation("relu"),
            PlainDense(flat, hidden, rng),
            PlainActivation("relu"),
            PlainDense(hidden, n_out, rng),
        ]


class PlainLinearRegression(PlainModel):
    def __init__(self, input_dim, n_out=1, *, seed=0):
        super().__init__()
        self.layers = [PlainDense(input_dim, n_out, np.random.default_rng(seed))]


class PlainLogisticRegression(PlainModel):
    def __init__(self, input_dim, n_out=1, *, seed=0):
        super().__init__()
        self.layers = [
            PlainDense(input_dim, n_out, np.random.default_rng(seed)),
            PlainActivation("piecewise"),
        ]


class PlainSVM(PlainModel):
    """Linear SVM via hinge subgradient (the secure model's twin)."""

    def __init__(self, input_dim, *, reg=1e-3, seed=0):
        super().__init__()
        self.dense = PlainDense(input_dim, 1, np.random.default_rng(seed))
        self.layers = [self.dense]
        self.reg = reg

    def train_batch(self, x, y, lr, timer):
        scores = self.dense.forward(x, timer, training=True)
        margin = 1.0 - y * scores
        active = (margin >= 0).astype(x.dtype)
        timer.elementwise(3 * scores.nbytes)
        coeff = -y * active
        batch = x.shape[0]
        timer.gemm(x.shape[1], batch, 1)
        gw = x.T @ coeff / batch + self.reg * self.dense.w
        gb = coeff.mean(axis=0, keepdims=True)
        self.dense.w -= lr * gw
        self.dense.b -= lr * gb
        return scores


class PlainRNNCell:
    def __init__(self, in_features, hidden, rng):
        sx, sh = 1 / np.sqrt(in_features), 1 / np.sqrt(hidden)
        self.wx = rng.uniform(-sx, sx, size=(in_features, hidden))
        self.wh = rng.uniform(-sh, sh, size=(hidden, hidden))
        self.b = np.zeros((1, hidden))


class PlainRNN(PlainModel):
    def __init__(self, n_steps, step_features, hidden=64, n_out=10, *, seed=0):
        super().__init__()
        rng = np.random.default_rng(seed)
        self.n_steps = n_steps
        self.step_features = step_features
        self.hidden = hidden
        self.cell = PlainRNNCell(step_features, hidden, rng)
        self.readout = PlainDense(hidden, n_out, rng)

    def forward(self, x, timer, *, training=True):
        batch = x.shape[0]
        h = np.zeros((batch, self.hidden))
        self._tape = []
        for t in range(self.n_steps):
            xt = x[:, t * self.step_features : (t + 1) * self.step_features]
            timer.gemm(batch, self.step_features, self.hidden)
            timer.gemm(batch, self.hidden, self.hidden)
            pre = xt @ self.cell.wx + h @ self.cell.wh + self.cell.b
            mask = (pre >= 0).astype(x.dtype)
            timer.elementwise(2 * pre.nbytes)
            h_new = pre * mask
            if training:
                self._tape.append((xt, h, mask))
            h = h_new
        return self.readout.forward(h, timer, training=training)

    def train_batch(self, x, y, lr, timer):
        pred = self.forward(x, timer, training=True)
        delta = self.loss_delta(pred, y)
        delta_h = self.readout.backward(delta, timer)
        batch = x.shape[0]
        gwx = np.zeros_like(self.cell.wx)
        gwh = np.zeros_like(self.cell.wh)
        gb = np.zeros_like(self.cell.b)
        d = delta_h
        for t, (xt, h_prev, mask) in enumerate(reversed(self._tape)):
            d = d * mask
            timer.elementwise(2 * d.nbytes)
            timer.gemm(xt.shape[1], batch, self.hidden)
            timer.gemm(self.hidden, batch, self.hidden)
            gwx += xt.T @ d / batch
            gwh += h_prev.T @ d / batch
            gb += d.mean(axis=0, keepdims=True)
            if t + 1 < len(self._tape):
                timer.gemm(batch, self.hidden, self.hidden)
                d = d @ self.cell.wh.T
        self.cell.wx -= lr * gwx
        self.cell.wh -= lr * gwh
        self.cell.b -= lr * gb
        self.readout.apply_gradients(lr)
        return pred


class PlainAttentionBlock(PlainLayer):
    """Float twin of :class:`repro.core.attention.SecureAttentionBlock`.

    Identical math, including the *approximate* softmax recipe
    (:func:`repro.mpc.softmax.softmax_reference`) — so the secure/plain
    difference measured by conformance is pure fixed-point noise, not
    the softmax approximation itself.
    """

    def __init__(self, seq_len: int, d_model: int, rng: np.random.Generator):
        self.seq_len = seq_len
        self.d_model = d_model
        scale = 1.0 / np.sqrt(d_model)
        self.wq = rng.uniform(-scale, scale, size=(d_model, d_model))
        self.wk = rng.uniform(-scale, scale, size=(d_model, d_model))
        self.wv = rng.uniform(-scale, scale, size=(d_model, d_model))
        self.wo = rng.uniform(-scale, scale, size=(d_model, d_model))
        self._tape = None

    def forward(self, x, timer, *, training=True):
        from repro.mpc.softmax import softmax_reference

        b, (s, d) = x.shape[0], (self.seq_len, self.d_model)
        x2 = x.reshape(b * s, d)
        for _ in range(3):
            timer.gemm(b * s, d, d)
        q = (x2 @ self.wq).reshape(b, s, d)
        k = (x2 @ self.wk).reshape(b, s, d)
        v = (x2 @ self.wv).reshape(b, s, d)
        timer.elementwise(2 * q.nbytes)
        scores = np.einsum("bid,bjd->bij", q, k) / np.sqrt(d)
        attn = softmax_reference(scores.reshape(b * s, s)).reshape(b, s, s)
        timer.elementwise(2 * v.nbytes)
        context = np.einsum("bij,bjd->bid", attn, v).reshape(b * s, d)
        timer.gemm(b * s, d, d)
        o2 = context @ self.wo
        out = o2.reshape(b, s, d).mean(axis=1)
        if training:
            self._tape = (x2, q, k, v, attn, context)
        return out

    def backward(self, delta, timer):
        x2, q, k, v, attn, context = self._tape
        b, (s, d) = delta.shape[0], (self.seq_len, self.d_model)
        do2 = np.repeat(delta / s, s, axis=0)
        timer.gemm(d, b * s, d)
        self._gwo = context.T @ do2 / b
        timer.gemm(b * s, d, d)
        dc = (do2 @ self.wo.T).reshape(b, s, d)
        timer.elementwise(4 * dc.nbytes)
        da = np.einsum("bid,bjd->bij", dc, v)
        dv = np.einsum("bij,bid->bjd", attn, dc)
        ds = attn * (da - (attn * da).sum(axis=2, keepdims=True)) / np.sqrt(d)
        timer.elementwise(4 * ds.nbytes)
        dq = np.einsum("bij,bjd->bid", ds, k).reshape(b * s, d)
        dk = np.einsum("bij,bid->bjd", ds, q).reshape(b * s, d)
        dv = dv.reshape(b * s, d)
        for _ in range(3):
            timer.gemm(d, b * s, d)
        self._gwq = x2.T @ dq / b
        self._gwk = x2.T @ dk / b
        self._gwv = x2.T @ dv / b
        for _ in range(3):
            timer.gemm(b * s, d, d)
        dx2 = dq @ self.wq.T + dk @ self.wk.T + dv @ self.wv.T
        return dx2.reshape(b, s * d)

    def apply_gradients(self, lr):
        self.wq -= lr * self._gwq
        self.wk -= lr * self._gwk
        self.wv -= lr * self._gwv
        self.wo -= lr * self._gwo


class PlainAttention(PlainModel):
    def __init__(self, seq_len, d_model, *, n_out=3, seed=0):
        super().__init__()
        rng = np.random.default_rng(seed)
        self.block = PlainAttentionBlock(seq_len, d_model, rng)
        self.readout = PlainDense(d_model, n_out, rng)
        self.layers = [self.block, self.readout]


class PlainEmbedding(PlainLayer):
    """Float twin of the oblivious embedding lookup (dense, no bias)."""

    def __init__(self, vocab: int, emb_dim: int, rng: np.random.Generator):
        scale = 1.0 / np.sqrt(vocab)
        self.w = rng.uniform(-scale, scale, size=(vocab, emb_dim))
        self._x = None

    def forward(self, x, timer, *, training=True):
        if training:
            self._x = x
        timer.gemm(x.shape[0], x.shape[1], self.w.shape[1])
        return x @ self.w

    def backward(self, delta, timer):
        batch = self._x.shape[0]
        timer.gemm(self.w.shape[0], batch, self.w.shape[1])
        self._gw = self._x.T @ delta / batch
        timer.gemm(batch, self.w.shape[1], self.w.shape[0])
        return delta @ self.w.T

    def apply_gradients(self, lr):
        self.w -= lr * self._gw


class PlainRecsys(PlainModel):
    def __init__(self, vocab, emb_dim, *, n_out=3, seed=0):
        super().__init__()
        rng = np.random.default_rng(seed)
        self.layers = [
            PlainEmbedding(vocab, emb_dim, rng),
            PlainActivation("relu"),
            PlainDense(emb_dim, n_out, rng),
        ]


class PlainTrainer:
    """Batch loop + timing for the plain models."""

    def __init__(self, model: PlainModel, timer: PlainTimer, *, lr: float = 0.125):
        self.model = model
        self.timer = timer
        self.lr = lr

    def train(self, x, y, *, epochs=1, batch_size=128, max_batches=None) -> PlainReport:
        x = np.asarray(x, dtype=np.float64)
        y = np.asarray(y, dtype=np.float64)
        report = PlainReport()
        t0 = self.timer.seconds
        done = False
        for _ in range(epochs):
            if done:
                break
            for lo in range(0, x.shape[0] - batch_size + 1, batch_size):
                xb, yb = x[lo : lo + batch_size], y[lo : lo + batch_size]
                # batch assembly + loss bookkeeping + framework step overhead
                self.timer.elementwise(2 * (xb.nbytes + yb.nbytes))
                self.timer.clock.run("compute", self.timer.step_overhead_s, label="step")
                self.timer.transfer(xb.nbytes + yb.nbytes)
                pred = self.model.train_batch(xb, yb, self.lr, self.timer)
                report.batches += 1
                report.samples += batch_size
                report.losses.append(float(np.mean((pred - yb) ** 2)))
                if max_batches is not None and report.batches >= max_batches:
                    done = True
                    break
        report.seconds = self.timer.seconds - t0
        return report

    def predict(self, x, *, batch_size=128, max_batches=None) -> tuple[np.ndarray, float]:
        x = np.asarray(x, dtype=np.float64)
        outs = []
        t0 = self.timer.seconds
        batches = 0
        for lo in range(0, x.shape[0] - batch_size + 1, batch_size):
            xb = x[lo : lo + batch_size]
            self.timer.clock.run("compute", self.timer.step_overhead_s, label="step")
            self.timer.transfer(xb.nbytes)
            outs.append(self.model.forward(xb, self.timer, training=False))
            batches += 1
            if max_batches is not None and batches >= max_batches:
                break
        return np.concatenate(outs, axis=0), self.timer.seconds - t0
