"""Baselines the paper compares against.

* :mod:`repro.baselines.plain` — non-secure training/inference of the
  same six models in plain floating point, timed on the CPU (Table 1's
  "Original") or the simulated GPU (Table 2's "GPU time");
* :mod:`repro.baselines.secureml` — the SecureML baseline: the same
  two-party protocol stack run CPU-only with no pipelines, compression,
  or Tensor Cores, exactly the configuration the paper reimplements
  from Mohassel & Zhang [10];
* :mod:`repro.baselines.smo` — a real sequential-minimal-optimization
  SVM trainer (the paper's plain-text SVM reference).
"""

from repro.baselines.plain import (
    PlainMLP,
    PlainCNN,
    PlainRNN,
    PlainLinearRegression,
    PlainLogisticRegression,
    PlainSVM,
    PlainTrainer,
    PlainReport,
)
from repro.baselines.secureml import make_secureml_context, make_parsecureml_context
from repro.baselines.smo import SMOSVM

__all__ = [
    "PlainMLP",
    "PlainCNN",
    "PlainRNN",
    "PlainLinearRegression",
    "PlainLogisticRegression",
    "PlainSVM",
    "PlainTrainer",
    "PlainReport",
    "make_secureml_context",
    "make_parsecureml_context",
    "SMOSVM",
]
