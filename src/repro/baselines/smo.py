"""Sequential Minimal Optimization SVM (the paper's plain SVM trainer).

Section 7.1 trains its SVMs "by the sequential minimal optimization
(SMO) algorithm"; this is a from-scratch implementation of simplified
SMO (Platt 1998 with the standard heuristic simplifications) for linear
and RBF kernels.  It serves two roles:

* the plain-text SVM baseline in the Table 1/2 benchmarks;
* the accuracy reference the secure hinge-subgradient SVM is validated
  against in the tests (both optimise the same objective, so they must
  agree on well-separated data).
"""

from __future__ import annotations

from typing import Callable, Literal

import numpy as np

from repro.util.errors import ConfigError


def linear_kernel(x1: np.ndarray, x2: np.ndarray) -> np.ndarray:
    return x1 @ x2.T


def rbf_kernel(gamma: float) -> Callable[[np.ndarray, np.ndarray], np.ndarray]:
    def k(x1: np.ndarray, x2: np.ndarray) -> np.ndarray:
        sq = (
            np.sum(x1**2, axis=1)[:, None]
            - 2.0 * (x1 @ x2.T)
            + np.sum(x2**2, axis=1)[None, :]
        )
        return np.exp(-gamma * sq)

    return k


class SMOSVM:
    """Binary SVM trained with simplified SMO.

    Labels must be in {-1, +1}.  ``C`` is the box constraint, ``tol``
    the KKT tolerance, ``max_passes`` the number of full passes without
    progress before stopping.
    """

    def __init__(
        self,
        C: float = 1.0,
        *,
        kernel: Literal["linear", "rbf"] = "linear",
        gamma: float = 0.1,
        tol: float = 1e-3,
        max_passes: int = 5,
        max_iter: int = 10_000,
        seed: int = 0,
    ):
        if C <= 0:
            raise ConfigError(f"C must be positive, got {C}")
        self.C = C
        self.tol = tol
        self.max_passes = max_passes
        self.max_iter = max_iter
        self._rng = np.random.default_rng(seed)
        self._kernel = linear_kernel if kernel == "linear" else rbf_kernel(gamma)
        self.kernel_name = kernel
        self.alpha: np.ndarray | None = None
        self.b: float = 0.0
        self.x: np.ndarray | None = None
        self.y: np.ndarray | None = None

    # -- training -------------------------------------------------------------

    def fit(self, x: np.ndarray, y: np.ndarray) -> "SMOSVM":
        x = np.asarray(x, dtype=np.float64)
        y = np.asarray(y, dtype=np.float64).ravel()
        if set(np.unique(y)) - {-1.0, 1.0}:
            raise ConfigError("SMO labels must be in {-1, +1}")
        n = x.shape[0]
        self.x, self.y = x, y
        self.alpha = np.zeros(n)
        self.b = 0.0
        k = self._kernel(x, x)

        passes = 0
        iters = 0
        while passes < self.max_passes and iters < self.max_iter:
            changed = 0
            for i in range(n):
                iters += 1
                e_i = self._decision_cached(k, i) - y[i]
                if (y[i] * e_i < -self.tol and self.alpha[i] < self.C) or (
                    y[i] * e_i > self.tol and self.alpha[i] > 0
                ):
                    j = self._pick_second(i, n)
                    e_j = self._decision_cached(k, j) - y[j]
                    if self._take_step(k, i, j, e_i, e_j):
                        changed += 1
            passes = passes + 1 if changed == 0 else 0
        return self

    def _pick_second(self, i: int, n: int) -> int:
        j = int(self._rng.integers(0, n - 1))
        return j if j < i else j + 1

    def _decision_cached(self, k: np.ndarray, i: int) -> float:
        return float((self.alpha * self.y) @ k[:, i] + self.b)

    def _take_step(self, k: np.ndarray, i: int, j: int, e_i: float, e_j: float) -> bool:
        y_i, y_j = self.y[i], self.y[j]
        a_i_old, a_j_old = self.alpha[i], self.alpha[j]
        if y_i != y_j:
            lo, hi = max(0.0, a_j_old - a_i_old), min(self.C, self.C + a_j_old - a_i_old)
        else:
            lo, hi = max(0.0, a_i_old + a_j_old - self.C), min(self.C, a_i_old + a_j_old)
        if lo >= hi:
            return False
        eta = 2.0 * k[i, j] - k[i, i] - k[j, j]
        if eta >= 0:
            return False
        a_j = np.clip(a_j_old - y_j * (e_i - e_j) / eta, lo, hi)
        if abs(a_j - a_j_old) < 1e-6 * (a_j + a_j_old + 1e-6):
            return False
        a_i = a_i_old + y_i * y_j * (a_j_old - a_j)
        self.alpha[i], self.alpha[j] = a_i, a_j
        b1 = (
            self.b
            - e_i
            - y_i * (a_i - a_i_old) * k[i, i]
            - y_j * (a_j - a_j_old) * k[i, j]
        )
        b2 = (
            self.b
            - e_j
            - y_i * (a_i - a_i_old) * k[i, j]
            - y_j * (a_j - a_j_old) * k[j, j]
        )
        if 0 < a_i < self.C:
            self.b = b1
        elif 0 < a_j < self.C:
            self.b = b2
        else:
            self.b = (b1 + b2) / 2.0
        return True

    # -- inference -------------------------------------------------------------

    def decision_function(self, x: np.ndarray) -> np.ndarray:
        if self.alpha is None:
            raise ConfigError("fit() before decision_function()")
        k = self._kernel(np.asarray(x, dtype=np.float64), self.x)
        return k @ (self.alpha * self.y) + self.b

    def predict(self, x: np.ndarray) -> np.ndarray:
        return np.sign(self.decision_function(x))

    @property
    def weight_vector(self) -> np.ndarray:
        """Primal weights (linear kernel only)."""
        if self.kernel_name != "linear":
            raise ConfigError("weight_vector is defined for the linear kernel only")
        return (self.alpha * self.y) @ self.x
