"""Pipeline 1: overlapping PCIe transfers with the Eq. 8 sub-kernels.

Fig. 5 of the paper decomposes the online GPU operation

    C_i = [ ((-i)*E + A_i) | E ] @ [ F ; B_i ] + Z_i

into sub-steps whose inputs arrive one PCIe transfer at a time:

    transfers:  E  ->  A_i  ->  F  ->  B_i   (H2D engine, serial)
    kernels:        D = (-i)E + A_i  ->  G1 = D @ F  ->  G2 = E @ B_i
                                                      -> C = G1 + G2 + Z_i

With the pipeline on, each kernel depends only on the transfers it
actually needs, so ``D`` runs while ``F`` is still on the bus and
``D @ F`` runs while ``B_i`` is on the bus — Fig. 5's overlap.  With it
off, every kernel additionally waits for *all* transfers (the naive
copy-everything-then-launch structure), which is the ablation baseline.

The function really computes C_i (ring arithmetic via the device's
kernels) and returns the host-side result plus the dependency tasks the
caller (pipeline 2, in the training loop) needs.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.fixedpoint.ring import ring_add, ring_sub
from repro.mpc.triplets import TripletShare
from repro.simgpu.clock import Task
from repro.simgpu.device import SimGPU
from repro.simgpu.memory import DeviceBuffer
from repro.util.errors import ProtocolError


@dataclass
class GemmScheduleResult:
    """Output of one scheduled secure GEMM."""

    c_share: np.ndarray  # host-side C_i
    done: Task  # completion of the D2H copy of C_i
    gpu_done: Task  # completion of the last kernel (C_i still on device)
    transfer_seconds: float  # total PCIe time charged
    kernel_seconds: float  # total kernel time charged


@dataclass
class StagedGemmOperands:
    """Device-resident inputs pre-staged across batches (mask reuse).

    Each entry is an already-uploaded ``(buffer, upload_task)`` pair the
    scheduler uses *instead of* a fresh H2D transfer.  Staged buffers
    are owned by whoever staged them (the context's device stash) and
    are left allocated on return — only fresh transfers are freed here.
    """

    f: tuple[DeviceBuffer, Task] | None = None  # combined masked F
    z: tuple[DeviceBuffer, Task] | None = None  # this party's Z share


def schedule_secure_gemm(
    gpu: SimGPU,
    party_id: int,
    e: np.ndarray,
    f: np.ndarray,
    a_share: np.ndarray,
    b_share: np.ndarray,
    triplet: TripletShare,
    deps: tuple[Task, ...] = (),
    *,
    pipeline: bool = True,
    stream: int = 0,
    staged: StagedGemmOperands | None = None,
) -> GemmScheduleResult:
    """Run the Eq. 8 GPU operation for one server with/without pipeline 1.

    ``staged`` supplies device-resident F and/or Z buffers (static-mask
    reuse): their H2D transfers are skipped and they are not freed.
    """
    if party_id not in (0, 1):
        raise ProtocolError(f"party_id must be 0 or 1, got {party_id}")
    if triplet.party_id != party_id:
        raise ProtocolError(
            f"triplet share belongs to party {triplet.party_id}, used by party {party_id}"
        )
    triplet.mark_consumed()

    # H2D transfers in Fig. 5's order; the engine serialises them.
    # Staged operands are already resident: no transfer, no PCIe charge.
    fresh: list[Task] = []
    e_buf, t_e = gpu.h2d(e, deps=deps, label="h2d:E")
    a_buf, t_a = gpu.h2d(a_share, deps=deps, label="h2d:A")
    fresh.extend([t_e, t_a])
    if staged is not None and staged.f is not None:
        f_buf, t_f = staged.f
    else:
        f_buf, t_f = gpu.h2d(f, deps=deps, label="h2d:F")
        fresh.append(t_f)
    b_buf, t_b = gpu.h2d(b_share, deps=deps, label="h2d:B")
    fresh.append(t_b)
    if staged is not None and staged.z is not None:
        z_buf, t_z = staged.z
    else:
        z_buf, t_z = gpu.h2d(triplet.z, deps=deps, label="h2d:Z")
        fresh.append(t_z)
    transfers = [t_e, t_a, t_f, t_b, t_z]
    all_transfers_done = transfers if not pipeline else None

    def kdeps(*needed: Task) -> tuple[Task, ...]:
        """Kernel dependencies: only what's needed (pipeline) or everything."""
        return tuple(needed) if pipeline else tuple(all_transfers_done)

    # D = (-i) * E + A_i  (for party 0 this is just A_i, but the paper's
    # schedule runs the kernel unconditionally and so do we — it is the
    # step that hides F's transfer).
    if party_id == 0:
        d_buf, t_d = gpu.elementwise(lambda a: a.copy(), [a_buf], deps=kdeps(t_e, t_a), label="D=A")
    else:
        d_buf, t_d = gpu.elementwise(
            lambda a, ee: ring_sub(a, ee), [a_buf, e_buf], deps=kdeps(t_e, t_a), label="D=A-E"
        )

    # G1 = D @ F overlaps B_i's transfer; G2 = E @ B_i follows.
    g1_buf, t_g1 = gpu.gemm_ring(d_buf, f_buf, deps=kdeps(t_d, t_f), stream=stream, label="D@F")
    g2_buf, t_g2 = gpu.gemm_ring(e_buf, b_buf, deps=kdeps(t_g1, t_b), stream=stream, label="E@B")

    # C = G1 + G2 + Z_i (fused via the ring ops' out= fast path: one
    # intermediate, written in place by the second add).
    def _fuse_c(x, y, z):
        tmp = ring_add(x, y)
        return ring_add(tmp, z, out=tmp)

    c_buf, t_sum = gpu.elementwise(
        _fuse_c,
        [g1_buf, g2_buf, z_buf],
        deps=kdeps(t_g1, t_g2, t_z),
        label="C=G1+G2+Z",
    )

    c_host, t_out = gpu.d2h(c_buf, deps=(t_sum,), label="d2h:C")

    keep = set()
    if staged is not None:
        if staged.f is not None:
            keep.add(id(f_buf))
        if staged.z is not None:
            keep.add(id(z_buf))
    for buf in (e_buf, a_buf, f_buf, b_buf, z_buf, d_buf, g1_buf, g2_buf, c_buf):
        if id(buf) not in keep:
            gpu.free(buf)

    transfer_seconds = sum(t.duration for t in fresh) + t_out.duration
    kernel_seconds = t_d.duration + t_g1.duration + t_g2.duration + t_sum.duration
    return GemmScheduleResult(
        c_share=c_host,
        done=t_out,
        gpu_done=t_sum,
        transfer_seconds=transfer_seconds,
        kernel_seconds=kernel_seconds,
    )
