"""Profiling-guided adaptive GPU utilisation (paper Section 4.2).

The paper profiles the two-party computation, finds that the offline
``Z = U x V`` product and the online Eq. 8 GEMM dominate, and places
*only those* on the GPU — pushing small steps there loses to PCIe
overhead and kernel launch latency ("extra 4.5 percent performance
degradation", Section 4.2).

:class:`StepProfiler` reproduces the mechanism rather than hard-coding
the paper's conclusion: for every step it forms a CPU estimate and a GPU
estimate *including the transfers the placement would require*, picks
the faster device, and memoises the decision per (kind, shape) — the
adaptive part.  With adaptivity disabled it can also force either device
so the ablation benchmark can show the mechanism's value.

The recorded profile table doubles as the data behind Fig. 2 (time
breakdown) and Fig. 8 (GEMM share).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Literal

from repro.simgpu.cost import CPUSpec, DeviceSpec

Placement = Literal["cpu", "gpu"]


@dataclass(frozen=True)
class PlacementDecision:
    """The profiler's verdict for one step signature."""

    kind: str
    key: tuple
    placement: Placement
    cpu_estimate_s: float
    gpu_estimate_s: float

    @property
    def advantage(self) -> float:
        """How much faster the chosen device is (ratio >= 1)."""
        slower = max(self.cpu_estimate_s, self.gpu_estimate_s)
        faster = min(self.cpu_estimate_s, self.gpu_estimate_s)
        return slower / max(faster, 1e-12)


@dataclass
class StepProfile:
    """Accumulated simulated time per step kind (the Fig. 2 breakdown)."""

    seconds: dict[str, float] = field(default_factory=dict)

    def add(self, kind: str, duration: float) -> None:
        self.seconds[kind] = self.seconds.get(kind, 0.0) + duration

    def fraction(self, kind: str) -> float:
        total = sum(self.seconds.values())
        return self.seconds.get(kind, 0.0) / total if total else 0.0


class StepProfiler:
    """Estimates and places steps; memoises per step signature."""

    def __init__(
        self,
        cpu_spec: CPUSpec,
        gpu_spec: DeviceSpec,
        *,
        mode: Literal["adaptive", "cpu_always", "gpu_always"] = "adaptive",
        tensor_core: bool = False,
        cpu_parallel: bool = True,
    ):
        self.cpu_spec = cpu_spec
        self.gpu_spec = gpu_spec
        self.mode = mode
        self.tensor_core = tensor_core
        self.cpu_parallel = cpu_parallel
        self.decisions: dict[tuple, PlacementDecision] = {}
        self.profile = StepProfile()

    # -- estimates -------------------------------------------------------------

    def _estimate_gemm(self, m: int, k: int, n: int, *, operands_on_gpu: bool) -> tuple[float, float]:
        """(cpu_seconds, gpu_seconds incl. required transfers)."""
        cpu = self.cpu_spec.gemm_seconds(m, k, n)
        gpu = self.gpu_spec.gemm_seconds(m, k, n, tensor_core=self.tensor_core)
        if not operands_on_gpu:
            in_bytes = 8 * (m * k + k * n)
            out_bytes = 8 * m * n
            gpu += self.gpu_spec.transfer_seconds(in_bytes) + self.gpu_spec.transfer_seconds(
                out_bytes
            )
        return cpu, gpu

    def _estimate_elementwise(self, nbytes: int, *, operands_on_gpu: bool) -> tuple[float, float]:
        cpu = self.cpu_spec.elementwise_seconds(nbytes, parallel=self.cpu_parallel)
        gpu = self.gpu_spec.elementwise_seconds(nbytes)
        if not operands_on_gpu:
            gpu += 2 * self.gpu_spec.transfer_seconds(nbytes)
        return cpu, gpu

    def _estimate_rng(self, nbytes: int) -> tuple[float, float]:
        cpu = self.cpu_spec.rng_seconds(nbytes, parallel=self.cpu_parallel)
        gpu = self.gpu_spec.curand_seconds(nbytes) + self.gpu_spec.transfer_seconds(nbytes)
        return cpu, gpu

    # -- placement -------------------------------------------------------------

    def place(
        self,
        kind: str,
        key: tuple,
        cpu_estimate: float,
        gpu_estimate: float,
    ) -> PlacementDecision:
        cache_key = (kind, key)
        cached = self.decisions.get(cache_key)
        if cached is not None:
            return cached
        if self.mode == "cpu_always":
            placement: Placement = "cpu"
        elif self.mode == "gpu_always":
            placement = "gpu"
        else:
            placement = "gpu" if gpu_estimate < cpu_estimate else "cpu"
        decision = PlacementDecision(
            kind=kind,
            key=key,
            placement=placement,
            cpu_estimate_s=cpu_estimate,
            gpu_estimate_s=gpu_estimate,
        )
        self.decisions[cache_key] = decision
        return decision

    def place_gemm(self, m: int, k: int, n: int, *, operands_on_gpu: bool = False) -> PlacementDecision:
        cpu, gpu = self._estimate_gemm(m, k, n, operands_on_gpu=operands_on_gpu)
        return self.place("gemm", (m, k, n, operands_on_gpu), cpu, gpu)

    def place_gemm_batched(self, batch: int, m: int, k: int, n: int) -> PlacementDecision:
        """Placement for a fused stack of ``batch`` (m,k)x(k,n) products.

        The CPU runs the stack as ``batch`` sequential GEMMs; the GPU
        pays one strided-batched launch plus the stacked transfers —
        batching shifts the break-even point toward the GPU, which is
        the point of the pool's dealer fusion.
        """
        cpu = batch * self.cpu_spec.gemm_seconds(m, k, n)
        gpu = self.gpu_spec.batched_gemm_seconds(batch, m, k, n, tensor_core=self.tensor_core)
        in_bytes = 8 * batch * (m * k + k * n)
        out_bytes = 8 * batch * m * n
        gpu += self.gpu_spec.transfer_seconds(in_bytes) + self.gpu_spec.transfer_seconds(out_bytes)
        return self.place("gemm_batched", (batch, m, k, n), cpu, gpu)

    def place_elementwise(self, nbytes: int, *, operands_on_gpu: bool = False) -> PlacementDecision:
        cpu, gpu = self._estimate_elementwise(nbytes, operands_on_gpu=operands_on_gpu)
        return self.place("elementwise", (nbytes, operands_on_gpu), cpu, gpu)

    def place_rng(self, nbytes: int) -> PlacementDecision:
        cpu, gpu = self._estimate_rng(nbytes)
        return self.place("rng", (nbytes,), cpu, gpu)

    # -- bookkeeping ------------------------------------------------------------

    def record(self, kind: str, duration: float) -> None:
        """Accumulate actual simulated duration under a step kind."""
        self.profile.add(kind, duration)
