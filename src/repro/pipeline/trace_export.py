"""Export simulated-clock traces to the Chrome tracing format.

``chrome://tracing`` / Perfetto read a simple JSON event list; exporting
the :class:`~repro.simgpu.clock.SimClock` trace lets you inspect the
double pipeline's overlap with real tooling instead of the ASCII Gantt.

Each resource becomes a "thread", each task a complete event (``ph:
"X"``).  Times are exported in microseconds, as the format expects.

Usage::

    from repro.pipeline.trace_export import export_chrome_trace
    export_chrome_trace(ctx.online_clock, "online.trace.json")
    # open chrome://tracing and load the file
"""

from __future__ import annotations

import json
from pathlib import Path

from repro.simgpu.clock import SimClock

__all__ = ["chrome_trace_events", "export_chrome_trace"]


def chrome_trace_events(
    clock: SimClock, *, process_name: str = "repro", min_duration_s: float = 0.0
) -> list[dict]:
    """The clock's trace as Chrome-tracing event dicts."""
    resources = {name: idx for idx, name in enumerate(clock.resources())}
    events: list[dict] = [
        {
            "name": "process_name",
            "ph": "M",
            "pid": 0,
            "tid": 0,
            "args": {"name": process_name},
        }
    ]
    for name, tid in resources.items():
        events.append(
            {"name": "thread_name", "ph": "M", "pid": 0, "tid": tid, "args": {"name": name}}
        )
    for task in clock.trace:
        if task.duration < min_duration_s:
            continue
        events.append(
            {
                "name": task.label or "task",
                "ph": "X",
                "pid": 0,
                "tid": resources.get(task.resource, len(resources)),
                "ts": task.start * 1e6,
                "dur": task.duration * 1e6,
            }
        )
    return events


def export_chrome_trace(
    clock: SimClock,
    path: str | Path,
    *,
    process_name: str = "repro",
    min_duration_s: float = 0.0,
) -> Path:
    """Write the trace JSON; returns the path.

    Remember to construct the context with ``FrameworkConfig(trace=True)``
    — without tracing the clock records no tasks.
    """
    path = Path(path)
    payload = {
        "traceEvents": chrome_trace_events(
            clock, process_name=process_name, min_duration_s=min_duration_s
        ),
        "displayTimeUnit": "ms",
    }
    path.write_text(json.dumps(payload))
    return path
