"""Deprecated shim — Chrome-trace export moved to :mod:`repro.telemetry.export`.

This module's two entry points now delegate to
:func:`repro.telemetry.export.chrome_trace_events` /
:func:`repro.telemetry.export.export_chrome_trace`, which accept either a
bare :class:`~repro.simgpu.clock.SimClock` (the historical surface,
byte-identical output) or a whole :class:`~repro.telemetry.Telemetry`
(multi-clock export with span lanes).  Importing from here keeps working
but emits a :class:`DeprecationWarning` once per entry point.

Usage (new)::

    from repro.telemetry import export_chrome_trace
    export_chrome_trace(ctx.online_clock, "online.trace.json")   # one clock
    export_chrome_trace(ctx.telemetry, "full.trace.json")        # everything
"""

from __future__ import annotations

from pathlib import Path

from repro.simgpu.clock import SimClock
from repro.telemetry import export as _export
from repro.util.deprecation import warn_deprecated

__all__ = ["chrome_trace_events", "export_chrome_trace"]

_MOVED = "moved to repro.telemetry.export; import from repro.telemetry instead"


def chrome_trace_events(
    clock: SimClock, *, process_name: str = "repro", min_duration_s: float = 0.0
) -> list[dict]:
    """The clock's trace as Chrome-tracing event dicts."""
    warn_deprecated(
        "pipeline.trace_export.chrome_trace_events",
        f"repro.pipeline.trace_export.chrome_trace_events is deprecated: {_MOVED}",
    )
    return _export.chrome_trace_events(
        clock, process_name=process_name, min_duration_s=min_duration_s
    )


def export_chrome_trace(
    clock: SimClock,
    path: str | Path,
    *,
    process_name: str = "repro",
    min_duration_s: float = 0.0,
) -> Path:
    """Write the trace JSON; returns the path."""
    warn_deprecated(
        "pipeline.trace_export.export_chrome_trace",
        f"repro.pipeline.trace_export.export_chrome_trace is deprecated: {_MOVED}",
    )
    return _export.export_chrome_trace(
        clock, path, process_name=process_name, min_duration_s=min_duration_s
    )
