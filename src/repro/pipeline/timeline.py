"""Trace analysis and Gantt rendering for the simulated clock.

The clock records every task as (resource, label, start, finish); this
module turns that into the quantities the evaluation talks about —
per-resource busy time, overlap between resources (what the pipelines
buy), makespan — plus an ASCII Gantt chart used by the examples.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.simgpu.clock import SimClock, Task


def _merge_intervals(intervals: list[tuple[float, float]]) -> list[tuple[float, float]]:
    """Union of possibly-overlapping intervals."""
    if not intervals:
        return []
    intervals = sorted(intervals)
    merged = [intervals[0]]
    for start, finish in intervals[1:]:
        last_start, last_finish = merged[-1]
        if start <= last_finish:
            merged[-1] = (last_start, max(last_finish, finish))
        else:
            merged.append((start, finish))
    return merged


def _total(intervals: list[tuple[float, float]]) -> float:
    return sum(b - a for a, b in intervals)


@dataclass
class TimelineSummary:
    """Digest of a trace window."""

    makespan: float
    busy_seconds: dict[str, float]
    span: tuple[float, float]

    def utilization(self, resource: str) -> float:
        """Busy fraction of a resource over the window."""
        width = self.span[1] - self.span[0]
        return self.busy_seconds.get(resource, 0.0) / width if width > 0 else 0.0

    def overlap_seconds(self) -> float:
        """Seconds by which summed busy time exceeds the makespan —
        a scalar measure of how much work ran concurrently."""
        return max(0.0, sum(self.busy_seconds.values()) - self.makespan)


def summarize(
    clock: SimClock, *, since: float = 0.0, until: float | None = None
) -> TimelineSummary:
    """Summarise the trace between ``since`` and ``until``."""
    until = clock.now() if until is None else until
    per_resource: dict[str, list[tuple[float, float]]] = {}
    for task in clock.trace:
        start = max(task.start, since)
        finish = min(task.finish, until)
        if finish > start:
            per_resource.setdefault(task.resource, []).append((start, finish))
    busy = {res: _total(_merge_intervals(ivals)) for res, ivals in per_resource.items()}
    return TimelineSummary(makespan=until - since, busy_seconds=busy, span=(since, until))


def render_gantt(
    clock: SimClock,
    *,
    since: float = 0.0,
    until: float | None = None,
    width: int = 78,
    resources: list[str] | None = None,
) -> str:
    """ASCII Gantt chart of the trace window, one row per resource."""
    until = clock.now() if until is None else until
    span = until - since
    if span <= 0:
        return "(empty timeline)"
    rows = resources if resources is not None else clock.resources()
    name_width = max((len(r) for r in rows), default=8)
    lines = [f"{'resource':<{name_width}} | 0 {'-' * (width - 8)} {span:.3e}s"]
    for res in rows:
        cells = [" "] * width
        for task in clock.trace:
            if task.resource != res:
                continue
            lo = max(task.start, since)
            hi = min(task.finish, until)
            if hi <= lo:
                continue
            a = int((lo - since) / span * (width - 1))
            b = max(a + 1, int((hi - since) / span * (width - 1)) + 1)
            for i in range(a, min(b, width)):
                cells[i] = "#"
        lines.append(f"{res:<{name_width}} | {''.join(cells)}")
    return "\n".join(lines)
