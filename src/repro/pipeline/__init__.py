"""Intra-node orchestration: adaptive placement and the double pipeline.

* :mod:`repro.pipeline.profiler` — profiling-guided adaptive GPU
  utilisation (paper Section 4.2): estimates each step on both devices
  and places it where it finishes sooner, memoising decisions per
  (step kind, shape);
* :mod:`repro.pipeline.scheduler` — the double pipeline (Section 4.3):
  pipeline 1 overlaps PCIe transfers with the sub-kernels of the Eq. 8
  GEMM (Fig. 5); pipeline 2's cross-layer overlap is expressed through
  the dependency edges the training loop passes in (Fig. 6);
* :mod:`repro.pipeline.timeline` — trace analysis: busy/overlap
  accounting and an ASCII Gantt renderer used by examples and tests.
"""

from repro.pipeline.profiler import StepProfiler, PlacementDecision
from repro.pipeline.scheduler import schedule_secure_gemm, GemmScheduleResult
from repro.pipeline.timeline import TimelineSummary, summarize, render_gantt

__all__ = [
    "StepProfiler",
    "PlacementDecision",
    "schedule_secure_gemm",
    "GemmScheduleResult",
    "TimelineSummary",
    "summarize",
    "render_gantt",
]
