"""Deterministic synthetic dataset generators.

Each generator returns ``(x, y)`` float64 arrays with ``x`` flattened to
(n, features) — the layout every model and baseline consumes — plus a
:class:`DatasetSpec` describing the image geometry for the CNN path.

Generators are seeded and pure, so a dataset is fully determined by
``(name, n_samples, seed)``; the benchmark harness relies on that to
give ParSecureML and the baselines byte-identical inputs.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.util.errors import ConfigError


@dataclass(frozen=True)
class DatasetSpec:
    """Static description of one dataset preset."""

    name: str
    image_shape: tuple[int, int, int]  # (h, w, c)
    n_classes: int
    paper_samples: int  # sample count the paper used
    notes: str

    @property
    def features(self) -> int:
        h, w, c = self.image_shape
        return h * w * c


# The paper's five datasets (Section 7.1).  NIST images are 512x512 in
# the paper; the preset defaults to that geometry, and the benchmark
# harness may run a reduced geometry recorded in EXPERIMENTS.md.
PAPER_DATASETS: dict[str, DatasetSpec] = {
    "MNIST": DatasetSpec(
        name="MNIST",
        image_shape=(28, 28, 1),
        n_classes=10,
        paper_samples=60_000,
        notes="handwritten-digit-like sparse strokes on zero background",
    ),
    "CIFAR-10": DatasetSpec(
        name="CIFAR-10",
        image_shape=(32, 32, 3),
        n_classes=10,
        paper_samples=50_000,
        notes="dense natural-image-like colour statistics",
    ),
    "NIST": DatasetSpec(
        name="NIST",
        image_shape=(512, 512, 1),
        n_classes=10,
        paper_samples=4_000,
        notes="fingerprint-like ridge patterns (oriented sinusoids)",
    ),
    "VGGFace2": DatasetSpec(
        name="VGGFace2",
        image_shape=(200, 200, 1),
        n_classes=10,
        paper_samples=40_000,
        notes="face-like smooth blobs, resized to 200x200 as in the paper",
    ),
    "SYNTHETIC": DatasetSpec(
        name="SYNTHETIC",
        image_shape=(32, 64, 1),
        n_classes=10,
        paper_samples=640_000,
        notes="the paper's generated 32x64 matrices",
    ),
}


def _labels_onehot(rng: np.random.Generator, n: int, n_classes: int) -> np.ndarray:
    labels = rng.integers(0, n_classes, size=n)
    y = np.zeros((n, n_classes))
    y[np.arange(n), labels] = 1.0
    return y


def mnist_like(n_samples: int, *, seed: int = 0, image_shape=(28, 28, 1)) -> tuple[np.ndarray, np.ndarray]:
    """Sparse stroke images: ~80% zeros, strokes in [0, 1] (MNIST-esque)."""
    rng = np.random.default_rng(seed)
    h, w, c = image_shape
    n_feat = h * w * c
    x = np.zeros((n_samples, n_feat))
    # each sample: a handful of random line segments rasterised coarsely
    for i in range(n_samples):
        img = np.zeros((h, w))
        for _ in range(rng.integers(3, 7)):
            r0, c0 = rng.integers(0, h), rng.integers(0, w)
            dr, dc = rng.integers(-2, 3), rng.integers(-2, 3)
            length = rng.integers(4, max(h, w))
            for s in range(length):
                r, cc = r0 + s * dr // 3, c0 + s * dc // 3
                if 0 <= r < h and 0 <= cc < w:
                    img[r, cc] = rng.uniform(0.5, 1.0)
        x[i] = np.repeat(img.reshape(-1), c)
    y = _labels_onehot(rng, n_samples, 10)
    return x, y


def cifar10_like(n_samples: int, *, seed: int = 0, image_shape=(32, 32, 3)) -> tuple[np.ndarray, np.ndarray]:
    """Dense smooth colour images in [0, 1] (low-pass filtered noise)."""
    rng = np.random.default_rng(seed)
    h, w, c = image_shape
    raw = rng.normal(size=(n_samples, h, w, c))
    # cheap separable smoothing for natural-image-like spatial correlation
    for axis in (1, 2):
        raw = (raw + np.roll(raw, 1, axis=axis) + np.roll(raw, -1, axis=axis)) / 3.0
    raw = (raw - raw.min()) / (raw.max() - raw.min() + 1e-12)
    return raw.reshape(n_samples, -1), _labels_onehot(rng, n_samples, 10)


def nist_like(n_samples: int, *, seed: int = 0, image_shape=(512, 512, 1)) -> tuple[np.ndarray, np.ndarray]:
    """Fingerprint-like oriented ridge patterns (sinusoidal gratings)."""
    rng = np.random.default_rng(seed)
    h, w, c = image_shape
    yy, xx = np.meshgrid(np.arange(h), np.arange(w), indexing="ij")
    x = np.empty((n_samples, h * w * c))
    for i in range(n_samples):
        theta = rng.uniform(0, np.pi)
        freq = rng.uniform(0.15, 0.45)
        phase = rng.uniform(0, 2 * np.pi)
        ridges = 0.5 + 0.5 * np.sin(freq * (xx * np.cos(theta) + yy * np.sin(theta)) + phase)
        ridges += rng.normal(scale=0.05, size=ridges.shape)
        x[i] = np.repeat(np.clip(ridges, 0, 1).reshape(-1), c)
    return x, _labels_onehot(rng, n_samples, 10)


def vggface2_like(n_samples: int, *, seed: int = 0, image_shape=(200, 200, 1)) -> tuple[np.ndarray, np.ndarray]:
    """Face-like images: smooth elliptical blobs plus feature spots."""
    rng = np.random.default_rng(seed)
    h, w, c = image_shape
    yy, xx = np.meshgrid(np.linspace(-1, 1, h), np.linspace(-1, 1, w), indexing="ij")
    x = np.empty((n_samples, h * w * c))
    for i in range(n_samples):
        cy, cx = rng.uniform(-0.2, 0.2, size=2)
        ry, rx = rng.uniform(0.5, 0.8, size=2)
        face = np.exp(-(((yy - cy) / ry) ** 2 + ((xx - cx) / rx) ** 2) * 2.0)
        for _ in range(3):  # eyes + mouth analogues
            fy, fx = rng.uniform(-0.4, 0.4, size=2)
            face -= 0.4 * np.exp(-(((yy - cy - fy) * 8) ** 2 + ((xx - cx - fx) * 8) ** 2))
        face += rng.normal(scale=0.03, size=face.shape)
        x[i] = np.repeat(np.clip(face, 0, 1).reshape(-1), c)
    return x, _labels_onehot(rng, n_samples, 10)


def synthetic_matrix_dataset(
    n_samples: int, *, seed: int = 0, image_shape=(32, 64, 1)
) -> tuple[np.ndarray, np.ndarray]:
    """The paper's SYNTHETIC workload: random 32x64 matrices."""
    rng = np.random.default_rng(seed)
    h, w, c = image_shape
    x = rng.uniform(0.0, 1.0, size=(n_samples, h * w * c))
    return x, _labels_onehot(rng, n_samples, 10)


def sequence_dataset(
    n_samples: int, n_steps: int = 8, step_features: int = 16, *, seed: int = 0
) -> tuple[np.ndarray, np.ndarray]:
    """Time-series data for the RNN: noisy class-dependent sinusoids."""
    rng = np.random.default_rng(seed)
    n_classes = 10
    labels = rng.integers(0, n_classes, size=n_samples)
    t = np.linspace(0, 2 * np.pi, n_steps * step_features)
    x = np.sin((labels[:, None] + 1) * t[None, :] / 2.0) + rng.normal(
        scale=0.1, size=(n_samples, t.size)
    )
    y = np.zeros((n_samples, n_classes))
    y[np.arange(n_samples), labels] = 1.0
    return x, y


def separable_classification(
    n_samples: int, n_features: int = 20, *, margin: float = 1.0, seed: int = 0
) -> tuple[np.ndarray, np.ndarray]:
    """Linearly separable binary data with labels in {-1, +1} (SVM tests)."""
    rng = np.random.default_rng(seed)
    w = rng.normal(size=n_features)
    w /= np.linalg.norm(w)
    x = rng.normal(size=(n_samples, n_features))
    score = x @ w
    labels = np.where(score >= 0, 1.0, -1.0)
    x += np.outer(labels * margin / 2.0, w)  # push classes apart
    return x, labels.reshape(-1, 1)


_GENERATORS = {
    "MNIST": mnist_like,
    "CIFAR-10": cifar10_like,
    "NIST": nist_like,
    "VGGFace2": vggface2_like,
    "SYNTHETIC": synthetic_matrix_dataset,
}


def make_dataset(
    name: str,
    n_samples: int,
    *,
    seed: int = 0,
    image_shape: tuple[int, int, int] | None = None,
) -> tuple[np.ndarray, np.ndarray, DatasetSpec]:
    """Generate a preset dataset; optionally override the geometry.

    Overriding ``image_shape`` (e.g. running NIST at 128x128) keeps the
    statistics but shrinks the feature count; the harness records any
    override in its output so EXPERIMENTS.md can cite it.
    """
    if name not in _GENERATORS:
        raise ConfigError(f"unknown dataset {name!r}; have {sorted(_GENERATORS)}")
    spec = PAPER_DATASETS[name]
    shape = image_shape or spec.image_shape
    x, y = _GENERATORS[name](n_samples, seed=seed, image_shape=shape)
    if image_shape is not None:
        spec = DatasetSpec(
            name=spec.name,
            image_shape=tuple(image_shape),
            n_classes=spec.n_classes,
            paper_samples=spec.paper_samples,
            notes=spec.notes + f" (geometry override {image_shape})",
        )
    return x, y, spec
