"""Synthetic datasets standing in for the paper's five (offline rule).

The evaluation's claims are throughput-vs-shape claims, so each preset
reproduces the *shapes and statistics* of its namesake: sample count,
image geometry, channel count, value range, and the sparsity structure
(e.g. MNIST-like digits are mostly-zero canvases with dense strokes).
``scale`` shrinks sample counts for wall-clock-bounded runs while
keeping per-batch shapes identical, which is what the per-batch cost
model keys on; EXPERIMENTS.md records the scales each figure ran at.
"""

from repro.datasets.synthetic import (
    DatasetSpec,
    make_dataset,
    mnist_like,
    cifar10_like,
    nist_like,
    vggface2_like,
    synthetic_matrix_dataset,
    sequence_dataset,
    separable_classification,
    PAPER_DATASETS,
)

__all__ = [
    "DatasetSpec",
    "make_dataset",
    "mnist_like",
    "cifar10_like",
    "nist_like",
    "vggface2_like",
    "synthetic_matrix_dataset",
    "sequence_dataset",
    "separable_classification",
    "PAPER_DATASETS",
]
