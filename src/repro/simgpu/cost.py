"""Analytical cost model calibrated to the paper's platform.

The evaluation cluster in Section 7.1: per node, 2x Intel Xeon E5-2670v3
+ one NVIDIA Tesla V100, PCIe 3.0 x16, nodes linked by 100 Gb/s 4xEDR
InfiniBand.  The constants below model that hardware at the fidelity the
paper's claims need:

* **GEMM** on the GPU: roofline of compute (peak TFLOP/s scaled by a
  size-dependent utilisation — small matrices cannot fill 80 SMs) and
  memory bandwidth, plus a fixed kernel-launch overhead.  The
  utilisation curve ``flops / (flops + K)`` reproduces the paper's
  "GPUs want large workloads" behaviour (Fig. 17, Table 2's MNIST rows).
* **Tensor Cores**: a higher peak for GEMM (cublasSgemmEx with
  CUBLAS_TENSOR_OP_MATH, Section 5.2), gated by the same utilisation —
  matching the Markidis et al. observation of 2.5-12x over FP32 cuBLAS
  that the paper cites.
* **PCIe**: effective bandwidth below the 16 GB/s spec plus a fixed
  per-transfer latency; this is what the double pipeline overlaps.
* **CPU**: a deliberately modest effective GEMM rate.  The paper's
  SecureML reimplementation and its "original" CPU baselines share one
  CPU code base whose measured numbers (Tables 1-3) imply tens of
  GFLOP/s, not the machine's 880 GFLOP/s peak; we calibrate to the
  *measured ratios* (SecureML ~2x plain CPU, SecureML ~250x plain GPU).

Timing claims in this reproduction are therefore *model-derived*; the
numerics are real.  See DESIGN.md Section 2.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from repro.util.validation import check_positive


@dataclass(frozen=True)
class DeviceSpec:
    """Performance envelope of one simulated GPU."""

    name: str
    fp32_tflops: float  # peak FP32 GEMM throughput
    tensor_tflops: float  # peak Tensor-Core GEMM throughput (FP16 in, FP32 acc)
    mem_bw_gbps: float  # device memory bandwidth (GB/s)
    pcie_gbps: float  # effective host<->device bandwidth (GB/s)
    pcie_latency_s: float  # per-transfer setup latency
    kernel_launch_s: float  # per-kernel launch overhead
    util_knee_flops: float  # K in util = flops / (flops + K)
    curand_gbps: float  # on-device RNG generation rate (GB/s)
    curand_setup_s: float  # generator creation / warm-up cost
    memory_bytes: int  # device memory capacity

    def utilization(self, flops: float) -> float:
        """Fraction of peak achievable for a kernel of ``flops`` work."""
        if flops <= 0:
            return 1.0
        return flops / (flops + self.util_knee_flops)

    def gemm_seconds(
        self, m: int, k: int, n: int, *, tensor_core: bool = False, dtype_bytes: int = 4
    ) -> float:
        """Time for one (m,k)x(k,n) GEMM on this device.

        Roofline: compute-bound term at size-scaled peak, memory-bound
        floor, plus launch overhead.  Tensor Cores raise the compute peak
        only (they share HBM bandwidth with everything else).
        """
        flops = 2.0 * m * k * n
        peak = (self.tensor_tflops if tensor_core else self.fp32_tflops) * 1e12
        compute_s = flops / (peak * self.utilization(flops))
        bytes_touched = dtype_bytes * (m * k + k * n + m * n)
        memory_s = bytes_touched / (self.mem_bw_gbps * 1e9)
        return self.kernel_launch_s + max(compute_s, memory_s)

    def batched_gemm_seconds(
        self, batch: int, m: int, k: int, n: int, *, tensor_core: bool = False, dtype_bytes: int = 4
    ) -> float:
        """Time for one *batched* GEMM of ``batch`` stacked (m,k)x(k,n) products.

        Models cublasGemmStridedBatched: a single launch covers the whole
        stack, and utilisation is judged on the stack's total flops (the
        batched kernel keeps the SMs fed across the small products).  For
        ``batch >= 2`` this is strictly cheaper than ``batch`` separate
        :meth:`gemm_seconds` calls — the launch overhead is paid once and
        the utilisation term can only improve.
        """
        flops = 2.0 * batch * m * k * n
        peak = (self.tensor_tflops if tensor_core else self.fp32_tflops) * 1e12
        compute_s = flops / (peak * self.utilization(flops))
        bytes_touched = dtype_bytes * batch * (m * k + k * n + m * n)
        memory_s = bytes_touched / (self.mem_bw_gbps * 1e9)
        return self.kernel_launch_s + max(compute_s, memory_s)

    def elementwise_seconds(self, nbytes: float) -> float:
        """Time for a bandwidth-bound elementwise kernel touching ``nbytes``."""
        return self.kernel_launch_s + nbytes / (self.mem_bw_gbps * 1e9)

    def transfer_seconds(self, nbytes: float) -> float:
        """One PCIe H2D or D2H transfer of ``nbytes``."""
        return self.pcie_latency_s + nbytes / (self.pcie_gbps * 1e9)

    def curand_seconds(self, nbytes: float, *, include_setup: bool = False) -> float:
        """On-device random generation of ``nbytes`` (cuRAND model, Fig. 7)."""
        t = self.kernel_launch_s + nbytes / (self.curand_gbps * 1e9)
        if include_setup:
            t += self.curand_setup_s
        return t


@dataclass(frozen=True)
class CPUSpec:
    """Performance envelope of the host CPUs (one node)."""

    name: str
    gemm_gflops: float  # effective dense-GEMM rate of the framework's CPU path
    simd_gbps_single: float  # single-thread elementwise/memory rate (GB/s)
    rng_gbps_single: float  # single-thread MT19937 generation rate (GB/s)
    n_cores: int
    parallel_efficiency: float  # scaling efficiency of the Section 5.1 parallel path
    cache_knee_bytes: float = 24e6  # ~L3; GEMM rate degrades past this working set
    # Client-side fixed-point encoding (float -> ring conversion during
    # "generate the encrypted data", Fig. 2).  Layout-bound and shared
    # by both systems; calibrated so the encrypt step dominates the
    # offline phase as the paper's Fig. 2 measures (62.68 s for the
    # 0.36 GB MNIST set implies a slow conversion path).
    encode_gbps: float = 0.5

    def parallel_factor(self, enabled: bool) -> float:
        """Speedup factor of the Section 5.1 CPU parallelism when on."""
        if not enabled:
            return 1.0
        return max(1.0, self.n_cores * self.parallel_efficiency)

    def gemm_efficiency(self, m: int, k: int, n: int) -> float:
        """Cache-aware degradation: the prototype GEMM loop loses locality
        once the operands overflow L3 (sqrt law — each miss stalls one of
        the two inner-loop streams).  This is what the paper's VGGFace2
        rows imply: per-batch SecureML times grow super-linearly in the
        feature count relative to the MNIST rows."""
        working = 8.0 * (m * k + k * n + m * n)
        if working <= self.cache_knee_bytes:
            return 1.0
        return (self.cache_knee_bytes / working) ** 0.5

    def gemm_seconds(self, m: int, k: int, n: int) -> float:
        rate = self.gemm_gflops * 1e9 * self.gemm_efficiency(m, k, n)
        return (2.0 * m * k * n) / rate

    def elementwise_seconds(self, nbytes: float, *, parallel: bool = False) -> float:
        return nbytes / (self.simd_gbps_single * 1e9 * self.parallel_factor(parallel))

    def rng_seconds(self, nbytes: float, *, parallel: bool = False) -> float:
        return nbytes / (self.rng_gbps_single * 1e9 * self.parallel_factor(parallel))


# -- Calibrated platform specs ------------------------------------------------

V100_SPEC = DeviceSpec(
    name="tesla-v100",
    fp32_tflops=14.0,
    tensor_tflops=50.0,  # effective cublasSgemmEx tensor-op rate (~3.5x FP32)
    mem_bw_gbps=900.0,
    pcie_gbps=12.0,
    pcie_latency_s=10e-6,
    kernel_launch_s=8e-6,
    util_knee_flops=1.5e8,
    curand_gbps=60.0,
    curand_setup_s=5e-3,
    memory_bytes=32 * 1024**3,
)

P100_SPEC = DeviceSpec(
    name="tesla-p100",
    fp32_tflops=9.3,
    tensor_tflops=9.3,  # no tensor cores on Pascal
    mem_bw_gbps=720.0,
    pcie_gbps=12.0,
    pcie_latency_s=10e-6,
    kernel_launch_s=8e-6,
    util_knee_flops=1.2e8,
    curand_gbps=45.0,
    curand_setup_s=5e-3,
    memory_bytes=16 * 1024**3,
)

# The effective CPU rates are calibrated to the paper's own measurements,
# not the silicon's peak: Table 1/3 imply the frameworks' CPU GEMM path
# sustains single-digit GFLOP/s (e.g. SecureML MLP/MNIST online 113 s ->
# ~24 ms per batch for ~100 MFLOP of GEMM work), i.e. a straightforward
# research-prototype loop rather than tuned BLAS.
XEON_E5_2670V3_SPEC = CPUSpec(
    name="2x-xeon-e5-2670v3",
    gemm_gflops=3.0,  # effective rate of the frameworks' CPU GEMM path
    simd_gbps_single=6.0,
    rng_gbps_single=0.6,  # MT19937, one thread (paper Section 5.1)
    n_cores=24,
    parallel_efficiency=0.45,
)


def scaled_spec(spec: DeviceSpec, factor: float) -> DeviceSpec:
    """A device uniformly ``factor``x faster (used by what-if ablations)."""
    check_positive(factor, "factor")
    return replace(
        spec,
        name=f"{spec.name}-x{factor:g}",
        fp32_tflops=spec.fp32_tflops * factor,
        tensor_tflops=spec.tensor_tflops * factor,
        mem_bw_gbps=spec.mem_bw_gbps * factor,
    )
