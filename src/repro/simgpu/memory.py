"""Device memory: buffers and an accounting allocator.

A :class:`DeviceBuffer` wraps the NumPy array that holds the *actual*
values (the simulator computes real results) together with the identity
of the owning device.  The allocator enforces capacity and use-after-free
discipline, the two properties real CUDA code most often trips over.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.util.errors import DeviceError


@dataclass
class DeviceBuffer:
    """A tensor resident in one simulated GPU's memory."""

    data: np.ndarray
    device_name: str
    freed: bool = False

    @property
    def shape(self):
        return self.data.shape

    @property
    def dtype(self):
        return self.data.dtype

    @property
    def nbytes(self) -> int:
        return self.data.nbytes

    def require_live(self) -> np.ndarray:
        """Return the payload, raising on use-after-free."""
        if self.freed:
            raise DeviceError(
                f"use of freed device buffer (shape {self.data.shape}) on {self.device_name}"
            )
        return self.data


class MemoryPool:
    """Capacity-enforcing allocator for one device."""

    def __init__(self, capacity_bytes: int, device_name: str):
        self.capacity_bytes = int(capacity_bytes)
        self.device_name = device_name
        self.allocated_bytes = 0
        self.peak_bytes = 0
        self._live: set[int] = set()

    def allocate(self, data: np.ndarray) -> DeviceBuffer:
        """Place ``data`` (copied by reference) into device memory."""
        nbytes = data.nbytes
        if self.allocated_bytes + nbytes > self.capacity_bytes:
            raise DeviceError(
                f"{self.device_name}: out of device memory "
                f"(requested {nbytes}, in use {self.allocated_bytes}, "
                f"capacity {self.capacity_bytes})"
            )
        buf = DeviceBuffer(data=data, device_name=self.device_name)
        self.allocated_bytes += nbytes
        self.peak_bytes = max(self.peak_bytes, self.allocated_bytes)
        self._live.add(id(buf))
        return buf

    def free(self, buf: DeviceBuffer) -> None:
        """Release a buffer; double-free raises."""
        if buf.freed or id(buf) not in self._live:
            raise DeviceError(f"{self.device_name}: double free of device buffer")
        buf.freed = True
        self._live.discard(id(buf))
        self.allocated_bytes -= buf.nbytes

    def free_all(self) -> None:
        """Reset the pool (end of a batch/step); outstanding buffers die."""
        self._live.clear()
        self.allocated_bytes = 0
