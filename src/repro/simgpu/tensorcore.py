"""Tensor-Core emulation utilities (paper Section 5.2, Figs. 9 & 15).

Volta Tensor Cores compute ``D = A x B + C`` with FP16 inputs and FP32
accumulation.  The throughput side is modelled in
:class:`repro.simgpu.cost.DeviceSpec` (``tensor_tflops``); this module
provides the *numeric* side — genuine FP16 input rounding with FP32
accumulation — so the paper's "without sacrificing accuracy" claim is a
measurable property rather than an assumption.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["tensor_core_gemm", "quantize_fp16", "TensorCoreAccuracy", "accuracy_report"]


def quantize_fp16(x: np.ndarray) -> np.ndarray:
    """Round to FP16 and back — the precision loss at the Tensor-Core inlet.

    Values beyond fp16's +/-65504 saturate to infinity, exactly as the
    hardware inlet would; the overflow warning is the modelled effect,
    not an error.
    """
    with np.errstate(over="ignore"):
        return x.astype(np.float16).astype(np.float32)


def tensor_core_gemm(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    """Emulated ``cublasSgemmEx``: FP16 operands, FP32 accumulation.

    NumPy accumulates float32 matmul in float32 (pairwise), matching the
    Tensor Core's FP32 accumulator closely enough for accuracy studies.
    """
    return quantize_fp16(a) @ quantize_fp16(b)


@dataclass(frozen=True)
class TensorCoreAccuracy:
    """Accuracy comparison of Tensor-Core vs FP32 GEMM on given operands."""

    max_abs_error: float
    max_rel_error: float
    mean_rel_error: float

    @property
    def acceptable_for_training(self) -> bool:
        """The paper's working assumption: sub-percent mean error."""
        return self.mean_rel_error < 1e-2


def accuracy_report(a: np.ndarray, b: np.ndarray) -> TensorCoreAccuracy:
    """Measure the FP16-input error against an FP64 reference product."""
    ref = a.astype(np.float64) @ b.astype(np.float64)
    tc = tensor_core_gemm(np.asarray(a, dtype=np.float32), np.asarray(b, dtype=np.float32))
    abs_err = np.abs(tc - ref)
    denom = np.maximum(np.abs(ref), 1e-12)
    rel = abs_err / denom
    return TensorCoreAccuracy(
        max_abs_error=float(abs_err.max()),
        max_rel_error=float(rel.max()),
        mean_rel_error=float(rel.mean()),
    )
