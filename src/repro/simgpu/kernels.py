"""Shape-manipulation kernels shared by the secure and plain stacks.

``im2col``/``col2im`` lower a convolution to one dense GEMM — the
standard GPU strategy, and the one ParSecureML relies on: a convolution
becomes a *triplet multiplication* after lowering, so the same Beaver
machinery protects it.  Crucially the lowering itself is data-movement
only (gather/scatter), i.e. *linear*, so each server can apply it to its
additive share locally without interaction.

These functions are dtype-agnostic (they index, never multiply), so they
work on float images and on uint64 ring shares alike.
"""

from __future__ import annotations

import numpy as np

from repro.util.errors import ShapeError


def conv_output_size(h: int, w: int, kh: int, kw: int, stride: int = 1) -> tuple[int, int]:
    """Spatial output size of a VALID convolution."""
    oh = (h - kh) // stride + 1
    ow = (w - kw) // stride + 1
    if oh <= 0 or ow <= 0:
        raise ShapeError(
            f"kernel ({kh}x{kw}, stride {stride}) does not fit input ({h}x{w})"
        )
    return oh, ow


def _patch_indices(
    h: int, w: int, c: int, kh: int, kw: int, stride: int
) -> tuple[np.ndarray, int, int]:
    """Flat gather indices of shape (oh*ow, c*kh*kw) into an (h, w, c) image."""
    oh, ow = conv_output_size(h, w, kh, kw, stride)
    # index grid of one patch
    di, dj = np.meshgrid(np.arange(kh), np.arange(kw), indexing="ij")
    ci = np.arange(c)
    # (kh*kw*c,) offsets in flattened (h, w, c) layout
    patch = (di[..., None] * w * c + dj[..., None] * c + ci).reshape(-1)
    # top-left corners of every output location
    oi, oj = np.meshgrid(np.arange(oh) * stride, np.arange(ow) * stride, indexing="ij")
    corners = (oi * w * c + oj * c).reshape(-1)
    return corners[:, None] + patch[None, :], oh, ow


def im2col(images: np.ndarray, kh: int, kw: int, stride: int = 1) -> np.ndarray:
    """Lower a batch of images to patch-rows for a GEMM convolution.

    Parameters
    ----------
    images:
        Array of shape ``(n, h, w, c)`` (channels-last) of any dtype.
    Returns
    -------
    Array of shape ``(n * oh * ow, c * kh * kw)``: one row per output
    pixel, ready to be multiplied by a ``(c*kh*kw, out_channels)`` filter
    matrix.
    """
    if images.ndim != 4:
        raise ShapeError(f"im2col expects (n, h, w, c) input, got shape {images.shape}")
    n, h, w, c = images.shape
    idx, oh, ow = _patch_indices(h, w, c, kh, kw, stride)
    flat = images.reshape(n, h * w * c)
    cols = flat[:, idx]  # (n, oh*ow, c*kh*kw)
    return cols.reshape(n * oh * ow, c * kh * kw)


def col2im(
    cols: np.ndarray,
    images_shape: tuple[int, int, int, int],
    kh: int,
    kw: int,
    stride: int = 1,
) -> np.ndarray:
    """Adjoint of :func:`im2col`: scatter-add patch-rows back to images.

    Needed by the convolution backward pass (gradient w.r.t. the input).
    Works in the ring too: scatter-add wraps modulo 2^64 on uint64.
    """
    n, h, w, c = images_shape
    idx, oh, ow = _patch_indices(h, w, c, kh, kw, stride)
    flat = np.zeros((n, h * w * c), dtype=cols.dtype)
    cols3 = cols.reshape(n, oh * ow, -1)
    with np.errstate(over="ignore"):
        for img, patches in zip(flat, cols3):
            np.add.at(img, idx.reshape(-1), patches.reshape(-1))
    return flat.reshape(images_shape)


def im2col_bytes(images_shape: tuple[int, int, int, int], kh: int, kw: int, stride: int, itemsize: int) -> int:
    """Bytes moved by the lowering — what the cost model charges."""
    n, h, w, c = images_shape
    oh, ow = conv_output_size(h, w, kh, kw, stride)
    read = n * h * w * c * itemsize
    written = n * oh * ow * c * kh * kw * itemsize
    return read + written
