"""Simulated compute devices: :class:`SimGPU` and :class:`SimCPU`.

Each device owns resources on a shared :class:`SimClock`:

* a GPU contributes ``<name>.s<k>`` compute streams plus ``<name>.h2d``
  and ``<name>.d2h`` DMA engines (PCIe is full-duplex, so the two
  directions are independent resources, as on real hardware);
* a CPU contributes a single ``<name>.cpu`` timeline (the paper's
  host-side work is modelled at whole-socket granularity, with Section
  5.1's parallelism folded into the rate, not into extra resources).

Every method *really computes* its result with NumPy and *also* returns
the :class:`Task` carrying its simulated interval, so callers can build
dependency graphs (pipelines) out of the return values.

Kernel time lands in the telemetry registry as histograms
(``simgpu.kernel_seconds{device,kind}`` / ``simcpu.seconds{device,kind}``)
together with PCIe byte counters and a queue-wait histogram measuring how
long each task sat ready behind a busy stream; the historical counters
(``gemm_count``, ``h2d_bytes``, ...) are thin views over those series.
"""

from __future__ import annotations

import numpy as np

from repro.fixedpoint.ring import ring_add, ring_matmul, ring_matmul_batched, ring_mul, ring_sub
from repro.simgpu.clock import SimClock, Task
from repro.simgpu.cost import CPUSpec, DeviceSpec
from repro.simgpu.memory import DeviceBuffer, MemoryPool
from repro.telemetry.registry import MetricRegistry
from repro.util.errors import DeviceError


def _queue_wait(task: Task, deps) -> float:
    """Seconds the task sat ready (all deps done) before its resource freed up."""
    ready = max((d.finish for d in deps), default=0.0)
    return max(0.0, task.start - ready)


class SimGPU:
    """One simulated GPU attached to a shared clock."""

    def __init__(
        self,
        clock: SimClock,
        spec: DeviceSpec,
        name: str = "gpu0",
        *,
        n_streams: int = 2,
        tensor_core: bool = False,
        telemetry=None,
    ):
        self.clock = clock
        self.spec = spec
        self.name = name
        self.n_streams = int(n_streams)
        self.tensor_core = bool(tensor_core)
        self.pool = MemoryPool(spec.memory_bytes, name)
        for s in range(self.n_streams):
            clock.add_resource(self.stream(s))
        clock.add_resource(self.h2d_engine)
        clock.add_resource(self.d2h_engine)
        registry = telemetry.registry if telemetry is not None else MetricRegistry()
        self._kernel_seconds = registry.histogram(
            "simgpu.kernel_seconds", "kernel time by device and kind"
        )
        self._queue_wait_seconds = registry.histogram(
            "simgpu.queue_wait_seconds", "time ready work waited behind busy streams"
        )
        self._h2d = registry.counter("simgpu.h2d_bytes", "host-to-device PCIe bytes")
        self._d2h = registry.counter("simgpu.d2h_bytes", "device-to-host PCIe bytes")
        self._gemm_count = registry.counter("simgpu.gemm_count", "GEMM kernel launches")
        self._gemm_flops = registry.counter("simgpu.gemm_flops", "GEMM floating-point ops")
        self._curand_initialised = False

    # -- thin views over the registry (historical counter surface) -------------

    @property
    def gemm_count(self) -> int:
        return int(self._gemm_count.value(device=self.name))

    @property
    def gemm_flops(self) -> float:
        return self._gemm_flops.value(device=self.name)

    @property
    def h2d_bytes(self) -> int:
        return int(self._h2d.value(device=self.name))

    @property
    def d2h_bytes(self) -> int:
        return int(self._d2h.value(device=self.name))

    def _observe(self, kind: str, task: Task, deps) -> Task:
        self._kernel_seconds.observe(task.duration, device=self.name, kind=kind)
        self._queue_wait_seconds.observe(_queue_wait(task, deps), device=self.name)
        return task

    def stream(self, k: int = 0) -> str:
        if not 0 <= k < self.n_streams:
            raise DeviceError(f"{self.name}: stream {k} out of range (have {self.n_streams})")
        return f"{self.name}.s{k}"

    @property
    def h2d_engine(self) -> str:
        return f"{self.name}.h2d"

    @property
    def d2h_engine(self) -> str:
        return f"{self.name}.d2h"

    # -- transfers -------------------------------------------------------------

    def h2d(self, array: np.ndarray, deps=(), label: str = "h2d") -> tuple[DeviceBuffer, Task]:
        """Copy a host array into device memory over PCIe."""
        buf = self.pool.allocate(np.ascontiguousarray(array))
        t = self.clock.run(
            self.h2d_engine, self.spec.transfer_seconds(buf.nbytes), deps=deps, label=label
        )
        self._h2d.inc(buf.nbytes, device=self.name)
        self._observe("h2d", t, deps)
        return buf, t

    def d2h(self, buf: DeviceBuffer, deps=(), label: str = "d2h") -> tuple[np.ndarray, Task]:
        """Copy a device buffer back to the host over PCIe."""
        data = buf.require_live()
        t = self.clock.run(
            self.d2h_engine, self.spec.transfer_seconds(data.nbytes), deps=deps, label=label
        )
        self._d2h.inc(data.nbytes, device=self.name)
        self._observe("d2h", t, deps)
        return data, t

    def free(self, buf: DeviceBuffer) -> None:
        self.pool.free(buf)

    # -- kernels -----------------------------------------------------------------

    def _charge_gemm(self, m: int, k: int, n: int, stream: int, deps, label: str) -> Task:
        dur = self.spec.gemm_seconds(m, k, n, tensor_core=self.tensor_core)
        self._gemm_count.inc(1, device=self.name)
        self._gemm_flops.inc(2.0 * m * k * n, device=self.name)
        t = self.clock.run(self.stream(stream), dur, deps=deps, label=label)
        return self._observe("gemm", t, deps)

    def gemm_ring(
        self,
        a: DeviceBuffer,
        b: DeviceBuffer,
        deps=(),
        *,
        stream: int = 0,
        label: str = "gemm_ring",
    ) -> tuple[DeviceBuffer, Task]:
        """Ring GEMM (Z_{2^64}) on device buffers.

        Numerically exact via the limb decomposition; *timed* as the
        paper's cublasSgemmEx float GEMM of the same (m,k,n), because
        ParSecureML performs its share arithmetic in floating point on
        the GPU (Section 5.2) — see DESIGN.md for the fidelity note.
        """
        av, bv = a.require_live(), b.require_live()
        out = self.pool.allocate(ring_matmul(av, bv))
        t = self._charge_gemm(av.shape[0], av.shape[1], bv.shape[1], stream, deps, label)
        return out, t

    def gemm_ring_batched(
        self,
        a: DeviceBuffer,
        b: DeviceBuffer,
        deps=(),
        *,
        stream: int = 0,
        label: str = "gemm_ring_batched",
    ) -> tuple[DeviceBuffer, Task]:
        """Stacked ring GEMM: one launch for a (B,m,k) x (B,k,n) batch.

        Timed as one strided-batched GEMM (the launch overhead amortises
        over the stack; see :meth:`DeviceSpec.batched_gemm_seconds`) —
        the kernel the offline triplet pool fuses its dealer products
        into.
        """
        av, bv = a.require_live(), b.require_live()
        batch, m, k = av.shape
        n = bv.shape[2]
        out = self.pool.allocate(ring_matmul_batched(av, bv))
        dur = self.spec.batched_gemm_seconds(batch, m, k, n, tensor_core=self.tensor_core)
        self._gemm_count.inc(1, device=self.name)
        self._gemm_flops.inc(2.0 * batch * m * k * n, device=self.name)
        t = self.clock.run(self.stream(stream), dur, deps=deps, label=label)
        return out, self._observe("gemm", t, deps)

    def gemm_float(
        self,
        a: DeviceBuffer,
        b: DeviceBuffer,
        deps=(),
        *,
        stream: int = 0,
        label: str = "gemm",
        fp16_inputs: bool | None = None,
    ) -> tuple[DeviceBuffer, Task]:
        """Float GEMM for the non-secure baselines.

        When the device is in tensor-core mode (or ``fp16_inputs`` is
        forced) the inputs are *really* rounded to FP16 before the
        product — the accuracy consequence of cublasSgemmEx that the
        paper reports as negligible, which tests verify.
        """
        av, bv = a.require_live(), b.require_live()
        use_fp16 = self.tensor_core if fp16_inputs is None else fp16_inputs
        if use_fp16:
            prod = av.astype(np.float16).astype(np.float32) @ bv.astype(np.float16).astype(
                np.float32
            )
        else:
            prod = av.astype(np.float32) @ bv.astype(np.float32)
        out = self.pool.allocate(prod)
        t = self._charge_gemm(av.shape[0], av.shape[1], bv.shape[1], stream, deps, label)
        return out, t

    def elementwise(
        self,
        fn,
        bufs: list[DeviceBuffer],
        deps=(),
        *,
        stream: int = 0,
        label: str = "elementwise",
    ) -> tuple[DeviceBuffer, Task]:
        """Apply ``fn(*arrays) -> array`` as a bandwidth-bound kernel."""
        arrays = [b.require_live() for b in bufs]
        result = fn(*arrays)
        out = self.pool.allocate(result)
        nbytes = sum(a.nbytes for a in arrays) + result.nbytes
        t = self.clock.run(
            self.stream(stream), self.spec.elementwise_seconds(nbytes), deps=deps, label=label
        )
        self._observe("elementwise", t, deps)
        return out, t

    def ring_add(self, a: DeviceBuffer, b: DeviceBuffer, deps=(), **kw):
        return self.elementwise(ring_add, [a, b], deps=deps, label=kw.pop("label", "ring_add"), **kw)

    def ring_sub(self, a: DeviceBuffer, b: DeviceBuffer, deps=(), **kw):
        return self.elementwise(ring_sub, [a, b], deps=deps, label=kw.pop("label", "ring_sub"), **kw)

    def ring_mul(self, a: DeviceBuffer, b: DeviceBuffer, deps=(), **kw):
        return self.elementwise(ring_mul, [a, b], deps=deps, label=kw.pop("label", "ring_mul"), **kw)

    def curand_uniform_ring(
        self, shape, rng: np.random.Generator, deps=(), *, stream: int = 0
    ) -> tuple[DeviceBuffer, Task]:
        """On-device uniform ring generation (cuRAND model, Fig. 7).

        The first call pays the generator warm-up cost, as cuRAND does.
        """
        data = rng.integers(0, 2**64, size=shape, dtype=np.uint64)
        out = self.pool.allocate(data)
        dur = self.spec.curand_seconds(data.nbytes, include_setup=not self._curand_initialised)
        self._curand_initialised = True
        t = self.clock.run(self.stream(stream), dur, deps=deps, label="curand")
        self._observe("curand", t, deps)
        return out, t


class SimCPU:
    """The host CPU timeline of one node."""

    def __init__(
        self,
        clock: SimClock,
        spec: CPUSpec,
        name: str = "cpu0",
        *,
        parallel_enabled: bool = True,
        telemetry=None,
    ):
        self.clock = clock
        self.spec = spec
        self.name = name
        self.parallel_enabled = bool(parallel_enabled)
        clock.add_resource(self.resource)
        registry = telemetry.registry if telemetry is not None else MetricRegistry()
        self._seconds = registry.histogram("simcpu.seconds", "host-side time by kind")
        self._rng_bytes = registry.counter("simcpu.rng_bytes", "bytes of ring randomness drawn")

    @property
    def rng_bytes(self) -> int:
        return int(self._rng_bytes.value(device=self.name))

    @property
    def resource(self) -> str:
        return f"{self.name}.cpu"

    def run(self, duration: float, deps=(), label: str = "cpu", *, kind: str = "run") -> Task:
        """Charge raw seconds to the CPU timeline."""
        t = self.clock.run(self.resource, duration, deps=deps, label=label)
        self._seconds.observe(t.duration, device=self.name, kind=kind)
        return t

    def gemm_ring(self, a: np.ndarray, b: np.ndarray, deps=(), label="cpu_gemm"):
        out = ring_matmul(a, b)
        t = self.run(
            self.spec.gemm_seconds(a.shape[0], a.shape[1], b.shape[1]), deps, label, kind="gemm"
        )
        return out, t

    def gemm_float(self, a: np.ndarray, b: np.ndarray, deps=(), label="cpu_gemm"):
        out = a @ b
        t = self.run(
            self.spec.gemm_seconds(a.shape[0], a.shape[1], b.shape[1]), deps, label, kind="gemm"
        )
        return out, t

    def elementwise(self, fn, arrays, deps=(), label="cpu_elementwise"):
        result = fn(*arrays)
        nbytes = sum(a.nbytes for a in arrays) + result.nbytes
        t = self.run(
            self.spec.elementwise_seconds(nbytes, parallel=self.parallel_enabled),
            deps,
            label,
            kind="elementwise",
        )
        return result, t

    def rng_uniform_ring(self, shape, rng: np.random.Generator, deps=(), label="mt19937"):
        data = rng.integers(0, 2**64, size=shape, dtype=np.uint64)
        self._rng_bytes.inc(data.nbytes, device=self.name)
        t = self.run(
            self.spec.rng_seconds(data.nbytes, parallel=self.parallel_enabled),
            deps,
            label,
            kind="rng",
        )
        return data, t
