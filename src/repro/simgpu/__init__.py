"""Discrete-event simulated GPU substrate.

The paper's platform (NVIDIA V100 + PCIe + dual Xeon) is replaced by a
simulator with two coupled halves:

* **numerics** — every kernel really computes its result with NumPy, so
  the secure protocols running on top are bit-exact; and
* **timing** — every kernel, PCIe transfer, and network message charges
  simulated seconds to a resource timeline (:class:`SimClock`), using an
  analytical cost model calibrated to the paper's hardware
  (:mod:`repro.simgpu.cost`).

Because each resource (CPU, GPU stream, H2D/D2H DMA engines, NIC) is its
own timeline and tasks carry dependencies, *overlap* falls out naturally:
the double-pipeline of paper Section 4.3 is expressed as a dependency
graph and its benefit is measured, not asserted.
"""

from repro.simgpu.clock import SimClock, Task
from repro.simgpu.cost import (
    DeviceSpec,
    CPUSpec,
    V100_SPEC,
    XEON_E5_2670V3_SPEC,
    P100_SPEC,
)
from repro.simgpu.memory import DeviceBuffer
from repro.simgpu.device import SimGPU, SimCPU

__all__ = [
    "SimClock",
    "Task",
    "DeviceSpec",
    "CPUSpec",
    "V100_SPEC",
    "XEON_E5_2670V3_SPEC",
    "P100_SPEC",
    "DeviceBuffer",
    "SimGPU",
    "SimCPU",
]
