"""Resource-timeline simulated clock.

The execution model: the system is a set of named *resources* (a CPU, a
GPU compute stream, the two PCIe DMA engines, a NIC link, ...), each of
which executes the tasks submitted to it **in submission order**, one at
a time.  A task may additionally depend on other tasks (from any
resource); it starts at

    start = max(resource free time, finish of every dependency)

and finishes at ``start + duration``.  This is the standard analytic
model for CUDA stream/DMA overlap and is what makes the paper's pipeline
claims measurable: scheduling the same work with different dependency
edges yields different makespans.

The clock also keeps a trace (resource, label, start, finish) that the
pipeline tests and the timeline tooling inspect.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.util.errors import ConfigError


@dataclass(frozen=True)
class Task:
    """A completed (scheduled) unit of work on one resource."""

    resource: str
    label: str
    start: float
    finish: float

    @property
    def duration(self) -> float:
        return self.finish - self.start


class SimClock:
    """Shared simulated clock over a set of serial resources."""

    def __init__(self):
        self._free_at: dict[str, float] = {}
        self.trace: list[Task] = []
        self._trace_enabled = True

    # -- resource management -------------------------------------------------

    def add_resource(self, name: str) -> None:
        """Register a resource; idempotent."""
        self._free_at.setdefault(name, 0.0)

    def resources(self) -> list[str]:
        return sorted(self._free_at)

    def free_at(self, resource: str) -> float:
        """Time at which ``resource`` becomes idle."""
        try:
            return self._free_at[resource]
        except KeyError:
            raise ConfigError(f"unknown resource {resource!r}; add_resource it first") from None

    # -- scheduling ----------------------------------------------------------

    def run(
        self,
        resource: str,
        duration: float,
        deps: list[Task] | tuple[Task, ...] = (),
        label: str = "",
    ) -> Task:
        """Schedule ``duration`` seconds of work on ``resource``.

        Returns the :class:`Task`, whose ``finish`` other work can depend
        on.  Zero-duration tasks are legal and useful as join points.
        """
        if duration < 0:
            raise ConfigError(f"task duration must be >= 0, got {duration}")
        if resource not in self._free_at:
            raise ConfigError(f"unknown resource {resource!r}; add_resource it first")
        start = self._free_at[resource]
        for dep in deps:
            if dep is not None and dep.finish > start:
                start = dep.finish
        task = Task(resource=resource, label=label, start=start, finish=start + duration)
        self._free_at[resource] = task.finish
        if self._trace_enabled:
            self.trace.append(task)
        return task

    def join(self, deps: list[Task], resource: str | None = None, label: str = "join") -> Task:
        """A zero-duration task that completes when all ``deps`` have.

        When ``resource`` is None the join is virtual (does not occupy
        any resource); the returned task carries the max finish time.
        An empty (or all-None) ``deps`` list joins on *everything*
        currently scheduled: the finish defaults to ``now()``, never to
        a point before the resources involved go free.
        """
        finish = max((d.finish for d in deps if d is not None), default=self.now())
        if resource is None:
            return Task(resource="<virtual>", label=label, start=finish, finish=finish)
        return self.run(resource, 0.0, deps=deps, label=label)

    # -- time queries ---------------------------------------------------------

    def now(self) -> float:
        """Current makespan: the latest point any resource is busy until."""
        return max(self._free_at.values(), default=0.0)

    def advance_all(self, to_time: float | None = None) -> float:
        """Synchronise every resource to ``to_time`` (default: ``now()``).

        Used at phase boundaries — e.g. the online phase cannot start
        before the offline phase has fully drained everywhere.
        """
        t = self.now() if to_time is None else float(to_time)
        for name in self._free_at:
            if self._free_at[name] < t:
                self._free_at[name] = t
        return t

    # -- tracing ---------------------------------------------------------------

    def set_tracing(self, enabled: bool) -> None:
        """Toggle trace recording (long runs can disable it to save memory)."""
        self._trace_enabled = bool(enabled)

    def trace_for(self, resource: str) -> list[Task]:
        return [t for t in self.trace if t.resource == resource]

    def busy_time(self, resource: str, since: float = 0.0) -> float:
        """Total busy seconds recorded on a resource after ``since``."""
        return sum(
            min(t.finish, self._free_at[resource]) - max(t.start, since)
            for t in self.trace
            if t.resource == resource and t.finish > since
        )
