"""Event-driven dataflow scheduling over the :class:`SimClock`.

The lockstep cost model places every task the moment it is submitted:
``start = max(resource free, dep finishes)`` in *program order*.  That
means overlap only exists where a driver hand-codes it (pipeline 1's
chunk interleave, the double pipeline's reconstruct thread).  This
module is the VIFF-style alternative: every ``run()`` returns a
*deferred* handle (:class:`PendingTask`), nothing is placed until a
flush point, and a ready-queue scheduler then fires tasks as their
operands resolve — so inter-layer, inter-batch and
offline-refill-under-online overlap fall out of the dependency edges
instead of the submission order.

Two invariants make the mode safe to flip on:

* **Values never move.**  Share arithmetic stays eagerly evaluated in
  program order (RNG streams, compressor state and transcripts are
  untouched); only the *timing* of tasks is deferred.  The conformance
  oracle pins predictions and per-link content digests bit-identical
  to lockstep.
* **Makespan never regresses.**  Provisional times mirror the lockstep
  placement exactly, and :meth:`DataflowClock.finalize` commits the
  earliest-start-time (EST) schedule only when its makespan beats
  program order — list scheduling is anomaly-prone (Graham 1969), so
  the lockstep plan is the guaranteed floor.

Mid-run time reads (``now()``, ``free_at``, span deltas, per-batch
marks) report the *provisional* program-order frontier: they are
lockstep-identical estimates until a flush point re-times the window.
Flush points are the driver ends (:meth:`SecureTrainer.train`,
:func:`secure_predict` via ``SecureContext.finalize_runtime``),
``advance_all`` (phase barriers, serving drains) and telemetry
snapshots.
"""

from __future__ import annotations

import heapq
from collections import defaultdict

from repro.simgpu.clock import SimClock, Task
from repro.util.errors import ConfigError

__all__ = ["DataflowClock", "PendingTask"]


class PendingTask:
    """A deferred task handle: scheduled work that has not been placed yet.

    Quacks like :class:`~repro.simgpu.clock.Task` (``start`` /
    ``finish`` / ``duration``), so protocol code can thread it through
    dependency lists unchanged.  Until :meth:`DataflowClock.finalize`
    places it, the times are the *provisional* program-order placement
    (exactly what the lockstep clock would have produced); afterwards
    they are the committed schedule's.
    """

    __slots__ = ("resource", "label", "deps", "seq", "real", "_duration", "_prov_start")

    def __init__(self, resource, label, duration, deps, seq, prov_start):
        self.resource = resource  # None for a virtual join node
        self.label = label
        self.deps = deps
        self.seq = seq
        self.real = None  # the placed Task, set by finalize()
        self._duration = duration
        self._prov_start = prov_start

    @property
    def start(self) -> float:
        return self.real.start if self.real is not None else self._prov_start

    @property
    def finish(self) -> float:
        if self.real is not None:
            return self.real.finish
        return self._prov_start + self._duration

    @property
    def duration(self) -> float:
        return self._duration

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "placed" if self.real is not None else "pending"
        return (
            f"PendingTask({self.resource!r}, {self.label!r}, "
            f"[{self.start:.3g}, {self.finish:.3g}], {state})"
        )


class DataflowClock:
    """A :class:`SimClock` facade that defers placement to a scheduler.

    Drop-in for the lockstep clock: same resource registry, same
    ``run``/``join``/``now``/``advance_all``/tracing surface.  ``run``
    records the task into the current *window* and returns a
    :class:`PendingTask` carrying the provisional lockstep placement;
    :meth:`finalize` closes the window by replaying it onto the real
    clock in ready-queue order.  The trace therefore holds only placed
    tasks, with their committed times.
    """

    def __init__(self):
        self._real = SimClock()
        self._prov_free: dict[str, float] = {}
        self._pending: list[PendingTask] = []
        self._seq = 0

    # -- resource management -------------------------------------------------

    def add_resource(self, name: str) -> None:
        self._real.add_resource(name)
        self._prov_free.setdefault(name, 0.0)

    def resources(self) -> list[str]:
        return self._real.resources()

    def free_at(self, resource: str) -> float:
        """Provisional idle time of ``resource`` (program-order frontier)."""
        try:
            return self._prov_free[resource]
        except KeyError:
            raise ConfigError(f"unknown resource {resource!r}; add_resource it first") from None

    # -- scheduling ----------------------------------------------------------

    def run(
        self,
        resource: str,
        duration: float,
        deps: list | tuple = (),
        label: str = "",
    ) -> PendingTask:
        """Defer ``duration`` seconds of work on ``resource``.

        Returns a :class:`PendingTask` usable anywhere a ``Task`` is;
        its provisional times equal the lockstep placement.
        """
        if duration < 0:
            raise ConfigError(f"task duration must be >= 0, got {duration}")
        if resource not in self._prov_free:
            raise ConfigError(f"unknown resource {resource!r}; add_resource it first")
        start = self._prov_free[resource]
        live = tuple(d for d in deps if d is not None)
        for dep in live:
            if dep.finish > start:
                start = dep.finish
        node = PendingTask(resource, label, duration, live, self._seq, start)
        self._seq += 1
        self._prov_free[resource] = node.finish
        self._pending.append(node)
        return node

    def join(self, deps: list, resource: str | None = None, label: str = "join"):
        """Zero-duration barrier over ``deps`` (see :meth:`SimClock.join`).

        A virtual join whose deps are all placed resolves immediately to
        a plain :class:`Task`; one over pending deps must itself stay
        pending, so its finish is re-timed with them at finalize.
        """
        if resource is not None:
            return self.run(resource, 0.0, deps=deps, label=label)
        live = tuple(d for d in deps if d is not None)
        finish = max((d.finish for d in live), default=self.now())
        unresolved = any(isinstance(d, PendingTask) and d.real is None for d in live)
        if not unresolved:
            return Task(resource="<virtual>", label=label, start=finish, finish=finish)
        node = PendingTask(None, label, 0.0, live, self._seq, finish)
        self._seq += 1
        self._pending.append(node)
        return node

    # -- time queries ---------------------------------------------------------

    def now(self) -> float:
        """Provisional makespan (program-order frontier over all resources)."""
        return max(self._prov_free.values(), default=0.0)

    def advance_all(self, to_time: float | None = None) -> float:
        """Finalize the open window, then synchronise every resource."""
        self.finalize()
        t = self._real.advance_all(to_time)
        for name in self._prov_free:
            self._prov_free[name] = self._real.free_at(name)
        return t

    # -- window scheduling -----------------------------------------------------

    @property
    def pending_count(self) -> int:
        """Deferred tasks in the open window (introspection/tests)."""
        return len(self._pending)

    def finalize(self) -> None:
        """Close the window: place every pending task on the real clock.

        Tasks are committed in earliest-start-time ready-queue order —
        a task fires once its operands have resolved and its resource
        frees up — unless that schedule's makespan loses to program
        order (a Graham anomaly), in which case the lockstep placement
        is kept.  Either way the finalized makespan is <= the
        provisional (lockstep) one.
        """
        pending = self._pending
        if not pending:
            return
        self._pending = []
        for node in self._plan(pending):
            deps = tuple(d.real if isinstance(d, PendingTask) else d for d in node.deps)
            if node.resource is None:
                finish = max((d.finish for d in deps), default=self._real.now())
                node.real = Task(
                    resource="<virtual>", label=node.label, start=finish, finish=finish
                )
            else:
                node.real = self._real.run(
                    node.resource, node.duration, deps=deps, label=node.label
                )
        for name in self._prov_free:
            self._prov_free[name] = self._real.free_at(name)

    def _plan(self, pending: list[PendingTask]) -> list[PendingTask]:
        """Pick the commit order for a window: EST schedule or program order."""
        free = {r: self._real.free_at(r) for r in self._real.resources()}
        indeg: dict[int, int] = {}
        ready: dict[int, float] = {}  # max finish over resolved deps
        children: dict[int, list[PendingTask]] = defaultdict(list)
        by_seq: dict[int, PendingTask] = {}
        for node in pending:
            by_seq[node.seq] = node
            unresolved = 0
            ready_at = 0.0
            for dep in node.deps:
                if isinstance(dep, PendingTask) and dep.real is None:
                    unresolved += 1
                    children[id(dep)].append(node)
                elif dep.finish > ready_at:
                    ready_at = dep.finish
            indeg[id(node)] = unresolved
            ready[id(node)] = ready_at

        def est(node: PendingTask) -> float:
            if node.resource is None:
                return ready[id(node)]
            return max(ready[id(node)], free[node.resource])

        heap = [(est(n), n.seq) for n in pending if indeg[id(n)] == 0]
        heapq.heapify(heap)
        order: list[PendingTask] = []
        finishes: dict[int, float] = {}
        while heap:
            when, seq = heapq.heappop(heap)
            node = by_seq[seq]
            current = est(node)
            if current > when:  # resource got busier since the push; re-queue
                heapq.heappush(heap, (current, seq))
                continue
            order.append(node)
            finish = current + node.duration
            finishes[id(node)] = finish
            if node.resource is not None:
                free[node.resource] = finish
            for child in children[id(node)]:
                if finish > ready[id(child)]:
                    ready[id(child)] = finish
                indeg[id(child)] -= 1
                if indeg[id(child)] == 0:
                    heapq.heappush(heap, (est(child), child.seq))
        if len(order) != len(pending):  # unreachable unless the graph is cyclic
            return pending
        est_makespan = max(
            max(free.values(), default=0.0),
            max(finishes.values(), default=0.0),
        )
        prov_makespan = max(self._prov_free.values(), default=0.0)
        if est_makespan > prov_makespan:
            return pending  # anomaly: the hand-ordered plan is the floor
        return order

    # -- tracing ---------------------------------------------------------------

    @property
    def trace(self) -> list[Task]:
        return self._real.trace

    def set_tracing(self, enabled: bool) -> None:
        self._real.set_tracing(enabled)

    def trace_for(self, resource: str) -> list[Task]:
        return self._real.trace_for(resource)

    def busy_time(self, resource: str, since: float = 0.0) -> float:
        return self._real.busy_time(resource, since)
