"""Protocol message types and tag conventions.

Every message the actors exchange is a small dataclass with explicit
fields; tags namespace logical streams so concurrent operations never
cross wires.  Keeping the vocabulary closed (three message kinds) makes
the actor state machines auditable.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

TAG_MATERIAL = "material"  # client -> server: shares + triplet material
TAG_MASKED = "masked"  # server <-> server: E_i / F_i openings
TAG_RESULT = "result"  # server -> client: output shares


def tag_for(kind: str, label: str) -> str:
    """Tag string for one logical stream of one operation."""
    return f"{kind}:{label}"


@dataclass
class MatmulMaterial:
    """Everything one server needs for one secure matmul execution.

    ``a_share``/``b_share`` are the operand shares; ``u``, ``v``, ``z``
    the server's Beaver triplet shares (single-use for this execution).
    """

    label: str
    party_id: int
    a_share: np.ndarray
    b_share: np.ndarray
    u: np.ndarray
    v: np.ndarray
    z: np.ndarray


@dataclass
class MaskedPair:
    """One server's E_i and F_i, sent to its peer (Eq. 5 round)."""

    label: str
    e: np.ndarray
    f: np.ndarray


@dataclass
class ResultShare:
    """One server's (truncated) output share, returned to the client."""

    label: str
    party_id: int
    c_share: np.ndarray
