"""Message-driven protocol runtime: client and server *actors*.

:mod:`repro.core` executes both servers in lockstep inside one process —
ideal for simulation and benchmarking, since one object can charge both
timelines.  This package is the *deployable* form of the same protocol:
three actors (one client, two servers) that communicate **only** through
the transport interface of :mod:`repro.comm` — the loopback hub
in-process, or :class:`~repro.comm.mpi_backend.MPITransport` across
ranks on a real cluster.

The actors cover the protocol surface a serving deployment needs:
uploading shared inputs and models, secure matrix products (Eqs. 4-8
with local truncation), and multi-layer dense forward passes.  Tests
assert bit-equality between actor-run protocols and the lockstep
reference, which is what certifies the simulation's transcripts as the
real thing.
"""

from repro.runtime.actors import (
    ClientActor,
    ServerActor,
    run_dense_forward,
    run_matmul,
    run_matmuls_interleaved,
)
from repro.runtime.dataflow import DataflowClock, PendingTask
from repro.runtime.messages import MatmulMaterial, TAG_MATERIAL, TAG_MASKED, TAG_RESULT

__all__ = [
    "ClientActor",
    "DataflowClock",
    "PendingTask",
    "ServerActor",
    "run_matmul",
    "run_matmuls_interleaved",
    "run_dense_forward",
    "MatmulMaterial",
    "TAG_MATERIAL",
    "TAG_MASKED",
    "TAG_RESULT",
]
