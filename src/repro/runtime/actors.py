"""Client and server actors over the transport interface.

The actors implement the paper's workflow (Fig. 3) as explicit message
passing:

* :class:`ClientActor` — owns the data and the dealer role: encodes,
  shares, generates triplets, distributes material, reconstructs
  results;
* :class:`ServerActor` — holds nothing but what it receives: runs the
  reconstruct round with its peer and the Eq. 8 product, truncates its
  share locally, returns it.

Driver helpers (:func:`run_matmul`, :func:`run_dense_forward`) sequence
the actors for the common flows.  Over the loopback transport the calls
run in one process; the same call order works rank-parallel over MPI
because every ``recv`` has a matching earlier ``send``.
"""

from __future__ import annotations

import time

import numpy as np

from repro.fixedpoint.encoding import FixedPointEncoder
from repro.fixedpoint.ring import ring_add, ring_matmul, ring_sub
from repro.fixedpoint.truncation import truncate_share
from repro.mpc.shares import reconstruct, share_secret
from repro.mpc.triplets import TripletDealer
from repro.runtime.messages import (
    MaskedPair,
    MatmulMaterial,
    ResultShare,
    TAG_MASKED,
    TAG_MATERIAL,
    TAG_RESULT,
    tag_for,
)
from repro.telemetry.registry import MetricRegistry
from repro.util.errors import ProtocolError


class _ActorStats:
    """Per-actor message accounting: ``runtime.messages{actor,direction}``
    counters plus a wall-clock histogram of time spent blocked in recv."""

    def __init__(self, actor: str, telemetry):
        self.actor = actor
        registry = telemetry.registry if telemetry is not None else MetricRegistry()
        self._messages = registry.counter(
            "runtime.messages", "actor-level messages by direction"
        )
        self._recv_wait = registry.histogram(
            "runtime.recv_wall_seconds", "wall time blocked in transport recv"
        )

    def sent(self) -> None:
        self._messages.inc(1, actor=self.actor, direction="sent")

    def recv(self, view, source: str, tag):
        t0 = time.perf_counter()
        msg = view.recv(source, tag)
        self._recv_wait.observe(time.perf_counter() - t0, actor=self.actor)
        self._messages.inc(1, actor=self.actor, direction="received")
        return msg


class _IdleCheck:
    """Shared idle assertion: a finished actor's mailbox must be drained.

    Uses the transport view's ``pending_summary()`` introspection (the
    :class:`~repro.comm.transport.Mailbox` surface); a leftover message
    means a protocol step was skipped or double-sent, which the lockstep
    drivers turn into a loud failure instead of silent queue growth.
    """

    view = None  # set by the actor subclasses

    def assert_idle(self) -> None:
        summary = getattr(self.view, "pending_summary", None)
        if summary is None:  # e.g. a real MPI rank: no global introspection
            return
        waiting = summary()
        if waiting:
            detail = ", ".join(f"({s!r}, {t!r})x{n}" for (s, t), n in sorted(waiting.items()))
            raise ProtocolError(
                f"{self.view.role}: mailbox not drained at end of protocol; pending: {detail}"
            )


class ClientActor(_IdleCheck):
    """The data owner / trusted dealer."""

    def __init__(self, view, *, frac_bits: int = 13, seed: int = 0, telemetry=None):
        self.view = view
        self.encoder = FixedPointEncoder(frac_bits)
        self._rng = np.random.default_rng(seed)
        self._dealer = TripletDealer(np.random.default_rng(seed + 1), telemetry=telemetry)
        self._stats = _ActorStats("client", telemetry)

    # -- offline ---------------------------------------------------------------

    def dispatch_matmul(self, label: str, a: np.ndarray, b: np.ndarray) -> None:
        """Share operands + triplet and send each server its material."""
        a_enc = self.encoder.encode(np.asarray(a, dtype=np.float64))
        b_enc = self.encoder.encode(np.asarray(b, dtype=np.float64))
        self.dispatch_matmul_encoded(label, a_enc, b_enc)

    def dispatch_matmul_encoded(self, label: str, a_enc: np.ndarray, b_enc: np.ndarray) -> None:
        a_pair = share_secret(a_enc, self._rng)
        b_pair = share_secret(b_enc, self._rng)
        triplet = self._dealer.matrix_triplet(a_enc.shape, b_enc.shape)
        for i in (0, 1):
            material = MatmulMaterial(
                label=label,
                party_id=i,
                a_share=a_pair[i],
                b_share=b_pair[i],
                u=triplet.u[i],
                v=triplet.v[i],
                z=triplet.z[i],
            )
            self.view.send(f"server{i}", tag_for(TAG_MATERIAL, label), material)
            self._stats.sent()

    # -- online result ----------------------------------------------------------

    def collect_encoded(self, label: str) -> np.ndarray:
        """Receive both servers' shares and reconstruct the ring matrix.

        All result collection goes through here so every receive is
        counted in ``runtime.messages{direction=received}`` / the
        recv-wait histogram and label/party validated.
        """
        shares = {}
        for i in (0, 1):
            msg: ResultShare = self._stats.recv(self.view, f"server{i}", tag_for(TAG_RESULT, label))
            if msg.label != label or msg.party_id != i:
                raise ProtocolError(
                    f"client: result stream mismatch (got {msg.label}/{msg.party_id}, "
                    f"expected {label}/{i})"
                )
            shares[i] = msg.c_share
        return reconstruct(shares[0], shares[1])

    def collect(self, label: str) -> np.ndarray:
        """Receive both servers' shares and decode the result."""
        return self.encoder.decode(self.collect_encoded(label))


class ServerActor(_IdleCheck):
    """One of the two computation servers."""

    def __init__(self, party_id: int, view, *, frac_bits: int = 13, telemetry=None):
        if party_id not in (0, 1):
            raise ProtocolError(f"party_id must be 0 or 1, got {party_id}")
        self.party_id = party_id
        self.view = view
        self.frac_bits = frac_bits
        self._pending: dict[str, MatmulMaterial] = {}
        # Masked-exchange state keyed by label: any number of matmuls
        # may be between send_masked and finish_matmul at once, which is
        # what lets a scheduler interleave ops on one server.
        self._pending_masked: dict[str, tuple[np.ndarray, np.ndarray]] = {}
        self._stats = _ActorStats(f"server{party_id}", telemetry)

    @property
    def peer(self) -> str:
        return f"server{1 - self.party_id}"

    # -- protocol steps, split so drivers can interleave the two servers --------

    def receive_material(self, label: str) -> None:
        material: MatmulMaterial = self._stats.recv(
            self.view, "client", tag_for(TAG_MATERIAL, label)
        )
        if material.label != label or material.party_id != self.party_id:
            raise ProtocolError(
                f"server{self.party_id}: material stream mismatch on {label!r}"
            )
        self._pending[label] = material

    def send_masked(self, label: str) -> None:
        """Eq. 4: compute E_i, F_i and send them to the peer."""
        m = self._require(label)
        if label in self._pending_masked:
            raise ProtocolError(
                f"server{self.party_id}: masked pair for {label!r} already in flight; "
                f"finish_matmul() it before sending again"
            )
        e_i = ring_sub(m.a_share, m.u)
        f_i = ring_sub(m.b_share, m.v)
        self._pending_masked[label] = (e_i, f_i)
        self.view.send(self.peer, tag_for(TAG_MASKED, label), MaskedPair(label, e_i, f_i))
        self._stats.sent()

    def finish_matmul(self, label: str, *, keep_share: bool = False) -> np.ndarray | None:
        """Eq. 5 + Eq. 8 + local truncation; ship C_i to the client."""
        m = self._require(label)
        try:
            e_i, f_i = self._pending_masked.pop(label)
        except KeyError:
            raise ProtocolError(
                f"server{self.party_id}: no masked pair in flight for {label!r}; "
                f"send_masked() first"
            ) from None
        remote: MaskedPair = self._stats.recv(self.view, self.peer, tag_for(TAG_MASKED, label))
        e = ring_add(e_i, remote.e)
        f = ring_add(f_i, remote.f)
        lead = m.a_share if self.party_id == 0 else ring_sub(m.a_share, e)
        left = np.concatenate([lead, e], axis=1)
        right = np.concatenate([f, m.b_share], axis=0)
        c_i = ring_add(ring_matmul(left, right), m.z)
        c_i = truncate_share(c_i, self.frac_bits, self.party_id)
        del self._pending[label]
        if keep_share:
            return c_i
        self.view.send(
            "client", tag_for(TAG_RESULT, label), ResultShare(label, self.party_id, c_i)
        )
        self._stats.sent()
        return None

    def _require(self, label: str) -> MatmulMaterial:
        if label not in self._pending:
            raise ProtocolError(
                f"server{self.party_id}: no material for {label!r}; "
                f"receive_material() first"
            )
        return self._pending[label]


# -- drivers -------------------------------------------------------------------


def run_matmul(
    client: ClientActor,
    servers: tuple[ServerActor, ServerActor],
    a: np.ndarray,
    b: np.ndarray,
    *,
    label: str = "matmul",
) -> np.ndarray:
    """One complete secure matrix product through the actors."""
    client.dispatch_matmul(label, a, b)
    for s in servers:
        s.receive_material(label)
    for s in servers:
        s.send_masked(label)
    for s in servers:
        s.finish_matmul(label)
    result = client.collect(label)
    for actor in (client, *servers):
        actor.assert_idle()
    return result


def run_matmuls_interleaved(
    client: ClientActor,
    servers: tuple[ServerActor, ServerActor],
    ops: list[tuple[str, np.ndarray, np.ndarray]],
) -> dict[str, np.ndarray]:
    """Several secure matmuls with every masked exchange in flight at once.

    All operands are dispatched and all E/F pairs staged before any op
    completes, then ops finish in *arrival order*: whichever label's
    peer message is already waiting fires first (readiness introspected
    via ``pending_summary`` where the transport offers it, submission
    order otherwise).  This is the interleaving the label-keyed masked
    state makes legal — with a single-slot state it aborts on the
    second ``send_masked``.
    """
    labels = [label for label, _a, _b in ops]
    if len(set(labels)) != len(labels):
        raise ProtocolError(f"duplicate op labels in interleaved batch: {labels}")
    for label, a, b in ops:
        client.dispatch_matmul(label, a, b)
    for s in servers:
        for label in labels:
            s.receive_material(label)
    for s in servers:
        for label in labels:
            s.send_masked(label)
    remaining = list(labels)
    while remaining:
        label = remaining[0]
        for candidate in remaining:
            summary = getattr(servers[0].view, "pending_summary", None)
            if summary is None:
                break
            waiting = summary()
            if all(
                (s.peer, tag_for(TAG_MASKED, candidate)) in waiting for s in servers
            ):
                label = candidate
                break
        remaining.remove(label)
        for s in servers:
            s.finish_matmul(label)
    results = {label: client.collect(label) for label in labels}
    for actor in (client, *servers):
        actor.assert_idle()
    return results


def run_dense_forward(
    client: ClientActor,
    servers: tuple[ServerActor, ServerActor],
    x: np.ndarray,
    weights: list[np.ndarray],
    *,
    label: str = "forward",
) -> np.ndarray:
    """Multi-layer linear forward pass ``x @ W1 @ W2 ...`` on the actors.

    Reference flow: each layer's output shares return to the *client*
    (the data owner, trusted in this model), which re-shares them with
    fresh triplet material for the next layer — the simple
    client-mediated pipeline of the paper's Fig. 3.  Linear layers only;
    the interactive comparisons of non-linear layers live in the
    lockstep framework, which is also the path that keeps intermediates
    server-resident.
    """
    current = np.asarray(x, dtype=np.float64)
    # The client knows shapes, not values, of intermediates; for the
    # actor demo we re-share layer by layer, which matches the paper's
    # client-mediated offline stream per layer.
    enc = client.encoder
    current_enc = enc.encode(current)
    for li, w in enumerate(weights):
        layer_label = f"{label}/{li}"
        w_enc = enc.encode(np.asarray(w, dtype=np.float64))
        client.dispatch_matmul_encoded(layer_label, current_enc, w_enc)
        for s in servers:
            s.receive_material(layer_label)
        for s in servers:
            s.send_masked(layer_label)
        for s in servers:
            s.finish_matmul(layer_label)
        current_enc = client.collect_encoded(layer_label)
    for actor in (client, *servers):
        actor.assert_idle()
    return enc.decode(current_enc)
