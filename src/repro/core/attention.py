"""Secure single-head transformer attention (the CrypTen-era workload).

One :class:`SecureAttentionBlock` runs scaled dot-product self-attention
over a length-``seq_len`` sequence of ``d_model``-wide tokens, supplied
flattened as ``(batch, seq_len * d_model)`` like the RNN's input:

1. **projections** — ``Q/K/V = X W_q/k/v`` as three pooled triplet GEMMs
   over the token-flattened ``(batch*seq, d_model)`` view;
2. **scores** — ``S = Q K^T / sqrt(d)`` per sample.  Batched per-sample
   GEMMs are expressed through the framework's 2-D op set by *Hadamard
   expansion*: ``Q`` rows repeated and ``K`` rows tiled to the
   ``(batch*seq*seq, d_model)`` pair grid, one elementwise triplet, and
   a local feature-axis sum — a constant op count per batch, so the
   double pipeline sees one wide product instead of ``batch`` small
   ones (the same lowering trick as im2col for convolutions);
3. **softmax** — the backend's :meth:`softmax` protocol
   (:mod:`repro.mpc.softmax`) row-wise on the ``(batch*seq, seq)``
   scores;
4. **mix + output** — ``C = A V`` by the same expansion, then
   ``O = C W_o`` and a mean-pool over the sequence axis (local linear +
   one public scale), yielding ``(batch, d_model)`` features.

The backward pass re-uses the expansion grids from the tape: every
einsum in the standard attention gradient (``dA = dC V^T``,
``dV = A^T dC``, the softmax Jacobian ``dS = A (dA - rowsum(A dA))``,
``dQ = dS K``, ``dK = dS^T Q``) is one elementwise triplet plus a local
axis sum, and the four weight gradients are plain triplet GEMMs.

:class:`SecureAttention` is the model-registry entry: the block plus a
dense readout, trainable by the standard
:class:`~repro.core.training.SecureTrainer` loop.
"""

from __future__ import annotations

import numpy as np

from repro.core import ops
from repro.core.layers import SecureDense, SecureLayer
from repro.core.models import SecureModel
from repro.core.tensor import SharedTensor
from repro.fixedpoint.ring import ring_sum
from repro.mpc.pool import TripletRequest, hadamard_stream, matmul_stream
from repro.mpc.softmax import plan_softmax_streams
from repro.util.errors import ProtocolError, ShapeError

__all__ = ["SecureAttention", "SecureAttentionBlock"]


def _local(x: SharedTensor, shares) -> SharedTensor:
    """New tensor from locally transformed shares (tasks carried over)."""
    return SharedTensor(
        ctx=x.ctx,
        shares=tuple(np.ascontiguousarray(s) for s in shares),
        kind=x.kind,
        tasks=x.tasks,
    )


def _repeat_rows(x: SharedTensor, times: int) -> SharedTensor:
    """Each row repeated ``times`` consecutively: (n, d) -> (n*times, d)."""
    return _local(x, (np.repeat(s, times, axis=0) for s in x.shares))


def _tile_blocks(x: SharedTensor, batch: int, seq: int) -> SharedTensor:
    """Each sample's seq-block tiled seq times: row (b,i,j) -> x[b*seq+j]."""
    d = x.shape[1]
    return _local(
        x,
        (
            np.broadcast_to(s.reshape(batch, 1, seq, d), (batch, seq, seq, d)).reshape(
                batch * seq * seq, d
            )
            for s in x.shares
        ),
    )


def _bcast_feature(x: SharedTensor, d: int) -> SharedTensor:
    """Tile an (n, 1) tensor across the feature axis to (n, d)."""
    n = x.shape[0]
    return _local(x, (np.broadcast_to(s, (n, d)) for s in x.shares))


def _sum_feature(x: SharedTensor) -> SharedTensor:
    """Row sums over the feature axis: (n, d) -> (n, 1) — local linear."""
    return _local(x, (ring_sum(s, axis=1).reshape(-1, 1) for s in x.shares))


def _sum_pairs(x: SharedTensor, batch: int, seq: int, axis: int) -> SharedTensor:
    """Sum the (batch, seq, seq, d) pair grid over query (1) or key (2)."""
    d = x.shape[1]
    return _local(
        x,
        (
            ring_sum(s.reshape(batch, seq, seq, d), axis=axis).reshape(batch * seq, d)
            for s in x.shares
        ),
    )


def _row_sum_bcast(x: SharedTensor) -> SharedTensor:
    """rowsum(x) broadcast back over x's columns — local linear."""
    n, d = x.shape
    return _local(
        x, (np.broadcast_to(ring_sum(s, axis=1).reshape(n, 1), (n, d)) for s in x.shares)
    )


class SecureAttentionBlock(SecureLayer):
    """Scaled dot-product self-attention with a sequence mean-pool."""

    def __init__(self, ctx, seq_len: int, d_model: int, *, name: str = "attn"):
        if seq_len < 1 or d_model < 1:
            raise ShapeError(f"{name}: seq_len and d_model must be >= 1")
        self.ctx = ctx
        self.name = name
        self.seq_len = seq_len
        self.d_model = d_model
        self.in_features = seq_len * d_model
        self.out_features = d_model
        rng = ctx.seeds.generator(f"init-{name}")
        scale = 1.0 / np.sqrt(d_model)

        def proj(tag: str) -> SharedTensor:
            return SharedTensor.from_plain(
                ctx,
                rng.uniform(-scale, scale, size=(d_model, d_model)),
                label=f"{name}/W{tag}",
            ).mark_static()

        self.w_q = proj("q")
        self.w_k = proj("k")
        self.w_v = proj("v")
        self.w_o = proj("o")
        self._tape: dict | None = None
        self._grads: dict | None = None

    def forward(self, x: SharedTensor, *, training: bool = True) -> SharedTensor:
        s, d = self.seq_len, self.d_model
        if x.ndim != 2 or x.shape[1] != s * d:
            raise ShapeError(
                f"{self.name}: expected (batch, {s * d}) flattened sequence, got {x.shape}"
            )
        b = x.shape[0]
        x2 = x.reshape(b * s, d)
        q = ops.secure_matmul(x2, self.w_q, label=f"{self.name}/q")
        k = ops.secure_matmul(x2, self.w_k, label=f"{self.name}/k")
        v = ops.secure_matmul(x2, self.w_v, label=f"{self.name}/v")

        qe = _repeat_rows(q, s)
        ke = _tile_blocks(k, b, s)
        pair = ops.secure_elementwise_mul(qe, ke, label=f"{self.name}/qk")
        scores = _sum_feature(pair).reshape(b * s, s).mul_public(1.0 / np.sqrt(d))
        attn = ops.secure_softmax(scores, label=f"{self.name}/softmax")

        ae = _bcast_feature(attn.reshape(b * s * s, 1), d)
        ve = _tile_blocks(v, b, s)
        mix = ops.secure_elementwise_mul(ae, ve, label=f"{self.name}/av")
        context = _sum_pairs(mix, b, s, axis=2)
        o2 = ops.secure_matmul(context, self.w_o, label=f"{self.name}/o")
        pooled = _local(
            o2, (ring_sum(sh.reshape(b, s, d), axis=1) for sh in o2.shares)
        ).mul_public(1.0 / s)

        if training:
            self._tape = {
                "batch": b, "x2": x2, "qe": qe, "ke": ke, "ve": ve,
                "attn": attn, "ae": ae, "context": context,
            }
        return pooled

    def backward(self, delta: SharedTensor) -> SharedTensor:
        if self._tape is None:
            raise ProtocolError(f"{self.name}: backward before forward")
        tape, self._tape = self._tape, None
        b, s, d = tape["batch"], self.seq_len, self.d_model

        # mean-pool and output projection
        do2 = _repeat_rows(delta.mul_public(1.0 / s), s)
        gw_o = ops.secure_matmul(
            tape["context"].T, do2, label=f"{self.name}/dWo"
        ).mul_public(1.0 / b)
        dc2 = ops.secure_matmul(do2, self.w_o.T, label=f"{self.name}/dC")

        # attention-weight and value gradients over the pair grid
        dce = _repeat_rows(dc2, s)
        da = _sum_feature(
            ops.secure_elementwise_mul(dce, tape["ve"], label=f"{self.name}/dA")
        ).reshape(b * s, s)
        dv = _sum_pairs(
            ops.secure_elementwise_mul(tape["ae"], dce, label=f"{self.name}/dV"),
            b, s, axis=1,
        )

        # softmax Jacobian: dS = A * (dA - rowsum(A * dA)), then undo the
        # score scaling
        ad = ops.secure_elementwise_mul(tape["attn"], da, label=f"{self.name}/sm1")
        ds = ops.secure_elementwise_mul(
            tape["attn"], da - _row_sum_bcast(ad), label=f"{self.name}/sm2"
        ).mul_public(1.0 / np.sqrt(d))

        dse = _bcast_feature(ds.reshape(b * s * s, 1), d)
        dq = _sum_pairs(
            ops.secure_elementwise_mul(dse, tape["ke"], label=f"{self.name}/dQ"),
            b, s, axis=2,
        )
        dk = _sum_pairs(
            ops.secure_elementwise_mul(dse, tape["qe"], label=f"{self.name}/dK"),
            b, s, axis=1,
        )

        x2 = tape["x2"]
        self._grads = {
            "w_o": gw_o,
            "w_q": ops.secure_matmul(x2.T, dq, label=f"{self.name}/dWq").mul_public(1.0 / b),
            "w_k": ops.secure_matmul(x2.T, dk, label=f"{self.name}/dWk").mul_public(1.0 / b),
            "w_v": ops.secure_matmul(x2.T, dv, label=f"{self.name}/dWv").mul_public(1.0 / b),
        }
        dx2 = (
            ops.secure_matmul(dq, self.w_q.T, label=f"{self.name}/dXq")
            + ops.secure_matmul(dk, self.w_k.T, label=f"{self.name}/dXk")
            + ops.secure_matmul(dv, self.w_v.T, label=f"{self.name}/dXv")
        )
        return dx2.reshape(b, s * d)

    def apply_gradients(self, lr: float) -> None:
        if self._grads is None:
            raise ProtocolError(f"{self.name}: apply_gradients before backward")
        for attr, grad in self._grads.items():
            setattr(self, attr, (getattr(self, attr) - grad.mul_public(lr)).mark_static())
        self._grads = None

    def parameters(self) -> list[SharedTensor]:
        return [self.w_q, self.w_k, self.w_v, self.w_o]

    def plan_streams(
        self, in_shape: tuple[int, ...], *, training: bool
    ) -> tuple[list[TripletRequest], tuple[int, ...]]:
        b = in_shape[0]
        s, d = self.seq_len, self.d_model
        bs, bss = b * s, b * s * s
        proj = matmul_stream((bs, d), (d, d))
        grad_w = matmul_stream((d, bs), (bs, d))
        reqs = [proj, proj, proj]  # q, k, v
        reqs.append(hadamard_stream((bss, d)))  # qk pair grid
        reqs.extend(plan_softmax_streams(bs, s, self.ctx.encoder.frac_bits))
        reqs.append(hadamard_stream((bss, d)))  # av mix
        reqs.append(proj)  # output projection
        if training:
            reqs.append(grad_w)  # dWo
            reqs.append(proj)  # dC
            reqs.append(hadamard_stream((bss, d)))  # dA
            reqs.append(hadamard_stream((bss, d)))  # dV
            reqs.append(hadamard_stream((bs, s)))  # sm1
            reqs.append(hadamard_stream((bs, s)))  # sm2
            reqs.append(hadamard_stream((bss, d)))  # dQ
            reqs.append(hadamard_stream((bss, d)))  # dK
            reqs.extend([grad_w] * 3)  # dWq, dWk, dWv
            reqs.extend([proj] * 3)  # dXq, dXk, dXv
        return reqs, (b, d)


class SecureAttention(SecureModel):
    """Attention block + dense readout — the ``attention`` registry entry."""

    def __init__(self, ctx, seq_len: int, d_model: int, *, n_out: int = 3):
        super().__init__(ctx)
        self.block = SecureAttentionBlock(ctx, seq_len, d_model, name="attn")
        self.readout = SecureDense(ctx, d_model, n_out, name="attnout")
        self.layers = [self.block, self.readout]
