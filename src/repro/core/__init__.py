"""ParSecureML core: the user-facing secure ML framework.

Layering (bottom to top):

* :mod:`repro.core.config`   — one dataclass switching every paper
  feature on/off (pipelines, compression, Tensor Cores, placement mode);
* :mod:`repro.core.context`  — :class:`SecureContext`, wiring the client
  and two servers with simulated GPUs, channels, dealers and clocks;
* :mod:`repro.core.tensor`   — :class:`SharedTensor`, a secret-shared
  matrix with scale tracking;
* :mod:`repro.core.ops`      — secure matmul / elementwise / activation
  primitives with offline+online cost accounting;
* :mod:`repro.core.layers`   — neural layers over the ops;
* :mod:`repro.core.models`   — the paper's six benchmark models;
* :mod:`repro.core.training` / :mod:`repro.core.inference` — drivers
  that produce the phase/time/traffic reports the evaluation consumes.
"""

from repro.core.config import FrameworkConfig
from repro.core.context import SecureContext
from repro.core.tensor import SharedTensor
from repro.core import ops
from repro.core.models import (
    SecureMLP,
    SecureCNN,
    SecureRNN,
    SecureLinearRegression,
    SecureLogisticRegression,
    SecureSVM,
)
from repro.core.resnet import SecureResNet, SecureResidualBlock
from repro.core.optim import SGD, MomentumSGD, AveragedSGD
from repro.core.checkpoint import save_model, load_model
from repro.core.stats import (
    secure_mean,
    secure_variance,
    secure_covariance,
    secure_standardize,
)
from repro.core.training import SecureTrainer, TrainReport
from repro.core.inference import secure_predict, InferenceReport

__all__ = [
    "FrameworkConfig",
    "SecureContext",
    "SharedTensor",
    "ops",
    "SecureMLP",
    "SecureCNN",
    "SecureRNN",
    "SecureLinearRegression",
    "SecureLogisticRegression",
    "SecureSVM",
    "SecureResNet",
    "SecureResidualBlock",
    "SGD",
    "MomentumSGD",
    "AveragedSGD",
    "save_model",
    "load_model",
    "secure_mean",
    "secure_variance",
    "secure_covariance",
    "secure_standardize",
    "SecureTrainer",
    "TrainReport",
    "secure_predict",
    "InferenceReport",
]
