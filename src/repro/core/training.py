"""Secure training driver with phase/traffic reporting.

:class:`SecureTrainer` follows the paper's offline/online split (Figs.
2-3): the client encrypts (shares) the *whole dataset once* and uploads
it — that is the offline phase, plus the lazy one-time generation of
each op stream's Beaver material — and the servers then iterate batches
over their shares, which is the online phase.  (Fig. 2's breakdown is
exactly this structure: a one-shot "generate encrypted data" step
followed by per-step server compute/communication.)

The report carries the accounting the evaluation section uses: offline
and online simulated seconds, occupancy (Table 3), inter-server traffic
and compression savings (Fig. 16), and per-batch marginal costs for
paper-scale extrapolation.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.core.tensor import SharedTensor
from repro.telemetry import maybe_span
from repro.util.errors import ConfigError


@dataclass
class TrainReport:
    """Cost and progress accounting for one training run."""

    batches: int = 0
    samples: int = 0
    dataset_samples: int = 0
    offline_s: float = 0.0
    online_s: float = 0.0
    sharing_offline_s: float = 0.0  # one-shot dataset encryption/upload
    setup_offline_s: float = 0.0  # lazy triplet-stream generation
    server_bytes: int = 0
    uplink_bytes: int = 0
    raw_comm_bytes: int = 0
    wire_comm_bytes: int = 0
    losses: list[float] = field(default_factory=list)
    batch_online_s: list[float] = field(default_factory=list)

    @property
    def total_s(self) -> float:
        return self.offline_s + self.online_s

    @property
    def occupancy(self) -> float:
        """Online fraction of total simulated time (Table 3's metric)."""
        return self.online_s / self.total_s if self.total_s else 0.0

    @property
    def marginal_online_s(self) -> float:
        """Steady-state online cost per batch (first batch excluded —
        lazy placement decisions make it atypical)."""
        tail = self.batch_online_s[1:] or self.batch_online_s
        return sum(tail) / len(tail) if tail else 0.0

    @property
    def compression_savings(self) -> float:
        if self.raw_comm_bytes == 0:
            return 0.0
        return 1.0 - self.wire_comm_bytes / self.raw_comm_bytes

    def extrapolate(self, paper_samples: int, paper_batches: int) -> tuple[float, float]:
        """(offline_s, online_s) projected to paper-scale data.

        Dataset sharing scales linearly with sample count; triplet setup
        is one-time; online scales with batch count.
        """
        scale = paper_samples / max(self.dataset_samples, 1)
        offline = self.sharing_offline_s * scale + self.setup_offline_s
        online = self.marginal_online_s * paper_batches
        return offline, online


class SecureTrainer:
    """Batch-wise secure SGD over a model built on a SecureContext."""

    def __init__(self, ctx, model, *, lr: float = 0.125, monitor_loss: bool = True):
        self.ctx = ctx
        self.model = model
        self.lr = float(lr)
        self.monitor_loss = monitor_loss

    def train(
        self,
        x: np.ndarray,
        y: np.ndarray,
        *,
        epochs: int = 1,
        batch_size: int = 128,
        max_batches: int | None = None,
    ) -> TrainReport:
        """Run secure SGD; ``x`` is (n, features), ``y`` is (n, outputs)."""
        x = np.asarray(x, dtype=np.float64)
        y = np.asarray(y, dtype=np.float64)
        if x.ndim != 2 or y.ndim != 2 or x.shape[0] != y.shape[0]:
            raise ConfigError(
                f"train expects 2-D x, y with matching rows; got {x.shape} and {y.shape}"
            )
        if x.shape[0] < batch_size:
            raise ConfigError(
                f"need at least one full batch: {x.shape[0]} samples < batch {batch_size}"
            )
        report = TrainReport(dataset_samples=x.shape[0])
        telemetry = getattr(self.ctx, "telemetry", None)
        start_mark = self.ctx.mark()
        comp_start = self.ctx.compression_stats

        # ---- offline: encrypt + upload the dataset once ----------------------
        with maybe_span(telemetry, "train.share_dataset", clock="offline"):
            xs = SharedTensor.from_plain(self.ctx, x, label="dataset/x")
            ys = SharedTensor.from_plain(self.ctx, y, label="dataset/y")
        report.sharing_offline_s = self.ctx.since(start_mark).offline_s

        # ---- online: iterate batches over the shares -------------------------
        done = False
        for _epoch in range(epochs):
            if done:
                break
            for lo in range(0, x.shape[0] - batch_size + 1, batch_size):
                batch_mark = self.ctx.mark()
                with maybe_span(
                    telemetry, "train.batch", clock="online", batch=str(report.batches)
                ):
                    xb = xs.row_slice(lo, lo + batch_size)
                    yb = ys.row_slice(lo, lo + batch_size)
                    pred = self.model.train_batch(xb, yb, self.lr)
                report.batch_online_s.append(self.ctx.since(batch_mark).online_s)
                report.batches += 1
                report.samples += batch_size
                if self.monitor_loss:
                    err = pred.decode() - y[lo : lo + batch_size]
                    report.losses.append(float(np.mean(err**2)))
                if max_batches is not None and report.batches >= max_batches:
                    done = True
                    break

        delta = self.ctx.since(start_mark)
        report.offline_s = delta.offline_s
        report.online_s = delta.online_s
        report.setup_offline_s = max(0.0, report.offline_s - report.sharing_offline_s)
        report.server_bytes = delta.server_bytes
        report.uplink_bytes = delta.uplink_bytes
        comp_end = self.ctx.compression_stats
        report.raw_comm_bytes = comp_end.raw_bytes - comp_start.raw_bytes
        report.wire_comm_bytes = comp_end.wire_bytes - comp_start.wire_bytes
        return report
