"""Secure training driver with phase/traffic reporting and recovery.

:class:`SecureTrainer` follows the paper's offline/online split (Figs.
2-3): the client encrypts (shares) the *whole dataset once* and uploads
it — that is the offline phase, plus the lazy one-time generation of
each op stream's Beaver material — and the servers then iterate batches
over their shares, which is the online phase.  (Fig. 2's breakdown is
exactly this structure: a one-shot "generate encrypted data" step
followed by per-step server compute/communication.)

Fault tolerance (``repro.faults``): when the context carries a
:class:`~repro.faults.injector.FaultInjector` and checkpointing is
enabled, the trainer snapshots the model's shares every
``checkpoint_every`` batches via :mod:`repro.core.checkpoint` and, on a
:class:`~repro.faults.blame.PartyFailure` (crashed server, exhausted
retry budget), restarts the blamed party, restores the last checkpoint
and replays from its batch cursor.  Replayed batches reuse the cached
Beaver material, so a recovered run is bit-identical to a fault-free
one — the chaos suite asserts exactly that.

The report carries the accounting the evaluation section uses: offline
and online simulated seconds, occupancy (Table 3), inter-server traffic
and compression savings (Fig. 16), per-batch marginal costs for
paper-scale extrapolation, and the recovery counters.
"""

from __future__ import annotations

import tempfile
from dataclasses import dataclass, field
from pathlib import Path

import numpy as np

from repro.core.checkpoint import load_model, save_model
from repro.core.tensor import SharedTensor
from repro.faults.blame import PartyFailure
from repro.telemetry import maybe_span
from repro.util.errors import ConfigError


@dataclass
class TrainReport:
    """Cost and progress accounting for one training run."""

    batches: int = 0
    samples: int = 0
    dataset_samples: int = 0
    offline_s: float = 0.0
    online_s: float = 0.0
    sharing_offline_s: float = 0.0  # one-shot dataset encryption/upload
    setup_offline_s: float = 0.0  # lazy triplet-stream generation
    server_bytes: int = 0
    uplink_bytes: int = 0
    raw_comm_bytes: int = 0
    wire_comm_bytes: int = 0
    losses: list[float] = field(default_factory=list)
    batch_online_s: list[float] = field(default_factory=list)
    # fault-recovery accounting (zero on a fault-free run)
    party_restarts: int = 0
    batches_replayed: int = 0
    checkpoints_written: int = 0

    @property
    def total_s(self) -> float:
        return self.offline_s + self.online_s

    @property
    def occupancy(self) -> float:
        """Online fraction of total simulated time (Table 3's metric)."""
        return self.online_s / self.total_s if self.total_s else 0.0

    @property
    def marginal_online_s(self) -> float:
        """Steady-state online cost per batch (first batch excluded —
        lazy placement decisions make it atypical)."""
        tail = self.batch_online_s[1:] or self.batch_online_s
        return sum(tail) / len(tail) if tail else 0.0

    @property
    def compression_savings(self) -> float:
        if self.raw_comm_bytes == 0:
            return 0.0
        return 1.0 - self.wire_comm_bytes / self.raw_comm_bytes

    def extrapolate(self, paper_samples: int, paper_batches: int) -> tuple[float, float]:
        """(offline_s, online_s) projected to paper-scale data.

        Dataset sharing scales linearly with sample count; triplet setup
        is one-time; online scales with batch count.
        """
        scale = paper_samples / max(self.dataset_samples, 1)
        offline = self.sharing_offline_s * scale + self.setup_offline_s
        online = self.marginal_online_s * paper_batches
        return offline, online


class SecureTrainer:
    """Batch-wise secure SGD over a model built on a SecureContext.

    ``checkpoint_every=K`` turns on share checkpointing (and with it,
    party-crash recovery) every K batches; ``checkpoint_dir`` defaults
    to a fresh temporary directory.  ``max_restarts`` bounds how many
    :class:`~repro.faults.blame.PartyFailure` recoveries one ``train``
    call attempts before re-raising.
    """

    def __init__(
        self,
        ctx,
        model,
        *,
        lr: float = 0.125,
        monitor_loss: bool = True,
        checkpoint_every: int | None = None,
        checkpoint_dir: str | Path | None = None,
        max_restarts: int = 2,
    ):
        if checkpoint_every is not None and checkpoint_every < 1:
            raise ConfigError(f"checkpoint_every must be >= 1, got {checkpoint_every}")
        if max_restarts < 0:
            raise ConfigError(f"max_restarts must be >= 0, got {max_restarts}")
        self.ctx = ctx
        self.model = model
        self.lr = float(lr)
        self.monitor_loss = monitor_loss
        self.checkpoint_every = checkpoint_every
        self.checkpoint_dir = Path(checkpoint_dir) if checkpoint_dir is not None else None
        self.max_restarts = max_restarts

    # -- recovery helpers -------------------------------------------------------

    def _checkpoint_path(self) -> Path:
        if self.checkpoint_dir is None:
            self.checkpoint_dir = Path(tempfile.mkdtemp(prefix="repro-ckpt-"))
        return self.checkpoint_dir

    def _save_checkpoint(self, report: TrainReport, cursor: int) -> None:
        save_model(
            self.model,
            self._checkpoint_path(),
            extra={"batch": cursor, "losses": list(report.losses)},
        )
        report.checkpoints_written += 1

    def _recover(self, report: TrainReport, failure: PartyFailure, cursor: int) -> int:
        """Restart the blamed party and restore the last checkpoint.

        Returns the batch cursor to resume from.  Raises the original
        failure when recovery is off or the restart budget is spent.
        """
        if self.checkpoint_every is None or report.party_restarts >= self.max_restarts:
            raise failure
        ctx = self.ctx
        telemetry = getattr(ctx, "telemetry", None)
        injector = getattr(ctx, "fault_injector", None)
        with maybe_span(telemetry, "train.recovery", clock="online", party=failure.party):
            if injector is not None:
                injector.restart(failure.party)
            # a restarted peer renegotiates its compression session: an
            # interrupted exchange leaves delta histories desynchronised
            for compressor in getattr(ctx, "compressors", {}).values():
                compressor.reset_stream_state()
            # a restarted server lost its GPU memory: nothing staged or
            # previously exchanged can be assumed present on replay
            reset_reuse = getattr(ctx, "reset_mask_reuse", None)
            if reset_reuse is not None:
                reset_reuse()
            # simulated reboot: the recovering server is busy for the
            # restart penalty before it can replay anything
            if failure.party.startswith("server"):
                party_id = int(failure.party[-1])
                ctx.server_cpu[party_id].run(
                    ctx.config.retry_policy.restart_penalty_s, label="recovery:restart"
                )
            extra = load_model(self.model, self._checkpoint_path())
        resume = int(extra.get("batch", 0))
        report.party_restarts += 1
        replayed = max(0, cursor - resume)
        report.batches_replayed += replayed
        if telemetry is not None:
            telemetry.counter(
                "faults.batches_replayed", "batches re-run after checkpoint restore"
            ).inc(replayed or 0, party=failure.party)
        # rewind the per-batch records the replay will append again
        report.losses = list(extra.get("losses", []))[:resume]
        del report.batch_online_s[resume:]
        return resume

    def train(
        self,
        x: np.ndarray,
        y: np.ndarray,
        *,
        epochs: int = 1,
        batch_size: int = 128,
        max_batches: int | None = None,
    ) -> TrainReport:
        """Run secure SGD; ``x`` is (n, features), ``y`` is (n, outputs)."""
        x = np.asarray(x, dtype=np.float64)
        y = np.asarray(y, dtype=np.float64)
        if x.ndim != 2 or y.ndim != 2 or x.shape[0] != y.shape[0]:
            raise ConfigError(
                f"train expects 2-D x, y with matching rows; got {x.shape} and {y.shape}"
            )
        if x.shape[0] < batch_size:
            raise ConfigError(
                f"need at least one full batch: {x.shape[0]} samples < batch {batch_size}"
            )
        report = TrainReport(dataset_samples=x.shape[0])
        telemetry = getattr(self.ctx, "telemetry", None)
        injector = getattr(self.ctx, "fault_injector", None)
        start_mark = self.ctx.mark()
        comp_start = self.ctx.compression_stats

        # ---- offline: encrypt + upload the dataset once ----------------------
        with maybe_span(telemetry, "train.share_dataset", clock="offline"):
            xs = SharedTensor.from_plain(self.ctx, x, label="dataset/x")
            ys = SharedTensor.from_plain(self.ctx, y, label="dataset/y")
        report.sharing_offline_s = self.ctx.since(start_mark).offline_s

        # ---- offline: batched triplet provisioning (pool_size > 0) -----------
        # Runs on the offline clock, so refills overlap the online steps
        # below by the two-clock construction; counted in setup_offline_s.
        provision = getattr(self.ctx, "provision_for", None)
        if provision is not None:
            provision(self.model, batch_size, training=True)

        # ---- online: iterate batches over the shares -------------------------
        offsets = [
            lo
            for _epoch in range(epochs)
            for lo in range(0, x.shape[0] - batch_size + 1, batch_size)
        ]
        if max_batches is not None:
            offsets = offsets[:max_batches]
        if self.checkpoint_every is not None and offsets:
            self._save_checkpoint(report, 0)  # crash-in-batch-0 is recoverable
        cursor = 0
        while cursor < len(offsets):
            lo = offsets[cursor]
            if injector is not None:
                injector.advance_step(1)
            # New online step (also on replay): cached triplets issue
            # fresh shares, and double-consume within the step raises.
            begin_batch = getattr(self.ctx, "begin_batch", None)
            if begin_batch is not None:
                begin_batch()
            batch_mark = self.ctx.mark()
            try:
                with maybe_span(
                    telemetry, "train.batch", clock="online", batch=str(cursor)
                ):
                    xb = xs.row_slice(lo, lo + batch_size)
                    yb = ys.row_slice(lo, lo + batch_size)
                    pred = self.model.train_batch(xb, yb, self.lr)
            except PartyFailure as failure:
                cursor = self._recover(report, failure, cursor)
                continue
            report.batch_online_s.append(self.ctx.since(batch_mark).online_s)
            if self.monitor_loss:
                err = pred.decode() - y[lo : lo + batch_size]
                report.losses.append(float(np.mean(err**2)))
            cursor += 1
            if self.checkpoint_every is not None and cursor % self.checkpoint_every == 0:
                self._save_checkpoint(report, cursor)

        report.batches = len(offsets)
        report.samples = report.batches * batch_size
        # Under the dataflow runtime the batches above only *deferred*
        # their tasks; commit the schedule so the report's makespans are
        # the scheduled ones.  (Per-batch batch_online_s stays the
        # program-order estimate — overlapped batches have no disjoint
        # per-batch attribution.)
        finalize = getattr(self.ctx, "finalize_runtime", None)
        if finalize is not None:
            finalize()
        delta = self.ctx.since(start_mark)
        report.offline_s = delta.offline_s
        report.online_s = delta.online_s
        report.setup_offline_s = max(0.0, report.offline_s - report.sharing_offline_s)
        report.server_bytes = delta.server_bytes
        report.uplink_bytes = delta.uplink_bytes
        comp_end = self.ctx.compression_stats
        report.raw_comm_bytes = comp_end.raw_bytes - comp_start.raw_bytes
        report.wire_comm_bytes = comp_end.wire_bytes - comp_start.wire_bytes
        return report
