"""Residual networks over the secure layers (paper Section 7.7).

The discussion section argues ParSecureML extends to "more advanced
machine learning models, like ResNet", because residual networks do not
change how convolution is used — most layers are still convolutions,
i.e. triplet multiplications after im2col, and the skip connection is a
*local* share addition (no interaction, no triplet).

This module makes that claim concrete: :class:`SecureResidualBlock`
wraps two convolutions with a skip connection, and
:class:`SecureResNet` stacks blocks into a small classifier.  The only
new protocol ingredient is nothing at all — the skip add is
share-local, exactly as the paper predicts.
"""

from __future__ import annotations

import numpy as np

from repro.core import ops
from repro.core.layers import SecureConv2D, SecureDense, SecureLayer
from repro.core.models import SecureModel
from repro.core.tensor import SharedTensor
from repro.util.errors import ShapeError


class SecureResidualBlock(SecureLayer):
    """Two 3x3 convolutions with identity skip: ``y = relu(F(x) + x)``.

    Channel counts are kept equal in and out so the identity skip needs
    no projection (the classic basic-block special case).
    """

    def __init__(self, ctx, in_shape: tuple[int, int, int], *, name: str = "resblock"):
        self.ctx = ctx
        self.name = name
        h, w, c = in_shape
        self.in_shape = tuple(in_shape)
        # 'same'-style geometry via kernel 3, stride 1 on a VALID conv
        # would shrink the map; we keep VALID convs and pad the *skip*
        # by cropping it to the conv output window instead, which keeps
        # every operation linear/local.
        self.conv1 = SecureConv2D(ctx, in_shape, c, kernel=3, name=f"{name}/conv1")
        mid_shape = (self.conv1.out_h, self.conv1.out_w, c)
        self.conv2 = SecureConv2D(ctx, mid_shape, c, kernel=3, name=f"{name}/conv2")
        self.out_shape = (self.conv2.out_h, self.conv2.out_w, c)
        self._mask1 = None
        self._mask2 = None
        self._skip_cache = None

    def _crop_skip(self, x: SharedTensor, n: int) -> SharedTensor:
        """Centre-crop the input shares to the residual path's geometry."""
        h, w, c = self.in_shape
        oh, ow, _ = self.out_shape
        dh, dw = (h - oh) // 2, (w - ow) // 2
        crops = []
        for share in x.shares:
            img = share.reshape(n, h, w, c)
            crops.append(
                np.ascontiguousarray(img[:, dh : dh + oh, dw : dw + ow, :]).reshape(n, -1)
            )
        return SharedTensor(ctx=self.ctx, shares=tuple(crops), kind=x.kind, tasks=x.tasks)

    def forward(self, x: SharedTensor, *, training: bool = True) -> SharedTensor:
        n = x.shape[0]
        if int(np.prod(x.shape[1:])) != int(np.prod(self.in_shape)):
            raise ShapeError(
                f"{self.name}: input {x.shape} does not match {self.in_shape}"
            )
        h1 = self.conv1.forward(x, training=training)
        a1, mask1 = ops.activation(h1, kind="relu", label=f"{self.name}/relu1")
        h2 = self.conv2.forward(a1, training=training)
        skip = self._crop_skip(x, n)
        summed = h2 + skip  # the residual add: local, no triplet
        out, mask2 = ops.activation(summed, kind="relu", label=f"{self.name}/relu2")
        if training:
            self._mask1, self._mask2 = mask1, mask2
            self._batch = n
        return out

    def backward(self, delta: SharedTensor) -> SharedTensor:
        delta = ops.secure_elementwise_mul(delta, self._mask2, label=f"{self.name}/drelu2")
        d_conv = self.conv2.backward(delta)
        d_conv = ops.secure_elementwise_mul(d_conv, self._mask1, label=f"{self.name}/drelu1")
        d_main = self.conv1.backward(d_conv)
        # gradient w.r.t. the skip path: scatter the cropped delta back
        n = self._batch
        h, w, c = self.in_shape
        oh, ow, _ = self.out_shape
        dh, dw = (h - oh) // 2, (w - ow) // 2
        padded = []
        for share in delta.shares:
            img = share.reshape(n, oh, ow, c)
            full = np.zeros((n, h, w, c), dtype=share.dtype)
            full[:, dh : dh + oh, dw : dw + ow, :] = img
            padded.append(full.reshape(n, -1))
        d_skip = SharedTensor(
            ctx=self.ctx, shares=tuple(padded), kind="fixed", tasks=delta.tasks
        )
        return d_main + d_skip

    def apply_gradients(self, lr: float) -> None:
        self.conv1.apply_gradients(lr)
        self.conv2.apply_gradients(lr)

    def parameters(self) -> list[SharedTensor]:
        return [*self.conv1.parameters(), *self.conv2.parameters()]


class SecureResNet(SecureModel):
    """A small residual classifier: stem conv -> N blocks -> dense head."""

    def __init__(
        self,
        ctx,
        image_shape: tuple[int, int, int],
        *,
        channels: int = 8,
        n_blocks: int = 1,
        n_out: int = 10,
    ):
        super().__init__(ctx)
        stem = SecureConv2D(ctx, image_shape, channels, kernel=3, name="stem")
        shape = (stem.out_h, stem.out_w, channels)
        blocks = []
        for b in range(n_blocks):
            block = SecureResidualBlock(ctx, shape, name=f"block{b}")
            blocks.append(block)
            shape = block.out_shape
        head = SecureDense(ctx, int(np.prod(shape)), n_out, name="head")
        self.layers = [stem, *blocks, head]
