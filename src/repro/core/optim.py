"""Optimizers over secret-shared parameters.

SGD updates are *linear* in the gradients, so every optimizer whose
update rule is a linear recurrence (plain SGD, momentum, gradient
averaging) runs **locally on shares** — no extra protocol rounds, no
triplets.  That observation is what makes secure training practical:
only the forward/backward products are interactive.

The update arithmetic uses public-scalar multiplication with local
truncation (:meth:`~repro.core.tensor.SharedTensor.mul_public`), the
same primitive the layers use, so optimizer state stays shared
end to end.

Usage::

    opt = MomentumSGD(lr=0.05, momentum=0.9)
    ...
    model.backward(delta)
    opt.step(model)        # instead of model.apply_gradients(lr)
"""

from __future__ import annotations

from repro.core.tensor import SharedTensor
from repro.util.errors import ConfigError


def _layer_grads(layer):
    """(attr_name, param, grad) triples for one layer's pending grads."""
    pairs = []
    if getattr(layer, "_grad_w", None) is not None:
        pairs.append(("weight", layer.weight, layer._grad_w))
    if getattr(layer, "_grad_b", None) is not None:
        pairs.append(("bias", layer.bias, layer._grad_b))
    return pairs


def _walk(layer, prefix: str, seen: set):
    """Yield (path, layer) for a layer and its nested sub-layers.

    Composite layers (residual blocks, RNN models) hold sub-layers as
    attributes; the optimizer must reach their pending gradients too.
    """
    if id(layer) in seen:
        return
    seen.add(id(layer))
    yield prefix, layer
    for attr, value in vars(layer).items():
        if attr.startswith("_"):
            continue
        if hasattr(value, "__dict__") and (hasattr(value, "forward") or hasattr(value, "step")):
            yield from _walk(value, f"{prefix}/{attr}", seen)


class SGD:
    """Plain SGD on shares: ``p <- p - lr * g`` (local)."""

    def __init__(self, lr: float = 0.125):
        if lr <= 0:
            raise ConfigError(f"lr must be positive, got {lr}")
        self.lr = float(lr)

    def update(self, key: str, param: SharedTensor, grad: SharedTensor) -> SharedTensor:
        return param - grad.mul_public(self.lr)

    def step(self, model) -> None:
        """Apply pending gradients on every (possibly nested) layer."""
        seen: set = set()
        for li, top in enumerate(model.layers):
            for path, layer in _walk(top, str(li), seen):
                updated = False
                for attr, param, grad in _layer_grads(layer):
                    setattr(layer, attr, self.update(f"{path}/{attr}", param, grad))
                    setattr(layer, f"_grad_{attr[0]}", None)
                    updated = True
                if not updated and getattr(layer, "_grad_wx", None) is not None:
                    # the RNN cell keeps bespoke BPTT gradient state;
                    # apply its own rule at this optimizer's rate
                    layer.apply_gradients(self.lr)


class MomentumSGD(SGD):
    """Momentum SGD on shares: ``v <- mu v + g;  p <- p - lr v``.

    The velocity ``v`` is itself a shared tensor (initialised to shared
    zeros on first touch), so the optimizer state is as private as the
    parameters.
    """

    def __init__(self, lr: float = 0.125, momentum: float = 0.875):
        super().__init__(lr)
        if not 0.0 <= momentum < 1.0:
            raise ConfigError(f"momentum must be in [0, 1), got {momentum}")
        self.momentum = float(momentum)
        self._velocity: dict[str, SharedTensor] = {}

    def update(self, key: str, param: SharedTensor, grad: SharedTensor) -> SharedTensor:
        vel = self._velocity.get(key)
        if vel is None or vel.shape != grad.shape:
            vel = grad
        else:
            vel = vel.mul_public(self.momentum) + grad
        self._velocity[key] = vel
        return param - vel.mul_public(self.lr)


class AveragedSGD(SGD):
    """Polyak-style averaging: track the running mean of the iterates.

    ``average()`` returns shared parameters; decoding them is the
    client's call, as with any shared value.
    """

    def __init__(self, lr: float = 0.125):
        super().__init__(lr)
        self._sums: dict[str, SharedTensor] = {}
        self._count = 0

    def step(self, model) -> None:
        super().step(model)
        self._count += 1
        seen: set = set()
        for li, top in enumerate(model.layers):
            for path, layer in _walk(top, str(li), seen):
                for attr in ("weight", "bias"):
                    param = getattr(layer, attr, None)
                    if isinstance(param, SharedTensor):
                        key = f"{path}/{attr}"
                        prev = self._sums.get(key)
                        self._sums[key] = param if prev is None else prev + param

    def average(self, key: str) -> SharedTensor:
        if self._count == 0 or key not in self._sums:
            raise ConfigError(f"no iterates recorded for {key!r}")
        return self._sums[key].mul_public(1.0 / self._count)
