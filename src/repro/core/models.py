"""The paper's six benchmark models, built on the secure layers.

Architectures follow Section 7.1:

* **CNN** — one 5x5 convolutional layer + two fully connected layers
  (hidden 64, output 10), ReLU activations;
* **MLP** — three layers (128 -> 64 -> 10), ReLU;
* **RNN** — an Elman recurrent cell over a time series + output layer;
* **Linear regression** — one weight matrix, squared loss;
* **Logistic regression** — linear scores + the Eq. 9 piecewise
  activation standing in for the sigmoid (as SecureML does);
* **SVM** — linear SVM trained with hinge-loss subgradient descent.
  The paper trains SVMs with SMO; SMO's data-dependent working-set
  selection cannot run obliviously on shares, so the secure version
  uses the standard MPC-friendly substitute (subgradient descent on the
  same objective) while the plain-text SMO lives in
  :mod:`repro.baselines.plain` — see DESIGN.md.

Every model exposes ``forward`` / ``train_batch`` over
:class:`~repro.core.tensor.SharedTensor` inputs, so one trainer drives
them all.
"""

from __future__ import annotations

import numpy as np

from repro.core import ops
from repro.core.layers import (
    SecureActivation,
    SecureConv2D,
    SecureDense,
    SecureLayer,
    SecureRNNCell,
)
from repro.core.tensor import SharedTensor
from repro.mpc.pool import TripletRequest, hadamard_stream, matmul_stream
from repro.util.errors import ProtocolError, ShapeError


class SecureModel:
    """Base: a stack of layers plus a loss gradient."""

    def __init__(self, ctx):
        self.ctx = ctx
        self.layers: list[SecureLayer] = []

    def forward(self, x: SharedTensor, *, training: bool = True) -> SharedTensor:
        for layer in self.layers:
            x = layer.forward(x, training=training)
        return x

    def loss_delta(self, pred: SharedTensor, y: SharedTensor) -> SharedTensor:
        """dLoss/dPred; squared-error style by default (shared, local)."""
        return pred - y

    def backward(self, delta: SharedTensor) -> None:
        for layer in reversed(self.layers):
            delta = layer.backward(delta)

    def apply_gradients(self, lr: float) -> None:
        for layer in self.layers:
            layer.apply_gradients(lr)

    def train_batch(self, x: SharedTensor, y: SharedTensor, lr: float) -> SharedTensor:
        """One forward + backward + update; returns the predictions."""
        pred = self.forward(x, training=True)
        delta = self.loss_delta(pred, y)
        self.backward(delta)
        self.apply_gradients(lr)
        return pred

    def parameters(self) -> list[SharedTensor]:
        return [p for layer in self.layers for p in layer.parameters()]

    def offline_plan(
        self, batch_size: int, *, training: bool = True
    ) -> list[TripletRequest]:
        """Exact per-step triplet demand for batched offline provisioning.

        Walks the layer stack's :meth:`SecureLayer.plan_streams` with
        shape propagation.  Because op streams cache one triplet per
        label, this is also the *total* demand of a run (under the
        default ``fresh_triplets=False``), so the pool can pre-generate
        everything in fused batches before the first online step.
        Models whose ``train_batch`` departs from the plain
        forward/backward walk override this.
        """
        requests: list[TripletRequest] = []
        shape: tuple[int, ...] = (batch_size,)
        for layer in self.layers:
            layer_reqs, shape = layer.plan_streams(shape, training=training)
            requests.extend(layer_reqs)
        return requests


class SecureMLP(SecureModel):
    """Input -> 128 -> 64 -> 10 with ReLU (paper Section 7.1)."""

    def __init__(self, ctx, input_dim: int, hidden: tuple[int, ...] = (128, 64), n_out: int = 10):
        super().__init__(ctx)
        dims = [input_dim, *hidden, n_out]
        for li, (d_in, d_out) in enumerate(zip(dims[:-1], dims[1:])):
            self.layers.append(SecureDense(ctx, d_in, d_out, name=f"mlp{li}"))
            if li < len(dims) - 2:
                self.layers.append(SecureActivation(ctx, "relu", name=f"mlp{li}act"))


class SecureCNN(SecureModel):
    """One 5x5 conv + two dense layers, ReLU (paper Section 7.1)."""

    def __init__(
        self,
        ctx,
        image_shape: tuple[int, int, int],
        *,
        conv_channels: int = 8,
        hidden: int = 64,
        n_out: int = 10,
        kernel: int = 5,
        conv_stride: int = 1,
    ):
        super().__init__(ctx)
        conv = SecureConv2D(
            ctx, image_shape, conv_channels, kernel, stride=conv_stride, name="conv0"
        )
        flat = conv.out_h * conv.out_w * conv_channels
        self.layers = [
            conv,
            SecureActivation(ctx, "relu", name="conv0act"),
            SecureDense(ctx, flat, hidden, name="fc1"),
            SecureActivation(ctx, "relu", name="fc1act"),
            SecureDense(ctx, hidden, n_out, name="fc2"),
        ]


class SecureLinearRegression(SecureModel):
    """y = X w + b with squared loss."""

    def __init__(self, ctx, input_dim: int, n_out: int = 1):
        super().__init__(ctx)
        self.layers = [SecureDense(ctx, input_dim, n_out, name="linreg")]


class SecureLogisticRegression(SecureModel):
    """Linear scores + the Eq. 9 piecewise activation (sigmoid stand-in)."""

    def __init__(self, ctx, input_dim: int, n_out: int = 1):
        super().__init__(ctx)
        self.layers = [
            SecureDense(ctx, input_dim, n_out, name="logreg"),
            SecureActivation(ctx, "piecewise", name="logregact"),
        ]


class SecureSVM(SecureModel):
    """Linear SVM; hinge subgradient with secure margin comparison.

    Loss: mean(max(0, 1 - y * s)) + (reg/2)||w||^2 for labels in
    {-1, +1}.  The subgradient needs the indicator [1 - y*s >= 0],
    computed with the same secure-comparison machinery the activations
    use.
    """

    def __init__(self, ctx, input_dim: int, *, reg: float = 1e-3):
        super().__init__(ctx)
        self.dense = SecureDense(ctx, input_dim, 1, name="svm")
        self.layers = [self.dense]
        self.reg = reg

    def train_batch(self, x: SharedTensor, y: SharedTensor, lr: float) -> SharedTensor:
        scores = self.dense.forward(x, training=True)
        # margin = 1 - y * s  (y shared, s shared -> one Hadamard triplet)
        ys = ops.secure_elementwise_mul(y, scores, label="svm/ys")
        margin = (-ys).add_public(1.0)
        active = ops.secure_compare_const(margin, 0.0, label="svm/active")
        # subgradient dL/ds = -y * active  (indicator product, single scale)
        coeff = ops.secure_elementwise_mul(-y, active, label="svm/coeff")
        batch = x.shape[0]
        grad_w = ops.secure_matmul(x.T, coeff, label="svm/dW").mul_public(1.0 / batch)
        grad_w = grad_w + self.dense.weight.mul_public(self.reg)
        grad_b = coeff.sum_rows().mul_public(1.0 / batch)
        self.dense.weight = (self.dense.weight - grad_w.mul_public(lr)).mark_static()
        self.dense.bias = self.dense.bias - grad_b.mul_public(lr)
        return scores

    def offline_plan(
        self, batch_size: int, *, training: bool = True
    ) -> list[TripletRequest]:
        b, d = batch_size, self.dense.in_features
        requests = [matmul_stream((b, d), (d, 1))]  # scores
        if training:
            requests.append(hadamard_stream((b, 1)))  # svm/ys
            requests.append(hadamard_stream((b, 1)))  # svm/coeff
            requests.append(matmul_stream((d, b), (b, 1)))  # svm/dW
        return requests


class SecureRNN(SecureModel):
    """Elman RNN over (batch, time, features) + dense readout.

    Sequence input is supplied flattened as (batch, time*features); the
    model re-slices per step (a local share operation).
    """

    def __init__(self, ctx, n_steps: int, step_features: int, hidden: int = 64, n_out: int = 10):
        super().__init__(ctx)
        self.n_steps = n_steps
        self.step_features = step_features
        self.cell = SecureRNNCell(ctx, step_features, hidden, name="rnn")
        self.readout = SecureDense(ctx, hidden, n_out, name="rnnout")
        self.layers = [self.cell, self.readout]

    def _slice_step(self, x: SharedTensor, t: int) -> SharedTensor:
        lo = t * self.step_features
        hi = lo + self.step_features
        return SharedTensor(
            ctx=self.ctx,
            shares=tuple(np.ascontiguousarray(s[:, lo:hi]) for s in x.shares),
            kind=x.kind,
            tasks=x.tasks,
        )

    def forward(self, x: SharedTensor, *, training: bool = True) -> SharedTensor:
        if x.shape[1] != self.n_steps * self.step_features:
            raise ShapeError(
                f"RNN expects {self.n_steps * self.step_features} features, got {x.shape[1]}"
            )
        h = self.cell.zero_state(x.shape[0])
        for t in range(self.n_steps):
            h = self.cell.step(self._slice_step(x, t), h, t, training=training)
        return self.readout.forward(h, training=training)

    def train_batch(self, x: SharedTensor, y: SharedTensor, lr: float) -> SharedTensor:
        pred = self.forward(x, training=True)
        delta = self.loss_delta(pred, y)
        delta_h = self.readout.backward(delta)
        self.cell.backward_through_time(delta_h)
        self.readout.apply_gradients(lr)
        self.cell.apply_gradients(lr)
        return pred

    def offline_plan(
        self, batch_size: int, *, training: bool = True
    ) -> list[TripletRequest]:
        b = batch_size
        sf, h = self.step_features, self.cell.hidden
        n_out = self.readout.out_features
        requests: list[TripletRequest] = []
        for _t in range(self.n_steps):
            requests.append(matmul_stream((b, sf), (sf, h)))  # x@Wx
            requests.append(matmul_stream((b, h), (h, h)))  # h@Wh
            requests.append(hadamard_stream((b, h)))  # relu mask product
        requests.append(matmul_stream((b, h), (h, n_out)))  # readout fwd
        if training:
            requests.append(matmul_stream((h, b), (b, n_out)))  # readout dW
            requests.append(matmul_stream((b, n_out), (n_out, h)))  # readout dX
            for t in range(self.n_steps):
                requests.append(hadamard_stream((b, h)))  # bptt mask
                requests.append(matmul_stream((sf, b), (b, h)))  # dWx
                requests.append(matmul_stream((h, b), (b, h)))  # dWh
                if t + 1 < self.n_steps:
                    requests.append(matmul_stream((b, h), (h, h)))  # dH
        return requests
