"""Secure embedding-lookup recommendation workload.

The MPC-friendly embedding lookup: the client one-hot (or multi-hot)
encodes its categorical features and the servers compute
``one_hot @ table`` as an ordinary pooled triplet GEMM — data-dependent
gather indices would leak which rows were touched, so the oblivious
formulation pays a full GEMM whose *plaintext* is sparse.

What makes the workload interesting for this framework is the wire, not
the FLOPs: the embedding table is a static operand (``mark_static``),
so under the default per-label triplet caching its masked difference
``F = table - V`` is byte-identical across inference batches, and the
:class:`~repro.comm.compression.DeltaCompressor` collapses every repeat
to an all-zero delta that the CSR framing ships in ``(rows+1)*8`` bytes.
The table is the dominant matrix in the model, so the recsys entry is
the conformance/bench workload that *measures* the CSR win
(``BENCH_workloads.json``; methodology in DESIGN §7).

:class:`SecureRecsys` = embedding + ReLU + dense head, trainable by the
standard trainer; the plaintext twin is
:class:`repro.baselines.plain.PlainRecsys`.
"""

from __future__ import annotations

import numpy as np

from repro.core import ops
from repro.core.layers import SecureActivation, SecureDense, SecureLayer
from repro.core.models import SecureModel
from repro.core.tensor import SharedTensor
from repro.mpc.pool import TripletRequest, matmul_stream
from repro.util.errors import ProtocolError, ShapeError

__all__ = ["SecureEmbedding", "SecureRecsys"]


class SecureEmbedding(SecureLayer):
    """Oblivious embedding lookup: ``one_hot @ table``, no bias.

    A :class:`~repro.core.layers.SecureDense` minus the bias — embedding
    rows have no additive offset, and keeping the layer bias-free means
    the only traffic it generates is the one GEMM whose static-operand
    stream the delta compressor collapses.
    """

    def __init__(self, ctx, vocab: int, emb_dim: int, *, name: str = "emb"):
        self.ctx = ctx
        self.name = name
        self.in_features = vocab
        self.out_features = emb_dim
        rng = ctx.seeds.generator(f"init-{name}")
        scale = 1.0 / np.sqrt(vocab)
        self.weight = SharedTensor.from_plain(
            ctx, rng.uniform(-scale, scale, size=(vocab, emb_dim)), label=f"{name}/table"
        ).mark_static()
        self._x: SharedTensor | None = None
        self._grad_w: SharedTensor | None = None

    def forward(self, x: SharedTensor, *, training: bool = True) -> SharedTensor:
        if x.shape[1] != self.in_features:
            raise ShapeError(
                f"{self.name}: expected {self.in_features} one-hot columns, got {x.shape[1]}"
            )
        if training:
            self._x = x
        return ops.secure_matmul(x, self.weight, label=f"{self.name}/fwd")

    def backward(self, delta: SharedTensor) -> SharedTensor:
        if self._x is None:
            raise ProtocolError(f"{self.name}: backward before forward")
        batch = self._x.shape[0]
        grad_w = ops.secure_matmul(self._x.T, delta, label=f"{self.name}/dW")
        self._grad_w = grad_w.mul_public(1.0 / batch)
        return ops.secure_matmul(delta, self.weight.T, label=f"{self.name}/dX")

    def apply_gradients(self, lr: float) -> None:
        if self._grad_w is None:
            raise ProtocolError(f"{self.name}: apply_gradients before backward")
        self.weight = (self.weight - self._grad_w.mul_public(lr)).mark_static()
        self._grad_w = None

    def parameters(self) -> list[SharedTensor]:
        return [self.weight]

    def plan_streams(
        self, in_shape: tuple[int, ...], *, training: bool
    ) -> tuple[list[TripletRequest], tuple[int, ...]]:
        b = in_shape[0]
        v, e = self.in_features, self.out_features
        reqs = [matmul_stream((b, v), (v, e))]  # fwd
        if training:
            reqs.append(matmul_stream((v, b), (b, e)))  # dW
            reqs.append(matmul_stream((b, e), (e, v)))  # dX
        return reqs, (b, e)


class SecureRecsys(SecureModel):
    """Embedding + ReLU + dense head — the ``recsys`` registry entry."""

    def __init__(self, ctx, vocab: int, emb_dim: int, *, n_out: int = 3):
        super().__init__(ctx)
        self.embedding = SecureEmbedding(ctx, vocab, emb_dim, name="emb")
        self.layers = [
            self.embedding,
            SecureActivation(ctx, "relu", name="embact"),
            SecureDense(ctx, emb_dim, n_out, name="rechead"),
        ]
