"""Interactive secure operations with full offline/online cost accounting.

Each op follows the paper's phase structure:

* **offline** — the client generates the Beaver material for the op's
  stream (charged on the client clock; see
  :meth:`~repro.core.context.SecureContext.get_matrix_triplet`);
* **reconstruct** (online, CPU + network) — the servers form the masked
  differences ``E_i/F_i`` (Eq. 4), exchange them through the
  delta-compression layer (Section 4.4) and combine (Eq. 5);
* **GPU operation** (online) — the Eq. 8 product, scheduled on the GPU
  through pipeline 1 or on the CPU when the profiling-guided placement
  says the workload is too small to amortise PCIe (Section 4.2);
* **truncation** — the SecureML local rescale, on the CPU.

All ops thread :class:`~repro.simgpu.clock.Task` dependencies through
:class:`~repro.core.tensor.SharedTensor.tasks`, which is how pipeline 2
(cross-layer overlap) is expressed; with ``double_pipeline`` off the
context serialises every op behind the previous one instead.
"""

from __future__ import annotations

import math
from contextlib import contextmanager

import numpy as np

from repro.core.tensor import SharedTensor
from repro.fixedpoint.ring import ring_add, ring_mul, ring_sub
from repro.fixedpoint.truncation import truncate_share
from repro.mpc.comparison import emulated_ge_const, secure_ge_const
from repro.mpc.protocol import beaver_elementwise_share
from repro.pipeline.scheduler import StagedGemmOperands, schedule_secure_gemm
from repro.simgpu.clock import Task
from repro.util.deprecation import warn_deprecated
from repro.util.errors import ProtocolError, ShapeError

__all__ = [
    "secure_matmul",
    "secure_elementwise_mul",
    "secure_compare_const",
    "activation",
    "truncate",
]


def _deps(*tasks) -> tuple[Task, ...]:
    return tuple(t for t in tasks if t is not None)


@contextmanager
def _op_scope(ctx, op: str, label: str):
    """Span + per-op roll-up counters around one secure-op invocation.

    ``ops.online_seconds{op}`` attributes the op's *online makespan
    delta* — how far it pushed the online clock — so nested ops (an
    activation's compare + mul) each carry their own share.
    """
    telemetry = getattr(ctx, "telemetry", None)
    if telemetry is None:
        yield
        return
    start = ctx.online_clock.now()
    with telemetry.span(f"op.{label}", clock="online", op=op):
        yield
    telemetry.counter("ops.invocations", "secure-op call counts").inc(1, op=op)
    telemetry.counter("ops.online_seconds", "online makespan attributed per op").inc(
        ctx.online_clock.now() - start, op=op
    )


def _chain(ctx, deps: tuple[Task, ...]) -> tuple[Task, ...]:
    """With double_pipeline off, serialise behind the last online op."""
    if ctx.config.double_pipeline:
        return deps
    last = getattr(ctx, "_chain_task", None)
    return _deps(*deps, last)


def _set_chain(ctx, tasks) -> None:
    if not ctx.config.double_pipeline:
        ctx._chain_task = ctx.online_clock.join(list(_deps(*tasks)))


def _exchange_masked(
    ctx,
    label: str,
    locals_: list[np.ndarray],
    local_tasks: list[Task | None],
) -> tuple[np.ndarray, list[Task]]:
    """Eq. 5: exchange per-server masked matrices and combine.

    ``locals_[i]`` is server i's ``E_i`` (or ``F_i``); returns the public
    combined matrix plus, per server, the task after which that server
    holds it.  Transmission goes through each direction's
    :class:`~repro.comm.compression.DeltaCompressor`.
    """
    combined = ring_add(locals_[0], locals_[1])
    recv_tasks: list[Task] = []
    send_tasks = {}
    for src in (0, 1):
        dst = 1 - src
        payload = ctx.compressors[(src, dst)].encode(f"{label}/{src}", locals_[src])
        # Sender-side compression scan (cheap, bandwidth bound).
        scan = ctx.server_reconstruct_cpu[src].run(
            ctx.config.cpu_spec.elementwise_seconds(
                locals_[src].nbytes, parallel=ctx.config.cpu_parallel
            )
            * (0.5 if ctx.config.compression else 0.0),
            deps=_deps(local_tasks[src]),
            label=f"{label}:compress",
        )
        send_tasks[src] = ctx.server_channel.send(
            f"server{src}", f"server{dst}", payload.wire_bytes, deps=(scan,), label=f"{label}:send"
        )
        # Transcript tap: log the masked matrix the receiver can
        # reconstruct (the information content of the wire), not the
        # CSR delta encoding — deltas of truncated shares are
        # legitimately non-uniform, the masked matrix must not be.
        ctx.record_wire(
            f"server{src}", f"server{dst}", f"{label}/{src}",
            locals_[src], nbytes=payload.wire_bytes,
        )
        # Receiver replays the compressor state machine for exactness.
        decoded = ctx.compressors[(src, dst)].decode(payload)
        if not np.array_equal(decoded, locals_[src]):  # pragma: no cover - invariant
            raise ProtocolError(f"compression round-trip mismatch on stream {label}/{src}")
    for dst in (0, 1):
        src = 1 - dst
        combine = ctx.server_reconstruct_cpu[dst].elementwise(
            ring_add,
            [locals_[dst], locals_[src]],
            deps=_deps(local_tasks[dst], send_tasks[src]),
            label=f"{label}:combine",
        )[1]
        recv_tasks.append(combine)
    return combined, recv_tasks


def truncate(x: SharedTensor, *, label: str = "trunc") -> SharedTensor:
    """Local-truncation rescale of a double-scale product (both servers)."""
    ctx = x.ctx
    frac = ctx.encoder.frac_bits
    shares = []
    tasks = []
    with _op_scope(ctx, "truncate", label):
        for i in (0, 1):
            result, task = ctx.server_cpu[i].elementwise(
                lambda s, i=i: truncate_share(s, frac, i),
                [x.shares[i]],
                deps=_deps(x.tasks[i]),
                label=label,
            )
            shares.append(result)
            tasks.append(task)
    return SharedTensor(ctx=ctx, shares=tuple(shares), kind="fixed", tasks=tuple(tasks))


def secure_matmul(
    x: SharedTensor,
    y: SharedTensor,
    *,
    label: str = "matmul",
    truncate_result: bool = True,
) -> SharedTensor:
    """Secure matrix product ``x @ y`` (Eqs. 4-8 end to end)."""
    ctx = x.ctx
    if x.ndim != 2 or y.ndim != 2 or x.shape[1] != y.shape[0]:
        raise ShapeError(f"secure_matmul shapes incompatible: {x.shape} x {y.shape}")
    m, k = x.shape
    n = y.shape[1]
    both_fixed = x.kind == "fixed" and y.kind == "fixed"

    with _op_scope(ctx, "matmul", label):
        return _secure_matmul_body(
            ctx, x, y, m, k, n, both_fixed, label=label, truncate_result=truncate_result
        )


def _secure_matmul_body(
    ctx, x, y, m, k, n, both_fixed, *, label: str, truncate_result: bool
) -> SharedTensor:
    # --- offline ---------------------------------------------------------------
    triplet = ctx.get_matrix_triplet(label, x.shape, y.shape)

    # --- static-operand mask reuse (config.static_mask_reuse) ------------------
    # For a static operand whose mask is unchanged since the last run of
    # this op stream, the combined masked difference is bit-identical —
    # the servers skip the subtract, the transmission and the combine.
    reuse = getattr(ctx, "mask_reuse_enabled", False)
    cached_e = ctx.reuse_masked(label, "E", x, triplet) if reuse else None
    cached_f = ctx.reuse_masked(label, "F", y, triplet) if reuse else None

    # --- reconstruct (online, CPU + network) ------------------------------------
    e_locals, e_tasks_local = [], []
    f_locals, f_tasks_local = [], []
    starts = []
    for i in (0, 1):
        start = _chain(ctx, _deps(x.tasks[i], y.tasks[i]))
        starts.append(start)
        if cached_e is None:
            e_i, te = ctx.server_reconstruct_cpu[i].elementwise(
                ring_sub, [x.shares[i], triplet.u[i]], deps=_deps(x.tasks[i], *start), label=f"{label}:E{i}"
            )
            e_locals.append(e_i)
            e_tasks_local.append(te)
        if cached_f is None:
            f_i, tf = ctx.server_reconstruct_cpu[i].elementwise(
                ring_sub, [y.shares[i], triplet.v[i]], deps=_deps(y.tasks[i], *start), label=f"{label}:F{i}"
            )
            f_locals.append(f_i)
            f_tasks_local.append(tf)
    if cached_e is None:
        e, e_tasks = _exchange_masked(ctx, f"{label}/E", e_locals, e_tasks_local)
        if reuse:
            ctx.store_masked(label, "E", x, triplet, e)
    else:
        e, e_tasks = cached_e, [None, None]
    if cached_f is None:
        f, f_tasks = _exchange_masked(ctx, f"{label}/F", f_locals, f_tasks_local)
        if reuse:
            ctx.store_masked(label, "F", y, triplet, f)
    else:
        f, f_tasks = cached_f, [None, None]

    # --- GPU operation (online) ---------------------------------------------------
    decision = ctx.profiler.place_gemm(m, 2 * k, n, operands_on_gpu=False)
    shares = []
    tasks = []
    for i in (0, 1):
        if cached_e is None and cached_f is None:
            ready = _deps(e_tasks[i], f_tasks[i])
        else:
            # A cached side has no exchange tasks; depend directly on the
            # operands (and the serialisation chain) instead.
            ready = _deps(*starts[i], e_tasks[i], f_tasks[i])
        tshare = triplet.share_for(i)
        if decision.placement == "gpu" and ctx.server_gpu[i] is not None:
            staged = None
            if reuse:
                # Keep this stream's Z share (and, for a static right
                # operand, the combined F) resident on the server GPU:
                # re-uploaded only when the triplet or value changes.
                staged_f = None
                if y.static:
                    staged_f = ctx.stash_device_buffer(
                        i, f"f/{label}", ("f", y.uid, triplet.uid), f,
                        deps=ready, label=f"{label}:stage:F",
                    )
                staged_z = ctx.stash_device_buffer(
                    i, f"z/{label}", ("z", triplet.uid), tshare.z,
                    deps=ready, label=f"{label}:stage:Z",
                )
                staged = StagedGemmOperands(f=staged_f, z=staged_z)
            result = schedule_secure_gemm(
                ctx.server_gpu[i],
                i,
                e,
                f,
                x.shares[i],
                y.shares[i],
                tshare,
                deps=ready,
                pipeline=ctx.config.pipeline1,
                staged=staged,
            )
            shares.append(result.c_share)
            tasks.append(result.done)
        else:
            tshare.mark_consumed()
            lead = x.shares[i] if i == 0 else ring_sub(x.shares[i], e)
            left = np.concatenate([lead, e], axis=1)
            right = np.concatenate([f, y.shares[i]], axis=0)
            prod, tg = ctx.server_cpu[i].gemm_ring(left, right, deps=ready, label=f"{label}:cpu_gemm")
            c_i, tc = ctx.server_cpu[i].elementwise(
                ring_add, [prod, tshare.z], deps=(tg,), label=f"{label}:+Z"
            )
            shares.append(c_i)
            tasks.append(tc)
    _set_chain(ctx, tasks)
    out = SharedTensor(ctx=ctx, shares=tuple(shares), kind="fixed", tasks=tuple(tasks))
    if both_fixed and truncate_result:
        out = truncate(out, label=f"{label}:trunc")
    elif not both_fixed:
        # fixed x indicator (or indicator x fixed) stays at single scale.
        out.kind = "fixed" if (x.kind == "fixed" or y.kind == "fixed") else "indicator"
    return out


def secure_elementwise_mul(
    x: SharedTensor, y: SharedTensor, *, label: str = "hadamard"
) -> SharedTensor:
    """Secure Hadamard product (the CNN's point-to-point multiplications)."""
    ctx = x.ctx
    if x.shape != y.shape:
        raise ShapeError(f"elementwise shapes differ: {x.shape} vs {y.shape}")
    with _op_scope(ctx, "elementwise_mul", label):
        return _secure_elementwise_mul_body(ctx, x, y, label=label)


def _secure_elementwise_mul_body(ctx, x, y, *, label: str) -> SharedTensor:
    triplet = ctx.get_elementwise_triplet(label, x.shape)

    e_locals, e_tasks_local = [], []
    f_locals, f_tasks_local = [], []
    for i in (0, 1):
        start = _chain(ctx, _deps(x.tasks[i], y.tasks[i]))
        e_i, te = ctx.server_reconstruct_cpu[i].elementwise(
            ring_sub, [x.shares[i], triplet.u[i]], deps=start, label=f"{label}:E{i}"
        )
        f_i, tf = ctx.server_reconstruct_cpu[i].elementwise(
            ring_sub, [y.shares[i], triplet.v[i]], deps=start, label=f"{label}:F{i}"
        )
        e_locals.append(e_i)
        f_locals.append(f_i)
        e_tasks_local.append(te)
        f_tasks_local.append(tf)
    flat = lambda a: a.reshape(a.shape[0], -1) if a.ndim != 2 else a  # noqa: E731
    e, e_tasks = _exchange_masked(ctx, f"{label}/E", [flat(v) for v in e_locals], e_tasks_local)
    f, f_tasks = _exchange_masked(ctx, f"{label}/F", [flat(v) for v in f_locals], f_tasks_local)
    e = e.reshape(x.shape)
    f = f.reshape(x.shape)

    nbytes = x.nbytes
    decision = ctx.profiler.place_elementwise(4 * nbytes, operands_on_gpu=False)
    shares, tasks = [], []
    for i in (0, 1):
        ready = _deps(e_tasks[i], f_tasks[i])
        tshare = triplet.share_for(i)
        compute = lambda i=i, tshare=tshare: beaver_elementwise_share(
            i, e, f, x.shares[i], y.shares[i], tshare
        )
        if decision.placement == "gpu" and ctx.server_gpu[i] is not None:
            gpu = ctx.server_gpu[i]
            bufs = []
            tdeps = list(ready)
            for arr, nm in ((e, "E"), (f, "F"), (x.shares[i], "A"), (y.shares[i], "B")):
                buf, tt = gpu.h2d(arr, deps=ready, label=f"{label}:h2d:{nm}")
                bufs.append(buf)
                tdeps.append(tt)
            c_i = compute()
            out_buf = gpu.pool.allocate(c_i)
            tk = gpu.clock.run(
                gpu.stream(0),
                gpu.spec.elementwise_seconds(5 * nbytes),
                deps=tuple(tdeps),
                label=f"{label}:kernel",
            )
            _, tout = gpu.d2h(out_buf, deps=(tk,), label=f"{label}:d2h")
            for b in bufs + [out_buf]:
                gpu.free(b)
            shares.append(c_i)
            tasks.append(tout)
        else:
            c_i = compute()
            tk = ctx.server_cpu[i].run(
                ctx.config.cpu_spec.elementwise_seconds(
                    5 * nbytes, parallel=ctx.config.cpu_parallel
                ),
                deps=ready,
                label=f"{label}:cpu",
            )
            shares.append(c_i)
            tasks.append(tk)
    _set_chain(ctx, tasks)
    out = SharedTensor(ctx=ctx, shares=tuple(shares), kind="fixed", tasks=tuple(tasks))
    if x.kind == "fixed" and y.kind == "fixed":
        out = truncate(out, label=f"{label}:trunc")
    elif x.kind == "indicator" and y.kind == "indicator":
        out.kind = "indicator"
    return out


def secure_compare_const(
    x: SharedTensor, threshold: float, *, label: str = "cmp"
) -> SharedTensor:
    """Indicator tensor ``[x >= threshold]`` via secure comparison.

    Protocol selected by ``config.activation_protocol``: the
    dealer-assisted GMW protocol (default), or its cost-identical
    emulation for very large tensors (bit-exact same outputs and
    accounting; see :func:`repro.mpc.comparison.emulated_ge_const`).
    """
    ctx = x.ctx
    if x.kind != "fixed":
        raise ProtocolError("secure_compare_const expects a fixed-point tensor")
    with _op_scope(ctx, "compare_const", label):
        return _secure_compare_const_body(ctx, x, threshold, label=label)


def _secure_compare_const_body(ctx, x, threshold, *, label: str) -> SharedTensor:
    c_enc = int(ctx.encoder.encode(np.float64(threshold)))
    bundle = ctx.gen_comparison_bundle(x.shape, label=label)
    if bundle is not None:
        res = secure_ge_const(x.shares[0], x.shares[1], c_enc, bundle)
    else:
        # Resharing randomness is keyed by the op-stream label (not an
        # advancing counter) so checkpoint replay redraws identical
        # shares — truncation rounding is share-dependent, so replay
        # bit-identity needs stable shares, not just stable plaintexts.
        if ctx.config.fresh_triplets:
            seed_label = f"cmp-{ctx.comparisons_issued}"
        else:
            seed_label = f"cmp/{label}"
        res = emulated_ge_const(
            x.shares[0], x.shares[1], c_enc, ctx.seeds.generator(seed_label)
        )

    # Online cost: ~70 vectorised bit-ops per element on each server CPU,
    # plus the round traffic (one 8-byte opening + 62 bit rounds + B2A).
    n = int(np.prod(x.shape))
    start = _chain(ctx, _deps(*x.tasks))
    cpu_tasks = [
        ctx.server_cpu[i].run(
            ctx.config.cpu_spec.elementwise_seconds(70 * n, parallel=ctx.config.cpu_parallel),
            deps=_deps(x.tasks[i], *start),
            label=f"{label}:gmw",
        )
        for i in (0, 1)
    ]
    half = res.online_bytes // 2
    extra_latency = (res.rounds - 1) * ctx.config.server_link.latency_s
    net_tasks = []
    for src in (0, 1):
        t = ctx.server_channel.send(
            f"server{src}", f"server{1 - src}", half, deps=(cpu_tasks[src],), label=f"{label}:rounds"
        )
        # Size-only transcript record: the GMW bit rounds are costed in
        # aggregate, their per-round content is not materialized here.
        ctx.record_wire(
            f"server{src}", f"server{1 - src}", f"{label}:rounds", nbytes=half
        )
        t2 = ctx.online_clock.run(
            f"link.server{src}->server{1 - src}", extra_latency, deps=(t,), label=f"{label}:latency"
        )
        net_tasks.append(t2)
    tasks = tuple(
        ctx.online_clock.join([cpu_tasks[i], net_tasks[1 - i]]) for i in (0, 1)
    )
    _set_chain(ctx, tasks)
    return SharedTensor(
        ctx=ctx, shares=(res.share0, res.share1), kind="indicator", tasks=tasks
    )


_KIND_UNSET = object()


def activation(
    x: SharedTensor, *args, kind=_KIND_UNSET, label: str = "act"
) -> tuple[SharedTensor, SharedTensor]:
    """Secure activation; returns (output, derivative-mask).

    * ``relu`` — ``x * [x >= 0]``; mask is the indicator (Section 4.2
      notes ReLU is used for CNN/MLP);
    * ``piecewise`` — the paper's Eq. 9 (a hard sigmoid): 0 below -1/2,
      ``x + 1/2`` inside, 1 above 1/2; used where an upper-bounded
      activation is required (logistic regression).

    ``kind`` is keyword-only in the blessed form; passing it positionally
    still works but emits a :class:`DeprecationWarning`.
    """
    if args:
        if len(args) > 1 or kind is not _KIND_UNSET:
            raise TypeError("activation() takes one tensor plus keyword arguments")
        warn_deprecated(
            "ops.activation.positional-kind",
            "passing 'kind' positionally to repro.core.ops.activation is deprecated; "
            "use activation(x, kind=..., label=...)",
        )
        kind = args[0]
    elif kind is _KIND_UNSET:
        kind = "relu"
    ctx = x.ctx
    with _op_scope(ctx, "activation", label):
        return _activation_body(x, kind, label=label)


def _activation_body(x, kind, *, label: str):
    if kind == "relu":
        mask = secure_compare_const(x, 0.0, label=f"{label}:ge0")
        out = secure_elementwise_mul(x, mask, label=f"{label}:mul")
        return out, mask
    if kind == "piecewise":
        b1 = secure_compare_const(x, -0.5, label=f"{label}:ge-half")
        b2 = secure_compare_const(x, 0.5, label=f"{label}:ge+half")
        inside = b1 - b2  # indicator of the linear segment
        shifted = x.add_public(0.5)
        linear = secure_elementwise_mul(shifted, inside, label=f"{label}:mul")
        out = linear + b2.to_fixed()
        return out, inside
    raise ProtocolError(f"unknown activation kind {kind!r}")
