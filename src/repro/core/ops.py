"""Interactive secure operations with full offline/online cost accounting.

Each op follows the paper's phase structure:

* **offline** — the client generates the Beaver material for the op's
  stream (charged on the client clock; see
  :meth:`~repro.core.context.SecureContext.get_matrix_triplet`);
* **reconstruct** (online, CPU + network) — the servers form the masked
  differences ``E_i/F_i`` (Eq. 4), exchange them through the
  delta-compression layer (Section 4.4) and combine (Eq. 5);
* **GPU operation** (online) — the Eq. 8 product, scheduled on the GPU
  through pipeline 1 or on the CPU when the profiling-guided placement
  says the workload is too small to amortise PCIe (Section 4.2);
* **truncation** — the SecureML local rescale, on the CPU.

The functions here are protocol-agnostic entry points: shape/kind
validation plus telemetry, with the actual interactive protocol
dispatched to the context's :class:`~repro.protocols.ProtocolBackend`
(``beaver2pc`` reproduces the paper's 2PC path bit-identically; see
``repro.protocols`` for alternates such as 3-party replicated sharing).

All ops thread :class:`~repro.simgpu.clock.Task` dependencies through
:class:`~repro.core.tensor.SharedTensor.tasks`, which is how pipeline 2
(cross-layer overlap) is expressed; with ``double_pipeline`` off the
context serialises every op behind the previous one instead.
"""

from __future__ import annotations

from contextlib import contextmanager

from repro.core.tensor import SharedTensor
from repro.simgpu.clock import Task
from repro.util.deprecation import warn_deprecated
from repro.util.errors import ProtocolError, ShapeError

__all__ = [
    "secure_matmul",
    "secure_elementwise_mul",
    "secure_compare_const",
    "secure_softmax",
    "activation",
    "truncate",
]


def _deps(*tasks) -> tuple[Task, ...]:
    return tuple(t for t in tasks if t is not None)


def _backend_name(ctx) -> str:
    backend = getattr(ctx, "backend", None)
    return getattr(backend, "name", "beaver2pc")


@contextmanager
def _op_scope(ctx, op: str, label: str):
    """Span + per-op roll-up counters around one secure-op invocation.

    ``ops.online_seconds{op}`` attributes the op's *online makespan
    delta* — how far it pushed the online clock — so nested ops (an
    activation's compare + mul) each carry their own share.  The
    ``protocol.*`` counters carry the same roll-up labelled by the
    active protocol backend, so mixed-backend fleets stay attributable.
    """
    telemetry = getattr(ctx, "telemetry", None)
    if telemetry is None:
        yield
        return
    backend = _backend_name(ctx)
    start = ctx.online_clock.now()
    with telemetry.span(f"op.{label}", clock="online", op=op):
        yield
    delta = ctx.online_clock.now() - start
    telemetry.counter("ops.invocations", "secure-op call counts").inc(1, op=op)
    telemetry.counter("ops.online_seconds", "online makespan attributed per op").inc(
        delta, op=op
    )
    telemetry.counter(
        "protocol.invocations", "secure-op call counts per protocol backend"
    ).inc(1, backend=backend, op=op)
    telemetry.counter(
        "protocol.online_seconds", "online makespan per protocol backend"
    ).inc(delta, backend=backend, op=op)


def _chain(ctx, deps: tuple[Task, ...]) -> tuple[Task, ...]:
    """With double_pipeline off, serialise behind the last online op."""
    if ctx.config.double_pipeline:
        return deps
    last = getattr(ctx, "_chain_task", None)
    return _deps(*deps, last)


def _set_chain(ctx, tasks) -> None:
    if not ctx.config.double_pipeline:
        ctx._chain_task = ctx.online_clock.join(list(_deps(*tasks)))


def truncate(x: SharedTensor, *, label: str = "trunc") -> SharedTensor:
    """Rescale of a double-scale product (protocol-dependent)."""
    ctx = x.ctx
    with _op_scope(ctx, "truncate", label):
        return ctx.backend.truncate(ctx, x, label=label)


def secure_matmul(
    x: SharedTensor,
    y: SharedTensor,
    *,
    label: str = "matmul",
    truncate_result: bool = True,
) -> SharedTensor:
    """Secure matrix product ``x @ y`` (Eqs. 4-8 end to end)."""
    ctx = x.ctx
    if x.ndim != 2 or y.ndim != 2 or x.shape[1] != y.shape[0]:
        raise ShapeError(
            f"[{_backend_name(ctx)}:{label}] secure_matmul shapes incompatible: "
            f"{x.shape} x {y.shape}"
        )
    m, k = x.shape
    n = y.shape[1]
    both_fixed = x.kind == "fixed" and y.kind == "fixed"

    with _op_scope(ctx, "matmul", label):
        return ctx.backend.matmul(
            ctx, x, y, m, k, n, both_fixed, label=label, truncate_result=truncate_result
        )


def secure_elementwise_mul(
    x: SharedTensor, y: SharedTensor, *, label: str = "hadamard"
) -> SharedTensor:
    """Secure Hadamard product (the CNN's point-to-point multiplications)."""
    ctx = x.ctx
    if x.shape != y.shape:
        raise ShapeError(
            f"[{_backend_name(ctx)}:{label}] elementwise shapes differ: "
            f"{x.shape} vs {y.shape}"
        )
    with _op_scope(ctx, "elementwise_mul", label):
        return ctx.backend.elementwise_mul(ctx, x, y, label=label)


def secure_compare_const(
    x: SharedTensor, threshold: float, *, label: str = "cmp"
) -> SharedTensor:
    """Indicator tensor ``[x >= threshold]`` via secure comparison.

    Protocol selected by ``config.activation_protocol``: the
    dealer-assisted GMW protocol (default), or its cost-identical
    emulation for very large tensors (bit-exact same outputs and
    accounting; see :func:`repro.mpc.comparison.emulated_ge_const`).
    """
    ctx = x.ctx
    if x.kind != "fixed":
        raise ProtocolError(
            f"[{_backend_name(ctx)}:{label}] secure_compare_const expects a "
            "fixed-point tensor"
        )
    with _op_scope(ctx, "compare_const", label):
        return ctx.backend.compare_const(ctx, x, threshold, label=label)


def secure_softmax(x: SharedTensor, *, label: str = "softmax") -> SharedTensor:
    """Secure row-wise softmax (the attention workload's nonlinearity).

    Dispatched to the backend's ``softmax`` protocol — by default the
    generic composition in :mod:`repro.mpc.softmax` (tournament row max,
    clamp, exp-by-squaring, Newton normalization), which works on any
    registered substrate.  Rows must be fixed-point; the result is a
    fixed-point tensor of the same shape with entries in [0, 1] summing
    to 1 per row, within the documented tolerance
    (:func:`repro.mpc.softmax.softmax_error_bound`).
    """
    ctx = x.ctx
    if x.ndim != 2:
        raise ShapeError(
            f"[{_backend_name(ctx)}:{label}] secure_softmax expects a 2-D tensor, "
            f"got {x.shape}"
        )
    if x.kind != "fixed":
        raise ProtocolError(
            f"[{_backend_name(ctx)}:{label}] secure_softmax expects a fixed-point tensor"
        )
    with _op_scope(ctx, "softmax", label):
        return ctx.backend.softmax(ctx, x, label=label)


_KIND_UNSET = object()


def activation(
    x: SharedTensor, *args, kind=_KIND_UNSET, label: str = "act"
) -> tuple[SharedTensor, SharedTensor]:
    """Secure activation; returns (output, derivative-mask).

    * ``relu`` — ``x * [x >= 0]``; mask is the indicator (Section 4.2
      notes ReLU is used for CNN/MLP);
    * ``piecewise`` — the paper's Eq. 9 (a hard sigmoid): 0 below -1/2,
      ``x + 1/2`` inside, 1 above 1/2; used where an upper-bounded
      activation is required (logistic regression).

    ``kind`` is keyword-only in the blessed form; passing it positionally
    still works but emits a :class:`DeprecationWarning`.
    """
    if args:
        if len(args) > 1 or kind is not _KIND_UNSET:
            raise TypeError("activation() takes one tensor plus keyword arguments")
        warn_deprecated(
            "ops.activation.positional-kind",
            "passing 'kind' positionally to repro.core.ops.activation is deprecated; "
            "use activation(x, kind=..., label=...)",
        )
        kind = args[0]
    elif kind is _KIND_UNSET:
        kind = "relu"
    ctx = x.ctx
    with _op_scope(ctx, "activation", label):
        return _activation_body(x, kind, label=label)


def _activation_body(x, kind, *, label: str):
    if kind == "relu":
        mask = secure_compare_const(x, 0.0, label=f"{label}:ge0")
        out = secure_elementwise_mul(x, mask, label=f"{label}:mul")
        return out, mask
    if kind == "piecewise":
        b1 = secure_compare_const(x, -0.5, label=f"{label}:ge-half")
        b2 = secure_compare_const(x, 0.5, label=f"{label}:ge+half")
        inside = b1 - b2  # indicator of the linear segment
        shifted = x.add_public(0.5)
        linear = secure_elementwise_mul(shifted, inside, label=f"{label}:mul")
        out = linear + b2.to_fixed()
        return out, inside
    raise ProtocolError(f"unknown activation kind {kind!r}")
