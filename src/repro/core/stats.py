"""Secure descriptive statistics on shared data.

The paper's discussion (Section 7.7) points out the framework protects
any matrix-based computation; these helpers cover the statistics a
private-data pipeline needs before/around model training:

* :func:`secure_mean` — column means (linear: local share sums + one
  public scaling);
* :func:`secure_covariance` — the covariance matrix via one secure
  Gram product (``X^T X`` is a triplet multiplication) plus local
  centring — the secure analogue of ``np.cov``;
* :func:`secure_variance` — the covariance diagonal;
* :func:`secure_standardize` — centre columns and scale by *public*
  inverse standard deviations.  The scale factors derive from the
  variances, which the client (data owner) may decode; the
  standardised data itself never leaves share form.

Each function documents what is decoded (client-side) and what stays
shared, because that boundary is the security contract.
"""

from __future__ import annotations

import numpy as np

from repro.core import ops
from repro.core.tensor import SharedTensor
from repro.util.errors import ProtocolError, ShapeError


def secure_mean(x: SharedTensor) -> SharedTensor:
    """Column means (1, d) — fully local (sum + public 1/n scaling)."""
    if x.ndim != 2:
        raise ShapeError(f"secure_mean expects a 2-D tensor, got {x.shape}")
    n = x.shape[0]
    return x.sum_rows().mul_public(1.0 / n)


def secure_covariance(x: SharedTensor, *, label: str = "cov") -> SharedTensor:
    """Sample covariance (d, d), Bessel-corrected, fully on shares.

    cov = (X^T X - n * mean^T mean) / (n - 1): one secure Gram product
    for ``X^T X``, one for the mean outer product, local combination.
    """
    if x.ndim != 2:
        raise ShapeError(f"secure_covariance expects a 2-D tensor, got {x.shape}")
    n = x.shape[0]
    if n < 2:
        raise ProtocolError("covariance needs at least 2 samples")
    gram = ops.secure_matmul(x.T, x, label=f"{label}/gram")
    mean = secure_mean(x)
    outer = ops.secure_matmul(mean.T, mean, label=f"{label}/outer")
    return (gram - outer.mul_public(float(n))).mul_public(1.0 / (n - 1))


def secure_variance(x: SharedTensor, *, label: str = "var") -> SharedTensor:
    """Per-column sample variance (1, d) via elementwise products.

    Cheaper than the full covariance when only the diagonal is needed:
    one Hadamard triplet for ``x*x`` instead of a (d, d) Gram product.
    """
    if x.ndim != 2:
        raise ShapeError(f"secure_variance expects a 2-D tensor, got {x.shape}")
    n = x.shape[0]
    if n < 2:
        raise ProtocolError("variance needs at least 2 samples")
    squares = ops.secure_elementwise_mul(x, x, label=f"{label}/sq")
    sum_sq = squares.sum_rows()
    mean = secure_mean(x)
    mean_sq = ops.secure_elementwise_mul(mean, mean, label=f"{label}/meansq")
    return (sum_sq - mean_sq.mul_public(float(n))).mul_public(1.0 / (n - 1))


def secure_standardize(
    x: SharedTensor, *, label: str = "std", eps: float = 1e-3
) -> tuple[SharedTensor, np.ndarray]:
    """Centre and unit-scale columns; returns (standardised, stds).

    The per-column standard deviations are **decoded by the client** (it
    owns the data and needs them to invert the transform later); the
    centred data is then scaled by the public factors locally.  Returns
    the shared standardised tensor and the public std vector.
    """
    n = x.shape[0]
    mean = secure_mean(x)
    variances = secure_variance(x, label=f"{label}/var")
    stds = np.sqrt(np.maximum(variances.decode(), eps**2)).ravel()
    centred = x - mean.broadcast_rows(n)
    # per-column public scaling: one mul_public per column group; done
    # with a single elementwise multiply by the broadcast inverse stds
    inv = (1.0 / stds).reshape(1, -1)
    inv_enc = x.ctx.encoder.encode(np.broadcast_to(inv, x.shape))
    from repro.fixedpoint.ring import ring_mul

    shares = x.ctx.backend.truncate_values(
        tuple(ring_mul(s, inv_enc) for s in centred.shares), x.ctx.encoder.frac_bits
    )
    return (
        SharedTensor(ctx=x.ctx, shares=shares, kind="fixed", tasks=centred.tasks),
        stds,
    )
