"""SharedTensor: a secret-shared matrix with scale tracking.

A :class:`SharedTensor` bundles the two servers' additive shares of one
logical value, plus:

* ``kind`` — ``"fixed"`` for fixed-point encodings (scale
  ``2^frac_bits``) or ``"indicator"`` for integer 0/1 values produced by
  secure comparisons.  The distinction matters for multiplication:
  fixed x fixed products carry double scale and must be truncated,
  fixed x indicator products keep single scale and must *not* be;
* ``tasks`` — the simulated-clock tasks after which each server's share
  is available, threading the dependency graph (pipeline 2) through the
  data itself.

Linear operations (add, subtract, negate, transpose, reshape, public
scaling) act share-wise and are implemented here; interactive operations
live in :mod:`repro.core.ops`.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field, replace
from typing import Literal, Optional

import numpy as np

from repro.fixedpoint.ring import RING_DTYPE, ring_add, ring_mul, ring_neg, ring_sub
from repro.fixedpoint.truncation import truncate_share
from repro.simgpu.clock import Task
from repro.util.errors import ProtocolError, ShapeError

TensorKind = Literal["fixed", "indicator"]

# Monotonic value identity.  The mask-reuse cache keys entries by this
# uid; a uid is never recycled, so a tensor that replaced another (e.g.
# an updated weight) can never be mistaken for the old value.  Local
# views that keep the underlying values (transpose, reshape) keep the
# uid; operations that change values must issue a fresh one.
_TENSOR_UIDS = itertools.count(1)


def _next_tensor_uid() -> int:
    return next(_TENSOR_UIDS)


@dataclass
class SharedTensor:
    """One logical value, additively shared between the two servers."""

    ctx: "SecureContext"  # noqa: F821 - circular typing only
    shares: tuple[np.ndarray, np.ndarray]
    kind: TensorKind = "fixed"
    tasks: tuple[Optional[Task], Optional[Task]] = (None, None)
    static: bool = False
    uid: int = field(default_factory=_next_tensor_uid, compare=False)

    def __post_init__(self):
        s0, s1 = self.shares
        if s0.shape != s1.shape:
            raise ShapeError(f"share shapes differ: {s0.shape} vs {s1.shape}")
        if s0.dtype != RING_DTYPE or s1.dtype != RING_DTYPE:
            raise ProtocolError("SharedTensor shares must be uint64 ring elements")

    # ------------------------------------------------------------ construction

    @classmethod
    def from_plain(
        cls, ctx, plain: np.ndarray, *, label: str = "input", kind: TensorKind = "fixed"
    ) -> "SharedTensor":
        """Client-side: encode, share, upload (charged to the offline phase)."""
        if kind == "fixed":
            pair = ctx.share_plain(np.asarray(plain, dtype=np.float64), label=label)
        else:
            pair = ctx.share_ring(ctx.encoder.encode_int(np.asarray(plain)), label=label)
        return cls(ctx=ctx, shares=(pair.share0, pair.share1), kind=kind)

    # ------------------------------------------------------------- inspection

    @property
    def shape(self) -> tuple[int, ...]:
        return self.shares[0].shape

    @property
    def ndim(self) -> int:
        return self.shares[0].ndim

    @property
    def nbytes(self) -> int:
        return self.shares[0].nbytes

    def share(self, party_id: int) -> np.ndarray:
        if party_id not in (0, 1):
            raise ProtocolError(f"party_id must be 0 or 1, got {party_id}")
        return self.shares[party_id]

    def mark_static(self) -> "SharedTensor":
        """Declare the value static across op invocations (layer weights).

        Static operands are eligible for the context's mask-reuse cache
        under ``config.static_mask_reuse``: their exchanged masked
        difference and device-staged buffers persist between secure
        matmuls until the value changes (new uid).  Returns ``self``.
        """
        self.static = True
        return self

    def decode(self) -> np.ndarray:
        """Client-side reconstruction to floats (monitoring / final output)."""
        combined = ring_add(self.shares[0], self.shares[1])
        if self.kind == "indicator":
            return combined.view(np.int64).astype(np.float64)
        return self.ctx.encoder.decode(combined)

    # ------------------------------------------------ local linear operations

    def _binary_local(self, other: "SharedTensor", op, op_label: str) -> "SharedTensor":
        if not isinstance(other, SharedTensor):
            raise ProtocolError(f"{op_label} expects a SharedTensor operand")
        if self.shape != other.shape:
            raise ShapeError(f"{op_label} shape mismatch: {self.shape} vs {other.shape}")
        if self.kind != other.kind:
            raise ProtocolError(
                f"{op_label} on mismatched kinds {self.kind} vs {other.kind}; "
                f"lift the indicator with to_fixed() first"
            )
        new_shares = []
        new_tasks = []
        for i in (0, 1):
            result, task = self.ctx.server_cpu[i].elementwise(
                op,
                [self.shares[i], other.shares[i]],
                deps=tuple(t for t in (self.tasks[i], other.tasks[i]) if t is not None),
                label=op_label,
            )
            new_shares.append(result)
            new_tasks.append(task)
        return SharedTensor(
            ctx=self.ctx, shares=tuple(new_shares), kind=self.kind, tasks=tuple(new_tasks)
        )

    def __add__(self, other: "SharedTensor") -> "SharedTensor":
        return self._binary_local(other, ring_add, "add")

    def __sub__(self, other: "SharedTensor") -> "SharedTensor":
        return self._binary_local(other, ring_sub, "sub")

    def __neg__(self) -> "SharedTensor":
        return SharedTensor(
            ctx=self.ctx,
            shares=(ring_neg(self.shares[0]), ring_neg(self.shares[1])),
            kind=self.kind,
            tasks=self.tasks,
        )

    def add_public(self, value: np.ndarray | float) -> "SharedTensor":
        """Add a public constant: server 0 adds, server 1 passes through."""
        encoded = (
            self.ctx.encoder.encode(np.asarray(value, dtype=np.float64))
            if self.kind == "fixed"
            else self.ctx.encoder.encode_int(np.asarray(value))
        )
        s0 = ring_add(self.shares[0], np.broadcast_to(encoded, self.shape).astype(RING_DTYPE))
        return SharedTensor(ctx=self.ctx, shares=(s0, self.shares[1]), kind=self.kind, tasks=self.tasks)

    def mul_public_int(self, value: int) -> "SharedTensor":
        """Multiply by a public *integer* (exact, no rescaling needed)."""
        v = np.uint64(int(value) % 2**64)
        return SharedTensor(
            ctx=self.ctx,
            shares=(ring_mul(self.shares[0], v), ring_mul(self.shares[1], v)),
            kind=self.kind,
            tasks=self.tasks,
        )

    def mul_public(self, value: float) -> "SharedTensor":
        """Multiply by a public real: encode, multiply, locally truncate.

        The public scalar is encoded at *double* fractional precision
        (up to 26 bits) and truncated accordingly, so scalars like 1/n
        that are not exactly representable at the tensor's precision do
        not introduce a systematic relative bias (important for means,
        variances, and learning rates).  The result is within ~1 ulp of
        the true scaled value w.h.p. (SecureML local truncation).
        """
        if self.kind != "fixed":
            raise ProtocolError("mul_public on an indicator; use mul_public_int")
        scalar_bits = min(26, 2 * self.ctx.encoder.frac_bits)
        encoded = int(np.rint(np.float64(value) * 2**scalar_bits)) % 2**64
        shares = tuple(
            truncate_share(ring_mul(self.shares[i], np.uint64(encoded)), scalar_bits, i)
            for i in (0, 1)
        )
        return SharedTensor(ctx=self.ctx, shares=shares, kind="fixed", tasks=self.tasks)

    def to_fixed(self) -> "SharedTensor":
        """Lift an indicator (0/1 integer) to fixed-point scale."""
        if self.kind == "fixed":
            return self
        scale = np.uint64(self.ctx.encoder.scale)
        return SharedTensor(
            ctx=self.ctx,
            shares=(ring_mul(self.shares[0], scale), ring_mul(self.shares[1], scale)),
            kind="fixed",
            tasks=self.tasks,
        )

    # ----------------------------------------------------- shape manipulation

    def transpose(self) -> "SharedTensor":
        """Share-wise transpose (local, data movement only)."""
        return replace(self, shares=(self.shares[0].T, self.shares[1].T))

    @property
    def T(self) -> "SharedTensor":
        return self.transpose()

    def reshape(self, *shape) -> "SharedTensor":
        if len(shape) == 1 and isinstance(shape[0], (tuple, list)):
            shape = tuple(shape[0])
        return replace(
            self, shares=(self.shares[0].reshape(shape), self.shares[1].reshape(shape))
        )

    def row_slice(self, lo: int, hi: int, *, pad_to: int | None = None) -> "SharedTensor":
        """Rows [lo, hi) of both shares (local; server-side batch slicing).

        Used by the trainer: the dataset is shared once in the offline
        phase and the servers slice batches out of their shares locally.

        ``pad_to`` zero-pads the slice to a fixed row count: both
        servers append the same all-zero rows, which is a valid additive
        sharing of 0 — so a ragged tail batch keeps the full batch shape
        (pooled triplets and label-cached offline material still match)
        and the pad rows decode to 0 for the caller to trim.
        """
        s0 = np.ascontiguousarray(self.shares[0][lo:hi])
        s1 = np.ascontiguousarray(self.shares[1][lo:hi])
        if pad_to is not None and pad_to > s0.shape[0]:
            fill = np.zeros((pad_to - s0.shape[0], *s0.shape[1:]), dtype=RING_DTYPE)
            s0 = np.concatenate([s0, fill], axis=0)
            s1 = np.concatenate([s1, fill], axis=0)
        return replace(
            self,
            shares=(s0, s1),
            static=False,
            uid=_next_tensor_uid(),
        )

    def sum_rows(self) -> "SharedTensor":
        """Column sums (1, n) — linear, used for bias gradients."""
        from repro.fixedpoint.ring import ring_sum

        return replace(
            self,
            shares=(
                ring_sum(self.shares[0], axis=0).reshape(1, -1),
                ring_sum(self.shares[1], axis=0).reshape(1, -1),
            ),
            static=False,
            uid=_next_tensor_uid(),
        )

    def broadcast_rows(self, n_rows: int) -> "SharedTensor":
        """Tile a (1, n) tensor to (n_rows, n) — for bias addition."""
        if self.shares[0].shape[0] != 1:
            raise ShapeError(f"broadcast_rows needs a (1, n) tensor, got {self.shape}")
        return replace(
            self,
            shares=(
                np.ascontiguousarray(np.broadcast_to(self.shares[0], (n_rows, self.shape[1]))),
                np.ascontiguousarray(np.broadcast_to(self.shares[1], (n_rows, self.shape[1]))),
            ),
            static=False,
            uid=_next_tensor_uid(),
        )
