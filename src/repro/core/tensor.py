"""SharedTensor: a secret-shared matrix with scale tracking.

A :class:`SharedTensor` bundles the servers' additive shares of one
logical value — one share per party of the active protocol backend (two
for ``beaver2pc``, three for ``rep3``) — plus:

* ``kind`` — ``"fixed"`` for fixed-point encodings (scale
  ``2^frac_bits``) or ``"indicator"`` for integer 0/1 values produced by
  secure comparisons.  The distinction matters for multiplication:
  fixed x fixed products carry double scale and must be truncated,
  fixed x indicator products keep single scale and must *not* be;
* ``tasks`` — the simulated-clock tasks after which each share is
  available, threading the dependency graph (pipeline 2) through the
  data itself.

Linear operations (add, subtract, negate, transpose, reshape, public
scaling) act share-wise and are implemented here; interactive operations
live in :mod:`repro.core.ops`.
"""

from __future__ import annotations

import functools
import itertools
from dataclasses import dataclass, field, replace
from typing import Literal, Optional

import numpy as np

from repro.fixedpoint.ring import RING_DTYPE, ring_add, ring_mul, ring_neg, ring_sub
from repro.simgpu.clock import Task
from repro.util.errors import ProtocolError, ShapeError

TensorKind = Literal["fixed", "indicator"]

# Monotonic value identity.  The mask-reuse cache keys entries by this
# uid; a uid is never recycled, so a tensor that replaced another (e.g.
# an updated weight) can never be mistaken for the old value.  Local
# views that keep the underlying values (transpose, reshape) keep the
# uid; operations that change values must issue a fresh one.
_TENSOR_UIDS = itertools.count(1)


def _next_tensor_uid() -> int:
    return next(_TENSOR_UIDS)


@dataclass
class SharedTensor:
    """One logical value, additively shared between the servers."""

    ctx: "SecureContext"  # noqa: F821 - circular typing only
    shares: tuple[np.ndarray, ...]
    kind: TensorKind = "fixed"
    tasks: tuple[Optional[Task], ...] = (None, None)
    static: bool = False
    uid: int = field(default_factory=_next_tensor_uid, compare=False)

    def __post_init__(self):
        first = self.shares[0]
        for s in self.shares[1:]:
            if s.shape != first.shape:
                raise ShapeError(f"share shapes differ: {first.shape} vs {s.shape}")
        if any(s.dtype != RING_DTYPE for s in self.shares):
            raise ProtocolError("SharedTensor shares must be uint64 ring elements")
        if len(self.tasks) != len(self.shares):
            self.tasks = tuple(self.tasks) + (None,) * (len(self.shares) - len(self.tasks))

    # ------------------------------------------------------------ construction

    @classmethod
    def from_plain(
        cls, ctx, plain: np.ndarray, *, label: str = "input", kind: TensorKind = "fixed"
    ) -> "SharedTensor":
        """Client-side: encode, share, upload (charged to the offline phase)."""
        if kind == "fixed":
            pair = ctx.share_plain(np.asarray(plain, dtype=np.float64), label=label)
        else:
            pair = ctx.share_ring(ctx.encoder.encode_int(np.asarray(plain)), label=label)
        return cls(ctx=ctx, shares=tuple(pair[i] for i in range(ctx.n_parties)), kind=kind)

    # ------------------------------------------------------------- inspection

    @property
    def n_parties(self) -> int:
        return len(self.shares)

    @property
    def shape(self) -> tuple[int, ...]:
        return self.shares[0].shape

    @property
    def ndim(self) -> int:
        return self.shares[0].ndim

    @property
    def nbytes(self) -> int:
        return self.shares[0].nbytes

    def share(self, party_id: int) -> np.ndarray:
        if not 0 <= party_id < len(self.shares):
            raise ProtocolError(
                f"party_id must be in [0, {len(self.shares)}), got {party_id}"
            )
        return self.shares[party_id]

    def mark_static(self) -> "SharedTensor":
        """Declare the value static across op invocations (layer weights).

        Static operands are eligible for the context's mask-reuse cache
        under ``config.static_mask_reuse``: their exchanged masked
        difference and device-staged buffers persist between secure
        matmuls until the value changes (new uid).  Returns ``self``.
        """
        self.static = True
        return self

    def decode(self) -> np.ndarray:
        """Client-side reconstruction to floats (monitoring / final output)."""
        combined = functools.reduce(ring_add, self.shares)
        if self.kind == "indicator":
            return combined.view(np.int64).astype(np.float64)
        return self.ctx.encoder.decode(combined)

    # ------------------------------------------------ local linear operations

    def _binary_local(self, other: "SharedTensor", op, op_label: str) -> "SharedTensor":
        if not isinstance(other, SharedTensor):
            raise ProtocolError(f"{op_label} expects a SharedTensor operand")
        if self.shape != other.shape:
            raise ShapeError(f"{op_label} shape mismatch: {self.shape} vs {other.shape}")
        if self.kind != other.kind:
            raise ProtocolError(
                f"{op_label} on mismatched kinds {self.kind} vs {other.kind}; "
                f"lift the indicator with to_fixed() first"
            )
        new_shares = []
        new_tasks = []
        for i in range(len(self.shares)):
            result, task = self.ctx.server_cpu[i].elementwise(
                op,
                [self.shares[i], other.shares[i]],
                deps=tuple(t for t in (self.tasks[i], other.tasks[i]) if t is not None),
                label=op_label,
            )
            new_shares.append(result)
            new_tasks.append(task)
        return SharedTensor(
            ctx=self.ctx, shares=tuple(new_shares), kind=self.kind, tasks=tuple(new_tasks)
        )

    def __add__(self, other: "SharedTensor") -> "SharedTensor":
        return self._binary_local(other, ring_add, "add")

    def __sub__(self, other: "SharedTensor") -> "SharedTensor":
        return self._binary_local(other, ring_sub, "sub")

    def __neg__(self) -> "SharedTensor":
        return SharedTensor(
            ctx=self.ctx,
            shares=tuple(ring_neg(s) for s in self.shares),
            kind=self.kind,
            tasks=self.tasks,
        )

    def add_public(self, value: np.ndarray | float) -> "SharedTensor":
        """Add a public constant: server 0 adds, the rest pass through."""
        encoded = (
            self.ctx.encoder.encode(np.asarray(value, dtype=np.float64))
            if self.kind == "fixed"
            else self.ctx.encoder.encode_int(np.asarray(value))
        )
        s0 = ring_add(self.shares[0], np.broadcast_to(encoded, self.shape).astype(RING_DTYPE))
        return SharedTensor(
            ctx=self.ctx, shares=(s0, *self.shares[1:]), kind=self.kind, tasks=self.tasks
        )

    def mul_public_int(self, value: int) -> "SharedTensor":
        """Multiply by a public *integer* (exact, no rescaling needed)."""
        v = np.uint64(int(value) % 2**64)
        return SharedTensor(
            ctx=self.ctx,
            shares=tuple(ring_mul(s, v) for s in self.shares),
            kind=self.kind,
            tasks=self.tasks,
        )

    def mul_public(self, value: float) -> "SharedTensor":
        """Multiply by a public real: encode, multiply, locally truncate.

        The public scalar is encoded at *double* fractional precision
        (up to 26 bits) and truncated accordingly, so scalars like 1/n
        that are not exactly representable at the tensor's precision do
        not introduce a systematic relative bias (important for means,
        variances, and learning rates).  The result is within ~1 ulp of
        the true scaled value w.h.p. (SecureML local truncation; the
        rescale itself is the backend's share-local truncation).
        """
        if self.kind != "fixed":
            raise ProtocolError("mul_public on an indicator; use mul_public_int")
        scalar_bits = min(26, 2 * self.ctx.encoder.frac_bits)
        encoded = int(np.rint(np.float64(value) * 2**scalar_bits)) % 2**64
        shares = self.ctx.backend.truncate_values(
            tuple(ring_mul(s, np.uint64(encoded)) for s in self.shares), scalar_bits
        )
        return SharedTensor(ctx=self.ctx, shares=tuple(shares), kind="fixed", tasks=self.tasks)

    def to_fixed(self) -> "SharedTensor":
        """Lift an indicator (0/1 integer) to fixed-point scale."""
        if self.kind == "fixed":
            return self
        scale = np.uint64(self.ctx.encoder.scale)
        return SharedTensor(
            ctx=self.ctx,
            shares=tuple(ring_mul(s, scale) for s in self.shares),
            kind="fixed",
            tasks=self.tasks,
        )

    # ----------------------------------------------------- shape manipulation

    def transpose(self) -> "SharedTensor":
        """Share-wise transpose (local, data movement only)."""
        return replace(self, shares=tuple(s.T for s in self.shares))

    @property
    def T(self) -> "SharedTensor":
        return self.transpose()

    def reshape(self, *shape) -> "SharedTensor":
        if len(shape) == 1 and isinstance(shape[0], (tuple, list)):
            shape = tuple(shape[0])
        return replace(self, shares=tuple(s.reshape(shape) for s in self.shares))

    def row_slice(self, lo: int, hi: int, *, pad_to: int | None = None) -> "SharedTensor":
        """Rows [lo, hi) of every share (local; server-side batch slicing).

        Used by the trainer: the dataset is shared once in the offline
        phase and the servers slice batches out of their shares locally.

        ``pad_to`` zero-pads the slice to a fixed row count: every
        server appends the same all-zero rows, which is a valid additive
        sharing of 0 — so a ragged tail batch keeps the full batch shape
        (pooled triplets and label-cached offline material still match)
        and the pad rows decode to 0 for the caller to trim.
        """
        parts = [np.ascontiguousarray(s[lo:hi]) for s in self.shares]
        if pad_to is not None and pad_to > parts[0].shape[0]:
            fill = np.zeros((pad_to - parts[0].shape[0], *parts[0].shape[1:]), dtype=RING_DTYPE)
            parts = [np.concatenate([p, fill], axis=0) for p in parts]
        return replace(
            self,
            shares=tuple(parts),
            static=False,
            uid=_next_tensor_uid(),
        )

    def sum_rows(self) -> "SharedTensor":
        """Column sums (1, n) — linear, used for bias gradients."""
        from repro.fixedpoint.ring import ring_sum

        return replace(
            self,
            shares=tuple(ring_sum(s, axis=0).reshape(1, -1) for s in self.shares),
            static=False,
            uid=_next_tensor_uid(),
        )

    def broadcast_rows(self, n_rows: int) -> "SharedTensor":
        """Tile a (1, n) tensor to (n_rows, n) — for bias addition."""
        if self.shares[0].shape[0] != 1:
            raise ShapeError(f"broadcast_rows needs a (1, n) tensor, got {self.shape}")
        return replace(
            self,
            shares=tuple(
                np.ascontiguousarray(np.broadcast_to(s, (n_rows, self.shape[1])))
                for s in self.shares
            ),
            static=False,
            uid=_next_tensor_uid(),
        )
