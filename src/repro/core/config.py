"""Framework configuration.

One dataclass gathers every switch the paper evaluates, so each
experiment is "build a config, run the trainer":

* Fig. 10-13 baselines vs ParSecureML — :meth:`FrameworkConfig.parsecureml`
  vs the SecureML-mode config in :mod:`repro.baselines.secureml`;
* Fig. 14 — ``cpu_parallel`` on/off;
* Fig. 15 — ``tensor_core`` on/off;
* Fig. 16 — ``compression`` on/off;
* pipeline ablations — ``pipeline1`` / ``double_pipeline`` on/off;
* placement ablation — ``placement_mode``.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Literal

from repro.comm.channel import INFINIBAND_100G, LinkSpec
from repro.faults.plan import FaultPlan, RetryPolicy
from repro.simgpu.cost import CPUSpec, DeviceSpec, V100_SPEC, XEON_E5_2670V3_SPEC
from repro.util.errors import ConfigError


@dataclass(frozen=True)
class FrameworkConfig:
    """All knobs of the secure training/inference stack."""

    # MPC substrate (repro.protocols registry name).  "beaver2pc" is the
    # paper's 2-party Beaver-triplet protocol; "rep3" is dealer-free
    # 3-party replicated sharing.  Validated lazily by
    # repro.protocols.get_backend so third-party registrations work.
    backend: str = "beaver2pc"

    # numeric representation
    frac_bits: int = 13

    # GPU usage
    use_gpu: bool = True
    tensor_core: bool = True
    placement_mode: Literal["adaptive", "cpu_always", "gpu_always"] = "adaptive"
    n_streams: int = 2

    # pipelines (paper Section 4.3)
    pipeline1: bool = True  # PCIe/kernel overlap inside the Eq. 8 GEMM
    double_pipeline: bool = True  # cross-layer reconstruct/GPU-op overlap

    # inter-server communication (Section 4.4)
    compression: bool = True
    compression_threshold: float = 0.75

    # Wire framing (repro.comm.wire).  wire_frames charges each
    # inter-server message at its exact framed-codec size (fixed header
    # + raw buffer body, tallied in comm.frame_overhead_bytes) instead
    # of the raw-array estimate.  coalesce_rounds additionally packs
    # same-round messages per directed link — the Eq. 5 E/F pair —
    # into one framed message (comm.coalesced_messages), halving
    # per-message latency charges on the dominant exchange; it implies
    # framed accounting on the coalesced path.  Both knobs are
    # cost-only: protocol values never change (the "wire"/"coalesced"
    # conformance axes pin predictions bit-identical), and both default
    # off so the committed reference transcripts stay byte-for-byte.
    wire_frames: bool = False
    coalesce_rounds: bool = False

    # Beaver-mask lifetime.  The paper's delta compression (Eqs. 10-12)
    # requires the masks U_i/V_i of a given operand stream to be *reused*
    # across iterations (E_{j+1} = E_j + Delta only holds for fixed U) —
    # so, following the paper, each op stream gets one triplet generated
    # at setup and reused.  Set True to regenerate per use (single-use
    # triplets, stronger privacy, compression never fires).
    fresh_triplets: bool = False

    # Batched offline provisioning.  pool_size > 0 banks pre-generated
    # triplets per op-stream shape, refilled in fused dealer batches of
    # at most pool_size (one stacked ring GEMM + one vectorised mask
    # draw + one upload per refill) — the --pool-size bench knob.  0
    # disables the pool: every triplet is generated synchronously at
    # first use, the historical behaviour.
    pool_size: int = 0

    # Static-operand mask reuse.  When on, operands marked static (layer
    # weights) keep their exchanged masked difference F cached between
    # secure matmuls, skipping both the combine and the inter-server
    # transmission, and triplet Z shares stay staged on the server GPUs.
    # Pure cost-level optimisation: the online values are unchanged.
    # Ignored under fresh_triplets (masks must not persist there).
    static_mask_reuse: bool = False

    # CPU optimisations (Section 5.1).  cpu_parallel governs the servers'
    # online helpers; client_parallel governs the client's encrypt path.
    # The client code is infrastructure shared by both evaluated systems
    # (the SecureML baseline is the paper authors' reimplementation on
    # the same cluster), so the SecureML preset keeps client_parallel on;
    # the Fig. 14 ablation turns both off.
    cpu_parallel: bool = True
    client_parallel: bool = True

    # activation protocol: dealer-assisted comparison (default), the
    # cost-identical emulation for large tensors, or garbled circuits
    activation_protocol: Literal["dealer", "emulated", "gc"] = "dealer"

    # hardware
    gpu_spec: DeviceSpec = V100_SPEC
    cpu_spec: CPUSpec = XEON_E5_2670V3_SPEC
    server_link: LinkSpec = INFINIBAND_100G
    uplink: LinkSpec = INFINIBAND_100G

    # fault tolerance (repro.faults): a plan makes the inter-server link
    # adversarial — the context wires a ResilientChannel + FaultInjector,
    # and the drivers checkpoint/retry per retry_policy.  None = the
    # paper's perfect fabric.
    fault_plan: FaultPlan | None = None
    retry_policy: RetryPolicy = field(default_factory=RetryPolicy)

    # Task scheduling on the simulated clocks.  "lockstep" places every
    # task at submission in program order (the historical model);
    # "dataflow" defers placement to the event-driven ready-queue
    # scheduler (repro.runtime.dataflow), which fires tasks as their
    # operands resolve and extracts inter-layer / inter-batch /
    # offline-under-online overlap automatically.  Cost-only: share
    # values, RNG streams and wire contents are bit-identical either
    # way (the "dataflow" conformance axis pins it); only task start
    # times — and therefore makespans, never upward — may differ.
    runtime: Literal["lockstep", "dataflow"] = "lockstep"

    # reproducibility
    seed: int = 0

    # tracing (long benchmark runs turn this off to save memory)
    trace: bool = False

    def __post_init__(self):
        if not 1 <= self.frac_bits <= 30:
            raise ConfigError(f"frac_bits out of range: {self.frac_bits}")
        if not 0.0 <= self.compression_threshold <= 1.0:
            raise ConfigError(
                f"compression_threshold out of range: {self.compression_threshold}"
            )
        if self.n_streams < 1:
            raise ConfigError(f"n_streams must be >= 1, got {self.n_streams}")
        if self.pool_size < 0:
            raise ConfigError(f"pool_size must be >= 0, got {self.pool_size}")
        if self.runtime not in ("lockstep", "dataflow"):
            raise ConfigError(
                f"runtime must be 'lockstep' or 'dataflow', got {self.runtime!r}"
            )

    # -- preset constructors ----------------------------------------------------

    @staticmethod
    def parsecureml(**overrides) -> "FrameworkConfig":
        """The full ParSecureML system (all paper optimisations on)."""
        return FrameworkConfig(**overrides)

    @staticmethod
    def secureml(**overrides) -> "FrameworkConfig":
        """SecureML mode: CPU-only two-party computation, no pipelines,
        no compression — the paper's baseline (it reimplements [10])."""
        base = dict(
            use_gpu=False,
            tensor_core=False,
            placement_mode="cpu_always",
            pipeline1=False,
            double_pipeline=False,
            compression=False,
            cpu_parallel=False,
        )
        base.update(overrides)
        return FrameworkConfig(**base)

    def but(self, **overrides) -> "FrameworkConfig":
        """A copy with some fields replaced (ablation helper)."""
        return replace(self, **overrides)
