"""Checkpointing secret-shared models.

In deployment, each server must persist *its own share* of the model —
never both — so a checkpoint here is a pair of per-server archives plus
a manifest.  ``save_model``/``load_model`` handle the split/merge and
verify structural consistency on load (shape, dtype, layer inventory),
so a mismatched or tampered pair fails loudly instead of decoding junk.

Format: one ``.npz`` per server (arrays keyed by parameter path) and a
shared JSON manifest with the layer inventory and the fixed-point
configuration, which must match the loading context's.
"""

from __future__ import annotations

import json
from pathlib import Path

import numpy as np

from repro.core.tensor import SharedTensor
from repro.util.errors import ConfigError, ProtocolError

MANIFEST_NAME = "manifest.json"


_PARAM_ATTRS = ("weight", "bias", "w_x", "w_h")


def _collect(obj, prefix: str, out: list, seen: set) -> None:
    """Collect SharedTensor parameters, recursing into nested layers."""
    if id(obj) in seen:
        return
    seen.add(id(obj))
    for attr in _PARAM_ATTRS:
        param = getattr(obj, attr, None)
        if isinstance(param, SharedTensor):
            out.append((f"{prefix}/{attr}", param))
    # composite layers (residual blocks, RNN cells) hold sub-layers as
    # attributes; recurse into anything layer-shaped
    for attr, value in vars(obj).items():
        if attr.startswith("_") or attr in _PARAM_ATTRS:
            continue
        if hasattr(value, "__dict__") and (hasattr(value, "forward") or hasattr(value, "step")):
            _collect(value, f"{prefix}/{attr}", out, seen)


def _named_parameters(model) -> list[tuple[str, SharedTensor]]:
    out: list[tuple[str, SharedTensor]] = []
    seen: set = set()
    for li, layer in enumerate(model.layers):
        name = getattr(layer, "name", f"layer{li}")
        _collect(layer, name, out, seen)
    return out


def save_model(model, directory: str | Path, *, extra: dict | None = None) -> Path:
    """Write the model's shares as server0.npz / server1.npz + manifest.

    ``extra`` is caller-owned JSON-serialisable metadata stored in the
    manifest and handed back by :func:`load_model` — the training driver
    records its batch cursor there so a restarted run knows where to
    resume.
    """
    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    params = _named_parameters(model)
    if not params:
        raise ConfigError("model exposes no SharedTensor parameters to checkpoint")
    for party in range(model.ctx.n_parties):
        arrays = {name: tensor.shares[party] for name, tensor in params}
        np.savez(directory / f"server{party}.npz", **arrays)
    manifest = {
        "format": "repro-shared-model-v1",
        "frac_bits": model.ctx.encoder.frac_bits,
        "n_parties": model.ctx.n_parties,
        "parameters": [
            {"name": name, "shape": list(tensor.shape), "kind": tensor.kind}
            for name, tensor in params
        ],
        "extra": dict(extra or {}),
    }
    (directory / MANIFEST_NAME).write_text(json.dumps(manifest, indent=2))
    return directory


def load_model(model, directory: str | Path) -> dict:
    """Load shares into an already-constructed model of matching shape.

    Returns the ``extra`` metadata the checkpoint was saved with (an
    empty dict for older checkpoints)."""
    directory = Path(directory)
    manifest_path = directory / MANIFEST_NAME
    if not manifest_path.exists():
        raise ConfigError(f"no checkpoint manifest at {manifest_path}")
    manifest = json.loads(manifest_path.read_text())
    if manifest.get("format") != "repro-shared-model-v1":
        raise ConfigError(f"unknown checkpoint format {manifest.get('format')!r}")
    if manifest["frac_bits"] != model.ctx.encoder.frac_bits:
        raise ProtocolError(
            f"checkpoint frac_bits {manifest['frac_bits']} != "
            f"context frac_bits {model.ctx.encoder.frac_bits}"
        )
    params = dict(_named_parameters(model))
    expected = {p["name"]: p for p in manifest["parameters"]}
    if set(params) != set(expected):
        missing = set(expected) - set(params)
        extra = set(params) - set(expected)
        raise ProtocolError(
            f"model/checkpoint inventory mismatch; missing={sorted(missing)}, "
            f"unexpected={sorted(extra)}"
        )
    n_parties = int(manifest.get("n_parties", 2))
    if n_parties != model.ctx.n_parties:
        raise ProtocolError(
            f"checkpoint holds {n_parties} share archives, "
            f"context expects {model.ctx.n_parties}"
        )
    archives = [np.load(directory / f"server{p}.npz") for p in range(n_parties)]
    for name, tensor in params.items():
        meta = expected[name]
        if list(tensor.shape) != meta["shape"]:
            raise ProtocolError(
                f"parameter {name!r}: model shape {tensor.shape} != "
                f"checkpoint shape {tuple(meta['shape'])}"
            )
        shares = []
        for party in range(n_parties):
            arr = archives[party][name]
            if list(arr.shape) != meta["shape"] or arr.dtype != np.uint64:
                raise ProtocolError(
                    f"checkpoint array {name!r} (server {party}) has "
                    f"shape {arr.shape}/{arr.dtype}, expected {meta['shape']}/uint64"
                )
            shares.append(arr)
        tensor.shares = tuple(shares)
        tensor.kind = meta["kind"]
    return dict(manifest.get("extra", {}))
