"""Secure neural-network layers over the ops layer.

Each layer implements ``forward`` and ``backward`` on
:class:`~repro.core.tensor.SharedTensor` values and keeps whatever it
needs for the backward pass.  The structure mirrors the paper's Fig. 6:
forward = reconstruct + GPU operation, backward = reconstruct + GPU
operation, per layer, with the dependency tasks carried inside the
tensors so the double pipeline can overlap steps across layers.

Weight initialisation happens client-side (the client owns the model
in the two-party setting) and is charged to the offline phase like any
other sharing.
"""

from __future__ import annotations

import numpy as np

from repro.core import ops
from repro.core.tensor import SharedTensor
from repro.mpc.pool import TripletRequest, hadamard_stream, matmul_stream
from repro.simgpu.kernels import col2im, conv_output_size, im2col
from repro.util.errors import ProtocolError, ShapeError


class SecureLayer:
    """Base class: parameter bookkeeping + the forward/backward contract."""

    def forward(self, x: SharedTensor, *, training: bool = True) -> SharedTensor:
        raise NotImplementedError

    def backward(self, delta: SharedTensor) -> SharedTensor:
        raise NotImplementedError

    def apply_gradients(self, lr: float) -> None:
        """Default: no parameters."""

    def parameters(self) -> list[SharedTensor]:
        return []

    def plan_streams(
        self, in_shape: tuple[int, ...], *, training: bool
    ) -> tuple[list[TripletRequest], tuple[int, ...]]:
        """(triplet demand of one step, output shape) for a given input.

        Drives the pool's batched offline provisioning: the model walks
        its layers' plans once to learn exactly which triplets one
        forward (+ backward when ``training``) will request.  The base
        layer demands nothing and passes the shape through.
        """
        return [], in_shape


class SecureDense(SecureLayer):
    """Fully connected layer ``Y = X W + b``."""

    def __init__(self, ctx, in_features: int, out_features: int, *, name: str = "dense"):
        self.ctx = ctx
        self.name = name
        self.in_features = in_features
        self.out_features = out_features
        rng = ctx.seeds.generator(f"init-{name}")
        scale = 1.0 / np.sqrt(in_features)
        self.weight = SharedTensor.from_plain(
            ctx, rng.uniform(-scale, scale, size=(in_features, out_features)), label=f"{name}/W"
        ).mark_static()
        self.bias = SharedTensor.from_plain(
            ctx, np.zeros((1, out_features)), label=f"{name}/b"
        )
        self._x: SharedTensor | None = None
        self._grad_w: SharedTensor | None = None
        self._grad_b: SharedTensor | None = None

    def forward(self, x: SharedTensor, *, training: bool = True) -> SharedTensor:
        if x.shape[1] != self.in_features:
            raise ShapeError(
                f"{self.name}: expected {self.in_features} input features, got {x.shape[1]}"
            )
        if training:
            self._x = x
        y = ops.secure_matmul(x, self.weight, label=f"{self.name}/fwd")
        return y + self.bias.broadcast_rows(y.shape[0])

    def backward(self, delta: SharedTensor) -> SharedTensor:
        if self._x is None:
            raise ProtocolError(f"{self.name}: backward before forward")
        batch = self._x.shape[0]
        grad_w = ops.secure_matmul(self._x.T, delta, label=f"{self.name}/dW")
        self._grad_w = grad_w.mul_public(1.0 / batch)
        self._grad_b = delta.sum_rows().mul_public(1.0 / batch)
        return ops.secure_matmul(delta, self.weight.T, label=f"{self.name}/dX")

    def apply_gradients(self, lr: float) -> None:
        if self._grad_w is None or self._grad_b is None:
            raise ProtocolError(f"{self.name}: apply_gradients before backward")
        self.weight = (self.weight - self._grad_w.mul_public(lr)).mark_static()
        self.bias = self.bias - self._grad_b.mul_public(lr)
        self._grad_w = self._grad_b = None

    def parameters(self) -> list[SharedTensor]:
        return [self.weight, self.bias]

    def plan_streams(
        self, in_shape: tuple[int, ...], *, training: bool
    ) -> tuple[list[TripletRequest], tuple[int, ...]]:
        b = in_shape[0]
        m, n = self.in_features, self.out_features
        reqs = [matmul_stream((b, m), (m, n))]  # fwd
        if training:
            reqs.append(matmul_stream((m, b), (b, n)))  # dW
            reqs.append(matmul_stream((b, n), (n, m)))  # dX
        return reqs, (b, n)


class SecureActivation(SecureLayer):
    """Non-linear layer (``relu`` or the paper's Eq. 9 ``piecewise``)."""

    def __init__(self, ctx, kind: str = "relu", *, name: str = "act"):
        if kind not in ("relu", "piecewise"):
            raise ProtocolError(f"unknown activation kind {kind!r}")
        self.ctx = ctx
        self.kind = kind
        self.name = name
        self._mask: SharedTensor | None = None

    def forward(self, x: SharedTensor, *, training: bool = True) -> SharedTensor:
        out, mask = ops.activation(x, kind=self.kind, label=self.name)
        if training:
            self._mask = mask
        return out

    def backward(self, delta: SharedTensor) -> SharedTensor:
        if self._mask is None:
            raise ProtocolError(f"{self.name}: backward before forward")
        # derivative is the 0/1 mask in both supported kinds, so the
        # chain rule is one fixed x indicator product (single scale).
        return ops.secure_elementwise_mul(delta, self._mask, label=f"{self.name}/bwd")

    def plan_streams(
        self, in_shape: tuple[int, ...], *, training: bool
    ) -> tuple[list[TripletRequest], tuple[int, ...]]:
        # Both kinds consume one elementwise triplet forward (mask
        # product) and one backward; the comparisons are not pooled.
        if len(in_shape) < 2:
            return [], in_shape
        reqs = [hadamard_stream(in_shape)]
        if training:
            reqs.append(hadamard_stream(in_shape))
        return reqs, in_shape


class SecureConv2D(SecureLayer):
    """VALID convolution via im2col + one triplet multiplication.

    Input layout ``(n, h, w, c)``; filters ``(kh*kw*c, out_channels)``.
    The lowering is linear, so each server applies it to its own share
    locally (charged as CPU data movement); the product is a standard
    secure GEMM, which is how ParSecureML protects convolutions.
    """

    def __init__(
        self,
        ctx,
        in_shape: tuple[int, int, int],
        out_channels: int,
        kernel: int = 5,
        *,
        stride: int = 1,
        name: str = "conv",
    ):
        self.ctx = ctx
        self.name = name
        self.in_shape = tuple(in_shape)  # (h, w, c)
        self.kernel = kernel
        self.stride = stride
        self.out_channels = out_channels
        h, w, c = self.in_shape
        self.out_h, self.out_w = conv_output_size(h, w, kernel, kernel, stride)
        rng = ctx.seeds.generator(f"init-{name}")
        fan_in = kernel * kernel * c
        self.weight = SharedTensor.from_plain(
            ctx,
            rng.uniform(-1.0, 1.0, size=(fan_in, out_channels)) / np.sqrt(fan_in),
            label=f"{name}/W",
        ).mark_static()
        self._cols: SharedTensor | None = None
        self._batch: int = 0

    def _lower(self, x: SharedTensor) -> SharedTensor:
        n = x.shape[0]
        h, w, c = self.in_shape
        cols = [
            im2col(s.reshape(n, h, w, c), self.kernel, self.kernel, self.stride)
            for s in x.shares
        ]
        tasks = []
        for i, col in enumerate(cols):
            tasks.append(
                self.ctx.server_cpu[i].run(
                    self.ctx.config.cpu_spec.elementwise_seconds(
                        x.nbytes + col.nbytes, parallel=self.ctx.config.cpu_parallel
                    ),
                    deps=tuple(t for t in (x.tasks[i],) if t is not None),
                    label=f"{self.name}:im2col",
                )
            )
        return SharedTensor(ctx=self.ctx, shares=tuple(cols), kind=x.kind, tasks=tuple(tasks))

    def forward(self, x: SharedTensor, *, training: bool = True) -> SharedTensor:
        n = x.shape[0]
        expected = int(np.prod(self.in_shape))
        if int(np.prod(x.shape[1:])) != expected:
            raise ShapeError(
                f"{self.name}: input shape {x.shape} does not match {self.in_shape}"
            )
        cols = self._lower(x)
        if training:
            self._cols = cols
            self._batch = n
        y = ops.secure_matmul(cols, self.weight, label=f"{self.name}/fwd")
        # output as (n, out_h*out_w*out_channels) flattened feature map
        return y.reshape(n, self.out_h * self.out_w * self.out_channels)

    def backward(self, delta: SharedTensor) -> SharedTensor:
        if self._cols is None:
            raise ProtocolError(f"{self.name}: backward before forward")
        n = self._batch
        delta2 = delta.reshape(n * self.out_h * self.out_w, self.out_channels)
        grad_w = ops.secure_matmul(self._cols.T, delta2, label=f"{self.name}/dW")
        self._grad_w = grad_w.mul_public(1.0 / n)
        dcols = ops.secure_matmul(delta2, self.weight.T, label=f"{self.name}/dX")
        h, w, c = self.in_shape
        imgs_shape = (n, h, w, c)
        dx = tuple(
            col2im(s, imgs_shape, self.kernel, self.kernel, self.stride).reshape(n, -1)
            for s in dcols.shares
        )
        return SharedTensor(
            ctx=self.ctx,
            shares=dx,
            kind="fixed",
            tasks=dcols.tasks,
        )

    def apply_gradients(self, lr: float) -> None:
        if getattr(self, "_grad_w", None) is None:
            raise ProtocolError(f"{self.name}: apply_gradients before backward")
        self.weight = (self.weight - self._grad_w.mul_public(lr)).mark_static()
        self._grad_w = None

    def parameters(self) -> list[SharedTensor]:
        return [self.weight]

    def plan_streams(
        self, in_shape: tuple[int, ...], *, training: bool
    ) -> tuple[list[TripletRequest], tuple[int, ...]]:
        b = in_shape[0]
        rows = b * self.out_h * self.out_w  # im2col rows
        fan_in = self.kernel * self.kernel * self.in_shape[2]
        oc = self.out_channels
        reqs = [matmul_stream((rows, fan_in), (fan_in, oc))]  # fwd
        if training:
            reqs.append(matmul_stream((fan_in, rows), (rows, oc)))  # dW
            reqs.append(matmul_stream((rows, oc), (oc, fan_in)))  # dX
        return reqs, (b, self.out_h * self.out_w * oc)


class SecureAvgPool2D(SecureLayer):
    """Average pooling — linear, so it runs locally on shares.

    Pooling by summation then public division-by-window-size (one local
    ``mul_public`` with truncation) keeps everything non-interactive;
    max-pooling, by contrast, would need one secure comparison per
    window, which is why average pooling is the MPC-friendly choice.
    Input layout: flattened ``(n, h*w*c)`` with ``in_shape=(h, w, c)``.
    """

    def __init__(self, ctx, in_shape: tuple[int, int, int], window: int = 2, *, name: str = "pool"):
        h, w, c = in_shape
        if h % window or w % window:
            raise ShapeError(
                f"{name}: pooling window {window} must divide spatial dims {h}x{w}"
            )
        self.ctx = ctx
        self.name = name
        self.in_shape = tuple(in_shape)
        self.window = int(window)
        self.out_shape = (h // window, w // window, c)
        self._batch = 0

    def _pool_share(self, share: np.ndarray, n: int) -> np.ndarray:
        h, w, c = self.in_shape
        k = self.window
        img = share.reshape(n, h // k, k, w // k, k, c)
        with np.errstate(over="ignore"):
            return img.sum(axis=(2, 4), dtype=np.uint64).reshape(n, -1)

    def forward(self, x: SharedTensor, *, training: bool = True) -> SharedTensor:
        n = x.shape[0]
        if int(np.prod(x.shape[1:])) != int(np.prod(self.in_shape)):
            raise ShapeError(f"{self.name}: input {x.shape} does not match {self.in_shape}")
        self._batch = n
        summed = SharedTensor(
            ctx=self.ctx,
            shares=tuple(self._pool_share(s, n) for s in x.shares),
            kind=x.kind,
            tasks=x.tasks,
        )
        for i in range(len(x.shares)):
            self.ctx.server_cpu[i].run(
                self.ctx.config.cpu_spec.elementwise_seconds(
                    x.nbytes, parallel=self.ctx.config.cpu_parallel
                ),
                label=f"{self.name}:pool",
            )
        return summed.mul_public(1.0 / (self.window * self.window))

    def backward(self, delta: SharedTensor) -> SharedTensor:
        n = self._batch
        oh, ow, c = self.out_shape
        k = self.window
        scaled = delta.mul_public(1.0 / (k * k))
        shares = []
        for share in scaled.shares:
            img = share.reshape(n, oh, 1, ow, 1, c)
            full = np.broadcast_to(img, (n, oh, k, ow, k, c))
            shares.append(np.ascontiguousarray(full).reshape(n, -1))
        return SharedTensor(
            ctx=self.ctx, shares=tuple(shares), kind="fixed", tasks=scaled.tasks
        )

    def plan_streams(
        self, in_shape: tuple[int, ...], *, training: bool
    ) -> tuple[list[TripletRequest], tuple[int, ...]]:
        # Linear layer: no triplets, just shrink the feature map.
        return [], (in_shape[0], int(np.prod(self.out_shape)))


class SecureRNNCell(SecureLayer):
    """Elman cell ``h' = act(x W_x + h W_h + b)`` unrolled by the model."""

    def __init__(self, ctx, in_features: int, hidden: int, *, name: str = "rnncell"):
        self.ctx = ctx
        self.name = name
        self.in_features = in_features
        self.hidden = hidden
        rng = ctx.seeds.generator(f"init-{name}")
        sx = 1.0 / np.sqrt(in_features)
        sh = 1.0 / np.sqrt(hidden)
        self.w_x = SharedTensor.from_plain(
            ctx, rng.uniform(-sx, sx, size=(in_features, hidden)), label=f"{name}/Wx"
        ).mark_static()
        self.w_h = SharedTensor.from_plain(
            ctx, rng.uniform(-sh, sh, size=(hidden, hidden)), label=f"{name}/Wh"
        ).mark_static()
        self.bias = SharedTensor.from_plain(ctx, np.zeros((1, hidden)), label=f"{name}/b")
        self._tape: list[dict] = []

    def zero_state(self, batch: int) -> SharedTensor:
        shape = (batch, self.hidden)
        return SharedTensor(
            ctx=self.ctx,
            shares=tuple(
                np.zeros(shape, dtype=np.uint64) for _ in range(self.ctx.n_parties)
            ),
            kind="fixed",
        )

    def step(
        self, x_t: SharedTensor, h: SharedTensor, t: int, *, training: bool = True
    ) -> SharedTensor:
        pre = (
            ops.secure_matmul(x_t, self.w_x, label=f"{self.name}/x@Wx[t{t}]")
            + ops.secure_matmul(h, self.w_h, label=f"{self.name}/h@Wh[t{t}]")
            + self.bias.broadcast_rows(x_t.shape[0])
        )
        out, mask = ops.activation(pre, kind="relu", label=f"{self.name}/act[t{t}]")
        if training:
            self._tape.append({"x": x_t, "h_prev": h, "mask": mask})
        return out

    def backward_through_time(self, delta_last: SharedTensor) -> None:
        """Accumulate BPTT gradients; input gradients are not propagated
        further (inputs are data, not activations of earlier layers)."""
        grad_wx = grad_wh = grad_b = None
        delta = delta_last
        for t, frame in enumerate(reversed(self._tape)):
            delta = ops.secure_elementwise_mul(
                delta, frame["mask"], label=f"{self.name}/bptt-mask[{t}]"
            )
            g_wx = ops.secure_matmul(frame["x"].T, delta, label=f"{self.name}/dWx[{t}]")
            g_wh = ops.secure_matmul(frame["h_prev"].T, delta, label=f"{self.name}/dWh[{t}]")
            g_b = delta.sum_rows()
            grad_wx = g_wx if grad_wx is None else grad_wx + g_wx
            grad_wh = g_wh if grad_wh is None else grad_wh + g_wh
            grad_b = g_b if grad_b is None else grad_b + g_b
            if t + 1 < len(self._tape):
                delta = ops.secure_matmul(delta, self.w_h.T, label=f"{self.name}/dH[{t}]")
        batch = self._tape[0]["x"].shape[0] if self._tape else 1
        self._grad_wx = grad_wx.mul_public(1.0 / batch)
        self._grad_wh = grad_wh.mul_public(1.0 / batch)
        self._grad_b = grad_b.mul_public(1.0 / batch)
        self._tape = []

    def apply_gradients(self, lr: float) -> None:
        self.w_x = (self.w_x - self._grad_wx.mul_public(lr)).mark_static()
        self.w_h = (self.w_h - self._grad_wh.mul_public(lr)).mark_static()
        self.bias = self.bias - self._grad_b.mul_public(lr)

    def parameters(self) -> list[SharedTensor]:
        return [self.w_x, self.w_h, self.bias]
