"""Secure inference driver (forward pass only).

The paper studies inference as "essentially a sub-process of the
training protocol (the forward pass)" (Section 7.2, Fig. 13); this
driver runs exactly that — one offline dataset-sharing step, then
forward-only online batches — and produces the same phase accounting as
training so the two speedup figures are directly comparable.

Every batch goes through :func:`run_secure_batch`, which is also the
execution core of the serving layer (:mod:`repro.serve`): one fixed-shape
forward pass with the fault-retry loop around it.  Ragged tails are
padded to the batch shape and trimmed after decoding (mask-and-trim), so
pooled triplets and label-cached offline material always see one shape
and no input row is ever silently dropped.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.core.tensor import SharedTensor
from repro.faults.blame import PartyFailure
from repro.faults.recovery import respawn_party
from repro.telemetry import maybe_span
from repro.util.errors import ConfigError


@dataclass
class InferenceReport:
    """Cost accounting for one inference run.

    ``samples`` counts *served* input rows (equal to ``dataset_samples``
    unless ``max_batches`` truncated the run); ``padded_rows`` counts the
    zero rows appended to ragged tail batches (computed, then trimmed);
    ``batch_online_s`` holds only each batch's *successful* attempt, with
    the online time burned by failed attempts and party restarts
    reported separately as ``retry_online_s`` so chaos runs don't inflate
    ``marginal_online_s`` (and the Fig. 13 extrapolation built on it).
    """

    batches: int
    samples: int
    dataset_samples: int
    offline_s: float
    online_s: float
    sharing_offline_s: float
    setup_offline_s: float
    server_bytes: int
    predictions: np.ndarray
    batch_online_s: list = field(default_factory=list)
    retried_batches: int = 0  # failed requests recovered by retry
    retry_online_s: float = 0.0  # online time burned by failed attempts + restarts
    padded_rows: int = 0  # zero rows appended to ragged tail batches

    @property
    def total_s(self) -> float:
        return self.offline_s + self.online_s

    @property
    def marginal_online_s(self) -> float:
        tail = self.batch_online_s[1:] or self.batch_online_s
        return sum(tail) / len(tail) if tail else 0.0

    def extrapolate(self, paper_samples: int, paper_batches: int) -> tuple[float, float]:
        scale = paper_samples / max(self.dataset_samples, 1)
        return (
            self.sharing_offline_s * scale + self.setup_offline_s,
            self.marginal_online_s * paper_batches,
        )


@dataclass
class BatchOutcome:
    """One served batch: decoded outputs plus its online-time split."""

    outputs: np.ndarray  # decoded (batch_rows, n_out), padding not yet trimmed
    online_s: float  # the successful attempt's online makespan
    retry_online_s: float  # failed attempts + recovery (0.0 on a clean batch)
    retries: int


def model_output_width(model) -> int:
    """Output feature count of a layered model (0 when undeclared).

    Walks the layer stack backwards for the innermost ``out_features``
    (activations and pooling preserve width, so the last dense layer
    decides).  Used to shape empty prediction arrays so downstream
    ``argmax(axis=1)`` works on zero-sample runs too.
    """
    for layer in reversed(getattr(model, "layers", [])):
        width = getattr(layer, "out_features", None)
        if width is not None:
            return int(width)
    return 0


def run_secure_batch(
    ctx,
    model,
    batch: SharedTensor,
    *,
    batch_label: str = "0",
    max_request_retries: int = 2,
) -> BatchOutcome:
    """One fixed-shape secure forward pass with the fault-retry loop.

    Shared by :func:`secure_predict` and the serving layer
    (:class:`repro.serve.SecureInferenceServer`).  A batch request that
    dies with a :class:`~repro.faults.blame.PartyFailure` (crashed
    server, exhausted retry budget on the link) is retried up to
    ``max_request_retries`` times after restarting the blamed party —
    the stateless-request analogue of the trainer's checkpoint recovery.
    The forward pass has no persistent state, so a retried batch is
    bit-identical to an undisturbed one.

    Timing: ``online_s`` is measured across the *successful* attempt
    only; everything else the batch burned (failed attempts, restart
    penalties, backoff) is returned as ``retry_online_s``.
    """
    telemetry = getattr(ctx, "telemetry", None)
    injector = getattr(ctx, "fault_injector", None)
    bmark = ctx.mark()
    attempts = 0
    retries = 0
    while True:
        if injector is not None:
            injector.advance_step(1)
        # New online step per attempt: cached triplets issue fresh
        # shares (a retried request replays the same op streams).
        begin_batch = getattr(ctx, "begin_batch", None)
        if begin_batch is not None:
            begin_batch()
        amark = ctx.mark()
        try:
            with maybe_span(telemetry, "infer.batch", clock="online", batch=batch_label):
                pred = model.forward(batch, training=False)
            break
        except PartyFailure as failure:
            attempts += 1
            if attempts > max_request_retries:
                raise
            retries += 1
            with maybe_span(
                telemetry, "infer.request_retry", clock="online", party=failure.party
            ):
                respawn_party(ctx, failure.party)
            if telemetry is not None:
                telemetry.counter(
                    "faults.requests_retried", "inference batch requests retried"
                ).inc(1, party=failure.party)
    outputs = pred.decode()
    online_s = ctx.since(amark).online_s
    total_s = ctx.since(bmark).online_s
    return BatchOutcome(
        outputs=outputs,
        online_s=online_s,
        retry_online_s=max(0.0, total_s - online_s),
        retries=retries,
    )


def secure_predict(
    ctx,
    model,
    x: np.ndarray,
    *,
    batch_size: int = 128,
    max_batches: int | None = None,
    max_request_retries: int = 2,
) -> InferenceReport:
    """Secure forward passes over ``x``; predictions decoded client-side.

    Every input row is served: a ragged tail (``n % batch_size != 0``,
    including ``n < batch_size``) is zero-padded to the full batch shape
    — both servers' shares pad with zeros, so the pad rows decode to 0
    and pooled/label-cached triplets still match — and the pad rows are
    trimmed from the decoded output.  ``report.predictions`` therefore
    has exactly ``x.shape[0]`` rows (``max_batches`` permitting), and an
    empty input yields a ``(0, n_out)`` array.

    Fault tolerance: see :func:`run_secure_batch`.
    """
    x = np.asarray(x, dtype=np.float64)
    if x.ndim != 2:
        raise ConfigError(f"secure_predict expects 2-D input, got shape {x.shape}")
    telemetry = getattr(ctx, "telemetry", None)
    n = x.shape[0]
    start = ctx.mark()
    with maybe_span(telemetry, "infer.share_dataset", clock="offline"):
        xs = SharedTensor.from_plain(ctx, x, label="infer/x")
    sharing_offline = ctx.since(start).offline_s
    # Batched triplet provisioning on the offline clock (pool_size > 0):
    # the forward-only plan covers exactly the streams inference touches.
    provision = getattr(ctx, "provision_for", None)
    if provision is not None:
        provision(model, batch_size, training=False)
    outputs = []
    batch_online = []
    batches = 0
    samples = 0
    retried = 0
    retry_online = 0.0
    padded_rows = 0
    for lo in range(0, n, batch_size):
        hi = min(lo + batch_size, n)
        rows = hi - lo
        pad = batch_size - rows
        batch = xs.row_slice(lo, hi, pad_to=batch_size)
        outcome = run_secure_batch(
            ctx,
            model,
            batch,
            batch_label=str(batches),
            max_request_retries=max_request_retries,
        )
        outputs.append(outcome.outputs[:rows])
        batch_online.append(outcome.online_s)
        retry_online += outcome.retry_online_s
        retried += outcome.retries
        if pad:
            padded_rows += pad
            if telemetry is not None:
                telemetry.counter(
                    "infer.padded_rows", "zero rows appended to ragged tail batches"
                ).inc(pad)
        batches += 1
        samples += rows
        if max_batches is not None and batches >= max_batches:
            break
    # Commit any deferred dataflow schedule before the final accounting.
    finalize = getattr(ctx, "finalize_runtime", None)
    if finalize is not None:
        finalize()
    delta = ctx.since(start)
    if outputs:
        predictions = np.concatenate(outputs, axis=0)
    else:
        predictions = np.empty((0, model_output_width(model)))
    return InferenceReport(
        batches=batches,
        samples=samples,
        dataset_samples=n,
        offline_s=delta.offline_s,
        online_s=delta.online_s,
        sharing_offline_s=sharing_offline,
        setup_offline_s=max(0.0, delta.offline_s - sharing_offline),
        server_bytes=delta.server_bytes,
        predictions=predictions,
        batch_online_s=batch_online,
        retried_batches=retried,
        retry_online_s=retry_online,
        padded_rows=padded_rows,
    )
