"""Secure inference driver (forward pass only).

The paper studies inference as "essentially a sub-process of the
training protocol (the forward pass)" (Section 7.2, Fig. 13); this
driver runs exactly that — one offline dataset-sharing step, then
forward-only online batches — and produces the same phase accounting as
training so the two speedup figures are directly comparable.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.core.tensor import SharedTensor
from repro.faults.blame import PartyFailure
from repro.telemetry import maybe_span
from repro.util.errors import ConfigError


@dataclass
class InferenceReport:
    """Cost accounting for one inference run."""

    batches: int
    samples: int
    dataset_samples: int
    offline_s: float
    online_s: float
    sharing_offline_s: float
    setup_offline_s: float
    server_bytes: int
    predictions: np.ndarray
    batch_online_s: list = field(default_factory=list)
    retried_batches: int = 0  # failed requests recovered by retry

    @property
    def total_s(self) -> float:
        return self.offline_s + self.online_s

    @property
    def marginal_online_s(self) -> float:
        tail = self.batch_online_s[1:] or self.batch_online_s
        return sum(tail) / len(tail) if tail else 0.0

    def extrapolate(self, paper_samples: int, paper_batches: int) -> tuple[float, float]:
        scale = paper_samples / max(self.dataset_samples, 1)
        return (
            self.sharing_offline_s * scale + self.setup_offline_s,
            self.marginal_online_s * paper_batches,
        )


def secure_predict(
    ctx,
    model,
    x: np.ndarray,
    *,
    batch_size: int = 128,
    max_batches: int | None = None,
    max_request_retries: int = 2,
) -> InferenceReport:
    """Secure forward passes over ``x``; predictions decoded client-side.

    Fault tolerance: a batch request that dies with a
    :class:`~repro.faults.blame.PartyFailure` (crashed server, exhausted
    retry budget on the link) is retried up to ``max_request_retries``
    times after restarting the blamed party — the stateless-request
    analogue of the trainer's checkpoint recovery.  The forward pass has
    no persistent state, so a retried batch is bit-identical to an
    undisturbed one.
    """
    x = np.asarray(x, dtype=np.float64)
    if x.ndim != 2:
        raise ConfigError(f"secure_predict expects 2-D input, got shape {x.shape}")
    telemetry = getattr(ctx, "telemetry", None)
    injector = getattr(ctx, "fault_injector", None)
    start = ctx.mark()
    with maybe_span(telemetry, "infer.share_dataset", clock="offline"):
        xs = SharedTensor.from_plain(ctx, x, label="infer/x")
    sharing_offline = ctx.since(start).offline_s
    # Batched triplet provisioning on the offline clock (pool_size > 0):
    # the forward-only plan covers exactly the streams inference touches.
    provision = getattr(ctx, "provision_for", None)
    if provision is not None:
        provision(model, batch_size, training=False)
    outputs = []
    batch_online = []
    batches = 0
    samples = 0
    retried = 0
    for lo in range(0, x.shape[0] - batch_size + 1, batch_size):
        bmark = ctx.mark()
        attempts = 0
        while True:
            if injector is not None:
                injector.advance_step(1)
            # New online step per attempt: cached triplets issue fresh
            # shares (a retried request replays the same op streams).
            begin_batch = getattr(ctx, "begin_batch", None)
            if begin_batch is not None:
                begin_batch()
            try:
                with maybe_span(telemetry, "infer.batch", clock="online", batch=str(batches)):
                    pred = model.forward(xs.row_slice(lo, lo + batch_size), training=False)
                break
            except PartyFailure as failure:
                attempts += 1
                if attempts > max_request_retries:
                    raise
                retried += 1
                with maybe_span(
                    telemetry, "infer.request_retry", clock="online", party=failure.party
                ):
                    if injector is not None:
                        injector.restart(failure.party)
                    for compressor in getattr(ctx, "compressors", {}).values():
                        compressor.reset_stream_state()
                    # the restarted server lost its GPU memory and any
                    # previously exchanged masked differences
                    reset_reuse = getattr(ctx, "reset_mask_reuse", None)
                    if reset_reuse is not None:
                        reset_reuse()
                    if failure.party.startswith("server"):
                        party_id = int(failure.party[-1])
                        ctx.server_cpu[party_id].run(
                            ctx.config.retry_policy.restart_penalty_s,
                            label="recovery:restart",
                        )
                if telemetry is not None:
                    telemetry.counter(
                        "faults.requests_retried", "inference batch requests retried"
                    ).inc(1, party=failure.party)
        outputs.append(pred.decode())
        batch_online.append(ctx.since(bmark).online_s)
        batches += 1
        samples += batch_size
        if max_batches is not None and batches >= max_batches:
            break
    delta = ctx.since(start)
    return InferenceReport(
        batches=batches,
        samples=samples,
        dataset_samples=x.shape[0],
        offline_s=delta.offline_s,
        online_s=delta.online_s,
        sharing_offline_s=sharing_offline,
        setup_offline_s=max(0.0, delta.offline_s - sharing_offline),
        server_bytes=delta.server_bytes,
        predictions=np.concatenate(outputs, axis=0) if outputs else np.empty((0,)),
        batch_online_s=batch_online,
        retried_batches=retried,
    )
