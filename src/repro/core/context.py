"""SecureContext: the wired-up client + two-server deployment.

Mirrors the paper's Fig. 3 topology on simulated hardware:

* the **client** (data owner / trusted dealer) owns a CPU and a GPU on
  the *offline clock*: it encrypts (shares) inputs, generates Beaver
  triplets — accelerating ``Z = U x V`` on its GPU per Section 4.2 — and
  uploads the encrypted parts to the servers;
* **server 0 / server 1** each own a CPU and a GPU on the *online
  clock*; they run the reconstruct (CPU + inter-server channel) and GPU
  operation steps;
* the servers are linked by a 100 Gb/s channel with per-direction
  :class:`~repro.comm.compression.DeltaCompressor` state.

Two clocks, one rationale: the paper reports offline and online phases
as disjoint (Table 3 "occupancy"), with the offline phase completing
before the online phase starts.  Keeping each phase on its own clock
gives exactly that accounting while still modelling overlap *within*
each phase.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.comm.channel import Channel
from repro.comm.compression import CompressionStats, DeltaCompressor
from repro.core.config import FrameworkConfig
from repro.faults.injector import FaultInjector
from repro.faults.reliable import ResilientChannel
from repro.fixedpoint.encoding import FixedPointEncoder
from repro.fixedpoint.ring import ring_matmul, ring_matmul_batched, ring_mul, ring_sub
from repro.mpc.comparison import ComparisonBundle, ComparisonDealer
from repro.mpc.pool import TripletPool, TripletRequest
from repro.mpc.prandom import ThreadSafeGeneratorPool, parallel_uniform_ring
from repro.mpc.shares import SharePair
from repro.mpc.triplets import ElementwiseTriplet, MatrixTriplet
from repro.pipeline.profiler import StepProfiler
from repro.protocols import get_backend
from repro.simgpu.clock import SimClock
from repro.simgpu.device import SimCPU, SimGPU
from repro.telemetry import Telemetry
from repro.util.errors import ProtocolError
from repro.util.seeding import SeedSequenceFactory


@dataclass(frozen=True)
class PhaseMark:
    """Snapshot of both clocks, for measuring an experiment window."""

    offline_s: float
    online_s: float
    server_bytes: int
    uplink_bytes: int


@dataclass(frozen=True)
class PhaseDelta:
    """Difference between two marks: one experiment's cost."""

    offline_s: float
    online_s: float
    server_bytes: int
    uplink_bytes: int

    @property
    def total_s(self) -> float:
        return self.offline_s + self.online_s

    @property
    def occupancy(self) -> float:
        """Online share of total time (Table 3's metric)."""
        return self.online_s / self.total_s if self.total_s > 0 else 0.0


class SecureContext:
    """Client + n servers with simulated devices and channels.

    The server count comes from the protocol backend
    (``config.backend``): two for the paper's ``beaver2pc``, three for
    ``rep3`` replicated sharing.
    """

    def __init__(self, config: FrameworkConfig | None = None):
        self.config = config or FrameworkConfig()
        cfg = self.config
        self.encoder = FixedPointEncoder(cfg.frac_bits)
        self.seeds = SeedSequenceFactory(cfg.seed)
        self.rng = self.seeds.generator("context")

        # The MPC substrate: share algebra + interactive protocols.
        # Everything below sizes itself off backend.n_parties (2 for the
        # paper's beaver2pc, 3 for replicated sharing).
        self.backend = get_backend(cfg.backend)
        self.n_parties = self.backend.n_parties

        # One telemetry surface for the whole deployment: every channel,
        # device and compressor below records into this registry, and
        # ``ctx.telemetry.snapshot()`` / ``report()`` read it back out.
        self.telemetry = Telemetry()

        # --- offline side (client) -------------------------------------------
        self.offline_clock = self._make_clock()
        self.offline_clock.set_tracing(cfg.trace)
        self.telemetry.register_clock("offline", self.offline_clock)
        # The client's encrypt path uses the Section 5.1 parallel MT19937
        # design when client_parallel is on (the default in both presets
        # — shared infrastructure); the cpu_parallel switch governs the
        # servers (see FrameworkConfig docs and the Fig. 14 ablation).
        self.client_cpu = SimCPU(
            self.offline_clock,
            cfg.cpu_spec,
            "client",
            parallel_enabled=cfg.client_parallel,
            telemetry=self.telemetry,
        )
        self.client_gpu = (
            SimGPU(
                self.offline_clock,
                cfg.gpu_spec,
                "clientgpu",
                n_streams=1,
                tensor_core=cfg.tensor_core,
                telemetry=self.telemetry,
            )
            if cfg.use_gpu
            else None
        )
        self.uplinks = [
            Channel(
                self.offline_clock, cfg.uplink, "client", f"server{i}", telemetry=self.telemetry
            )
            for i in range(self.n_parties)
        ]
        self.uplink0 = self.uplinks[0]
        self.uplink1 = self.uplinks[1]

        # --- online side (servers) --------------------------------------------
        self.online_clock = self._make_clock()
        self.online_clock.set_tracing(cfg.trace)
        self.telemetry.register_clock("online", self.online_clock)
        self.server_cpu = [
            SimCPU(
                self.online_clock,
                cfg.cpu_spec,
                f"s{i}",
                parallel_enabled=cfg.cpu_parallel,
                telemetry=self.telemetry,
            )
            for i in range(self.n_parties)
        ]
        # Pipeline 2 (Fig. 6): with the double pipeline on, each server
        # runs its reconstruct steps in a dedicated thread, so they can
        # overlap GPU operations of neighbouring layers.  Without it the
        # reconstruct work shares the single in-order CPU timeline.
        if cfg.double_pipeline:
            self.server_reconstruct_cpu = [
                SimCPU(
                    self.online_clock,
                    cfg.cpu_spec,
                    f"s{i}rec",
                    parallel_enabled=cfg.cpu_parallel,
                    telemetry=self.telemetry,
                )
                for i in range(self.n_parties)
            ]
        else:
            self.server_reconstruct_cpu = self.server_cpu
        self.server_gpu = [
            SimGPU(
                self.online_clock,
                cfg.gpu_spec,
                f"s{i}gpu",
                n_streams=cfg.n_streams,
                tensor_core=cfg.tensor_core,
                telemetry=self.telemetry,
            )
            if cfg.use_gpu
            else None
            for i in range(self.n_parties)
        ]
        # Fault tolerance: under a FaultPlan the server0<->server1 link
        # (the online hot path) becomes adversarial, and every
        # retransmission byte / backoff wait is charged on this clock
        # and channel so recovery costs show up in makespans.
        self.fault_injector = (
            FaultInjector(cfg.fault_plan, telemetry=self.telemetry)
            if cfg.fault_plan is not None
            else None
        )
        # One channel per server pair; server_channel stays the
        # historical alias for the (0, 1) link.
        self.server_links: dict[tuple[int, int], Channel] = {}
        for i in range(self.n_parties):
            for j in range(i + 1, self.n_parties):
                if (i, j) == (0, 1) and self.fault_injector is not None:
                    link = ResilientChannel(
                        self.online_clock,
                        cfg.server_link,
                        "server0",
                        "server1",
                        telemetry=self.telemetry,
                        injector=self.fault_injector,
                        policy=cfg.retry_policy,
                    )
                else:
                    link = Channel(
                        self.online_clock,
                        cfg.server_link,
                        f"server{i}",
                        f"server{j}",
                        telemetry=self.telemetry,
                    )
                self.server_links[(i, j)] = link
        self.server_channel = self.server_links[(0, 1)]
        self.compressors = {
            (0, 1): DeltaCompressor(
                cfg.compression_threshold,
                enabled=cfg.compression,
                telemetry=self.telemetry,
                direction="s0->s1",
            ),
            (1, 0): DeltaCompressor(
                cfg.compression_threshold,
                enabled=cfg.compression,
                telemetry=self.telemetry,
                direction="s1->s0",
            ),
        }

        # --- placement & offline material --------------------------------------
        self.profiler = StepProfiler(
            cfg.cpu_spec,
            cfg.gpu_spec,
            mode=cfg.placement_mode if cfg.use_gpu else "cpu_always",
            tensor_core=cfg.tensor_core,
            cpu_parallel=cfg.cpu_parallel,
        )
        self.comparison_dealer = ComparisonDealer(
            self.seeds.generator("comparison-dealer"),
            seeds=self.seeds.spawn("comparison-dealer"),
        )
        self._dealer_rng = self.seeds.generator("triplet-dealer")

        # triplet streams: one triplet per op label, reused across
        # iterations unless fresh_triplets (see FrameworkConfig docs)
        self._matrix_triplets: dict[str, MatrixTriplet] = {}
        self._elementwise_triplets: dict[str, ElementwiseTriplet] = {}

        # Batched offline provisioning (pool_size > 0): a shape-keyed
        # bank of pre-generated triplets, refilled by the fused batch
        # generators below on the offline clock.  Label-cache misses
        # draw from the pool before falling back to synchronous
        # generation; fresh_triplets bypasses the pool entirely.
        self._mask_pool = ThreadSafeGeneratorPool(
            min(8, cfg.cpu_spec.n_cores), seed=self.seeds.seed_for("triplet-pool")
        )
        self.triplet_pool = (
            TripletPool(
                self._gen_matrix_triplet_batch,
                self._gen_elementwise_triplet_batch,
                max_batch=cfg.pool_size,
                telemetry=self.telemetry,
            )
            if cfg.pool_size > 0 and self.backend.needs_dealer
            else None
        )

        # Online-step epoch for the per-batch consumption guard: drivers
        # call begin_batch() before each step; cached triplets then issue
        # one TripletShare per (epoch, party), so a second consume of the
        # same op stream within a step raises a labelled ProtocolError.
        self._batch_epoch: int | None = None

        # Static-operand mask reuse (config.static_mask_reuse): cached
        # combined masked differences keyed by (op label, side), and
        # device-resident staged buffers keyed by (party, key).
        self._masked_cache: dict[tuple[str, str], tuple[int, int, np.ndarray]] = {}
        self._device_stash: dict[tuple[int, str], tuple[tuple, object, object]] = {}
        self._mask_reuse_hits = self.telemetry.counter(
            "mpc.mask_reuse.hits", "masked-difference exchanges skipped via static reuse"
        )
        self._mask_reuse_bytes = self.telemetry.counter(
            "mpc.mask_reuse.bytes_saved", "inter-server bytes not sent thanks to mask reuse"
        )

        # offline-material accounting
        self._triplets_generated = self.telemetry.counter(
            "mpc.triplets_generated", "Beaver triplets produced offline, by kind and shape"
        )
        self._triplets_consumed = self.telemetry.counter(
            "mpc.triplets_consumed", "op-stream fetches of offline material"
        )
        self._comparisons = self.telemetry.counter(
            "mpc.comparisons_issued", "comparison bundles generated offline"
        )

        # Optional transcript recorder (repro.audit): when attached,
        # every wire charge — client uploads, masked-difference
        # exchanges, comparison rounds — is logged with its content
        # hash and clock time for replay and wire-view audits.
        self.recorder = None

    @classmethod
    def create(
        cls, config: FrameworkConfig | None = None, *, backend: str | None = None
    ) -> "SecureContext":
        """The blessed builder (what :func:`repro.api.session` returns).

        ``backend`` overrides the config's protocol backend — e.g.
        ``SecureContext.create(backend="rep3")`` for 3-party replicated
        sharing instead of the default ``beaver2pc``.
        """
        cfg = config or FrameworkConfig()
        if backend is not None and backend != cfg.backend:
            cfg = cfg.but(backend=backend)
        return cls(config=cfg)

    def _make_clock(self):
        """One phase clock per config.runtime: eager lockstep placement
        or the deferred dataflow scheduler (repro.runtime.dataflow)."""
        if self.config.runtime == "dataflow":
            from repro.runtime.dataflow import DataflowClock

            return DataflowClock()
        return SimClock()

    def finalize_runtime(self) -> None:
        """Flush any deferred dataflow windows (no-op under lockstep).

        Drivers call this before their final accounting so reported
        makespans reflect the committed schedule, not the provisional
        program-order estimates.
        """
        for clock in (self.offline_clock, self.online_clock):
            finalize = getattr(clock, "finalize", None)
            if finalize is not None:
                finalize()

    def server_link(self, i: int, j: int) -> Channel:
        """The channel between servers ``i`` and ``j`` (order-free)."""
        key = (i, j) if i < j else (j, i)
        return self.server_links[key]

    # -- thin views over the registry (historical counter surface) -------------

    @property
    def triplets_issued(self) -> int:
        return int(self._triplets_generated.value())

    @property
    def comparisons_issued(self) -> int:
        return int(self._comparisons.value())

    # ------------------------------------------------------------------ phases

    def mark(self) -> PhaseMark:
        return PhaseMark(
            offline_s=self.offline_clock.now(),
            online_s=self.online_clock.now(),
            server_bytes=sum(link.total_bytes for link in self.server_links.values()),
            uplink_bytes=sum(up.total_bytes for up in self.uplinks),
        )

    def since(self, mark: PhaseMark) -> PhaseDelta:
        now = self.mark()
        return PhaseDelta(
            offline_s=now.offline_s - mark.offline_s,
            online_s=now.online_s - mark.online_s,
            server_bytes=now.server_bytes - mark.server_bytes,
            uplink_bytes=now.uplink_bytes - mark.uplink_bytes,
        )

    @property
    def compression_stats(self) -> CompressionStats:
        return self.compressors[(0, 1)].stats.merge(self.compressors[(1, 0)].stats)

    # ------------------------------------------------------- offline primitives

    def _charge_client_rng(self, nbytes: int, label: str) -> None:
        decision = self.profiler.place_rng(nbytes)
        if decision.placement == "gpu" and self.client_gpu is not None:
            # cuRAND generation + copy-back (the Fig. 7 trade-off; the
            # profiler only lands here for large matrices).
            gpu = self.client_gpu
            t = gpu.clock.run(
                gpu.stream(0), gpu.spec.curand_seconds(nbytes), label=f"{label}:curand"
            )
            gpu.clock.run(
                gpu.d2h_engine, gpu.spec.transfer_seconds(nbytes), deps=(t,), label=f"{label}:d2h"
            )
            return
        self.client_cpu.run(
            self.config.cpu_spec.rng_seconds(nbytes, parallel=self.config.client_parallel),
            label=label,
        )

    def _charge_client_elementwise(self, nbytes: int, label: str) -> None:
        self.client_cpu.run(
            self.config.cpu_spec.elementwise_seconds(
                nbytes, parallel=self.config.client_parallel
            ),
            label=label,
        )

    def attach_recorder(self, recorder=None, *, capture_payloads: bool = True):
        """Attach (or create) a transcript recorder for this deployment.

        From here on every wire charge is logged (see
        :mod:`repro.audit`); a resilient server channel also gets its
        frame path tapped so retransmissions show up.  Returns the
        recorder so callers can pull the transcript at the end.
        """
        if recorder is None:
            from repro.audit.transcript import TranscriptRecorder

            recorder = TranscriptRecorder(
                capture_payloads=capture_payloads, telemetry=self.telemetry
            )
        self.recorder = recorder
        transport = getattr(self.server_channel, "transport", None)
        if transport is not None and hasattr(transport, "attach_recorder"):
            transport.attach_recorder(recorder)
        return recorder

    def record_wire(
        self,
        src: str,
        dst: str,
        tag: str,
        payload=None,
        *,
        nbytes: int | None = None,
        clock: str = "online",
    ) -> None:
        """Log one message on the attached recorder (no-op when absent)."""
        if self.recorder is None:
            return
        clk = self.offline_clock if clock == "offline" else self.online_clock
        self.recorder.record(
            src, dst, tag, payload, nbytes=nbytes, clock_s=clk.now()
        )

    def _upload(
        self,
        nbytes_per_server: int,
        label: str,
        contents: tuple | None = None,
        parties: tuple[int, ...] | None = None,
    ) -> None:
        """Charge the client->server transfer of offline material.

        ``contents`` optionally carries the per-server payloads (one
        entry per uploaded-to server, in ``parties`` order) so an
        attached recorder can hash and audit what each server actually
        received; without it the upload is logged size-only.  ``parties``
        restricts the upload to a subset of servers (e.g. the two
        comparing parties of a 3-party backend); default is all.
        """
        targets = tuple(range(self.n_parties)) if parties is None else tuple(parties)
        for i in targets:
            self.uplinks[i].send("client", f"server{i}", nbytes_per_server, label=label)
        if self.recorder is not None:
            for idx, i in enumerate(targets):
                self.record_wire(
                    "client", f"server{i}", label,
                    contents[idx] if contents is not None else None,
                    nbytes=nbytes_per_server, clock="offline",
                )

    def _client_matmul(self, u: np.ndarray, v: np.ndarray) -> np.ndarray:
        """Z = U x V on the client, GPU-accelerated when profitable.

        The paper's offline acceleration: this one product is >90% of
        the offline compute, so it goes to the client GPU; everything
        else stays on the CPU (Section 4.2).
        """
        m, k = u.shape
        n = v.shape[1]
        decision = self.profiler.place_gemm(m, k, n, operands_on_gpu=False)
        if decision.placement == "gpu" and self.client_gpu is not None:
            gpu = self.client_gpu
            u_buf, t_u = gpu.h2d(u, label="offline:h2d:U")
            v_buf, t_v = gpu.h2d(v, label="offline:h2d:V")
            z_buf, t_z = gpu.gemm_ring(u_buf, v_buf, deps=(t_u, t_v), label="offline:U@V")
            z, _ = gpu.d2h(z_buf, deps=(t_z,), label="offline:d2h:Z")
            for b in (u_buf, v_buf, z_buf):
                gpu.free(b)
            return z
        z, _ = self.client_cpu.gemm_ring(u, v, label="offline:U@V")
        return z

    def _share_with_timing(self, secret: np.ndarray, label: str):
        """Backend share split plus the client-side cost it implies.

        Returns the backend's share container (a :class:`SharePair` for
        2-party backends, a plain tuple otherwise) — always indexable by
        party.  Costs scale with the share count: n-1 mask draws and n
        subtract/copy passes.
        """
        n = self.n_parties
        self._charge_client_rng((n - 1) * secret.nbytes, f"{label}:rng")
        self._charge_client_elementwise(n * secret.nbytes, f"{label}:split")
        return self.backend.share_secret(secret, self.rng)

    def share_plain(self, plain: np.ndarray, label: str = "input"):
        """Encode and secret-share client data; charges encrypt + upload.

        The float->ring encoding is the dominant cost of the client's
        "generate the encrypted data" step (paper Fig. 2) and is common
        to both evaluated systems.
        """
        encoded = self.encoder.encode(plain)
        self.client_cpu.run(
            encoded.nbytes / (self.config.cpu_spec.encode_gbps * 1e9),
            label=f"{label}:encode",
        )
        pair = self._share_with_timing(encoded, label)
        self._upload(
            self.backend.upload_nbytes(encoded.nbytes),
            f"{label}:upload",
            contents=self.backend.upload_payloads(pair),
        )
        return pair

    def share_ring(self, encoded: np.ndarray, label: str = "input"):
        """Share an already-encoded ring matrix."""
        pair = self._share_with_timing(encoded, label)
        self._upload(
            self.backend.upload_nbytes(encoded.nbytes),
            f"{label}:upload",
            contents=self.backend.upload_payloads(pair),
        )
        return pair

    def gen_matrix_triplet(self, shape_a, shape_b) -> MatrixTriplet:
        """Offline generation of one matrix Beaver triplet, fully costed."""
        self._require_dealer("gen_matrix_triplet")
        rng = self._dealer_rng
        u = rng.integers(0, 2**64, size=shape_a, dtype=np.uint64)
        v = rng.integers(0, 2**64, size=shape_b, dtype=np.uint64)
        self._charge_client_rng(u.nbytes + v.nbytes, "triplet:rng")
        z = self._client_matmul(u, v)
        triplet = MatrixTriplet(
            u=self._share_with_timing(u, "triplet:U"),
            v=self._share_with_timing(v, "triplet:V"),
            z=self._share_with_timing(z, "triplet:Z"),
            shape_a=tuple(shape_a),
            shape_b=tuple(shape_b),
        )
        self._upload(
            u.nbytes + v.nbytes + z.nbytes, "triplet:upload",
            contents=tuple(
                (getattr(triplet.u, f"share{i}"), getattr(triplet.v, f"share{i}"),
                 getattr(triplet.z, f"share{i}"))
                for i in (0, 1)
            ),
        )
        self._triplets_generated.inc(
            1, kind="matrix", shape=f"{tuple(shape_a)}x{tuple(shape_b)}"
        )
        return triplet

    def gen_elementwise_triplet(self, shape) -> ElementwiseTriplet:
        self._require_dealer("gen_elementwise_triplet")
        rng = self._dealer_rng
        u = rng.integers(0, 2**64, size=shape, dtype=np.uint64)
        v = rng.integers(0, 2**64, size=shape, dtype=np.uint64)
        self._charge_client_rng(u.nbytes + v.nbytes, "etriplet:rng")
        z = ring_mul(u, v)
        self._charge_client_elementwise(3 * u.nbytes, "etriplet:mul")
        triplet = ElementwiseTriplet(
            u=self._share_with_timing(u, "etriplet:U"),
            v=self._share_with_timing(v, "etriplet:V"),
            z=self._share_with_timing(z, "etriplet:Z"),
            shape=tuple(shape),
        )
        self._upload(
            3 * u.nbytes, "etriplet:upload",
            contents=tuple(
                (getattr(triplet.u, f"share{i}"), getattr(triplet.v, f"share{i}"),
                 getattr(triplet.z, f"share{i}"))
                for i in (0, 1)
            ),
        )
        self._triplets_generated.inc(1, kind="elementwise", shape=str(tuple(shape)))
        return triplet

    # --------------------------------------------- batched offline provisioning

    def _pool_uniform(self, shape: tuple[int, ...]) -> np.ndarray:
        """One vectorised mask draw for a whole refill stack (Section 5.1)."""
        if len(shape) >= 2:
            return parallel_uniform_ring(shape, self._mask_pool)
        return self._dealer_rng.integers(0, 2**64, size=shape, dtype=np.uint64)

    def _client_matmul_batched(self, u: np.ndarray, v: np.ndarray) -> np.ndarray:
        """Fused ``Z = U x V`` over a (B,m,k) x (B,k,n) refill stack.

        One strided-batched launch on the client GPU (one PCIe round
        trip for the whole stack) when profitable; otherwise B
        sequential products on the client CPU.
        """
        count, m, k = u.shape
        n = v.shape[2]
        decision = self.profiler.place_gemm_batched(count, m, k, n)
        if decision.placement == "gpu" and self.client_gpu is not None:
            gpu = self.client_gpu
            u_buf, t_u = gpu.h2d(u, label="pool:h2d:U")
            v_buf, t_v = gpu.h2d(v, label="pool:h2d:V")
            z_buf, t_z = gpu.gemm_ring_batched(u_buf, v_buf, deps=(t_u, t_v), label="pool:U@V")
            z, _ = gpu.d2h(z_buf, deps=(t_z,), label="pool:d2h:Z")
            for b in (u_buf, v_buf, z_buf):
                gpu.free(b)
            return z
        z = ring_matmul_batched(u, v)
        self.client_cpu.run(
            count * self.config.cpu_spec.gemm_seconds(m, k, n), label="pool:U@V", kind="gemm"
        )
        return z

    def _gen_matrix_triplet_batch(self, shape_a, shape_b, count: int) -> list[MatrixTriplet]:
        """Fused offline generation of ``count`` same-shaped matrix triplets.

        The whole refill is one vectorised mask draw, one batched ring
        GEMM, one share split and one upload message per server — the
        per-triplet fixed costs (curand warm-up, kernel launches, PCIe
        and channel latency) are paid once per batch instead of once
        per triplet.
        """
        m, k = tuple(shape_a)
        n = tuple(shape_b)[1]
        with self.telemetry.span("pool.refill", clock="offline", kind="matrix", count=count):
            # Per-phase sub-spans: how a refill's offline time splits
            # between mask drawing, the dealer GEMM, share splitting and
            # the upload (see EXPERIMENTS.md, offline-makespan analysis).
            with self.telemetry.span("pool.refill.rng", clock="offline", kind="matrix"):
                u = self._pool_uniform((count, m, k))
                v = self._pool_uniform((count, k, n))
                self._charge_client_rng(u.nbytes + v.nbytes, "pool:rng")
            with self.telemetry.span("pool.refill.gemm", clock="offline", kind="matrix"):
                z = self._client_matmul_batched(u, v)
            with self.telemetry.span("pool.refill.share", clock="offline", kind="matrix"):
                u_pair = self._share_with_timing(u, "pool:U")
                v_pair = self._share_with_timing(v, "pool:V")
                z_pair = self._share_with_timing(z, "pool:Z")
            with self.telemetry.span("pool.refill.upload", clock="offline", kind="matrix"):
                self._upload(
                    u.nbytes + v.nbytes + z.nbytes, "pool:upload",
                    contents=tuple(
                        (getattr(u_pair, f"share{i}"), getattr(v_pair, f"share{i}"),
                         getattr(z_pair, f"share{i}"))
                        for i in (0, 1)
                    ),
                )
        self._triplets_generated.inc(
            count, kind="matrix", shape=f"{tuple(shape_a)}x{tuple(shape_b)}", source="pool"
        )
        return [
            MatrixTriplet(
                u=SharePair(u_pair.share0[i], u_pair.share1[i]),
                v=SharePair(v_pair.share0[i], v_pair.share1[i]),
                z=SharePair(z_pair.share0[i], z_pair.share1[i]),
                shape_a=tuple(shape_a),
                shape_b=tuple(shape_b),
            )
            for i in range(count)
        ]

    def _gen_elementwise_triplet_batch(self, shape, count: int) -> list[ElementwiseTriplet]:
        """Fused generation of ``count`` same-shaped elementwise triplets."""
        stack = (count, *tuple(shape))
        with self.telemetry.span("pool.refill", clock="offline", kind="elementwise", count=count):
            with self.telemetry.span("pool.refill.rng", clock="offline", kind="elementwise"):
                u = self._pool_uniform(stack)
                v = self._pool_uniform(stack)
                self._charge_client_rng(u.nbytes + v.nbytes, "pool:rng")
            with self.telemetry.span("pool.refill.gemm", clock="offline", kind="elementwise"):
                z = ring_mul(u, v)
                self._charge_client_elementwise(3 * u.nbytes, "pool:mul")
            with self.telemetry.span("pool.refill.share", clock="offline", kind="elementwise"):
                u_pair = self._share_with_timing(u, "pool:U")
                v_pair = self._share_with_timing(v, "pool:V")
                z_pair = self._share_with_timing(z, "pool:Z")
            with self.telemetry.span("pool.refill.upload", clock="offline", kind="elementwise"):
                self._upload(
                    3 * u.nbytes, "pool:upload",
                    contents=tuple(
                        (getattr(u_pair, f"share{i}"), getattr(v_pair, f"share{i}"),
                         getattr(z_pair, f"share{i}"))
                        for i in (0, 1)
                    ),
                )
        self._triplets_generated.inc(
            count, kind="elementwise", shape=str(tuple(shape)), source="pool"
        )
        return [
            ElementwiseTriplet(
                u=SharePair(u_pair.share0[i], u_pair.share1[i]),
                v=SharePair(v_pair.share0[i], v_pair.share1[i]),
                z=SharePair(z_pair.share0[i], z_pair.share1[i]),
                shape=tuple(shape),
            )
            for i in range(count)
        ]

    def provision_offline(self, requests: list[TripletRequest]) -> int:
        """Bank triplets for ``requests`` in the pool (no-op without one)."""
        if self.triplet_pool is None or self.config.fresh_triplets or not requests:
            return 0
        return self.triplet_pool.provision(requests)

    def provision_demand(self, demand) -> int:
        """Bank triplets for aggregated ``{(kind, shapes): count}`` demand.

        The multi-consumer provisioning path (fleet dealer service):
        same guards as :meth:`provision_offline`, but takes demand
        already merged across consumers.
        """
        if self.triplet_pool is None or self.config.fresh_triplets or not demand:
            return 0
        return self.triplet_pool.provision_demand(demand)

    def provision_for(self, model, batch_size: int, *, training: bool = True) -> int:
        """Provision the pool from a model's declared ``offline_plan``.

        Called by the drivers after dataset sharing, on the offline
        clock — refills therefore overlap the subsequent online steps by
        the two-clock construction.  Returns triplets banked (0 when the
        pool is off, fresh_triplets is on, or the model has no plan).
        """
        if self.triplet_pool is None or self.config.fresh_triplets:
            return 0
        plan = getattr(model, "offline_plan", None)
        if plan is None:
            return 0
        return self.provision_offline(plan(batch_size, training=training))

    def begin_batch(self) -> None:
        """Advance the online-step epoch (per-batch consumption guard)."""
        self._batch_epoch = 0 if self._batch_epoch is None else self._batch_epoch + 1

    # ------------------------------------------------ static-operand mask reuse

    @property
    def mask_reuse_enabled(self) -> bool:
        """Mask reuse needs stable masks, so fresh_triplets disables it."""
        return self.config.static_mask_reuse and not self.config.fresh_triplets

    def reuse_masked(self, label: str, side: str, tensor, triplet) -> np.ndarray | None:
        """Cached combined masked difference for a static operand, or None.

        A hit means both the operand's values (tensor uid) and the mask
        (triplet uid) are unchanged since the difference was exchanged —
        the combined matrix is therefore bit-identical, and the servers
        skip the subtract, the transmission and the combine entirely.
        """
        if not self.mask_reuse_enabled or not getattr(tensor, "static", False):
            return None
        entry = self._masked_cache.get((label, side))
        if entry is None:
            return None
        tensor_uid, triplet_uid, combined = entry
        if tensor_uid != tensor.uid or triplet_uid != triplet.uid:
            return None
        self._mask_reuse_hits.inc(1, side=side)
        # Each server skips sending its local difference to the other.
        self._mask_reuse_bytes.inc(2 * combined.nbytes, side=side)
        return combined

    def store_masked(self, label: str, side: str, tensor, triplet, combined: np.ndarray) -> None:
        """Remember an exchanged masked difference for a static operand."""
        if not self.mask_reuse_enabled or not getattr(tensor, "static", False):
            return
        self._masked_cache[(label, side)] = (tensor.uid, triplet.uid, combined)

    def stash_device_buffer(self, party: int, key: str, version: tuple, array, deps=(), label="stage"):
        """Keep ``array`` resident on server ``party``'s GPU across batches.

        Returns ``(buffer, upload_task)``; re-uploads only when
        ``version`` changes (freeing the stale buffer first).
        """
        gpu = self.server_gpu[party]
        entry = self._device_stash.get((party, key))
        if entry is not None:
            old_version, buf, task = entry
            if old_version == version:
                return buf, task
            gpu.free(buf)
        buf, task = gpu.h2d(array, deps=deps, label=label)
        self._device_stash[(party, key)] = (version, buf, task)
        return buf, task

    def reset_mask_reuse(self) -> None:
        """Drop reuse caches and staged device buffers.

        Called on recovery paths (server restart, inference retry): a
        restarted server has lost its GPU memory, so nothing previously
        staged or exchanged can be assumed present.
        """
        self._masked_cache.clear()
        for (party, _key), (_version, buf, _task) in list(self._device_stash.items()):
            gpu = self.server_gpu[party]
            if gpu is not None:
                gpu.free(buf)
        self._device_stash.clear()

    # ---------------------------------------------------- per-label triplet API

    def get_matrix_triplet(self, label: str, shape_a, shape_b) -> MatrixTriplet:
        """The triplet for op stream ``label``; cached unless fresh_triplets.

        A cached triplet keeps the same (U, V, Z) for repeated executions
        of the op — the mask-stability the paper's delta compression
        depends on.  Shape changes (e.g. a ragged last batch) invalidate
        the cache entry.
        """
        self._require_dealer(label)
        self._triplets_consumed.inc(
            1, kind="matrix", shape=f"{tuple(shape_a)}x{tuple(shape_b)}"
        )
        if self.config.fresh_triplets:
            # Single-use triplets bypass the pool: pooled material is
            # pre-drawn, which is exactly what fresh_triplets forbids.
            triplet = self.gen_matrix_triplet(shape_a, shape_b)
            triplet.begin_use(None, label)
            return triplet
        cached = self._matrix_triplets.get(label)
        if (
            cached is None
            or cached.shape_a != tuple(shape_a)
            or cached.shape_b != tuple(shape_b)
        ):
            pooled = (
                self.triplet_pool.take_matrix(tuple(shape_a), tuple(shape_b))
                if self.triplet_pool is not None
                else None
            )
            # Pool exhaustion (or no pool): synchronous generation.
            cached = pooled if pooled is not None else self.gen_matrix_triplet(shape_a, shape_b)
            self._matrix_triplets[label] = cached
        cached.begin_use(self._batch_epoch, label)
        return cached

    def _require_dealer(self, label: str) -> None:
        if not self.backend.needs_dealer:
            raise ProtocolError(
                f"[{self.backend.name}] op stream '{label}' requested Beaver "
                "triplets, but this backend is dealer-free; its multiplication "
                "protocol must not consume dealer material"
            )

    def get_elementwise_triplet(self, label: str, shape) -> ElementwiseTriplet:
        """Elementwise-triplet analogue of :meth:`get_matrix_triplet`."""
        self._require_dealer(label)
        self._triplets_consumed.inc(1, kind="elementwise", shape=str(tuple(shape)))
        if self.config.fresh_triplets:
            triplet = self.gen_elementwise_triplet(shape)
            triplet.begin_use(None, label)
            return triplet
        cached = self._elementwise_triplets.get(label)
        if cached is None or cached.shape != tuple(shape):
            pooled = (
                self.triplet_pool.take_elementwise(tuple(shape))
                if self.triplet_pool is not None
                else None
            )
            cached = pooled if pooled is not None else self.gen_elementwise_triplet(shape)
            self._elementwise_triplets[label] = cached
        cached.begin_use(self._batch_epoch, label)
        return cached

    def gen_comparison_bundle(self, shape, label: str | None = None) -> ComparisonBundle | None:
        """Offline material for one secure comparison.

        Returns a real bundle under the ``dealer`` protocol; under
        ``emulated`` only the costs are charged (see
        :func:`repro.core.ops.secure_compare`); ``None`` in that case.
        With a ``label`` (and ``fresh_triplets`` off) the bundle's
        randomness is derived from the op-stream label, so replaying a
        batch after checkpoint restore redraws bit-identical material —
        the comparison analogue of the per-label triplet cache.
        """
        n = int(np.prod(shape))
        # Dealer-side generation cost: dominated by the bit-triplet RNG.
        material_bytes = n * 8 + n * 8 + 3 * 63 * n // 8 + n // 8 + n * 8
        self._charge_client_rng(material_bytes, "compare:rng")
        # Only the two parties that run the 2-party comparison core
        # receive material (all of them under beaver2pc).
        self._upload(material_bytes, "compare:upload", parties=self.backend.compare_parties)
        self._comparisons.inc(1)
        if self.config.fresh_triplets:
            label = None
        if self.config.activation_protocol == "dealer":
            return self.comparison_dealer.bundle(tuple(shape), label)
        return None
