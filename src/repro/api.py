"""The blessed entry points: ``repro.api.session`` and ``repro.api.serve``.

:func:`session` wires one whole paper deployment — client, two servers,
simulated GPUs, channels, compressors, telemetry — and hands back the
:class:`~repro.core.context.SecureContext` everything else hangs off::

    import repro

    ctx = repro.api.session()                                  # ParSecureML defaults
    ctx = repro.api.session(config=repro.FrameworkConfig.secureml())   # baseline
    ctx = repro.api.session(trace=True, compression=False)     # keyword overrides

    model = repro.SecureMLP(ctx, n_features=784)
    report = repro.SecureTrainer(ctx, model).train(x, y, max_batches=2)
    print(ctx.telemetry.report())

:func:`serve` stands up the serving layer — N replica deployments (each
its own session) behind the fleet router with a shared dealer::

    fleet = repro.api.serve(
        lambda ctx: repro.SecureMLP(ctx, 64, hidden=(32,), n_out=10),
        replicas=4, placement="least-depth",
    )
    fleet.submit("client-a", x_rows)
    fleet.drain()

Keyword overrides are applied with :meth:`FrameworkConfig.but`, so any
field of :class:`~repro.core.config.FrameworkConfig` can be tweaked
without building the config by hand.
"""

from __future__ import annotations

from repro.core.config import FrameworkConfig
from repro.core.context import SecureContext

__all__ = ["serve", "session"]


def session(
    config: FrameworkConfig | None = None,
    *,
    backend: str | None = None,
    **overrides,
) -> SecureContext:
    """Create a fully wired :class:`SecureContext`.

    Parameters
    ----------
    config:
        Base configuration; defaults to ``FrameworkConfig()`` (the
        ParSecureML preset).
    backend:
        Protocol backend name from :func:`repro.protocols.get_backend`
        (``"beaver2pc"`` — the default dealer-assisted 2PC path — or
        ``"rep3"``, dealer-free 3-party replicated sharing).  Omitting
        it keeps the configured backend (``beaver2pc`` by default).
    **overrides:
        Field overrides applied on top of ``config`` via
        :meth:`FrameworkConfig.but` (e.g. ``trace=True``,
        ``compression=False``, ``seed=7``).
    """
    cfg = config or FrameworkConfig()
    if backend is not None:
        overrides["backend"] = backend
    if overrides:
        cfg = cfg.but(**overrides)
    return SecureContext.create(cfg)


def serve(
    model_factory,
    *,
    replicas: int = 1,
    config: FrameworkConfig | None = None,
    placement="hash",
    max_batch: int = 64,
    max_wait_s: float = 1e-3,
    queue_rows: int | None = None,
    request_retries: int = 2,
    audit: bool = False,
    autoscale=None,
    replica_config=None,
    backend: str | None = None,
    **overrides,
):
    """Stand up a :class:`~repro.serve.fleet.SecureServingFleet`.

    Parameters
    ----------
    model_factory:
        ``(ctx) -> SecureModel`` — deploys the served model on one
        replica's context; called once per replica.
    replicas:
        Initial replica count (replica *i* runs with ``seed + i``).
    config / **overrides:
        Base configuration plus :meth:`FrameworkConfig.but` overrides,
        exactly like :func:`session`.
    placement:
        ``"hash"``, ``"least-depth"``, or a
        :class:`~repro.serve.placement.PlacementPolicy` instance.
    autoscale:
        Optional :class:`~repro.serve.autoscale.AutoscalePolicy` to
        scale on p95 latency watermarks.
    replica_config:
        Optional ``(index, base_config) -> FrameworkConfig`` hook for
        per-replica config shaping (chaos plans, pool sizes).
    backend:
        Protocol backend every replica runs (``"beaver2pc"`` default,
        ``"rep3"`` for dealer-free 3-party replicated sharing); the
        fleet's shared :class:`~repro.serve.dealer.DealerService`
        no-ops for dealer-free replicas.
    """
    from repro.serve.fleet import SecureServingFleet

    cfg = config or FrameworkConfig()
    if backend is not None:
        overrides["backend"] = backend
    if overrides:
        cfg = cfg.but(**overrides)
    return SecureServingFleet(
        model_factory,
        replicas=replicas,
        config=cfg,
        replica_config=replica_config,
        placement=placement,
        max_batch=max_batch,
        max_wait_s=max_wait_s,
        queue_rows=queue_rows,
        request_retries=request_retries,
        audit=audit,
        autoscale=autoscale,
    )
