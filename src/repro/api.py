"""The blessed entry point: ``repro.api.session``.

One call wires the whole paper deployment — client, two servers,
simulated GPUs, channels, compressors, telemetry — and hands back the
:class:`~repro.core.context.SecureContext` everything else hangs off::

    import repro

    ctx = repro.api.session()                                  # ParSecureML defaults
    ctx = repro.api.session(config=repro.FrameworkConfig.secureml())   # baseline
    ctx = repro.api.session(trace=True, compression=False)     # keyword overrides

    model = repro.SecureMLP(ctx, n_features=784)
    report = repro.SecureTrainer(ctx, model).train(x, y, max_batches=2)
    print(ctx.telemetry.report())

Keyword overrides are applied with :meth:`FrameworkConfig.but`, so any
field of :class:`~repro.core.config.FrameworkConfig` can be tweaked
without building the config by hand.
"""

from __future__ import annotations

from repro.core.config import FrameworkConfig
from repro.core.context import SecureContext

__all__ = ["session"]


def session(config: FrameworkConfig | None = None, **overrides) -> SecureContext:
    """Create a fully wired :class:`SecureContext`.

    Parameters
    ----------
    config:
        Base configuration; defaults to ``FrameworkConfig()`` (the
        ParSecureML preset).
    **overrides:
        Field overrides applied on top of ``config`` via
        :meth:`FrameworkConfig.but` (e.g. ``trace=True``,
        ``compression=False``, ``seed=7``).
    """
    cfg = config or FrameworkConfig()
    if overrides:
        cfg = cfg.but(**overrides)
    return SecureContext.create(cfg)
