"""Two-party-computation substrate.

This package implements the cryptographic core that both SecureML (the
baseline) and ParSecureML (the accelerated framework) run on:

* :mod:`repro.mpc.shares` — additive secret sharing over Z_{2^64};
* :mod:`repro.mpc.prandom` — thread-safe pools of random generators (the
  per-thread MT19937 design of paper Section 5.1, realised with NumPy
  bit generators);
* :mod:`repro.mpc.triplets` — Beaver multiplication triplets for matrix,
  elementwise, and convolution products (the client/offline phase);
* :mod:`repro.mpc.pool` — batched offline provisioning: a shape-keyed
  triplet bank refilled by fused dealer batches;
* :mod:`repro.mpc.protocol` — the online masked-multiplication protocol
  (paper Eqs. 4-8), independent of any transport;
* :mod:`repro.mpc.comparison` — dealer-assisted secure comparison used by
  the piecewise-linear activation (paper Eq. 9).
"""

from repro.mpc.shares import share_secret, reconstruct, SharePair
from repro.mpc.prandom import ThreadSafeGeneratorPool, parallel_uniform_ring
from repro.mpc.triplets import (
    MatrixTriplet,
    ElementwiseTriplet,
    TripletDealer,
)
from repro.mpc.pool import TripletPool, TripletRequest, matmul_stream, hadamard_stream
from repro.mpc.protocol import (
    masked_difference,
    combine_masked,
    beaver_matmul_share,
    beaver_elementwise_share,
    secure_matmul_plain,
)
from repro.mpc.comparison import ComparisonDealer, secure_ge_const

__all__ = [
    "share_secret",
    "reconstruct",
    "SharePair",
    "ThreadSafeGeneratorPool",
    "parallel_uniform_ring",
    "MatrixTriplet",
    "ElementwiseTriplet",
    "TripletDealer",
    "TripletPool",
    "TripletRequest",
    "matmul_stream",
    "hadamard_stream",
    "masked_difference",
    "combine_masked",
    "beaver_matmul_share",
    "beaver_elementwise_share",
    "secure_matmul_plain",
    "ComparisonDealer",
    "secure_ge_const",
]
