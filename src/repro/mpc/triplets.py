"""Beaver multiplication triplets — the offline phase (paper Eqs. 2-3).

The client (trusted dealer, exactly the role the paper gives it) samples
random masks ``U`` (shaped like the left operand) and ``V`` (shaped like
the right operand), computes ``Z = U (*) V`` where ``(*)`` is the product
the online phase will perform (matrix product, elementwise product, or a
convolution realised as a matrix product), and additively shares all
three among the two servers.

``Z = U x V`` is the dominant cost of the offline phase (paper Section
4.2 measures it above 90%); the dealer therefore accepts a ``matmul``
callable so the framework can route that one product through the
simulated GPU while leaving the cheap sampling on the CPU — the paper's
offline acceleration design.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Callable

import numpy as np

from repro.fixedpoint.ring import RING_DTYPE, ring_matmul, ring_mul
from repro.mpc.prandom import ThreadSafeGeneratorPool, parallel_uniform_ring
from repro.mpc.shares import SharePair, share_secret
from repro.telemetry.registry import MetricRegistry
from repro.util.errors import ProtocolError, ShapeError

# Monotonic identity for dealer triplets.  Caches that stage triplet
# material on devices key their entries by this uid rather than id():
# a uid is never recycled, so a regenerated triplet can never be
# mistaken for the object it replaced.
_TRIPLET_UIDS = itertools.count(1)


def _next_triplet_uid() -> int:
    return next(_TRIPLET_UIDS)


@dataclass
class TripletShare:
    """One server's share of a Beaver triplet: (U_i, V_i, Z_i)."""

    u: np.ndarray
    v: np.ndarray
    z: np.ndarray
    party_id: int
    consumed: bool = False
    label: str = ""  # op stream this share was issued to (diagnostics)
    backend: str = "beaver2pc"  # protocol backend that owns the material

    def mark_consumed(self) -> None:
        """Flag this share as used; reuse is a protocol violation."""
        if self.consumed:
            if self.label:
                raise ProtocolError(
                    f"[{self.backend}] Beaver triplet for op stream '{self.label}' "
                    f"consumed twice in one batch; each op stream may use its cached "
                    f"triplet once per online step"
                )
            raise ProtocolError(
                f"[{self.backend}] Beaver triplet share reused; "
                f"each triplet is single-use"
            )
        self.consumed = True


class _EpochShareMixin:
    """Per-batch share bookkeeping shared by the two triplet kinds.

    ``begin_use(epoch, label)`` is called by the context when an op
    stream fetches its cached triplet.  Within one online step (same
    epoch) repeated ``share_for`` calls hand back the *same*
    :class:`TripletShare` objects, so a second op consuming the stream's
    material in the same batch trips ``mark_consumed`` with a labelled
    error instead of silently reusing masks.  With no epoch tracking
    (standalone use, ``fresh_triplets``) every call issues fresh shares,
    the historical behaviour.
    """

    def begin_use(self, epoch: int | None, label: str | None = None) -> None:
        if label:
            self.label = label
        if epoch is None or epoch != self._epoch:
            self._epoch = epoch
            self._issued.clear()

    def share_for(self, party_id: int) -> TripletShare:
        """Extract the share bundle destined for one server."""
        share = self._issued.get(party_id)
        if share is None:
            share = TripletShare(
                u=self.u[party_id],
                v=self.v[party_id],
                z=self.z[party_id],
                party_id=party_id,
                label=self.label or "",
                backend=getattr(self, "backend", "beaver2pc"),
            )
            if self._epoch is not None:
                self._issued[party_id] = share
        return share


@dataclass
class MatrixTriplet(_EpochShareMixin):
    """Dealer-side triplet for a matrix product of shape (m,k) x (k,n)."""

    u: SharePair
    v: SharePair
    z: SharePair
    shape_a: tuple[int, int]
    shape_b: tuple[int, int]
    label: str | None = None
    backend: str = "beaver2pc"
    uid: int = field(default_factory=_next_triplet_uid, compare=False)
    _epoch: int | None = field(default=None, repr=False, compare=False)
    _issued: dict = field(default_factory=dict, repr=False, compare=False)


@dataclass
class ElementwiseTriplet(_EpochShareMixin):
    """Dealer-side triplet for an elementwise (Hadamard) product."""

    u: SharePair
    v: SharePair
    z: SharePair
    shape: tuple[int, ...]
    label: str | None = None
    backend: str = "beaver2pc"
    uid: int = field(default_factory=_next_triplet_uid, compare=False)
    _epoch: int | None = field(default=None, repr=False, compare=False)
    _issued: dict = field(default_factory=dict, repr=False, compare=False)


class TripletDealer:
    """Client-side triplet factory (the offline phase).

    Parameters
    ----------
    rng:
        Generator used for the share-splitting randomness.
    pool:
        Optional :class:`ThreadSafeGeneratorPool` for parallel mask
        sampling (Section 5.1); falls back to ``rng`` when omitted.
    matmul:
        The ring matmul used to form ``Z = U @ V``; inject the simulated
        GPU's GEMM here to reproduce the paper's offline acceleration.
    telemetry:
        Optional :class:`~repro.telemetry.Telemetry` whose registry
        receives ``mpc.triplets_generated{kind,shape,source="dealer"}``;
        :attr:`triplets_issued` / :attr:`mask_bytes_generated` stay
        available as thin views.
    """

    def __init__(
        self,
        rng: np.random.Generator,
        *,
        pool: ThreadSafeGeneratorPool | None = None,
        matmul: Callable[[np.ndarray, np.ndarray], np.ndarray] = ring_matmul,
        telemetry=None,
    ):
        self._rng = rng
        self._pool = pool
        self._matmul = matmul
        registry = telemetry.registry if telemetry is not None else MetricRegistry()
        self._generated = registry.counter(
            "mpc.triplets_generated", "Beaver triplets produced offline, by kind and shape"
        )
        self._mask_bytes = registry.counter(
            "mpc.mask_bytes_generated", "bytes of random mask material sampled"
        )

    @property
    def triplets_issued(self) -> int:
        return int(self._generated.value(source="dealer"))

    @property
    def mask_bytes_generated(self) -> int:
        return int(self._mask_bytes.value(source="dealer"))

    def _uniform(self, shape: tuple[int, ...]) -> np.ndarray:
        self._mask_bytes.inc(int(np.prod(shape)) * 8, source="dealer")
        if self._pool is not None and len(shape) >= 2:
            return parallel_uniform_ring(shape, self._pool)
        return self._rng.integers(0, 2**64, size=shape, dtype=np.uint64)

    def matrix_triplet(self, shape_a: tuple[int, int], shape_b: tuple[int, int]) -> MatrixTriplet:
        """Generate one triplet for a product of the given operand shapes."""
        if len(shape_a) != 2 or len(shape_b) != 2:
            raise ShapeError(f"matrix triplet needs 2-D shapes, got {shape_a} and {shape_b}")
        if shape_a[1] != shape_b[0]:
            raise ShapeError(
                f"triplet operand shapes incompatible for matmul: {shape_a} x {shape_b}"
            )
        u = self._uniform(shape_a)
        v = self._uniform(shape_b)
        z = self._matmul(u, v)
        self._generated.inc(
            1, kind="matrix", shape=f"{tuple(shape_a)}x{tuple(shape_b)}", source="dealer"
        )
        return MatrixTriplet(
            u=share_secret(u, self._rng),
            v=share_secret(v, self._rng),
            z=share_secret(z, self._rng),
            shape_a=tuple(shape_a),
            shape_b=tuple(shape_b),
        )

    def elementwise_triplet(self, shape: tuple[int, ...]) -> ElementwiseTriplet:
        """Generate one triplet for an elementwise product of ``shape``."""
        u = self._uniform(tuple(shape))
        v = self._uniform(tuple(shape))
        z = ring_mul(u, v)
        self._generated.inc(1, kind="elementwise", shape=str(tuple(shape)), source="dealer")
        return ElementwiseTriplet(
            u=share_secret(u, self._rng),
            v=share_secret(v, self._rng),
            z=share_secret(z, self._rng),
            shape=tuple(shape),
        )
