"""Background Beaver-triplet pool — batched offline provisioning.

The paper's offline phase generates one triplet per secure product, each
paying its own mask draw, its own ``Z = U x V`` product, and its own
client->server upload.  Those per-triplet fixed costs (curand setup,
kernel launches, PCIe and channel latency) dominate for the small
matrices real layers produce.  :class:`TripletPool` amortises them:
demand for many same-shaped triplets is collected into *requests*,
generated in fused batches — one stacked ``(B,m,k) x (B,k,n)`` ring GEMM
and one vectorised mask draw per refill chunk — and handed out one at a
time as the online phase consumes them.

The pool is deliberately passive: it owns no RNG, no devices and no
clocks.  The :class:`~repro.core.context.SecureContext` injects two
batch generators (which charge the offline clock, route the fused GEMM
through the simulated GPU, and upload the whole chunk in one message)
and calls :meth:`provision` from a model's ``offline_plan`` — so refills
run on the offline clock, overlapping the online phase by construction
of the two-clock simulation.

Telemetry (registered on the injected registry):

* ``mpc.pool.hits`` / ``mpc.pool.misses`` — counters, labelled by kind;
  a miss means the consumer fell back to synchronous generation.
* ``mpc.pool.refills`` — counter of fused generation calls.
* ``mpc.pool.stocked`` — gauge of triplets currently banked.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Callable, Mapping, Sequence

from repro.mpc.triplets import ElementwiseTriplet, MatrixTriplet
from repro.telemetry.registry import MetricRegistry
from repro.util.errors import ConfigError, ShapeError

MatrixKey = tuple[tuple[int, int], tuple[int, int]]
ElementwiseKey = tuple[int, ...]


@dataclass(frozen=True)
class TripletRequest:
    """One op stream's demand for a single Beaver triplet.

    ``kind`` is ``"matrix"`` (shapes = (shape_a, shape_b)) or
    ``"elementwise"`` (shapes = (shape,)).  Models emit a list of these
    from ``offline_plan`` — the exact per-step triplet demand.
    """

    kind: str
    shapes: tuple

    def __post_init__(self):
        if self.kind not in ("matrix", "elementwise"):
            raise ConfigError(f"unknown triplet request kind: {self.kind!r}")


def matmul_stream(shape_a: tuple[int, int], shape_b: tuple[int, int]) -> TripletRequest:
    """Demand one matrix triplet for an (m,k) x (k,n) product."""
    if len(shape_a) != 2 or len(shape_b) != 2 or shape_a[1] != shape_b[0]:
        raise ShapeError(f"matmul_stream shapes incompatible: {shape_a} x {shape_b}")
    return TripletRequest(kind="matrix", shapes=(tuple(shape_a), tuple(shape_b)))


def hadamard_stream(shape: tuple[int, ...]) -> TripletRequest:
    """Demand one elementwise triplet of the given shape."""
    return TripletRequest(kind="elementwise", shapes=(tuple(shape),))


class TripletPool:
    """Shape-keyed bank of pre-generated triplets with fused refills.

    Parameters
    ----------
    generate_matrix_batch:
        ``(shape_a, shape_b, count) -> list[MatrixTriplet]`` — must
        produce ``count`` independent triplets in one fused pass.
    generate_elementwise_batch:
        ``(shape, count) -> list[ElementwiseTriplet]`` — likewise.
    max_batch:
        Upper bound on the fused batch size (the ``--pool-size`` knob);
        demand beyond it is generated in multiple chunks.
    telemetry:
        Optional :class:`~repro.telemetry.Telemetry` for the pool
        counters; a private registry is used when omitted.
    """

    def __init__(
        self,
        generate_matrix_batch: Callable[[tuple, tuple, int], list[MatrixTriplet]],
        generate_elementwise_batch: Callable[[tuple, int], list[ElementwiseTriplet]],
        *,
        max_batch: int,
        telemetry=None,
    ):
        if max_batch < 1:
            raise ConfigError(f"pool max_batch must be >= 1, got {max_batch}")
        self._gen_matrix = generate_matrix_batch
        self._gen_elementwise = generate_elementwise_batch
        self.max_batch = int(max_batch)
        registry = telemetry.registry if telemetry is not None else MetricRegistry()
        self._hits = registry.counter("mpc.pool.hits", "triplet requests served from the pool")
        self._misses = registry.counter(
            "mpc.pool.misses", "triplet requests that fell back to synchronous generation"
        )
        self._refills = registry.counter("mpc.pool.refills", "fused batch generation calls")
        self._stocked = registry.gauge("mpc.pool.stocked", "triplets currently banked in the pool")
        self._matrix: dict[MatrixKey, deque[MatrixTriplet]] = {}
        self._elementwise: dict[ElementwiseKey, deque[ElementwiseTriplet]] = {}

    # -- provisioning -----------------------------------------------------------

    def provision(self, requests: Sequence[TripletRequest]) -> int:
        """Generate triplets for ``requests`` in fused, shape-grouped batches.

        Demand is grouped by (kind, shape signature) and each group is
        generated in chunks of at most :attr:`max_batch` — every chunk is
        one fused mask draw + one batched ring GEMM + one upload on the
        generator side.  Returns the number of triplets banked.
        """
        demand: dict[tuple, int] = {}
        for req in requests:
            key = (req.kind, req.shapes)
            demand[key] = demand.get(key, 0) + 1
        return self.provision_demand(demand)

    def provision_demand(self, demand: Mapping[tuple, int]) -> int:
        """Generate triplets for pre-aggregated demand counts.

        The multi-consumer entry point: a coordinator (e.g. the fleet's
        :class:`~repro.serve.dealer.DealerService`) that has already
        merged many consumers' ``offline_plan`` requests into
        ``{(kind, shapes): count}`` maps provisions here directly,
        without materialising one :class:`TripletRequest` per triplet.
        Fusing is identical to :meth:`provision`.
        """
        banked = 0
        for (kind, shapes), count in demand.items():
            remaining = count
            while remaining > 0:
                chunk = min(remaining, self.max_batch)
                if kind == "matrix":
                    shape_a, shape_b = shapes
                    triplets = self._gen_matrix(shape_a, shape_b, chunk)
                    bucket = self._matrix.setdefault((shape_a, shape_b), deque())
                else:
                    (shape,) = shapes
                    triplets = self._gen_elementwise(shape, chunk)
                    bucket = self._elementwise.setdefault(shape, deque())
                if len(triplets) != chunk:
                    raise ConfigError(
                        f"pool generator returned {len(triplets)} triplets, expected {chunk}"
                    )
                bucket.extend(triplets)
                self._refills.inc(1, kind=kind)
                banked += chunk
                remaining -= chunk
        self._update_stock()
        return banked

    # -- consumption ------------------------------------------------------------

    def take_matrix(
        self, shape_a: tuple[int, int], shape_b: tuple[int, int]
    ) -> MatrixTriplet | None:
        """Pop a banked matrix triplet, or ``None`` on pool exhaustion."""
        bucket = self._matrix.get((tuple(shape_a), tuple(shape_b)))
        if not bucket:
            self._misses.inc(1, kind="matrix")
            return None
        triplet = bucket.popleft()
        self._hits.inc(1, kind="matrix")
        self._update_stock()
        return triplet

    def take_elementwise(self, shape: tuple[int, ...]) -> ElementwiseTriplet | None:
        """Pop a banked elementwise triplet, or ``None`` on pool exhaustion."""
        bucket = self._elementwise.get(tuple(shape))
        if not bucket:
            self._misses.inc(1, kind="elementwise")
            return None
        triplet = bucket.popleft()
        self._hits.inc(1, kind="elementwise")
        self._update_stock()
        return triplet

    # -- introspection ----------------------------------------------------------

    def stock_for(self, kind: str, shapes: tuple) -> int:
        """Triplets currently banked for one (kind, shapes) signature.

        Coordinators use this to top up only the shortfall between a
        consumer's declared demand and what is already banked.
        """
        if kind == "matrix":
            shape_a, shape_b = shapes
            bucket = self._matrix.get((tuple(shape_a), tuple(shape_b)))
        else:
            (shape,) = shapes
            bucket = self._elementwise.get(tuple(shape))
        return len(bucket) if bucket else 0

    def stock(self) -> int:
        """Total triplets currently banked, across every shape."""
        return sum(len(d) for d in self._matrix.values()) + sum(
            len(d) for d in self._elementwise.values()
        )

    def _update_stock(self) -> None:
        self._stocked.set(self.stock())
