"""Additive secret sharing over Z_{2^64}.

A secret matrix ``X`` (already fixed-point encoded into the ring) is split
as ``X = X0 + X1 (mod 2^64)`` where ``X0`` is uniform over the ring.  Each
single share is therefore statistically independent of the secret — the
property the paper's security argument (and our tests) rest on.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.fixedpoint.ring import RING_DTYPE, ring_add, ring_sub
from repro.util.errors import ProtocolError, ShapeError


def _uniform_ring(shape, rng: np.random.Generator) -> np.ndarray:
    """Sample uniformly from Z_{2^64} with the given generator."""
    # Generator.integers is exclusive of high and capped at int64 range
    # unless dtype=uint64 is given with high=2**64 via the 'high=None'
    # trick; drawing raw 64-bit words is both uniform and fast.
    return rng.integers(0, 2**64, size=shape, dtype=np.uint64)


@dataclass
class SharePair:
    """The two additive shares of one secret, as held by the client.

    The client produces a :class:`SharePair` and sends ``share0`` to
    server 0 and ``share1`` to server 1; the pair object itself never
    travels.
    """

    share0: np.ndarray
    share1: np.ndarray

    def __post_init__(self):
        if self.share0.shape != self.share1.shape:
            raise ShapeError(
                f"share shapes differ: {self.share0.shape} vs {self.share1.shape}"
            )
        if self.share0.dtype != RING_DTYPE or self.share1.dtype != RING_DTYPE:
            raise ProtocolError("shares must be uint64 ring elements")

    @property
    def shape(self):
        return self.share0.shape

    def __getitem__(self, party_id: int) -> np.ndarray:
        if party_id == 0:
            return self.share0
        if party_id == 1:
            return self.share1
        raise ProtocolError(f"party_id must be 0 or 1, got {party_id}")


def share_secret(secret: np.ndarray, rng: np.random.Generator) -> SharePair:
    """Split a ring-encoded secret into two additive shares.

    ``share0`` is sampled uniformly; ``share1 = secret - share0``.
    """
    secret = np.asarray(secret, dtype=RING_DTYPE)
    share0 = _uniform_ring(secret.shape, rng)
    share1 = ring_sub(secret, share0)
    return SharePair(share0=share0, share1=share1)


def reconstruct(share0: np.ndarray, share1: np.ndarray) -> np.ndarray:
    """Recombine two additive shares into the secret (client-side)."""
    if share0.shape != share1.shape:
        raise ShapeError(f"cannot reconstruct: shapes {share0.shape} vs {share1.shape}")
    return ring_add(share0, share1)
