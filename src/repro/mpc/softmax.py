"""Secure row-wise softmax from the backend's multiply/compare primitives.

Morse-STF's recipe (PAPERS.md): a limit-style exponential approximation
plus secure normalization, composed entirely from ops every
:class:`~repro.protocols.ProtocolBackend` already provides — so one
generic protocol serves ``beaver2pc`` and ``rep3`` (and any third-party
registration) behind the registry.  For a shared logit matrix ``X`` of
shape ``(b, d)`` the pipeline is:

1. **row max** — a tournament tree of ``ceil(log2 d)`` levels; each level
   compares column pairs (``bit = [l - r >= 0]``) and selects
   ``max = bit * (l - r) + r``.  Fixed x indicator products carry single
   scale, so every level is *exact*: the result is bit-for-bit one of
   the row's entries.
2. **shift + clamp** — ``z = x - rowmax`` (local), then ``z`` is clamped
   to ``[-C, 0]`` with one more compare/select (``C`` =
   :data:`SOFTMAX_CLAMP`).  True softmax weight of a clamped entry is
   below ``e^-C``, so the clamp costs at most ``e^-C`` per entry.
3. **exp by squaring** — ``exp(z) ~= (1 + u + u^2/2)^(2^m)`` with
   ``u = z / 2^m`` and ``m`` = :data:`SOFTMAX_SQUARINGS` secure
   squarings (one Hadamard for ``u^2``, then ``m`` squaring Hadamards,
   each with one truncation).  The degree-2 Taylor base keeps the
   squaring chain short: truncation noise injected at squaring ``i`` is
   amplified by at most ``2^(m-i)``, so a small ``m`` bounds the
   fixed-point error, while the base's cubic remainder keeps the
   analytic error ``<= max_z e^z |z|^3 / (6 * 4^m) <= 0.23 / 4^m`` on
   ``[-C, 0]`` (a plain ``(1 + z/2^r)^(2^r)`` limit form would need
   ``r = 10`` squarings for the same analytic error and amplify
   truncation noise ~1000x).
4. **row sum** — local (transpose + column sums); ``s`` lands in
   ``[~1, d]`` because the max entry contributes exactly 1.
5. **reciprocal** — Newton-Raphson ``y <- y (2 - s y)`` seeded with the
   public midpoint ``y0 = 2 / (d + 1)``, which guarantees
   ``|1 - s y0| <= (d-1)/(d+1) < 1`` and hence quadratic convergence;
   the iteration count is derived from that public bound
   (:func:`newton_iterations`).  The first step is a public-scalar
   multiply; each later step is two elementwise triplets.
6. **normalize** — one final Hadamard ``softmax = exp * recip``.

Everything interactive is an elementwise-triplet or comparison stream,
so the exact offline demand is a list of ``hadamard_stream`` requests
(:func:`plan_softmax_streams`) — comparisons are not pooled, matching
the activation layers.

:func:`softmax_reference` mirrors the identical composition in float64.
The plain twins use it, so the conformance sweep measures *fixed-point*
error only; the analytic approximation-vs-true-softmax bound is
:func:`softmax_error_bound`, asserted by the property tests.
"""

from __future__ import annotations

import math

import numpy as np

from repro.core import ops
from repro.core.tensor import SharedTensor
from repro.mpc.pool import TripletRequest, hadamard_stream
from repro.util.errors import ProtocolError, ShapeError

__all__ = [
    "SOFTMAX_CLAMP",
    "SOFTMAX_SQUARINGS",
    "newton_iterations",
    "plan_softmax_streams",
    "softmax_error_bound",
    "softmax_protocol",
    "softmax_reference",
]

#: Logits more than this far below their row max are clamped; the true
#: softmax weight of such an entry is below e^-8 ~= 3.4e-4.
SOFTMAX_CLAMP = 8.0

#: m in exp(z) ~= (1 + u + u^2/2)^(2^m), u = z/2^m.  2^m = 32 keeps the
#: Taylor remainder under 2.3e-4 on [-SOFTMAX_CLAMP, 0] while capping
#: squaring-chain noise amplification at 2^m.
SOFTMAX_SQUARINGS = 5


def newton_iterations(d: int, frac_bits: int) -> int:
    """Newton steps needed for 1/s, s in [1, d], at 2^-frac_bits error.

    With the public seed ``y0 = 2/(d+1)`` the relative error starts at
    ``q = (d-1)/(d+1) < 1`` and squares every step; we iterate until
    ``q^(2^k) <= 2^-frac_bits``.  Public arithmetic on public bounds —
    the iteration count leaks only the (public) row width.
    """
    if d < 1:
        raise ShapeError(f"softmax row width must be >= 1, got {d}")
    q = (d - 1) / (d + 1)
    if q <= 0.0:
        return 1
    ratio = math.log(2.0**-frac_bits) / math.log(q)
    return max(1, math.ceil(math.log2(ratio)))


def _local(x: SharedTensor, shares, *, kind=None) -> SharedTensor:
    """A new tensor from locally transformed shares (tasks carried over)."""
    return SharedTensor(
        ctx=x.ctx,
        shares=tuple(np.ascontiguousarray(s) for s in shares),
        kind=kind or x.kind,
        tasks=x.tasks,
    )


def _col_slice(x: SharedTensor, lo: int, hi: int) -> SharedTensor:
    return _local(x, (s[:, lo:hi] for s in x.shares))


def _concat_cols(a: SharedTensor, b: SharedTensor) -> SharedTensor:
    out = _local(a, (np.concatenate([sa, sb], axis=1) for sa, sb in zip(a.shares, b.shares)))
    tasks = []
    for ta, tb in zip(a.tasks, b.tasks):
        deps = [t for t in (ta, tb) if t is not None]
        if len(deps) == 2:
            tasks.append(a.ctx.online_clock.join(deps))
        else:
            tasks.append(deps[0] if deps else None)
    out.tasks = tuple(tasks)
    return out


def _sum_cols(x: SharedTensor) -> SharedTensor:
    """Row sums (b, 1) — local linear, like sum_rows but along axis 1."""
    return x.T.sum_rows().T


def _bcast_cols(x: SharedTensor, d: int) -> SharedTensor:
    """Tile a (b, 1) tensor to (b, d) — local linear."""
    return x.T.broadcast_rows(d).T


def _row_max(x: SharedTensor, *, label: str) -> SharedTensor:
    """Exact secure row max via a pairwise tournament (see module doc)."""
    work = x
    level = 0
    while work.shape[1] > 1:
        w = work.shape[1]
        h = w // 2
        left = _col_slice(work, 0, h)
        right = _col_slice(work, h, 2 * h)
        diff = left - right
        bit = ops.secure_compare_const(diff, 0.0, label=f"{label}/max{level}/ge")
        # fixed x indicator keeps single scale: the select is exact.
        best = ops.secure_elementwise_mul(diff, bit, label=f"{label}/max{level}/sel") + right
        work = _concat_cols(best, _col_slice(work, 2 * h, w)) if w > 2 * h else best
        level += 1
    return work


def softmax_protocol(ctx, x: SharedTensor, *, label: str) -> SharedTensor:
    """Row-wise softmax of a shared (b, d) fixed-point matrix."""
    if x.ndim != 2:
        raise ShapeError(f"[{label}] softmax expects a 2-D tensor, got {x.shape}")
    if x.kind != "fixed":
        raise ProtocolError(f"[{label}] softmax expects a fixed-point tensor")
    b, d = x.shape
    frac = ctx.encoder.frac_bits
    r = SOFTMAX_SQUARINGS
    c = SOFTMAX_CLAMP

    # 1-2. shift by the exact row max, clamp to [-C, 0].
    z = x - _bcast_cols(_row_max(x, label=label), d)
    keep = ops.secure_compare_const(z, -c, label=f"{label}/clamp/ge")
    z = ops.secure_elementwise_mul(
        z.add_public(c), keep, label=f"{label}/clamp/sel"
    ).add_public(-c)

    # 3. exp(z) ~= (1 + u + u^2/2)^(2^m) by m secure squarings.
    u = z.mul_public(1.0 / 2**r)
    u2 = ops.secure_elementwise_mul(u, u, label=f"{label}/exp/base")
    p = (u + u2.mul_public(0.5)).add_public(1.0)
    for i in range(r):
        p = ops.secure_elementwise_mul(p, p, label=f"{label}/exp{i}")

    # 4-5. row sums and their Newton reciprocal from the public seed.
    s = _sum_cols(p)
    y0 = 2.0 / (d + 1)
    y = s.mul_public(-y0 * y0).add_public(2.0 * y0)
    for i in range(1, newton_iterations(d, frac)):
        t = ops.secure_elementwise_mul(s, y, label=f"{label}/recip{i}a")
        y = ops.secure_elementwise_mul(y, (-t).add_public(2.0), label=f"{label}/recip{i}b")

    # 6. normalize.
    return ops.secure_elementwise_mul(p, _bcast_cols(y, d), label=f"{label}/norm")


def plan_softmax_streams(batch: int, d: int, frac_bits: int) -> list[TripletRequest]:
    """Exact elementwise-triplet demand of one softmax invocation.

    Mirrors :func:`softmax_protocol` step for step (comparisons are not
    pooled, matching the activation layers' plans).
    """
    requests: list[TripletRequest] = []
    w = d
    while w > 1:  # tournament selects
        h = w // 2
        requests.append(hadamard_stream((batch, h)))
        w = h + (w - 2 * h)
    requests.append(hadamard_stream((batch, d)))  # clamp select
    requests.append(hadamard_stream((batch, d)))  # u^2 Taylor base
    requests.extend(hadamard_stream((batch, d)) for _ in range(SOFTMAX_SQUARINGS))
    for _ in range(1, newton_iterations(d, frac_bits)):
        requests.append(hadamard_stream((batch, 1)))  # s * y
        requests.append(hadamard_stream((batch, 1)))  # y * (2 - s y)
    requests.append(hadamard_stream((batch, d)))  # normalize
    return requests


def softmax_reference(logits: np.ndarray, *, frac_bits: int = 13) -> np.ndarray:
    """The protocol's composition in exact float64 (the plain twin).

    Same clamp, same limit-form exponential, same Newton reciprocal —
    so secure-vs-reference differences are pure fixed-point noise, which
    is what the conformance sweep holds to tolerance.
    """
    z = np.asarray(logits, dtype=np.float64)
    if z.ndim != 2:
        raise ShapeError(f"softmax_reference expects 2-D logits, got {z.shape}")
    d = z.shape[1]
    z = z - z.max(axis=1, keepdims=True)
    z = np.maximum(z, -SOFTMAX_CLAMP)
    u = z / 2**SOFTMAX_SQUARINGS
    p = 1.0 + u + 0.5 * u * u
    for _ in range(SOFTMAX_SQUARINGS):
        p = p * p
    s = p.sum(axis=1, keepdims=True)
    y0 = 2.0 / (d + 1)
    y = y0 * (2.0 - s * y0)
    for _ in range(1, newton_iterations(d, frac_bits)):
        y = y * (2.0 - s * y)
    return p * y


def softmax_error_bound(d: int, frac_bits: int) -> float:
    """Documented max-abs-error bound vs *true* softmax (see DESIGN §7).

    Analytic part: the Taylor-base exp error (``<= 0.23 / 4^m`` on the
    clamped range) plus the clamp itself (``<= e^-C`` per entry), each
    amplified at most ``d + 1`` times through the normalization.
    Fixed-point part: truncation injects ~``2^-frac_bits`` per
    interactive multiply; noise entering the squaring chain is amplified
    up to ``2^m`` by the remaining squarings, so the chain contributes
    ``<= 2^(m+1)`` ulps and the Newton/normalize tail a few more — the
    factor 4 on top is safety margin for the signed-noise worst case.
    """
    m = SOFTMAX_SQUARINGS
    analytic = (d + 1) * (0.23 / 4**m + math.exp(-SOFTMAX_CLAMP))
    ulps = 2.0 ** (m + 1) + 2 * newton_iterations(d, frac_bits) + 6
    fixed_point = 4.0 * ulps * 2.0**-frac_bits
    return analytic + fixed_point
