"""The online masked-multiplication protocol (paper Eqs. 4-8).

Per multiplication, each server ``i`` holding shares ``A_i, B_i`` and a
triplet share ``(U_i, V_i, Z_i)``:

1. computes the masked differences ``E_i = A_i - U_i`` and
   ``F_i = B_i - V_i``                      (Eq. 4, local);
2. exchanges them with the peer and forms ``E = E0 + E1``,
   ``F = F0 + F1``                          (Eq. 5, one communication
   round — the *reconstruct* step the paper keeps on the CPU);
3. computes its output share              (Eq. 6):

       C_i = (-i) * E @ F + A_i @ F + E @ B_i + Z_i

   which the paper rewrites as the two-GEMM form (Eq. 8):

       C_i = [ ((-i) * E + A_i)  |  E ] @ [ F ; B_i ] + Z_i

   — one fewer GEMM launch, and the block structure is what pipeline 1
   (Fig. 5) overlaps with PCIe transfers.

``E`` and ``F`` reveal nothing: they are the secrets one-time-padded by
the uniform masks ``U, V``.

Everything here is transport-agnostic pure computation; wiring the
exchange over a channel lives in :mod:`repro.core` and
:mod:`repro.baselines`.
"""

from __future__ import annotations

from typing import Callable

import numpy as np

from repro.fixedpoint.ring import ring_add, ring_matmul, ring_mul, ring_neg, ring_sub
from repro.mpc.triplets import TripletShare
from repro.util.errors import ProtocolError, ShapeError


def masked_difference(share: np.ndarray, mask_share: np.ndarray) -> np.ndarray:
    """Eq. 4: ``E_i = A_i - U_i`` (likewise for F). Local, cheap."""
    if share.shape != mask_share.shape:
        raise ShapeError(
            f"share/mask shape mismatch: {share.shape} vs {mask_share.shape}"
        )
    return ring_sub(share, mask_share)


def combine_masked(local: np.ndarray, remote: np.ndarray) -> np.ndarray:
    """Eq. 5: ``E = E_0 + E_1`` after the exchange round."""
    if local.shape != remote.shape:
        raise ShapeError(f"combine shape mismatch: {local.shape} vs {remote.shape}")
    return ring_add(local, remote)


def beaver_matmul_share(
    party_id: int,
    e: np.ndarray,
    f: np.ndarray,
    a_share: np.ndarray,
    b_share: np.ndarray,
    triplet: TripletShare,
    *,
    matmul: Callable[[np.ndarray, np.ndarray], np.ndarray] = ring_matmul,
    use_fused_form: bool = True,
) -> np.ndarray:
    """Compute ``C_i`` for a matrix product (Eq. 6 / Eq. 8).

    Parameters
    ----------
    matmul:
        Ring GEMM to use; the framework injects the simulated GPU GEMM
        here (the paper's *GPU operation* step), baselines pass the CPU
        one.
    use_fused_form:
        When True use the two-operand concatenated form of Eq. 8 (one
        GEMM of shape (m, k+k) x (k+k, n)); otherwise the three-GEMM
        Eq. 6. Both are exact; Eq. 8 is the paper's optimisation.
    """
    if party_id not in (0, 1):
        raise ProtocolError(f"party_id must be 0 or 1, got {party_id}")
    if triplet.party_id != party_id:
        raise ProtocolError(
            f"triplet share belongs to party {triplet.party_id}, used by party {party_id}"
        )
    triplet.mark_consumed()
    if use_fused_form:
        # Eq. 8: left = [(-i)*E + A_i | E], right = [F ; B_i].
        lead = a_share if party_id == 0 else ring_sub(a_share, e)
        left = np.concatenate([lead, e], axis=1)
        right = np.concatenate([f, b_share], axis=0)
        return ring_add(matmul(left, right), triplet.z)
    # Eq. 6: C_i = (-i) E F + A_i F + E B_i + Z_i.
    c = ring_add(matmul(a_share, f), matmul(e, b_share))
    if party_id == 1:
        c = ring_sub(c, matmul(e, f))
    return ring_add(c, triplet.z)


def beaver_elementwise_share(
    party_id: int,
    e: np.ndarray,
    f: np.ndarray,
    a_share: np.ndarray,
    b_share: np.ndarray,
    triplet: TripletShare,
) -> np.ndarray:
    """Compute ``C_i`` for an elementwise (Hadamard) product.

    Same algebra as Eq. 6 with ``@`` replaced by ``*``; used by the CNN's
    point-to-point multiplications (paper Section 7.2) and by activation
    derivatives.
    """
    if party_id not in (0, 1):
        raise ProtocolError(f"party_id must be 0 or 1, got {party_id}")
    if triplet.party_id != party_id:
        raise ProtocolError(
            f"triplet share belongs to party {triplet.party_id}, used by party {party_id}"
        )
    triplet.mark_consumed()
    c = ring_add(ring_mul(a_share, f), ring_mul(e, b_share))
    if party_id == 1:
        c = ring_sub(c, ring_mul(e, f))
    return ring_add(c, triplet.z)


def secure_matmul_plain(
    a_pair,
    b_pair,
    triplet,
    *,
    label: str = "matmul",
    matmul: Callable = ring_matmul,
    use_fused_form: bool = True,
):
    """Run the whole two-server matmul protocol in-process (no transport).

    A reference driver used by tests and examples: takes the client's
    share pairs of ``A`` and ``B`` plus a dealer triplet, simulates both
    servers' local steps and the exchange, and returns ``(C_0, C_1)``.
    ``label`` names the op stream in diagnostics, matching the keyword
    every :mod:`repro.core.ops` entry point takes.
    """
    if triplet.shape_a != a_pair[0].shape or triplet.shape_b != b_pair[0].shape:
        raise ProtocolError(
            f"[{getattr(triplet, 'backend', 'beaver2pc')}] {label}: triplet shaped "
            f"{triplet.shape_a}x{triplet.shape_b} does not match "
            f"operands {a_pair[0].shape}x{b_pair[0].shape}"
        )
    shares = []
    # Step 1-2: masked differences and exchange.
    e_parts = [masked_difference(a_pair[i], triplet.u[i]) for i in (0, 1)]
    f_parts = [masked_difference(b_pair[i], triplet.v[i]) for i in (0, 1)]
    e = combine_masked(e_parts[0], e_parts[1])
    f = combine_masked(f_parts[0], f_parts[1])
    # Step 3: each server's output share.
    for i in (0, 1):
        shares.append(
            beaver_matmul_share(
                i,
                e,
                f,
                a_pair[i],
                b_pair[i],
                triplet.share_for(i),
                matmul=matmul,
                use_fused_form=use_fused_form,
            )
        )
    return shares[0], shares[1]
