"""Thread-safe parallel random-number generation (paper Section 5.1).

The paper's CPU optimisation gives every worker thread its *own* MT19937
generator held in thread-local storage, seeded from the time plus a hash
of the thread id, so no locking is needed and streams never collide.  We
reproduce the design with NumPy bit generators:

* each worker owns a private :class:`numpy.random.Generator`;
* worker streams are derived with ``SeedSequence.spawn`` — the modern,
  collision-free analogue of the paper's ``time + hash(thread_id)`` seed
  (which is reproducible here, unlike wall-clock seeding);
* generators are created once per pool and reused (the paper's
  ``static thread_local`` storage), never per call.

``parallel_uniform_ring`` is the user-facing helper: it fills a matrix
with uniform ring elements using the pool, partitioned in contiguous
row blocks — the cache-line-friendly schedule Section 5.1 prescribes
(each thread writes at least one full cache line, 16 float32 / 8 uint64,
so threads never share a line).
"""

from __future__ import annotations

import threading
from concurrent.futures import ThreadPoolExecutor

import numpy as np

from repro.util.errors import ConfigError

# One uint64 cache line on the paper's Xeon (64-byte lines).
CACHE_LINE_ELEMS = 8


class ThreadSafeGeneratorPool:
    """A fixed set of independent per-worker generators.

    The pool is safe to use from multiple threads concurrently: worker
    ``i`` only ever touches ``generator(i)``, and the streams are
    statistically independent by SeedSequence spawning.
    """

    def __init__(self, n_workers: int, seed: int = 0):
        if n_workers < 1:
            raise ConfigError(f"n_workers must be >= 1, got {n_workers}")
        self.n_workers = int(n_workers)
        root = np.random.SeedSequence(seed)
        self._generators = [np.random.Generator(np.random.MT19937(s)) for s in root.spawn(n_workers)]
        self._thread_local = threading.local()

    def generator(self, worker_id: int) -> np.random.Generator:
        """The private generator of worker ``worker_id``."""
        return self._generators[worker_id]

    def thread_generator(self) -> np.random.Generator:
        """A generator bound to the *calling thread* (thread-local).

        Mirrors the paper's ``static thread_local mt19937``: the first
        call from a thread claims the next free stream; later calls from
        the same thread reuse it.
        """
        gen = getattr(self._thread_local, "gen", None)
        if gen is None:
            with _CLAIM_LOCK:
                idx = getattr(self, "_next_claim", 0)
                self._next_claim = idx + 1
            gen = self._generators[idx % self.n_workers]
            self._thread_local.gen = gen
        return gen


_CLAIM_LOCK = threading.Lock()


def _row_blocks(n_rows: int, n_workers: int) -> list[tuple[int, int]]:
    """Partition rows into contiguous blocks, at least one cache line each.

    Returns (start, stop) pairs; fewer blocks than workers when the matrix
    is too small to give every worker a full line (avoiding false sharing
    is worth idling a worker, per Section 5.1).
    """
    if n_rows <= 0:
        return []
    max_blocks = max(1, n_rows * 1)  # row-granular: a row is >= 1 line for real workloads
    blocks = min(n_workers, max_blocks)
    base, extra = divmod(n_rows, blocks)
    out = []
    start = 0
    for b in range(blocks):
        stop = start + base + (1 if b < extra else 0)
        if stop > start:
            out.append((start, stop))
        start = stop
    return out


def parallel_uniform_ring(
    shape: tuple[int, ...],
    pool: ThreadSafeGeneratorPool,
    *,
    executor: ThreadPoolExecutor | None = None,
) -> np.ndarray:
    """Fill a matrix with uniform Z_{2^64} elements using the pool.

    Each worker fills a contiguous row block with its own generator, so
    the call is deterministic given the pool's seed and shape, and no two
    workers ever write the same cache line.

    ``shape`` may also be a stacked (B, m, k) triple — the triplet pool's
    fused mask draw: the stack is treated as one (B*m, k) matrix, so a
    whole refill batch is a single vectorised draw (one partitioning,
    one pass) instead of B separate ones.

    If ``executor`` is omitted the blocks run sequentially (still using
    the per-worker streams, so results are identical either way — a
    property the tests pin down).
    """
    if len(shape) < 2:
        raise ConfigError(f"parallel_uniform_ring needs at least a 2-D shape, got {shape}")
    n_cols = shape[-1]
    n_rows = int(np.prod(shape[:-1], dtype=np.int64))
    out = np.empty((n_rows, n_cols), dtype=np.uint64)
    blocks = _row_blocks(n_rows, pool.n_workers)

    def fill(block_id: int, start: int, stop: int) -> None:
        gen = pool.generator(block_id)
        out[start:stop, :] = gen.integers(0, 2**64, size=(stop - start, n_cols), dtype=np.uint64)

    if executor is None:
        for bid, (start, stop) in enumerate(blocks):
            fill(bid, start, stop)
    else:
        futures = [executor.submit(fill, bid, s, t) for bid, (s, t) in enumerate(blocks)]
        for f in futures:
            f.result()
    return out.reshape(shape)
