"""Dealer-assisted secure comparison over additively shared values.

The paper's activation (Eq. 9) is piecewise linear with breakpoints at
±1/2; evaluating it on a secret-shared ``x`` needs secure comparisons.
SecureML switches to Yao garbled circuits for this; ParSecureML inherits
the approach without detailing it.  We implement two interchangeable
back-ends: the reference garbled-circuit engine in :mod:`repro.gc`, and
this module's *dealer-assisted* protocol, which is the default fast path.

Protocol (semi-honest, trusted-dealer / commodity model)
---------------------------------------------------------
Goal: arithmetic shares of the indicator ``[x >= c]`` for public ``c``,
where ``y = x - c`` is additively shared and ``|y| < 2^62``.

Offline, the dealer distributes for each comparison:

* additive shares of a uniform mask ``r``;
* XOR shares of the 64 bits of ``r``;
* Beaver *bit* triplets (XOR-shared ``u, v, w = u AND v``) for the AND
  gates below;
* a random bit ``b`` shared both XOR- and arithmetically (for B2A).

Online:

1. the servers open ``m = y + r`` (one round; ``m`` is uniform, so it
   leaks nothing);
2. the sign bit of ``y = m - r (mod 2^64)`` is computed with a binary
   ripple-borrow subtraction circuit evaluated GMW-style on the XOR
   shares of ``r``'s bits.  Because ``m`` is *public*, the generate and
   propagate bits ``g_k = NOT m_k AND r_k`` and ``p_k = NOT (m_k XOR
   r_k)`` are linear in the shares (local); only the recurrence
   ``borrow_{k+1} = g_k XOR (p_k AND borrow_k)`` needs one secure AND
   per bit position (63 vectorised AND rounds for 64-bit values);
3. ``[y >= 0] = NOT sign = 1 XOR m_63 XOR r_63 XOR borrow_63`` on XOR
   shares;
4. B2A: open ``t = s XOR b`` (public bit), then the arithmetic share is
   ``t + (1 - 2t) * [b]_arith`` — local given the precomputed ``b``.

Everything is vectorised over the element array, so the 63 AND rounds
cost 63 small messages regardless of matrix size.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.fixedpoint.ring import RING_DTYPE, ring_add, ring_mul, ring_sub
from repro.mpc.shares import SharePair, reconstruct, share_secret
from repro.util.errors import ProtocolError, ShapeError

_BITS = 64


def _xor_share_bits(bits: np.ndarray, rng: np.random.Generator) -> tuple[np.ndarray, np.ndarray]:
    """XOR-share a uint8 bit array: b = b0 XOR b1, b0 uniform."""
    b0 = rng.integers(0, 2, size=bits.shape, dtype=np.uint8)
    return b0, bits ^ b0


@dataclass
class ComparisonBundle:
    """Per-comparison precomputed material for one element array shape.

    Single-use, like a Beaver triplet.  ``offline_bytes`` reports the
    dealer-to-server traffic this bundle represents, which the framework
    charges to the offline phase.
    """

    shape: tuple[int, ...]
    r_arith: SharePair
    r_bits0: np.ndarray  # XOR shares of r's bits, server 0; shape (*shape, 64)
    r_bits1: np.ndarray
    and_u0: np.ndarray  # bit-triplet components, shape (n_ands, *shape)
    and_u1: np.ndarray
    and_v0: np.ndarray
    and_v1: np.ndarray
    and_w0: np.ndarray
    and_w1: np.ndarray
    b2a_bit0: np.ndarray  # XOR shares of the B2A bit
    b2a_bit1: np.ndarray
    b2a_arith: SharePair  # arithmetic shares of the same bit
    consumed: bool = False

    @property
    def n_ands(self) -> int:
        return self.and_u0.shape[0]

    @property
    def offline_bytes(self) -> int:
        """Dealer-to-servers bytes this bundle accounts for (both servers)."""
        n = int(np.prod(self.shape))
        per_server = (
            n * 8  # r share
            + n * _BITS // 8  # packed bits of r
            + 3 * self.n_ands * n // 8  # packed bit triplets
            + n // 8 + n * 8  # b2a bit (xor) + arith share
        )
        return 2 * per_server

    def mark_consumed(self) -> None:
        if self.consumed:
            raise ProtocolError("comparison bundle reused; bundles are single-use")
        self.consumed = True


class ComparisonDealer:
    """Offline factory for :class:`ComparisonBundle` objects.

    With a ``seeds`` factory, :meth:`bundle` accepts an op-stream
    ``label`` and derives that bundle's randomness from it instead of
    the shared advancing ``rng`` — the comparison analogue of per-label
    triplet caching: the same stream draws bit-identical material on
    every invocation, which is what makes checkpoint replay (see
    ``repro.faults``) reproduce a run exactly.  Bundles stay single-use
    objects either way.
    """

    def __init__(self, rng: np.random.Generator, *, seeds=None):
        self._rng = rng
        self._seeds = seeds
        self.bundles_issued = 0

    def bundle(
        self, shape: tuple[int, ...], label: str | None = None
    ) -> ComparisonBundle:
        if label is not None and self._seeds is not None:
            rng = self._seeds.generator(f"bundle/{label}")
        else:
            rng = self._rng
        shape = tuple(shape)
        r = rng.integers(0, 2**64, size=shape, dtype=np.uint64)
        r_arith = share_secret(r, rng)
        # Bits of r, least-significant first: shape (*shape, 64).
        k = np.arange(_BITS, dtype=np.uint64)
        r_bits = ((r[..., None] >> k) & np.uint64(1)).astype(np.uint8)
        r_bits0, r_bits1 = _xor_share_bits(r_bits, rng)

        n_ands = _BITS - 1
        u = rng.integers(0, 2, size=(n_ands, *shape), dtype=np.uint8)
        v = rng.integers(0, 2, size=(n_ands, *shape), dtype=np.uint8)
        w = u & v
        u0, u1 = _xor_share_bits(u, rng)
        v0, v1 = _xor_share_bits(v, rng)
        w0, w1 = _xor_share_bits(w, rng)

        b = rng.integers(0, 2, size=shape, dtype=np.uint8)
        b0, b1 = _xor_share_bits(b, rng)
        b_arith = share_secret(b.astype(np.uint64), rng)

        self.bundles_issued += 1
        return ComparisonBundle(
            shape=shape,
            r_arith=r_arith,
            r_bits0=r_bits0,
            r_bits1=r_bits1,
            and_u0=u0,
            and_u1=u1,
            and_v0=v0,
            and_v1=v1,
            and_w0=w0,
            and_w1=w1,
            b2a_bit0=b0,
            b2a_bit1=b1,
            b2a_arith=b_arith,
        )


@dataclass
class ComparisonResult:
    """Output of one secure comparison: arithmetic shares of the 0/1
    indicator, plus traffic/round accounting for the cost model."""

    share0: np.ndarray
    share1: np.ndarray
    online_bytes: int
    rounds: int


def _gmw_and(
    x0: np.ndarray,
    x1: np.ndarray,
    y0: np.ndarray,
    y1: np.ndarray,
    u0: np.ndarray,
    u1: np.ndarray,
    v0: np.ndarray,
    v1: np.ndarray,
    w0: np.ndarray,
    w1: np.ndarray,
) -> tuple[np.ndarray, np.ndarray, int]:
    """One GMW AND on XOR-shared bit arrays using a Beaver bit triplet.

    Returns the two output shares and the bytes that crossed the wire
    (both directions, bits packed).
    """
    d = (x0 ^ u0) ^ (x1 ^ u1)  # opened d = x XOR u
    e = (y0 ^ v0) ^ (y1 ^ v1)  # opened e = y XOR v
    z0 = w0 ^ (d & v0) ^ (e & u0)
    z1 = w1 ^ (d & v1) ^ (e & u1) ^ (d & e)
    bytes_exchanged = 2 * 2 * ((d.size + 7) // 8)  # d,e from each server, bit-packed
    return z0, z1, bytes_exchanged


def comparison_online_bytes(n_elements: int) -> int:
    """Wire bytes the dealer-assisted comparison moves for ``n`` elements.

    Mirrors the accounting of :func:`secure_ge_const` exactly: one ring
    opening, 62 GMW AND rounds of packed bits, one B2A opening.
    """
    n = int(n_elements)
    opening = 2 * n * 8
    and_rounds = (_BITS - 2) * 2 * 2 * ((n + 7) // 8)
    b2a = 2 * ((n + 7) // 8)
    return opening + and_rounds + b2a


def emulated_ge_const(
    x0: np.ndarray,
    x1: np.ndarray,
    c_encoded: int,
    rng: np.random.Generator,
) -> ComparisonResult:
    """Cost-identical emulation of :func:`secure_ge_const`.

    Produces *bit-for-bit the same indicator value* the real protocol
    would (the protocol is exact: ``[x >= c]`` under two's-complement
    ring semantics), freshly re-shared with ``rng``, and reports the
    identical byte/round accounting — without materialising the
    per-element bit-triplet arrays, which for very large activations
    dominate memory and wall-clock in a pure-Python run.  Tests assert
    value and accounting parity against the real protocol on small
    shapes; large-tensor benchmark configs select this path via
    ``FrameworkConfig.activation_protocol = "emulated"``.
    """
    x0 = np.asarray(x0, dtype=RING_DTYPE)
    x1 = np.asarray(x1, dtype=RING_DTYPE)
    c = np.uint64(int(c_encoded) % 2**64)
    with np.errstate(over="ignore"):
        y = (x0 + x1) - c
    indicator = (y.view(np.int64) >= 0).astype(np.uint64)
    pair = share_secret(indicator, rng)
    return ComparisonResult(
        share0=pair.share0,
        share1=pair.share1,
        online_bytes=comparison_online_bytes(indicator.size),
        rounds=_BITS,
    )


def secure_ge_const(
    x0: np.ndarray,
    x1: np.ndarray,
    c_encoded: int,
    bundle: ComparisonBundle,
) -> ComparisonResult:
    """Arithmetic shares of ``[x >= c]`` for additively shared ``x``.

    ``c_encoded`` is the public threshold already fixed-point encoded into
    the ring.  Runs both servers' roles in lockstep (the framework's
    simulation style); traffic is reported, not physically sent.
    """
    x0 = np.asarray(x0, dtype=RING_DTYPE)
    x1 = np.asarray(x1, dtype=RING_DTYPE)
    if x0.shape != bundle.shape or x1.shape != bundle.shape:
        raise ShapeError(
            f"comparison bundle shape {bundle.shape} does not match input {x0.shape}"
        )
    bundle.mark_consumed()
    rounds = 0
    online_bytes = 0

    # y = x - c, shared; server 0 applies the public constant.
    c = np.uint64(int(c_encoded) % 2**64)
    y0 = ring_sub(x0, np.broadcast_to(c, x0.shape))
    y1 = x1

    # Round 1: open m = y + r.
    m0 = ring_add(y0, bundle.r_arith[0])
    m1 = ring_add(y1, bundle.r_arith[1])
    m = ring_add(m0, m1)
    rounds += 1
    online_bytes += 2 * m.size * 8

    # Public bits of m.
    k = np.arange(_BITS, dtype=np.uint64)
    m_bits = ((m[..., None] >> k) & np.uint64(1)).astype(np.uint8)

    # Linear (local) generate/propagate shares for m - r:
    #   g_k = NOT m_k AND r_k     -> multiply r_k's shares by public bit
    #   p_k = NOT (m_k XOR r_k)   -> XOR public constant into one share
    not_m = (1 - m_bits).astype(np.uint8)
    g0 = not_m * bundle.r_bits0
    g1 = not_m * bundle.r_bits1
    p0 = bundle.r_bits0 ^ m_bits ^ np.uint8(1)
    p1 = bundle.r_bits1

    # Ripple: borrow_{k+1} = g_k XOR (p_k AND borrow_k); borrow_1 = g_0.
    # We need borrow into bit 63, i.e. iterations k = 1 .. 62.  The 62
    # AND rounds run on six preallocated uint8 buffers with in-place
    # bitwise ops (the naive _gmw_and form allocates ~10 temporaries per
    # round); the arithmetic is the same XOR/AND dataflow, bit for bit.
    b0 = np.ascontiguousarray(g0[..., 0])
    b1 = np.ascontiguousarray(g1[..., 0])
    d = np.empty_like(b0)
    e = np.empty_like(b0)
    t0 = np.empty_like(b0)
    t1 = np.empty_like(b0)
    tmp = np.empty_like(b0)
    nbytes_per_round = 2 * 2 * ((b0.size + 7) // 8)  # d,e each way, bit-packed
    for k_idx in range(1, _BITS - 1):
        p0k = p0[..., k_idx]
        p1k = p1[..., k_idx]
        u0k = bundle.and_u0[k_idx - 1]
        u1k = bundle.and_u1[k_idx - 1]
        v0k = bundle.and_v0[k_idx - 1]
        v1k = bundle.and_v1[k_idx - 1]
        # opened d = p XOR u, e = borrow XOR v
        np.bitwise_xor(p0k, u0k, out=d)
        np.bitwise_xor(d, p1k, out=d)
        np.bitwise_xor(d, u1k, out=d)
        np.bitwise_xor(b0, v0k, out=e)
        np.bitwise_xor(e, b1, out=e)
        np.bitwise_xor(e, v1k, out=e)
        # z0 = w0 ^ (d & v0) ^ (e & u0)
        np.bitwise_and(d, v0k, out=t0)
        np.bitwise_xor(t0, bundle.and_w0[k_idx - 1], out=t0)
        np.bitwise_and(e, u0k, out=tmp)
        np.bitwise_xor(t0, tmp, out=t0)
        # z1 = w1 ^ (d & v1) ^ (e & u1) ^ (d & e)
        np.bitwise_and(d, v1k, out=t1)
        np.bitwise_xor(t1, bundle.and_w1[k_idx - 1], out=t1)
        np.bitwise_and(e, u1k, out=tmp)
        np.bitwise_xor(t1, tmp, out=t1)
        np.bitwise_and(d, e, out=tmp)
        np.bitwise_xor(t1, tmp, out=t1)
        # borrow update: b = g_k XOR z
        np.bitwise_xor(g0[..., k_idx], t0, out=b0)
        np.bitwise_xor(g1[..., k_idx], t1, out=b1)
        rounds += 1
        online_bytes += nbytes_per_round

    # Sign bit of y: d_63 = m_63 XOR r_63 XOR borrow_63.
    sign0 = m_bits[..., _BITS - 1] ^ bundle.r_bits0[..., _BITS - 1] ^ b0
    sign1 = bundle.r_bits1[..., _BITS - 1] ^ b1
    # Indicator [y >= 0] = NOT sign (XOR 1 into server 0's share).
    s0 = sign0 ^ np.uint8(1)
    s1 = sign1

    # B2A: open t = s XOR b, then share = t + (1 - 2t) * [b]_arith.
    t = (s0 ^ bundle.b2a_bit0) ^ (s1 ^ bundle.b2a_bit1)
    rounds += 1
    online_bytes += 2 * ((t.size + 7) // 8)
    t64 = t.astype(np.uint64)
    sign_factor = ring_sub(np.ones_like(t64), ring_mul(np.uint64(2) * np.ones_like(t64), t64))
    out0 = ring_add(t64, ring_mul(sign_factor, bundle.b2a_arith[0]))
    out1 = ring_mul(sign_factor, bundle.b2a_arith[1])
    return ComparisonResult(share0=out0, share1=out1, online_bytes=online_bytes, rounds=rounds)
