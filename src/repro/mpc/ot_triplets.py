"""OT-based Beaver triplet generation (SecureML's dealer-free offline).

ParSecureML's offline phase uses the client as a trusted dealer
(:class:`~repro.mpc.triplets.TripletDealer`), which is what its
evaluation measures.  The original SecureML paper also specifies a
*dealer-free* offline where the two servers generate triplets between
themselves using oblivious transfer — included here both for
completeness of the SecureML substrate and to power the offline-strategy
comparison benchmark.

Protocol (Gilboa-style OT multiplication over Z_{2^64})
--------------------------------------------------------
To produce additive shares of ``a * b`` where server 0 holds ``a`` and
server 1 holds ``b``: for each bit ``i`` of ``b``, the parties run one
1-out-of-2 OT in which server 0 (sender) offers the pair

    m_0 = r_i,      m_1 = r_i + a * 2^i   (mod 2^64)

for a fresh random ``r_i``, and server 1 (receiver) selects with choice
bit ``b_i``.  Summing, server 1 obtains ``sum_i (r_i + b_i a 2^i)
= R + a*b`` and server 0 holds ``-R``: additive shares of the product.
A full Beaver triplet ``(u, v, w = u*v)`` with *both* factors shared
needs the cross terms ``u0*v1`` and ``u1*v0``, i.e. two OT
multiplications per element, plus the locally computable ``u0*v0`` and
``u1*v1``.

Cost: 64 OTs of 8-byte strings per cross term — the reason SecureML's
OT offline is orders of magnitude more expensive than ParSecureML's
client-aided offline, which the comparison benchmark quantifies using
:func:`ot_triplet_offline_cost`.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.fixedpoint.ring import RING_DTYPE, ring_add, ring_mul, ring_neg, ring_sub
from repro.gc.ot import ObliviousTransferReceiver, ObliviousTransferSender
from repro.mpc.triplets import ElementwiseTriplet
from repro.mpc.shares import SharePair
from repro.telemetry.registry import MetricRegistry
from repro.util.errors import ProtocolError

_BITS = 64
# wire sizes of one Bellare-Micali OT instance (group elements ~64 B)
_OT_BYTES = 64 + 64 + 2 * (64 + 8)


def _ot_multiply(a: int, b: int, rng: np.random.Generator) -> tuple[int, int]:
    """Shares of ``a*b mod 2^64``: server 0 inputs a, server 1 inputs b.

    Runs the 64 real OT instances in-process.  Returns (share0, share1).
    """
    a %= 2**64
    b %= 2**64
    share0 = 0
    share1 = 0
    for i in range(_BITS):
        r = int(rng.integers(0, 2**64, dtype=np.uint64))
        m0 = r
        m1 = (r + (a << i)) % 2**64
        sender = ObliviousTransferSender(
            m0.to_bytes(8, "little"), m1.to_bytes(8, "little")
        )
        receiver = ObliviousTransferReceiver((b >> i) & 1)
        pk0 = receiver.request(sender.public_c)
        got = int.from_bytes(receiver.receive(sender.respond(pk0)), "little")
        share0 = (share0 - r) % 2**64
        share1 = (share1 + got) % 2**64
    return share0, share1


@dataclass
class OTTripletStats:
    """Traffic/round accounting of one OT triplet generation."""

    elements: int
    ot_instances: int
    bytes_exchanged: int


class OTTripletGenerator:
    """Dealer-free elementwise Beaver triplets between the two servers.

    This runs real cryptography (64 modular-exponentiation OTs per cross
    term), so it is meant for small shapes — correctness tests and the
    offline-strategy comparison — not for bulk training, which is
    precisely SecureML's practical problem that the client-aided dealer
    (and ParSecureML's GPU offline) solve.
    """

    def __init__(self, seed: int = 0, *, telemetry=None):
        self._rng = np.random.default_rng(seed)
        registry = telemetry.registry if telemetry is not None else MetricRegistry()
        self._elements = registry.counter(
            "mpc.ot.elements", "triplet elements generated via OT"
        )
        self._instances = registry.counter("mpc.ot.instances", "1-of-2 OT executions")
        self._bytes = registry.counter("mpc.ot.bytes_exchanged", "OT wire bytes")

    @property
    def stats(self) -> OTTripletStats:
        """Accounting as the historical dataclass (view over the registry)."""
        return OTTripletStats(
            elements=int(self._elements.value()),
            ot_instances=int(self._instances.value()),
            bytes_exchanged=int(self._bytes.value()),
        )

    def elementwise_triplet(self, shape: tuple[int, ...]) -> ElementwiseTriplet:
        rng = self._rng
        u0 = rng.integers(0, 2**64, size=shape, dtype=np.uint64)
        u1 = rng.integers(0, 2**64, size=shape, dtype=np.uint64)
        v0 = rng.integers(0, 2**64, size=shape, dtype=np.uint64)
        v1 = rng.integers(0, 2**64, size=shape, dtype=np.uint64)

        # w = (u0 + u1)(v0 + v1) = u0 v0 + u0 v1 + u1 v0 + u1 v1.
        # Local terms stay with their owner; cross terms via OT.
        w0 = ring_mul(u0, v0)
        w1 = ring_mul(u1, v1)
        flat_shape = int(np.prod(shape))
        cross0 = np.zeros(flat_shape, dtype=RING_DTYPE)
        cross1 = np.zeros(flat_shape, dtype=RING_DTYPE)
        u0f, v1f = u0.reshape(-1), v1.reshape(-1)
        u1f, v0f = u1.reshape(-1), v0.reshape(-1)
        for idx in range(flat_shape):
            s0, s1 = _ot_multiply(int(u0f[idx]), int(v1f[idx]), rng)
            cross0[idx] = ring_add(cross0[idx], np.uint64(s0))
            cross1[idx] = ring_add(cross1[idx], np.uint64(s1))
            # u1 * v0: server 1 is the sender this time (roles swap).
            s1b, s0b = _ot_multiply(int(u1f[idx]), int(v0f[idx]), rng)
            cross0[idx] = ring_add(cross0[idx], np.uint64(s0b))
            cross1[idx] = ring_add(cross1[idx], np.uint64(s1b))
        w0 = ring_add(w0, cross0.reshape(shape))
        w1 = ring_add(w1, cross1.reshape(shape))

        self._elements.inc(flat_shape)
        self._instances.inc(2 * _BITS * flat_shape)
        self._bytes.inc(2 * _BITS * flat_shape * _OT_BYTES)
        return ElementwiseTriplet(
            u=SharePair(u0, u1), v=SharePair(v0, v1), z=SharePair(w0, w1), shape=tuple(shape)
        )


def ot_triplet_offline_cost(
    n_elements: int,
    *,
    exp_seconds: float = 150e-6,
    link_bandwidth_gbps: float = 12.0,
    link_latency_s: float = 1.5e-6,
) -> tuple[float, int]:
    """(seconds, bytes) to generate ``n`` elementwise triplets via OT.

    ``exp_seconds`` is the cost of one modular exponentiation (~512-bit
    group, CPU); each OT instance needs ~4 of them across both parties.
    Used by the offline-strategy benchmark to compare against the
    client-aided dealer without actually running millions of OTs.
    """
    ots = 2 * _BITS * n_elements
    compute_s = ots * 4 * exp_seconds
    wire_bytes = ots * _OT_BYTES
    network_s = wire_bytes / (link_bandwidth_gbps * 1e9) + ots * link_latency_s
    return compute_s + network_s, wire_bytes
