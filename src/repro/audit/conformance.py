"""Differential conformance: every model × config agrees with plain.

CrypTen's discipline, applied here: each secure model is held to its
plaintext twin in :mod:`repro.baselines.plain` as reference semantics.
A conformance case builds the secure model under one configuration,
copies its decoded initial weights into the plain twin, runs both on
the same data, and asserts the outputs agree within fixed-point
tolerance.  Sweeping the six paper models plus the attention/recsys workloads
across the optimization axes
(triplet pool, static-mask reuse, delta compression, reliable
transport under a chaos seed) is the regression oracle for "no
optimization changed the arithmetic".

Two strengths of agreement:

* **tolerance** (plain vs secure): truncation rounds each product, so
  secure outputs match plain only to ~2^-frac_bits per operation;
* **bit-identity** (secure vs secure): knobs in
  :data:`BIT_IDENTICAL_AXES` change only *costs* (bytes, seconds), so
  flipping them must reproduce the baseline predictions bit-for-bit.
  The pool axis is excluded — pooled provisioning draws triplets from a
  different RNG stream and truncation rounding is share-dependent.

Geometry is deliberately tiny (8x8 images, hidden widths of 6-8) so the
full sweep stays in tier-1 test budgets; conformance is about agreement,
not throughput.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable

import numpy as np

from repro.audit.transcript import Transcript
from repro.audit.wire import WireAuditReport, audit_transcript
from repro.baselines.plain import (
    PlainAttention,
    PlainCNN,
    PlainLinearRegression,
    PlainLogisticRegression,
    PlainMLP,
    PlainRecsys,
    PlainRNN,
    PlainSVM,
    PlainTimer,
    PlainTrainer,
)
from repro.core.attention import SecureAttention
from repro.core.config import FrameworkConfig
from repro.core.inference import secure_predict
from repro.core.models import (
    SecureCNN,
    SecureLinearRegression,
    SecureLogisticRegression,
    SecureMLP,
    SecureRNN,
    SecureSVM,
)
from repro.core.recsys import SecureRecsys
from repro.core.training import SecureTrainer
from repro.faults.plan import FaultPlan
from repro.util.errors import AuditError, ConfigError

#: The six paper models (Section 7.1) plus the attention and
#: recommendation workloads, by bench-suite name.
CONFORMANCE_MODELS = ("MLP", "CNN", "RNN", "linear", "logistic", "SVM", "attention", "recsys")

#: Config axes swept against the baseline.  Values are ``.but()``
#: overrides on the ParSecureML preset.
CONFORMANCE_AXES: dict[str, dict[str, Any]] = {
    "baseline": {},
    "pool": {"pool_size": 4},
    "mask_reuse": {"static_mask_reuse": True},
    "no_compression": {"compression": False},
    "chaos": {"fault_plan": FaultPlan(seed=7, drop=0.04, delay=0.04)},
    "wire": {"wire_frames": True},
    "coalesced": {"coalesce_rounds": True},
    "dataflow": {"runtime": "dataflow"},
}

#: Axes whose knobs are cost-only: secure predictions must be
#: bit-identical to the baseline axis, not merely within tolerance.
BIT_IDENTICAL_AXES = ("mask_reuse", "no_compression", "chaos", "wire", "coalesced", "dataflow")

#: Fixed-point agreement ceilings (frac_bits=13 -> ~1.2e-4 resolution
#: per truncation; training compounds it across batches and layers).
FORWARD_TOL = 5e-3
TRAIN_TOL = 2.5e-2


@dataclass(frozen=True)
class ConformanceCase:
    """One cell of the sweep: a model under a config axis and backend."""

    model: str
    axis: str
    seed: int = 0
    batch_size: int = 16
    n_batches: int = 2
    train: bool = False
    backend: str = "beaver2pc"

    def __post_init__(self):
        if self.model not in CONFORMANCE_MODELS:
            raise ConfigError(f"unknown conformance model {self.model!r}")
        if self.axis not in CONFORMANCE_AXES:
            raise ConfigError(f"unknown conformance axis {self.axis!r}")
        from repro.protocols import available_backends

        if self.backend not in available_backends():
            raise ConfigError(
                f"unknown protocol backend {self.backend!r}; "
                f"available: {available_backends()}"
            )

    @property
    def name(self) -> str:
        mode = "train" if self.train else "infer"
        suffix = "" if self.backend == "beaver2pc" else f"/{self.backend}"
        return f"{self.model}/{self.axis}/{mode}{suffix}"

    def config(self) -> FrameworkConfig:
        base = FrameworkConfig.parsecureml(activation_protocol="emulated")
        overrides = dict(CONFORMANCE_AXES[self.axis])
        return base.but(seed=self.seed, backend=self.backend, **overrides)

    @property
    def tol(self) -> float:
        return TRAIN_TOL if self.train else FORWARD_TOL


@dataclass
class ConformanceResult:
    """Secure-vs-plain verdict for one case."""

    case: ConformanceCase
    max_abs_err: float
    tol: float
    predictions: np.ndarray = field(repr=False)
    transcript: Transcript | None = field(default=None, repr=False)
    wire: WireAuditReport | None = None

    @property
    def agreed(self) -> bool:
        return self.max_abs_err <= self.tol

    def describe(self) -> str:
        verdict = "ok" if self.agreed else "DISAGREE"
        return (
            f"{self.case.name}: max|secure-plain|={self.max_abs_err:.2e} "
            f"(tol {self.tol:.0e}) -> {verdict}"
        )


def _tiny_workload(case: ConformanceCase) -> tuple[np.ndarray, np.ndarray, Callable, Callable]:
    """Tiny matched geometries: (x, y, build_secure(ctx), build_plain())."""
    rng = np.random.default_rng(1000 + case.seed)
    n = case.batch_size * case.n_batches
    m, s = case.model, case.seed

    def onehot(width: int) -> np.ndarray:
        y = np.zeros((n, width))
        y[np.arange(n), rng.integers(0, width, size=n)] = 1.0
        return y

    if m == "MLP":
        x = 0.5 * rng.standard_normal((n, 12))
        return (x, onehot(3),
                lambda ctx: SecureMLP(ctx, 12, hidden=(8,), n_out=3),
                lambda: PlainMLP(12, hidden=(8,), n_out=3, seed=s))
    if m == "CNN":
        x = 0.5 * rng.standard_normal((n, 8 * 8))
        return (x, onehot(3),
                lambda ctx: SecureCNN(ctx, (8, 8, 1), conv_channels=2,
                                      hidden=8, n_out=3, kernel=3),
                lambda: PlainCNN((8, 8, 1), conv_channels=2, hidden=8,
                                 n_out=3, kernel=3, seed=s))
    if m == "RNN":
        x = 0.5 * rng.standard_normal((n, 3 * 4))
        return (x, onehot(3),
                lambda ctx: SecureRNN(ctx, 3, 4, hidden=6, n_out=3),
                lambda: PlainRNN(3, 4, hidden=6, n_out=3, seed=s))
    if m == "linear":
        x = 0.5 * rng.standard_normal((n, 10))
        y = 0.5 * rng.standard_normal((n, 2))
        return (x, y,
                lambda ctx: SecureLinearRegression(ctx, 10, n_out=2),
                lambda: PlainLinearRegression(10, n_out=2, seed=s))
    if m == "logistic":
        x = 0.5 * rng.standard_normal((n, 10))
        return (x, onehot(2),
                lambda ctx: SecureLogisticRegression(ctx, 10, n_out=2),
                lambda: PlainLogisticRegression(10, n_out=2, seed=s))
    if m == "attention":
        x = 0.5 * rng.standard_normal((n, 3 * 4))
        return (x, onehot(3),
                lambda ctx: SecureAttention(ctx, 3, 4, n_out=3),
                lambda: PlainAttention(3, 4, n_out=3, seed=s))
    if m == "recsys":
        x = onehot(12)
        return (x, onehot(3),
                lambda ctx: SecureRecsys(ctx, 12, 6, n_out=3),
                lambda: PlainRecsys(12, 6, n_out=3, seed=s))
    # SVM: labels in {-1, +1}
    x = 0.5 * rng.standard_normal((n, 10))
    y = np.where(rng.random((n, 1)) < 0.5, -1.0, 1.0)
    return (x, y,
            lambda ctx: SecureSVM(ctx, 10),
            lambda: PlainSVM(10, seed=s))


def sync_plain_weights(model_name: str, secure, plain) -> None:
    """Copy the secure model's decoded initial weights into its twin.

    Both inits are random; conformance compares *arithmetic*, so the
    twins must start from identical parameters (the secure side's
    decoded fixed-point values, which the plain model can represent
    exactly).
    """
    if model_name == "RNN":
        plain.cell.wx = secure.cell.w_x.decode()
        plain.cell.wh = secure.cell.w_h.decode()
        plain.cell.b = secure.cell.bias.decode()
        plain.readout.w = secure.readout.weight.decode()
        plain.readout.b = secure.readout.bias.decode()
        return
    if model_name == "attention":
        plain.block.wq = secure.block.w_q.decode()
        plain.block.wk = secure.block.w_k.decode()
        plain.block.wv = secure.block.w_v.decode()
        plain.block.wo = secure.block.w_o.decode()
        plain.readout.w = secure.readout.weight.decode()
        plain.readout.b = secure.readout.bias.decode()
        return
    for s_layer, p_layer in zip(secure.layers, plain.layers):
        if hasattr(s_layer, "weight"):
            p_layer.w = s_layer.weight.decode()
            if hasattr(s_layer, "bias") and hasattr(p_layer, "b"):
                p_layer.b = s_layer.bias.decode()


def run_conformance_case(
    case: ConformanceCase,
    *,
    audit: bool = True,
    capture_payloads: bool = True,
) -> ConformanceResult:
    """Run one cell: secure vs plain on identical weights and data.

    Inference cases compare forward predictions; training cases run the
    same SGD batches through both sides first, so the comparison also
    covers every backward-pass op.  With ``audit`` on, the run records a
    full transcript and chi-squares each server's wire view.
    """
    from repro.core.context import SecureContext

    x, y, build_secure, build_plain = _tiny_workload(case)
    ctx = SecureContext.create(case.config())
    recorder = None
    if audit:
        recorder = ctx.attach_recorder(capture_payloads=capture_payloads)
        recorder.meta.update({"case": case.name, "seed": case.seed})
    secure = build_secure(ctx)
    plain = build_plain()
    sync_plain_weights(case.model, secure, plain)

    timer = PlainTimer("cpu")
    if case.train:
        trainer = SecureTrainer(ctx, secure, lr=0.125)
        trainer.train(x, y, batch_size=case.batch_size)
        PlainTrainer(plain, timer, lr=0.125).train(x, y, batch_size=case.batch_size)
    report = secure_predict(ctx, secure, x, batch_size=case.batch_size)
    plain_pred = plain.forward(x, timer, training=False)

    max_err = float(np.max(np.abs(report.predictions - plain_pred)))
    transcript = recorder.transcript() if recorder is not None else None
    wire = None
    if transcript is not None and capture_payloads:
        wire = audit_transcript(transcript, telemetry=ctx.telemetry)
    return ConformanceResult(
        case=case, max_abs_err=max_err, tol=case.tol,
        predictions=report.predictions, transcript=transcript, wire=wire,
    )


def run_conformance_sweep(
    models=CONFORMANCE_MODELS,
    axes=tuple(CONFORMANCE_AXES),
    *,
    seed: int = 0,
    train: bool = False,
    audit: bool = False,
    backend: str = "beaver2pc",
) -> list[ConformanceResult]:
    """The full differential matrix; returns every cell's verdict."""
    return [
        run_conformance_case(
            ConformanceCase(model=m, axis=a, seed=seed, train=train, backend=backend),
            audit=audit,
        )
        for m in models
        for a in axes
    ]


def disagreements(results: list[ConformanceResult]) -> list[ConformanceResult]:
    return [r for r in results if not r.agreed]


def assert_bit_identical(
    base: ConformanceResult, variant: ConformanceResult, *, context: str = ""
) -> None:
    """Cost-only knobs must not move a single bit of the predictions."""
    if not np.array_equal(base.predictions, variant.predictions):
        delta = float(np.max(np.abs(base.predictions - variant.predictions)))
        prefix = f"{context}: " if context else ""
        raise AuditError(
            f"{prefix}{variant.case.name} is not bit-identical to "
            f"{base.case.name} (max delta {delta:.3e}) — a cost-only knob "
            "changed protocol arithmetic"
        )


def assert_content_equivalent(
    base: ConformanceResult, variant: ConformanceResult, *, context: str = ""
) -> None:
    """Round coalescing may repack messages, never change their bytes.

    The digest-equality oracle for ``coalesce_rounds``: per directed
    link, the concatenation of the variant's captured message contents
    must hash identically to the baseline's — packed frames carry the
    exact bodies the separate messages would have, in the same order.
    Both results need recorded transcripts with payload capture.
    """
    from repro.audit.transcript import link_content_digests

    prefix = f"{context}: " if context else ""
    if base.transcript is None or variant.transcript is None:
        raise AuditError(f"{prefix}content equivalence needs recorded transcripts")
    ours = link_content_digests(base.transcript)
    theirs = link_content_digests(variant.transcript)
    if ours != theirs:
        diverged = sorted(
            f"{src}->{dst}"
            for link in set(ours) | set(theirs)
            if ours.get(link) != theirs.get(link)
            for src, dst in [link]
        )
        raise AuditError(
            f"{prefix}{variant.case.name} per-link content diverged from "
            f"{base.case.name} on {', '.join(diverged)} — coalescing must "
            "repack message boundaries, never bytes"
        )
