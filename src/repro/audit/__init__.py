"""Protocol conformance harness: transcripts, wire audits, differential oracle.

Three correctness backstops every perf PR runs against:

* :mod:`repro.audit.transcript` — record every message a run puts on
  the wire; replay and assert bit-identity (``Transcript.assert_identical``).
* :mod:`repro.audit.wire` — chi-square each server's recorded traffic
  against uniform ring noise (the semi-honest wire-view argument).
* :mod:`repro.audit.conformance` — sweep all eight models across the
  optimization axes against the plain baselines.
"""

from repro.audit.conformance import (
    BIT_IDENTICAL_AXES,
    CONFORMANCE_AXES,
    CONFORMANCE_MODELS,
    ConformanceCase,
    ConformanceResult,
    assert_bit_identical,
    disagreements,
    run_conformance_case,
    run_conformance_sweep,
    sync_plain_weights,
)
from repro.audit.transcript import (
    Transcript,
    TranscriptRecord,
    TranscriptRecorder,
    canonical_bytes,
    content_bytes,
    payload_digest,
)
from repro.audit.wire import (
    CHI2_CEILING,
    MIN_AUDIT_BYTES,
    LinkAudit,
    WireAuditReport,
    audit_context,
    audit_transcript,
    chi2_uniform_bytes,
)

__all__ = [
    "BIT_IDENTICAL_AXES",
    "CHI2_CEILING",
    "CONFORMANCE_AXES",
    "CONFORMANCE_MODELS",
    "ConformanceCase",
    "ConformanceResult",
    "LinkAudit",
    "MIN_AUDIT_BYTES",
    "Transcript",
    "TranscriptRecord",
    "TranscriptRecorder",
    "WireAuditReport",
    "assert_bit_identical",
    "audit_context",
    "audit_transcript",
    "canonical_bytes",
    "chi2_uniform_bytes",
    "content_bytes",
    "disagreements",
    "payload_digest",
    "run_conformance_case",
    "run_conformance_sweep",
    "sync_plain_weights",
]
