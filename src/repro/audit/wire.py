"""Wire-view auditor: uniformity checks over recorded traffic.

Section 2.2's semi-honest argument says everything a single server
receives is masked by fresh one-time pads, so its wire view must be
statistically indistinguishable from uniform ring noise.  The in-memory
security tests already assert that for shares as the protocol holds
them; this module re-runs the same chi-square byte-frequency test over
what a run actually *recorded on the wire*, link by link — which is
where an optimization bug would leak (a cached masked difference served
to the wrong batch, a CSR delta that skipped re-masking, a debug path
that serialized plaintext).

The statistic matches ``tests/test_security.py``: byte frequencies over
256 bins against the uniform expectation, 255 degrees of freedom, and a
ceiling of 420 (roughly seven sigma — astronomically improbable for
genuinely masked traffic, instantly exceeded by structured data).

Links with fewer than :data:`MIN_AUDIT_BYTES` captured bytes are
reported as ``skipped`` rather than judged: the chi-square approximation
needs a few observations per bin before its tail is meaningful.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.audit.transcript import Transcript
from repro.util.errors import AuditError

#: Chi-square acceptance ceiling for 255 degrees of freedom (~7 sigma),
#: shared with the in-memory security suite.
CHI2_CEILING = 420.0

#: Minimum captured bytes per link before the chi-square verdict counts
#: (~8 expected observations per bin).
MIN_AUDIT_BYTES = 2048


def chi2_uniform_bytes(buf) -> float:
    """Chi-square statistic of byte frequencies against uniform.

    Accepts raw ``bytes`` or any ndarray (viewed as its underlying
    bytes).  255 degrees of freedom; uniform data lands near 255.
    """
    if isinstance(buf, (bytes, bytearray, memoryview)):
        data = np.frombuffer(bytes(buf), dtype=np.uint8)
    else:
        data = np.ascontiguousarray(buf).reshape(-1).view(np.uint8)
    if data.size == 0:
        raise AuditError("chi2_uniform_bytes: empty buffer")
    counts = np.bincount(data, minlength=256).astype(np.float64)
    expected = data.size / 256.0
    return float(((counts - expected) ** 2 / expected).sum())


@dataclass(frozen=True)
class LinkAudit:
    """Verdict for one directed link's recorded traffic."""

    src: str
    dst: str
    messages: int
    content_bytes: int
    wire_bytes: int
    chi2: float | None
    ceiling: float
    skipped: bool
    reason: str = ""

    @property
    def link(self) -> str:
        return f"{self.src}->{self.dst}"

    @property
    def passed(self) -> bool:
        return self.skipped or (self.chi2 is not None and self.chi2 <= self.ceiling)

    def describe(self) -> str:
        if self.skipped:
            return f"{self.link}: skipped ({self.reason})"
        verdict = "ok" if self.passed else "LEAK"
        return (
            f"{self.link}: chi2={self.chi2:.1f} (ceiling {self.ceiling:.0f}) "
            f"over {self.content_bytes} bytes / {self.messages} messages -> {verdict}"
        )


@dataclass
class WireAuditReport:
    """All link verdicts for one transcript."""

    audits: list[LinkAudit]
    ceiling: float

    @property
    def passed(self) -> bool:
        return all(a.passed for a in self.audits)

    @property
    def failures(self) -> list[LinkAudit]:
        return [a for a in self.audits if not a.passed]

    @property
    def max_chi2(self) -> float:
        stats = [a.chi2 for a in self.audits if a.chi2 is not None]
        return max(stats) if stats else 0.0

    def summary(self) -> str:
        judged = [a for a in self.audits if not a.skipped]
        head = (
            f"wire audit: {len(self.audits)} links, {len(judged)} judged, "
            f"{len(self.failures)} failed (ceiling {self.ceiling:.0f})"
        )
        return "\n".join([head, *(f"  {a.describe()}" for a in self.audits)])

    def assert_clean(self, *, context: str = "") -> None:
        if not self.passed:
            prefix = f"{context}: " if context else ""
            raise AuditError(
                prefix + "wire audit failed: "
                + "; ".join(a.describe() for a in self.failures)
            )


def audit_transcript(
    transcript: Transcript,
    *,
    party: str | None = None,
    ceiling: float = CHI2_CEILING,
    min_bytes: int = MIN_AUDIT_BYTES,
    telemetry=None,
) -> WireAuditReport:
    """Chi-square the recorded traffic of every link (or one party's).

    ``party`` restricts the audit to messages *received by* that
    endpoint — the semi-honest adversary's view.  Size-only records
    (no captured payload) contribute to message/byte totals but not to
    the statistic; a link whose captured content is below ``min_bytes``
    is skipped, not judged.

    Repeated identical messages count once: a static operand re-sends
    the same masked difference every batch (same cached triplet), and
    retransmissions replay journalled frames verbatim.  An exact repeat
    gives a passive observer nothing new, but double-counting its byte
    histogram would scale the chi-square statistic by the repeat factor
    and fail uniform traffic spuriously.
    """
    audits: list[LinkAudit] = []
    for src, dst in transcript.links():
        if party is not None and dst != party:
            continue
        records = transcript.records_for(src=src, dst=dst)
        seen: set[str] = set()
        bufs = []
        for r in records:
            if not r.payload or r.digest in seen:
                continue
            seen.add(r.digest)
            bufs.append(r.payload)
        captured = sum(len(b) for b in bufs)
        wire = sum(r.nbytes for r in records)
        if captured < min_bytes:
            audits.append(LinkAudit(
                src=src, dst=dst, messages=len(records),
                content_bytes=captured, wire_bytes=wire,
                chi2=None, ceiling=ceiling, skipped=True,
                reason=f"{captured} captured bytes < {min_bytes} minimum",
            ))
            continue
        stat = chi2_uniform_bytes(b"".join(bufs))
        audits.append(LinkAudit(
            src=src, dst=dst, messages=len(records),
            content_bytes=captured, wire_bytes=wire,
            chi2=stat, ceiling=ceiling, skipped=False,
        ))
    report = WireAuditReport(audits=audits, ceiling=ceiling)
    if telemetry is not None:
        reg = telemetry.registry
        judged = [a for a in report.audits if not a.skipped]
        reg.counter("audit.links_audited", "links judged by the wire auditor").inc(
            len(judged)
        )
        reg.counter("audit.links_failed", "links over the chi-square ceiling").inc(
            len(report.failures)
        )
        gauge = reg.gauge("audit.chi2", "per-link chi-square statistic")
        for a in judged:
            gauge.set(a.chi2, link=a.link)
    return report


def audit_context(ctx, **kwargs) -> WireAuditReport:
    """Audit the transcript of a context's attached recorder."""
    recorder = getattr(ctx, "recorder", None)
    if recorder is None:
        raise AuditError("context has no attached TranscriptRecorder")
    if kwargs.get("telemetry") is None:
        kwargs["telemetry"] = getattr(ctx, "telemetry", None)
    return audit_transcript(recorder.transcript(), **kwargs)


def assert_byte_accounting(transcript: Transcript, telemetry, *, context: str = "") -> None:
    """Guardrail: transcript frame sizes must equal channel byte charges.

    Every lockstep ``record_wire`` tap carries the exact ``nbytes`` the
    corresponding channel send charged, so per directed link the sum of
    recorded sizes must equal the ``comm.bytes`` counter for that
    ``(src, dst)`` — if the framed codec ever sized a message differently
    from what the simulator charged, the two ledgers diverge here.

    Hub-tapped ``frame/`` records are excluded: actor-runtime traffic is
    charged by the reliable transport, which may retransmit.  The check
    is only meaningful on fault-free runs — retransmissions and injected
    duplicates charge the channel without a matching lockstep record —
    so nonzero ``faults.*`` activity is rejected up front.
    """
    prefix = f"{context}: " if context else ""
    reg = telemetry.registry
    for name in ("faults.retransmits", "faults.duplicates_suppressed"):
        if name in reg and reg.counter(name).value() > 0:
            raise AuditError(
                f"{prefix}byte accounting needs a fault-free run; "
                f"{name} = {reg.counter(name).value():.0f}"
            )
    recorded: dict[tuple[str, str], int] = {}
    for r in transcript:
        if r.tag.startswith("frame/"):
            continue
        recorded[(r.src, r.dst)] = recorded.get((r.src, r.dst), 0) + r.nbytes
    comm_bytes = reg.counter("comm.bytes")
    mismatches = []
    for (src, dst), total in sorted(recorded.items()):
        charged = int(comm_bytes.value(src=src, dst=dst))
        if charged != total:
            mismatches.append(
                f"{src}->{dst}: transcript {total} bytes != channel {charged} bytes"
            )
    if mismatches:
        raise AuditError(f"{prefix}byte accounting diverged: " + "; ".join(mismatches))
