"""Protocol transcripts: record every message a run puts on the wire.

The correctness story of the reproduction rests on claims about *wire
behaviour* — the online phase exchanges exactly the masked differences
of Eqs. 4-5, a refactor changes no protocol bytes, a single server's
traffic is independent of the secrets.  Those claims are only testable
if the wire is observable, so this module gives every run a flight
recorder:

* :class:`TranscriptRecorder` taps the transport surfaces (the
  :class:`~repro.comm.transport.TransportHub` frame path and the
  lockstep ``record_wire`` hooks in :mod:`repro.core`) and appends one
  :class:`TranscriptRecord` per message — source, destination, tag,
  wire byte size, a content digest, and the simulated clock time.
* :class:`Transcript` is the immutable result: JSON dump/load for CI
  artifacts, and :meth:`Transcript.diff` / :meth:`assert_identical`
  as the replay oracle ("re-run the session; the transcript must be
  bit-identical").

Digests are BLAKE2b over a canonical byte encoding (dtype + shape +
raw buffer for arrays, deterministic pickle otherwise), so two records
match iff the payloads were bit-identical.  The raw *content bytes*
(the concatenated array buffers a passive observer would see) are kept
in memory only when ``capture_payloads`` is on — that is what the
wire-view auditor in :mod:`repro.audit.wire` feeds to the chi-square
uniformity test; the JSON form stores digests and sizes only.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any, Callable, Iterable, Iterator

from repro.comm.wire import (  # noqa: F401  (re-exported: historical home)
    canonical_bytes,
    content_bytes,
    iter_arrays,
    payload_digest,
)
from repro.util.errors import AuditError, TranscriptMismatch

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.comm.transport import TransportHub

#: Sequence fields that must match record-for-record for two transcripts
#: to be considered the same protocol run.  The clock column is compared
#: too: all clocks in the simulation are deterministic, so a timing
#: divergence is as much a regression as a byte divergence.
IDENTITY_FIELDS = ("src", "dst", "tag", "nbytes", "digest", "clock_s")


# The canonical encoding (canonical_bytes / content_bytes / iter_arrays /
# payload_digest) moved to repro.comm.wire when the frame codec unified
# wire encoding and transcript hashing; the names above are re-exported
# here, their historical home, and the byte format is unchanged —
# committed reference transcripts pin it.


def link_content_digests(transcript: "Transcript") -> dict[tuple[str, str], str]:
    """BLAKE2b per directed link over the concatenated captured contents.

    The coalescing oracle: packing same-round messages into one frame
    reorders *message boundaries*, never bytes, so a coalesced run's
    per-link content stream must hash identically to the baseline's.
    Size-only records (no captured payload) contribute nothing, same as
    in the baseline.
    """
    streams: dict[tuple[str, str], "hashlib._Hash"] = {}
    for r in transcript:
        if r.payload is None:
            continue
        h = streams.get((r.src, r.dst))
        if h is None:
            h = streams[(r.src, r.dst)] = hashlib.blake2b(digest_size=16)
        h.update(r.payload)
    return {link: h.hexdigest() for link, h in streams.items()}


@dataclass(frozen=True)
class TranscriptRecord:
    """One message as a passive network observer would log it.

    ``payload`` holds the raw content bytes when the recorder captured
    them (wire-audit input); it is never serialized and never takes part
    in transcript identity — ``digest`` already pins the content.
    """

    seq: int
    src: str
    dst: str
    tag: str
    nbytes: int
    digest: str
    clock_s: float
    payload: bytes | None = field(default=None, repr=False, compare=False)

    def to_json(self) -> dict[str, Any]:
        return {
            "seq": self.seq, "src": self.src, "dst": self.dst, "tag": self.tag,
            "nbytes": self.nbytes, "digest": self.digest, "clock_s": self.clock_s,
            "captured": self.payload is not None,
        }

    @classmethod
    def from_json(cls, row: dict[str, Any]) -> "TranscriptRecord":
        return cls(
            seq=int(row["seq"]), src=row["src"], dst=row["dst"], tag=row["tag"],
            nbytes=int(row["nbytes"]), digest=row["digest"],
            clock_s=float(row["clock_s"]),
        )


@dataclass(frozen=True)
class TranscriptDivergence:
    """Where two transcripts first disagree (for error messages)."""

    index: int
    field: str
    ours: Any
    theirs: Any

    def describe(self) -> str:
        return (
            f"record {self.index}: {self.field} differs "
            f"({self.ours!r} != {self.theirs!r})"
        )


class Transcript:
    """An ordered, immutable log of every recorded message."""

    def __init__(self, records: Iterable[TranscriptRecord], meta: dict[str, Any] | None = None):
        self.records: tuple[TranscriptRecord, ...] = tuple(records)
        self.meta: dict[str, Any] = dict(meta or {})

    def __len__(self) -> int:
        return len(self.records)

    def __iter__(self) -> Iterator[TranscriptRecord]:
        return iter(self.records)

    @property
    def total_bytes(self) -> int:
        return sum(r.nbytes for r in self.records)

    def links(self) -> list[tuple[str, str]]:
        """Distinct ``(src, dst)`` pairs in first-seen order."""
        seen: dict[tuple[str, str], None] = {}
        for r in self.records:
            seen.setdefault((r.src, r.dst), None)
        return list(seen)

    def records_for(
        self,
        *,
        src: str | None = None,
        dst: str | None = None,
        tag_prefix: str | None = None,
    ) -> list[TranscriptRecord]:
        return [
            r for r in self.records
            if (src is None or r.src == src)
            and (dst is None or r.dst == dst)
            and (tag_prefix is None or r.tag.startswith(tag_prefix))
        ]

    def diff(self, other: "Transcript") -> TranscriptDivergence | None:
        """First divergence between two transcripts, or None if identical.

        Identity is record-for-record equality of :data:`IDENTITY_FIELDS`;
        captured payload bytes are excluded (the digest pins them).
        """
        for i, (a, b) in enumerate(zip(self.records, other.records)):
            for name in IDENTITY_FIELDS:
                va, vb = getattr(a, name), getattr(b, name)
                if va != vb:
                    return TranscriptDivergence(index=i, field=name, ours=va, theirs=vb)
        if len(self.records) != len(other.records):
            short = min(len(self.records), len(other.records))
            return TranscriptDivergence(
                index=short, field="length",
                ours=len(self.records), theirs=len(other.records),
            )
        return None

    def assert_identical(self, other: "Transcript", *, context: str = "") -> None:
        """The replay oracle: raise unless ``other`` is bit-identical."""
        div = self.diff(other)
        if div is not None:
            prefix = f"{context}: " if context else ""
            raise TranscriptMismatch(
                f"{prefix}transcripts diverge at {div.describe()} "
                f"(recorded {len(self)} messages, replayed {len(other)})"
            )

    def to_json(self) -> dict[str, Any]:
        return {
            "version": 1,
            "meta": self.meta,
            "messages": len(self.records),
            "total_bytes": self.total_bytes,
            "records": [r.to_json() for r in self.records],
        }

    @classmethod
    def from_json(cls, doc: dict[str, Any]) -> "Transcript":
        if doc.get("version") != 1:
            raise AuditError(f"unsupported transcript version: {doc.get('version')!r}")
        return cls(
            (TranscriptRecord.from_json(row) for row in doc["records"]),
            meta=doc.get("meta"),
        )

    def dump(self, path) -> None:
        with open(path, "w", encoding="utf-8") as fh:
            json.dump(self.to_json(), fh, indent=1)
            fh.write("\n")

    @classmethod
    def load(cls, path) -> "Transcript":
        with open(path, encoding="utf-8") as fh:
            return cls.from_json(json.load(fh))


class TranscriptRecorder:
    """Append-only message tap shared by all transport surfaces.

    Two kinds of traffic reach it:

    * **frames** via :meth:`tap_hub` — everything the actor runtime and
      the reliable transport push through a ``TransportHub`` (including
      retransmissions and duplicates, which is the point: the recorder
      sees the wire, not the protocol's idea of it);
    * **lockstep wire charges** via :meth:`record` — the masked-opening
      and share-upload hooks in :mod:`repro.core`, which never touch a
      hub because their cost is charged directly on the channels.

    The overhead budget is one digest per message; payload capture (for
    the chi-square wire audit) is opt-out via ``capture_payloads``.
    """

    def __init__(
        self,
        *,
        capture_payloads: bool = True,
        telemetry=None,
        meta: dict[str, Any] | None = None,
    ):
        self.capture_payloads = capture_payloads
        self.meta: dict[str, Any] = dict(meta or {})
        self._records: list[TranscriptRecord] = []
        self._msg_counter = None
        self._byte_counter = None
        if telemetry is not None:
            reg = telemetry.registry
            self._msg_counter = reg.counter(
                "audit.messages_recorded", "messages appended to the transcript"
            )
            self._byte_counter = reg.counter(
                "audit.bytes_recorded", "wire bytes appended to the transcript"
            )

    def __len__(self) -> int:
        return len(self._records)

    def record(
        self,
        src: str,
        dst: str,
        tag: str,
        payload: Any = None,
        *,
        nbytes: int | None = None,
        clock_s: float = 0.0,
        content: bytes | None = None,
    ) -> TranscriptRecord:
        """Append one message.

        ``payload`` is hashed (and, when capturing, flattened to raw
        bytes for the wire audit); pass ``payload=None`` with an explicit
        ``nbytes`` for size-only rounds such as the GMW comparison bits,
        whose per-bit content is not materialized by the simulation.
        ``content`` overrides the captured bytes when the observable wire
        form differs from the hashed logical payload.
        """
        if payload is None and nbytes is None:
            raise AuditError(f"record {src}->{dst} [{tag}]: need payload or nbytes")
        digest = payload_digest(payload) if payload is not None else ""
        captured: bytes | None = None
        if self.capture_payloads:
            if content is not None:
                captured = content
            elif payload is not None:
                captured = content_bytes(payload)
        if nbytes is None:
            nbytes = len(captured) if captured is not None else 0
        rec = TranscriptRecord(
            seq=len(self._records), src=src, dst=dst, tag=tag,
            nbytes=int(nbytes), digest=digest, clock_s=float(clock_s),
            payload=captured,
        )
        self._records.append(rec)
        if self._msg_counter is not None:
            self._msg_counter.inc(1, link=f"{src}->{dst}")
            self._byte_counter.inc(int(nbytes), link=f"{src}->{dst}")
        return rec

    def tap_hub(self, hub: "TransportHub", *, clock=None) -> Callable:
        """Attach to a hub; every ``send`` is recorded as a frame.

        Returns the tap callable so callers can detach it later with
        :meth:`TransportHub.remove_tap`.
        """

        def tap(src: str, dst: str, tag: str, payload: Any) -> None:
            body = content_bytes(payload)
            self.record(
                src, dst, f"frame/{tag}", payload,
                nbytes=len(body),
                clock_s=clock.now() if clock is not None else 0.0,
                content=body,
            )

        hub.add_tap(tap)
        return tap

    def transcript(self) -> Transcript:
        return Transcript(self._records, meta=self.meta)

    def clear(self) -> None:
        self._records.clear()
