"""ParSecureML reproduction — parallel secure machine learning framework.

The top-level package is the public API.  Start a session, build a
model, train, read the telemetry::

    import repro

    ctx = repro.api.session()
    model = repro.SecureMLP(ctx, n_features=784)
    report = repro.SecureTrainer(ctx, model).train(x, y, max_batches=2)
    print(ctx.telemetry.report())

Re-exported here:

* :func:`repro.api.session` / :class:`SecureContext` /
  :class:`FrameworkConfig` — deployment wiring;
* :class:`SharedTensor` — a secret-shared matrix;
* the paper's six benchmark models plus :class:`SecureResNet`,
  :class:`SecureAttention`, and :class:`SecureRecsys`;
* :func:`secure_matmul` and friends — the secure op primitives;
* :class:`SecureTrainer` / :func:`secure_predict` — drivers;
* :class:`Telemetry` — the observability surface every context owns.

Deep imports (``repro.core.…``, ``repro.pipeline.trace_export``) keep
working; the deprecated ones emit a single :class:`DeprecationWarning`.
See README.md for a quickstart and DESIGN.md for the system inventory.
"""

from repro import api
from repro.core.config import FrameworkConfig
from repro.faults import FaultPlan, PartyCrash, PartyFailure, ReliableTransport, RetryPolicy
from repro.core.context import SecureContext
from repro.core.inference import InferenceReport, secure_predict
from repro.core.models import (
    SecureCNN,
    SecureLinearRegression,
    SecureLogisticRegression,
    SecureMLP,
    SecureRNN,
    SecureSVM,
)
from repro.core.attention import SecureAttention, SecureAttentionBlock
from repro.core.ops import (
    activation,
    secure_compare_const,
    secure_elementwise_mul,
    secure_matmul,
    secure_softmax,
    truncate,
)
from repro.core.recsys import SecureEmbedding, SecureRecsys
from repro.core.resnet import SecureResNet
from repro.core.tensor import SharedTensor
from repro.core.training import SecureTrainer, TrainReport
from repro.serve import (
    DealerService,
    FleetRouter,
    QueueFullError,
    Replica,
    SecureInferenceServer,
    SecureServingFleet,
    ServeReport,
)
from repro.telemetry import Telemetry
from repro import audit
from repro import protocols
from repro.protocols import available_backends, get_backend
from repro.audit import (
    Transcript,
    TranscriptRecorder,
    WireAuditReport,
    audit_transcript,
    run_conformance_sweep,
)
from repro import serve

# Single source of truth for the distribution version: pyproject.toml
# reads this attribute via [tool.setuptools.dynamic].
__version__ = "1.8.0"

__all__ = [
    "api",
    "FrameworkConfig",
    "SecureContext",
    "SharedTensor",
    "Telemetry",
    "SecureMLP",
    "SecureCNN",
    "SecureRNN",
    "SecureLinearRegression",
    "SecureLogisticRegression",
    "SecureSVM",
    "SecureResNet",
    "SecureAttention",
    "SecureAttentionBlock",
    "SecureRecsys",
    "SecureEmbedding",
    "secure_matmul",
    "secure_elementwise_mul",
    "secure_softmax",
    "secure_compare_const",
    "activation",
    "truncate",
    "SecureTrainer",
    "TrainReport",
    "secure_predict",
    "InferenceReport",
    "serve",
    "Replica",
    "SecureServingFleet",
    "FleetRouter",
    "DealerService",
    "SecureInferenceServer",
    "ServeReport",
    "QueueFullError",
    "FaultPlan",
    "PartyCrash",
    "PartyFailure",
    "RetryPolicy",
    "ReliableTransport",
    "audit",
    "protocols",
    "get_backend",
    "available_backends",
    "Transcript",
    "TranscriptRecorder",
    "WireAuditReport",
    "audit_transcript",
    "run_conformance_sweep",
    "__version__",
]
