"""ParSecureML reproduction — parallel secure machine learning framework.

The public API re-exports the pieces a downstream user needs:

* :class:`repro.core.context.SecureContext` — wires a client and two
  servers with simulated GPUs and network channels;
* :class:`repro.core.tensor.SharedTensor` — a secret-shared matrix;
* the secure models in :mod:`repro.core.models`;
* the baselines in :mod:`repro.baselines` for comparison runs.

See README.md for a quickstart and DESIGN.md for the system inventory.
"""

__version__ = "1.0.0"
