"""Deterministic seed derivation.

Every stochastic component in the framework (share splitting, triplet
generation, synthetic datasets, model initialisation) draws its entropy
from a :class:`numpy.random.Generator` seeded through this module, so the
whole system — including the two-party protocol transcripts — replays
bit-for-bit from a single root seed.

Seeds are derived by hashing ``(root_seed, label)`` with BLAKE2b rather
than by incrementing a counter, so adding a new consumer never perturbs
the streams of existing ones (the classic "seed drift" problem in large
simulations).
"""

from __future__ import annotations

import hashlib

import numpy as np

__all__ = ["derive_seed", "SeedSequenceFactory"]


def derive_seed(root_seed: int, label: str) -> int:
    """Derive a 64-bit child seed from ``root_seed`` and a textual label.

    The derivation is stable across processes and Python versions (BLAKE2b
    of the decimal seed plus the UTF-8 label).
    """
    h = hashlib.blake2b(digest_size=8)
    h.update(str(int(root_seed)).encode("ascii"))
    h.update(b"\x00")
    h.update(label.encode("utf-8"))
    return int.from_bytes(h.digest(), "little")


class SeedSequenceFactory:
    """Hands out independent :class:`numpy.random.Generator` instances.

    Each consumer asks by label; repeated requests for the same label give
    generators with identical streams, which makes protocol replay in tests
    straightforward.
    """

    def __init__(self, root_seed: int = 0):
        self.root_seed = int(root_seed)

    def seed_for(self, label: str) -> int:
        """Return the derived integer seed for ``label``."""
        return derive_seed(self.root_seed, label)

    def generator(self, label: str) -> np.random.Generator:
        """Return a fresh PCG64 generator dedicated to ``label``."""
        return np.random.Generator(np.random.PCG64(self.seed_for(label)))

    def spawn(self, label: str) -> "SeedSequenceFactory":
        """Create a child factory whose root is derived from ``label``.

        Lets a subsystem (e.g. one server) own its own namespace of labels
        without colliding with its sibling's.
        """
        return SeedSequenceFactory(self.seed_for(label))
