"""Validation helpers producing actionable error messages.

These are deliberately cheap (O(1) checks on ``.shape`` / scalars) so they
can sit on hot paths without showing up in profiles; anything O(n) belongs
in the caller behind a debug flag.
"""

from __future__ import annotations

import numbers

import numpy as np

from repro.util.errors import ConfigError, ShapeError


def check_matrix(arr: np.ndarray, name: str = "array") -> np.ndarray:
    """Require ``arr`` to be a 2-D ndarray; return it unchanged.

    Raises :class:`ShapeError` naming the offending argument otherwise.
    """
    if not isinstance(arr, np.ndarray):
        raise ShapeError(f"{name} must be a numpy.ndarray, got {type(arr).__name__}")
    if arr.ndim != 2:
        raise ShapeError(f"{name} must be 2-D, got ndim={arr.ndim} with shape {arr.shape}")
    return arr


def check_same_shape(a: np.ndarray, b: np.ndarray, name_a: str = "a", name_b: str = "b") -> None:
    """Require two arrays to have identical shapes."""
    if a.shape != b.shape:
        raise ShapeError(
            f"{name_a} and {name_b} must have the same shape; got {a.shape} vs {b.shape}"
        )


def check_matmul_compatible(
    a: np.ndarray, b: np.ndarray, name_a: str = "a", name_b: str = "b"
) -> None:
    """Require ``a @ b`` to be well-defined for 2-D operands."""
    check_matrix(a, name_a)
    check_matrix(b, name_b)
    if a.shape[1] != b.shape[0]:
        raise ShapeError(
            f"matmul shape mismatch: {name_a} is {a.shape}, {name_b} is {b.shape}; "
            f"inner dimensions {a.shape[1]} != {b.shape[0]}"
        )


def check_positive(value: float, name: str, *, strict: bool = True) -> float:
    """Require a scalar to be positive (or non-negative when strict=False)."""
    if not isinstance(value, numbers.Real):
        raise ConfigError(f"{name} must be a real number, got {type(value).__name__}")
    if strict and not value > 0:
        raise ConfigError(f"{name} must be > 0, got {value!r}")
    if not strict and value < 0:
        raise ConfigError(f"{name} must be >= 0, got {value!r}")
    return float(value)


def check_probability(value: float, name: str) -> float:
    """Require a scalar in the closed interval [0, 1]."""
    if not isinstance(value, numbers.Real) or not 0.0 <= float(value) <= 1.0:
        raise ConfigError(f"{name} must lie in [0, 1], got {value!r}")
    return float(value)
