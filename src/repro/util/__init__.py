"""Shared utilities: errors, validation helpers, deterministic seeding.

This package holds the small pieces every substrate leans on so that the
substrates themselves stay focused: a common exception hierarchy, shape and
dtype validation that produces actionable messages, and seed-derivation
helpers so every stochastic component of the framework is reproducible from
a single root seed.
"""

from repro.util.errors import (
    ReproError,
    ShapeError,
    ProtocolError,
    DeviceError,
    TransportError,
    ConfigError,
    AuditError,
    TranscriptMismatch,
)
from repro.util.validation import (
    check_matrix,
    check_same_shape,
    check_matmul_compatible,
    check_positive,
    check_probability,
)
from repro.util.seeding import derive_seed, SeedSequenceFactory

__all__ = [
    "ReproError",
    "ShapeError",
    "ProtocolError",
    "DeviceError",
    "TransportError",
    "ConfigError",
    "AuditError",
    "TranscriptMismatch",
    "check_matrix",
    "check_same_shape",
    "check_matmul_compatible",
    "check_positive",
    "check_probability",
    "derive_seed",
    "SeedSequenceFactory",
]
