"""Exception hierarchy for the repro framework.

All framework-raised exceptions derive from :class:`ReproError` so callers
can catch everything the library raises with a single except clause while
still being able to discriminate failure classes.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for every exception raised by the repro framework."""


class ShapeError(ReproError, ValueError):
    """An array had an incompatible shape or dimensionality."""


class ProtocolError(ReproError, RuntimeError):
    """A two-party-computation protocol invariant was violated.

    Raised when messages arrive out of order, a triplet is reused, shares
    from mismatched sharings are combined, or a party attempts a step whose
    prerequisites have not run.
    """


class DeviceError(ReproError, RuntimeError):
    """A simulated-GPU operation was invalid.

    Examples: operating on a freed buffer, launching a kernel on buffers
    that live on a different device, exceeding device memory.
    """


class TransportError(ReproError, RuntimeError):
    """Inter-party message delivery failed or was misused."""


class ConfigError(ReproError, ValueError):
    """A configuration value was out of range or inconsistent."""


class ServeError(ReproError, RuntimeError):
    """The serving layer rejected or failed a request."""

    #: Whether resubmitting the same request later can succeed.
    retryable = False


class QueueFullError(ServeError):
    """Admission control rejected a request: the queue is at capacity.

    Retryable backpressure — nothing was enqueued and no offline
    material was consumed, so the client should back off and resubmit.
    """

    retryable = True


class AuditError(ReproError, RuntimeError):
    """The conformance/audit harness found or hit a problem.

    Raised when a wire-view audit exceeds the chi-square ceiling, a
    recorder is misused, or a transcript cannot be loaded.
    """


class TranscriptMismatch(AuditError):
    """A replayed session's transcript diverged from the recording.

    The replay oracle's failure mode: some refactor changed the
    protocol's wire behaviour (message order, sizes, bytes, or timing).
    """
