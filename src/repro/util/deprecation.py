"""Warn-once deprecation plumbing for the public-API renovation.

Every deprecated call form funnels through :func:`warn_deprecated`,
which emits exactly one :class:`DeprecationWarning` per distinct key per
process — loud enough to notice, quiet enough not to drown a training
loop that hits a shimmed path once per batch.
"""

from __future__ import annotations

import warnings

_emitted: set[str] = set()


def warn_deprecated(key: str, message: str, *, stacklevel: int = 3) -> None:
    """Emit ``message`` as a DeprecationWarning once per ``key``."""
    if key in _emitted:
        return
    _emitted.add(key)
    warnings.warn(message, DeprecationWarning, stacklevel=stacklevel)


def reset_deprecation_warnings() -> None:
    """Forget which warnings fired (test isolation helper)."""
    _emitted.clear()
