"""Fixed-point arithmetic over the ring Z_{2^64}.

Two-party additive secret sharing needs a finite ring; following SecureML
(and therefore ParSecureML) we use the integers modulo 2^64, represented as
``numpy.uint64`` arrays whose natural wrap-around *is* the ring operation.
Real-valued data is embedded with a two's-complement fixed-point encoding
with ``frac_bits`` fractional bits (SecureML's choice of 13 is the
default).

The one subtle piece is multiplication: the product of two encodings
carries ``2 * frac_bits`` fractional bits and must be truncated.  SecureML
showed that each party may truncate *its own share locally* and the
reconstruction is still correct up to 1 ulp with overwhelming probability
(failure probability ~ 2^{-(64 - 2*magnitude_bits)}); that protocol is
implemented in :mod:`repro.fixedpoint.truncation`.
"""

from repro.fixedpoint.encoding import FixedPointEncoder, RING_BITS
from repro.fixedpoint.ring import (
    RING_DTYPE,
    ring_add,
    ring_sub,
    ring_neg,
    ring_mul,
    ring_matmul,
    ring_sum,
)
from repro.fixedpoint.truncation import truncate_share, truncate_public

__all__ = [
    "FixedPointEncoder",
    "RING_DTYPE",
    "RING_BITS",
    "ring_add",
    "ring_sub",
    "ring_neg",
    "ring_mul",
    "ring_matmul",
    "ring_sum",
    "truncate_share",
    "truncate_public",
]
