"""Elementwise and matrix operations in Z_{2^64}.

``numpy.uint64`` addition/subtraction/multiplication already wrap modulo
2^64, which is exactly the ring arithmetic we need.  The helpers here
exist to (a) centralise the intentional-overflow sites so the rest of the
codebase stays warning-clean, and (b) supply a *fast* ring matmul: NumPy
routes integer matmul through a scalar inner loop (no BLAS), which is two
orders of magnitude slower than dgemm at the sizes secure training uses.

Fast ring matmul: exact 16-bit limb decomposition over float64 BLAS
-------------------------------------------------------------------
Write each operand as four 16-bit limbs, ``x = sum_i x_i * 2^(16 i)``.
Then

    (a @ b) mod 2^64 = sum_{i+j <= 3} (a_i @ b_j) << 16*(i+j)   (mod 2^64)

because limb pairs with ``i + j >= 4`` only contribute multiples of 2^64.
Each partial product ``a_i @ b_j`` is a matmul of matrices with entries
below 2^16, so every term is below 2^32 and a sum over an inner dimension
``k`` stays below ``k * 2^32``.  float64 integers are exact below 2^53,
so for ``k <= 2^20`` the ten dgemms are *exact* and we reassemble the
result in uint64 where the shifts wrap as required.  Inner dimensions
beyond 2^20 are handled by chunking the sum (each chunk exact, chunks
added in uint64 which wraps correctly).
"""

from __future__ import annotations

import numpy as np

from repro.util.validation import check_matmul_compatible

RING_DTYPE = np.uint64
_LIMB_BITS = 16
_LIMB_MASK = np.uint64((1 << _LIMB_BITS) - 1)
# Max inner dimension for which limb partial sums stay exact in float64:
# term < 2^32, float64 exact to 2^53 -> k <= 2^20 (with margin).
_MAX_EXACT_K = 1 << 20


def _as_ring(x: np.ndarray) -> np.ndarray:
    """View/convert an integer array as ring elements (uint64)."""
    arr = np.asarray(x)
    if arr.dtype == RING_DTYPE:
        return arr
    if not np.issubdtype(arr.dtype, np.integer):
        raise TypeError(f"ring operations require integer arrays, got dtype {arr.dtype}")
    return arr.astype(RING_DTYPE, copy=False)


def ring_add(a: np.ndarray, b: np.ndarray, *, out: np.ndarray | None = None) -> np.ndarray:
    """a + b in Z_{2^64} (elementwise, broadcasting allowed).

    ``out=`` writes the result into an existing uint64 array (which may
    alias an operand), skipping the intermediate allocation — the fast
    path the triplet pool and the GEMM scheduler use on their hot loops.
    """
    a, b = _as_ring(a), _as_ring(b)
    with np.errstate(over="ignore"):
        if out is None:
            return a + b
        return np.add(a, b, out=out)


def ring_sub(a: np.ndarray, b: np.ndarray, *, out: np.ndarray | None = None) -> np.ndarray:
    """a - b in Z_{2^64} (``out=`` as in :func:`ring_add`)."""
    a, b = _as_ring(a), _as_ring(b)
    with np.errstate(over="ignore"):
        if out is None:
            return a - b
        return np.subtract(a, b, out=out)


def ring_neg(a: np.ndarray, *, out: np.ndarray | None = None) -> np.ndarray:
    """-a in Z_{2^64} (``out=`` as in :func:`ring_add`; may alias ``a``)."""
    a = _as_ring(a)
    with np.errstate(over="ignore"):
        if out is None:
            return np.uint64(0) - a
        return np.subtract(np.uint64(0), a, out=out)


def ring_mul(a: np.ndarray, b: np.ndarray, *, out: np.ndarray | None = None) -> np.ndarray:
    """Elementwise a * b in Z_{2^64} (``out=`` as in :func:`ring_add`)."""
    a, b = _as_ring(a), _as_ring(b)
    with np.errstate(over="ignore"):
        if out is None:
            return a * b
        return np.multiply(a, b, out=out)


def ring_sum(a: np.ndarray, axis=None) -> np.ndarray:
    """Sum of ring elements along ``axis`` (wraps modulo 2^64)."""
    a = _as_ring(a)
    with np.errstate(over="ignore"):
        return a.sum(axis=axis, dtype=RING_DTYPE)


def _limbs(x: np.ndarray) -> list[np.ndarray]:
    """Split a uint64 matrix into four float64 matrices of 16-bit limbs."""
    out = []
    for i in range(4):
        shift = np.uint64(_LIMB_BITS * i)
        out.append(((x >> shift) & _LIMB_MASK).astype(np.float64))
    return out


def _ring_matmul_exact_chunk(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    """Exact ring matmul for inner dimension <= _MAX_EXACT_K."""
    a_limbs = _limbs(a)
    b_limbs = _limbs(b)
    result = np.zeros((a.shape[0], b.shape[1]), dtype=RING_DTYPE)
    with np.errstate(over="ignore"):
        for i in range(4):
            for j in range(4 - i):
                partial = a_limbs[i] @ b_limbs[j]
                # Partial sums are exact integers < 2^53, so the uint64
                # conversion is lossless; the shift then wraps mod 2^64.
                result += partial.astype(RING_DTYPE) << np.uint64(_LIMB_BITS * (i + j))
    return result


def ring_matmul(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    """Matrix product a @ b in Z_{2^64} (exact, BLAS-backed).

    Uses the 16-bit limb decomposition described in the module docstring.
    Inner dimensions larger than 2^20 are split into exact chunks whose
    partial results are accumulated with wrapping uint64 addition.
    """
    a, b = _as_ring(a), _as_ring(b)
    check_matmul_compatible(a, b)
    k = a.shape[1]
    if k <= _MAX_EXACT_K:
        return _ring_matmul_exact_chunk(a, b)
    result = np.zeros((a.shape[0], b.shape[1]), dtype=RING_DTYPE)
    for start in range(0, k, _MAX_EXACT_K):
        stop = min(start + _MAX_EXACT_K, k)
        ring_add(result, _ring_matmul_exact_chunk(a[:, start:stop], b[start:stop, :]), out=result)
    return result


def _ring_matmul_batched_chunk(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    """Exact stacked ring matmul, inner dimension <= _MAX_EXACT_K.

    ``a`` is (B, m, k), ``b`` is (B, k, n); the ten limb products become
    ten *batched* ``np.matmul`` calls (one BLAS round trip each for the
    whole stack) instead of ``10 B`` separate dgemms — the dealer-side
    fusion the offline pool relies on.
    """
    a_limbs = _limbs(a)
    b_limbs = _limbs(b)
    result = np.zeros((a.shape[0], a.shape[1], b.shape[2]), dtype=RING_DTYPE)
    with np.errstate(over="ignore"):
        for i in range(4):
            for j in range(4 - i):
                partial = np.matmul(a_limbs[i], b_limbs[j])
                shifted = partial.astype(RING_DTYPE)
                np.left_shift(shifted, np.uint64(_LIMB_BITS * (i + j)), out=shifted)
                ring_add(result, shifted, out=result)
    return result


def ring_matmul_batched(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    """Stacked matrix product ``a[i] @ b[i]`` in Z_{2^64} for all i.

    ``a`` is (B, m, k) and ``b`` is (B, k, n); returns (B, m, n).  Exact
    via the same limb decomposition as :func:`ring_matmul`, with the B
    products fused into batched BLAS calls.  Inner dimensions beyond
    2^20 are chunked exactly as in the 2-D case.
    """
    a, b = _as_ring(a), _as_ring(b)
    if a.ndim != 3 or b.ndim != 3:
        raise ValueError(f"ring_matmul_batched needs 3-D stacks, got {a.shape} and {b.shape}")
    if a.shape[0] != b.shape[0] or a.shape[2] != b.shape[1]:
        raise ValueError(f"stacked shapes incompatible for matmul: {a.shape} x {b.shape}")
    k = a.shape[2]
    if k <= _MAX_EXACT_K:
        return _ring_matmul_batched_chunk(a, b)
    result = np.zeros((a.shape[0], a.shape[1], b.shape[2]), dtype=RING_DTYPE)
    for start in range(0, k, _MAX_EXACT_K):
        stop = min(start + _MAX_EXACT_K, k)
        ring_add(
            result, _ring_matmul_batched_chunk(a[:, :, start:stop], b[:, start:stop, :]), out=result
        )
    return result
