"""SecureML's local-share truncation protocol.

After a fixed-point multiplication the (secret-shared) product carries
``2 * frac_bits`` fractional bits.  Re-scaling an additively shared value
looks like it should need interaction, but SecureML (S&P'17, Theorem 1)
showed that when the underlying value ``x`` satisfies ``|x| < 2^(l-1) / 2
- 2^(l-1-lambda)`` each party can simply truncate *its own share*:

* party 0 computes ``floor(x0 / 2^d)``;
* party 1 computes ``2^64 - floor((2^64 - x1) / 2^d)`` (i.e. truncates the
  ring-complement and negates back).

The reconstruction then equals ``floor(x / 2^d)`` plus an error of at most
one unit in the last place, except with probability ~ ``2^{-lambda}``
where ``lambda`` is the slack between the value's magnitude bound and the
ring size — astronomically small for ML-scale values in a 64-bit ring.

``truncate_public`` is the plain (non-shared) counterpart used by the
baselines and by tests as ground truth.
"""

from __future__ import annotations

import numpy as np

from repro.fixedpoint.ring import RING_DTYPE, ring_neg
from repro.util.errors import ProtocolError


def truncate_public(x: np.ndarray, frac_bits: int) -> np.ndarray:
    """Arithmetic right-shift of a *public* ring value by ``frac_bits``.

    Interprets ``x`` as two's complement, shifts, and re-embeds, so the
    result matches the signed semantics of the fixed-point encoding.
    """
    signed = np.asarray(x, dtype=RING_DTYPE).view(np.int64)
    return (signed >> np.int64(frac_bits)).view(RING_DTYPE)


def truncate_share(
    share: np.ndarray,
    frac_bits: int,
    party_id: int,
    *,
    out: np.ndarray | None = None,
) -> np.ndarray:
    """Truncate one additive share per the SecureML local protocol.

    Parameters
    ----------
    share:
        This party's additive share (uint64 ring elements).
    frac_bits:
        Number of low bits to drop (the extra fractional scale).
    party_id:
        0 or 1; party 1 truncates the complement so that the two local
        results still sum to the truncated secret.
    out:
        Optional uint64 destination (may alias ``share``); party 1's
        neg-shift-neg then runs fully in place.  Without it the party-1
        path still reuses one scratch buffer for all three steps instead
        of allocating per step.
    """
    if party_id not in (0, 1):
        raise ProtocolError(f"party_id must be 0 or 1, got {party_id}")
    x = np.asarray(share, dtype=RING_DTYPE)
    d = np.uint64(frac_bits)
    if party_id == 0:
        if out is None:
            return x >> d
        return np.right_shift(x, d, out=out)
    neg = ring_neg(x, out=out)
    np.right_shift(neg, d, out=neg)
    return ring_neg(neg, out=neg)
