"""Fixed-point embedding of real values into Z_{2^64}.

A real ``x`` is encoded as ``round(x * 2^frac_bits)`` reduced modulo 2^64
(two's complement: negative values map to the upper half of the ring).
Decoding centres the ring on zero and divides the scale back out.

The encoder also knows how to decode *double-scale* values — products of
two encodings carry ``2 * frac_bits`` fractional bits until truncated —
which the tests use to check the truncation protocol against ground truth.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.util.errors import ConfigError

RING_BITS = 64
_RING_MODULUS = 1 << RING_BITS
_HALF_RING = np.uint64(1 << (RING_BITS - 1))


@dataclass(frozen=True)
class FixedPointEncoder:
    """Encode/decode floats to/from the 64-bit ring.

    Parameters
    ----------
    frac_bits:
        Number of fractional bits (the SecureML default is 13).
    """

    frac_bits: int = 13

    def __post_init__(self):
        if not 1 <= self.frac_bits <= 30:
            raise ConfigError(
                f"frac_bits must be in [1, 30] so double-scale products stay "
                f"well inside the ring, got {self.frac_bits}"
            )

    @property
    def scale(self) -> int:
        """Integer scale factor 2^frac_bits."""
        return 1 << self.frac_bits

    @property
    def resolution(self) -> float:
        """Smallest representable increment, 2^-frac_bits."""
        return 1.0 / self.scale

    def max_magnitude(self) -> float:
        """Largest |x| whose *product* with a same-size value stays safe.

        Local truncation (SecureML) requires encoded magnitudes to stay
        well below 2^(RING_BITS - 2) even at double scale; we expose the
        bound so models can clip gradients against it.
        """
        # double-scale encoding must stay strictly below 2^(RING_BITS - 2)
        return float(2 ** ((RING_BITS - 3 - 2 * self.frac_bits) / 2))

    def encode(self, x: np.ndarray | float) -> np.ndarray:
        """Encode floats into ring elements (rounding to nearest)."""
        arr = np.asarray(x, dtype=np.float64)
        scaled = np.rint(arr * self.scale)
        # int64 cast gives two's complement; viewing as uint64 lands the
        # value in the ring without a Python-level mod.
        return scaled.astype(np.int64).view(np.uint64)

    def decode(self, x: np.ndarray, *, double_scale: bool = False) -> np.ndarray:
        """Decode ring elements back to floats.

        With ``double_scale=True`` the input is interpreted as carrying
        ``2 * frac_bits`` fractional bits (an untruncated product).
        """
        arr = np.asarray(x, dtype=np.uint64)
        signed = arr.view(np.int64).astype(np.float64)
        scale = float(self.scale) ** (2 if double_scale else 1)
        return signed / scale

    def encode_int(self, x: np.ndarray) -> np.ndarray:
        """Embed *integers* into the ring without fractional scaling."""
        return np.asarray(x).astype(np.int64).view(np.uint64)
