"""Backend registry: name -> ProtocolBackend singleton."""

from __future__ import annotations

from repro.protocols.base import ProtocolBackend
from repro.util.errors import ConfigError

_REGISTRY: dict[str, ProtocolBackend] = {}


def register_backend(backend: ProtocolBackend) -> ProtocolBackend:
    """Register a backend instance under its ``name``; returns it."""
    if not backend.name or backend.name == "abstract":
        raise ConfigError("protocol backend must declare a concrete name")
    _REGISTRY[backend.name] = backend
    return backend


def get_backend(name: str) -> ProtocolBackend:
    """Look up a registered backend by name."""
    try:
        return _REGISTRY[name]
    except KeyError:
        raise ConfigError(
            f"unknown protocol backend {name!r}; available: {available_backends()}"
        ) from None


def available_backends() -> tuple[str, ...]:
    return tuple(sorted(_REGISTRY))
