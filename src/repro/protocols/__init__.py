"""Pluggable MPC protocol backends.

The framework's secure ops (``repro.core.ops``) dispatch through a
:class:`~repro.protocols.base.ProtocolBackend`, selected per context by
``FrameworkConfig.backend`` (or ``repro.api.session(backend=...)``):

* ``beaver2pc`` — the paper's 2-party Beaver-triplet substrate
  (default; bit-identical to the pre-refactor hard-wired path);
* ``rep3`` — 3-party replicated secret sharing (ABY3-style),
  dealer-free multiplication with one resharing round.

Every backend must pass the differential conformance sweep and the
chi-square wire-view auditor; see ``repro.protocols.base`` for the
contract and DESIGN.md for the rep3 protocol description.
"""

from repro.protocols.base import ProtocolBackend
from repro.protocols.beaver2pc import Beaver2PCBackend
from repro.protocols.registry import available_backends, get_backend, register_backend
from repro.protocols.rep3 import Rep3Backend

register_backend(Beaver2PCBackend())
register_backend(Rep3Backend())

__all__ = [
    "ProtocolBackend",
    "Beaver2PCBackend",
    "Rep3Backend",
    "available_backends",
    "get_backend",
    "register_backend",
]
