"""The paper's 2PC substrate: Beaver-triplet masked multiplication.

This is the framework's default backend, extracted verbatim from the
pre-refactor ``repro.core.ops`` bodies — its transcripts are
bit-identical to the hard-wired implementation it replaced (guarded by
a committed pre-refactor reference transcript in
``tests/data/beaver2pc_mlp_train_transcript.json``).

Two servers hold additive shares; a trusted dealer (the data-owning
client, per the paper) provisions Beaver triplets and GC comparison
bundles in the offline phase.  Multiplication opens the masked
differences ``E = X - U`` / ``F = Y - V`` (Eq. 4-5) through the
delta-compression layer and applies the fused Eq. 8 product on the
placement the profiler picks; truncation is the SecureML share-local
rescale.
"""

from __future__ import annotations

import numpy as np

from repro.comm.wire import RoundCoalescer, blob_frame_sizes, frame_sizes
from repro.core import ops as core_ops
from repro.core.ops import _chain, _deps, _set_chain
from repro.core.tensor import SharedTensor
from repro.fixedpoint.ring import ring_add, ring_sub
from repro.fixedpoint.truncation import truncate_share
from repro.mpc.comparison import emulated_ge_const, secure_ge_const
from repro.mpc.protocol import beaver_elementwise_share
from repro.mpc.shares import reconstruct, share_secret
from repro.pipeline.scheduler import StagedGemmOperands, schedule_secure_gemm
from repro.protocols.base import ProtocolBackend
from repro.util.errors import ProtocolError


def _exchange_masked(ctx, label, locals_, local_tasks):
    """Eq. 5: exchange per-server masked matrices and combine.

    ``locals_[i]`` is server i's ``E_i`` (or ``F_i``); returns the public
    combined matrix plus, per server, the task after which that server
    holds it.  Transmission goes through each direction's
    :class:`~repro.comm.compression.DeltaCompressor`.
    """
    combined = ring_add(locals_[0], locals_[1])
    recv_tasks = []
    send_tasks = {}
    framed = ctx.config.wire_frames or ctx.config.coalesce_rounds
    for src in (0, 1):
        dst = 1 - src
        payload = ctx.compressors[(src, dst)].encode(f"{label}/{src}", locals_[src])
        # Sender-side compression scan (cheap, bandwidth bound).
        scan = ctx.server_reconstruct_cpu[src].run(
            ctx.config.cpu_spec.elementwise_seconds(
                locals_[src].nbytes, parallel=ctx.config.cpu_parallel
            )
            * (0.5 if ctx.config.compression else 0.0),
            deps=_deps(local_tasks[src]),
            label=f"{label}:compress",
        )
        if framed:
            # Charge the exact framed size (header + raw body) of what
            # would cross the transport, not the raw-array estimate.
            sizes = frame_sizes(f"{label}/{src}", payload.wire_view())
            send_tasks[src] = ctx.server_channel.send_framed(
                f"server{src}", f"server{dst}", sizes, deps=(scan,), label=f"{label}:send"
            )
            wire_nbytes = sizes.nbytes
        else:
            send_tasks[src] = ctx.server_channel.send(
                f"server{src}", f"server{dst}", payload.wire_bytes,
                deps=(scan,), label=f"{label}:send",
            )
            wire_nbytes = payload.wire_bytes
        # Transcript tap: log the masked matrix the receiver can
        # reconstruct (the information content of the wire), not the
        # CSR delta encoding — deltas of truncated shares are
        # legitimately non-uniform, the masked matrix must not be.
        ctx.record_wire(
            f"server{src}", f"server{dst}", f"{label}/{src}",
            locals_[src], nbytes=wire_nbytes,
        )
        # Receiver replays the compressor state machine for exactness.
        decoded = ctx.compressors[(src, dst)].decode(payload)
        if not np.array_equal(decoded, locals_[src]):  # pragma: no cover - invariant
            raise ProtocolError(f"compression round-trip mismatch on stream {label}/{src}")
    for dst in (0, 1):
        src = 1 - dst
        combine = ctx.server_reconstruct_cpu[dst].elementwise(
            ring_add,
            [locals_[dst], locals_[src]],
            deps=_deps(local_tasks[dst], send_tasks[src]),
            label=f"{label}:combine",
        )[1]
        recv_tasks.append(combine)
    return combined, recv_tasks


def _exchange_masked_pair(ctx, label, e_locals, e_tasks, f_locals, f_tasks):
    """Coalesced Eq. 5 round: E_i and F_i ride one framed message each way.

    The baseline sends the two masked differences of one multiplication
    as two messages per direction; they belong to the same protocol
    round, so a :class:`~repro.comm.wire.RoundCoalescer` packs them into
    one frame per (link, round) — one latency charge instead of two.
    Compression streams keep their baseline keys (``{label}/E/{src}``),
    so the dense/CSR decisions are unchanged; only message packing and
    therefore cost differs.  Returns ``(e, e_tasks, f, f_tasks)`` with
    the same meaning as two :func:`_exchange_masked` calls.
    """
    e = ring_add(e_locals[0], e_locals[1])
    f = ring_add(f_locals[0], f_locals[1])
    coalescer = RoundCoalescer(f"{label}/EF")
    payloads = {}
    for src in (0, 1):
        dst = 1 - src
        pe = ctx.compressors[(src, dst)].encode(f"{label}/E/{src}", e_locals[src])
        pf = ctx.compressors[(src, dst)].encode(f"{label}/F/{src}", f_locals[src])
        coalescer.add(f"server{src}", f"server{dst}", f"{label}/E/{src}", pe.wire_view())
        coalescer.add(f"server{src}", f"server{dst}", f"{label}/F/{src}", pf.wire_view())
        payloads[src] = (pe, pf)
    send_tasks = {}
    for frame in coalescer.flush():
        src = int(frame.src.removeprefix("server"))
        dst = 1 - src
        # One compression scan covers both matrices of the round.
        scan = ctx.server_reconstruct_cpu[src].run(
            ctx.config.cpu_spec.elementwise_seconds(
                e_locals[src].nbytes + f_locals[src].nbytes,
                parallel=ctx.config.cpu_parallel,
            )
            * (0.5 if ctx.config.compression else 0.0),
            deps=_deps(e_tasks[src], f_tasks[src]),
            label=f"{label}:compress",
        )
        send_tasks[src] = ctx.server_channel.send_framed(
            frame.src, frame.dst, frame.sizes,
            deps=(scan,), label=f"{label}:sendEF", parts=frame.n_parts,
        )
        # One transcript record per packed frame; its captured content is
        # the concatenation of the parts' masked matrices, so per-link
        # content streams stay byte-identical to the uncoalesced run.
        ctx.record_wire(
            frame.src, frame.dst, f"{label}/EF/{src}",
            (e_locals[src], f_locals[src]), nbytes=frame.sizes.nbytes,
        )
        for payload, locals_ in zip(payloads[src], (e_locals[src], f_locals[src])):
            decoded = ctx.compressors[(src, dst)].decode(payload)
            if not np.array_equal(decoded, locals_):  # pragma: no cover - invariant
                raise ProtocolError(
                    f"compression round-trip mismatch on stream {payload.key}"
                )
    e_recv, f_recv = [], []
    for dst in (0, 1):
        src = 1 - dst
        ce = ctx.server_reconstruct_cpu[dst].elementwise(
            ring_add,
            [e_locals[dst], e_locals[src]],
            deps=_deps(e_tasks[dst], send_tasks[src]),
            label=f"{label}:combineE",
        )[1]
        cf = ctx.server_reconstruct_cpu[dst].elementwise(
            ring_add,
            [f_locals[dst], f_locals[src]],
            deps=_deps(f_tasks[dst], send_tasks[src]),
            label=f"{label}:combineF",
        )[1]
        e_recv.append(ce)
        f_recv.append(cf)
    return e, e_recv, f, f_recv


class Beaver2PCBackend(ProtocolBackend):
    name = "beaver2pc"
    n_parties = 2
    needs_dealer = True
    compare_parties = (0, 1)

    # --- share algebra ------------------------------------------------------

    def share_secret(self, secret, rng):
        # Returns the classic SharePair (indexable; .share0/.share1 kept
        # for the existing 2-party call sites).
        return share_secret(secret, rng)

    def reconstruct(self, shares):
        return reconstruct(shares[0], shares[1])

    def truncate_values(self, shares, bits):
        return tuple(truncate_share(shares[i], bits, i) for i in (0, 1))

    # --- client upload accounting -------------------------------------------

    def upload_nbytes(self, nbytes):
        return nbytes

    def upload_payloads(self, shares):
        return (shares[0], shares[1])

    # --- interactive protocols ----------------------------------------------

    def truncate(self, ctx, x, *, label):
        """Local-truncation rescale of a double-scale product (both servers)."""
        frac = ctx.encoder.frac_bits
        shares = []
        tasks = []
        for i in (0, 1):
            result, task = ctx.server_cpu[i].elementwise(
                lambda s, i=i: truncate_share(s, frac, i),
                [x.shares[i]],
                deps=_deps(x.tasks[i]),
                label=label,
            )
            shares.append(result)
            tasks.append(task)
        return SharedTensor(ctx=ctx, shares=tuple(shares), kind="fixed", tasks=tuple(tasks))

    def matmul(self, ctx, x, y, m, k, n, both_fixed, *, label, truncate_result):
        # --- offline ---------------------------------------------------------
        triplet = ctx.get_matrix_triplet(label, x.shape, y.shape)

        # --- static-operand mask reuse (config.static_mask_reuse) ------------
        # For a static operand whose mask is unchanged since the last run of
        # this op stream, the combined masked difference is bit-identical —
        # the servers skip the subtract, the transmission and the combine.
        reuse = getattr(ctx, "mask_reuse_enabled", False)
        cached_e = ctx.reuse_masked(label, "E", x, triplet) if reuse else None
        cached_f = ctx.reuse_masked(label, "F", y, triplet) if reuse else None

        # --- reconstruct (online, CPU + network) -----------------------------
        e_locals, e_tasks_local = [], []
        f_locals, f_tasks_local = [], []
        starts = []
        for i in (0, 1):
            start = _chain(ctx, _deps(x.tasks[i], y.tasks[i]))
            starts.append(start)
            if cached_e is None:
                e_i, te = ctx.server_reconstruct_cpu[i].elementwise(
                    ring_sub, [x.shares[i], triplet.u[i]], deps=_deps(x.tasks[i], *start), label=f"{label}:E{i}"
                )
                e_locals.append(e_i)
                e_tasks_local.append(te)
            if cached_f is None:
                f_i, tf = ctx.server_reconstruct_cpu[i].elementwise(
                    ring_sub, [y.shares[i], triplet.v[i]], deps=_deps(y.tasks[i], *start), label=f"{label}:F{i}"
                )
                f_locals.append(f_i)
                f_tasks_local.append(tf)
        if ctx.config.coalesce_rounds and cached_e is None and cached_f is None:
            # Both halves of the Eq. 5 round are live: pack them into one
            # framed message per direction.  With a cached side there is
            # no same-round pair, so the path below handles it.
            e, e_tasks, f, f_tasks = _exchange_masked_pair(
                ctx, label, e_locals, e_tasks_local, f_locals, f_tasks_local
            )
            if reuse:
                ctx.store_masked(label, "E", x, triplet, e)
                ctx.store_masked(label, "F", y, triplet, f)
        else:
            if cached_e is None:
                e, e_tasks = _exchange_masked(ctx, f"{label}/E", e_locals, e_tasks_local)
                if reuse:
                    ctx.store_masked(label, "E", x, triplet, e)
            else:
                e, e_tasks = cached_e, [None, None]
            if cached_f is None:
                f, f_tasks = _exchange_masked(ctx, f"{label}/F", f_locals, f_tasks_local)
                if reuse:
                    ctx.store_masked(label, "F", y, triplet, f)
            else:
                f, f_tasks = cached_f, [None, None]

        # --- GPU operation (online) ------------------------------------------
        decision = ctx.profiler.place_gemm(m, 2 * k, n, operands_on_gpu=False)
        shares = []
        tasks = []
        for i in (0, 1):
            if cached_e is None and cached_f is None:
                ready = _deps(e_tasks[i], f_tasks[i])
            else:
                # A cached side has no exchange tasks; depend directly on the
                # operands (and the serialisation chain) instead.
                ready = _deps(*starts[i], e_tasks[i], f_tasks[i])
            tshare = triplet.share_for(i)
            if decision.placement == "gpu" and ctx.server_gpu[i] is not None:
                staged = None
                if reuse:
                    # Keep this stream's Z share (and, for a static right
                    # operand, the combined F) resident on the server GPU:
                    # re-uploaded only when the triplet or value changes.
                    staged_f = None
                    if y.static:
                        staged_f = ctx.stash_device_buffer(
                            i, f"f/{label}", ("f", y.uid, triplet.uid), f,
                            deps=ready, label=f"{label}:stage:F",
                        )
                    staged_z = ctx.stash_device_buffer(
                        i, f"z/{label}", ("z", triplet.uid), tshare.z,
                        deps=ready, label=f"{label}:stage:Z",
                    )
                    staged = StagedGemmOperands(f=staged_f, z=staged_z)
                result = schedule_secure_gemm(
                    ctx.server_gpu[i],
                    i,
                    e,
                    f,
                    x.shares[i],
                    y.shares[i],
                    tshare,
                    deps=ready,
                    pipeline=ctx.config.pipeline1,
                    staged=staged,
                )
                shares.append(result.c_share)
                tasks.append(result.done)
            else:
                tshare.mark_consumed()
                lead = x.shares[i] if i == 0 else ring_sub(x.shares[i], e)
                left = np.concatenate([lead, e], axis=1)
                right = np.concatenate([f, y.shares[i]], axis=0)
                prod, tg = ctx.server_cpu[i].gemm_ring(left, right, deps=ready, label=f"{label}:cpu_gemm")
                c_i, tc = ctx.server_cpu[i].elementwise(
                    ring_add, [prod, tshare.z], deps=(tg,), label=f"{label}:+Z"
                )
                shares.append(c_i)
                tasks.append(tc)
        _set_chain(ctx, tasks)
        out = SharedTensor(ctx=ctx, shares=tuple(shares), kind="fixed", tasks=tuple(tasks))
        if both_fixed and truncate_result:
            out = core_ops.truncate(out, label=f"{label}:trunc")
        elif not both_fixed:
            # fixed x indicator (or indicator x fixed) stays at single scale.
            out.kind = "fixed" if (x.kind == "fixed" or y.kind == "fixed") else "indicator"
        return out

    def elementwise_mul(self, ctx, x, y, *, label):
        triplet = ctx.get_elementwise_triplet(label, x.shape)

        e_locals, e_tasks_local = [], []
        f_locals, f_tasks_local = [], []
        for i in (0, 1):
            start = _chain(ctx, _deps(x.tasks[i], y.tasks[i]))
            e_i, te = ctx.server_reconstruct_cpu[i].elementwise(
                ring_sub, [x.shares[i], triplet.u[i]], deps=start, label=f"{label}:E{i}"
            )
            f_i, tf = ctx.server_reconstruct_cpu[i].elementwise(
                ring_sub, [y.shares[i], triplet.v[i]], deps=start, label=f"{label}:F{i}"
            )
            e_locals.append(e_i)
            f_locals.append(f_i)
            e_tasks_local.append(te)
            f_tasks_local.append(tf)
        flat = lambda a: a.reshape(a.shape[0], -1) if a.ndim != 2 else a  # noqa: E731
        if ctx.config.coalesce_rounds:
            e, e_tasks, f, f_tasks = _exchange_masked_pair(
                ctx, label,
                [flat(v) for v in e_locals], e_tasks_local,
                [flat(v) for v in f_locals], f_tasks_local,
            )
        else:
            e, e_tasks = _exchange_masked(
                ctx, f"{label}/E", [flat(v) for v in e_locals], e_tasks_local
            )
            f, f_tasks = _exchange_masked(
                ctx, f"{label}/F", [flat(v) for v in f_locals], f_tasks_local
            )
        e = e.reshape(x.shape)
        f = f.reshape(x.shape)

        nbytes = x.nbytes
        decision = ctx.profiler.place_elementwise(4 * nbytes, operands_on_gpu=False)
        shares, tasks = [], []
        for i in (0, 1):
            ready = _deps(e_tasks[i], f_tasks[i])
            tshare = triplet.share_for(i)
            compute = lambda i=i, tshare=tshare: beaver_elementwise_share(
                i, e, f, x.shares[i], y.shares[i], tshare
            )
            if decision.placement == "gpu" and ctx.server_gpu[i] is not None:
                gpu = ctx.server_gpu[i]
                bufs = []
                tdeps = list(ready)
                for arr, nm in ((e, "E"), (f, "F"), (x.shares[i], "A"), (y.shares[i], "B")):
                    buf, tt = gpu.h2d(arr, deps=ready, label=f"{label}:h2d:{nm}")
                    bufs.append(buf)
                    tdeps.append(tt)
                c_i = compute()
                out_buf = gpu.pool.allocate(c_i)
                tk = gpu.clock.run(
                    gpu.stream(0),
                    gpu.spec.elementwise_seconds(5 * nbytes),
                    deps=tuple(tdeps),
                    label=f"{label}:kernel",
                )
                _, tout = gpu.d2h(out_buf, deps=(tk,), label=f"{label}:d2h")
                for b in bufs + [out_buf]:
                    gpu.free(b)
                shares.append(c_i)
                tasks.append(tout)
            else:
                c_i = compute()
                tk = ctx.server_cpu[i].run(
                    ctx.config.cpu_spec.elementwise_seconds(
                        5 * nbytes, parallel=ctx.config.cpu_parallel
                    ),
                    deps=ready,
                    label=f"{label}:cpu",
                )
                shares.append(c_i)
                tasks.append(tk)
        _set_chain(ctx, tasks)
        out = SharedTensor(ctx=ctx, shares=tuple(shares), kind="fixed", tasks=tuple(tasks))
        if x.kind == "fixed" and y.kind == "fixed":
            out = core_ops.truncate(out, label=f"{label}:trunc")
        elif x.kind == "indicator" and y.kind == "indicator":
            out.kind = "indicator"
        return out

    def compare_const(self, ctx, x, threshold, *, label):
        c_enc = int(ctx.encoder.encode(np.float64(threshold)))
        bundle = ctx.gen_comparison_bundle(x.shape, label=label)
        if bundle is not None:
            res = secure_ge_const(x.shares[0], x.shares[1], c_enc, bundle)
        else:
            # Resharing randomness is keyed by the op-stream label (not an
            # advancing counter) so checkpoint replay redraws identical
            # shares — truncation rounding is share-dependent, so replay
            # bit-identity needs stable shares, not just stable plaintexts.
            if ctx.config.fresh_triplets:
                seed_label = f"cmp-{ctx.comparisons_issued}"
            else:
                seed_label = f"cmp/{label}"
            res = emulated_ge_const(
                x.shares[0], x.shares[1], c_enc, ctx.seeds.generator(seed_label)
            )

        # Online cost: ~70 vectorised bit-ops per element on each server CPU,
        # plus the round traffic (one 8-byte opening + 62 bit rounds + B2A).
        n = int(np.prod(x.shape))
        start = _chain(ctx, _deps(*x.tasks))
        cpu_tasks = [
            ctx.server_cpu[i].run(
                ctx.config.cpu_spec.elementwise_seconds(70 * n, parallel=ctx.config.cpu_parallel),
                deps=_deps(x.tasks[i], *start),
                label=f"{label}:gmw",
            )
            for i in (0, 1)
        ]
        half = res.online_bytes // 2
        extra_latency = (res.rounds - 1) * ctx.config.server_link.latency_s
        framed = ctx.config.wire_frames or ctx.config.coalesce_rounds
        net_tasks = []
        for src in (0, 1):
            if framed:
                # The bit rounds are costed in aggregate, so frame them as
                # one opaque blob: header once, body = the aggregate bytes.
                sizes = blob_frame_sizes(f"{label}:rounds", half)
                t = ctx.server_channel.send_framed(
                    f"server{src}", f"server{1 - src}", sizes,
                    deps=(cpu_tasks[src],), label=f"{label}:rounds",
                )
                wire_nbytes = sizes.nbytes
            else:
                t = ctx.server_channel.send(
                    f"server{src}", f"server{1 - src}", half,
                    deps=(cpu_tasks[src],), label=f"{label}:rounds",
                )
                wire_nbytes = half
            # Size-only transcript record: the GMW bit rounds are costed in
            # aggregate, their per-round content is not materialized here.
            ctx.record_wire(
                f"server{src}", f"server{1 - src}", f"{label}:rounds", nbytes=wire_nbytes
            )
            t2 = ctx.online_clock.run(
                f"link.server{src}->server{1 - src}", extra_latency, deps=(t,), label=f"{label}:latency"
            )
            net_tasks.append(t2)
        tasks = tuple(
            ctx.online_clock.join([cpu_tasks[i], net_tasks[1 - i]]) for i in (0, 1)
        )
        _set_chain(ctx, tasks)
        return SharedTensor(
            ctx=ctx, shares=(res.share0, res.share1), kind="indicator", tasks=tasks
        )
